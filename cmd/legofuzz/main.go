// Command legofuzz runs a LEGO fuzzing campaign against one of the built-in
// DBMS dialect profiles and reports coverage, affinity, and bug statistics.
//
// Usage:
//
//	legofuzz -target mariadb -budget 500000
//	legofuzz -target postgres -minus           # LEGO- ablation
//	legofuzz -target comdb2 -len 8 -seed 7 -repros
//	legofuzz -target mariadb -checkpoint camp.ckpt -checkpoint-every 500
//	legofuzz -target mariadb -checkpoint camp.ckpt -resume   # continue it
//	legofuzz -target mariadb -triage -repros   # verified, minimized repros
//	legofuzz -target mariadb -workers 4        # sharded, still deterministic
//	legofuzz -target mariadb -workers 4 -chaos-rate 0.05   # supervised chaos
//
// SIGINT/SIGTERM trigger a graceful shutdown: the campaign stops at the next
// iteration boundary (the next epoch barrier when -workers > 1), flushes a
// final checkpoint (when -checkpoint is set),
// triages what was found (when -triage is set), prints the partial report,
// and exits 0. A second signal kills the process immediately.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/seqfuzz/lego"
	"github.com/seqfuzz/lego/internal/profiling"
)

var targets = map[string]lego.Target{
	"postgres":   lego.PostgreSQL,
	"postgresql": lego.PostgreSQL,
	"mysql":      lego.MySQL,
	"mariadb":    lego.MariaDB,
	"comdb2":     lego.Comdb2,
}

func main() {
	target := flag.String("target", "postgres", "target DBMS profile: postgres, mysql, mariadb, comdb2")
	budget := flag.Int("budget", 200000, "statement-execution budget")
	seed := flag.Int64("seed", 1, "RNG seed (campaigns are deterministic per seed)")
	maxLen := flag.Int("len", 5, "max synthesized sequence length (Algorithm 3's LEN)")
	minus := flag.Bool("minus", false, "disable sequence-oriented algorithms (LEGO- ablation)")
	noHazards := flag.Bool("no-hazards", false, "disarm the seeded bug corpus (coverage only)")
	repros := flag.Bool("repros", false, "print the reproducer SQL of every bug found")
	faultRate := flag.Float64("fault-rate", 0, "per-statement organic fault-injection probability (containment demo)")
	workers := flag.Int("workers", 1, "parallel fuzzing shards; results are deterministic per (seed, workers, epoch-stmts)")
	epochStmts := flag.Int("epoch-stmts", 0, "per-shard statements between merge barriers (0 = default 2000; only with -workers > 1)")
	chaosRate := flag.Float64("chaos-rate", 0, "deterministic chaos plane: per-decision probability of injected worker panics, epoch stalls, and checkpoint I/O faults (0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-schedule seed (0 = -seed); campaigns are deterministic per (chaos-rate, chaos-seed)")
	maxRetries := flag.Int("max-epoch-retries", 0, "per-shard epoch-retry budget before quarantine (0 = default 3, negative = quarantine on first failure)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: campaign state is saved here periodically")
	ckptEvery := flag.Int("checkpoint-every", 1000, "executions between checkpoint writes")
	resume := flag.Bool("resume", false, "resume the campaign from -checkpoint instead of starting fresh")
	triageOn := flag.Bool("triage", false, "triage crashes at campaign end: re-verify on a fresh engine and minimize reproducers")
	triageReplays := flag.Int("triage-replays", 3, "verification replays per crash")
	triageBudget := flag.Int("triage-budget", 256, "max minimization replays per crash")
	triageAssert := flag.Bool("triage-assert", false, "exit 1 unless every bug is STABLE with MinimizedLen <= OriginalLen (CI smoke)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole campaign to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at campaign end to this file")
	flag.Parse()

	d, ok := targets[strings.ToLower(*target)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown target %q (want postgres, mysql, mariadb, or comdb2)\n", *target)
		os.Exit(2)
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	cfg := lego.Config{
		Target:                    d,
		Seed:                      *seed,
		MaxSequenceLength:         *maxLen,
		DisableSequenceAlgorithms: *minus,
		DisableHazards:            *noHazards,
		FaultRate:                 *faultRate,
		Triage:                    *triageOn,
		TriageReplays:             *triageReplays,
		TriageBudget:              *triageBudget,
		Workers:                   *workers,
		EpochStmts:                *epochStmts,
		ChaosRate:                 *chaosRate,
		ChaosSeed:                 *chaosSeed,
		MaxEpochRetries:           *maxRetries,
	}

	var f *lego.Fuzzer
	if *resume {
		if *ckptPath == "" {
			fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
			os.Exit(2)
		}
		var err error
		f, err = lego.ResumeFuzzer(cfg, *ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		if warn := f.ResumeWarning(); warn != "" {
			fmt.Fprintf(os.Stderr, "warning: %s\n", warn)
		}
		fmt.Printf("resumed campaign from %s\n", *ckptPath)
	} else {
		f = lego.NewFuzzer(cfg)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM closes the stop channel
	// and the run loop winds down at the next iteration boundary; restoring
	// default signal handling afterwards lets a second signal kill a stuck
	// process the usual way.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "\n%v: finishing the current iteration, then stopping (repeat to kill)\n", sig)
		close(stop)
		signal.Stop(sigc)
	}()

	name := "LEGO"
	if *minus {
		name = "LEGO-"
	}
	fmt.Printf("%s fuzzing %s (%d statement types), budget %d statements, seed %d",
		name, d, lego.StatementTypes(d), *budget, *seed)
	if *workers > 1 {
		fmt.Printf(", %d workers", *workers)
	}
	if *chaosRate > 0 {
		fmt.Printf(", chaos rate %g", *chaosRate)
	}
	fmt.Println()

	start := time.Now()
	rep, err := f.FuzzWithOptions(*budget, lego.FuzzOptions{
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Stop:            stop,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		os.Exit(1)
	}
	dur := time.Since(start)

	if rep.Interrupted {
		fmt.Printf("\ninterrupted at %d/%d statements — partial results below", rep.Statements, *budget)
		if *ckptPath != "" {
			fmt.Printf(" (state flushed to %s; continue with -resume)", *ckptPath)
		}
		fmt.Println()
	}

	fmt.Printf("\nexecutions : %d test cases (%d statements) in %.2fs (%.0f stmts/s)\n",
		rep.Executions, rep.Statements, dur.Seconds(), float64(rep.Statements)/dur.Seconds())
	fmt.Printf("branches   : %d\n", rep.Branches)
	fmt.Printf("affinities : %d\n", rep.Affinities)
	fmt.Printf("seed pool  : %d\n", rep.SeedPool)
	if rep.EnginePanics > 0 {
		fmt.Printf("contained  : %d organic engine panics (campaign survived all of them)\n", rep.EnginePanics)
	}
	if len(rep.Incidents) > 0 {
		fmt.Printf("incidents  : %d worker failures supervised\n", len(rep.Incidents))
		for _, in := range rep.Incidents {
			fmt.Printf("  epoch %3d shard %d  %-13s -> %-11s (retries %d)\n",
				in.Epoch, in.Shard, in.Kind, in.Outcome, in.Retries)
		}
	}
	if len(rep.Quarantined) > 0 {
		fmt.Printf("degraded   : %d of %d workers quarantined %v; campaign finished on %d\n",
			len(rep.Quarantined), rep.Workers, rep.Quarantined, rep.Workers-len(rep.Quarantined))
	}
	if rep.SaveFaults > 0 {
		fmt.Printf("save faults: %d checkpoint writes eaten by injected I/O faults (last-good generation kept)\n", rep.SaveFaults)
	}
	fmt.Printf("bugs       : %d unique\n", len(rep.Bugs))
	for i, b := range rep.Bugs {
		fmt.Printf("  %2d. %-18s %-10s %-5s (exec %d)%s\n",
			i+1, b.ID, b.Component, b.Kind, b.FoundAtExec, triageColumns(b, *triageReplays))
		if *repros {
			fmt.Println("      --- reproducer ---")
			for _, line := range strings.Split(strings.TrimSpace(b.Reproducer), "\n") {
				fmt.Println("      " + line)
			}
		}
	}

	if *triageAssert {
		if !*triageOn {
			fmt.Fprintln(os.Stderr, "-triage-assert requires -triage")
			os.Exit(2)
		}
		for _, b := range rep.Bugs {
			if b.Status != "STABLE" || b.MinimizedLen > b.OriginalLen {
				fmt.Fprintf(os.Stderr, "triage assertion failed: %s status=%s len %d->%d\n",
					b.ID, b.Status, b.OriginalLen, b.MinimizedLen)
				os.Exit(1)
			}
		}
		fmt.Printf("triage     : all %d bugs STABLE with minimized reproducers\n", len(rep.Bugs))
	}
}

// triageColumns renders the per-bug triage columns, e.g.
// " STABLE 3/3 12->2 stmts"; empty when the bug was not triaged.
func triageColumns(b lego.Bug, replays int) string {
	if b.Status == "" {
		return ""
	}
	return fmt.Sprintf("  %-6s %d/%d  %d->%d stmts",
		b.Status, b.Replays, replays, b.OriginalLen, b.MinimizedLen)
}
