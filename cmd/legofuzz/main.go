// Command legofuzz runs a LEGO fuzzing campaign against one of the built-in
// DBMS dialect profiles and reports coverage, affinity, and bug statistics.
//
// Usage:
//
//	legofuzz -target mariadb -budget 500000
//	legofuzz -target postgres -minus           # LEGO- ablation
//	legofuzz -target comdb2 -len 8 -seed 7 -repros
//	legofuzz -target mariadb -checkpoint camp.ckpt -checkpoint-every 500
//	legofuzz -target mariadb -checkpoint camp.ckpt -resume   # continue it
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/seqfuzz/lego"
)

var targets = map[string]lego.Target{
	"postgres":   lego.PostgreSQL,
	"postgresql": lego.PostgreSQL,
	"mysql":      lego.MySQL,
	"mariadb":    lego.MariaDB,
	"comdb2":     lego.Comdb2,
}

func main() {
	target := flag.String("target", "postgres", "target DBMS profile: postgres, mysql, mariadb, comdb2")
	budget := flag.Int("budget", 200000, "statement-execution budget")
	seed := flag.Int64("seed", 1, "RNG seed (campaigns are deterministic per seed)")
	maxLen := flag.Int("len", 5, "max synthesized sequence length (Algorithm 3's LEN)")
	minus := flag.Bool("minus", false, "disable sequence-oriented algorithms (LEGO- ablation)")
	noHazards := flag.Bool("no-hazards", false, "disarm the seeded bug corpus (coverage only)")
	repros := flag.Bool("repros", false, "print the reproducer SQL of every bug found")
	faultRate := flag.Float64("fault-rate", 0, "per-statement organic fault-injection probability (containment demo)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: campaign state is saved here periodically")
	ckptEvery := flag.Int("checkpoint-every", 1000, "executions between checkpoint writes")
	resume := flag.Bool("resume", false, "resume the campaign from -checkpoint instead of starting fresh")
	flag.Parse()

	d, ok := targets[strings.ToLower(*target)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown target %q (want postgres, mysql, mariadb, or comdb2)\n", *target)
		os.Exit(2)
	}

	cfg := lego.Config{
		Target:                    d,
		Seed:                      *seed,
		MaxSequenceLength:         *maxLen,
		DisableSequenceAlgorithms: *minus,
		DisableHazards:            *noHazards,
		FaultRate:                 *faultRate,
	}

	var f *lego.Fuzzer
	if *resume {
		if *ckptPath == "" {
			fmt.Fprintln(os.Stderr, "-resume requires -checkpoint")
			os.Exit(2)
		}
		var err error
		f, err = lego.ResumeFuzzer(cfg, *ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Printf("resumed campaign from %s\n", *ckptPath)
	} else {
		f = lego.NewFuzzer(cfg)
	}

	name := "LEGO"
	if *minus {
		name = "LEGO-"
	}
	fmt.Printf("%s fuzzing %s (%d statement types), budget %d statements, seed %d\n",
		name, d, lego.StatementTypes(d), *budget, *seed)

	start := time.Now()
	var rep lego.Report
	if *ckptPath != "" {
		var err error
		rep, err = f.FuzzWithCheckpoint(*budget, *ckptPath, *ckptEvery)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			os.Exit(1)
		}
	} else {
		rep = f.Fuzz(*budget)
	}
	dur := time.Since(start)

	fmt.Printf("\nexecutions : %d test cases (%d statements) in %.2fs (%.0f stmts/s)\n",
		rep.Executions, rep.Statements, dur.Seconds(), float64(rep.Statements)/dur.Seconds())
	fmt.Printf("branches   : %d\n", rep.Branches)
	fmt.Printf("affinities : %d\n", rep.Affinities)
	fmt.Printf("seed pool  : %d\n", rep.SeedPool)
	if rep.EnginePanics > 0 {
		fmt.Printf("contained  : %d organic engine panics (campaign survived all of them)\n", rep.EnginePanics)
	}
	fmt.Printf("bugs       : %d unique\n", len(rep.Bugs))
	for i, b := range rep.Bugs {
		fmt.Printf("  %2d. %-18s %-10s %-5s (exec %d)\n", i+1, b.ID, b.Component, b.Kind, b.FoundAtExec)
		if *repros {
			fmt.Println("      --- reproducer ---")
			for _, line := range strings.Split(strings.TrimSpace(b.Reproducer), "\n") {
				fmt.Println("      " + line)
			}
		}
	}
}
