// Command benchall regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout, together with
// the expected shape from the paper for side-by-side comparison.
//
// Usage:
//
//	benchall                  # everything, default budgets
//	benchall -quick           # scaled-down budgets
//	benchall -only table3     # one experiment: table1..table4, fig9, length, sharded, perf
//	benchall -only perf       # throughput snapshot (writes BENCH_perf.json)
//	benchall -execs 50000     # override the per-campaign budget
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/seqfuzz/lego/internal/experiment"
	"github.com/seqfuzz/lego/internal/profiling"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func main() {
	quick := flag.Bool("quick", false, "use scaled-down budgets")
	only := flag.String("only", "", "run a single experiment: table1, table2, table3, table4, fig9, length, sharded, perf")
	execs := flag.Int("execs", 0, "override the 24h-equivalent execution budget")
	contExecs := flag.Int("continuous", 0, "override the continuous-fuzzing budget (table1)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	curves := flag.String("curves", "", "write Figure 9 coverage curves as CSV to this file")
	perfFloor := flag.Int("perf-floor", 0, "fail (exit 1) if the perf experiment's workers-1 stmts/s drops below 70% of this floor (0 disables the gate)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	b := experiment.DefaultBudgets()
	if *quick {
		b = experiment.QuickBudgets()
	}
	if *execs > 0 {
		b.DayStmts = *execs
	}
	if *contExecs > 0 {
		b.ContinuousStmts = *contExecs
	}
	b.Seed = *seed

	run := func(name string, f func() string) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		out := f()
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() string { return experiment.Table1(b).Format() })
	run("fig9", func() string {
		res := experiment.Figure9(b)
		if *curves != "" {
			f, err := os.Create(*curves)
			if err != nil {
				fmt.Fprintf(os.Stderr, "curves: %v\n", err)
			} else {
				if err := res.WriteCurvesCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "curves: %v\n", err)
				}
				f.Close()
				fmt.Printf("[coverage curves written to %s]\n", *curves)
			}
		}
		return res.Format()
	})
	run("table2", func() string { return experiment.Table2(b).Format() })
	run("table3", func() string { return experiment.Table3(b).Format() })
	run("table4", func() string { return experiment.Table4(b).Format() })
	run("length", func() string { return experiment.LengthStudy(b).Format() })
	run("sharded", func() string { return shardedStudy(b) })
	perfOK := true
	run("perf", func() string {
		out, ok := perfSnapshot(b, *perfFloor)
		perfOK = ok
		return out
	})

	if *only != "" {
		switch *only {
		case "table1", "table2", "table3", "table4", "fig9", "length", "sharded", "perf":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
	}
	if !perfOK {
		stopProfiles()
		os.Exit(1)
	}
}

// shardedStudy runs the same MariaDB campaign budget at 1, 2, and 4 workers
// and reports the merged global results with wall-clock throughput. The
// per-worker-count results are deterministic (rerun it: same rows); the
// wall-clock column is the only machine-dependent part, and the speedup it
// shows tracks the core count of the host.
func shardedStudy(b experiment.Budgets) string {
	var sb strings.Builder
	sb.WriteString("Sharded execution — deterministic N-worker scaling (MariaDB)\n")
	sb.WriteString(fmt.Sprintf("%7s  %10s  %8s  %10s  %5s  %8s  %8s\n",
		"workers", "execs", "branches", "affinities", "bugs", "seconds", "execs/s"))
	for _, w := range []int{1, 2, 4} {
		start := time.Now()
		res := experiment.RunShardedCampaign(sqlt.DialectMariaDB, b.DayStmts, b.Seed, 5, w, 0)
		dur := time.Since(start).Seconds()
		execsPerSec := 0.0
		if dur > 0 {
			execsPerSec = float64(res.Execs) / dur
		}
		sb.WriteString(fmt.Sprintf("%7d  %10d  %8d  %10d  %5d  %8.2f  %8.0f\n",
			w, res.Execs, res.Branches, res.DiscoveredAffinities, res.Bugs(), dur, execsPerSec))
	}
	sb.WriteString("\n(paper: LEGO ran as parallel AFL++ instances per target; here the shards\n merge at epoch barriers, so every row above is bit-reproducible per seed)\n")
	return sb.String()
}

// perfRow is one configuration of the throughput snapshot.
type perfRow struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	ChaosRate   float64 `json:"chaos_rate"`
	Statements  int     `json:"statements"`
	Executions  int     `json:"executions"`
	Branches    int     `json:"branches"`
	Bugs        int     `json:"bugs"`
	Incidents   int     `json:"incidents"`
	Quarantined int     `json:"quarantined"`
	// Plan-cache counters: how much of the statement stream ran compiled.
	// hit_rate = hits / (hits + misses); compiles counts cache fills, which
	// can exceed misses only after a capacity clear.
	PlanHits     uint64  `json:"plan_hits"`
	PlanMisses   uint64  `json:"plan_misses"`
	PlanCompiles uint64  `json:"plan_compiles"`
	PlanHitRate  float64 `json:"plan_hit_rate"`
	Seconds      float64 `json:"seconds"`
	StmtsPerSec  float64 `json:"stmts_per_sec"`
}

// perfSnapshot measures end-to-end campaign throughput (statements/sec) at
// one worker, four workers, and four workers with the chaos plane armed —
// the supervision overhead row. It writes the machine-readable snapshot to
// BENCH_perf.json, appends one line to the BENCH_history.jsonl trajectory,
// and — when floor > 0 — gates the workers-1 throughput at 70% of the
// floor, returning ok=false on a regression. Campaign results per row are
// deterministic; the timing columns are the machine-dependent part.
func perfSnapshot(b experiment.Budgets, floor int) (string, bool) {
	const epochStmts = 500
	type cfgRow struct {
		name      string
		workers   int
		chaosRate float64
	}
	// The chaos rate is picked so a default-budget campaign sees a handful
	// of supervised failures per shard — enough retry work to price the
	// supervision overhead, not enough to quarantine the fleet and turn the
	// row into a degradation study.
	cfgs := []cfgRow{
		{"workers-1", 1, 0},
		{"workers-4", 4, 0},
		{"workers-4-chaos-0.01", 4, 0.01},
	}
	rows := make([]perfRow, 0, len(cfgs))
	for _, c := range cfgs {
		start := time.Now()
		res, cs := experiment.RunChaoticCampaign(
			sqlt.DialectMariaDB, b.DayStmts, b.Seed, 5, c.workers, epochStmts, c.chaosRate, b.Seed)
		dur := time.Since(start).Seconds()
		row := perfRow{
			Name:         c.name,
			Workers:      c.workers,
			ChaosRate:    c.chaosRate,
			Statements:   cs.Stmts,
			Executions:   res.Execs,
			Branches:     res.Branches,
			Bugs:         res.Bugs(),
			Incidents:    cs.Incidents,
			Quarantined:  cs.Quarantined,
			PlanHits:     cs.PlanStats.Hits,
			PlanMisses:   cs.PlanStats.Misses,
			PlanCompiles: cs.PlanStats.Compiles,
			Seconds:      dur,
		}
		if lookups := cs.PlanStats.Hits + cs.PlanStats.Misses; lookups > 0 {
			row.PlanHitRate = float64(cs.PlanStats.Hits) / float64(lookups)
		}
		if dur > 0 {
			row.StmtsPerSec = float64(cs.Stmts) / dur
		}
		rows = append(rows, row)
	}

	snapshot := struct {
		Experiment  string    `json:"experiment"`
		Dialect     string    `json:"dialect"`
		BudgetStmts int       `json:"budget_stmts"`
		EpochStmts  int       `json:"epoch_stmts"`
		Seed        int64     `json:"seed"`
		Rows        []perfRow `json:"rows"`
	}{"perf", sqlt.DialectMariaDB.String(), b.DayStmts, epochStmts, b.Seed, rows}
	var sb strings.Builder
	if data, err := json.MarshalIndent(snapshot, "", "  "); err == nil {
		if werr := os.WriteFile("BENCH_perf.json", append(data, '\n'), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", werr)
		} else {
			sb.WriteString("[perf snapshot written to BENCH_perf.json]\n")
		}
	} else {
		fmt.Fprintf(os.Stderr, "perf: %v\n", err)
	}
	if err := appendPerfHistory(b, epochStmts, rows); err != nil {
		fmt.Fprintf(os.Stderr, "perf: history: %v\n", err)
	} else {
		sb.WriteString("[trajectory row appended to BENCH_history.jsonl]\n")
	}

	sb.WriteString("Campaign throughput — supervision and chaos overhead (MariaDB)\n")
	sb.WriteString(fmt.Sprintf("%-22s  %10s  %9s  %9s  %5s  %8s  %8s  %8s  %8s\n",
		"config", "statements", "incidents", "quarant.", "bugs", "hit-rate", "compiles", "seconds", "stmts/s"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-22s  %10d  %9d  %9d  %5d  %7.1f%%  %8d  %8.2f  %8.0f\n",
			r.Name, r.Statements, r.Incidents, r.Quarantined, r.Bugs,
			100*r.PlanHitRate, r.PlanCompiles, r.Seconds, r.StmtsPerSec))
	}

	ok := true
	if floor > 0 {
		// The gate tolerates ≥30% machine-to-machine variance: it exists to
		// catch order-of-magnitude regressions (an accidental reparse on the
		// clone path), not to turn CI into a benchmarking rig.
		min := 0.7 * float64(floor)
		got := rows[0].StmtsPerSec
		if got < min {
			sb.WriteString(fmt.Sprintf("PERF GATE FAILED: workers-1 %.0f stmts/s < %.0f (70%% of floor %d)\n",
				got, min, floor))
			ok = false
		} else {
			sb.WriteString(fmt.Sprintf("perf gate ok: workers-1 %.0f stmts/s >= %.0f (70%% of floor %d)\n",
				got, min, floor))
		}
	}
	return sb.String(), ok
}

// appendPerfHistory appends one compact JSONL row per perf run, building
// the perf trajectory the snapshot cannot show: BENCH_perf.json is the
// latest state, BENCH_history.jsonl is how it got there.
func appendPerfHistory(b experiment.Budgets, epochStmts int, rows []perfRow) error {
	entry := struct {
		Time        string    `json:"time"`
		Dialect     string    `json:"dialect"`
		BudgetStmts int       `json:"budget_stmts"`
		EpochStmts  int       `json:"epoch_stmts"`
		Seed        int64     `json:"seed"`
		Rows        []perfRow `json:"rows"`
	}{time.Now().UTC().Format(time.RFC3339), sqlt.DialectMariaDB.String(), b.DayStmts, epochStmts, b.Seed, rows}
	data, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	f, err := os.OpenFile("BENCH_history.jsonl", os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(data, '\n'))
	return err
}
