// Command benchall regenerates every table and figure of the paper's
// evaluation section and prints them in the paper's layout, together with
// the expected shape from the paper for side-by-side comparison.
//
// Usage:
//
//	benchall                  # everything, default budgets
//	benchall -quick           # scaled-down budgets
//	benchall -only table3     # one experiment: table1..table4, fig9, length, sharded
//	benchall -execs 50000     # override the per-campaign budget
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/seqfuzz/lego/internal/experiment"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func main() {
	quick := flag.Bool("quick", false, "use scaled-down budgets")
	only := flag.String("only", "", "run a single experiment: table1, table2, table3, table4, fig9, length")
	execs := flag.Int("execs", 0, "override the 24h-equivalent execution budget")
	contExecs := flag.Int("continuous", 0, "override the continuous-fuzzing budget (table1)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	curves := flag.String("curves", "", "write Figure 9 coverage curves as CSV to this file")
	flag.Parse()

	b := experiment.DefaultBudgets()
	if *quick {
		b = experiment.QuickBudgets()
	}
	if *execs > 0 {
		b.DayStmts = *execs
	}
	if *contExecs > 0 {
		b.ContinuousStmts = *contExecs
	}
	b.Seed = *seed

	run := func(name string, f func() string) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		out := f()
		fmt.Println(out)
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() string { return experiment.Table1(b).Format() })
	run("fig9", func() string {
		res := experiment.Figure9(b)
		if *curves != "" {
			f, err := os.Create(*curves)
			if err != nil {
				fmt.Fprintf(os.Stderr, "curves: %v\n", err)
			} else {
				if err := res.WriteCurvesCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "curves: %v\n", err)
				}
				f.Close()
				fmt.Printf("[coverage curves written to %s]\n", *curves)
			}
		}
		return res.Format()
	})
	run("table2", func() string { return experiment.Table2(b).Format() })
	run("table3", func() string { return experiment.Table3(b).Format() })
	run("table4", func() string { return experiment.Table4(b).Format() })
	run("length", func() string { return experiment.LengthStudy(b).Format() })
	run("sharded", func() string { return shardedStudy(b) })

	if *only != "" {
		switch *only {
		case "table1", "table2", "table3", "table4", "fig9", "length", "sharded":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
	}
}

// shardedStudy runs the same MariaDB campaign budget at 1, 2, and 4 workers
// and reports the merged global results with wall-clock throughput. The
// per-worker-count results are deterministic (rerun it: same rows); the
// wall-clock column is the only machine-dependent part, and the speedup it
// shows tracks the core count of the host.
func shardedStudy(b experiment.Budgets) string {
	var sb strings.Builder
	sb.WriteString("Sharded execution — deterministic N-worker scaling (MariaDB)\n")
	sb.WriteString(fmt.Sprintf("%7s  %10s  %8s  %10s  %5s  %8s  %8s\n",
		"workers", "execs", "branches", "affinities", "bugs", "seconds", "execs/s"))
	for _, w := range []int{1, 2, 4} {
		start := time.Now()
		res := experiment.RunShardedCampaign(sqlt.DialectMariaDB, b.DayStmts, b.Seed, 5, w, 0)
		dur := time.Since(start).Seconds()
		execsPerSec := 0.0
		if dur > 0 {
			execsPerSec = float64(res.Execs) / dur
		}
		sb.WriteString(fmt.Sprintf("%7d  %10d  %8d  %10d  %5d  %8.2f  %8.0f\n",
			w, res.Execs, res.Branches, res.DiscoveredAffinities, res.Bugs(), dur, execsPerSec))
	}
	sb.WriteString("\n(paper: LEGO ran as parallel AFL++ instances per target; here the shards\n merge at epoch barriers, so every row above is bit-reproducible per seed)\n")
	return sb.String()
}
