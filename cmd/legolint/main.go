// Command legolint is the vettool that statically enforces the repo's
// campaign-determinism invariants. Run it through the go command:
//
//	go build -o bin/legolint ./cmd/legolint
//	go vet -vettool=$(pwd)/bin/legolint ./...
//
// or simply `make lint`. It ships four analyzers — detrange, globalrand,
// walltime, and panicdiscipline — each suppressible per finding with
// `//lego:allow <analyzer> — <reason>`. See internal/analysis and the
// "Determinism invariants and static enforcement" section of DESIGN.md.
package main

import (
	"github.com/seqfuzz/lego/internal/analysis/detrange"
	"github.com/seqfuzz/lego/internal/analysis/globalrand"
	"github.com/seqfuzz/lego/internal/analysis/panicdiscipline"
	"github.com/seqfuzz/lego/internal/analysis/unitchecker"
	"github.com/seqfuzz/lego/internal/analysis/walltime"
)

func main() {
	unitchecker.Main(
		detrange.Analyzer,
		globalrand.Analyzer,
		walltime.Analyzer,
		panicdiscipline.Analyzer,
	)
}
