// Command legolint is the vettool that statically enforces the repo's
// campaign-determinism and hot-path contracts. Run it through the go
// command:
//
//	go build -o bin/legolint ./cmd/legolint
//	go vet -vettool=$(pwd)/bin/legolint ./...
//
// or simply `make lint`. Add -json for machine-readable output:
//
//	go vet -json -vettool=$(pwd)/bin/legolint ./...
//
// It ships eight analyzers. Four guard determinism — detrange, globalrand,
// walltime, panicdiscipline — and four guard the PR 6 AST/throughput
// contracts with cross-package facts: nodeexhaustive (annotated type
// switches cover every sqlast node), memoinvalidate (in-place node mutation
// has InvalidateSQL on a call path), hotalloc (//lego:hotpath functions do
// not allocate in loops), and bufretain (//lego:borrowed engine buffers are
// not retained by callers). Each finding is suppressible with
// `//lego:allow <analyzer> — <reason>`; bare or unused allows are
// themselves diagnostics. See internal/analysis and the "Static contracts"
// section of DESIGN.md.
package main

import (
	"github.com/seqfuzz/lego/internal/analysis/bufretain"
	"github.com/seqfuzz/lego/internal/analysis/detrange"
	"github.com/seqfuzz/lego/internal/analysis/globalrand"
	"github.com/seqfuzz/lego/internal/analysis/hotalloc"
	"github.com/seqfuzz/lego/internal/analysis/memoinvalidate"
	"github.com/seqfuzz/lego/internal/analysis/nodeexhaustive"
	"github.com/seqfuzz/lego/internal/analysis/panicdiscipline"
	"github.com/seqfuzz/lego/internal/analysis/unitchecker"
	"github.com/seqfuzz/lego/internal/analysis/walltime"
)

func main() {
	unitchecker.Main(
		detrange.Analyzer,
		globalrand.Analyzer,
		walltime.Analyzer,
		panicdiscipline.Analyzer,
		nodeexhaustive.Analyzer,
		memoinvalidate.Analyzer,
		hotalloc.Analyzer,
		bufretain.Analyzer,
	)
}
