// Command minidb is an interactive SQL shell over the substrate engine —
// handy for exploring the dialect profiles and the statement types the
// fuzzer exercises.
//
// Usage:
//
//	minidb                 # PostgreSQL profile
//	minidb -target comdb2
//	echo 'CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;' | minidb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/seqfuzz/lego"
)

var targets = map[string]lego.Target{
	"postgres":   lego.PostgreSQL,
	"postgresql": lego.PostgreSQL,
	"mysql":      lego.MySQL,
	"mariadb":    lego.MariaDB,
	"comdb2":     lego.Comdb2,
}

func main() {
	target := flag.String("target", "postgres", "dialect profile: postgres, mysql, mariadb, comdb2")
	flag.Parse()

	d, ok := targets[strings.ToLower(*target)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown target %q\n", *target)
		os.Exit(2)
	}
	db := lego.Open(d)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Printf("minidb (%s profile, %d statement types) — end statements with ';', \\q to quit\n",
			d, lego.StatementTypes(d))
	}

	var buf strings.Builder
	prompt := func() {
		if interactive {
			if buf.Len() == 0 {
				fmt.Print("minidb> ")
			} else {
				fmt.Print("   ...> ")
			}
		}
	}
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == `\q` || trimmed == "quit" || trimmed == "exit") {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			runScript(db, buf.String())
			buf.Reset()
		}
		prompt()
	}
	if buf.Len() > 0 {
		runScript(db, buf.String())
	}
}

func runScript(db *lego.DB, sql string) {
	results, err := db.ExecScript(sql)
	for _, res := range results {
		printResult(res)
	}
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
	}
}

func printResult(res *lego.Result) {
	if len(res.Columns) > 0 || len(res.Rows) > 0 {
		if len(res.Columns) > 0 {
			fmt.Println(strings.Join(res.Columns, " | "))
			fmt.Println(strings.Repeat("-", len(strings.Join(res.Columns, " | "))))
		}
		for _, row := range res.Rows {
			fmt.Println(strings.Join(row, " | "))
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
		return
	}
	if res.Affected > 0 {
		fmt.Printf("%s (%d rows affected)\n", res.Msg, res.Affected)
		return
	}
	fmt.Println(res.Msg)
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
