module github.com/seqfuzz/lego

go 1.22
