package lego_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/seqfuzz/lego"
)

func TestOpenAndExec(t *testing.T) {
	db := lego.Open(lego.PostgreSQL)
	if _, err := db.Exec("CREATE TABLE t (a INT, b TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res, err = db.Exec("SELECT b FROM t WHERE a = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "y" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := db.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("missing table must error")
	}
	if _, err := db.Exec("NOT SQL AT ALL"); err == nil {
		t.Fatal("parse errors must surface")
	}
}

func TestExecScriptStopsAtFirstError(t *testing.T) {
	db := lego.Open(lego.MySQL)
	results, err := db.ExecScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
SELECT * FROM missing;
INSERT INTO t VALUES (2);
`)
	if err == nil {
		t.Fatal("script must fail at the bad statement")
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want the 2 before the error", len(results))
	}
	res, err := db.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "1" {
		t.Fatal("statement after the error must not have run")
	}
}

func TestDialectGatingThroughFacade(t *testing.T) {
	db := lego.Open(lego.Comdb2)
	if _, err := db.Exec("NOTIFY ch"); err == nil {
		t.Fatal("Comdb2 must reject NOTIFY")
	}
	if _, err := db.Exec("PRAGMA cache_info"); err != nil {
		t.Fatalf("Comdb2 must accept PRAGMA: %v", err)
	}
}

func TestFuzzSessionReport(t *testing.T) {
	f := lego.NewFuzzer(lego.Config{Target: lego.MariaDB, Seed: 5})
	rep := f.Fuzz(15000)
	if rep.Statements < 15000 || rep.Executions == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Branches == 0 || rep.Affinities == 0 || rep.SeedPool == 0 {
		t.Fatalf("empty metrics: %+v", rep)
	}
	for _, b := range rep.Bugs {
		if b.ID == "" || b.Component == "" || b.Kind == "" {
			t.Fatalf("bug missing identity: %+v", b)
		}
		if !strings.Contains(b.Reproducer, ";") {
			t.Fatalf("reproducer must be a SQL script: %q", b.Reproducer)
		}
	}
	// incremental fuzzing accumulates
	rep2 := f.Fuzz(30000)
	if rep2.Statements < 30000 || rep2.Branches < rep.Branches {
		t.Fatal("state must accumulate across Fuzz calls")
	}
}

func TestLegoMinusThroughFacade(t *testing.T) {
	rep := lego.NewFuzzer(lego.Config{
		Target: lego.MySQL, Seed: 5, DisableSequenceAlgorithms: true,
	}).Fuzz(10000)
	if rep.Affinities != 0 {
		t.Fatalf("LEGO- must not discover affinities, got %d", rep.Affinities)
	}
}

func TestDisableHazards(t *testing.T) {
	rep := lego.NewFuzzer(lego.Config{
		Target: lego.MariaDB, Seed: 5, DisableHazards: true,
	}).Fuzz(20000)
	if len(rep.Bugs) != 0 {
		t.Fatalf("disarmed session found bugs: %v", rep.Bugs)
	}
}

func TestParseTypeSequence(t *testing.T) {
	seq, err := lego.ParseTypeSequence("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if seq != "CREATE TABLE -> INSERT -> SELECT" {
		t.Fatalf("seq = %q", seq)
	}
	if _, err := lego.ParseTypeSequence("???"); err == nil {
		t.Fatal("bad SQL must error")
	}
}

func TestStatementTypes(t *testing.T) {
	if lego.StatementTypes(lego.Comdb2) != 24 {
		t.Fatal("Comdb2 profile size")
	}
	if lego.StatementTypes(lego.PostgreSQL) <= lego.StatementTypes(lego.MySQL) {
		t.Fatal("PostgreSQL must have the largest profile")
	}
}

// ExampleOpen demonstrates direct SQL use of the substrate engine.
func ExampleOpen() {
	db := lego.Open(lego.PostgreSQL)
	db.Exec("CREATE TABLE t (a INT, b TEXT)")
	db.Exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	res, _ := db.Exec("SELECT b FROM t ORDER BY a DESC")
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// y
	// x
}

// ExampleParseTypeSequence shows the paper's core abstraction.
func ExampleParseTypeSequence() {
	seq, _ := lego.ParseTypeSequence(`
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
SELECT v2 FROM t1 ORDER BY v1;
`)
	fmt.Println(seq)
	// Output:
	// CREATE TABLE -> INSERT -> SELECT
}
