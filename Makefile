# Standard entry points for the LEGO reproduction.

GO ?= go

.PHONY: all build vet lint lint-fixtures fmtcheck test test-short bench benchall fmt examples clean ci smoke race-shard chaos perfgate profile

all: build vet lint test

# Everything CI runs, in CI's order; keep .github/workflows/ci.yml in sync.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) fmtcheck
	$(MAKE) lint
	$(MAKE) lint-fixtures
	$(GO) test -race ./...
	$(MAKE) race-shard
	$(MAKE) smoke
	$(MAKE) chaos
	$(MAKE) perfgate

# The sharded executor's schedule-independence gate, named so its failure is
# unambiguous: the determinism claims of internal/shard are only credible
# race-clean, since a data race between shards is exactly a scheduling
# dependence.
race-shard:
	$(GO) test -race -count=1 -run 'Sharded' ./internal/shard/ .

# legolint statically enforces the campaign-determinism invariants (map
# iteration order, global math/rand, wall-clock reads, minidb panic
# discipline) and the cross-package contracts (sqlast switch exhaustiveness,
# memo invalidation, hotpath allocation, borrowed-buffer retention).
# Suppress one finding with `//lego:allow <analyzer> — <reason>`; machine
# output: $(GO) vet -json -vettool=... ./...
lint:
	$(GO) build -o bin/legolint ./cmd/legolint
	$(GO) vet -vettool=$(abspath bin/legolint) ./...

# The analyzers' own test suites: every testdata fixture must produce
# exactly its expected `// want` diagnostics, and facts must survive the
# unitchecker round-trip.
lint-fixtures:
	$(GO) test ./internal/analysis/...

# gofmt cleanliness over the whole tree, fixtures included.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# End-to-end triage gate: a short campaign whose every bug must verify
# STABLE with a minimized reproducer — once single-threaded, once sharded.
smoke:
	$(GO) run ./cmd/legofuzz -target comdb2 -budget 20000 -triage -triage-assert
	$(GO) run ./cmd/legofuzz -target mariadb -budget 20000 -workers 4 -triage -triage-assert

# Chaos determinism gate: run the same supervised chaotic campaign twice and
# demand byte-identical checkpoints — injected worker panics, epoch retries,
# quarantine, and the incident journal must all be pure functions of
# (chaos-rate, chaos-seed).
chaos:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/legofuzz -target mariadb -budget 30000 -workers 4 \
		-epoch-stmts 500 -chaos-rate 0.05 -chaos-seed 7 -checkpoint "$$tmp/a.ckpt" && \
	$(GO) run ./cmd/legofuzz -target mariadb -budget 30000 -workers 4 \
		-epoch-stmts 500 -chaos-rate 0.05 -chaos-seed 7 -checkpoint "$$tmp/b.ckpt" && \
	cmp "$$tmp/a.ckpt" "$$tmp/b.ckpt" && \
	echo "chaos: double-run checkpoints byte-identical"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# One benchmark per paper table/figure, at reduced budgets.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run xxx .

# Regenerate every table/figure at full scale (a few minutes).
benchall:
	$(GO) run ./cmd/benchall

# Throughput regression gate: a short perf snapshot must stay above 70% of
# the committed floor (the workers-1 row of BENCH_perf.json, rounded down).
# It runs in a scratch directory so the short-budget snapshot never
# clobbers the committed BENCH_perf.json / BENCH_history.jsonl — those are
# regenerated deliberately with `make benchall` runs from the repo root.
PERF_FLOOR ?= 198000
perfgate:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/benchall" ./cmd/benchall && \
	cd "$$tmp" && ./benchall -only perf -execs 50000 -perf-floor $(PERF_FLOOR)

# CPU + heap profile of a full-budget perf campaign; leaves cpu.prof and
# mem.prof in the repo root (gitignored). Inspect with `go tool pprof`.
profile:
	$(GO) build -o bin/benchall ./cmd/benchall
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	cd "$$tmp" && $(abspath bin/benchall) -only perf \
		-cpuprofile cpu.prof -memprofile mem.prof && \
	cp cpu.prof mem.prof $(CURDIR)/ && \
	echo "wrote cpu.prof and mem.prof (go tool pprof cpu.prof)"

fmt:
	gofmt -w .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/affinity
	$(GO) run ./examples/compare
	$(GO) run ./examples/casestudy

clean:
	$(GO) clean ./...
