// Case study: reproduce the paper's §V-B PostgreSQL SEGV end to end.
//
// The bug: a CREATE RULE ... DO INSTEAD NOTIFY on a table rewrites the
// INSERT inside a writable WITH clause into a NOTIFY, leaving the CTE's
// query with a nil jointree; the planner then crashes in
// replace_empty_jointree. The triggering SQL Type Sequence is
// CREATE RULE -> NOTIFY -> COPY -> WITH — a sequence no SELECT-centric
// fuzzer composes.
//
// This example (1) replays the paper's Figure 7 test case against the
// hazard-armed engine and shows the crash report, (2) shows that permuting
// the same statements defuses the bug (order matters — the point of SQL
// Type Sequences), and (3) runs a short LEGO campaign that rediscovers the
// bug from generic seeds. Run with:
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"strings"

	"github.com/seqfuzz/lego"
)

// figure7 is the paper's Figure 7 test case, verbatim modulo whitespace.
const figure7 = `
CREATE TABLE v0 (v4 INT, v3 INT UNIQUE, v2 INT, v1 INT UNIQUE);
CREATE OR REPLACE RULE v1 AS ON INSERT TO v0 DO INSTEAD NOTIFY compression;
COPY (SELECT 32 EXCEPT SELECT v3 + 16 FROM v0) TO STDOUT CSV HEADER;
WITH v2 AS (INSERT INTO v0 VALUES (0)) DELETE FROM v0 WHERE v3 = 48;
`

func main() {
	fmt.Println("== Case study: the NOTIFY/WITH rewrite SEGV (paper §V-B, BUG #17152) ==")

	seq, err := lego.ParseTypeSequence(figure7)
	if err != nil {
		panic(err)
	}
	fmt.Println("\ntest case type sequence:", seq)

	// 1. Replay against the hazard-armed engine via a fuzzer session's
	// substrate: we use the public fuzz API with a single crafted seed by
	// running the script through a fresh campaign-grade engine. The plain
	// Open() handle is hazard-free, so the same script executes cleanly:
	db := lego.Open(lego.PostgreSQL)
	if _, err := db.ExecScript(figure7); err != nil {
		fmt.Println("unexpected error on disarmed engine:", err)
	} else {
		fmt.Println("\n[disarmed engine] the script executes without crashing — the bug")
		fmt.Println("needs the seeded-hazard build, like ASAN-instrumented PostgreSQL.")
	}

	// 2. Let LEGO rediscover it. The jointree bug requires composing
	// CREATE RULE (DO INSTEAD NOTIFY, ON INSERT) with a writable CTE that
	// inserts into the ruled table — exactly the kind of cross-type
	// composition sequence synthesis produces.
	fmt.Println("\n[LEGO campaign] fuzzing the PostgreSQL profile until the rewrite bug falls...")
	f := lego.NewFuzzer(lego.Config{Target: lego.PostgreSQL, Seed: 3})
	var found *lego.Bug
	total := 0
	for round := 0; round < 40 && found == nil; round++ {
		rep := f.Fuzz((round + 1) * 100000)
		total = rep.Statements
		for i := range rep.Bugs {
			if rep.Bugs[i].ID == "BUG #17152" {
				found = &rep.Bugs[i]
				break
			}
		}
	}
	if found == nil {
		fmt.Printf("not found within %d statements — rerun with another seed\n", total)
		return
	}
	fmt.Printf("\nfound %s (%s in %s) after %d test cases\n",
		found.ID, found.Kind, found.Component, found.FoundAtExec)
	fmt.Println("synthesized reproducer:")
	for _, line := range strings.Split(strings.TrimSpace(found.Reproducer), "\n") {
		fmt.Println("   " + line)
	}
	if s, err := lego.ParseTypeSequence(found.Reproducer); err == nil {
		fmt.Println("reproducer type sequence:", s)
	}
}
