// Fuzzer comparison: a miniature of the paper's Figure 9 and Table III —
// LEGO against its own ablation (LEGO-) on every dialect, under an equal
// statement budget. LEGO- preserves everything except the sequence-oriented
// algorithms, so the gap isolates the paper's contribution. Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"

	"github.com/seqfuzz/lego"
)

func main() {
	fmt.Println("== LEGO vs LEGO- (sequence algorithms ablated), equal budgets ==")
	fmt.Println()
	fmt.Printf("%-12s %18s %18s %12s\n", "dialect", "branches(-)/(+)", "bugs(-)/(+)", "affinities(+)")

	const budget = 60000
	for _, target := range []lego.Target{lego.PostgreSQL, lego.MySQL, lego.MariaDB, lego.Comdb2} {
		minus := lego.NewFuzzer(lego.Config{
			Target: target, Seed: 11, DisableSequenceAlgorithms: true,
		}).Fuzz(budget)
		full := lego.NewFuzzer(lego.Config{Target: target, Seed: 11}).Fuzz(budget)

		fmt.Printf("%-12s %8d / %-8d %7d / %-8d %12d\n",
			target.String(),
			minus.Branches, full.Branches,
			len(minus.Bugs), len(full.Bugs),
			full.Affinities)
	}

	fmt.Println()
	fmt.Println("The sequence-oriented algorithms buy coverage and bugs on every")
	fmt.Println("dialect: type substitution/insertion/deletion explores new affinities,")
	fmt.Println("and progressive synthesis turns each affinity into many short,")
	fmt.Println("type-diverse test cases that single-statement mutation never builds.")
}
