// Quickstart: fuzz the MariaDB profile for a small budget and print what
// LEGO found — coverage, discovered type-affinities, and bugs with their
// reproducers. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"github.com/seqfuzz/lego"
)

func main() {
	fmt.Println("== LEGO quickstart: sequence-oriented fuzzing of the MariaDB profile ==")

	f := lego.NewFuzzer(lego.Config{Target: lego.MariaDB, Seed: 42})
	rep := f.Fuzz(60000) // 60k statements — a few seconds

	fmt.Printf("\nexecuted  %d test cases (%d statements)\n", rep.Executions, rep.Statements)
	fmt.Printf("branches  %d\n", rep.Branches)
	fmt.Printf("affinities %d discovered (e.g. INSERT -> CREATE TRIGGER)\n", rep.Affinities)
	fmt.Printf("bugs      %d unique crashes\n\n", len(rep.Bugs))

	for i, b := range rep.Bugs {
		if i >= 3 {
			fmt.Printf("... and %d more\n", len(rep.Bugs)-3)
			break
		}
		fmt.Printf("bug %d: %s — %s in the %s component\n", i+1, b.ID, b.Kind, b.Component)
		fmt.Println("reproducer:")
		for _, line := range strings.Split(strings.TrimSpace(b.Reproducer), "\n") {
			fmt.Println("   " + line)
		}
		fmt.Println()
	}

	// The core abstraction: every test case has a SQL Type Sequence.
	seq, err := lego.ParseTypeSequence(`
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
INSERT INTO t1 VALUES (2, 1);
SELECT v2 FROM t1 ORDER BY v1;
`)
	if err != nil {
		panic(err)
	}
	fmt.Println("the paper's Figure 1 seed has the SQL Type Sequence:")
	fmt.Println("   " + seq)
}
