// Affinity explorer: run a short campaign on each dialect and dump the
// type-affinity relation LEGO learned — which statement types meaningfully
// follow which — plus the correlation between a dialect's statement-type
// count and the affinities discovered (the paper's Table IV observation).
// Run with:
//
//	go run ./examples/affinity
package main

import (
	"fmt"

	"github.com/seqfuzz/lego"
)

func main() {
	fmt.Println("== Type-affinity exploration across the four dialect profiles ==")
	fmt.Println()
	fmt.Printf("%-12s %6s %11s %9s %6s\n", "dialect", "types", "affinities", "branches", "bugs")

	for _, target := range []lego.Target{lego.PostgreSQL, lego.MySQL, lego.MariaDB, lego.Comdb2} {
		f := lego.NewFuzzer(lego.Config{Target: target, Seed: 7})
		rep := f.Fuzz(40000)
		fmt.Printf("%-12s %6d %11d %9d %6d\n",
			target.String(), lego.StatementTypes(target), rep.Affinities, rep.Branches, len(rep.Bugs))
	}

	fmt.Println()
	fmt.Println("More statement types give affinity analysis more headroom, which is")
	fmt.Println("why the paper's Table IV correlates type count with both affinity")
	fmt.Println("increments and coverage improvements (Comdb2, with 24 types, gains least).")

	// Show a few concrete affinities by parsing known-good scripts.
	fmt.Println()
	fmt.Println("Affinities extracted from the paper's running examples (Algorithm 2):")
	for _, sql := range []string{
		"CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;",
		"CREATE TABLE t (a INT); INSERT INTO t VALUES (1); CREATE TRIGGER tg AFTER UPDATE ON t FOR EACH ROW INSERT INTO t VALUES (2); SELECT * FROM t;",
		"DROP TABLE IF EXISTS t; CREATE TABLE t (a INT); INSERT INTO t VALUES (1); ALTER SYSTEM SET major_freeze = 1;",
	} {
		seq, err := lego.ParseTypeSequence(sql)
		if err != nil {
			panic(err)
		}
		fmt.Println("  " + seq)
	}
}
