package lego_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/seqfuzz/lego"
)

// TestFacadeDoubleRunDeterminism is the facade-level statement of the
// repo's load-bearing invariant: two campaigns built from identical Configs
// produce byte-identical reports and byte-identical checkpoint files. The
// resume-equivalence tests in resilience_test.go check that one campaign
// can be split and replayed; this one checks that two independent campaigns
// cannot diverge at all — the property legolint's analyzers (detrange,
// globalrand, walltime) enforce statically.
func TestFacadeDoubleRunDeterminism(t *testing.T) {
	cfg := lego.Config{
		Target:    lego.MariaDB,
		Seed:      33,
		FaultRate: 0.001, // exercise organic-panic containment paths too
		Triage:    true,  // and the triage/minimization bookkeeping
	}

	run := func() (lego.Report, []byte) {
		path := filepath.Join(t.TempDir(), "camp.ckpt")
		f := lego.NewFuzzer(cfg)
		rep, err := f.FuzzWithOptions(15000, lego.FuzzOptions{
			CheckpointPath:  path,
			CheckpointEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep, data
	}

	repA, ckptA := run()
	repB, ckptB := run()

	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("reports diverged:\nA: %+v\nB: %+v", repA, repB)
	}
	// Byte-exact claim: the rendered reports must match down to formatting.
	if sa, sb := fmt.Sprintf("%#v", repA), fmt.Sprintf("%#v", repB); sa != sb {
		t.Fatalf("rendered reports diverged:\nA: %s\nB: %s", sa, sb)
	}
	if !bytes.Equal(ckptA, ckptB) {
		t.Fatalf("checkpoint files diverged: %d vs %d bytes", len(ckptA), len(ckptB))
	}

	// The campaign must have actually done something worth comparing.
	if repA.Statements < 15000 || len(repA.Bugs) == 0 {
		t.Fatalf("campaign too shallow to witness determinism: %+v", repA)
	}
}

// TestFacadeShardedDoubleRunDeterminism extends the invariant to parallel
// campaigns: two sharded sessions with identical Configs — including the
// shard topology — produce byte-identical reports and checkpoint files, no
// matter how the per-epoch goroutines were scheduled. This is the facade-
// level acceptance test for the epoch-barrier executor.
func TestFacadeShardedDoubleRunDeterminism(t *testing.T) {
	cfg := lego.Config{
		Target:     lego.MariaDB,
		Seed:       33,
		FaultRate:  0.001,
		Triage:     true,
		Workers:    4,
		EpochStmts: 500,
	}

	run := func() (lego.Report, []byte) {
		path := filepath.Join(t.TempDir(), "camp.ckpt")
		f := lego.NewFuzzer(cfg)
		rep, err := f.FuzzWithOptions(12000, lego.FuzzOptions{
			CheckpointPath:  path,
			CheckpointEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep, data
	}

	repA, ckptA := run()
	repB, ckptB := run()

	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("sharded reports diverged:\nA: %+v\nB: %+v", repA, repB)
	}
	if sa, sb := fmt.Sprintf("%#v", repA), fmt.Sprintf("%#v", repB); sa != sb {
		t.Fatalf("rendered sharded reports diverged:\nA: %s\nB: %s", sa, sb)
	}
	if !bytes.Equal(ckptA, ckptB) {
		t.Fatalf("sharded checkpoint files diverged: %d vs %d bytes", len(ckptA), len(ckptB))
	}
	if repA.Statements < 12000 || len(repA.Bugs) == 0 {
		t.Fatalf("campaign too shallow to witness determinism: %+v", repA)
	}
}

// TestFacadeWorkersOneIsSingleThreaded: Workers <= 1 must not change
// anything — it takes the exact single-threaded code path, so its report
// and checkpoint are identical to a Config that never mentions Workers.
func TestFacadeWorkersOneIsSingleThreaded(t *testing.T) {
	run := func(workers int) (lego.Report, []byte) {
		path := filepath.Join(t.TempDir(), "camp.ckpt")
		f := lego.NewFuzzer(lego.Config{Target: lego.PostgreSQL, Seed: 9, Workers: workers})
		rep, err := f.FuzzWithOptions(6000, lego.FuzzOptions{CheckpointPath: path, CheckpointEvery: 500})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep, data
	}
	repDefault, ckptDefault := run(0)
	repOne, ckptOne := run(1)
	if !reflect.DeepEqual(repDefault, repOne) {
		t.Fatalf("Workers:1 changed the report:\ndefault: %+v\nworkers=1: %+v", repDefault, repOne)
	}
	if !bytes.Equal(ckptDefault, ckptOne) {
		t.Fatal("Workers:1 changed the checkpoint bytes")
	}
}

// TestFacadePlanCacheTransparent is the plan cache's acceptance test: a
// campaign run with the compiled plan cache (the default) is byte-identical
// — report and checkpoint file — to the same campaign run on the pure
// interpreter (DisablePlanCache). The cache is a throughput optimization
// with zero observable footprint: same results, same errors, same coverage
// sites in the same order, same RNG consumption.
func TestFacadePlanCacheTransparent(t *testing.T) {
	run := func(disable bool) (lego.Report, []byte) {
		path := filepath.Join(t.TempDir(), "camp.ckpt")
		f := lego.NewFuzzer(lego.Config{
			Target:           lego.MariaDB,
			Seed:             33,
			FaultRate:        0.001,
			Triage:           true,
			DisablePlanCache: disable,
		})
		rep, err := f.FuzzWithOptions(15000, lego.FuzzOptions{
			CheckpointPath:  path,
			CheckpointEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rep, data
	}

	repOn, ckptOn := run(false)
	repOff, ckptOff := run(true)

	if !reflect.DeepEqual(repOn, repOff) {
		t.Fatalf("plan cache changed the report:\ncache-on:  %+v\ncache-off: %+v", repOn, repOff)
	}
	if sa, sb := fmt.Sprintf("%#v", repOn), fmt.Sprintf("%#v", repOff); sa != sb {
		t.Fatalf("plan cache changed the rendered report:\ncache-on:  %s\ncache-off: %s", sa, sb)
	}
	if !bytes.Equal(ckptOn, ckptOff) {
		t.Fatalf("plan cache changed the checkpoint bytes: %d vs %d", len(ckptOn), len(ckptOff))
	}
	if repOn.Statements < 15000 || len(repOn.Bugs) == 0 {
		t.Fatalf("campaign too shallow to witness equivalence: %+v", repOn)
	}
}

// TestFacadeDoubleRunDeterminismNoSeqAlgorithms covers the ablation
// configuration, whose schedule flows through different code paths
// (mutation only, no affinity/synthesis) and must be just as reproducible.
func TestFacadeDoubleRunDeterminismNoSeqAlgorithms(t *testing.T) {
	cfg := lego.Config{
		Target:                    lego.Comdb2,
		Seed:                      5,
		DisableSequenceAlgorithms: true,
	}
	run := func() lego.Report {
		return lego.NewFuzzer(cfg).Fuzz(8000)
	}
	repA, repB := run(), run()
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("ablation reports diverged:\nA: %+v\nB: %+v", repA, repB)
	}
}
