package lego_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/seqfuzz/lego"
)

// TestFacadeCheckpointResume drives the public durability API end to end:
// a checkpointed campaign resumed from disk must report exactly what the
// uninterrupted campaign reports.
func TestFacadeCheckpointResume(t *testing.T) {
	cfg := lego.Config{Target: lego.MariaDB, Seed: 21, FaultRate: 0.001}
	path := filepath.Join(t.TempDir(), "camp.ckpt")

	// First leg, checkpointed.
	first := lego.NewFuzzer(cfg)
	repA, err := first.FuzzWithCheckpoint(10000, path, 200)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same fuzzer keeps going.
	repRef := first.Fuzz(25000)

	// Resume from disk and run the same second leg.
	resumed, err := lego.ResumeFuzzer(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	repB := resumed.Fuzz(25000)

	if repA.Statements < 10000 {
		t.Fatalf("first leg ran only %d statements", repA.Statements)
	}
	if repRef.Executions != repB.Executions ||
		repRef.Statements != repB.Statements ||
		repRef.Branches != repB.Branches ||
		repRef.Affinities != repB.Affinities ||
		repRef.EnginePanics != repB.EnginePanics ||
		len(repRef.Bugs) != len(repB.Bugs) {
		t.Fatalf("resumed campaign diverged:\nref:     %+v\nresumed: %+v", repRef, repB)
	}
	for i := range repRef.Bugs {
		if repRef.Bugs[i].ID != repB.Bugs[i].ID ||
			repRef.Bugs[i].FoundAtExec != repB.Bugs[i].FoundAtExec {
			t.Fatalf("bug %d differs: %+v vs %+v", i, repRef.Bugs[i], repB.Bugs[i])
		}
	}
}

// TestFacadeFaultCampaignReportsPanics: Config.FaultRate must surface
// contained panics through Report.EnginePanics and as ORGANIC bugs.
func TestFacadeFaultCampaignReportsPanics(t *testing.T) {
	f := lego.NewFuzzer(lego.Config{Target: lego.PostgreSQL, Seed: 2, FaultRate: 0.002})
	rep := f.Fuzz(20000)
	if rep.EnginePanics == 0 {
		t.Fatal("fault campaign must report contained panics")
	}
	organic := 0
	for _, b := range rep.Bugs {
		if strings.HasPrefix(b.ID, "ORGANIC-") {
			organic++
			if b.Kind != "PANIC" || b.Reproducer == "" {
				t.Fatalf("malformed organic bug: %+v", b)
			}
		}
	}
	if organic == 0 {
		t.Fatal("contained panics must surface as ORGANIC bugs")
	}
}

// TestFacadeResumeErrors: bad paths and mismatched configs fail loudly.
func TestFacadeResumeErrors(t *testing.T) {
	if _, err := lego.ResumeFuzzer(lego.Config{Target: lego.MySQL}, "/nonexistent/file.ckpt"); err == nil {
		t.Fatal("missing checkpoint must error")
	}

	path := filepath.Join(t.TempDir(), "c.ckpt")
	f := lego.NewFuzzer(lego.Config{Target: lego.MySQL, Seed: 3})
	if _, err := f.FuzzWithCheckpoint(2000, path, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := lego.ResumeFuzzer(lego.Config{Target: lego.Comdb2, Seed: 3}, path); err == nil {
		t.Fatal("dialect mismatch must error")
	}
}
