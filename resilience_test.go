package lego_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/seqfuzz/lego"
)

// TestFacadeCheckpointResume drives the public durability API end to end:
// a checkpointed campaign resumed from disk must report exactly what the
// uninterrupted campaign reports.
func TestFacadeCheckpointResume(t *testing.T) {
	cfg := lego.Config{Target: lego.MariaDB, Seed: 21, FaultRate: 0.001}
	path := filepath.Join(t.TempDir(), "camp.ckpt")

	// First leg, checkpointed.
	first := lego.NewFuzzer(cfg)
	repA, err := first.FuzzWithCheckpoint(10000, path, 200)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the same fuzzer keeps going.
	repRef := first.Fuzz(25000)

	// Resume from disk and run the same second leg.
	resumed, err := lego.ResumeFuzzer(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	repB := resumed.Fuzz(25000)

	if repA.Statements < 10000 {
		t.Fatalf("first leg ran only %d statements", repA.Statements)
	}
	if repRef.Executions != repB.Executions ||
		repRef.Statements != repB.Statements ||
		repRef.Branches != repB.Branches ||
		repRef.Affinities != repB.Affinities ||
		repRef.EnginePanics != repB.EnginePanics ||
		len(repRef.Bugs) != len(repB.Bugs) {
		t.Fatalf("resumed campaign diverged:\nref:     %+v\nresumed: %+v", repRef, repB)
	}
	for i := range repRef.Bugs {
		if repRef.Bugs[i].ID != repB.Bugs[i].ID ||
			repRef.Bugs[i].FoundAtExec != repB.Bugs[i].FoundAtExec {
			t.Fatalf("bug %d differs: %+v vs %+v", i, repRef.Bugs[i], repB.Bugs[i])
		}
	}
}

// TestFacadeFaultCampaignReportsPanics: Config.FaultRate must surface
// contained panics through Report.EnginePanics and as ORGANIC bugs.
func TestFacadeFaultCampaignReportsPanics(t *testing.T) {
	f := lego.NewFuzzer(lego.Config{Target: lego.PostgreSQL, Seed: 2, FaultRate: 0.002})
	rep := f.Fuzz(20000)
	if rep.EnginePanics == 0 {
		t.Fatal("fault campaign must report contained panics")
	}
	organic := 0
	for _, b := range rep.Bugs {
		if strings.HasPrefix(b.ID, "ORGANIC-") {
			organic++
			if b.Kind != "PANIC" || b.Reproducer == "" {
				t.Fatalf("malformed organic bug: %+v", b)
			}
		}
	}
	if organic == 0 {
		t.Fatal("contained panics must surface as ORGANIC bugs")
	}
}

// TestFacadeTriageMariaDB is the acceptance test for the triage pipeline on
// the default MariaDB target: every reported bug must be replay-verified
// STABLE with a minimized reproducer no longer than the original, strictly
// shorter for at least the long multi-statement discoveries.
func TestFacadeTriageMariaDB(t *testing.T) {
	f := lego.NewFuzzer(lego.Config{Target: lego.MariaDB, Triage: true, TriageReplays: 3})
	rep := f.Fuzz(60000)
	if len(rep.Bugs) == 0 {
		t.Fatal("campaign found no bugs")
	}
	shrunk := 0
	for _, b := range rep.Bugs {
		if b.Status != "STABLE" {
			t.Fatalf("%s: status %q, want STABLE (hazards are deterministic)", b.ID, b.Status)
		}
		if b.Replays != 3 {
			t.Fatalf("%s: %d/3 replays reproduced", b.ID, b.Replays)
		}
		if b.MinimizedLen > b.OriginalLen {
			t.Fatalf("%s: minimized %d > original %d", b.ID, b.MinimizedLen, b.OriginalLen)
		}
		if got := len(strings.Split(strings.TrimSpace(b.Reproducer), "\n")); got != b.MinimizedLen {
			t.Fatalf("%s: reported reproducer has %d statements, MinimizedLen says %d",
				b.ID, got, b.MinimizedLen)
		}
		if b.MinimizedLen < b.OriginalLen {
			shrunk++
		}
		// Replay the *reported* SQL from scratch: parse and execute it the
		// way a human reading the bug report would.
		tc, err := lego.ParseTypeSequence(b.Reproducer)
		if err != nil || tc == "" {
			t.Fatalf("%s: reported reproducer does not parse: %v", b.ID, err)
		}
	}
	if shrunk == 0 {
		t.Fatal("no reproducer got strictly shorter; minimization did nothing")
	}
}

// TestFacadeInterruptedResume: a campaign stopped via FuzzOptions.Stop (the
// CLI's SIGINT path) must flush a resumable checkpoint, report Interrupted,
// and — resumed from that checkpoint — reach the same final bug set as a
// campaign that was never interrupted.
func TestFacadeInterruptedResume(t *testing.T) {
	cfg := lego.Config{Target: lego.MariaDB, Seed: 17, Triage: true}
	const budget = 120000

	// Reference: uninterrupted.
	ref := lego.NewFuzzer(cfg)
	repRef := ref.Fuzz(budget)

	// Interrupted: stop lands at some nondeterministic point mid-run; the
	// final-state equivalence must hold wherever it lands (and trivially if
	// the run finished first).
	path := filepath.Join(t.TempDir(), "sig.ckpt")
	stop := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	intr := lego.NewFuzzer(cfg)
	repI, err := intr.FuzzWithOptions(budget, lego.FuzzOptions{
		CheckpointPath:  path,
		CheckpointEvery: 500,
		Stop:            stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repI.Interrupted && repI.Statements >= budget {
		t.Fatalf("interrupted report claims a full budget: %d", repI.Statements)
	}

	resumed, err := lego.ResumeFuzzer(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	repB := resumed.Fuzz(budget)

	if repRef.Executions != repB.Executions || repRef.Statements != repB.Statements ||
		repRef.Branches != repB.Branches || len(repRef.Bugs) != len(repB.Bugs) {
		t.Fatalf("resumed campaign diverged:\nref:     %+v\nresumed: %+v", repRef, repB)
	}
	for i := range repRef.Bugs {
		if repRef.Bugs[i].ID != repB.Bugs[i].ID ||
			repRef.Bugs[i].FoundAtExec != repB.Bugs[i].FoundAtExec ||
			repRef.Bugs[i].Status != repB.Bugs[i].Status {
			t.Fatalf("bug %d differs: %+v vs %+v", i, repRef.Bugs[i], repB.Bugs[i])
		}
	}
}

// TestFacadeResumeFallsBackToBackup: a corrupted primary checkpoint must not
// kill the resume — the rotated .bak generation is used and the session
// carries a warning.
func TestFacadeResumeFallsBackToBackup(t *testing.T) {
	cfg := lego.Config{Target: lego.MySQL, Seed: 8}
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	f := lego.NewFuzzer(cfg)
	// Two checkpoint generations: a periodic save plus the final flush.
	if _, err := f.FuzzWithCheckpoint(6000, path, 100); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("scribbled over by a dying disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := lego.ResumeFuzzer(cfg, path)
	if err != nil {
		t.Fatalf("resume must fall back to the .bak generation: %v", err)
	}
	if w := resumed.ResumeWarning(); !strings.Contains(w, ".bak") {
		t.Fatalf("fallback must carry a warning naming the backup, got %q", w)
	}
	// The restored campaign is live: it can keep fuzzing.
	rep := resumed.Fuzz(8000)
	if rep.Statements < 8000 {
		t.Fatalf("resumed campaign ran only %d statements", rep.Statements)
	}
}

// TestFacadeChaosCampaign drives the chaos plane through the public API: a
// supervised campaign under a fixed (ChaosRate, ChaosSeed) must complete,
// journal its incidents in the report, and produce the exact same report —
// incidents included — when run again.
func TestFacadeChaosCampaign(t *testing.T) {
	cfg := lego.Config{
		Target:     lego.MariaDB,
		Seed:       21,
		Workers:    3,
		EpochStmts: 500,
		ChaosRate:  0.08,
		ChaosSeed:  7,
	}
	// A chaotic campaign may quarantine a shard and finish below budget —
	// that is the documented degradation, not a failure — but it must make
	// real progress.
	run := func() lego.Report {
		rep := lego.NewFuzzer(cfg).Fuzz(12000)
		if rep.Statements < 6000 {
			t.Fatalf("chaotic campaign ran only %d statements", rep.Statements)
		}
		return rep
	}
	repA := run()
	repB := run()

	if repA.Workers != 3 {
		t.Fatalf("report claims %d workers, config asked for 3", repA.Workers)
	}
	if len(repA.Incidents) == 0 {
		t.Fatal("chaos at rate 0.08 over 24 shard-epochs injected nothing; the plane is not armed")
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("chaotic campaign is not deterministic:\nA: %+v\nB: %+v", repA, repB)
	}
	for _, in := range repA.Incidents {
		if in.Kind == "" || in.Outcome == "" || in.Detail == "" {
			t.Fatalf("incomplete incident record: %+v", in)
		}
	}
}

// TestFacadeChaosQuarantineDegrades: with every epoch failing and the retry
// budget at its floor, all shards quarantine — and the public API still
// returns a completed report describing the degraded topology instead of an
// error.
func TestFacadeChaosQuarantineDegrades(t *testing.T) {
	rep := lego.NewFuzzer(lego.Config{
		Target:          lego.MariaDB,
		Seed:            5,
		Workers:         2,
		EpochStmts:      400,
		ChaosRate:       1,
		ChaosSeed:       3,
		MaxEpochRetries: -1, // quarantine on first failure
	}).Fuzz(8000)

	if len(rep.Quarantined) != 2 {
		t.Fatalf("rate-1 chaos with no retries must quarantine both shards, got %v", rep.Quarantined)
	}
	if rep.Workers != 2 {
		t.Fatalf("report must keep the starting topology, got %d workers", rep.Workers)
	}
	for _, in := range rep.Incidents {
		if in.Outcome != "QUARANTINED" {
			t.Fatalf("no-retry campaign journaled a non-quarantine outcome: %+v", in)
		}
	}
}

// TestFacadeChaosSingleWorkerSupervised: ChaosRate > 0 with Workers == 1 must
// route through the supervised executor — a single-worker campaign gets the
// same recovery machinery, not a silent fall-through to the bare fuzzer.
func TestFacadeChaosSingleWorkerSupervised(t *testing.T) {
	rep := lego.NewFuzzer(lego.Config{
		Target:     lego.MySQL,
		Seed:       9,
		EpochStmts: 300,
		ChaosRate:  0.2,
		ChaosSeed:  4,
	}).Fuzz(6000)
	if rep.Workers != 1 {
		t.Fatalf("single-worker chaos campaign reports %d workers", rep.Workers)
	}
	if len(rep.Incidents) == 0 {
		t.Fatal("rate-0.2 chaos over 20 epochs injected nothing on the single-worker path")
	}
}

// TestFacadeResumeErrors: bad paths and mismatched configs fail loudly.
func TestFacadeResumeErrors(t *testing.T) {
	if _, err := lego.ResumeFuzzer(lego.Config{Target: lego.MySQL}, "/nonexistent/file.ckpt"); err == nil {
		t.Fatal("missing checkpoint must error")
	}

	path := filepath.Join(t.TempDir(), "c.ckpt")
	f := lego.NewFuzzer(lego.Config{Target: lego.MySQL, Seed: 3})
	if _, err := f.FuzzWithCheckpoint(2000, path, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := lego.ResumeFuzzer(lego.Config{Target: lego.Comdb2, Seed: 3}, path); err == nil {
		t.Fatal("dialect mismatch must error")
	}
}
