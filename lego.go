// Package lego is the public API of the LEGO reproduction: a sequence-
// oriented DBMS fuzzer (Liang et al., "Sequence-Oriented DBMS Fuzzing",
// ICDE 2023) together with the full substrate it runs on — an in-memory
// multi-dialect SQL engine with AFL-style branch-coverage feedback and a
// seeded memory-safety bug corpus.
//
// # Quick start
//
//	f := lego.NewFuzzer(lego.Config{Target: lego.MariaDB})
//	report := f.Fuzz(200000) // statement budget
//	fmt.Println(report.Branches, report.Bugs)
//
// # What the fuzzer does
//
// LEGO's contribution is generating test cases with abundant SQL Type
// Sequences. Each iteration proactively mutates a seed's statement types
// (substitution / insertion / deletion), extracts type-affinities from
// mutants that covered new branches, and progressively synthesizes every
// new type sequence containing a newly discovered affinity, instantiating
// each into executable SQL via an AST structure library with dependency
// fixing. See DESIGN.md for the module map and EXPERIMENTS.md for the
// reproduction of the paper's tables and figures.
package lego

import (
	"errors"
	"fmt"

	"github.com/seqfuzz/lego/internal/chaos"
	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/shard"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
	"github.com/seqfuzz/lego/internal/triage"
)

// Target selects the DBMS dialect profile to fuzz, mirroring the paper's
// four evaluation targets.
type Target = sqlt.Dialect

// The four target profiles.
const (
	PostgreSQL = sqlt.DialectPostgres
	MySQL      = sqlt.DialectMySQL
	MariaDB    = sqlt.DialectMariaDB
	Comdb2     = sqlt.DialectComdb2
)

// Config configures a fuzzing session.
type Config struct {
	// Target is the DBMS profile to fuzz (default PostgreSQL).
	Target Target
	// Seed makes the whole session deterministic (default 1).
	Seed int64
	// MaxSequenceLength is Algorithm 3's LEN cap (default 5).
	MaxSequenceLength int
	// DisableSequenceAlgorithms runs the LEGO- ablation: conventional
	// intra-statement mutation only.
	DisableSequenceAlgorithms bool
	// DisableHazards turns off the seeded bug corpus; the engine then never
	// crashes and the session measures pure coverage.
	DisableHazards bool
	// SplitLongSeeds enables the paper's §VI future-work extension: long
	// retained seeds are additionally split into overlapping short seeds.
	SplitLongSeeds bool
	// FaultRate arms the engine's deterministic fault injector: each
	// statement panics with a non-seeded (organic) fault at this
	// probability, exercising the harness's crash containment. Contained
	// panics surface as Report.EnginePanics and as deduplicated PANIC
	// bugs. Zero disables injection.
	FaultRate float64
	// Triage runs the crash triage pipeline when a Fuzz call ends: every
	// unique crash is re-verified on a fresh quarantined engine and
	// classified STABLE/FLAKY/LOST, and its reproducer is minimized with
	// ddmin (accepting only candidates that crash with the same call
	// stack). Results land in Bug.Status, Bug.OriginalLen,
	// Bug.MinimizedLen, and Bug.Replays, and persist in checkpoints.
	Triage bool
	// TriageReplays is the number of verification replays per crash
	// (default 3).
	TriageReplays int
	// TriageBudget caps the ddmin candidate replays spent minimizing one
	// crash (default 256), so triage is bounded even on pathological
	// reproducers.
	TriageBudget int
	// Workers runs the campaign as N parallel shards — each a complete
	// private fuzzer seeded Seed+shardID — that merge deterministically at
	// epoch barriers: coverage OR-folds, seeds and affinities and crashes
	// cross-pollinate, all in fixed shard order. The report and checkpoint
	// depend only on (Config, Workers, EpochStmts), never on goroutine
	// scheduling. Workers <= 1 (the default) uses the single-threaded path
	// unchanged.
	Workers int
	// EpochStmts is the per-shard statement budget between merge barriers
	// (default 2000). Like Seed, it is part of a sharded campaign's
	// identity: a checkpoint only resumes under the same value. Ignored
	// when Workers <= 1.
	EpochStmts int
	// ChaosRate arms the deterministic chaos plane on the supervised
	// (sharded) path: worker panics, epoch stalls, and checkpoint I/O
	// faults are injected with this per-decision probability, on a schedule
	// that is a pure function of (ChaosRate, ChaosSeed). Failed epochs are
	// retried from the last barrier snapshot; shards that exhaust
	// MaxEpochRetries are quarantined and the campaign degrades gracefully.
	// Setting ChaosRate forces the supervised executor even with one
	// worker. Zero (the default) injects nothing and leaves reports and
	// checkpoints byte-identical to an unsupervised session.
	ChaosRate float64
	// ChaosSeed selects the fault schedule (default: Seed). Like Seed it is
	// campaign identity: a chaotic checkpoint only resumes under the same
	// schedule.
	ChaosSeed int64
	// MaxEpochRetries is the cumulative per-shard retry budget in epoch
	// re-runs (default 3; negative means quarantine on first failure).
	MaxEpochRetries int
	// DisablePlanCache turns off the engine's compiled-plan execution layer
	// and runs every expression through the tree-walking interpreter.
	// Campaign reports and checkpoints are byte-identical either way (the
	// compiled path fires identical coverage by contract); the flag exists
	// for throughput baselining and as an escape hatch.
	DisablePlanCache bool
}

// Bug describes one deduplicated crash.
type Bug struct {
	// ID is the stable identifier of the seeded bug (CVE/MDEV/BUG style).
	ID string
	// Component is the engine component the bug lives in.
	Component string
	// Kind is the memory-safety class (SEGV, UAF, BOF, ...).
	Kind string
	// Reproducer is the shortest known SQL script that triggers the crash:
	// the first-seen script, shortened whenever the same stack recurs with
	// fewer statements, and ddmin-minimized when triage is enabled.
	Reproducer string
	// FoundAtExec is the execution count at discovery.
	FoundAtExec int

	// Status is the triage classification: "STABLE" (every verification
	// replay reproduced the same call stack on a fresh engine), "FLAKY"
	// (some did), or "LOST" (none did). Empty when triage did not run.
	Status string
	// OriginalLen and MinimizedLen are the reproducer's statement counts
	// before and after minimization (zero when triage did not run).
	OriginalLen  int
	MinimizedLen int
	// Replays is how many of Config.TriageReplays verification replays
	// reproduced the crash.
	Replays int
}

// Report summarizes a fuzzing session.
type Report struct {
	// Executions is the number of test cases executed.
	Executions int
	// Statements is the number of SQL statements executed.
	Statements int
	// Branches is the branch-coverage metric (distinct coverage edges).
	Branches int
	// Affinities is the number of type-affinities discovered (zero when
	// sequence algorithms are disabled).
	Affinities int
	// SeedPool is the final corpus size.
	SeedPool int
	// EnginePanics counts organic engine panics that the harness contained
	// (converted to synthetic PANIC bugs) instead of dying. Always zero
	// unless the engine has a genuine defect or Config.FaultRate is set.
	EnginePanics int
	// Interrupted reports that the run ended on FuzzOptions.Stop with
	// budget remaining: the report covers a gracefully shut-down partial
	// campaign, not a completed one.
	Interrupted bool
	// Bugs lists the unique crashes found, in discovery order.
	Bugs []Bug

	// Workers is the campaign's starting worker topology (1 on the
	// single-threaded path).
	Workers int
	// Quarantined lists the shards whose retry budget was exhausted; the
	// campaign finished degraded to Workers-len(Quarantined) workers.
	Quarantined []int
	// Incidents is the supervised campaign's failure journal: every worker
	// failure (injected or organic) and how the supervisor resolved it, in
	// occurrence order. Deterministic for a fixed (Config, ChaosRate,
	// ChaosSeed).
	Incidents []Incident
	// SaveFaults counts checkpoint saves eaten by injected I/O faults (the
	// campaign skipped them and kept running; the previous generation
	// remained on disk).
	SaveFaults int
}

// Incident is one entry of a supervised campaign's failure journal.
type Incident struct {
	// Epoch is the barrier interval the failure struck in; Shard the failed
	// worker.
	Epoch, Shard int
	// Kind classifies the failure: WORKER_PANIC or EPOCH_STALL (injected by
	// the chaos plane), or ORGANIC_PANIC (a real panic the supervisor
	// contained).
	Kind string
	// Retries is the shard's cumulative retry tally after this incident;
	// Outcome is RETRIED or QUARANTINED.
	Retries int
	Outcome string
	// Detail carries the fault's coordinates or the normalized panic stack.
	Detail string
}

// Fuzzer is a LEGO fuzzing session against one target. Exactly one of
// inner (single-threaded) and sharded (Workers > 1) is set.
type Fuzzer struct {
	inner   *core.Fuzzer
	sharded *shard.Executor
	cfg     Config
	// resumeWarning is set when ResumeFuzzer had to fall back to the
	// rotated .bak checkpoint generation.
	resumeWarning string
}

func (cfg Config) options() core.Options {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return core.Options{
		Dialect:                   cfg.Target,
		Seed:                      seed,
		MaxLen:                    cfg.MaxSequenceLength,
		DisableSequenceAlgorithms: cfg.DisableSequenceAlgorithms,
		Hazards:                   !cfg.DisableHazards,
		SplitLongSeeds:            cfg.SplitLongSeeds,
		FaultRate:                 cfg.FaultRate,
		DisablePlanCache:          cfg.DisablePlanCache,
	}
}

func (cfg Config) shardOptions() shard.Options {
	return shard.Options{
		Core:            cfg.options(),
		Workers:         cfg.Workers,
		EpochStmts:      cfg.EpochStmts,
		ChaosRate:       cfg.ChaosRate,
		ChaosSeed:       cfg.ChaosSeed,
		MaxEpochRetries: cfg.MaxEpochRetries,
	}
}

// NewFuzzer builds a fuzzing session. Parallel campaigns (Workers > 1) and
// chaotic ones (ChaosRate > 0, any worker count) run on the supervised
// sharded executor; everything else uses the single-threaded path.
func NewFuzzer(cfg Config) *Fuzzer {
	if cfg.Workers > 1 || cfg.ChaosRate > 0 {
		return &Fuzzer{sharded: shard.New(cfg.shardOptions()), cfg: cfg}
	}
	return &Fuzzer{inner: core.New(cfg.options()), cfg: cfg}
}

// ResumeFuzzer rebuilds a fuzzing session from a checkpoint file written by
// FuzzWithCheckpoint. cfg must describe the same campaign (target, seed,
// sequence length); the restored session continues exactly where the
// checkpoint left off, with the same schedule and discoveries as an
// uninterrupted run. When the primary checkpoint is corrupt or truncated,
// the rotated last-good <path>.bak generation is used instead and
// ResumeWarning reports the substitution.
func ResumeFuzzer(cfg Config, path string) (*Fuzzer, error) {
	st, warning, err := checkpoint.LoadWithFallback(path)
	if err != nil {
		return nil, err
	}
	// A sharded checkpoint (or a sharded config) routes through the
	// executor, which validates that the topology matches; a chaotic
	// checkpoint (or config) does too, whatever its worker count, since only
	// the supervised executor can replay its fault schedule. A single-shard
	// checkpoint under Workers <= 1 stays on the single-threaded path.
	if cfg.Workers > 1 || st.Workers > 1 || cfg.ChaosRate > 0 || st.ChaosRate != 0 {
		ex, err := shard.Resume(cfg.shardOptions(), st)
		if err != nil {
			return nil, err
		}
		return &Fuzzer{sharded: ex, cfg: cfg, resumeWarning: warning}, nil
	}
	inner, err := core.Resume(cfg.options(), st)
	if err != nil {
		return nil, err
	}
	return &Fuzzer{inner: inner, cfg: cfg, resumeWarning: warning}, nil
}

// ResumeWarning is non-empty when ResumeFuzzer could not read the primary
// checkpoint and restored the rotated .bak generation; it describes what was
// lost. Callers should surface it to the operator.
func (f *Fuzzer) ResumeWarning() string { return f.resumeWarning }

// FuzzOptions configures one FuzzWithOptions call.
type FuzzOptions struct {
	// CheckpointPath, when non-empty, persists campaign state there
	// (atomically, checksummed, with a .bak rotation) every
	// CheckpointEvery test-case executions and once when the run ends —
	// including a run ended by Stop, so an interrupted campaign loses no
	// work.
	CheckpointPath  string
	CheckpointEvery int
	// Stop requests graceful shutdown: when the channel is closed the
	// campaign finishes the fuzzing iteration in flight, stops, flushes
	// its final checkpoint, still runs triage (when Config.Triage is set),
	// and returns a partial report with Interrupted set. Because the stop
	// lands on an iteration boundary — a state an uninterrupted campaign
	// also passes through — resuming the flushed checkpoint and finishing
	// the budget reproduces the uninterrupted campaign exactly. A nil
	// channel never stops.
	Stop <-chan struct{}
}

// Fuzz runs until budgetStmts SQL statements have been executed and returns
// the session report. It may be called repeatedly; state accumulates.
func (f *Fuzzer) Fuzz(budgetStmts int) Report {
	rep, _ := f.FuzzWithOptions(budgetStmts, FuzzOptions{})
	return rep
}

// FuzzWithCheckpoint runs like Fuzz but additionally writes the campaign
// state to path every everyExecs test-case executions (atomically, with a
// checksum) and once more when the budget is exhausted, so the campaign can
// be resumed with ResumeFuzzer after a crash or shutdown.
func (f *Fuzzer) FuzzWithCheckpoint(budgetStmts int, path string, everyExecs int) (Report, error) {
	return f.FuzzWithOptions(budgetStmts, FuzzOptions{CheckpointPath: path, CheckpointEvery: everyExecs})
}

// FuzzWithOptions is the full-featured campaign entry point behind Fuzz and
// FuzzWithCheckpoint: statement budget plus optional checkpointing and
// graceful shutdown. When Config.Triage is set, the triage pipeline runs
// after the loop ends (completed or interrupted) and the checkpoint is
// re-flushed so the triage results persist.
func (f *Fuzzer) FuzzWithOptions(budgetStmts int, opts FuzzOptions) (Report, error) {
	if f.sharded != nil {
		// Sharded saves route through the executor's filesystem, so an armed
		// chaos plane can inject checkpoint I/O faults; the executor skips
		// eaten saves (the previous generation stays on disk) and real disk
		// errors still abort.
		var save func(*checkpoint.State) error
		if opts.CheckpointPath != "" {
			save = func(st *checkpoint.State) error {
				return checkpoint.SaveFS(f.sharded.FS(), opts.CheckpointPath, st)
			}
		}
		interrupted, err := f.sharded.Run(budgetStmts, shard.RunOptions{
			EveryExecs: opts.CheckpointEvery,
			Save:       save,
			Stop:       opts.Stop,
		})
		if err == nil && f.cfg.Triage {
			f.sharded.Triage(triage.Config{Replays: f.cfg.TriageReplays, Budget: f.cfg.TriageBudget})
			if save != nil {
				if serr := save(f.sharded.Snapshot()); serr != nil && !errors.Is(serr, chaos.ErrInjected) {
					err = serr
				}
			}
		}
		rep := f.shardedReport()
		rep.Interrupted = interrupted
		return rep, err
	}
	var save func(*checkpoint.State) error
	if opts.CheckpointPath != "" {
		save = func(st *checkpoint.State) error {
			return checkpoint.Save(opts.CheckpointPath, st)
		}
	}
	runner, interrupted, err := f.inner.RunWithOptions(budgetStmts, core.RunOptions{
		EveryExecs: opts.CheckpointEvery,
		Save:       save,
		Stop:       opts.Stop,
	})
	if err == nil && f.cfg.Triage {
		f.inner.Triage(triage.Config{Replays: f.cfg.TriageReplays, Budget: f.cfg.TriageBudget})
		if save != nil {
			err = save(f.inner.Snapshot())
		}
	}
	rep := f.report(runner)
	rep.Interrupted = interrupted
	return rep, err
}

func (f *Fuzzer) report(runner *harness.Runner) Report {
	return Report{
		Executions:   runner.Execs,
		Statements:   runner.Stmts,
		Branches:     runner.Branches(),
		Affinities:   f.inner.Affinities(),
		SeedPool:     f.inner.Pool().Len(),
		EnginePanics: runner.EnginePanics,
		Bugs:         bugsFrom(runner.Oracle.Crashes()),
		Workers:      1,
	}
}

// shardedReport summarizes a sharded campaign from its merged global view:
// totals across shards, the OR-folded coverage, the global oracle, and the
// supervision plane's journal and degradation record.
func (f *Fuzzer) shardedReport() Report {
	var incidents []Incident
	for _, in := range f.sharded.Incidents() {
		incidents = append(incidents, Incident{
			Epoch:   in.Epoch,
			Shard:   in.Shard,
			Kind:    in.Kind,
			Retries: in.Retries,
			Outcome: in.Outcome,
			Detail:  in.Detail,
		})
	}
	return Report{
		Executions:   f.sharded.Execs(),
		Statements:   f.sharded.Stmts(),
		Branches:     f.sharded.Branches(),
		Affinities:   f.sharded.Affinities(),
		SeedPool:     f.sharded.PoolLen(),
		EnginePanics: f.sharded.EnginePanics(),
		Bugs:         bugsFrom(f.sharded.Oracle().Crashes()),
		Workers:      f.sharded.Workers(),
		Quarantined:  f.sharded.QuarantinedShards(),
		Incidents:    incidents,
		SaveFaults:   f.sharded.SaveFaults(),
	}
}

func bugsFrom(crashes []*oracle.Crash) []Bug {
	var bugs []Bug
	for _, c := range crashes {
		bugs = append(bugs, Bug{
			ID:          c.Report.ID,
			Component:   c.Report.Component,
			Kind:        c.Report.Kind,
			Reproducer:  c.Reproducer.SQL(),
			FoundAtExec: c.FoundAtExec,

			Status:       c.Status,
			OriginalLen:  c.OriginalLen,
			MinimizedLen: c.MinimizedLen,
			Replays:      c.Replays,
		})
	}
	return bugs
}

// DB is a standalone handle on the substrate engine, for direct SQL use
// (examples, the REPL, and downstream experimentation).
type DB struct {
	eng *minidb.Engine
}

// Open creates a fresh in-memory database with the given dialect profile.
// Hazards are disarmed: Open'd databases never crash.
func Open(t Target) *DB {
	return &DB{eng: minidb.New(minidb.Config{Dialect: t})}
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (queries only).
	Columns []string
	// Rows holds result rows rendered as strings.
	Rows [][]string
	// Affected is the row count touched by DML.
	Affected int
	// Msg is the informational tag of non-query statements.
	Msg string
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	res, err := db.eng.ExecStmt(stmt)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error.
func (db *DB) ExecScript(sql string) ([]*Result, error) {
	tc, err := sqlparse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, stmt := range tc {
		res, err := db.eng.ExecStmt(stmt)
		if err != nil {
			return out, fmt.Errorf("%s: %w", stmt.Type(), err)
		}
		out = append(out, convertResult(res))
	}
	return out, nil
}

func convertResult(res *minidb.Result) *Result {
	out := &Result{Columns: res.Cols, Affected: res.Affected, Msg: res.Msg}
	for _, row := range res.Rows {
		srow := make([]string, len(row))
		for i, v := range row {
			srow[i] = v.String()
		}
		out.Rows = append(out.Rows, srow)
	}
	return out
}

// ParseTypeSequence parses a SQL script and returns its SQL Type Sequence
// in the paper's arrow notation — a convenience for exploring the core
// abstraction.
func ParseTypeSequence(sql string) (string, error) {
	tc, err := sqlparse.ParseScript(sql)
	if err != nil {
		return "", err
	}
	return tc.Types().String(), nil
}

// StatementTypes returns the number of statement types a target accepts
// (the "Types" column of the paper's Table IV).
func StatementTypes(t Target) int { return t.NumStatementTypes() }
