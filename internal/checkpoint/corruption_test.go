package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeEnvelope writes a hand-built envelope: the state payload, checksummed
// by sumFor unless a checksum override is given — the knob each corruption
// case below turns.
func writeEnvelope(t *testing.T, path string, payload []byte, checksum string) {
	t.Helper()
	if checksum == "" {
		h := sha256.Sum256(payload)
		checksum = "sha256:" + hex.EncodeToString(h[:])
	}
	data, err := json.MarshalIndent(envelope{Checksum: checksum, State: payload}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadCorruptionMatrix drives Load through the on-disk failure modes a
// long campaign can meet — torn files, flipped bits, future formats — and
// asserts each error message names its failure, so an operator looking at a
// dead resume knows whether to reach for the backup, a newer binary, or a
// shrug.
func TestLoadCorruptionMatrix(t *testing.T) {
	dir := t.TempDir()

	validPayload := func(version int) []byte {
		st := sample()
		st.Version = version
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cases := []struct {
		name    string
		write   func(t *testing.T, path string)
		wantErr string
	}{
		{
			// A crash mid-write without the atomic rename protocol: half an
			// envelope is not JSON.
			name: "truncated envelope",
			write: func(t *testing.T, path string) {
				if err := Save(path, sample()); err != nil {
					t.Fatal(err)
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "is not a checkpoint file",
		},
		{
			// Disk corruption under an intact envelope: the payload no longer
			// matches its checksum.
			name: "bit-flipped payload",
			write: func(t *testing.T, path string) {
				good := validPayload(3)
				bad := []byte(strings.Replace(string(good), `"execs":1234`, `"execs":1235`, 1))
				if string(bad) == string(good) {
					t.Fatal("corruption did not land; fixture drifted")
				}
				h := sha256.Sum256(good)
				writeEnvelope(t, path, bad, "sha256:"+hex.EncodeToString(h[:]))
			},
			wantErr: "is corrupt: checksum",
		},
		{
			// A file from a future build: checksum verifies, version does not.
			name: "checksum-valid but unknown future version",
			write: func(t *testing.T, path string) {
				writeEnvelope(t, path, validPayload(99), "")
			},
			wantErr: "format version 99",
		},
		{
			// A file from before the readable range: v1 readers are gone.
			name: "checksum-valid but pre-v2 version",
			write: func(t *testing.T, path string) {
				writeEnvelope(t, path, validPayload(1), "")
			},
			wantErr: "format version 1",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".ckpt")
			tc.write(t, path)
			_, err := Load(path)
			if err == nil {
				t.Fatalf("Load accepted a %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error does not name the failure:\n  got  %v\n  want substring %q", err, tc.wantErr)
			}

			// With no backup on disk, LoadWithFallback must surface the
			// primary's own diagnosis, not a missing-.bak distraction.
			_, warning, ferr := LoadWithFallback(path)
			if ferr == nil {
				t.Fatal("LoadWithFallback succeeded with no usable generation")
			}
			if !strings.Contains(ferr.Error(), tc.wantErr) {
				t.Fatalf("fallback error lost the primary diagnosis: %v", ferr)
			}
			if warning != "" {
				t.Fatalf("fallback with no backup produced a warning: %q", warning)
			}
		})
	}
}

// TestLoadWithFallbackRecoversEachCorruption: the same corruption matrix,
// but with a rotated last-good generation present — every case must resume
// from the backup and say so.
func TestLoadWithFallbackRecoversEachCorruption(t *testing.T) {
	for _, corrupt := range []struct {
		name string
		mut  func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/3] }},
		{"emptied", func(d []byte) []byte { return nil }},
		{"garbage", func(d []byte) []byte { return []byte("not json at all") }},
	} {
		t.Run(corrupt.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.ckpt")
			if err := Save(path, sample()); err != nil {
				t.Fatal(err)
			}
			second := sample()
			second.Execs = 9999
			if err := Save(path, second); err != nil { // rotates first save to .bak
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt.mut(data), 0o644); err != nil {
				t.Fatal(err)
			}

			st, warning, err := LoadWithFallback(path)
			if err != nil {
				t.Fatalf("fallback failed: %v", err)
			}
			if st.Execs != 1234 {
				t.Fatalf("fallback loaded execs=%d, want the rotated generation's 1234", st.Execs)
			}
			if !strings.Contains(warning, BackupSuffix) || !strings.Contains(warning, path) {
				t.Fatalf("warning must name both generations: %q", warning)
			}
		})
	}
}

// TestVersionStamping pins versionFor: v4 features promote the stamp,
// their absence keeps the compatible v3.
func TestVersionStamping(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*State)
		want int
	}{
		{"clean state", func(*State) {}, 3},
		{"chaos identity", func(st *State) { st.ChaosRate = 0.1; st.ChaosSeed = 7 }, 4},
		{"retry budget", func(st *State) { st.MaxEpochRetries = 3 }, 4},
		{"incident journal", func(st *State) {
			st.Incidents = []Incident{{Epoch: 1, Shard: 0, Kind: "WORKER_PANIC", Retries: 1, Outcome: "RETRIED"}}
		}, 4},
		{"quarantined shard entry", func(st *State) {
			st.Shards = []*State{sample(), sample()}
			st.Shards[1].Quarantined = true
		}, 4},
		{"shard retry tally", func(st *State) {
			st.Shards = []*State{sample()}
			st.Shards[0].Retries = 2
		}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "c.ckpt")
			st := sample()
			tc.mut(st)
			if err := Save(path, st); err != nil {
				t.Fatal(err)
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if got.Version != tc.want {
				t.Fatalf("version = %d, want %d", got.Version, tc.want)
			}
		})
	}
}

// TestV4RoundTrip: the supervision fields survive a save/load cycle.
func TestV4RoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	st := sample()
	st.ChaosRate = 0.25
	st.ChaosSeed = 11
	st.MaxEpochRetries = 3
	st.Incidents = []Incident{
		{Epoch: 2, Shard: 1, Kind: "WORKER_PANIC", Retries: 1, Outcome: "RETRIED", Detail: "chaos: injected worker panic (epoch 2, shard 1, attempt 0)"},
		{Epoch: 5, Shard: 1, Kind: "EPOCH_STALL", Retries: 3, Outcome: "QUARANTINED"},
	}
	sh := sample()
	sh.Quarantined = true
	sh.Retries = 3
	st.Shards = []*State{sample(), sh}
	st.Workers = 2

	if err := Save(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChaosRate != 0.25 || got.ChaosSeed != 11 || got.MaxEpochRetries != 3 {
		t.Fatalf("chaos identity lost: %+v", got)
	}
	if len(got.Incidents) != 2 || got.Incidents[1].Outcome != "QUARANTINED" || got.Incidents[0].Detail == "" {
		t.Fatalf("incident journal lost: %+v", got.Incidents)
	}
	if !got.Shards[1].Quarantined || got.Shards[1].Retries != 3 || got.Shards[0].Quarantined {
		t.Fatalf("shard supervision fields lost: %+v %+v", got.Shards[0], got.Shards[1])
	}
}
