package checkpoint

import (
	"io"
	"io/fs"
	"os"
)

// FS abstracts the handful of filesystem operations Save performs, so the
// file protocol can be exercised against injected I/O faults (ENOSPC, torn
// temp writes, rename failures — see internal/chaos) without touching a real
// disk's failure modes. Load stays on the real filesystem: fault injection
// targets the write path, where a campaign can lose work.
type FS interface {
	// CreateTemp creates a new temporary file in dir, as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Stat names an existing file, as os.Stat.
	Stat(name string) (fs.FileInfo, error)
	// Rename atomically replaces newpath with oldpath, as os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file, as os.Remove.
	Remove(name string) error
	// SyncDir fsyncs a directory, flushing the directory entry updates made
	// by Rename so a crash cannot forget a just-renamed file.
	SyncDir(dir string) error
}

// File is the writable temp-file handle Save drives through its
// write-sync-close-rename protocol.
type File interface {
	io.Writer
	// Sync flushes the file contents to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
	// Name returns the file's path.
	Name() string
}

// OS is the real filesystem; Save(path, st) is SaveFS(OS, path, st).
var OS FS = osFS{}

type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
