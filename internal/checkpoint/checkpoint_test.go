package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *State {
	return &State{
		Dialect:      2,
		Seed:         7,
		MaxLen:       5,
		Execs:        1234,
		Stmts:        5678,
		EnginePanics: 3,
		RNG:          0xdeadbeefcafef00d,
		FaultState:   42,
		Pool: []PoolSeed{
			{SQL: "CREATE TABLE t (a INT);", NewEdges: 9, Picked: 2},
			{SQL: "SELECT 1;", NewEdges: 1, Picked: 0},
		},
		Affinity:    [][2]uint16{{1, 2}, {2, 3}},
		GenAffinity: [][2]uint16{{1, 2}},
		Coverage:    []Edge{{Idx: 10, Mask: 3}, {Idx: 99, Mask: 128}},
		Crashes: []Crash{{
			ID: "ORGANIC-0badf00d", Component: "Engine", Kind: "PANIC",
			Stack: []string{"minidb.(*Engine).dispatch"}, Window: []uint16{1, 4},
			Reproducer: "SELECT 1;", FoundAtExec: 77, Hits: 4,
			Status: "STABLE", OriginalLen: 9, MinimizedLen: 1, Replays: 3,
		}},
		Curve:       []CurvePoint{{Execs: 50, Edges: 120}},
		Library:     map[uint16][]string{1: {"CREATE TABLE t (a INT);"}},
		SynthSeqs:   [][]uint16{{1, 4, 6}},
		SynthStarts: []uint16{1},
		SynthRot:    5,
		Pending:     [][2]uint16{{4, 6}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	want := sample()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed state:\nsaved  %s\nloaded %s", a, b)
	}
	// A state using no v4 feature is stamped with the oldest version that
	// carries it, keeping pre-supervision campaigns byte-identical.
	if got.Version != 3 {
		t.Fatalf("version = %d, want 3 for a clean state", got.Version)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Execs = 99999
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Execs != 99999 {
		t.Fatalf("overwrite lost: execs = %d", got.Execs)
	}
	// no temp files may survive a successful save
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a digit inside the state payload without breaking JSON syntax.
	mut := strings.Replace(string(data), `"execs": 1234`, `"execs": 1235`, 1)
	if mut == string(data) {
		t.Fatal("mutation did not apply; field layout changed?")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("tampered checkpoint must fail the checksum, got %v", err)
	}
}

func TestLoadRejectsGarbageAndTruncation(t *testing.T) {
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage")
	os.WriteFile(garbage, []byte("not json at all"), 0o644)
	if _, err := Load(garbage); err == nil {
		t.Fatal("garbage file must not load")
	}

	path := filepath.Join(dir, "trunc.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("truncated file must not load")
	}

	if _, err := Load(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing file must not load")
	}
}

// writeVersion writes a checkpoint whose version field claims v but whose
// checksum is internally consistent — exactly what an old binary's file looks
// like to this one.
func writeVersion(t *testing.T, path string, v string) {
	t.Helper()
	payload, _ := json.Marshal(sample())
	payload = bytes.Replace(payload, []byte(`"version":0`), []byte(`"version":`+v), 1)
	env, _ := json.Marshal(envelope{Checksum: sum(payload), State: payload})
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	writeVersion(t, path, "999")
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch must fail, got %v", err)
	}
}

// TestLoadRejectsV1 pins the v1→v2 break: a checkpoint written by the v1
// format (no triage fields) must be rejected loudly, not half-understood.
func TestLoadRejectsV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.ckpt")
	writeVersion(t, path, "1")
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("v1 checkpoint must be rejected, got %v", err)
	}
}

// TestTriageFieldsRoundTrip pins the v2 crash fields through a full file
// round trip, including their omission when empty (untriaged crash).
func TestTriageFieldsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	want := sample()
	want.Crashes = append(want.Crashes, Crash{
		ID: "MDEV-0", Component: "Item", Kind: "AF",
		Stack: []string{"a", "b"}, Reproducer: "SELECT 2;", FoundAtExec: 9, Hits: 1,
	})
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 3 {
		t.Fatalf("version = %d, want 3 for a clean state", got.Version)
	}
	c := got.Crashes[0]
	if c.Status != "STABLE" || c.OriginalLen != 9 || c.MinimizedLen != 1 || c.Replays != 3 {
		t.Fatalf("triage fields lost: %+v", c)
	}
	if u := got.Crashes[1]; u.Status != "" || u.OriginalLen != 0 || u.MinimizedLen != 0 || u.Replays != 0 {
		t.Fatalf("untriaged crash grew fields: %+v", u)
	}
}

// TestLoadAcceptsV2 pins single-shard backward compatibility: a checkpoint
// written by the pre-sharding v2 format must load cleanly, with the sharded
// topology fields at their "one worker, state at top level" zero values.
func TestLoadAcceptsV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.ckpt")
	writeVersion(t, path, "2")
	got, err := Load(path)
	if err != nil {
		t.Fatalf("v2 checkpoint must load, got %v", err)
	}
	if got.Workers != 0 || got.Epoch != 0 || len(got.Shards) != 0 {
		t.Fatalf("v2 load grew shard topology: workers=%d epoch=%d shards=%d",
			got.Workers, got.Epoch, len(got.Shards))
	}
	if got.Execs != 1234 || len(got.Pool) != 2 {
		t.Fatalf("v2 campaign state lost: %+v", got)
	}
}

// TestShardedRoundTrip pins the v3 layout: topology fields and the nested
// per-shard states survive a full file round trip byte-exactly.
func TestShardedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	s0, s1 := sample(), sample()
	s1.Seed = 8 // shard 1 runs the base seed + 1 stream
	s1.RNG = 0x1111
	want := &State{
		Dialect: 2, Seed: 7, MaxLen: 5,
		Execs: s0.Execs + s1.Execs, Stmts: s0.Stmts + s1.Stmts,
		Workers: 2, EpochStmts: 500, Epoch: 12,
		Shards:  []*State{s0, s1},
		Curve:   []CurvePoint{{Execs: 100, Edges: 240}},
		Crashes: sample().Crashes,
	}
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workers != 2 || got.EpochStmts != 500 || got.Epoch != 12 {
		t.Fatalf("topology lost: %+v", got)
	}
	if len(got.Shards) != 2 || got.Shards[1].Seed != 8 || got.Shards[1].RNG != 0x1111 {
		t.Fatalf("nested shard states lost: %+v", got.Shards)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("sharded round trip changed state:\nsaved  %s\nloaded %s", a, b)
	}
}

// TestSaveRotatesBackup: overwriting a checkpoint must leave the previous
// generation at <path>.bak.
func TestSaveRotatesBackup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	first := sample()
	first.Execs = 100
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + BackupSuffix); err == nil {
		t.Fatal("first save must not create a backup")
	}
	second := sample()
	second.Execs = 200
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	bak, err := Load(path + BackupSuffix)
	if err != nil {
		t.Fatalf("rotated backup unreadable: %v", err)
	}
	if bak.Execs != 100 {
		t.Fatalf("backup execs = %d, want the previous generation (100)", bak.Execs)
	}
	cur, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Execs != 200 {
		t.Fatalf("primary execs = %d", cur.Execs)
	}
}

// TestLoadWithFallback: a corrupt or truncated primary falls back to the
// rotated last-good generation with a warning; with no usable backup the
// primary's error surfaces.
func TestLoadWithFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	first := sample()
	first.Execs = 100
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Execs = 200
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}

	// Clean primary: no warning, newest generation.
	st, warn, err := LoadWithFallback(path)
	if err != nil || warn != "" || st.Execs != 200 {
		t.Fatalf("clean load: execs=%v warn=%q err=%v", st.Execs, warn, err)
	}

	// Truncate the primary: fall back to the .bak with a warning.
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/3], 0o644)
	st, warn, err = LoadWithFallback(path)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if st.Execs != 100 {
		t.Fatalf("fallback execs = %d, want last-good 100", st.Execs)
	}
	if !strings.Contains(warn, BackupSuffix) || !strings.Contains(warn, "last-good") {
		t.Fatalf("warning must name the backup: %q", warn)
	}

	// Corrupt both generations: the primary's error wins.
	os.WriteFile(path+BackupSuffix, []byte("junk"), 0o644)
	if _, _, err := LoadWithFallback(path); err == nil {
		t.Fatal("both generations corrupt must error")
	}

	// Missing everything.
	if _, _, err := LoadWithFallback(filepath.Join(dir, "nope.ckpt")); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}
