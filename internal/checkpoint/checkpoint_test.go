package checkpoint

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() *State {
	return &State{
		Dialect:      2,
		Seed:         7,
		MaxLen:       5,
		Execs:        1234,
		Stmts:        5678,
		EnginePanics: 3,
		RNG:          0xdeadbeefcafef00d,
		FaultState:   42,
		Pool: []PoolSeed{
			{SQL: "CREATE TABLE t (a INT);", NewEdges: 9, Picked: 2},
			{SQL: "SELECT 1;", NewEdges: 1, Picked: 0},
		},
		Affinity:    [][2]uint16{{1, 2}, {2, 3}},
		GenAffinity: [][2]uint16{{1, 2}},
		Coverage:    []Edge{{Idx: 10, Mask: 3}, {Idx: 99, Mask: 128}},
		Crashes: []Crash{{
			ID: "ORGANIC-0badf00d", Component: "Engine", Kind: "PANIC",
			Stack: []string{"minidb.(*Engine).dispatch"}, Window: []uint16{1, 4},
			Reproducer: "SELECT 1;", FoundAtExec: 77, Hits: 4,
		}},
		Curve:       []CurvePoint{{Execs: 50, Edges: 120}},
		Library:     map[uint16][]string{1: {"CREATE TABLE t (a INT);"}},
		SynthSeqs:   [][]uint16{{1, 4, 6}},
		SynthStarts: []uint16{1},
		SynthRot:    5,
		Pending:     [][2]uint16{{4, 6}},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	want := sample()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(got)
	if !bytes.Equal(a, b) {
		t.Fatalf("round trip changed state:\nsaved  %s\nloaded %s", a, b)
	}
	if got.Version != Version {
		t.Fatalf("version = %d", got.Version)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "camp.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Execs = 99999
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Execs != 99999 {
		t.Fatalf("overwrite lost: execs = %d", got.Execs)
	}
	// no temp files may survive a successful save
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// Flip a digit inside the state payload without breaking JSON syntax.
	mut := strings.Replace(string(data), `"execs": 1234`, `"execs": 1235`, 1)
	if mut == string(data) {
		t.Fatal("mutation did not apply; field layout changed?")
	}
	if err := os.WriteFile(path, []byte(mut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("tampered checkpoint must fail the checksum, got %v", err)
	}
}

func TestLoadRejectsGarbageAndTruncation(t *testing.T) {
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage")
	os.WriteFile(garbage, []byte("not json at all"), 0o644)
	if _, err := Load(garbage); err == nil {
		t.Fatal("garbage file must not load")
	}

	path := filepath.Join(dir, "trunc.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)/2], 0o644)
	if _, err := Load(path); err == nil {
		t.Fatal("truncated file must not load")
	}

	if _, err := Load(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing file must not load")
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	st := sample()
	payload, _ := json.Marshal(st)
	// hand-craft an envelope with a consistent checksum but a bad version
	payload = bytes.Replace(payload, []byte(`"version":0`), []byte(`"version":999`), 1)
	env, _ := json.Marshal(envelope{Checksum: sum(payload), State: payload})
	os.WriteFile(path, env, 0o644)
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch must fail, got %v", err)
	}
}
