// Package checkpoint serializes the durable state of a fuzzing campaign so
// long runs survive process death: the seed pool, the affinity map, the
// accumulated coverage edges, the oracle's deduplicated crashes, execution
// counters, and the RNG stream position. A campaign restored from a
// checkpoint continues exactly where the original left off — same schedule,
// same discoveries — because every input to the fuzzing loop is captured.
//
// The package is deliberately passive: it defines the wire format and the
// file protocol (atomic temp-file+rename writes, checksummed reads) and
// knows nothing about the fuzzer. Package core converts live campaign state
// to and from this form.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current checkpoint format version. Load rejects files
// written by an unknown version rather than guessing at field semantics.
//
// History:
//
//	v1 — initial format (PR 1).
//	v2 — crashes carry triage results (status, original/minimized length,
//	     replay tally) so a resumed campaign keeps its verified, minimized
//	     reproducers.
//	v3 — sharded campaigns: the top level gains the shard topology
//	     (workers, epoch_stmts, epoch) and a shards array holding one
//	     complete per-worker state (RNG, pool, coverage, synthesis, …)
//	     each; the top-level curve and crashes become the merged global
//	     view. v2 files (single-shard) still load: v3 only adds fields,
//	     and an absent shards array means "one worker, state at top level".
//	v4 — chaos plane and shard supervision: the top level gains the chaos
//	     identity (chaos_rate, chaos_seed, max_epoch_retries) and the
//	     incident journal; each shard entry gains its quarantine flag and
//	     retry tally. Purely additive: v3 files still load, and Save
//	     stamps v3 whenever a state uses no v4 feature, so campaigns that
//	     never engage the supervision plane emit byte-identical files.
const Version = 4

// minReadVersion is the oldest format Load still accepts. v2 single-shard
// checkpoints are a strict subset of v3, so campaigns saved before sharding
// resume cleanly.
const minReadVersion = 2

// BackupSuffix is appended to the checkpoint path for the rotated last-good
// copy that Save leaves behind and LoadWithFallback falls back to.
const BackupSuffix = ".bak"

// PoolSeed is one retained corpus entry.
type PoolSeed struct {
	SQL      string `json:"sql"`
	NewEdges int    `json:"new_edges"`
	Picked   int    `json:"picked"`
}

// Edge is one accumulated coverage-map slot (index + seen-bucket mask).
type Edge struct {
	Idx  uint32 `json:"i"`
	Mask uint8  `json:"m"`
}

// Crash is one deduplicated oracle entry.
type Crash struct {
	ID          string   `json:"id"`
	Component   string   `json:"component"`
	Kind        string   `json:"kind"`
	Stack       []string `json:"stack"`
	Window      []uint16 `json:"window,omitempty"`
	Reproducer  string   `json:"reproducer"`
	FoundAtExec int      `json:"found_at_exec"`
	Hits        int      `json:"hits"`

	// Triage results (v2): empty/zero when the crash was never triaged.
	Status       string `json:"status,omitempty"`
	OriginalLen  int    `json:"original_len,omitempty"`
	MinimizedLen int    `json:"minimized_len,omitempty"`
	Replays      int    `json:"replays,omitempty"`
}

// CurvePoint is one sample of the coverage-over-time curve.
type CurvePoint struct {
	Execs int `json:"execs"`
	Edges int `json:"edges"`
}

// Incident is one entry of a supervised campaign's incident journal (v4): a
// worker failure and how the supervisor resolved it. The journal is part of
// the campaign's deterministic output — same seed, same incidents.
type Incident struct {
	// Epoch is the barrier-to-barrier interval the failure struck in.
	Epoch int `json:"epoch"`
	// Shard is the failed worker's index.
	Shard int `json:"shard"`
	// Kind classifies the failure (WORKER_PANIC, EPOCH_STALL,
	// ORGANIC_PANIC).
	Kind string `json:"kind"`
	// Retries is the shard's cumulative retry tally after this incident.
	Retries int `json:"retries"`
	// Outcome records the supervisor's decision (RETRIED, QUARANTINED).
	Outcome string `json:"outcome"`
	// Detail carries deterministic context: the injected fault's
	// coordinates, or an organic panic's normalized stack.
	Detail string `json:"detail,omitempty"`
}

// State is the complete serializable campaign state. Statement types and
// dialects travel as their raw integer codes to keep this package free of
// fuzzer dependencies.
type State struct {
	Version int `json:"version"`

	// Campaign identity: a resume under different options would silently
	// diverge, so Load-side validation compares these.
	Dialect uint8 `json:"dialect"`
	Seed    int64 `json:"seed"`
	MaxLen  int   `json:"max_len"`

	// Counters.
	Execs        int `json:"execs"`
	Stmts        int `json:"stmts"`
	EnginePanics int `json:"engine_panics"`

	// RNG stream position (xrand.Source state) and the fault injector's
	// private stream, when fault injection is armed.
	RNG        uint64 `json:"rng"`
	FaultState uint64 `json:"fault_state,omitempty"`

	Pool        []PoolSeed          `json:"pool"`
	Affinity    [][2]uint16         `json:"affinity"`
	GenAffinity [][2]uint16         `json:"gen_affinity"`
	Coverage    []Edge              `json:"coverage"`
	Crashes     []Crash             `json:"crashes"`
	Curve       []CurvePoint        `json:"curve"`
	Library     map[uint16][]string `json:"library"`

	// Sequence-synthesis state: the generated-sequence vector (the Prefix
	// Sequence index is rebuilt from it), start types, rotation counter,
	// and the affinity pairs discovered but not yet synthesized.
	SynthSeqs   [][]uint16  `json:"synth_seqs"`
	SynthStarts []uint16    `json:"synth_starts"`
	SynthRot    int         `json:"synth_rot"`
	Pending     [][2]uint16 `json:"pending"`

	// Sharded-campaign topology (v3). Workers and EpochStmts identify the
	// campaign like Seed does — resuming under a different topology would
	// change every epoch boundary — and Epoch counts the merge barriers
	// passed. Shards holds one complete per-worker state in shard-index
	// order; when it is empty the checkpoint is a single-shard campaign and
	// the worker's state lives at the top level. In a sharded checkpoint the
	// top-level Execs/Stmts/EnginePanics are totals across shards, Curve is
	// the global (barrier-sampled) curve, and Crashes is the merged global
	// oracle including triage results; the remaining top-level campaign
	// fields are unused.
	Workers    int      `json:"workers,omitempty"`
	EpochStmts int      `json:"epoch_stmts,omitempty"`
	Epoch      int      `json:"epoch,omitempty"`
	Shards     []*State `json:"shards,omitempty"`

	// Chaos plane and supervision (v4). ChaosRate/ChaosSeed identify the
	// injected fault schedule the way Seed identifies the fuzzing schedule,
	// and MaxEpochRetries is the per-shard retry budget — all three are
	// campaign identity: resuming under different values would diverge
	// silently, so Resume validates them. Incidents is the global journal
	// of worker failures. On a shard entry, Quarantined marks a worker
	// whose retry budget is exhausted (it holds its last-good state and no
	// longer runs epochs) and Retries is its cumulative retry tally.
	ChaosRate       float64    `json:"chaos_rate,omitempty"`
	ChaosSeed       int64      `json:"chaos_seed,omitempty"`
	MaxEpochRetries int        `json:"max_epoch_retries,omitempty"`
	Incidents       []Incident `json:"incidents,omitempty"`
	Quarantined     bool       `json:"quarantined,omitempty"`
	Retries         int        `json:"retries,omitempty"`
}

// versionFor stamps the oldest format version whose readers understand
// every feature st uses: states that never engaged the chaos/supervision
// plane keep writing v3, so a supervised-but-uneventful campaign's files
// stay byte-identical to pre-supervision builds.
func versionFor(st *State) int {
	if st.ChaosRate != 0 || st.ChaosSeed != 0 || st.MaxEpochRetries != 0 ||
		len(st.Incidents) > 0 || st.Quarantined || st.Retries > 0 {
		return Version
	}
	for _, sh := range st.Shards {
		if sh.Quarantined || sh.Retries > 0 {
			return Version
		}
	}
	return 3
}

// envelope wraps the state with an integrity checksum so a torn or
// corrupted file is detected at load time instead of resuming a campaign
// from garbage.
type envelope struct {
	Checksum string          `json:"checksum"`
	State    json.RawMessage `json:"state"`
}

func sum(b []byte) string {
	h := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(h[:])
}

// Save writes the state to path atomically on the real filesystem; see
// SaveFS for the protocol.
func Save(path string, st *State) error {
	return SaveFS(OS, path, st)
}

// SaveFS writes the state to path atomically: the JSON envelope is written
// to a temp file in the same directory, fsynced, and renamed over the
// target, so a crash mid-write leaves either the old checkpoint or the new
// one, never a truncated hybrid; the parent directory is then fsynced so a
// crash immediately after Save cannot lose the rename itself. An existing
// checkpoint is first rotated to path+BackupSuffix, keeping a last-good
// generation that LoadWithFallback can resume from if the primary is later
// corrupted on disk. fsys lets callers route the writes through a
// fault-injecting filesystem (internal/chaos).
func SaveFS(fsys FS, path string, st *State) error {
	st.Version = versionFor(st)
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal: %w", err)
	}
	data, err := json.MarshalIndent(envelope{Checksum: sum(payload), State: payload}, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return fmt.Errorf("checkpoint: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	// Rotate the previous generation before the rename lands. Best-effort:
	// a missing previous checkpoint (first save) is the normal case, and a
	// failed rotation must not block the fresh save.
	if _, err := fsys.Stat(path); err == nil {
		_ = fsys.Rename(path, path+BackupSuffix)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	// The rename updated a directory entry, not file contents; without the
	// directory fsync a crash here could forget the rename and resurrect
	// the rotated generation — or, on a first save, leave nothing at all.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// Load reads and verifies a checkpoint. It fails loudly on a checksum
// mismatch (torn write, manual edit, disk corruption) or a format-version
// mismatch.
func Load(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint file: %w", path, err)
	}
	// The envelope is written indented, which re-indents the embedded state;
	// compacting first makes the checksum whitespace-insensitive, so it
	// covers exactly the bytes that Save hashed.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.State); err != nil {
		return nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	if got := sum(compact.Bytes()); got != env.Checksum {
		return nil, fmt.Errorf("checkpoint: %s is corrupt: checksum %s, want %s", path, got, env.Checksum)
	}
	var st State
	if err := json.Unmarshal(env.State, &st); err != nil {
		return nil, fmt.Errorf("checkpoint: decode state: %w", err)
	}
	if st.Version < minReadVersion || st.Version > Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, this build reads %d–%d", path, st.Version, minReadVersion, Version)
	}
	return &st, nil
}

// LoadWithFallback reads a checkpoint like Load, but when the primary file
// is unreadable — corrupt, truncated, version-mismatched, or missing — it
// falls back to the rotated path+BackupSuffix generation instead of aborting
// the resume. On fallback the returned warning is non-empty and names both
// the primary's failure and the backup actually used; the caller should
// surface it, since the campaign restarts from one checkpoint generation
// earlier. The warning is empty when the primary loaded cleanly.
func LoadWithFallback(path string) (st *State, warning string, err error) {
	st, perr := Load(path)
	if perr == nil {
		return st, "", nil
	}
	bak := path + BackupSuffix
	st, berr := Load(bak)
	if berr != nil {
		// Neither generation is usable; the primary's error is the one that
		// explains what happened to the campaign.
		return nil, "", perr
	}
	return st, fmt.Sprintf("checkpoint: primary %s unusable (%v); resuming from last-good backup %s (execs=%d)",
		path, perr, bak, st.Execs), nil
}
