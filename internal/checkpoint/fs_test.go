package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// recordingFS wraps OS and journals every protocol step SaveFS takes, so the
// durability ordering — temp write, file fsync, close, rename, directory
// fsync — is pinned by a test instead of trusted.
type recordingFS struct {
	inner   FS
	ops     []string
	syncErr error
}

func (r *recordingFS) CreateTemp(dir, pattern string) (File, error) {
	r.ops = append(r.ops, "create-temp")
	f, err := r.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &recordingFile{inner: f, fs: r}, nil
}

func (r *recordingFS) Stat(name string) (fs.FileInfo, error) {
	r.ops = append(r.ops, "stat")
	return r.inner.Stat(name)
}

func (r *recordingFS) Rename(oldpath, newpath string) error {
	switch {
	case strings.HasSuffix(newpath, BackupSuffix):
		r.ops = append(r.ops, "rename-rotate")
	case strings.Contains(oldpath, ".tmp-"):
		r.ops = append(r.ops, "rename-final")
	default:
		r.ops = append(r.ops, fmt.Sprintf("rename(%s,%s)", oldpath, newpath))
	}
	return r.inner.Rename(oldpath, newpath)
}

func (r *recordingFS) Remove(name string) error {
	r.ops = append(r.ops, "remove")
	return r.inner.Remove(name)
}

func (r *recordingFS) SyncDir(dir string) error {
	r.ops = append(r.ops, "sync-dir")
	if r.syncErr != nil {
		return r.syncErr
	}
	return r.inner.SyncDir(dir)
}

type recordingFile struct {
	inner File
	fs    *recordingFS
}

func (f *recordingFile) Write(p []byte) (int, error) {
	f.fs.ops = append(f.fs.ops, "write")
	return f.inner.Write(p)
}

func (f *recordingFile) Sync() error {
	f.fs.ops = append(f.fs.ops, "sync-file")
	return f.inner.Sync()
}

func (f *recordingFile) Close() error {
	f.fs.ops = append(f.fs.ops, "close")
	return f.inner.Close()
}

func (f *recordingFile) Name() string { return f.inner.Name() }

// TestSaveFSProtocolOrder pins the write protocol: data must be durable in
// the temp file before the rename makes it visible, and the parent directory
// must be fsynced after the rename so the rename itself survives a crash.
func TestSaveFSProtocolOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	rfs := &recordingFS{inner: OS}

	if err := SaveFS(rfs, path, sample()); err != nil {
		t.Fatal(err)
	}
	first := strings.Join(rfs.ops, " ")
	want := "create-temp write sync-file close stat rename-final sync-dir"
	if first != want {
		t.Fatalf("first-save protocol:\n  got  %s\n  want %s", first, want)
	}

	// A second save must rotate the existing generation before the final
	// rename, and still end with the directory fsync.
	rfs.ops = nil
	if err := SaveFS(rfs, path, sample()); err != nil {
		t.Fatal(err)
	}
	second := strings.Join(rfs.ops, " ")
	want = "create-temp write sync-file close stat rename-rotate rename-final sync-dir"
	if second != want {
		t.Fatalf("overwrite protocol:\n  got  %s\n  want %s", second, want)
	}
}

// TestSaveFSSurfacesSyncDirFailure: a failed directory fsync means the
// rename may not be durable, and Save must say so rather than report success.
func TestSaveFSSurfacesSyncDirFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	boom := errors.New("device gone")
	rfs := &recordingFS{inner: OS, syncErr: boom}

	err := SaveFS(rfs, path, sample())
	if err == nil {
		t.Fatal("SaveFS reported success despite a failed directory fsync")
	}
	if !strings.Contains(err.Error(), "sync dir") || !errors.Is(err, boom) {
		t.Fatalf("error must name the directory fsync: %v", err)
	}
}
