package instantiate

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Instantiator assembles executable test cases from SQL Type Sequences: for
// each sequence entry it randomly selects a type-matched structure from the
// library (or generates a fresh one when the library has none), concatenates
// the statements, and runs the dependency fixer.
type Instantiator struct {
	Rng   *rand.Rand
	Lib   *Library
	Gen   *Generator
	Fixer *Fixer
}

// New returns an instantiator bound to a library and dialect.
func New(rng *rand.Rand, lib *Library, dialect sqlt.Dialect) *Instantiator {
	return &Instantiator{
		Rng:   rng,
		Lib:   lib,
		Gen:   NewGenerator(rng, dialect),
		Fixer: NewFixer(rng),
	}
}

// Statement produces one statement of the requested type: a library
// structure when available (biased toward reuse, as the paper's library
// does), else a generated one.
func (in *Instantiator) Statement(t sqlt.Type) sqlast.Statement {
	if s := in.Lib.Pick(in.Rng, t); s != nil && in.Rng.Intn(4) != 0 {
		return s
	}
	return in.Gen.Gen(t)
}

// TestCase instantiates a SQL Type Sequence into an executable test case.
// Because structure selection is random, calling it repeatedly on the same
// sequence yields diverse test cases (the paper instantiates each sequence
// multiple times).
func (in *Instantiator) TestCase(seq sqlt.Sequence) sqlast.TestCase {
	tc := make(sqlast.TestCase, 0, len(seq))
	for _, t := range seq {
		tc = append(tc, in.Statement(t))
	}
	in.Fixer.Fix(tc)
	return tc
}
