package instantiate

import (
	"math/rand"
	"testing"

	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestGeneratorCoversEveryType verifies Gen produces a statement of the
// requested type for every type of every dialect, and that the statement
// survives a print->parse round trip (i.e. it is syntactically valid).
func TestGeneratorCoversEveryType(t *testing.T) {
	for _, d := range sqlt.Dialects() {
		g := NewGenerator(rand.New(rand.NewSource(1)), d)
		for _, ty := range d.Types() {
			for rep := 0; rep < 5; rep++ {
				s := g.Gen(ty)
				if s == nil {
					t.Fatalf("%s: Gen(%s) returned nil", d, ty)
				}
				if got := s.Type(); got != ty {
					t.Fatalf("%s: Gen(%s) produced type %s", d, ty, got)
				}
				sql := s.SQL()
				if _, err := sqlparse.Parse(sql); err != nil {
					t.Fatalf("%s: Gen(%s) produced unparseable SQL %q: %v", d, ty, sql, err)
				}
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(rand.New(rand.NewSource(9)), sqlt.DialectPostgres)
	g2 := NewGenerator(rand.New(rand.NewSource(9)), sqlt.DialectPostgres)
	for i := 0; i < 50; i++ {
		ty := g1.RandomType()
		if ty != g2.RandomType() {
			t.Fatal("RandomType diverged")
		}
		if g1.Gen(ty).SQL() != g2.Gen(ty).SQL() {
			t.Fatal("Gen diverged")
		}
	}
}

func TestRandomTypeRespectsDialect(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(3)), sqlt.DialectComdb2)
	for i := 0; i < 200; i++ {
		ty := g.RandomType()
		if !sqlt.DialectComdb2.Supports(ty) {
			t.Fatalf("RandomType produced unsupported %s", ty)
		}
	}
}

func TestLibraryHarvestAndPick(t *testing.T) {
	lib := NewLibrary()
	tc := sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
SELECT * FROM t;
`)
	lib.Harvest(tc)
	if lib.Size() != 3 || lib.TypesCovered() != 3 {
		t.Fatalf("size=%d types=%d", lib.Size(), lib.TypesCovered())
	}
	rng := rand.New(rand.NewSource(1))
	s := lib.Pick(rng, sqlt.Insert)
	if s == nil || s.Type() != sqlt.Insert {
		t.Fatalf("picked %v", s)
	}
	// picks are clones: mutating one must not affect the library
	s.(*sqlast.InsertStmt).Table = "zzz"
	s2 := lib.Pick(rng, sqlt.Insert)
	if s2.(*sqlast.InsertStmt).Table == "zzz" {
		t.Fatal("library structures must be isolated from picks")
	}
	if lib.Pick(rng, sqlt.Vacuum) != nil {
		t.Fatal("missing type picks nil")
	}
}

func TestLibrarySkipsRecentDuplicates(t *testing.T) {
	lib := NewLibrary()
	tc := sqlparse.MustParseScript("SELECT 1;")
	lib.Harvest(tc)
	lib.Harvest(tc)
	if lib.Size() != 1 {
		t.Fatalf("size = %d, duplicate should be skipped", lib.Size())
	}
}

func TestLibraryEviction(t *testing.T) {
	lib := NewLibrary()
	lib.MaxPerType = 4
	g := NewGenerator(rand.New(rand.NewSource(5)), sqlt.DialectPostgres)
	for i := 0; i < 20; i++ {
		lib.Harvest(sqlast.TestCase{g.Gen(sqlt.Select)})
	}
	if lib.Size() > 4 {
		t.Fatalf("size = %d, want <= MaxPerType", lib.Size())
	}
}

// TestFixerResolvesDependencies checks the §III-B example behaviour: after
// fixing, statements reference objects that exist, so the semantic error
// rate drops dramatically when executed.
func TestFixerResolvesDependencies(t *testing.T) {
	tc := sqlparse.MustParseScript(`
CREATE TABLE v0 (x INT PRIMARY KEY, y INT);
INSERT INTO v2 (v1) VALUES (100);
SELECT zz FROM nowhere;
`)
	f := NewFixer(rand.New(rand.NewSource(1)))
	f.Fix(tc)

	ins := tc[1].(*sqlast.InsertStmt)
	if ins.Table != "v0" {
		t.Fatalf("insert table = %q, want v0", ins.Table)
	}
	if len(ins.Cols) != 0 {
		t.Fatal("fixer drops the stale column list")
	}
	if len(ins.Rows[0]) != 2 {
		t.Fatalf("row arity = %d, want 2", len(ins.Rows[0]))
	}
	sel := tc[2].(*sqlast.SelectStmt)
	bt := sel.From[0].(*sqlast.BaseTable)
	if bt.Name != "v0" {
		t.Fatalf("select table = %q, want v0", bt.Name)
	}
	cr := sel.Items[0].X.(*sqlast.ColRef)
	if cr.Name != "x" && cr.Name != "y" {
		t.Fatalf("column ref = %q, want x or y", cr.Name)
	}
}

func TestFixerRenamesDuplicateCreates(t *testing.T) {
	tc := sqlparse.MustParseScript(`
CREATE TABLE t0 (a INT);
CREATE TABLE t0 (b INT);
`)
	f := NewFixer(rand.New(rand.NewSource(1)))
	f.Fix(tc)
	n1 := tc[0].(*sqlast.CreateTableStmt).Name
	n2 := tc[1].(*sqlast.CreateTableStmt).Name
	if n1 == n2 {
		t.Fatalf("duplicate create not renamed: %q", n2)
	}
}

func TestFixerTracksDrops(t *testing.T) {
	tc := sqlparse.MustParseScript(`
CREATE TABLE t0 (a INT);
CREATE TABLE t1 (b INT);
DROP TABLE t0;
INSERT INTO t0 VALUES (1);
`)
	f := NewFixer(rand.New(rand.NewSource(1)))
	f.Fix(tc)
	ins := tc[3].(*sqlast.InsertStmt)
	if ins.Table != "t1" {
		t.Fatalf("insert into dropped table not redirected: %q", ins.Table)
	}
}

func TestFixerPreparedAndCursors(t *testing.T) {
	tc := sqlparse.MustParseScript(`
CREATE TABLE t0 (a INT);
PREPARE q0 AS SELECT a FROM t0;
EXECUTE somethingelse;
DECLARE cur0 CURSOR FOR SELECT a FROM t0;
FETCH 2 FROM nosuchcursor;
CLOSE nosuchcursor;
`)
	f := NewFixer(rand.New(rand.NewSource(1)))
	f.Fix(tc)
	if tc[2].(*sqlast.ExecuteStmt).Name != "q0" {
		t.Fatal("execute not redirected to existing prepared statement")
	}
	if tc[4].(*sqlast.FetchStmt).Cursor != "cur0" {
		t.Fatal("fetch not redirected to existing cursor")
	}
	if tc[5].(*sqlast.CloseCursorStmt).Name != "cur0" {
		t.Fatal("close not redirected to existing cursor")
	}
}

// TestInstantiationExecutability is the integration property behind §III-B:
// instantiated sequences must mostly execute, not just parse. We require a
// sub-60% statement error rate over many random sequences (unfixed random
// SQL would be far worse).
func TestInstantiationExecutability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lib := NewLibrary()
	lib.Harvest(sqlparse.MustParseScript(`
CREATE TABLE t0 (c0 INT, c1 INT);
INSERT INTO t0 VALUES (1, 2);
SELECT c0 FROM t0;
`))
	inst := New(rng, lib, sqlt.DialectPostgres)
	eng := minidb.New(minidb.Config{Dialect: sqlt.DialectPostgres})

	types := sqlt.DialectPostgres.Types()
	totalStmts, totalErrs := 0, 0
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(4)
		seq := make(sqlt.Sequence, n)
		seq[0] = sqlt.CreateTable
		for j := 1; j < n; j++ {
			seq[j] = types[rng.Intn(len(types))]
		}
		tc := inst.TestCase(seq)
		if !tc.Types().Equal(seq) {
			t.Fatalf("instantiated types %v != requested %v", tc.Types(), seq)
		}
		out := eng.RunTestCase(tc)
		totalStmts += out.Executed
		totalErrs += out.Errors
	}
	rate := float64(totalErrs) / float64(totalStmts)
	if rate > 0.6 {
		t.Fatalf("statement error rate %.2f too high — dependency fixing is broken", rate)
	}
	t.Logf("error rate %.2f over %d statements", rate, totalStmts)
}

func TestInstantiateDiversity(t *testing.T) {
	// "one SQL Type Sequence will be instantiated multiple times to
	// increase the diversity" — repeated instantiation differs.
	rng := rand.New(rand.NewSource(2))
	inst := New(rng, NewLibrary(), sqlt.DialectMySQL)
	seq := sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Select}
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		seen[inst.TestCase(seq).SQL()] = true
	}
	if len(seen) < 3 {
		t.Fatalf("only %d distinct instantiations in 10 tries", len(seen))
	}
}
