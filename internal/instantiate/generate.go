// Package instantiate turns SQL Type Sequences into executable test cases
// (paper §III-B, "Instantiation"): for each entry of a synthesized sequence
// it picks a type-matched AST structure from the global library (harvested
// from parsed seeds) or generates a fresh one, concatenates the statements,
// and fixes cross-statement dependencies so the result is semantically
// plausible.
package instantiate

import (
	"math/rand"
	"strconv"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Vocabulary of object names shared by generation and fixing. Small name
// pools maximize the chance that independently generated statements refer to
// the same objects.
var (
	tableNames  = []string{"t0", "t1", "t2", "v0", "v1"}
	viewNames   = []string{"w0", "w1"}
	colNames    = []string{"c0", "c1", "c2", "c3"}
	indexNames  = []string{"i0", "i1"}
	trigNames   = []string{"tg0", "tg1"}
	seqNames    = []string{"s0", "s1"}
	funcNames   = []string{"f0", "f1"}
	procNames   = []string{"pr0"}
	ruleNames   = []string{"r0", "r1"}
	roleNames   = []string{"u0", "u1"}
	schemaNames = []string{"sch0"}
	domainNames = []string{"d0"}
	enumNames   = []string{"e0"}
	extNames    = []string{"ext0"}
	dbNames     = []string{"db0"}
	chanNames   = []string{"ch0", "ch1"}
	cursorNames = []string{"cur0"}
	prepNames   = []string{"q0", "q1"}
	spNames     = []string{"sp0"}
	typeNames   = []string{"INT", "BIGINT", "FLOAT", "TEXT", "VARCHAR(100)", "BOOLEAN"}
	varNames    = []string{"sql_mode", "max_heap", "explicit_for_timestamp", "opt_level"}
)

// Generator builds fresh statements of any requested type, with structures
// randomized within a small budget.
type Generator struct {
	Rng     *rand.Rand
	Dialect sqlt.Dialect
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(rng *rand.Rand, d sqlt.Dialect) *Generator {
	return &Generator{Rng: rng, Dialect: d}
}

func (g *Generator) pick(ss []string) string { return ss[g.Rng.Intn(len(ss))] }

func (g *Generator) table() string  { return g.pick(tableNames) }
func (g *Generator) column() string { return g.pick(colNames) }

// literal produces a random literal value.
func (g *Generator) literal() sqlast.Expr {
	switch g.Rng.Intn(6) {
	case 0:
		return sqlast.IntLit(int64(g.Rng.Intn(200) - 50))
	case 1:
		return sqlast.IntLit(int64(g.Rng.Int31()))
	case 2:
		return sqlast.FloatLit(float64(g.Rng.Intn(1000)) / 8.0)
	case 3:
		return sqlast.StringLit(g.pick([]string{"name1", "x", "Water", "abc%", ""}))
	case 4:
		return sqlast.BoolLit(g.Rng.Intn(2) == 0)
	default:
		return sqlast.NullLit()
	}
}

// expr produces a random scalar expression of bounded depth.
func (g *Generator) expr(depth int) sqlast.Expr {
	if depth <= 0 || g.Rng.Intn(3) == 0 {
		if g.Rng.Intn(2) == 0 {
			return &sqlast.ColRef{Name: g.column()}
		}
		return g.literal()
	}
	switch g.Rng.Intn(8) {
	case 0, 1:
		op := g.pick([]string{"+", "-", "*", "/", "%"})
		return &sqlast.Binary{Op: op, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 2:
		op := g.pick([]string{"=", "<>", "<", "<=", ">", ">="})
		return &sqlast.Binary{Op: op, L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 3:
		return &sqlast.FuncCall{
			Name: g.pick([]string{"ABS", "LENGTH", "UPPER", "LOWER", "COALESCE", "ROUND"}),
			Args: []sqlast.Expr{g.expr(depth - 1)},
		}
	case 4:
		return &sqlast.CaseExpr{
			Whens: []sqlast.CaseWhen{{Cond: g.boolExpr(depth - 1), Result: g.expr(depth - 1)}},
			Else:  g.literal(),
		}
	case 5:
		return &sqlast.CastExpr{X: g.expr(depth - 1), TypeName: g.pick([]string{"INT", "TEXT", "FLOAT"})}
	case 6:
		// negation over literals must be folded into the literal (the
		// parser canonicalizes it that way, and the structure library
		// requires print/parse fixed points)
		x := g.expr(depth - 1)
		if lit, isLit := x.(*sqlast.Literal); isLit {
			switch lit.Kind {
			case sqlast.LitInt:
				return sqlast.IntLit(-lit.Int)
			case sqlast.LitFloat:
				return sqlast.FloatLit(-lit.Float)
			default:
				return lit
			}
		}
		return &sqlast.Unary{Op: "-", X: x}
	default:
		return &sqlast.Binary{Op: "||", L: g.expr(depth - 1), R: g.expr(depth - 1)}
	}
}

// boolExpr produces a random predicate.
func (g *Generator) boolExpr(depth int) sqlast.Expr {
	if depth <= 0 {
		return &sqlast.Binary{Op: "=", L: &sqlast.ColRef{Name: g.column()}, R: g.literal()}
	}
	switch g.Rng.Intn(7) {
	case 0:
		return &sqlast.Binary{Op: "AND", L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	case 1:
		return &sqlast.Binary{Op: "OR", L: g.boolExpr(depth - 1), R: g.boolExpr(depth - 1)}
	case 2:
		return &sqlast.IsNullExpr{X: &sqlast.ColRef{Name: g.column()}, Not: g.Rng.Intn(2) == 0}
	case 3:
		return &sqlast.BetweenExpr{X: &sqlast.ColRef{Name: g.column()}, Lo: g.literal(), Hi: g.literal()}
	case 4:
		return &sqlast.LikeExpr{X: &sqlast.ColRef{Name: g.column()}, Pattern: sqlast.StringLit(g.pick([]string{"a%", "%1", "_x%"}))}
	case 5:
		return &sqlast.InExpr{X: &sqlast.ColRef{Name: g.column()}, List: []sqlast.Expr{g.literal(), g.literal()}}
	default:
		op := g.pick([]string{"=", "<>", "<", ">"})
		return &sqlast.Binary{Op: op, L: &sqlast.ColRef{Name: g.column()}, R: g.literal()}
	}
}

// selectStmt generates a random query of bounded complexity.
func (g *Generator) selectStmt(depth int) *sqlast.SelectStmt {
	q := &sqlast.SelectStmt{}
	switch g.Rng.Intn(4) {
	case 0:
		q.Items = []sqlast.SelectItem{{X: &sqlast.Star{}}}
	case 1:
		q.Items = []sqlast.SelectItem{{X: &sqlast.ColRef{Name: g.column()}}}
	case 2:
		q.Items = []sqlast.SelectItem{
			{X: &sqlast.ColRef{Name: g.column()}},
			{X: g.expr(1)},
		}
	default:
		q.Items = []sqlast.SelectItem{{X: &sqlast.FuncCall{Name: "COUNT", Star: true}}}
	}
	q.From = []sqlast.TableRef{&sqlast.BaseTable{Name: g.table()}}
	if depth > 0 && g.Rng.Intn(4) == 0 {
		q.From = []sqlast.TableRef{&sqlast.JoinRef{
			Kind: sqlast.JoinKind(g.Rng.Intn(3)),
			L:    &sqlast.BaseTable{Name: g.table()},
			R:    &sqlast.BaseTable{Name: g.table(), Alias: "j1"},
			On: &sqlast.Binary{Op: "=",
				L: &sqlast.ColRef{Name: g.column()},
				R: &sqlast.ColRef{Table: "j1", Name: g.column()}},
		}}
	}
	if g.Rng.Intn(2) == 0 {
		q.Where = g.boolExpr(depth)
	}
	if g.Rng.Intn(4) == 0 {
		q.GroupBy = []sqlast.Expr{&sqlast.ColRef{Name: g.column()}}
		q.Items = []sqlast.SelectItem{
			{X: &sqlast.ColRef{Name: g.column()}},
			{X: &sqlast.FuncCall{Name: "COUNT", Star: true}},
		}
	}
	if g.Rng.Intn(3) == 0 {
		q.OrderBy = []sqlast.OrderItem{{X: &sqlast.ColRef{Name: g.column()}, Desc: g.Rng.Intn(2) == 0}}
	}
	if g.Rng.Intn(4) == 0 {
		q.Limit = sqlast.IntLit(int64(1 + g.Rng.Intn(10)))
	}
	if g.Rng.Intn(3) == 0 {
		q.Distinct = true
	}
	return q
}

func (g *Generator) columnDefs() []sqlast.ColumnDef {
	n := 2 + g.Rng.Intn(3)
	defs := make([]sqlast.ColumnDef, 0, n)
	for i := 0; i < n; i++ {
		cd := sqlast.ColumnDef{Name: colNames[i%len(colNames)], TypeName: g.pick(typeNames)}
		switch g.Rng.Intn(8) {
		case 0:
			cd.PrimaryKey = i == 0
		case 1:
			cd.Unique = true
		case 2:
			cd.NotNull = true
		case 3:
			cd.Default = g.literal()
		}
		defs = append(defs, cd)
	}
	return defs
}

func (g *Generator) dmlBody() sqlast.Statement {
	switch g.Rng.Intn(3) {
	case 0:
		return g.insertStmt()
	case 1:
		return &sqlast.UpdateStmt{
			Table: g.table(),
			Sets:  []sqlast.Assignment{{Col: g.column(), Value: g.expr(1)}},
			Where: g.boolExpr(1),
		}
	default:
		return &sqlast.DeleteStmt{Table: g.table(), Where: g.boolExpr(1)}
	}
}

func (g *Generator) insertStmt() *sqlast.InsertStmt {
	rows := make([][]sqlast.Expr, 1+g.Rng.Intn(2))
	width := 1 + g.Rng.Intn(3)
	for i := range rows {
		row := make([]sqlast.Expr, width)
		for j := range row {
			row[j] = g.literal()
		}
		rows[i] = row
	}
	return &sqlast.InsertStmt{Table: g.table(), Rows: rows, Ignore: g.Rng.Intn(4) == 0}
}

// Gen builds a fresh statement of the requested type. The result is
// syntactically valid; semantic validity is the Fixer's job.
func (g *Generator) Gen(t sqlt.Type) sqlast.Statement {
	switch t {
	case sqlt.CreateTable:
		return &sqlast.CreateTableStmt{
			Name: g.table(), Temp: g.Rng.Intn(8) == 0, IfNotExists: g.Rng.Intn(4) == 0,
			Cols: g.columnDefs(),
		}
	case sqlt.CreateView:
		return &sqlast.CreateViewStmt{Name: g.pick(viewNames), OrReplace: g.Rng.Intn(3) == 0, Query: g.selectStmt(1)}
	case sqlt.CreateMaterializedView:
		return &sqlast.CreateViewStmt{Name: g.pick(viewNames), Materialized: true, Query: g.selectStmt(1)}
	case sqlt.CreateIndex:
		return &sqlast.CreateIndexStmt{Name: g.pick(indexNames), Unique: g.Rng.Intn(3) == 0, Table: g.table(), Cols: []string{g.column()}}
	case sqlt.CreateTrigger:
		return &sqlast.CreateTriggerStmt{
			Name: g.pick(trigNames), Time: sqlast.TriggerTime(g.Rng.Intn(2)),
			Event: sqlast.TriggerEvent(g.Rng.Intn(3)), Table: g.table(), Body: g.dmlBody(),
		}
	case sqlt.CreateSequence:
		return &sqlast.CreateSequenceStmt{Name: g.pick(seqNames), Start: int64(g.Rng.Intn(10)), Inc: 1}
	case sqlt.CreateSchema:
		return &sqlast.CreateSchemaStmt{Name: g.pick(schemaNames)}
	case sqlt.CreateFunction:
		return &sqlast.CreateFunctionStmt{
			Name: g.pick(funcNames), Params: []string{"x"}, Returns: "INT",
			Body: &sqlast.Binary{Op: "+", L: &sqlast.ColRef{Name: "x"}, R: sqlast.IntLit(int64(g.Rng.Intn(10)))},
		}
	case sqlt.CreateProcedure:
		return &sqlast.CreateProcedureStmt{Name: g.pick(procNames), Body: g.dmlBody()}
	case sqlt.CreateRule:
		var action sqlast.Statement
		switch g.Rng.Intn(3) {
		case 0:
			action = nil // DO INSTEAD NOTHING
		case 1:
			action = &sqlast.NotifyStmt{Channel: g.pick(chanNames)}
		default:
			action = g.dmlBody()
		}
		return &sqlast.CreateRuleStmt{
			Name: g.pick(ruleNames), OrReplace: true,
			Event: sqlast.TriggerEvent(g.Rng.Intn(3)), Table: g.table(),
			Instead: g.Rng.Intn(2) == 0, Action: action,
		}
	case sqlt.CreateDomain:
		return &sqlast.CreateDomainStmt{Name: g.pick(domainNames), Base: "INT",
			Check: &sqlast.Binary{Op: ">", L: &sqlast.ColRef{Name: "VALUE"}, R: sqlast.IntLit(0)}}
	case sqlt.CreateType:
		return &sqlast.CreateTypeStmt{Name: g.pick(enumNames), Values: []string{"a", "b", "c"}}
	case sqlt.CreateExtension:
		return &sqlast.CreateExtensionStmt{Name: g.pick(extNames)}
	case sqlt.CreateRole:
		return &sqlast.CreateRoleStmt{Name: g.pick(roleNames), Option: "LOGIN"}
	case sqlt.CreateUser:
		return &sqlast.CreateRoleStmt{Name: g.pick(roleNames), IsUser: true}
	case sqlt.CreateDatabase:
		return &sqlast.CreateDatabaseStmt{Name: g.pick(dbNames)}

	case sqlt.AlterTable:
		st := &sqlast.AlterTableStmt{Table: g.table()}
		switch g.Rng.Intn(5) {
		case 0:
			st.Action = sqlast.AlterAddColumn
			st.Col = sqlast.ColumnDef{Name: "c" + strconv.Itoa(4+g.Rng.Intn(4)), TypeName: g.pick(typeNames)}
		case 1:
			st.Action = sqlast.AlterDropColumn
			st.OldName = g.column()
		case 2:
			st.Action = sqlast.AlterRenameColumn
			st.OldName, st.NewName = g.column(), "c"+strconv.Itoa(4+g.Rng.Intn(4))
		case 3:
			st.Action = sqlast.AlterColumnType
			st.Col = sqlast.ColumnDef{Name: g.column(), TypeName: g.pick(typeNames)}
		default:
			st.Action = sqlast.AlterColumnDefault
			st.Col = sqlast.ColumnDef{Name: g.column(), Default: g.literal()}
		}
		return st
	case sqlt.AlterView:
		return &sqlast.AlterSimpleStmt{What: t, Name: g.pick(viewNames), NewName: g.pick(viewNames)}
	case sqlt.AlterIndex:
		return &sqlast.AlterSimpleStmt{What: t, Name: g.pick(indexNames), NewName: g.pick(indexNames)}
	case sqlt.AlterSequence:
		return &sqlast.AlterSimpleStmt{What: t, Name: g.pick(seqNames), Restart: int64(g.Rng.Intn(100))}
	case sqlt.AlterRole:
		return &sqlast.AlterSimpleStmt{What: t, Name: g.pick(roleNames), Option: "NOLOGIN"}
	case sqlt.AlterDatabase:
		return &sqlast.AlterSimpleStmt{What: t, Name: g.pick(dbNames), Option: "OPT"}
	case sqlt.AlterSystem:
		return &sqlast.AlterSystemStmt{Setting: g.pick(varNames), Value: g.literal()}

	case sqlt.DropTable, sqlt.DropView, sqlt.DropMaterializedView, sqlt.DropIndex,
		sqlt.DropTrigger, sqlt.DropSequence, sqlt.DropSchema, sqlt.DropFunction,
		sqlt.DropProcedure, sqlt.DropRule, sqlt.DropDomain, sqlt.DropType,
		sqlt.DropExtension, sqlt.DropRole, sqlt.DropUser, sqlt.DropDatabase:
		return &sqlast.DropStmt{What: t, Name: g.dropTarget(t), IfExists: g.Rng.Intn(3) == 0}

	case sqlt.RenameTable:
		return &sqlast.RenameTableStmt{From: g.table(), To: g.table()}
	case sqlt.Truncate:
		return &sqlast.TruncateStmt{Table: g.table()}
	case sqlt.CommentOn:
		return &sqlast.CommentOnStmt{ObjectKind: "TABLE", Name: g.table(), Comment: "c"}
	case sqlt.Reindex:
		return &sqlast.ReindexStmt{Kind: "TABLE", Name: g.table()}
	case sqlt.RefreshMaterializedView:
		return &sqlast.RefreshMatViewStmt{Name: g.pick(viewNames)}

	case sqlt.Insert:
		return g.insertStmt()
	case sqlt.Replace:
		st := g.insertStmt()
		st.IsReplace = true //lego:allow memoinvalidate — insertStmt returns a fresh node whose memo is still cold
		st.Ignore = false   //lego:allow memoinvalidate — fresh node, never rendered before this write
		return st
	case sqlt.Update:
		return &sqlast.UpdateStmt{
			Table: g.table(),
			Sets:  []sqlast.Assignment{{Col: g.column(), Value: g.expr(1)}},
			Where: g.boolExpr(1),
		}
	case sqlt.Delete:
		st := &sqlast.DeleteStmt{Table: g.table()}
		if g.Rng.Intn(3) != 0 {
			st.Where = g.boolExpr(1)
		}
		return st
	case sqlt.Merge:
		return &sqlast.MergeStmt{
			Target: g.table(), Source: g.table(),
			On: &sqlast.Binary{Op: "=",
				L: &sqlast.ColRef{Name: g.column()}, R: &sqlast.ColRef{Name: g.column()}},
			MatchedSet: []sqlast.Assignment{{Col: g.column(), Value: g.literal()}},
		}
	case sqlt.CopyTo:
		if g.Rng.Intn(2) == 0 {
			return &sqlast.CopyStmt{Query: g.selectStmt(1), CSV: true}
		}
		return &sqlast.CopyStmt{Table: g.table(), CSV: g.Rng.Intn(2) == 0}
	case sqlt.CopyFrom:
		return &sqlast.CopyStmt{Table: g.table(), From: true}
	case sqlt.LoadData:
		return &sqlast.LoadDataStmt{File: "data.csv", Table: g.table()}
	case sqlt.Call:
		return &sqlast.CallStmt{Name: g.pick(procNames)}
	case sqlt.Do:
		return &sqlast.DoStmt{Body: g.expr(2)}

	case sqlt.Select:
		return g.selectStmt(2)
	case sqlt.SelectInto:
		q := g.selectStmt(1)
		q.Into = "t" + strconv.Itoa(5+g.Rng.Intn(3)) //lego:allow memoinvalidate — selectStmt returns a fresh node whose memo is still cold
		return q
	case sqlt.TableStmt:
		return &sqlast.TableStmtNode{Name: g.table()}
	case sqlt.ValuesStmt:
		return &sqlast.ValuesStmtNode{Rows: [][]sqlast.Expr{{g.literal(), g.literal()}}}
	case sqlt.WithSelect:
		return &sqlast.WithStmt{
			CTEs: []sqlast.CTE{{Name: "cte0", Body: g.selectStmt(1)}},
			Body: &sqlast.SelectStmt{
				Items: []sqlast.SelectItem{{X: &sqlast.Star{}}},
				From:  []sqlast.TableRef{&sqlast.BaseTable{Name: "cte0"}},
			},
		}
	case sqlt.WithDML:
		return &sqlast.WithStmt{
			CTEs: []sqlast.CTE{{Name: "cte0", Body: g.insertStmt()}},
			Body: &sqlast.DeleteStmt{Table: g.table(), Where: g.boolExpr(1)},
		}
	case sqlt.Explain:
		inner := g.selectStmt(1)
		return &sqlast.ExplainStmt{Analyze: g.Rng.Intn(3) == 0, Stmt: inner}
	case sqlt.Show:
		return &sqlast.ShowStmt{Name: g.pick([]string{"TABLES", "DATABASES", "sql_mode"})}
	case sqlt.Describe:
		return &sqlast.DescribeStmt{Table: g.table()}

	case sqlt.Grant:
		return &sqlast.GrantStmt{Privs: []string{g.pick([]string{"SELECT", "INSERT", "UPDATE", "DELETE", "ALL"})}, Table: g.table(), Role: g.pick(roleNames)}
	case sqlt.Revoke:
		return &sqlast.GrantStmt{Revoke: true, Privs: []string{"ALL"}, Table: g.table(), Role: g.pick(roleNames)}
	case sqlt.SetRole:
		if g.Rng.Intn(3) == 0 {
			return &sqlast.SetRoleStmt{Role: "NONE"}
		}
		return &sqlast.SetRoleStmt{Role: g.pick(roleNames)}

	case sqlt.Begin:
		return &sqlast.TxnStmt{What: sqlt.Begin}
	case sqlt.Commit:
		return &sqlast.TxnStmt{What: sqlt.Commit}
	case sqlt.Rollback:
		return &sqlast.TxnStmt{What: sqlt.Rollback}
	case sqlt.Savepoint:
		return &sqlast.TxnStmt{What: sqlt.Savepoint, Name: g.pick(spNames)}
	case sqlt.ReleaseSavepoint:
		return &sqlast.TxnStmt{What: sqlt.ReleaseSavepoint, Name: g.pick(spNames)}
	case sqlt.RollbackToSavepoint:
		return &sqlast.TxnStmt{What: sqlt.RollbackToSavepoint, Name: g.pick(spNames)}
	case sqlt.SetTransaction:
		return &sqlast.SetTransactionStmt{Mode: g.pick([]string{"READ COMMITTED", "SERIALIZABLE", "REPEATABLE READ"})}
	case sqlt.LockTable:
		return &sqlast.LockTableStmt{Table: g.table(), Mode: g.pick([]string{"SHARE", "EXCLUSIVE"})}

	case sqlt.SetVar:
		return &sqlast.SetVarStmt{Global: g.Rng.Intn(4) == 0, Name: g.pick(varNames), Value: g.literal()}
	case sqlt.ResetVar:
		return &sqlast.ResetVarStmt{Name: g.pick(varNames)}
	case sqlt.Pragma:
		if g.Rng.Intn(2) == 0 {
			return &sqlast.PragmaStmt{Name: "foreign_keys", Value: sqlast.IntLit(int64(g.Rng.Intn(2)))}
		}
		return &sqlast.PragmaStmt{Name: "cache_info"}
	case sqlt.Use:
		return &sqlast.UseStmt{DB: "main"}
	case sqlt.Analyze:
		if g.Rng.Intn(2) == 0 {
			return &sqlast.AnalyzeStmt{}
		}
		return &sqlast.AnalyzeStmt{Table: g.table()}
	case sqlt.Vacuum:
		return &sqlast.VacuumStmt{Full: g.Rng.Intn(3) == 0, Table: g.table()}
	case sqlt.OptimizeTable:
		return &sqlast.MaintenanceStmt{What: t, Table: g.table()}
	case sqlt.CheckTable:
		return &sqlast.MaintenanceStmt{What: t, Table: g.table()}
	case sqlt.Flush:
		return &sqlast.FlushStmt{What: g.pick([]string{"TABLES", "LOGS", "PRIVILEGES"})}
	case sqlt.Checkpoint:
		return &sqlast.CheckpointStmt{}
	case sqlt.Discard:
		return &sqlast.DiscardStmt{What: g.pick([]string{"ALL", "PLANS", "TEMP", "SEQUENCES"})}
	case sqlt.Prepare:
		return &sqlast.PrepareStmt{Name: g.pick(prepNames), Stmt: g.selectStmt(1)}
	case sqlt.Execute:
		return &sqlast.ExecuteStmt{Name: g.pick(prepNames)}
	case sqlt.Deallocate:
		return &sqlast.DeallocateStmt{Name: g.pick(prepNames)}
	case sqlt.DeclareCursor:
		return &sqlast.DeclareCursorStmt{Name: g.pick(cursorNames), Query: g.selectStmt(1)}
	case sqlt.Fetch:
		return &sqlast.FetchStmt{Count: int64(g.Rng.Intn(5)), Cursor: g.pick(cursorNames)}
	case sqlt.CloseCursor:
		return &sqlast.CloseCursorStmt{Name: g.pick(cursorNames)}
	case sqlt.Listen:
		return &sqlast.ListenStmt{Channel: g.pick(chanNames)}
	case sqlt.Notify:
		return &sqlast.NotifyStmt{Channel: g.pick(chanNames), Payload: "p"}
	case sqlt.Unlisten:
		return &sqlast.UnlistenStmt{Channel: g.pick(chanNames)}
	case sqlt.Cluster:
		return &sqlast.ClusterStmt{Table: g.table(), Index: g.pick(indexNames)}
	default:
		// fall back to a harmless query so callers always get a statement
		return g.selectStmt(0)
	}
}

func (g *Generator) dropTarget(t sqlt.Type) string {
	switch t {
	case sqlt.DropTable:
		return g.table()
	case sqlt.DropView, sqlt.DropMaterializedView:
		return g.pick(viewNames)
	case sqlt.DropIndex:
		return g.pick(indexNames)
	case sqlt.DropTrigger:
		return g.pick(trigNames)
	case sqlt.DropSequence:
		return g.pick(seqNames)
	case sqlt.DropSchema:
		return g.pick(schemaNames)
	case sqlt.DropFunction:
		return g.pick(funcNames)
	case sqlt.DropProcedure:
		return g.pick(procNames)
	case sqlt.DropRule:
		return g.pick(ruleNames)
	case sqlt.DropDomain:
		return g.pick(domainNames)
	case sqlt.DropType:
		return g.pick(enumNames)
	case sqlt.DropExtension:
		return g.pick(extNames)
	case sqlt.DropRole, sqlt.DropUser:
		return g.pick(roleNames)
	default:
		return g.pick(dbNames)
	}
}

// RandomType picks a random statement type from the generator's dialect.
func (g *Generator) RandomType() sqlt.Type {
	ts := g.Dialect.Types()
	return ts[g.Rng.Intn(len(ts))]
}
