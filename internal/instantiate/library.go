package instantiate

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Library is the global AST structure store of paper §III-B: "when finding a
// new seed, LEGO parses each of its statements to extract AST structures and
// saves them into the global library. In instantiation, for each entry in
// the SQL Type Sequence, LEGO randomly selects a type-matched structure."
type Library struct {
	byType map[sqlt.Type][]sqlast.Statement
	// MaxPerType bounds memory; older structures are evicted FIFO.
	MaxPerType int
}

// NewLibrary returns an empty structure library.
func NewLibrary() *Library {
	return &Library{byType: map[sqlt.Type][]sqlast.Statement{}, MaxPerType: 64}
}

// Harvest stores every statement of the test case, keyed by type. Stored
// statements are canonical aliases of the harvested case, not copies: the
// fuzz loop never mutates a statement in place (mutation always operates on
// fresh clones), so the library only has to clone on the way out (Pick).
func (l *Library) Harvest(tc sqlast.TestCase) {
	for _, s := range tc {
		t := s.Type()
		bucket := l.byType[t]
		// skip exact duplicates of the most recent few entries
		sql := s.SQL()
		dup := false
		for i := len(bucket) - 1; i >= 0 && i >= len(bucket)-4; i-- {
			if bucket[i].SQL() == sql {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		bucket = append(bucket, s)
		if len(bucket) > l.MaxPerType {
			bucket = bucket[len(bucket)-l.MaxPerType:]
		}
		l.byType[t] = bucket
	}
}

// Pick returns a fresh clone of a random stored structure of type t, or nil
// when the library has none.
func (l *Library) Pick(rng *rand.Rand, t sqlt.Type) sqlast.Statement {
	bucket := l.byType[t]
	if len(bucket) == 0 {
		return nil
	}
	return sqlparse.CloneStatement(bucket[rng.Intn(len(bucket))])
}

// Export returns the stored structures' SQL per type, in storage order, for
// checkpointing.
func (l *Library) Export() map[sqlt.Type][]string {
	out := make(map[sqlt.Type][]string, len(l.byType))
	for t, bucket := range l.byType {
		if len(bucket) == 0 {
			continue
		}
		sqls := make([]string, len(bucket))
		for i, s := range bucket {
			sqls[i] = s.SQL()
		}
		out[t] = sqls
	}
	return out
}

// Import replaces the library's contents with parsed statements. A
// statement that no longer parses is reported, since silently dropping it
// would desynchronize a resumed campaign.
func (l *Library) Import(m map[sqlt.Type][]string) error {
	byType := make(map[sqlt.Type][]sqlast.Statement, len(m))
	for t, sqls := range m {
		bucket := make([]sqlast.Statement, 0, len(sqls))
		for _, sql := range sqls {
			s, err := sqlparse.Parse(sql)
			if err != nil {
				return err
			}
			bucket = append(bucket, s)
		}
		byType[t] = bucket
	}
	l.byType = byType
	return nil
}

// Size returns the total number of stored structures.
func (l *Library) Size() int {
	n := 0
	for _, b := range l.byType {
		n += len(b)
	}
	return n
}

// TypesCovered returns how many statement types have at least one structure.
func (l *Library) TypesCovered() int {
	n := 0
	for _, b := range l.byType {
		if len(b) > 0 {
			n++
		}
	}
	return n
}
