package instantiate

import (
	"math/rand"
	"sort"
	"strconv"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Fixer repairs cross-statement dependencies in a test case: it walks the
// statements in order, simulating the schema they build, and rewrites
// dangling object references (tables, columns, indexes, prepared statements,
// cursors, ...) to objects that exist at that point. This is the
// "validation" step of paper §III-B: "the dependencies between different
// data are analyzed, and the AST will be filled with concrete values that
// satisfy all dependencies."
//
// The fix is best-effort by design: a fraction of semantic errors is useful
// to fuzzing (error-handling paths are code too), so unresolvable
// references are left in place rather than deleted.
type Fixer struct {
	Rng *rand.Rand
}

// NewFixer returns a fixer.
func NewFixer(rng *rand.Rand) *Fixer { return &Fixer{Rng: rng} }

// simSchema is the simulated catalog built while walking the test case.
type simSchema struct {
	tables  map[string][]string // table -> columns
	views   []string
	indexes []string
	trigs   []string
	seqs    []string
	funcs   []string
	procs   []string
	rules   []string
	roles   []string
	preps   []string
	cursors []string
	saves   []string
	fresh   int
}

func newSimSchema() *simSchema {
	return &simSchema{tables: map[string][]string{}}
}

func (s *simSchema) tableNames() []string {
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	// deterministic order for a given rng seed
	sort.Strings(out)
	return out
}

func (s *simSchema) freshName(prefix string) string {
	s.fresh++
	return prefix + "_" + strconv.Itoa(s.fresh)
}

func pickStr(rng *rand.Rand, ss []string) string {
	if len(ss) == 0 {
		return ""
	}
	return ss[rng.Intn(len(ss))]
}

func hasStr(ss []string, v string) bool {
	for _, s := range ss {
		if s == v {
			return true
		}
	}
	return false
}

func dropStr(ss []string, v string) []string {
	out := ss[:0]
	for _, s := range ss {
		if s != v {
			out = append(out, s)
		}
	}
	return out
}

// Fix repairs the test case in place.
func (f *Fixer) Fix(tc sqlast.TestCase) {
	sch := newSimSchema()
	for _, stmt := range tc {
		f.fixStmt(stmt, sch)
		// fixStmt rewrites names and expressions in place; drop any render
		// cached before the repair.
		sqlast.InvalidateSQL(stmt)
	}
}

// pickTable returns an existing table (preferring tables, falling back to
// views), or "" when none exist.
func (f *Fixer) pickTable(sch *simSchema) string {
	names := sch.tableNames()
	if len(names) > 0 {
		return names[f.Rng.Intn(len(names))]
	}
	return pickStr(f.Rng, sch.views)
}

// fixTableRefName repairs one table name reference; empty result means no
// table exists to repair to.
func (f *Fixer) fixTableRefName(name string, sch *simSchema, extra []string) string {
	if _, ok := sch.tables[name]; ok {
		return name
	}
	if hasStr(sch.views, name) || hasStr(extra, name) {
		return name
	}
	if t := f.pickTable(sch); t != "" {
		return t
	}
	return name
}

// colsOf returns the simulated columns of a table ("" yields nil).
func (sch *simSchema) colsOf(name string) []string { return sch.tables[name] }

// fixExprCols rewrites column references not in allowed to random allowed
// columns, recursing into scalar subqueries.
func (f *Fixer) fixExprCols(x sqlast.Expr, allowed []string, sch *simSchema, ctes []string) sqlast.Expr {
	if x == nil {
		return nil
	}
	return sqlast.RewriteExpr(x, func(n sqlast.Expr) sqlast.Expr {
		switch v := n.(type) {
		case *sqlast.ColRef:
			if v.Name == "VALUE" { // domain pseudo-column
				return v
			}
			if hasStr(allowed, v.Name) {
				return v
			}
			if len(allowed) > 0 {
				return &sqlast.ColRef{Name: allowed[f.Rng.Intn(len(allowed))]}
			}
			return v
		case *sqlast.Subquery:
			f.fixSelect(v.Query, sch, ctes)
		case *sqlast.ExistsExpr:
			f.fixSelect(v.Query, sch, ctes)
		case *sqlast.InExpr:
			if v.Query != nil {
				f.fixSelect(v.Query, sch, ctes)
			}
		}
		return n
	})
}

// fixSelect repairs a query in place: FROM references first, then column
// references against the union of referenced tables' columns.
func (f *Fixer) fixSelect(q *sqlast.SelectStmt, sch *simSchema, ctes []string) []string {
	if q == nil {
		return nil
	}
	var allowed []string
	var fixRef func(r sqlast.TableRef) sqlast.TableRef
	fixRef = func(r sqlast.TableRef) sqlast.TableRef {
		switch v := r.(type) {
		case *sqlast.BaseTable:
			v.Name = f.fixTableRefName(v.Name, sch, ctes)
			allowed = append(allowed, sch.colsOf(v.Name)...)
		case *sqlast.JoinRef:
			v.L = fixRef(v.L)
			v.R = fixRef(v.R)
		case *sqlast.SubqueryRef:
			inner := f.fixSelect(v.Query, sch, ctes)
			allowed = append(allowed, inner...)
		}
		return r
	}
	for i := range q.From {
		q.From[i] = fixRef(q.From[i])
	}
	// join ON conditions may reference alias-qualified columns; fix after
	// collecting allowed columns
	var fixOn func(r sqlast.TableRef)
	fixOn = func(r sqlast.TableRef) {
		if j, ok := r.(*sqlast.JoinRef); ok {
			fixOn(j.L)
			fixOn(j.R)
			if j.On != nil {
				j.On = f.fixQualifiedCols(j.On, allowed, sch, ctes)
			}
		}
	}
	for _, r := range q.From {
		fixOn(r)
	}

	for i := range q.Items {
		if _, isStar := q.Items[i].X.(*sqlast.Star); isStar {
			continue
		}
		q.Items[i].X = f.fixExprCols(q.Items[i].X, allowed, sch, ctes)
	}
	q.Where = f.fixExprCols(q.Where, allowed, sch, ctes)
	for i := range q.GroupBy {
		q.GroupBy[i] = f.fixExprCols(q.GroupBy[i], allowed, sch, ctes)
	}
	q.Having = f.fixExprCols(q.Having, allowed, sch, ctes)
	for i := range q.OrderBy {
		q.OrderBy[i].X = f.fixExprCols(q.OrderBy[i].X, allowed, sch, ctes)
	}
	if q.Right != nil {
		f.fixSelect(q.Right, sch, ctes)
	}
	// result columns: projection names (approximate: allowed columns)
	return allowed
}

// fixQualifiedCols keeps valid alias-qualified refs and repairs the rest.
func (f *Fixer) fixQualifiedCols(x sqlast.Expr, allowed []string, sch *simSchema, ctes []string) sqlast.Expr {
	return sqlast.RewriteExpr(x, func(n sqlast.Expr) sqlast.Expr {
		if v, ok := n.(*sqlast.ColRef); ok {
			if hasStr(allowed, v.Name) {
				return v
			}
			if len(allowed) > 0 {
				return &sqlast.ColRef{Table: v.Table, Name: allowed[f.Rng.Intn(len(allowed))]}
			}
		}
		return n
	})
}

func (f *Fixer) fixStmt(stmt sqlast.Statement, sch *simSchema) {
	switch st := stmt.(type) {
	case *sqlast.CreateTableStmt:
		if _, exists := sch.tables[st.Name]; exists && !st.IfNotExists {
			st.Name = sch.freshName("t")
		}
		var cols []string
		for i := range st.Cols {
			cols = append(cols, st.Cols[i].Name)
			if st.Cols[i].References != nil {
				ref := f.pickTable(sch)
				if ref == "" {
					st.Cols[i].References = nil
				} else {
					st.Cols[i].References.Table = ref
					refCols := sch.colsOf(ref)
					if len(refCols) > 0 {
						st.Cols[i].References.Column = refCols[0]
					} else {
						st.Cols[i].References.Column = ""
					}
				}
			}
			if st.Cols[i].Check != nil {
				st.Cols[i].Check = f.fixExprCols(st.Cols[i].Check, cols, sch, nil)
			}
		}
		for i := range st.Constraints {
			c := &st.Constraints[i]
			for j := range c.Columns {
				if !hasStr(cols, c.Columns[j]) {
					c.Columns[j] = cols[f.Rng.Intn(len(cols))]
				}
			}
			if c.Check != nil {
				c.Check = f.fixExprCols(c.Check, cols, sch, nil)
			}
			if c.Kind == "FOREIGN KEY" {
				if ref := f.pickTable(sch); ref != "" {
					c.RefTab = ref
					c.RefCols = nil
				} else {
					c.RefTab = st.Name
					c.RefCols = nil
				}
			}
		}
		sch.tables[st.Name] = cols

	case *sqlast.CreateViewStmt:
		if hasStr(sch.views, st.Name) && !st.OrReplace {
			st.Name = sch.freshName("w")
		}
		cols := f.fixSelect(st.Query, sch, nil)
		if !hasStr(sch.views, st.Name) {
			sch.views = append(sch.views, st.Name)
		}
		_ = cols

	case *sqlast.CreateIndexStmt:
		if hasStr(sch.indexes, st.Name) {
			st.Name = sch.freshName("i")
		}
		if tbl := f.fixTableRefName(st.Table, sch, nil); tbl != "" {
			st.Table = tbl
		}
		cols := sch.colsOf(st.Table)
		if len(cols) > 0 {
			for i := range st.Cols {
				if !hasStr(cols, st.Cols[i]) {
					st.Cols[i] = cols[f.Rng.Intn(len(cols))]
				}
			}
		}
		sch.indexes = append(sch.indexes, st.Name)

	case *sqlast.CreateTriggerStmt:
		if hasStr(sch.trigs, st.Name) {
			st.Name = sch.freshName("tg")
		}
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		f.fixStmt(st.Body, sch)
		sch.trigs = append(sch.trigs, st.Name)

	case *sqlast.CreateSequenceStmt:
		if hasStr(sch.seqs, st.Name) {
			st.Name = sch.freshName("s")
		}
		sch.seqs = append(sch.seqs, st.Name)

	case *sqlast.CreateFunctionStmt:
		if hasStr(sch.funcs, st.Name) {
			st.Name = sch.freshName("f")
		}
		st.Body = f.fixExprCols(st.Body, st.Params, sch, nil)
		sch.funcs = append(sch.funcs, st.Name)

	case *sqlast.CreateProcedureStmt:
		if hasStr(sch.procs, st.Name) {
			st.Name = sch.freshName("pr")
		}
		f.fixStmt(st.Body, sch)
		sch.procs = append(sch.procs, st.Name)

	case *sqlast.CreateRuleStmt:
		if hasStr(sch.rules, st.Name) && !st.OrReplace {
			st.Name = sch.freshName("r")
		}
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		if st.Action != nil {
			f.fixStmt(st.Action, sch)
		}
		if !hasStr(sch.rules, st.Name) {
			sch.rules = append(sch.rules, st.Name)
		}

	case *sqlast.CreateRoleStmt:
		if hasStr(sch.roles, st.Name) {
			st.Name = sch.freshName("u")
		}
		sch.roles = append(sch.roles, st.Name)

	case *sqlast.AlterTableStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		cols := sch.colsOf(st.Table)
		switch st.Action {
		case sqlast.AlterAddColumn:
			if hasStr(cols, st.Col.Name) {
				st.Col.Name = sch.freshName("c")
			}
			st.Col.NotNull = false // avoid guaranteed failure on non-empty tables
			if _, exists := sch.tables[st.Table]; exists {
				sch.tables[st.Table] = append(cols, st.Col.Name)
			}
		case sqlast.AlterDropColumn:
			if len(cols) > 1 {
				if !hasStr(cols, st.OldName) {
					st.OldName = cols[f.Rng.Intn(len(cols))]
				}
				sch.tables[st.Table] = dropStr(append([]string{}, cols...), st.OldName)
			}
		case sqlast.AlterRenameColumn:
			if len(cols) > 0 {
				if !hasStr(cols, st.OldName) {
					st.OldName = cols[f.Rng.Intn(len(cols))]
				}
				if hasStr(cols, st.NewName) {
					st.NewName = sch.freshName("c")
				}
				nc := append([]string{}, cols...)
				for i := range nc {
					if nc[i] == st.OldName {
						nc[i] = st.NewName
					}
				}
				sch.tables[st.Table] = nc
			}
		case sqlast.AlterRenameTable:
			if _, exists := sch.tables[st.NewName]; exists {
				st.NewName = sch.freshName("t")
			}
			if c, exists := sch.tables[st.Table]; exists {
				delete(sch.tables, st.Table)
				sch.tables[st.NewName] = c
			}
		case sqlast.AlterColumnType, sqlast.AlterColumnDefault:
			if len(cols) > 0 && !hasStr(cols, st.Col.Name) {
				st.Col.Name = cols[f.Rng.Intn(len(cols))]
			}
		}

	case *sqlast.AlterSimpleStmt:
		switch st.What {
		case sqlt.AlterView:
			if n := pickStr(f.Rng, sch.views); n != "" {
				st.Name = n
			}
			if hasStr(sch.views, st.NewName) {
				st.NewName = sch.freshName("w")
			}
		case sqlt.AlterIndex:
			if n := pickStr(f.Rng, sch.indexes); n != "" {
				st.Name = n
			}
			if hasStr(sch.indexes, st.NewName) {
				st.NewName = sch.freshName("i")
			}
		case sqlt.AlterSequence:
			if n := pickStr(f.Rng, sch.seqs); n != "" {
				st.Name = n
			}
		case sqlt.AlterRole:
			if n := pickStr(f.Rng, sch.roles); n != "" {
				st.Name = n
			}
		}

	case *sqlast.DropStmt:
		switch st.What {
		case sqlt.DropTable:
			names := sch.tableNames()
			if len(names) > 0 {
				if _, exists := sch.tables[st.Name]; !exists {
					st.Name = names[f.Rng.Intn(len(names))]
				}
				delete(sch.tables, st.Name)
			}
		case sqlt.DropView, sqlt.DropMaterializedView:
			if n := pickStr(f.Rng, sch.views); n != "" && !hasStr(sch.views, st.Name) {
				st.Name = n
			}
			sch.views = dropStr(sch.views, st.Name)
		case sqlt.DropIndex:
			if n := pickStr(f.Rng, sch.indexes); n != "" && !hasStr(sch.indexes, st.Name) {
				st.Name = n
			}
			sch.indexes = dropStr(sch.indexes, st.Name)
		case sqlt.DropTrigger:
			if n := pickStr(f.Rng, sch.trigs); n != "" && !hasStr(sch.trigs, st.Name) {
				st.Name = n
			}
			sch.trigs = dropStr(sch.trigs, st.Name)
		case sqlt.DropSequence:
			if n := pickStr(f.Rng, sch.seqs); n != "" && !hasStr(sch.seqs, st.Name) {
				st.Name = n
			}
			sch.seqs = dropStr(sch.seqs, st.Name)
		case sqlt.DropFunction:
			if n := pickStr(f.Rng, sch.funcs); n != "" && !hasStr(sch.funcs, st.Name) {
				st.Name = n
			}
			sch.funcs = dropStr(sch.funcs, st.Name)
		case sqlt.DropProcedure:
			if n := pickStr(f.Rng, sch.procs); n != "" && !hasStr(sch.procs, st.Name) {
				st.Name = n
			}
			sch.procs = dropStr(sch.procs, st.Name)
		case sqlt.DropRule:
			if n := pickStr(f.Rng, sch.rules); n != "" && !hasStr(sch.rules, st.Name) {
				st.Name = n
			}
			sch.rules = dropStr(sch.rules, st.Name)
		case sqlt.DropRole, sqlt.DropUser:
			if n := pickStr(f.Rng, sch.roles); n != "" && !hasStr(sch.roles, st.Name) {
				st.Name = n
			}
			sch.roles = dropStr(sch.roles, st.Name)
		}

	case *sqlast.RenameTableStmt:
		st.From = f.fixTableRefName(st.From, sch, nil)
		if _, exists := sch.tables[st.To]; exists {
			st.To = sch.freshName("t")
		}
		if c, exists := sch.tables[st.From]; exists {
			delete(sch.tables, st.From)
			sch.tables[st.To] = c
		}

	case *sqlast.TruncateStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)

	case *sqlast.CommentOnStmt:
		if st.ObjectKind == "TABLE" {
			st.Name = f.fixTableRefName(st.Name, sch, nil)
		}

	case *sqlast.ReindexStmt:
		if st.Kind == "INDEX" {
			if n := pickStr(f.Rng, sch.indexes); n != "" {
				st.Name = n
			}
		} else {
			st.Name = f.fixTableRefName(st.Name, sch, nil)
		}

	case *sqlast.RefreshMatViewStmt:
		if n := pickStr(f.Rng, sch.views); n != "" {
			st.Name = n
		}

	case *sqlast.InsertStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		cols := sch.colsOf(st.Table)
		if len(cols) > 0 {
			// drop the explicit column list and repair row arity
			st.Cols = nil
			for i := range st.Rows {
				row := st.Rows[i]
				for len(row) < len(cols) {
					row = append(row, sqlast.NullLit())
				}
				if len(row) > len(cols) {
					row = row[:len(cols)]
				}
				st.Rows[i] = row
			}
		}
		if st.Query != nil {
			f.fixSelect(st.Query, sch, nil)
		}
		for i := range st.Returning {
			st.Returning[i] = f.fixExprCols(st.Returning[i], cols, sch, nil)
		}

	case *sqlast.UpdateStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		cols := sch.colsOf(st.Table)
		if len(cols) > 0 {
			for i := range st.Sets {
				if !hasStr(cols, st.Sets[i].Col) {
					st.Sets[i].Col = cols[f.Rng.Intn(len(cols))]
				}
				st.Sets[i].Value = f.fixExprCols(st.Sets[i].Value, cols, sch, nil)
			}
		}
		st.Where = f.fixExprCols(st.Where, cols, sch, nil)
		for i := range st.OrderBy {
			st.OrderBy[i].X = f.fixExprCols(st.OrderBy[i].X, cols, sch, nil)
		}

	case *sqlast.DeleteStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		cols := sch.colsOf(st.Table)
		st.Where = f.fixExprCols(st.Where, cols, sch, nil)
		for i := range st.OrderBy {
			st.OrderBy[i].X = f.fixExprCols(st.OrderBy[i].X, cols, sch, nil)
		}
		for i := range st.Returning {
			st.Returning[i] = f.fixExprCols(st.Returning[i], cols, sch, nil)
		}

	case *sqlast.MergeStmt:
		st.Target = f.fixTableRefName(st.Target, sch, nil)
		st.Source = f.fixTableRefName(st.Source, sch, nil)
		allowed := append(append([]string{}, sch.colsOf(st.Target)...), sch.colsOf(st.Source)...)
		st.On = f.fixExprCols(st.On, allowed, sch, nil)
		tcols := sch.colsOf(st.Target)
		for i := range st.MatchedSet {
			if len(tcols) > 0 && !hasStr(tcols, st.MatchedSet[i].Col) {
				st.MatchedSet[i].Col = tcols[f.Rng.Intn(len(tcols))]
			}
			st.MatchedSet[i].Value = f.fixExprCols(st.MatchedSet[i].Value, allowed, sch, nil)
		}
		if st.NotMatchedVals != nil && len(tcols) > 0 {
			for len(st.NotMatchedVals) < len(tcols) {
				st.NotMatchedVals = append(st.NotMatchedVals, sqlast.NullLit())
			}
			st.NotMatchedVals = st.NotMatchedVals[:len(tcols)]
		}

	case *sqlast.CopyStmt:
		if st.Query != nil {
			f.fixSelect(st.Query, sch, nil)
		} else {
			st.Table = f.fixTableRefName(st.Table, sch, nil)
		}

	case *sqlast.LoadDataStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)

	case *sqlast.CallStmt:
		if n := pickStr(f.Rng, sch.procs); n != "" {
			st.Name = n
		}

	case *sqlast.SelectStmt:
		f.fixSelect(st, sch, nil)
		if st.Into != "" {
			if _, exists := sch.tables[st.Into]; exists {
				st.Into = sch.freshName("t")
			}
			sch.tables[st.Into] = nil
		}

	case *sqlast.TableStmtNode:
		st.Name = f.fixTableRefName(st.Name, sch, nil)

	case *sqlast.WithStmt:
		var ctes []string
		for i := range st.CTEs {
			if sel, isSel := st.CTEs[i].Body.(*sqlast.SelectStmt); isSel {
				f.fixSelect(sel, sch, ctes)
			} else {
				f.fixStmt(st.CTEs[i].Body, sch)
			}
			ctes = append(ctes, st.CTEs[i].Name)
		}
		if sel, isSel := st.Body.(*sqlast.SelectStmt); isSel {
			f.fixSelect(sel, sch, ctes)
		} else {
			f.fixStmt(st.Body, sch)
		}

	case *sqlast.ExplainStmt:
		f.fixStmt(st.Stmt, sch)

	case *sqlast.DescribeStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)

	case *sqlast.GrantStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		if n := pickStr(f.Rng, sch.roles); n != "" {
			st.Role = n
		}

	case *sqlast.SetRoleStmt:
		if st.Role != "NONE" {
			if n := pickStr(f.Rng, sch.roles); n != "" {
				st.Role = n
			} else {
				st.Role = "NONE"
			}
		}

	case *sqlast.TxnStmt:
		switch st.What {
		case sqlt.Savepoint:
			sch.saves = append(sch.saves, st.Name)
		case sqlt.ReleaseSavepoint, sqlt.RollbackToSavepoint:
			if n := pickStr(f.Rng, sch.saves); n != "" {
				st.Name = n
			}
		}

	case *sqlast.LockTableStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)

	case *sqlast.AnalyzeStmt:
		if st.Table != "" {
			st.Table = f.fixTableRefName(st.Table, sch, nil)
		}

	case *sqlast.VacuumStmt:
		if st.Table != "" {
			st.Table = f.fixTableRefName(st.Table, sch, nil)
		}

	case *sqlast.MaintenanceStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)

	case *sqlast.PrepareStmt:
		if hasStr(sch.preps, st.Name) {
			st.Name = sch.freshName("q")
		}
		f.fixStmt(st.Stmt, sch)
		sch.preps = append(sch.preps, st.Name)

	case *sqlast.ExecuteStmt:
		if n := pickStr(f.Rng, sch.preps); n != "" {
			st.Name = n
		}

	case *sqlast.DeallocateStmt:
		if n := pickStr(f.Rng, sch.preps); n != "" {
			st.Name = n
		}
		sch.preps = dropStr(sch.preps, st.Name)

	case *sqlast.DeclareCursorStmt:
		if hasStr(sch.cursors, st.Name) {
			st.Name = sch.freshName("cur")
		}
		f.fixSelect(st.Query, sch, nil)
		sch.cursors = append(sch.cursors, st.Name)

	case *sqlast.FetchStmt:
		if n := pickStr(f.Rng, sch.cursors); n != "" {
			st.Cursor = n
		}

	case *sqlast.CloseCursorStmt:
		if n := pickStr(f.Rng, sch.cursors); n != "" {
			st.Name = n
		}
		sch.cursors = dropStr(sch.cursors, st.Name)

	case *sqlast.ClusterStmt:
		st.Table = f.fixTableRefName(st.Table, sch, nil)
		if n := pickStr(f.Rng, sch.indexes); n != "" {
			st.Index = n
		} else {
			st.Index = ""
		}
	}
}
