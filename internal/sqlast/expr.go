// Package sqlast defines the abstract syntax tree shared by the parser, the
// minidb engine, and the fuzzer's instantiation machinery.
//
// The AST is the intermediate representation the paper describes (§III-B):
// statement structures are harvested from parsed seeds into a library, and
// synthesized SQL Type Sequences are instantiated by picking type-matched
// structures, concatenating them, and fixing cross-statement dependencies.
package sqlast

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is any SQL scalar expression.
type Expr interface {
	exprNode()
	// SQL renders the expression as parseable SQL text.
	SQL() string
	// Clone returns a deep, aliasing-free copy of the expression.
	Clone() Expr
}

// LitKind discriminates literal values.
type LitKind uint8

// Literal kinds.
const (
	LitNull LitKind = iota
	LitInt
	LitFloat
	LitString
	LitBool
)

// Literal is a constant value.
type Literal struct {
	Kind  LitKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Convenience constructors for literals.
func NullLit() *Literal           { return &Literal{Kind: LitNull} }
func IntLit(v int64) *Literal     { return &Literal{Kind: LitInt, Int: v} }
func FloatLit(v float64) *Literal { return &Literal{Kind: LitFloat, Float: v} }
func StringLit(s string) *Literal { return &Literal{Kind: LitString, Str: s} }
func BoolLit(b bool) *Literal     { return &Literal{Kind: LitBool, Bool: b} }

func (*Literal) exprNode() {}

// SQL renders the literal.
func (l *Literal) SQL() string {
	switch l.Kind {
	case LitNull:
		return "NULL"
	case LitInt:
		return strconv.FormatInt(l.Int, 10)
	case LitFloat:
		s := strconv.FormatFloat(l.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	case LitBool:
		if l.Bool {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "NULL"
	}
}

// ColRef references a column, optionally qualified by table name.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColRef) exprNode() {}

// SQL renders the column reference.
func (c *ColRef) SQL() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Star is the `*` (or `t.*`) projection item.
type Star struct {
	Table string // optional qualifier
}

func (*Star) exprNode() {}

// SQL renders the star item.
func (s *Star) SQL() string {
	if s.Table != "" {
		return s.Table + ".*"
	}
	return "*"
}

// Unary is a prefix operator application: -, +, NOT.
type Unary struct {
	Op string
	X  Expr
}

func (*Unary) exprNode() {}

// SQL renders the unary expression.
func (u *Unary) SQL() string {
	if u.Op == "NOT" {
		return "NOT (" + u.X.SQL() + ")"
	}
	return u.Op + " " + maybeParen(u.X)
}

// Binary is an infix operator application.
type Binary struct {
	Op string // +, -, *, /, %, ||, =, <>, <, <=, >, >=, AND, OR
	L  Expr
	R  Expr
}

func (*Binary) exprNode() {}

// SQL renders the binary expression with defensive parenthesisation.
func (b *Binary) SQL() string {
	return "(" + b.L.SQL() + " " + b.Op + " " + b.R.SQL() + ")"
}

// FuncCall is a (possibly aggregate or windowed) function invocation.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
	Over     *WindowSpec
}

func (*FuncCall) exprNode() {}

// SQL renders the call.
func (f *FuncCall) SQL() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	if f.Star {
		sb.WriteByte('*')
	} else {
		if f.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.SQL())
		}
	}
	sb.WriteByte(')')
	if f.Over != nil {
		sb.WriteString(" OVER (")
		sb.WriteString(f.Over.SQL())
		sb.WriteByte(')')
	}
	return sb.String()
}

// WindowSpec is a minimal window definition (PARTITION BY / ORDER BY).
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// SQL renders the window body (without the OVER wrapper).
func (w *WindowSpec) SQL() string {
	var parts []string
	if len(w.PartitionBy) > 0 {
		ps := make([]string, len(w.PartitionBy))
		for i, e := range w.PartitionBy {
			ps[i] = e.SQL()
		}
		parts = append(parts, "PARTITION BY "+strings.Join(ps, ", "))
	}
	if len(w.OrderBy) > 0 {
		os := make([]string, len(w.OrderBy))
		for i, o := range w.OrderBy {
			os[i] = o.SQL()
		}
		parts = append(parts, "ORDER BY "+strings.Join(os, ", "))
	}
	return strings.Join(parts, " ")
}

// CaseWhen is one WHEN cond THEN result arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // optional
	Whens   []CaseWhen
	Else    Expr // optional
}

func (*CaseExpr) exprNode() {}

// SQL renders the case expression.
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteByte(' ')
		sb.WriteString(c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.Cond.SQL())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Result.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// InExpr is x [NOT] IN (list) or x [NOT] IN (subquery).
type InExpr struct {
	X     Expr
	Not   bool
	List  []Expr      // one of List / Query
	Query *SelectStmt // subquery form
}

func (*InExpr) exprNode() {}

// SQL renders the IN expression.
func (e *InExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString(maybeParen(e.X))
	if e.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	if e.Query != nil {
		sb.WriteString(e.Query.SQL())
	} else {
		for i, x := range e.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(x.SQL())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X   Expr
	Not bool
	Lo  Expr
	Hi  Expr
}

func (*BetweenExpr) exprNode() {}

// SQL renders the BETWEEN expression.
func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return maybeParen(e.X) + " " + not + "BETWEEN " + maybeParen(e.Lo) + " AND " + maybeParen(e.Hi)
}

// LikeExpr is x [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

func (*LikeExpr) exprNode() {}

// SQL renders the LIKE expression.
func (e *LikeExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return maybeParen(e.X) + " " + not + "LIKE " + maybeParen(e.Pattern)
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) exprNode() {}

// SQL renders the IS NULL test.
func (e *IsNullExpr) SQL() string {
	if e.Not {
		return maybeParen(e.X) + " IS NOT NULL"
	}
	return maybeParen(e.X) + " IS NULL"
}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X        Expr
	TypeName string
}

func (*CastExpr) exprNode() {}

// SQL renders the cast.
func (e *CastExpr) SQL() string {
	return "CAST(" + e.X.SQL() + " AS " + e.TypeName + ")"
}

// Subquery is a scalar subquery.
type Subquery struct {
	Query *SelectStmt
}

func (*Subquery) exprNode() {}

// SQL renders the scalar subquery.
func (e *Subquery) SQL() string { return "(" + e.Query.SQL() + ")" }

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not   bool
	Query *SelectStmt
}

func (*ExistsExpr) exprNode() {}

// SQL renders the EXISTS test.
func (e *ExistsExpr) SQL() string {
	if e.Not {
		return "NOT EXISTS (" + e.Query.SQL() + ")"
	}
	return "EXISTS (" + e.Query.SQL() + ")"
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	X    Expr
	Desc bool
}

// SQL renders the order item.
func (o OrderItem) SQL() string {
	if o.Desc {
		return o.X.SQL() + " DESC"
	}
	return o.X.SQL()
}

func maybeParen(e Expr) string {
	switch e.(type) {
	case *Literal, *ColRef, *FuncCall, *Star, *Subquery, *CastExpr:
		return e.SQL()
	default:
		return "(" + e.SQL() + ")"
	}
}

// RewriteExpr applies f bottom-up over e, replacing each node with f's
// result. It is the workhorse of dependency fixing during instantiation.
// A nil input yields nil.
func RewriteExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	//lego:exhaustive Expr
	switch x := e.(type) {
	case *Literal, *ColRef, *Star:
		// leaves
	case *Unary:
		x.X = RewriteExpr(x.X, f)
	case *Binary:
		x.L = RewriteExpr(x.L, f)
		x.R = RewriteExpr(x.R, f)
	case *FuncCall:
		for i := range x.Args {
			x.Args[i] = RewriteExpr(x.Args[i], f)
		}
		if x.Over != nil {
			for i := range x.Over.PartitionBy {
				x.Over.PartitionBy[i] = RewriteExpr(x.Over.PartitionBy[i], f)
			}
			for i := range x.Over.OrderBy {
				x.Over.OrderBy[i].X = RewriteExpr(x.Over.OrderBy[i].X, f)
			}
		}
	case *CaseExpr:
		x.Operand = RewriteExpr(x.Operand, f)
		for i := range x.Whens {
			x.Whens[i].Cond = RewriteExpr(x.Whens[i].Cond, f)
			x.Whens[i].Result = RewriteExpr(x.Whens[i].Result, f)
		}
		x.Else = RewriteExpr(x.Else, f)
	case *InExpr:
		x.X = RewriteExpr(x.X, f)
		for i := range x.List {
			x.List[i] = RewriteExpr(x.List[i], f)
		}
	case *BetweenExpr:
		x.X = RewriteExpr(x.X, f)
		x.Lo = RewriteExpr(x.Lo, f)
		x.Hi = RewriteExpr(x.Hi, f)
	case *LikeExpr:
		x.X = RewriteExpr(x.X, f)
		x.Pattern = RewriteExpr(x.Pattern, f)
	case *IsNullExpr:
		x.X = RewriteExpr(x.X, f)
	case *CastExpr:
		x.X = RewriteExpr(x.X, f)
	case *ExistsExpr, *Subquery:
		// subquery internals are handled by statement-level walkers
	default:
		panic(fmt.Sprintf("sqlast: RewriteExpr: unknown node %T", e))
	}
	return f(e)
}

// WalkExpr calls f on every node of e in depth-first order, descending into
// scalar subqueries' expressions is the caller's responsibility.
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	RewriteExpr(e, func(x Expr) Expr { f(x); return x })
}
