package sqlast

// Render memoization.
//
// Statement.SQL() is called far more often than statements change: oracle
// recording, checkpointing, instantiation-library dedup, and test-case
// joining all re-render the same unchanged AST. The hot statement kinds
// (the ten types that dominate fuzz corpora) embed sqlMemo and cache their
// first render; SQL() returns the cached text until the memo is cleared.
//
// Staleness is prevented by construction plus a defensive invalidation
// walker:
//
//   - Clone() never copies the memo (clone.go builds field-literal copies),
//     so every clone starts cold. In-place mutation only ever happens on
//     fresh clones (mutate.Mutator) or freshly instantiated cases
//     (instantiate.Fixer), which also call InvalidateSQL explicitly.
//   - InvalidateSQL(s) clears the memo of s and of every nested statement,
//     descending through CTE/EXPLAIN/PREPARE/trigger bodies and through
//     expressions that carry subqueries.
//
// The memo treats "" as absent: no statement renders to the empty string,
// so no sentinel flag is needed and the zero value is a cold memo.

// sqlMemo caches a statement's rendered SQL. The zero value is cold.
type sqlMemo struct {
	memoSQL string
}

// clearMemo drops the cached render.
func (m *sqlMemo) clearMemo() { m.memoSQL = "" }

// memo returns the cached render, computing it on first use.
func (m *sqlMemo) memo(render func() string) string {
	if m.memoSQL == "" {
		m.memoSQL = render()
	}
	return m.memoSQL
}

// SQL implements Statement; the render body lives in the type's render().
func (s *CreateTableStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *CreateViewStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *CreateIndexStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *InsertStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *UpdateStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *DeleteStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *MergeStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *SelectStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *WithStmt) SQL() string { return s.memo(s.render) }

// SQL implements Statement.
func (s *ExplainStmt) SQL() string { return s.memo(s.render) }

// memoized is satisfied by every statement type embedding sqlMemo.
type memoized interface {
	clearMemo()
}

// InvalidateSQL clears the cached render of s and of every statement nested
// inside it (CTE bodies, EXPLAIN/PREPARE targets, trigger and procedure
// bodies, and subqueries reachable through expressions). Call it after
// mutating a statement in place; clones start cold and never need it.
func InvalidateSQL(s Statement) {
	if s == nil {
		return
	}
	if m, ok := s.(memoized); ok {
		m.clearMemo()
	}
	//lego:exhaustive Statement children
	switch v := s.(type) {
	case *SelectStmt:
		invalidateSelectParts(v)
	case *InsertStmt:
		for _, row := range v.Rows {
			invalidateExprs(row)
		}
		invalidateSelect(v.Query)
		invalidateExprs(v.Returning)
	case *UpdateStmt:
		invalidateAssignments(v.Sets)
		invalidateExpr(v.Where)
		invalidateOrderItems(v.OrderBy)
		invalidateExpr(v.Limit)
	case *DeleteStmt:
		invalidateExpr(v.Where)
		invalidateOrderItems(v.OrderBy)
		invalidateExpr(v.Limit)
		invalidateExprs(v.Returning)
	case *MergeStmt:
		invalidateExpr(v.On)
		invalidateAssignments(v.MatchedSet)
		invalidateExprs(v.NotMatchedVals)
	case *CreateTableStmt:
		for i := range v.Cols {
			invalidateExpr(v.Cols[i].Default)
			invalidateExpr(v.Cols[i].Check)
		}
		for i := range v.Constraints {
			invalidateExpr(v.Constraints[i].Check)
		}
	case *CreateViewStmt:
		invalidateSelect(v.Query)
	case *WithStmt:
		for i := range v.CTEs {
			InvalidateSQL(v.CTEs[i].Body)
		}
		InvalidateSQL(v.Body)
	case *ExplainStmt:
		InvalidateSQL(v.Stmt)
	case *CreateTriggerStmt:
		InvalidateSQL(v.Body)
	case *CreateProcedureStmt:
		InvalidateSQL(v.Body)
	case *CreateRuleStmt:
		InvalidateSQL(v.Action)
	case *CreateFunctionStmt:
		invalidateExpr(v.Body)
	case *CreateDomainStmt:
		invalidateExpr(v.Check)
	case *AlterTableStmt:
		invalidateExpr(v.Col.Default)
		invalidateExpr(v.Col.Check)
	case *AlterSystemStmt:
		invalidateExpr(v.Value)
	case *SetVarStmt:
		invalidateExpr(v.Value)
	case *PragmaStmt:
		invalidateExpr(v.Value)
	case *CopyStmt:
		invalidateSelect(v.Query)
	case *PrepareStmt:
		InvalidateSQL(v.Stmt)
	case *ExecuteStmt:
		invalidateExprs(v.Args)
	case *CallStmt:
		invalidateExprs(v.Args)
	case *DoStmt:
		invalidateExpr(v.Body)
	case *DeclareCursorStmt:
		invalidateSelect(v.Query)
	case *ValuesStmtNode:
		for _, row := range v.Rows {
			invalidateExprs(row)
		}
	}
}

// InvalidateTestCase clears the cached renders of every statement in tc.
func InvalidateTestCase(tc TestCase) {
	for _, s := range tc {
		InvalidateSQL(s)
	}
}

func invalidateSelect(q *SelectStmt) {
	if q == nil {
		return
	}
	InvalidateSQL(q)
}

func invalidateSelectParts(v *SelectStmt) {
	for i := range v.Items {
		invalidateExpr(v.Items[i].X)
	}
	for _, f := range v.From {
		invalidateTableRef(f)
	}
	invalidateExpr(v.Where)
	invalidateExprs(v.GroupBy)
	invalidateExpr(v.Having)
	invalidateOrderItems(v.OrderBy)
	invalidateExpr(v.Limit)
	invalidateExpr(v.Offset)
	invalidateSelect(v.Right)
}

func invalidateTableRef(t TableRef) {
	//lego:exhaustive TableRef children
	switch r := t.(type) {
	case *JoinRef:
		invalidateTableRef(r.L)
		invalidateTableRef(r.R)
		invalidateExpr(r.On)
	case *SubqueryRef:
		invalidateSelect(r.Query)
	}
}

// invalidateExpr clears memos of subqueries reachable through e. RewriteExpr
// deliberately stops at subquery boundaries, so the callback re-enters the
// statement walker there.
func invalidateExpr(e Expr) {
	if e == nil {
		return
	}
	WalkExpr(e, func(x Expr) {
		//lego:exhaustive Expr statements
		switch q := x.(type) {
		case *Subquery:
			invalidateSelect(q.Query)
		case *ExistsExpr:
			invalidateSelect(q.Query)
		case *InExpr:
			invalidateSelect(q.Query)
		}
	})
}

func invalidateExprs(xs []Expr) {
	for _, x := range xs {
		invalidateExpr(x)
	}
}

func invalidateOrderItems(os []OrderItem) {
	for i := range os {
		invalidateExpr(os[i].X)
	}
}

func invalidateAssignments(as []Assignment) {
	for i := range as {
		invalidateExpr(as[i].Value)
	}
}
