package sqlast

import (
	"strings"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestCase is a fuzzing input: an ordered sequence of SQL statements
// (paper §II — "a test case always consists of a sequence of SQL
// statements").
type TestCase []Statement

// SQL renders the test case as a semicolon-terminated script.
func (tc TestCase) SQL() string {
	var sb strings.Builder
	sb.Grow(64 * len(tc))
	for _, s := range tc {
		sb.WriteString(s.SQL())
		sb.WriteString(";\n")
	}
	return sb.String()
}

// Types returns the test case's SQL Type Sequence.
func (tc TestCase) Types() sqlt.Sequence {
	seq := make(sqlt.Sequence, len(tc))
	for i, s := range tc {
		seq[i] = s.Type()
	}
	return seq
}

// StatementTables extracts the table/view names a statement reads or
// writes. It is a conservative over-approximation used by the dependency
// fixer and by seed-structure harvesting; expressions' scalar subqueries are
// included.
func StatementTables(s Statement) []string {
	var out []string
	add := func(name string) {
		if name == "" {
			return
		}
		for _, n := range out {
			if n == name {
				return
			}
		}
		out = append(out, name)
	}
	var fromRef func(r TableRef)
	var fromSelect func(q *SelectStmt)
	fromExpr := func(e Expr) {
		WalkExpr(e, func(x Expr) {
			//lego:exhaustive Expr statements
			switch v := x.(type) {
			case *Subquery:
				fromSelect(v.Query)
			case *ExistsExpr:
				fromSelect(v.Query)
			case *InExpr:
				if v.Query != nil {
					fromSelect(v.Query)
				}
			}
		})
	}
	fromRef = func(r TableRef) {
		//lego:exhaustive TableRef
		switch v := r.(type) {
		case *BaseTable:
			add(v.Name)
		case *JoinRef:
			fromRef(v.L)
			fromRef(v.R)
			fromExpr(v.On)
		case *SubqueryRef:
			fromSelect(v.Query)
		}
	}
	fromSelect = func(q *SelectStmt) {
		if q == nil {
			return
		}
		for _, it := range q.Items {
			fromExpr(it.X)
		}
		for _, f := range q.From {
			fromRef(f)
		}
		fromExpr(q.Where)
		for _, g := range q.GroupBy {
			fromExpr(g)
		}
		fromExpr(q.Having)
		for _, o := range q.OrderBy {
			fromExpr(o.X)
		}
		fromSelect(q.Right)
	}

	//lego:exhaustive Statement children
	switch v := s.(type) {
	case *CreateTableStmt:
		add(v.Name)
	case *CreateViewStmt:
		add(v.Name)
		fromSelect(v.Query)
	case *CreateIndexStmt:
		add(v.Table)
	case *CreateTriggerStmt:
		add(v.Table)
		for _, t := range StatementTables(v.Body) {
			add(t)
		}
	case *CreateRuleStmt:
		add(v.Table)
		if v.Action != nil {
			for _, t := range StatementTables(v.Action) {
				add(t)
			}
		}
	case *AlterTableStmt:
		add(v.Table)
	case *DropStmt:
		switch v.What {
		case sqlt.DropTable, sqlt.DropView, sqlt.DropMaterializedView:
			add(v.Name)
		}
		add(v.OnTable)
	case *RenameTableStmt:
		add(v.From)
	case *TruncateStmt:
		add(v.Table)
	case *RefreshMatViewStmt:
		add(v.Name)
	case *InsertStmt:
		add(v.Table)
		for _, row := range v.Rows {
			for _, e := range row {
				fromExpr(e)
			}
		}
		fromSelect(v.Query)
	case *UpdateStmt:
		add(v.Table)
		for _, a := range v.Sets {
			fromExpr(a.Value)
		}
		fromExpr(v.Where)
	case *DeleteStmt:
		add(v.Table)
		fromExpr(v.Where)
	case *MergeStmt:
		add(v.Target)
		add(v.Source)
		fromExpr(v.On)
	case *CopyStmt:
		add(v.Table)
		fromSelect(v.Query)
	case *LoadDataStmt:
		add(v.Table)
	case *SelectStmt:
		fromSelect(v)
	case *TableStmtNode:
		add(v.Name)
	case *WithStmt:
		for _, c := range v.CTEs {
			for _, t := range StatementTables(c.Body) {
				add(t)
			}
		}
		for _, t := range StatementTables(v.Body) {
			add(t)
		}
	case *ExplainStmt:
		for _, t := range StatementTables(v.Stmt) {
			add(t)
		}
	case *DescribeStmt:
		add(v.Table)
	case *GrantStmt:
		add(v.Table)
	case *LockTableStmt:
		add(v.Table)
	case *AnalyzeStmt:
		add(v.Table)
	case *VacuumStmt:
		add(v.Table)
	case *MaintenanceStmt:
		add(v.Table)
	case *DeclareCursorStmt:
		fromSelect(v.Query)
	case *ClusterStmt:
		add(v.Table)
	case *PrepareStmt:
		for _, t := range StatementTables(v.Stmt) {
			add(t)
		}
	case *CreateFunctionStmt:
		fromExpr(v.Body)
	case *CreateProcedureStmt:
		for _, t := range StatementTables(v.Body) {
			add(t)
		}
	case *CreateDomainStmt:
		fromExpr(v.Check)
	case *AlterSystemStmt:
		fromExpr(v.Value)
	case *SetVarStmt:
		fromExpr(v.Value)
	case *PragmaStmt:
		fromExpr(v.Value)
	case *CallStmt:
		for _, a := range v.Args {
			fromExpr(a)
		}
	case *DoStmt:
		fromExpr(v.Body)
	case *ExecuteStmt:
		for _, a := range v.Args {
			fromExpr(a)
		}
	case *ValuesStmtNode:
		for _, row := range v.Rows {
			for _, e := range row {
				fromExpr(e)
			}
		}
	}
	return out
}
