package sqlast

import (
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestLiteralSQL(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NullLit(), "NULL"},
		{IntLit(42), "42"},
		{IntLit(-7), "-7"},
		{FloatLit(2.5), "2.5"},
		{FloatLit(4), "4.0"}, // integral floats keep a decimal marker
		{StringLit("a"), "'a'"},
		{StringLit("it's"), "'it''s'"},
		{BoolLit(true), "TRUE"},
		{BoolLit(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.e.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestExprSQL(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&ColRef{Name: "a"}, "a"},
		{&ColRef{Table: "t", Name: "a"}, "t.a"},
		{&Star{}, "*"},
		{&Star{Table: "t"}, "t.*"},
		{&Binary{Op: "+", L: IntLit(1), R: IntLit(2)}, "(1 + 2)"},
		{&Unary{Op: "-", X: &ColRef{Name: "a"}}, "- a"},
		{&Unary{Op: "NOT", X: BoolLit(true)}, "NOT (TRUE)"},
		{&FuncCall{Name: "COUNT", Star: true}, "COUNT(*)"},
		{&FuncCall{Name: "SUM", Args: []Expr{&ColRef{Name: "a"}}, Distinct: true}, "SUM(DISTINCT a)"},
		{&IsNullExpr{X: &ColRef{Name: "a"}}, "a IS NULL"},
		{&IsNullExpr{X: &ColRef{Name: "a"}, Not: true}, "a IS NOT NULL"},
		{&LikeExpr{X: &ColRef{Name: "a"}, Pattern: StringLit("x%")}, "a LIKE 'x%'"},
		{&BetweenExpr{X: &ColRef{Name: "a"}, Lo: IntLit(1), Hi: IntLit(2)}, "a BETWEEN 1 AND 2"},
		{&InExpr{X: &ColRef{Name: "a"}, List: []Expr{IntLit(1), IntLit(2)}}, "a IN (1, 2)"},
		{&CastExpr{X: IntLit(1), TypeName: "TEXT"}, "CAST(1 AS TEXT)"},
		{&CaseExpr{Whens: []CaseWhen{{Cond: BoolLit(true), Result: IntLit(1)}}, Else: IntLit(0)},
			"CASE WHEN TRUE THEN 1 ELSE 0 END"},
	}
	for _, c := range cases {
		if got := c.e.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestWindowSpecSQL(t *testing.T) {
	fc := &FuncCall{
		Name: "SUM",
		Args: []Expr{&ColRef{Name: "v"}},
		Over: &WindowSpec{
			PartitionBy: []Expr{&ColRef{Name: "g"}},
			OrderBy:     []OrderItem{{X: &ColRef{Name: "v"}, Desc: true}},
		},
	}
	want := "SUM(v) OVER (PARTITION BY g ORDER BY v DESC)"
	if fc.SQL() != want {
		t.Fatalf("got %q, want %q", fc.SQL(), want)
	}
}

func TestStatementTypes(t *testing.T) {
	cases := []struct {
		s    Statement
		want sqlt.Type
	}{
		{&CreateViewStmt{Name: "v", Query: &SelectStmt{}}, sqlt.CreateView},
		{&CreateViewStmt{Name: "v", Materialized: true, Query: &SelectStmt{}}, sqlt.CreateMaterializedView},
		{&InsertStmt{Table: "t"}, sqlt.Insert},
		{&InsertStmt{Table: "t", IsReplace: true}, sqlt.Replace},
		{&SelectStmt{}, sqlt.Select},
		{&SelectStmt{Into: "t"}, sqlt.SelectInto},
		{&DropStmt{What: sqlt.DropDomain, Name: "d"}, sqlt.DropDomain},
		{&CreateRoleStmt{Name: "r"}, sqlt.CreateRole},
		{&CreateRoleStmt{Name: "u", IsUser: true}, sqlt.CreateUser},
		{&GrantStmt{}, sqlt.Grant},
		{&GrantStmt{Revoke: true}, sqlt.Revoke},
		{&TxnStmt{What: sqlt.Savepoint, Name: "s"}, sqlt.Savepoint},
	}
	for _, c := range cases {
		if got := c.s.Type(); got != c.want {
			t.Errorf("%T.Type() = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestWithStmtTypeClassification(t *testing.T) {
	sel := &SelectStmt{Items: []SelectItem{{X: IntLit(1)}}}
	ins := &InsertStmt{Table: "t", Rows: [][]Expr{{IntLit(1)}}}

	pureSelect := &WithStmt{CTEs: []CTE{{Name: "c", Body: sel}}, Body: sel}
	if pureSelect.Type() != sqlt.WithSelect {
		t.Error("pure-select WITH must be WithSelect")
	}
	writableCTE := &WithStmt{CTEs: []CTE{{Name: "c", Body: ins}}, Body: sel}
	if writableCTE.Type() != sqlt.WithDML {
		t.Error("writable CTE must be WithDML")
	}
	dmlBody := &WithStmt{CTEs: []CTE{{Name: "c", Body: sel}}, Body: ins}
	if dmlBody.Type() != sqlt.WithDML {
		t.Error("DML body must be WithDML")
	}
}

func TestTestCaseTypesAndSQL(t *testing.T) {
	tc := TestCase{
		&CreateTableStmt{Name: "t", Cols: []ColumnDef{{Name: "a", TypeName: "INT"}}},
		&InsertStmt{Table: "t", Rows: [][]Expr{{IntLit(1)}}},
		&SelectStmt{Items: []SelectItem{{X: &Star{}}}, From: []TableRef{&BaseTable{Name: "t"}}},
	}
	seq := tc.Types()
	want := sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Select}
	if !seq.Equal(want) {
		t.Fatalf("types = %v", seq)
	}
	sql := tc.SQL()
	if strings.Count(sql, ";") != 3 {
		t.Fatalf("script must terminate each statement: %q", sql)
	}
}

func TestStatementTables(t *testing.T) {
	cases := []struct {
		s    Statement
		want []string
	}{
		{&InsertStmt{Table: "t1"}, []string{"t1"}},
		{&SelectStmt{From: []TableRef{&BaseTable{Name: "a"}, &BaseTable{Name: "b"}}}, []string{"a", "b"}},
		{&SelectStmt{From: []TableRef{&JoinRef{
			L: &BaseTable{Name: "x"}, R: &BaseTable{Name: "y"},
			On: &Binary{Op: "=", L: &ColRef{Name: "c"}, R: &ColRef{Name: "c"}},
		}}}, []string{"x", "y"}},
		{&UpdateStmt{Table: "u", Where: &ExistsExpr{Query: &SelectStmt{
			From: []TableRef{&BaseTable{Name: "sub"}},
		}}}, []string{"u", "sub"}},
		{&CreateTriggerStmt{Table: "t", Body: &InsertStmt{Table: "log"}}, []string{"t", "log"}},
		{&WithStmt{
			CTEs: []CTE{{Name: "c", Body: &InsertStmt{Table: "w"}}},
			Body: &DeleteStmt{Table: "d"},
		}, []string{"w", "d"}},
		{&ExplainStmt{Stmt: &SelectStmt{From: []TableRef{&BaseTable{Name: "e"}}}}, []string{"e"}},
	}
	for _, c := range cases {
		got := StatementTables(c.s)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("%T tables = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestRewriteExprReplacesLeaves(t *testing.T) {
	e := &Binary{Op: "+",
		L: &ColRef{Name: "a"},
		R: &Binary{Op: "*", L: IntLit(2), R: &ColRef{Name: "b"}},
	}
	got := RewriteExpr(e, func(x Expr) Expr {
		if _, isCol := x.(*ColRef); isCol {
			return IntLit(0)
		}
		return x
	})
	if got.SQL() != "(0 + (2 * 0))" {
		t.Fatalf("rewrite produced %q", got.SQL())
	}
}

func TestWalkExprVisitsAll(t *testing.T) {
	e := &CaseExpr{
		Operand: &ColRef{Name: "x"},
		Whens: []CaseWhen{{
			Cond:   &InExpr{X: &ColRef{Name: "y"}, List: []Expr{IntLit(1)}},
			Result: &BetweenExpr{X: &ColRef{Name: "z"}, Lo: IntLit(0), Hi: IntLit(9)},
		}},
		Else: &LikeExpr{X: &ColRef{Name: "w"}, Pattern: StringLit("%")},
	}
	var cols []string
	WalkExpr(e, func(x Expr) {
		if c, isCol := x.(*ColRef); isCol {
			cols = append(cols, c.Name)
		}
	})
	if len(cols) != 4 {
		t.Fatalf("visited cols = %v, want 4 refs", cols)
	}
}

func TestRewriteExprNil(t *testing.T) {
	if RewriteExpr(nil, func(x Expr) Expr { return x }) != nil {
		t.Fatal("nil in, nil out")
	}
	WalkExpr(nil, func(Expr) { t.Fatal("must not visit") })
}

func TestDropStmtRendering(t *testing.T) {
	cases := []struct {
		s    *DropStmt
		want string
	}{
		{&DropStmt{What: sqlt.DropTable, Name: "t"}, "DROP TABLE t"},
		{&DropStmt{What: sqlt.DropTable, Name: "t", IfExists: true, Cascade: true}, "DROP TABLE IF EXISTS t CASCADE"},
		{&DropStmt{What: sqlt.DropTrigger, Name: "tg", OnTable: "t"}, "DROP TRIGGER tg ON t"},
		{&DropStmt{What: sqlt.DropMaterializedView, Name: "m"}, "DROP MATERIALIZED VIEW m"},
	}
	for _, c := range cases {
		if got := c.s.SQL(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}
