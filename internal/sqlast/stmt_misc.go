package sqlast

import (
	"strconv"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// ---------------------------------------------------------------------------
// DCL

// GrantStmt is GRANT privs ON table TO role, and REVOKE ... FROM role.
type GrantStmt struct {
	Revoke bool
	Privs  []string // SELECT, INSERT, UPDATE, DELETE, ALL
	Table  string
	Role   string
}

// Type implements Statement.
func (s *GrantStmt) Type() sqlt.Type {
	if s.Revoke {
		return sqlt.Revoke
	}
	return sqlt.Grant
}

// SQL implements Statement.
func (s *GrantStmt) SQL() string {
	verb, link := "GRANT", " TO "
	if s.Revoke {
		verb, link = "REVOKE", " FROM "
	}
	return verb + " " + strings.Join(s.Privs, ", ") + " ON " + s.Table + link + s.Role
}

// SetRoleStmt is SET ROLE name.
type SetRoleStmt struct{ Role string }

// Type implements Statement.
func (*SetRoleStmt) Type() sqlt.Type { return sqlt.SetRole }

// SQL implements Statement.
func (s *SetRoleStmt) SQL() string { return "SET ROLE " + s.Role }

// ---------------------------------------------------------------------------
// TCL

// TxnStmt covers the keyword-only transaction statements plus savepoints.
type TxnStmt struct {
	What sqlt.Type // Begin, Commit, Rollback, Savepoint, ReleaseSavepoint, RollbackToSavepoint
	Name string    // savepoint name where applicable
}

// Type implements Statement.
func (s *TxnStmt) Type() sqlt.Type { return s.What }

// SQL implements Statement.
func (s *TxnStmt) SQL() string {
	switch s.What {
	case sqlt.Begin:
		return "BEGIN"
	case sqlt.Commit:
		return "COMMIT"
	case sqlt.Rollback:
		return "ROLLBACK"
	case sqlt.Savepoint:
		return "SAVEPOINT " + s.Name
	case sqlt.ReleaseSavepoint:
		return "RELEASE SAVEPOINT " + s.Name
	default: // RollbackToSavepoint
		return "ROLLBACK TO SAVEPOINT " + s.Name
	}
}

// SetTransactionStmt is SET TRANSACTION ISOLATION LEVEL mode.
type SetTransactionStmt struct {
	Mode string // "READ COMMITTED", "SERIALIZABLE", ...
}

// Type implements Statement.
func (*SetTransactionStmt) Type() sqlt.Type { return sqlt.SetTransaction }

// SQL implements Statement.
func (s *SetTransactionStmt) SQL() string {
	return "SET TRANSACTION ISOLATION LEVEL " + s.Mode
}

// LockTableStmt is LOCK TABLE name [IN mode MODE].
type LockTableStmt struct {
	Table string
	Mode  string // "SHARE", "EXCLUSIVE"
}

// Type implements Statement.
func (*LockTableStmt) Type() sqlt.Type { return sqlt.LockTable }

// SQL implements Statement.
func (s *LockTableStmt) SQL() string {
	if s.Mode == "" {
		return "LOCK TABLE " + s.Table
	}
	return "LOCK TABLE " + s.Table + " IN " + s.Mode + " MODE"
}

// ---------------------------------------------------------------------------
// Session and utility

// SetVarStmt is SET [SESSION|GLOBAL] name = value. The MySQL @@SESSION.name
// form parses to this node too.
type SetVarStmt struct {
	Global bool
	Name   string
	Value  Expr
}

// Type implements Statement.
func (*SetVarStmt) Type() sqlt.Type { return sqlt.SetVar }

// SQL implements Statement.
func (s *SetVarStmt) SQL() string {
	scope := "SESSION"
	if s.Global {
		scope = "GLOBAL"
	}
	return "SET " + scope + " " + s.Name + " = " + maybeParen(s.Value)
}

// ResetVarStmt is RESET name.
type ResetVarStmt struct{ Name string }

// Type implements Statement.
func (*ResetVarStmt) Type() sqlt.Type { return sqlt.ResetVar }

// SQL implements Statement.
func (s *ResetVarStmt) SQL() string { return "RESET " + s.Name }

// PragmaStmt is PRAGMA name [= value].
type PragmaStmt struct {
	Name  string
	Value Expr // optional
}

// Type implements Statement.
func (*PragmaStmt) Type() sqlt.Type { return sqlt.Pragma }

// SQL implements Statement.
func (s *PragmaStmt) SQL() string {
	if s.Value == nil {
		return "PRAGMA " + s.Name
	}
	return "PRAGMA " + s.Name + " = " + maybeParen(s.Value)
}

// UseStmt is USE dbname.
type UseStmt struct{ DB string }

// Type implements Statement.
func (*UseStmt) Type() sqlt.Type { return sqlt.Use }

// SQL implements Statement.
func (s *UseStmt) SQL() string { return "USE " + s.DB }

// AnalyzeStmt is ANALYZE [table].
type AnalyzeStmt struct{ Table string }

// Type implements Statement.
func (*AnalyzeStmt) Type() sqlt.Type { return sqlt.Analyze }

// SQL implements Statement.
func (s *AnalyzeStmt) SQL() string {
	if s.Table == "" {
		return "ANALYZE"
	}
	return "ANALYZE " + s.Table
}

// VacuumStmt is VACUUM [FULL] [table].
type VacuumStmt struct {
	Full  bool
	Table string
}

// Type implements Statement.
func (*VacuumStmt) Type() sqlt.Type { return sqlt.Vacuum }

// SQL implements Statement.
func (s *VacuumStmt) SQL() string {
	out := "VACUUM"
	if s.Full {
		out += " FULL"
	}
	if s.Table != "" {
		out += " " + s.Table
	}
	return out
}

// MaintenanceStmt covers the MySQL-family single-table maintenance
// statements: OPTIMIZE TABLE, CHECK TABLE.
type MaintenanceStmt struct {
	What  sqlt.Type // OptimizeTable or CheckTable
	Table string
}

// Type implements Statement.
func (s *MaintenanceStmt) Type() sqlt.Type { return s.What }

// SQL implements Statement.
func (s *MaintenanceStmt) SQL() string {
	if s.What == sqlt.OptimizeTable {
		return "OPTIMIZE TABLE " + s.Table
	}
	return "CHECK TABLE " + s.Table
}

// FlushStmt is FLUSH what (TABLES, LOGS, PRIVILEGES).
type FlushStmt struct{ What string }

// Type implements Statement.
func (*FlushStmt) Type() sqlt.Type { return sqlt.Flush }

// SQL implements Statement.
func (s *FlushStmt) SQL() string { return "FLUSH " + s.What }

// CheckpointStmt is CHECKPOINT.
type CheckpointStmt struct{}

// Type implements Statement.
func (*CheckpointStmt) Type() sqlt.Type { return sqlt.Checkpoint }

// SQL implements Statement.
func (*CheckpointStmt) SQL() string { return "CHECKPOINT" }

// DiscardStmt is DISCARD what (ALL, PLANS, TEMP, SEQUENCES).
type DiscardStmt struct{ What string }

// Type implements Statement.
func (*DiscardStmt) Type() sqlt.Type { return sqlt.Discard }

// SQL implements Statement.
func (s *DiscardStmt) SQL() string { return "DISCARD " + s.What }

// PrepareStmt is PREPARE name AS stmt.
type PrepareStmt struct {
	Name string
	Stmt Statement
}

// Type implements Statement.
func (*PrepareStmt) Type() sqlt.Type { return sqlt.Prepare }

// SQL implements Statement.
func (s *PrepareStmt) SQL() string { return "PREPARE " + s.Name + " AS " + s.Stmt.SQL() }

// ExecuteStmt is EXECUTE name [(args)].
type ExecuteStmt struct {
	Name string
	Args []Expr
}

// Type implements Statement.
func (*ExecuteStmt) Type() sqlt.Type { return sqlt.Execute }

// SQL implements Statement.
func (s *ExecuteStmt) SQL() string {
	if len(s.Args) == 0 {
		return "EXECUTE " + s.Name
	}
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.SQL()
	}
	return "EXECUTE " + s.Name + " (" + strings.Join(args, ", ") + ")"
}

// DeallocateStmt is DEALLOCATE name.
type DeallocateStmt struct{ Name string }

// Type implements Statement.
func (*DeallocateStmt) Type() sqlt.Type { return sqlt.Deallocate }

// SQL implements Statement.
func (s *DeallocateStmt) SQL() string { return "DEALLOCATE " + s.Name }

// DeclareCursorStmt is DECLARE name CURSOR FOR query.
type DeclareCursorStmt struct {
	Name  string
	Query *SelectStmt
}

// Type implements Statement.
func (*DeclareCursorStmt) Type() sqlt.Type { return sqlt.DeclareCursor }

// SQL implements Statement.
func (s *DeclareCursorStmt) SQL() string {
	return "DECLARE " + s.Name + " CURSOR FOR " + s.Query.SQL()
}

// FetchStmt is FETCH [n FROM] cursor.
type FetchStmt struct {
	Count  int64 // 0 means fetch one
	Cursor string
}

// Type implements Statement.
func (*FetchStmt) Type() sqlt.Type { return sqlt.Fetch }

// SQL implements Statement.
func (s *FetchStmt) SQL() string {
	if s.Count > 0 {
		return "FETCH " + strconv.FormatInt(s.Count, 10) + " FROM " + s.Cursor
	}
	return "FETCH " + s.Cursor
}

// CloseCursorStmt is CLOSE cursor.
type CloseCursorStmt struct{ Name string }

// Type implements Statement.
func (*CloseCursorStmt) Type() sqlt.Type { return sqlt.CloseCursor }

// SQL implements Statement.
func (s *CloseCursorStmt) SQL() string { return "CLOSE " + s.Name }

// ListenStmt is LISTEN channel.
type ListenStmt struct{ Channel string }

// Type implements Statement.
func (*ListenStmt) Type() sqlt.Type { return sqlt.Listen }

// SQL implements Statement.
func (s *ListenStmt) SQL() string { return "LISTEN " + s.Channel }

// NotifyStmt is NOTIFY channel [, 'payload'].
type NotifyStmt struct {
	Channel string
	Payload string
}

// Type implements Statement.
func (*NotifyStmt) Type() sqlt.Type { return sqlt.Notify }

// SQL implements Statement.
func (s *NotifyStmt) SQL() string {
	if s.Payload != "" {
		return "NOTIFY " + s.Channel + ", '" + strings.ReplaceAll(s.Payload, "'", "''") + "'"
	}
	return "NOTIFY " + s.Channel
}

// UnlistenStmt is UNLISTEN channel (or *).
type UnlistenStmt struct{ Channel string }

// Type implements Statement.
func (*UnlistenStmt) Type() sqlt.Type { return sqlt.Unlisten }

// SQL implements Statement.
func (s *UnlistenStmt) SQL() string { return "UNLISTEN " + s.Channel }

// ClusterStmt is CLUSTER table [USING index].
type ClusterStmt struct {
	Table string
	Index string
}

// Type implements Statement.
func (*ClusterStmt) Type() sqlt.Type { return sqlt.Cluster }

// SQL implements Statement.
func (s *ClusterStmt) SQL() string {
	if s.Index != "" {
		return "CLUSTER " + s.Table + " USING " + s.Index
	}
	return "CLUSTER " + s.Table
}
