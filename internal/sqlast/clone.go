package sqlast

// Structural deep-clone for every AST node.
//
// Clone replaces the render+reparse round trip that used to back
// sqlparse.CloneStatement: cloning is the single hottest operation of the
// fuzz loop (every mutation operator, every library fetch, seed splitting,
// and cross-shard seed adoption clone whole test cases), and re-lexing SQL
// text costs two orders of magnitude more than copying the structs.
//
// Invariants, enforced by property tests in sqlparse:
//   - clone renders byte-identical SQL: s.Clone().SQL() == s.SQL()
//   - clones are deeply aliasing-free: no slice, map, or node pointer is
//     shared between a statement and its clone, so mutating either side
//     never changes the other
//   - clones start with a cold render memo (see memo.go), so a
//     clone-then-mutate sequence can never observe a stale cached render
//
// Every node's Clone is hand-written; the Statement/Expr/TableRef
// interfaces require it, so adding a node without a Clone is a compile
// error rather than a silent reparse fallback.

func cloneStrings(ss []string) []string {
	if ss == nil {
		return nil
	}
	out := make([]string, len(ss))
	copy(out, ss)
	return out
}

// cloneExpr is the nil-safe expression clone.
func cloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	return e.Clone()
}

func cloneExprs(xs []Expr) []Expr {
	if xs == nil {
		return nil
	}
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = cloneExpr(x)
	}
	return out
}

func cloneExprRows(rows [][]Expr) [][]Expr {
	if rows == nil {
		return nil
	}
	out := make([][]Expr, len(rows))
	for i, r := range rows {
		out[i] = cloneExprs(r)
	}
	return out
}

func cloneOrderItems(os []OrderItem) []OrderItem {
	if os == nil {
		return nil
	}
	out := make([]OrderItem, len(os))
	for i, o := range os {
		out[i] = OrderItem{X: cloneExpr(o.X), Desc: o.Desc}
	}
	return out
}

func cloneAssignments(as []Assignment) []Assignment {
	if as == nil {
		return nil
	}
	out := make([]Assignment, len(as))
	for i, a := range as {
		out[i] = Assignment{Col: a.Col, Value: cloneExpr(a.Value)}
	}
	return out
}

// cloneSelect is the nil-safe concrete-typed SelectStmt clone used by nodes
// that embed a query.
func cloneSelect(q *SelectStmt) *SelectStmt {
	if q == nil {
		return nil
	}
	return q.Clone().(*SelectStmt)
}

// cloneStmt is the nil-safe statement clone.
func cloneStmt(s Statement) Statement {
	if s == nil {
		return nil
	}
	return s.Clone()
}

// ---------------------------------------------------------------------------
// Expressions

// Clone implements Expr.
func (l *Literal) Clone() Expr {
	c := *l
	return &c
}

// Clone implements Expr.
func (c *ColRef) Clone() Expr {
	cc := *c
	return &cc
}

// Clone implements Expr.
func (s *Star) Clone() Expr {
	c := *s
	return &c
}

// Clone implements Expr.
func (u *Unary) Clone() Expr {
	return &Unary{Op: u.Op, X: cloneExpr(u.X)}
}

// Clone implements Expr.
func (b *Binary) Clone() Expr {
	return &Binary{Op: b.Op, L: cloneExpr(b.L), R: cloneExpr(b.R)}
}

// Clone deep-copies the window body.
func (w *WindowSpec) Clone() *WindowSpec {
	if w == nil {
		return nil
	}
	return &WindowSpec{
		PartitionBy: cloneExprs(w.PartitionBy),
		OrderBy:     cloneOrderItems(w.OrderBy),
	}
}

// Clone implements Expr.
func (f *FuncCall) Clone() Expr {
	return &FuncCall{
		Name:     f.Name,
		Args:     cloneExprs(f.Args),
		Star:     f.Star,
		Distinct: f.Distinct,
		Over:     f.Over.Clone(),
	}
}

// Clone implements Expr.
func (c *CaseExpr) Clone() Expr {
	var whens []CaseWhen
	if c.Whens != nil {
		whens = make([]CaseWhen, len(c.Whens))
		for i, w := range c.Whens {
			whens[i] = CaseWhen{Cond: cloneExpr(w.Cond), Result: cloneExpr(w.Result)}
		}
	}
	return &CaseExpr{Operand: cloneExpr(c.Operand), Whens: whens, Else: cloneExpr(c.Else)}
}

// Clone implements Expr.
func (e *InExpr) Clone() Expr {
	return &InExpr{X: cloneExpr(e.X), Not: e.Not, List: cloneExprs(e.List), Query: cloneSelect(e.Query)}
}

// Clone implements Expr.
func (e *BetweenExpr) Clone() Expr {
	return &BetweenExpr{X: cloneExpr(e.X), Not: e.Not, Lo: cloneExpr(e.Lo), Hi: cloneExpr(e.Hi)}
}

// Clone implements Expr.
func (e *LikeExpr) Clone() Expr {
	return &LikeExpr{X: cloneExpr(e.X), Not: e.Not, Pattern: cloneExpr(e.Pattern)}
}

// Clone implements Expr.
func (e *IsNullExpr) Clone() Expr {
	return &IsNullExpr{X: cloneExpr(e.X), Not: e.Not}
}

// Clone implements Expr.
func (e *CastExpr) Clone() Expr {
	return &CastExpr{X: cloneExpr(e.X), TypeName: e.TypeName}
}

// Clone implements Expr.
func (e *Subquery) Clone() Expr {
	return &Subquery{Query: cloneSelect(e.Query)}
}

// Clone implements Expr.
func (e *ExistsExpr) Clone() Expr {
	return &ExistsExpr{Not: e.Not, Query: cloneSelect(e.Query)}
}

// ---------------------------------------------------------------------------
// Table references

// Clone implements TableRef.
func (t *BaseTable) Clone() TableRef {
	c := *t
	return &c
}

// Clone implements TableRef.
func (t *JoinRef) Clone() TableRef {
	return &JoinRef{Kind: t.Kind, L: t.L.Clone(), R: t.R.Clone(), On: cloneExpr(t.On)}
}

// Clone implements TableRef.
func (t *SubqueryRef) Clone() TableRef {
	return &SubqueryRef{Query: cloneSelect(t.Query), Alias: t.Alias}
}

// ---------------------------------------------------------------------------
// DDL statement components

// Clone deep-copies the FK reference.
func (r *FKRef) Clone() *FKRef {
	if r == nil {
		return nil
	}
	c := *r
	return &c
}

// Clone deep-copies the column definition.
func (c ColumnDef) Clone() ColumnDef {
	return ColumnDef{
		Name:       c.Name,
		TypeName:   c.TypeName,
		NotNull:    c.NotNull,
		PrimaryKey: c.PrimaryKey,
		Unique:     c.Unique,
		Default:    cloneExpr(c.Default),
		Check:      cloneExpr(c.Check),
		References: c.References.Clone(),
	}
}

func cloneColumnDefs(cs []ColumnDef) []ColumnDef {
	if cs == nil {
		return nil
	}
	out := make([]ColumnDef, len(cs))
	for i, c := range cs {
		out[i] = c.Clone()
	}
	return out
}

// Clone deep-copies the table constraint.
func (t TableConstraint) Clone() TableConstraint {
	return TableConstraint{
		Kind:    t.Kind,
		Columns: cloneStrings(t.Columns),
		Check:   cloneExpr(t.Check),
		RefTab:  t.RefTab,
		RefCols: cloneStrings(t.RefCols),
	}
}

// ---------------------------------------------------------------------------
// DDL statements

// Clone implements Statement.
func (s *CreateTableStmt) Clone() Statement {
	var cons []TableConstraint
	if s.Constraints != nil {
		cons = make([]TableConstraint, len(s.Constraints))
		for i, c := range s.Constraints {
			cons[i] = c.Clone()
		}
	}
	return &CreateTableStmt{
		Name:        s.Name,
		Temp:        s.Temp,
		IfNotExists: s.IfNotExists,
		Cols:        cloneColumnDefs(s.Cols),
		Constraints: cons,
	}
}

// Clone implements Statement.
func (s *CreateViewStmt) Clone() Statement {
	return &CreateViewStmt{
		Name:         s.Name,
		OrReplace:    s.OrReplace,
		Materialized: s.Materialized,
		Cols:         cloneStrings(s.Cols),
		Query:        cloneSelect(s.Query),
	}
}

// Clone implements Statement.
func (s *CreateIndexStmt) Clone() Statement {
	return &CreateIndexStmt{Name: s.Name, Unique: s.Unique, Table: s.Table, Cols: cloneStrings(s.Cols)}
}

// Clone implements Statement.
func (s *CreateTriggerStmt) Clone() Statement {
	return &CreateTriggerStmt{Name: s.Name, Time: s.Time, Event: s.Event, Table: s.Table, Body: cloneStmt(s.Body)}
}

// Clone implements Statement.
func (s *CreateSequenceStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CreateSchemaStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CreateFunctionStmt) Clone() Statement {
	return &CreateFunctionStmt{
		Name:    s.Name,
		Params:  cloneStrings(s.Params),
		Returns: s.Returns,
		Body:    cloneExpr(s.Body),
	}
}

// Clone implements Statement.
func (s *CreateProcedureStmt) Clone() Statement {
	return &CreateProcedureStmt{Name: s.Name, Body: cloneStmt(s.Body)}
}

// Clone implements Statement.
func (s *CreateRuleStmt) Clone() Statement {
	return &CreateRuleStmt{
		Name:      s.Name,
		OrReplace: s.OrReplace,
		Event:     s.Event,
		Table:     s.Table,
		Instead:   s.Instead,
		Action:    cloneStmt(s.Action),
	}
}

// Clone implements Statement.
func (s *CreateDomainStmt) Clone() Statement {
	return &CreateDomainStmt{Name: s.Name, Base: s.Base, Check: cloneExpr(s.Check)}
}

// Clone implements Statement.
func (s *CreateTypeStmt) Clone() Statement {
	return &CreateTypeStmt{Name: s.Name, Values: cloneStrings(s.Values)}
}

// Clone implements Statement.
func (s *CreateExtensionStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CreateRoleStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CreateDatabaseStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *AlterTableStmt) Clone() Statement {
	return &AlterTableStmt{
		Table:   s.Table,
		Action:  s.Action,
		Col:     s.Col.Clone(),
		OldName: s.OldName,
		NewName: s.NewName,
	}
}

// Clone implements Statement.
func (s *AlterSimpleStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *AlterSystemStmt) Clone() Statement {
	return &AlterSystemStmt{Setting: s.Setting, Value: cloneExpr(s.Value)}
}

// Clone implements Statement.
func (s *DropStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *RenameTableStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *TruncateStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CommentOnStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *ReindexStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *RefreshMatViewStmt) Clone() Statement {
	c := *s
	return &c
}

// ---------------------------------------------------------------------------
// DML / DQL statements

// Clone implements Statement.
func (s *InsertStmt) Clone() Statement {
	return &InsertStmt{
		Table:               s.Table,
		Cols:                cloneStrings(s.Cols),
		Rows:                cloneExprRows(s.Rows),
		Query:               cloneSelect(s.Query),
		IsReplace:           s.IsReplace,
		Ignore:              s.Ignore,
		Returning:           cloneExprs(s.Returning),
		OnConflictDoNothing: s.OnConflictDoNothing,
	}
}

// Clone implements Statement.
func (s *UpdateStmt) Clone() Statement {
	return &UpdateStmt{
		Table:   s.Table,
		Sets:    cloneAssignments(s.Sets),
		Where:   cloneExpr(s.Where),
		OrderBy: cloneOrderItems(s.OrderBy),
		Limit:   cloneExpr(s.Limit),
	}
}

// Clone implements Statement.
func (s *DeleteStmt) Clone() Statement {
	return &DeleteStmt{
		Table:     s.Table,
		Where:     cloneExpr(s.Where),
		OrderBy:   cloneOrderItems(s.OrderBy),
		Limit:     cloneExpr(s.Limit),
		Returning: cloneExprs(s.Returning),
	}
}

// Clone implements Statement.
func (s *MergeStmt) Clone() Statement {
	return &MergeStmt{
		Target:         s.Target,
		Source:         s.Source,
		On:             cloneExpr(s.On),
		MatchedSet:     cloneAssignments(s.MatchedSet),
		NotMatchedVals: cloneExprs(s.NotMatchedVals),
	}
}

// Clone implements Statement.
func (s *CopyStmt) Clone() Statement {
	return &CopyStmt{Table: s.Table, Query: cloneSelect(s.Query), From: s.From, CSV: s.CSV, Data: s.Data}
}

// Clone implements Statement.
func (s *LoadDataStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CallStmt) Clone() Statement {
	return &CallStmt{Name: s.Name, Args: cloneExprs(s.Args)}
}

// Clone implements Statement.
func (s *DoStmt) Clone() Statement {
	return &DoStmt{Body: cloneExpr(s.Body)}
}

// Clone implements Statement.
func (s *SelectStmt) Clone() Statement {
	var items []SelectItem
	if s.Items != nil {
		items = make([]SelectItem, len(s.Items))
		for i, it := range s.Items {
			items[i] = SelectItem{X: cloneExpr(it.X), Alias: it.Alias}
		}
	}
	var from []TableRef
	if s.From != nil {
		from = make([]TableRef, len(s.From))
		for i, f := range s.From {
			from[i] = f.Clone()
		}
	}
	return &SelectStmt{
		Distinct: s.Distinct,
		Items:    items,
		Into:     s.Into,
		From:     from,
		Where:    cloneExpr(s.Where),
		GroupBy:  cloneExprs(s.GroupBy),
		Having:   cloneExpr(s.Having),
		OrderBy:  cloneOrderItems(s.OrderBy),
		Limit:    cloneExpr(s.Limit),
		Offset:   cloneExpr(s.Offset),
		Op:       s.Op,
		Right:    cloneSelect(s.Right),
	}
}

// Clone implements Statement.
func (s *TableStmtNode) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *ValuesStmtNode) Clone() Statement {
	return &ValuesStmtNode{Rows: cloneExprRows(s.Rows)}
}

// Clone implements Statement.
func (s *WithStmt) Clone() Statement {
	var ctes []CTE
	if s.CTEs != nil {
		ctes = make([]CTE, len(s.CTEs))
		for i, c := range s.CTEs {
			ctes[i] = CTE{Name: c.Name, Cols: cloneStrings(c.Cols), Body: cloneStmt(c.Body)}
		}
	}
	return &WithStmt{CTEs: ctes, Body: cloneStmt(s.Body)}
}

// Clone implements Statement.
func (s *ExplainStmt) Clone() Statement {
	return &ExplainStmt{Analyze: s.Analyze, Stmt: cloneStmt(s.Stmt)}
}

// Clone implements Statement.
func (s *ShowStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *DescribeStmt) Clone() Statement {
	c := *s
	return &c
}

// ---------------------------------------------------------------------------
// DCL / TCL / session statements

// Clone implements Statement.
func (s *GrantStmt) Clone() Statement {
	return &GrantStmt{Revoke: s.Revoke, Privs: cloneStrings(s.Privs), Table: s.Table, Role: s.Role}
}

// Clone implements Statement.
func (s *SetRoleStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *TxnStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *SetTransactionStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *LockTableStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *SetVarStmt) Clone() Statement {
	return &SetVarStmt{Global: s.Global, Name: s.Name, Value: cloneExpr(s.Value)}
}

// Clone implements Statement.
func (s *ResetVarStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *PragmaStmt) Clone() Statement {
	return &PragmaStmt{Name: s.Name, Value: cloneExpr(s.Value)}
}

// Clone implements Statement.
func (s *UseStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *AnalyzeStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *VacuumStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *MaintenanceStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *FlushStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CheckpointStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *DiscardStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *PrepareStmt) Clone() Statement {
	return &PrepareStmt{Name: s.Name, Stmt: cloneStmt(s.Stmt)}
}

// Clone implements Statement.
func (s *ExecuteStmt) Clone() Statement {
	return &ExecuteStmt{Name: s.Name, Args: cloneExprs(s.Args)}
}

// Clone implements Statement.
func (s *DeallocateStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *DeclareCursorStmt) Clone() Statement {
	return &DeclareCursorStmt{Name: s.Name, Query: cloneSelect(s.Query)}
}

// Clone implements Statement.
func (s *FetchStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *CloseCursorStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *ListenStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *NotifyStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *UnlistenStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone implements Statement.
func (s *ClusterStmt) Clone() Statement {
	c := *s
	return &c
}

// Clone deep-copies the whole test case.
func (tc TestCase) Clone() TestCase {
	if tc == nil {
		return nil
	}
	out := make(TestCase, len(tc))
	for i, s := range tc {
		out[i] = s.Clone()
	}
	return out
}
