package sqlast

import (
	"strconv"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// Statement is any executable SQL statement.
type Statement interface {
	// Type is the statement's SQL type (paper §II); it drives Algorithm 2.
	Type() sqlt.Type
	// SQL renders the statement as parseable SQL text, without the
	// trailing semicolon.
	SQL() string
	// Clone returns a deep, aliasing-free copy of the statement that
	// renders byte-identical SQL (see clone.go).
	Clone() Statement
}

// ---------------------------------------------------------------------------
// DDL: CREATE

// FKRef is a REFERENCES clause on a column.
type FKRef struct {
	Table  string
	Column string // optional
}

// ColumnDef is one column in CREATE TABLE / ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name       string
	TypeName   string // INT, BIGINT, FLOAT, TEXT, VARCHAR(n), BOOLEAN, ...
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Default    Expr   // optional
	Check      Expr   // optional
	References *FKRef // optional
}

// SQL renders the column definition.
func (c *ColumnDef) SQL() string {
	var sb strings.Builder
	sb.WriteString(c.Name)
	sb.WriteByte(' ')
	sb.WriteString(c.TypeName)
	if c.PrimaryKey {
		sb.WriteString(" PRIMARY KEY")
	}
	if c.Unique {
		sb.WriteString(" UNIQUE")
	}
	if c.NotNull {
		sb.WriteString(" NOT NULL")
	}
	if c.Default != nil {
		sb.WriteString(" DEFAULT ")
		sb.WriteString(maybeParen(c.Default))
	}
	if c.Check != nil {
		sb.WriteString(" CHECK (")
		sb.WriteString(c.Check.SQL())
		sb.WriteByte(')')
	}
	if c.References != nil {
		sb.WriteString(" REFERENCES ")
		sb.WriteString(c.References.Table)
		if c.References.Column != "" {
			sb.WriteString("(" + c.References.Column + ")")
		}
	}
	return sb.String()
}

// TableConstraint is a table-level constraint in CREATE TABLE.
type TableConstraint struct {
	Kind    string // "PRIMARY KEY", "UNIQUE", "CHECK", "FOREIGN KEY"
	Columns []string
	Check   Expr   // for CHECK
	RefTab  string // for FOREIGN KEY
	RefCols []string
}

// SQL renders the constraint.
func (t *TableConstraint) SQL() string {
	switch t.Kind {
	case "CHECK":
		return "CHECK (" + t.Check.SQL() + ")"
	case "FOREIGN KEY":
		s := "FOREIGN KEY (" + strings.Join(t.Columns, ", ") + ") REFERENCES " + t.RefTab
		if len(t.RefCols) > 0 {
			s += "(" + strings.Join(t.RefCols, ", ") + ")"
		}
		return s
	default:
		return t.Kind + " (" + strings.Join(t.Columns, ", ") + ")"
	}
}

// CreateTableStmt is CREATE [TEMPORARY] TABLE [IF NOT EXISTS] name (...).
type CreateTableStmt struct {
	sqlMemo
	Name        string
	Temp        bool
	IfNotExists bool
	Cols        []ColumnDef
	Constraints []TableConstraint
}

// Type implements Statement.
func (*CreateTableStmt) Type() sqlt.Type { return sqlt.CreateTable }

func (s *CreateTableStmt) render() string {
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString("CREATE ")
	if s.Temp {
		sb.WriteString("TEMPORARY ")
	}
	sb.WriteString("TABLE ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Name)
	sb.WriteString(" (")
	for i := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(s.Cols[i].SQL())
	}
	for i := range s.Constraints {
		sb.WriteString(", ")
		sb.WriteString(s.Constraints[i].SQL())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CreateViewStmt is CREATE [OR REPLACE] [MATERIALIZED] VIEW name AS query.
type CreateViewStmt struct {
	sqlMemo
	Name         string
	OrReplace    bool
	Materialized bool
	Cols         []string
	Query        *SelectStmt
}

// Type implements Statement.
func (s *CreateViewStmt) Type() sqlt.Type {
	if s.Materialized {
		return sqlt.CreateMaterializedView
	}
	return sqlt.CreateView
}

func (s *CreateViewStmt) render() string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if s.OrReplace {
		sb.WriteString("OR REPLACE ")
	}
	if s.Materialized {
		sb.WriteString("MATERIALIZED ")
	}
	sb.WriteString("VIEW ")
	sb.WriteString(s.Name)
	if len(s.Cols) > 0 {
		sb.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	sb.WriteString(" AS ")
	sb.WriteString(s.Query.SQL())
	return sb.String()
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON table (cols).
type CreateIndexStmt struct {
	sqlMemo
	Name   string
	Unique bool
	Table  string
	Cols   []string
}

// Type implements Statement.
func (*CreateIndexStmt) Type() sqlt.Type { return sqlt.CreateIndex }

func (s *CreateIndexStmt) render() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return "CREATE " + u + "INDEX " + s.Name + " ON " + s.Table + " (" + strings.Join(s.Cols, ", ") + ")"
}

// TriggerTime is BEFORE or AFTER.
type TriggerTime uint8

// Trigger firing times.
const (
	TriggerBefore TriggerTime = iota
	TriggerAfter
)

// String renders the trigger time keyword.
func (t TriggerTime) String() string {
	if t == TriggerBefore {
		return "BEFORE"
	}
	return "AFTER"
}

// TriggerEvent is the statement kind the trigger fires on.
type TriggerEvent uint8

// Trigger events.
const (
	TriggerInsert TriggerEvent = iota
	TriggerUpdate
	TriggerDelete
)

// String renders the trigger event keyword.
func (e TriggerEvent) String() string {
	switch e {
	case TriggerInsert:
		return "INSERT"
	case TriggerUpdate:
		return "UPDATE"
	default:
		return "DELETE"
	}
}

// CreateTriggerStmt is CREATE TRIGGER name time event ON table
// FOR EACH ROW body.
type CreateTriggerStmt struct {
	Name  string
	Time  TriggerTime
	Event TriggerEvent
	Table string
	Body  Statement // a single DML statement
}

// Type implements Statement.
func (*CreateTriggerStmt) Type() sqlt.Type { return sqlt.CreateTrigger }

// SQL implements Statement.
func (s *CreateTriggerStmt) SQL() string {
	return "CREATE TRIGGER " + s.Name + " " + s.Time.String() + " " + s.Event.String() +
		" ON " + s.Table + " FOR EACH ROW " + s.Body.SQL()
}

// CreateSequenceStmt is CREATE SEQUENCE name [START WITH n] [INCREMENT BY n].
type CreateSequenceStmt struct {
	Name  string
	Start int64
	Inc   int64 // 0 means default 1
}

// Type implements Statement.
func (*CreateSequenceStmt) Type() sqlt.Type { return sqlt.CreateSequence }

// SQL implements Statement.
func (s *CreateSequenceStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE SEQUENCE " + s.Name)
	if s.Start != 0 {
		sb.WriteString(" START WITH " + strconv.FormatInt(s.Start, 10))
	}
	if s.Inc != 0 {
		sb.WriteString(" INCREMENT BY " + strconv.FormatInt(s.Inc, 10))
	}
	return sb.String()
}

// CreateSchemaStmt is CREATE SCHEMA name.
type CreateSchemaStmt struct{ Name string }

// Type implements Statement.
func (*CreateSchemaStmt) Type() sqlt.Type { return sqlt.CreateSchema }

// SQL implements Statement.
func (s *CreateSchemaStmt) SQL() string { return "CREATE SCHEMA " + s.Name }

// CreateFunctionStmt is CREATE FUNCTION name(params) RETURNS type AS expr.
// Functions are scalar SQL expressions over named parameters.
type CreateFunctionStmt struct {
	Name    string
	Params  []string
	Returns string
	Body    Expr
}

// Type implements Statement.
func (*CreateFunctionStmt) Type() sqlt.Type { return sqlt.CreateFunction }

// SQL implements Statement.
func (s *CreateFunctionStmt) SQL() string {
	return "CREATE FUNCTION " + s.Name + "(" + strings.Join(s.Params, ", ") + ") RETURNS " +
		s.Returns + " AS " + maybeParen(s.Body)
}

// CreateProcedureStmt is CREATE PROCEDURE name() AS stmt.
type CreateProcedureStmt struct {
	Name string
	Body Statement
}

// Type implements Statement.
func (*CreateProcedureStmt) Type() sqlt.Type { return sqlt.CreateProcedure }

// SQL implements Statement.
func (s *CreateProcedureStmt) SQL() string {
	return "CREATE PROCEDURE " + s.Name + "() AS " + s.Body.SQL()
}

// CreateRuleStmt is CREATE [OR REPLACE] RULE name AS ON event TO table
// DO [INSTEAD] action. This is the PostgreSQL rewrite-rule statement at the
// centre of the paper's case study (§V-B).
type CreateRuleStmt struct {
	Name      string
	OrReplace bool
	Event     TriggerEvent
	Table     string
	Instead   bool
	Action    Statement // DML or NOTIFY; nil means DO INSTEAD NOTHING
}

// Type implements Statement.
func (*CreateRuleStmt) Type() sqlt.Type { return sqlt.CreateRule }

// SQL implements Statement.
func (s *CreateRuleStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE ")
	if s.OrReplace {
		sb.WriteString("OR REPLACE ")
	}
	sb.WriteString("RULE " + s.Name + " AS ON " + s.Event.String() + " TO " + s.Table + " DO ")
	if s.Instead {
		sb.WriteString("INSTEAD ")
	}
	if s.Action == nil {
		sb.WriteString("NOTHING")
	} else {
		sb.WriteString(s.Action.SQL())
	}
	return sb.String()
}

// CreateDomainStmt is CREATE DOMAIN name AS base [CHECK (expr)].
type CreateDomainStmt struct {
	Name  string
	Base  string
	Check Expr // optional; VALUE refers to the domain value
}

// Type implements Statement.
func (*CreateDomainStmt) Type() sqlt.Type { return sqlt.CreateDomain }

// SQL implements Statement.
func (s *CreateDomainStmt) SQL() string {
	out := "CREATE DOMAIN " + s.Name + " AS " + s.Base
	if s.Check != nil {
		out += " CHECK (" + s.Check.SQL() + ")"
	}
	return out
}

// CreateTypeStmt is CREATE TYPE name AS ENUM ('a','b',...).
type CreateTypeStmt struct {
	Name   string
	Values []string
}

// Type implements Statement.
func (*CreateTypeStmt) Type() sqlt.Type { return sqlt.CreateType }

// SQL implements Statement.
func (s *CreateTypeStmt) SQL() string {
	vals := make([]string, len(s.Values))
	for i, v := range s.Values {
		vals[i] = "'" + strings.ReplaceAll(v, "'", "''") + "'"
	}
	return "CREATE TYPE " + s.Name + " AS ENUM (" + strings.Join(vals, ", ") + ")"
}

// CreateExtensionStmt is CREATE EXTENSION name.
type CreateExtensionStmt struct{ Name string }

// Type implements Statement.
func (*CreateExtensionStmt) Type() sqlt.Type { return sqlt.CreateExtension }

// SQL implements Statement.
func (s *CreateExtensionStmt) SQL() string { return "CREATE EXTENSION " + s.Name }

// CreateRoleStmt is CREATE ROLE/USER name [WITH option].
type CreateRoleStmt struct {
	Name   string
	IsUser bool // rendered as CREATE USER
	Option string
}

// Type implements Statement.
func (s *CreateRoleStmt) Type() sqlt.Type {
	if s.IsUser {
		return sqlt.CreateUser
	}
	return sqlt.CreateRole
}

// SQL implements Statement.
func (s *CreateRoleStmt) SQL() string {
	kw := "ROLE"
	if s.IsUser {
		kw = "USER"
	}
	out := "CREATE " + kw + " " + s.Name
	if s.Option != "" {
		out += " WITH " + s.Option
	}
	return out
}

// CreateDatabaseStmt is CREATE DATABASE name.
type CreateDatabaseStmt struct{ Name string }

// Type implements Statement.
func (*CreateDatabaseStmt) Type() sqlt.Type { return sqlt.CreateDatabase }

// SQL implements Statement.
func (s *CreateDatabaseStmt) SQL() string { return "CREATE DATABASE " + s.Name }

// ---------------------------------------------------------------------------
// DDL: ALTER

// AlterTableAction discriminates ALTER TABLE sub-commands.
type AlterTableAction uint8

// ALTER TABLE actions.
const (
	AlterAddColumn AlterTableAction = iota
	AlterDropColumn
	AlterRenameColumn
	AlterRenameTable
	AlterColumnType
	AlterColumnDefault
)

// AlterTableStmt is ALTER TABLE name <action>.
type AlterTableStmt struct {
	Table   string
	Action  AlterTableAction
	Col     ColumnDef // for AlterAddColumn / AlterColumnType / AlterColumnDefault
	OldName string    // for renames and drop column
	NewName string    // for renames
}

// Type implements Statement.
func (*AlterTableStmt) Type() sqlt.Type { return sqlt.AlterTable }

// SQL implements Statement.
func (s *AlterTableStmt) SQL() string {
	head := "ALTER TABLE " + s.Table + " "
	switch s.Action {
	case AlterAddColumn:
		return head + "ADD COLUMN " + s.Col.SQL()
	case AlterDropColumn:
		return head + "DROP COLUMN " + s.OldName
	case AlterRenameColumn:
		return head + "RENAME COLUMN " + s.OldName + " TO " + s.NewName
	case AlterRenameTable:
		return head + "RENAME TO " + s.NewName
	case AlterColumnType:
		return head + "ALTER COLUMN " + s.Col.Name + " TYPE " + s.Col.TypeName
	case AlterColumnDefault:
		if s.Col.Default == nil {
			return head + "ALTER COLUMN " + s.Col.Name + " DROP DEFAULT"
		}
		return head + "ALTER COLUMN " + s.Col.Name + " SET DEFAULT " + maybeParen(s.Col.Default)
	default:
		return head + "RENAME TO " + s.NewName
	}
}

// AlterSimpleStmt covers the single-object ALTER statements that only rename
// or set one option: ALTER VIEW/INDEX/SEQUENCE/ROLE/DATABASE.
type AlterSimpleStmt struct {
	What    sqlt.Type // one of AlterView, AlterIndex, AlterSequence, AlterRole, AlterDatabase
	Name    string
	NewName string // RENAME TO target (views, indexes)
	Restart int64  // ALTER SEQUENCE ... RESTART WITH
	Option  string // ALTER ROLE/DATABASE ... <option>
}

// Type implements Statement.
func (s *AlterSimpleStmt) Type() sqlt.Type { return s.What }

// SQL implements Statement.
func (s *AlterSimpleStmt) SQL() string {
	switch s.What {
	case sqlt.AlterView:
		return "ALTER VIEW " + s.Name + " RENAME TO " + s.NewName
	case sqlt.AlterIndex:
		return "ALTER INDEX " + s.Name + " RENAME TO " + s.NewName
	case sqlt.AlterSequence:
		return "ALTER SEQUENCE " + s.Name + " RESTART WITH " + strconv.FormatInt(s.Restart, 10)
	case sqlt.AlterRole:
		return "ALTER ROLE " + s.Name + " WITH " + s.Option
	default: // AlterDatabase
		return "ALTER DATABASE " + s.Name + " SET " + s.Option
	}
}

// AlterSystemStmt is ALTER SYSTEM SET setting = value.
type AlterSystemStmt struct {
	Setting string
	Value   Expr
}

// Type implements Statement.
func (*AlterSystemStmt) Type() sqlt.Type { return sqlt.AlterSystem }

// SQL implements Statement.
func (s *AlterSystemStmt) SQL() string {
	return "ALTER SYSTEM SET " + s.Setting + " = " + maybeParen(s.Value)
}

// ---------------------------------------------------------------------------
// DDL: DROP and friends

// DropStmt is the generic DROP <object> [IF EXISTS] name [CASCADE]. What must
// be one of the Drop* statement types.
type DropStmt struct {
	What     sqlt.Type
	Name     string
	IfExists bool
	Cascade  bool
	OnTable  string // DROP TRIGGER name ON table (PostgreSQL form)
}

// Type implements Statement.
func (s *DropStmt) Type() sqlt.Type { return s.What }

var dropKeyword = map[sqlt.Type]string{
	sqlt.DropTable:            "TABLE",
	sqlt.DropView:             "VIEW",
	sqlt.DropMaterializedView: "MATERIALIZED VIEW",
	sqlt.DropIndex:            "INDEX",
	sqlt.DropTrigger:          "TRIGGER",
	sqlt.DropSequence:         "SEQUENCE",
	sqlt.DropSchema:           "SCHEMA",
	sqlt.DropFunction:         "FUNCTION",
	sqlt.DropProcedure:        "PROCEDURE",
	sqlt.DropRule:             "RULE",
	sqlt.DropDomain:           "DOMAIN",
	sqlt.DropType:             "TYPE",
	sqlt.DropExtension:        "EXTENSION",
	sqlt.DropRole:             "ROLE",
	sqlt.DropUser:             "USER",
	sqlt.DropDatabase:         "DATABASE",
}

// SQL implements Statement.
func (s *DropStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("DROP ")
	sb.WriteString(dropKeyword[s.What])
	sb.WriteByte(' ')
	if s.IfExists {
		sb.WriteString("IF EXISTS ")
	}
	sb.WriteString(s.Name)
	if s.OnTable != "" {
		sb.WriteString(" ON " + s.OnTable)
	}
	if s.Cascade {
		sb.WriteString(" CASCADE")
	}
	return sb.String()
}

// RenameTableStmt is the MySQL-style RENAME TABLE a TO b.
type RenameTableStmt struct {
	From string
	To   string
}

// Type implements Statement.
func (*RenameTableStmt) Type() sqlt.Type { return sqlt.RenameTable }

// SQL implements Statement.
func (s *RenameTableStmt) SQL() string { return "RENAME TABLE " + s.From + " TO " + s.To }

// TruncateStmt is TRUNCATE [TABLE] name.
type TruncateStmt struct{ Table string }

// Type implements Statement.
func (*TruncateStmt) Type() sqlt.Type { return sqlt.Truncate }

// SQL implements Statement.
func (s *TruncateStmt) SQL() string { return "TRUNCATE TABLE " + s.Table }

// CommentOnStmt is COMMENT ON <kind> name IS 'text'.
type CommentOnStmt struct {
	ObjectKind string // TABLE, COLUMN, VIEW, INDEX, ...
	Name       string
	Comment    string
}

// Type implements Statement.
func (*CommentOnStmt) Type() sqlt.Type { return sqlt.CommentOn }

// SQL implements Statement.
func (s *CommentOnStmt) SQL() string {
	return "COMMENT ON " + s.ObjectKind + " " + s.Name + " IS '" +
		strings.ReplaceAll(s.Comment, "'", "''") + "'"
}

// ReindexStmt is REINDEX [TABLE|INDEX] name.
type ReindexStmt struct {
	Kind string // "TABLE" or "INDEX"
	Name string
}

// Type implements Statement.
func (*ReindexStmt) Type() sqlt.Type { return sqlt.Reindex }

// SQL implements Statement.
func (s *ReindexStmt) SQL() string {
	if s.Kind == "" {
		return "REINDEX " + s.Name
	}
	return "REINDEX " + s.Kind + " " + s.Name
}

// RefreshMatViewStmt is REFRESH MATERIALIZED VIEW name.
type RefreshMatViewStmt struct{ Name string }

// Type implements Statement.
func (*RefreshMatViewStmt) Type() sqlt.Type { return sqlt.RefreshMaterializedView }

// SQL implements Statement.
func (s *RefreshMatViewStmt) SQL() string { return "REFRESH MATERIALIZED VIEW " + s.Name }
