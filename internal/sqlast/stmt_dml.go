package sqlast

import (
	"strings"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// ---------------------------------------------------------------------------
// DML

// InsertStmt is INSERT [IGNORE] INTO table [(cols)] VALUES (...) | query,
// and its REPLACE variant.
type InsertStmt struct {
	sqlMemo
	Table               string
	Cols                []string
	Rows                [][]Expr    // one of Rows / Query
	Query               *SelectStmt // INSERT ... SELECT
	IsReplace           bool        // REPLACE INTO (MySQL family)
	Ignore              bool        // INSERT IGNORE (MySQL family)
	Returning           []Expr      // RETURNING (PostgreSQL)
	OnConflictDoNothing bool
}

// Type implements Statement.
func (s *InsertStmt) Type() sqlt.Type {
	if s.IsReplace {
		return sqlt.Replace
	}
	return sqlt.Insert
}

func (s *InsertStmt) render() string {
	var sb strings.Builder
	sb.Grow(64)
	if s.IsReplace {
		sb.WriteString("REPLACE")
	} else {
		sb.WriteString("INSERT")
		if s.Ignore {
			sb.WriteString(" IGNORE")
		}
	}
	sb.WriteString(" INTO ")
	sb.WriteString(s.Table)
	if len(s.Cols) > 0 {
		sb.WriteString(" (" + strings.Join(s.Cols, ", ") + ")")
	}
	if s.Query != nil {
		sb.WriteByte(' ')
		sb.WriteString(s.Query.SQL())
	} else {
		sb.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('(')
			for j, e := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(e.SQL())
			}
			sb.WriteByte(')')
		}
	}
	if s.OnConflictDoNothing {
		sb.WriteString(" ON CONFLICT DO NOTHING")
	}
	if len(s.Returning) > 0 {
		sb.WriteString(" RETURNING ")
		for i, e := range s.Returning {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	return sb.String()
}

// Assignment is one SET col = expr element.
type Assignment struct {
	Col   string
	Value Expr
}

// SQL renders the assignment.
func (a Assignment) SQL() string { return a.Col + " = " + a.Value.SQL() }

// UpdateStmt is UPDATE table SET ... [WHERE ...] [ORDER BY ...] [LIMIT n].
type UpdateStmt struct {
	sqlMemo
	Table   string
	Sets    []Assignment
	Where   Expr
	OrderBy []OrderItem
	Limit   Expr
}

// Type implements Statement.
func (*UpdateStmt) Type() sqlt.Type { return sqlt.Update }

func (s *UpdateStmt) render() string {
	var sb strings.Builder
	sb.Grow(48)
	sb.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Sets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.SQL())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	writeOrderLimit(&sb, s.OrderBy, s.Limit, nil)
	return sb.String()
}

// DeleteStmt is DELETE FROM table [WHERE ...] [ORDER BY ...] [LIMIT n].
type DeleteStmt struct {
	sqlMemo
	Table     string
	Where     Expr
	OrderBy   []OrderItem
	Limit     Expr
	Returning []Expr
}

// Type implements Statement.
func (*DeleteStmt) Type() sqlt.Type { return sqlt.Delete }

func (s *DeleteStmt) render() string {
	var sb strings.Builder
	sb.Grow(48)
	sb.WriteString("DELETE FROM " + s.Table)
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	writeOrderLimit(&sb, s.OrderBy, s.Limit, nil)
	if len(s.Returning) > 0 {
		sb.WriteString(" RETURNING ")
		for i, e := range s.Returning {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	return sb.String()
}

// MergeStmt is a simplified MERGE INTO target USING source ON cond
// WHEN MATCHED THEN UPDATE SET ... WHEN NOT MATCHED THEN INSERT VALUES (...).
type MergeStmt struct {
	sqlMemo
	Target         string
	Source         string
	On             Expr
	MatchedSet     []Assignment // empty means WHEN MATCHED THEN DELETE
	NotMatchedVals []Expr       // nil means no WHEN NOT MATCHED arm
}

// Type implements Statement.
func (*MergeStmt) Type() sqlt.Type { return sqlt.Merge }

func (s *MergeStmt) render() string {
	var sb strings.Builder
	sb.WriteString("MERGE INTO " + s.Target + " USING " + s.Source + " ON " + s.On.SQL())
	if len(s.MatchedSet) > 0 {
		sb.WriteString(" WHEN MATCHED THEN UPDATE SET ")
		for i, a := range s.MatchedSet {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.SQL())
		}
	} else {
		sb.WriteString(" WHEN MATCHED THEN DELETE")
	}
	if s.NotMatchedVals != nil {
		sb.WriteString(" WHEN NOT MATCHED THEN INSERT VALUES (")
		for i, e := range s.NotMatchedVals {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// CopyStmt is COPY table TO STDOUT / COPY table FROM STDIN [WITH CSV].
// The query form COPY (SELECT ...) TO STDOUT is also supported.
type CopyStmt struct {
	Table string
	Query *SelectStmt // query form; exclusive with Table
	From  bool        // FROM STDIN (load) vs TO STDOUT (dump)
	CSV   bool
	Data  string // inline payload for COPY FROM
}

// Type implements Statement.
func (s *CopyStmt) Type() sqlt.Type {
	if s.From {
		return sqlt.CopyFrom
	}
	return sqlt.CopyTo
}

// SQL implements Statement.
func (s *CopyStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("COPY ")
	if s.Query != nil {
		sb.WriteString("(" + s.Query.SQL() + ")")
	} else {
		sb.WriteString(s.Table)
	}
	if s.From {
		sb.WriteString(" FROM STDIN")
	} else {
		sb.WriteString(" TO STDOUT")
	}
	if s.CSV {
		sb.WriteString(" CSV")
	}
	return sb.String()
}

// LoadDataStmt is a simplified LOAD DATA INFILE 'src' INTO TABLE t.
type LoadDataStmt struct {
	File  string
	Table string
}

// Type implements Statement.
func (*LoadDataStmt) Type() sqlt.Type { return sqlt.LoadData }

// SQL implements Statement.
func (s *LoadDataStmt) SQL() string {
	return "LOAD DATA INFILE '" + strings.ReplaceAll(s.File, "'", "''") + "' INTO TABLE " + s.Table
}

// CallStmt is CALL proc(args).
type CallStmt struct {
	Name string
	Args []Expr
}

// Type implements Statement.
func (*CallStmt) Type() sqlt.Type { return sqlt.Call }

// SQL implements Statement.
func (s *CallStmt) SQL() string {
	args := make([]string, len(s.Args))
	for i, a := range s.Args {
		args[i] = a.SQL()
	}
	return "CALL " + s.Name + "(" + strings.Join(args, ", ") + ")"
}

// DoStmt is DO expr — evaluate and discard.
type DoStmt struct{ Body Expr }

// Type implements Statement.
func (*DoStmt) Type() sqlt.Type { return sqlt.Do }

// SQL implements Statement.
func (s *DoStmt) SQL() string { return "DO " + maybeParen(s.Body) }

func writeOrderLimit(sb *strings.Builder, order []OrderItem, limit, offset Expr) {
	if len(order) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range order {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.SQL())
		}
	}
	if limit != nil {
		sb.WriteString(" LIMIT " + limit.SQL())
	}
	if offset != nil {
		sb.WriteString(" OFFSET " + offset.SQL())
	}
}

// ---------------------------------------------------------------------------
// DQL

// SelectItem is one projection element.
type SelectItem struct {
	X     Expr
	Alias string
}

// SQL renders the projection element.
func (s SelectItem) SQL() string {
	if s.Alias != "" {
		return s.X.SQL() + " AS " + s.Alias
	}
	return s.X.SQL()
}

// JoinKind is the join flavour.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinCross
)

// String renders the join keywords.
func (k JoinKind) String() string {
	switch k {
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a FROM-clause source.
type TableRef interface {
	tableRefNode()
	// SQL renders the reference.
	SQL() string
	// Clone returns a deep, aliasing-free copy of the reference.
	Clone() TableRef
}

// BaseTable names a table or view.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRefNode() {}

// SQL renders the base-table reference.
func (t *BaseTable) SQL() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// JoinRef is L <join kind> R [ON cond].
type JoinRef struct {
	Kind JoinKind
	L, R TableRef
	On   Expr // nil for CROSS JOIN
}

func (*JoinRef) tableRefNode() {}

// SQL renders the join.
func (t *JoinRef) SQL() string {
	s := t.L.SQL() + " " + t.Kind.String() + " " + t.R.SQL()
	if t.On != nil {
		s += " ON " + t.On.SQL()
	}
	return s
}

// SubqueryRef is (SELECT ...) AS alias.
type SubqueryRef struct {
	Query *SelectStmt
	Alias string
}

func (*SubqueryRef) tableRefNode() {}

// SQL renders the derived table.
func (t *SubqueryRef) SQL() string {
	return "(" + t.Query.SQL() + ") AS " + t.Alias
}

// SetOp is a set operation linking two SELECT bodies.
type SetOp uint8

// Set operations.
const (
	SetNone SetOp = iota
	SetUnion
	SetUnionAll
	SetExcept
	SetIntersect
)

// String renders the set-operation keywords.
func (s SetOp) String() string {
	switch s {
	case SetUnion:
		return "UNION"
	case SetUnionAll:
		return "UNION ALL"
	case SetExcept:
		return "EXCEPT"
	case SetIntersect:
		return "INTERSECT"
	default:
		return ""
	}
}

// SelectStmt is the full query form, including optional trailing set
// operation and SELECT INTO.
type SelectStmt struct {
	sqlMemo
	Distinct bool
	Items    []SelectItem
	Into     string // SELECT ... INTO newtable
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr
	Offset   Expr
	Op       SetOp
	Right    *SelectStmt // rhs of the set operation
}

// Type implements Statement.
func (s *SelectStmt) Type() sqlt.Type {
	if s.Into != "" {
		return sqlt.SelectInto
	}
	return sqlt.Select
}

//lego:hotpath
func (s *SelectStmt) render() string {
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.SQL())
	}
	if s.Into != "" {
		sb.WriteString(" INTO " + s.Into)
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.SQL())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.SQL())
	}
	if s.Op != SetNone && s.Right != nil {
		sb.WriteString(" " + s.Op.String() + " " + s.Right.SQL())
	}
	writeOrderLimit(&sb, s.OrderBy, s.Limit, s.Offset)
	return sb.String()
}

// TableStmtNode is the PostgreSQL shorthand `TABLE name`.
type TableStmtNode struct{ Name string }

// Type implements Statement.
func (*TableStmtNode) Type() sqlt.Type { return sqlt.TableStmt }

// SQL implements Statement.
func (s *TableStmtNode) SQL() string { return "TABLE " + s.Name }

// ValuesStmtNode is a standalone VALUES (...), (...) statement.
type ValuesStmtNode struct{ Rows [][]Expr }

// Type implements Statement.
func (*ValuesStmtNode) Type() sqlt.Type { return sqlt.ValuesStmt }

// SQL implements Statement.
func (s *ValuesStmtNode) SQL() string {
	var sb strings.Builder
	sb.WriteString("VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// CTE is one WITH-clause element.
type CTE struct {
	Name string
	Cols []string
	Body Statement // SELECT or DML (writable CTE)
}

// SQL renders the CTE.
func (c CTE) SQL() string {
	s := c.Name
	if len(c.Cols) > 0 {
		s += " (" + strings.Join(c.Cols, ", ") + ")"
	}
	return s + " AS (" + c.Body.SQL() + ")"
}

// WithStmt is WITH ctes body. Its statement type is WithSelect when both the
// body and all CTEs are queries, and WithDML when any part manipulates data
// (the writable-CTE form at the centre of the paper's case study).
type WithStmt struct {
	sqlMemo
	CTEs []CTE
	Body Statement
}

// Type implements Statement.
func (s *WithStmt) Type() sqlt.Type {
	if isDML(s.Body) {
		return sqlt.WithDML
	}
	for _, c := range s.CTEs {
		if isDML(c.Body) {
			return sqlt.WithDML
		}
	}
	return sqlt.WithSelect
}

func isDML(s Statement) bool {
	switch s.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *MergeStmt:
		return true
	}
	return false
}

func (s *WithStmt) render() string {
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString("WITH ")
	for i, c := range s.CTEs {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.SQL())
	}
	sb.WriteByte(' ')
	sb.WriteString(s.Body.SQL())
	return sb.String()
}

// ExplainStmt is EXPLAIN [ANALYZE] stmt.
type ExplainStmt struct {
	sqlMemo
	Analyze bool
	Stmt    Statement
}

// Type implements Statement.
func (*ExplainStmt) Type() sqlt.Type { return sqlt.Explain }

func (s *ExplainStmt) render() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Stmt.SQL()
	}
	return "EXPLAIN " + s.Stmt.SQL()
}

// ShowStmt is SHOW name (TABLES, DATABASES, or a variable).
type ShowStmt struct{ Name string }

// Type implements Statement.
func (*ShowStmt) Type() sqlt.Type { return sqlt.Show }

// SQL implements Statement.
func (s *ShowStmt) SQL() string { return "SHOW " + s.Name }

// DescribeStmt is DESCRIBE table.
type DescribeStmt struct{ Table string }

// Type implements Statement.
func (*DescribeStmt) Type() sqlt.Type { return sqlt.Describe }

// SQL implements Statement.
func (s *DescribeStmt) SQL() string { return "DESCRIBE " + s.Table }

// ---------------------------------------------------------------------------
// Helpers

// LimitLit builds the integer literal used for LIMIT/OFFSET clauses.
func LimitLit(n int64) Expr { return IntLit(n) }
