package harness

import (
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestExecuteContainsInjectedPanics: the heart of crash containment. An
// engine that panics on (almost) every statement must never kill the caller;
// every contained panic becomes a synthetic PANIC bug with a reproducer.
func TestExecuteContainsInjectedPanics(t *testing.T) {
	r := NewRunnerWithConfig(minidb.Config{
		Dialect:   sqlt.DialectPostgres,
		FaultRate: 0.5,
		FaultSeed: 3,
	})
	tc := sqlparse.MustParseScript(
		"CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")

	sawCrash := false
	for i := 0; i < 40; i++ {
		_, _, crash := r.Execute(tc) // must not panic
		if crash != nil {
			sawCrash = true
			if crash.Kind != "PANIC" || !strings.HasPrefix(crash.ID, "ORGANIC-") {
				t.Fatalf("contained crash = %+v", crash)
			}
		}
	}
	if !sawCrash || r.EnginePanics == 0 {
		t.Fatalf("rate-0.5 injector never fired: panics=%d", r.EnginePanics)
	}
	if r.Execs != 40 {
		t.Fatalf("every Execute must count: execs=%d", r.Execs)
	}

	// Dedup: the injector has exactly two panic sites (before/after
	// dispatch), so dozens of contained panics collapse to at most two
	// unique bugs, whose Hits add back up to the panic total.
	if n := r.Oracle.Count(); n < 1 || n > 2 {
		t.Fatalf("organic dedup: %d unique bugs (want 1..2): %v", n, r.Oracle.IDs())
	}
	hits := 0
	for _, c := range r.Oracle.Crashes() {
		hits += c.Hits
		if c.Reproducer.SQL() == "" {
			t.Fatal("organic crash lacks a reproducer")
		}
	}
	if hits != r.EnginePanics {
		t.Fatalf("oracle hits %d != contained panics %d", hits, r.EnginePanics)
	}
}

// TestQuarantineRebuildsEngine: a contained panic mid-case must leave the
// runner with a fresh, fully functional engine — no half-executed
// transaction, trigger, or catalog state may leak into the next case.
func TestQuarantineRebuildsEngine(t *testing.T) {
	r := NewRunnerWithConfig(minidb.Config{
		Dialect:   sqlt.DialectMariaDB,
		FaultRate: 1, // first dispatch panics
		FaultSeed: 1,
	})
	old := r.Eng
	tc := sqlparse.MustParseScript(
		"CREATE TABLE q (a INT); BEGIN; INSERT INTO q VALUES (1);")
	_, _, crash := r.Execute(tc)
	if crash == nil {
		t.Fatal("rate-1 injector must crash the case")
	}
	if r.Eng == old {
		t.Fatal("quarantine must replace the engine instance")
	}
	if r.EnginePanics != 1 {
		t.Fatalf("EnginePanics = %d", r.EnginePanics)
	}
	// The rebuilt engine carries the fault stream forward rather than
	// replaying the schedule from the seed.
	if r.Eng.FaultState() == 0 || r.Eng.FaultState() != old.FaultState() {
		t.Fatal("quarantine must carry the fault injector state forward")
	}
}

// TestPostPanicHygieneWithSeededHazards: after a contained organic panic the
// next Execute must behave exactly like a first execution — seeded hazards
// still fire and the oracle keeps deduplicating.
func TestPostPanicHygieneWithSeededHazards(t *testing.T) {
	r := NewRunnerWithConfig(minidb.Config{
		Dialect:       sqlt.DialectMySQL,
		EnableHazards: true,
	})
	hazardTC := sqlparse.MustParseScript(`
CREATE TABLE v0 (v1 INT);
INSERT INTO v0 VALUES (1);
CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 VALUES (2);
SELECT * FROM v0;
`)
	_, _, crash := r.Execute(hazardTC)
	if crash == nil || crash.ID != "CVE-2021-35643" {
		t.Fatalf("seeded hazard did not fire: %v", crash)
	}

	// Simulate an organic panic by quarantining directly (the fault injector
	// cannot fire exactly once), then re-run the hazard case.
	r.quarantine()
	r.EnginePanics++

	_, _, crash = r.Execute(hazardTC)
	if crash == nil || crash.ID != "CVE-2021-35643" {
		t.Fatalf("hazard must still fire on the rebuilt engine: %v", crash)
	}
	if r.Oracle.Count() != 1 {
		t.Fatalf("oracle must deduplicate across quarantine: %d bugs", r.Oracle.Count())
	}
	if hits := r.Oracle.Crashes()[0].Hits; hits != 2 {
		t.Fatalf("duplicate hazard hit must increment Hits: %d", hits)
	}

	// And ordinary SQL still works on the rebuilt engine.
	out := r.Eng.RunTestCase(sqlparse.MustParseScript(
		"CREATE TABLE clean (a INT); INSERT INTO clean VALUES (1); SELECT * FROM clean;"))
	if out.Crash != nil || out.Errors != 0 {
		t.Fatalf("rebuilt engine unhealthy: crash=%v errors=%d", out.Crash, out.Errors)
	}
}

// TestStatementAccountingOnCrash: a case that dies at statement k must charge
// k statements, not len(tc) — budgets are statement-denominated, so
// over-charging crashed cases would silently shrink campaigns.
func TestStatementAccountingOnCrash(t *testing.T) {
	r := NewRunnerWithConfig(minidb.Config{
		Dialect:   sqlt.DialectPostgres,
		FaultRate: 1, // dies on the first statement's dispatch
		FaultSeed: 1,
	})
	tc := sqlparse.MustParseScript(
		"CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	r.Execute(tc)
	if r.Stmts >= len(tc) {
		t.Fatalf("crashed case charged %d statements (case has %d)", r.Stmts, len(tc))
	}
	if r.Stmts != 1 {
		t.Fatalf("fault on first statement must charge 1, got %d", r.Stmts)
	}
}
