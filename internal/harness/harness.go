// Package harness provides the execution substrate shared by LEGO and the
// baseline fuzzers: a Runner that executes test cases against a fresh engine
// with coverage accounting, crash deduplication, affinity tallying, and a
// coverage-over-time curve; plus the initial seed corpus.
package harness

import (
	"runtime"
	"sync"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// CurvePoint is one sample of the branch-coverage curve (Figure 9).
type CurvePoint struct {
	Execs int
	Edges int
}

// Runner executes test cases and accumulates campaign state.
type Runner struct {
	Eng    *minidb.Engine
	Cov    *coverage.Map
	Oracle *oracle.Oracle
	// GenAff tallies the type-affinities contained in every *generated*
	// test case (executed by the fuzzer), the Table II metric.
	GenAff *affinity.Map

	Execs int
	// Stmts counts statements executed across all test cases. Campaign
	// budgets are expressed in statements: execution time is proportional
	// to statements, not test cases, so statement budgets model the paper's
	// wall-clock budgets faithfully (a LEN=8 case costs more than a LEN=3
	// case, the trade-off behind the paper's §VI length study).
	Stmts int
	// EnginePanics counts contained organic panics: non-BugReport panics
	// that escaped the engine and were converted into synthetic PANIC
	// reports instead of killing the campaign.
	EnginePanics int
	Curve        []CurvePoint
	curveEvery   int

	// cfg rebuilds the engine after a contained panic (quarantine) and is
	// recorded in checkpoints.
	cfg minidb.Config

	// retiredPlanStats accumulates plan-cache counters from engines retired
	// by quarantine, so PlanStats covers the whole campaign.
	retiredPlanStats minidb.PlanStats
}

// NewRunner builds a runner for one campaign.
func NewRunner(d sqlt.Dialect, hazards bool) *Runner {
	return NewRunnerWithConfig(minidb.Config{Dialect: d, EnableHazards: hazards})
}

// NewRunnerWithConfig builds a runner with full engine configuration
// (fault injection, custom limits).
func NewRunnerWithConfig(cfg minidb.Config) *Runner {
	return &Runner{
		Eng:        minidb.New(cfg),
		Cov:        coverage.NewMap(),
		Oracle:     oracle.New(),
		GenAff:     affinity.NewMap(),
		curveEvery: 50,
		cfg:        cfg,
	}
}

// Config returns the engine configuration the runner was built with.
func (r *Runner) Config() minidb.Config { return r.cfg }

// Execute runs one test case against a fresh database. It returns whether
// the execution contributed coverage novelty ("hit new branches",
// Algorithm 1) and how many brand-new edges it added; a crash is recorded in
// the oracle and reported in the third return.
//
// Execute never lets a panic escape: seeded *BugReport panics are captured
// by the engine itself, and any other (organic) panic is contained here —
// converted into a synthetic PANIC report, recorded with its reproducer,
// and followed by an engine quarantine. This is the in-process equivalent
// of AFL++'s fork-per-testcase isolation: a target crash must never kill
// the fuzzer (paper §IV).
func (r *Runner) Execute(tc sqlast.TestCase) (novel bool, newEdges int, crash *minidb.BugReport) {
	// Capture the tracer up front: a quarantine mid-case replaces the
	// engine (and its tracer), but the coverage gathered before the panic
	// is still valid feedback.
	tr := r.Eng.Tracer()
	tr.Reset()
	out := r.runContained(tc)
	novel, newEdges = r.Cov.Accumulate(tr)
	r.GenAff.Analyze(tc.Types())
	r.Execs++
	r.Stmts += out.Executed
	if out.Crash != nil {
		r.Oracle.Record(out.Crash, tc, r.Execs)
		crash = out.Crash
	}
	if r.Execs%r.curveEvery == 0 || r.Execs == 1 {
		r.Curve = append(r.Curve, CurvePoint{Execs: r.Execs, Edges: r.Cov.EdgeCount()})
	}
	return novel, newEdges, crash
}

// runContained executes the test case, recovering any panic the engine
// re-raised and converting it into an organic BugReport outcome.
func (r *Runner) runContained(tc sqlast.TestCase) (out minidb.Outcome) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, false)]
		r.EnginePanics++
		// The outcome assembled by RunTestCase is lost when it panics; the
		// engine's statement progress recovers how much work was charged.
		out.Executed = r.Eng.StmtProgress()
		out.Crash = minidb.OrganicReport(rec, r.Eng.Dialect(), r.Eng.TypeWindow(), buf)
		r.quarantine()
	}()
	return r.Eng.RunTestCase(tc)
}

// quarantine discards the possibly-corrupt engine after an organic panic
// and rebuilds a fresh one from the campaign configuration, carrying over
// the fault injector's stream so contained faults do not restart the fault
// schedule.
func (r *Runner) quarantine() {
	faultState := r.Eng.FaultState()
	r.retiredPlanStats.Add(r.Eng.PlanStats())
	r.Eng = minidb.New(r.cfg)
	r.Eng.SetFaultState(faultState)
}

// PlanStats reports the campaign's plan-cache counters, including engines
// retired by quarantine.
func (r *Runner) PlanStats() minidb.PlanStats {
	s := r.retiredPlanStats
	s.Add(r.Eng.PlanStats())
	return s
}

// Branches returns the branch-coverage metric (distinct edges).
func (r *Runner) Branches() int { return r.Cov.EdgeCount() }

// Fuzzer is one fuzzing strategy driving a Runner.
type Fuzzer interface {
	// Name is the display name used in tables and figures.
	Name() string
	// Step performs one fuzzing iteration; the budget callback reports
	// whether the campaign budget is exhausted and Step should bail early.
	Step(exhausted func() bool)
	// Runner exposes the campaign state for metric collection.
	Runner() *Runner
}

// initialSeedSQL is the shared seed corpus. Every statement uses types in
// all four dialect profiles, so the same seeds bootstrap every target — as
// the paper uses each fuzzer's default seed corpus. The first seed is
// Figure 1's running example.
var initialSeedSQL = []string{
	`CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
INSERT INTO t1 VALUES (2, 1);
SELECT v2 FROM t1 ORDER BY v1;
SELECT v2 FROM t1 WHERE v1 = 1;`,

	`CREATE TABLE t0 (c0 INT, c1 VARCHAR(100));
INSERT INTO t0 VALUES (1, 'name1');
UPDATE t0 SET c1 = 'name2' WHERE c0 = 1;
SELECT * FROM t0;`,

	`CREATE TABLE t2 (c0 INT, c1 INT);
CREATE INDEX i0 ON t2 (c0);
INSERT INTO t2 VALUES (1, 10), (2, 20);
SELECT c1 FROM t2 WHERE c0 = 1;
DELETE FROM t2 WHERE c1 > 15;
INSERT INTO t2 VALUES (3, 30);`,

	`CREATE TABLE t3 (a INT, b INT);
INSERT INTO t3 VALUES (5, 5);
BEGIN;
UPDATE t3 SET b = 6;
COMMIT;
SELECT a, b FROM t3;`,

	`SET SESSION sql_mode = 'default';
CREATE TABLE t4 (x INT, y INT);
INSERT INTO t4 VALUES (1, 2);
SET SESSION opt_level = 2;
SELECT y FROM t4 WHERE x = 1;`,

	`CREATE TABLE ta (id INT, v INT);
CREATE TABLE tb (id INT, w INT);
INSERT INTO ta VALUES (1, 10);
INSERT INTO tb VALUES (1, 100);
SELECT ta.v, tb.w FROM ta JOIN tb ON ta.id = tb.id;`,

	`CREATE TABLE t5 (a INT, b INT);
INSERT INTO t5 VALUES (1, 2);
UPDATE t5 SET a = 3;
UPDATE t5 SET b = 4 WHERE a = 3;
DELETE FROM t5 WHERE b > 10;
SELECT * FROM t5;`,

	`CREATE TABLE t6 (k INT, s VARCHAR(100));
INSERT INTO t6 VALUES (1, 'a');
DELETE FROM t6 WHERE k = 1;
INSERT INTO t6 VALUES (2, 'b');
SELECT s FROM t6;`,

	`CREATE TABLE t7 (n INT);
INSERT INTO t7 VALUES (1);
INSERT INTO t7 VALUES (2);
INSERT INTO t7 VALUES (3);
SELECT SUM(n) FROM t7;`,
}

// InitialSeeds parses the default seed corpus, keeping only seeds whose
// every statement the dialect accepts.
func InitialSeeds(d sqlt.Dialect) []sqlast.TestCase {
	var out []sqlast.TestCase
	for _, tc := range parsedSeedCorpus() {
		okForDialect := true
		for _, s := range tc {
			if !d.Supports(s.Type()) {
				okForDialect = false
				break
			}
		}
		if okForDialect {
			out = append(out, tc.Clone())
		}
	}
	return out
}

// seedCorpus caches the parsed seed corpus: the scripts are process
// constants, so they are parsed exactly once and every caller — including
// each of N shard workers — receives structural clones instead of paying a
// reparse.
var seedCorpus struct {
	once sync.Once
	tcs  []sqlast.TestCase
}

func parsedSeedCorpus() []sqlast.TestCase {
	seedCorpus.once.Do(func() {
		seedCorpus.tcs = make([]sqlast.TestCase, len(initialSeedSQL))
		for i, sql := range initialSeedSQL {
			seedCorpus.tcs[i] = sqlparse.MustParseScript(sql)
		}
	})
	return seedCorpus.tcs
}
