package harness

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestInitialSeedsValidEverywhere(t *testing.T) {
	for _, d := range sqlt.Dialects() {
		seeds := InitialSeeds(d)
		if len(seeds) == 0 {
			t.Fatalf("%s: no initial seeds", d)
		}
		r := NewRunner(d, false)
		for i, tc := range seeds {
			for _, s := range tc {
				if !d.Supports(s.Type()) {
					t.Errorf("%s seed %d uses unsupported type %s", d, i, s.Type())
				}
			}
			_, _, crash := r.Execute(tc)
			if crash != nil {
				t.Errorf("%s seed %d crashed disarmed engine: %v", d, i, crash)
			}
		}
	}
}

func TestInitialSeedsLowErrorRate(t *testing.T) {
	// Seeds are the fuzzers' starting corpus; they must execute cleanly.
	r := NewRunner(sqlt.DialectPostgres, false)
	for i, tc := range InitialSeeds(sqlt.DialectPostgres) {
		out := r.Eng.RunTestCase(tc)
		if out.Errors != 0 {
			t.Errorf("seed %d has %d statement errors: %v", i, out.Errors, out.Errs)
		}
	}
}

func TestSeedsContainSquirrelAdjacencies(t *testing.T) {
	// The SQUIRREL-reachable bug patterns (bugs.go) rely on specific seed
	// adjacencies; losing one silently changes Table III's shape.
	needed := []struct{ a, b sqlt.Type }{
		{sqlt.Insert, sqlt.Insert},
		{sqlt.Insert, sqlt.Select},
		{sqlt.Update, sqlt.Delete},
		{sqlt.Insert, sqlt.Update},
		{sqlt.Delete, sqlt.Insert},
		{sqlt.Update, sqlt.Update},
		{sqlt.Insert, sqlt.Delete},
		{sqlt.Select, sqlt.Select},
		{sqlt.SetVar, sqlt.Select},
		{sqlt.Update, sqlt.Select},
		{sqlt.CreateIndex, sqlt.Insert},
	}
	seeds := InitialSeeds(sqlt.DialectMariaDB)
	for _, n := range needed {
		found := false
		for _, tc := range seeds {
			if tc.Types().Contains(n.a, n.b) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no seed contains adjacency %s -> %s", n.a, n.b)
		}
	}
}

func TestRunnerAccounting(t *testing.T) {
	r := NewRunner(sqlt.DialectPostgres, false)
	tc := sqlparse.MustParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")

	novel, newEdges, crash := r.Execute(tc)
	if !novel || newEdges == 0 || crash != nil {
		t.Fatalf("first execution: novel=%v newEdges=%d crash=%v", novel, newEdges, crash)
	}
	if r.Execs != 1 || r.Stmts != 3 {
		t.Fatalf("execs=%d stmts=%d", r.Execs, r.Stmts)
	}
	if r.Branches() == 0 {
		t.Fatal("branches must accumulate")
	}
	if r.GenAff.Count() == 0 {
		t.Fatal("generated affinities must be tallied")
	}
	if len(r.Curve) == 0 {
		t.Fatal("curve must sample")
	}

	novel, _, _ = r.Execute(tc)
	if novel {
		t.Fatal("identical execution must not be novel")
	}
	if r.Execs != 2 || r.Stmts != 6 {
		t.Fatalf("counters after second exec: %d, %d", r.Execs, r.Stmts)
	}
}

func TestRunnerRecordsCrashes(t *testing.T) {
	r := NewRunner(sqlt.DialectMySQL, true)
	// the Fig. 3 sequence triggers CVE-2021-35643
	tc := sqlparse.MustParseScript(`
CREATE TABLE v0 (v1 INT);
INSERT INTO v0 VALUES (1);
CREATE TRIGGER tg AFTER UPDATE ON v0 FOR EACH ROW INSERT INTO v0 VALUES (2);
SELECT * FROM v0;
`)
	_, _, crash := r.Execute(tc)
	if crash == nil || crash.ID != "CVE-2021-35643" {
		t.Fatalf("crash = %v", crash)
	}
	if r.Oracle.Count() != 1 {
		t.Fatal("oracle must record the crash")
	}
	// the same crash again is deduplicated
	r.Execute(tc)
	if r.Oracle.Count() != 1 {
		t.Fatal("duplicate crash must not add a bug")
	}
}
