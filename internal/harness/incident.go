package harness

import "github.com/seqfuzz/lego/internal/minidb"

// Incident kinds: what felled the worker.
const (
	// IncidentWorkerPanic is a chaos-injected worker panic.
	IncidentWorkerPanic = "WORKER_PANIC"
	// IncidentEpochStall is a chaos-injected stall: the worker stopped making
	// progress mid-epoch and the supervisor's step watchdog aborted it at the
	// barrier.
	IncidentEpochStall = "EPOCH_STALL"
	// IncidentOrganicPanic is a real panic that escaped a worker — a harness
	// bug, not an injected fault — contained by the supervisor's recover.
	IncidentOrganicPanic = "ORGANIC_PANIC"
)

// Incident outcomes: what the supervisor did about it.
const (
	// IncidentRetried: the shard was restored to its last barrier snapshot
	// and deterministically re-ran the epoch.
	IncidentRetried = "RETRIED"
	// IncidentQuarantined: the shard's retry budget is exhausted; it holds
	// its last-good state and the campaign degrades to fewer workers.
	IncidentQuarantined = "QUARANTINED"
)

// Incident is one entry of a supervised campaign's incident journal: a
// worker failure and the supervisor's resolution. Incidents are part of the
// campaign's deterministic output — same seed and chaos schedule, same
// journal — which is what makes the supervision machinery testable at all.
type Incident struct {
	// Epoch is the barrier-to-barrier interval the failure struck in.
	Epoch int
	// Shard is the failed worker's index.
	Shard int
	// Kind classifies the failure (the Incident* kind constants).
	Kind string
	// Retries is the shard's cumulative retry tally after this incident.
	Retries int
	// Outcome records the supervisor's decision (the Incident* outcome
	// constants).
	Outcome string
	// Detail carries deterministic context: an injected fault's coordinates,
	// or an organic panic's normalized stack.
	Detail string
}

// NormalizeStack reduces a runtime.Stack capture to deterministic bare frame
// names — no addresses, offsets, or line numbers — so panics recovered at
// the campaign layer journal and deduplicate the same way the engine's
// organic crash reports do.
func NormalizeStack(rawStack []byte) []string {
	return minidb.NormalizeStack(rawStack)
}
