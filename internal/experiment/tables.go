package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Table1Result reproduces Table I: vulnerabilities found by LEGO in
// continuous fuzzing, grouped by DBMS and component.
type Table1Result struct {
	// Found maps dialect -> component -> bug kind -> count.
	Found map[sqlt.Dialect]map[string]map[string]int
	// IDs maps dialect -> component -> identifiers.
	IDs map[sqlt.Dialect]map[string][]string
	// PerDialect is the bug total per dialect (paper: 6/21/42/33).
	PerDialect map[sqlt.Dialect]int
	// Total is the overall unique bug count (paper: 102).
	Total int
	// Seeded is the per-dialect seeded corpus size, for the coverage ratio.
	Seeded map[sqlt.Dialect]int
}

// table1Instances is the number of independent campaigns unioned per
// dialect: the paper's continuous fuzzing runs many single-core instances
// for weeks, so bugs are the union over a fleet, not one run.
const table1Instances = 3

// Table1 runs LEGO's continuous-fuzzing campaigns on every dialect and
// unions the bugs found across instances.
func Table1(b Budgets) Table1Result {
	res := Table1Result{
		Found:      map[sqlt.Dialect]map[string]map[string]int{},
		IDs:        map[sqlt.Dialect]map[string][]string{},
		PerDialect: map[sqlt.Dialect]int{},
		Seeded:     map[sqlt.Dialect]int{},
	}
	for d, bugs := range minidb.AllBugs() {
		res.Seeded[d] = len(bugs)
	}
	for _, d := range sqlt.Dialects() {
		comp := map[string]map[string]int{}
		ids := map[string][]string{}
		seen := map[string]bool{}
		for inst := 0; inst < table1Instances; inst++ {
			cr := RunCampaign(FuzzerLEGO, d, b.ContinuousStmts, b.Seed+int64(1000*inst), 0)
			for _, c := range cr.Crashes {
				if seen[c.Report.ID] {
					continue
				}
				seen[c.Report.ID] = true
				if comp[c.Report.Component] == nil {
					comp[c.Report.Component] = map[string]int{}
				}
				comp[c.Report.Component][c.Report.Kind]++
				ids[c.Report.Component] = append(ids[c.Report.Component], c.Report.ID)
			}
		}
		res.Found[d] = comp
		res.IDs[d] = ids
		res.PerDialect[d] = len(seen)
		res.Total += len(seen)
	}
	return res
}

// Format renders the result in the paper's Table I layout.
func (t Table1Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Table I: vulnerabilities discovered by LEGO in continuous fuzzing\n")
	var rows [][]string
	for _, d := range sqlt.Dialects() {
		comps := make([]string, 0, len(t.Found[d]))
		for c := range t.Found[d] {
			comps = append(comps, c)
		}
		sort.Strings(comps)
		for _, c := range comps {
			kinds := t.Found[d][c]
			var parts []string
			for _, k := range sortedKeys(kinds) {
				parts = append(parts, fmt.Sprintf("%s(%d)", k, kinds[k]))
			}
			idList := t.IDs[d][c]
			sort.Strings(idList)
			idStr := strings.Join(idList, ", ")
			if len(idStr) > 60 {
				idStr = idStr[:57] + "..."
			}
			rows = append(rows, []string{d.String(), c, strings.Join(parts, ", "), idStr})
		}
	}
	sb.WriteString(formatTable([]string{"DBMS", "Component", "Bug Type and Number", "Identifier"}, rows))
	sb.WriteString(fmt.Sprintf("\nTotal: %d bugs found", t.Total))
	for _, d := range sqlt.Dialects() {
		sb.WriteString(fmt.Sprintf("  %s %d/%d", d, t.PerDialect[d], t.Seeded[d]))
	}
	sb.WriteString("\nPaper: 102 bugs (PostgreSQL 6, MySQL 21, MariaDB 42, Comdb2 33)\n")
	return sb.String()
}

// Figure9Result reproduces Figure 9: branches covered per fuzzer per DBMS.
type Figure9Result struct {
	// Branches maps dialect -> fuzzer -> final branch count (-1 where the
	// fuzzer does not support the dialect, as SQLsmith outside PostgreSQL).
	Branches map[sqlt.Dialect]map[FuzzerName]int
	// Curves keeps the coverage-over-executions series for plotting.
	Curves map[sqlt.Dialect]map[FuzzerName][]CurvePointAlias
}

// CurvePointAlias re-exports the harness curve point for callers.
type CurvePointAlias struct {
	Execs int
	Edges int
}

// figure9Fuzzers lists the comparison set in the paper's legend order.
var figure9Fuzzers = []FuzzerName{FuzzerLEGO, FuzzerSquirrel, FuzzerSQLancer, FuzzerSQLsmith}

// Figure9 runs the 24-hour-scale comparison.
func Figure9(b Budgets) Figure9Result {
	res := Figure9Result{
		Branches: map[sqlt.Dialect]map[FuzzerName]int{},
		Curves:   map[sqlt.Dialect]map[FuzzerName][]CurvePointAlias{},
	}
	for _, d := range sqlt.Dialects() {
		res.Branches[d] = map[FuzzerName]int{}
		res.Curves[d] = map[FuzzerName][]CurvePointAlias{}
		for _, f := range figure9Fuzzers {
			if f == FuzzerSQLsmith && d != sqlt.DialectPostgres {
				res.Branches[d][f] = -1 // unsupported, as in the paper
				continue
			}
			cr := RunCampaign(f, d, b.DayStmts, b.Seed, 0)
			res.Branches[d][f] = cr.Branches
			for _, p := range cr.Curve {
				res.Curves[d][f] = append(res.Curves[d][f], CurvePointAlias{p.Execs, p.Edges})
			}
		}
	}
	return res
}

// Format renders final branch counts plus the LEGO-vs-baseline ratios the
// paper reports (LEGO covered 198%/44%/120% more than SQLancer/SQLsmith/
// SQUIRREL on average).
func (f Figure9Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Figure 9: branches covered in the fixed-budget comparison\n")
	header := []string{"DBMS"}
	for _, fz := range figure9Fuzzers {
		header = append(header, string(fz))
	}
	var rows [][]string
	for _, d := range sqlt.Dialects() {
		row := []string{d.String()}
		for _, fz := range figure9Fuzzers {
			v := f.Branches[d][fz]
			if v < 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%d", v))
			}
		}
		rows = append(rows, row)
	}
	sb.WriteString(formatTable(header, rows))

	// average improvement ratios
	for _, base := range []FuzzerName{FuzzerSQLancer, FuzzerSQLsmith, FuzzerSquirrel} {
		var ratios []float64
		for _, d := range sqlt.Dialects() {
			lego := f.Branches[d][FuzzerLEGO]
			bv := f.Branches[d][base]
			if bv > 0 {
				ratios = append(ratios, float64(lego-bv)/float64(bv)*100)
			}
		}
		if len(ratios) > 0 {
			var sum float64
			for _, r := range ratios {
				sum += r
			}
			sb.WriteString(fmt.Sprintf("LEGO vs %-8s: +%.0f%% branches on average\n", base, sum/float64(len(ratios))))
		}
	}
	sb.WriteString("Paper: LEGO covered 198%/44%/120% more than SQLancer/SQLsmith/SQUIRREL.\n")
	return sb.String()
}

// WriteCurvesCSV renders the coverage-over-executions series of every
// campaign as CSV (dialect,fuzzer,execs,edges), the data behind the paper's
// Figure 9 line plot.
func (f Figure9Result) WriteCurvesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "dialect,fuzzer,execs,branches"); err != nil {
		return err
	}
	for _, d := range sqlt.Dialects() {
		for _, fz := range figure9Fuzzers {
			for _, p := range f.Curves[d][fz] {
				if _, err := fmt.Fprintf(w, "%s,%s,%d,%d\n", d, fz, p.Execs, p.Edges); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Table2Result reproduces Table II: type-affinities contained in the test
// cases each fuzzer generated. SQLsmith is excluded, as in the paper
// ("it contains only one statement per test case").
type Table2Result struct {
	Affinities map[sqlt.Dialect]map[FuzzerName]int
}

var table2Fuzzers = []FuzzerName{FuzzerSQLancer, FuzzerSquirrel, FuzzerLEGO}

// Table2 runs the generated-affinity comparison.
func Table2(b Budgets) Table2Result {
	res := Table2Result{Affinities: map[sqlt.Dialect]map[FuzzerName]int{}}
	for _, d := range sqlt.Dialects() {
		res.Affinities[d] = map[FuzzerName]int{}
		for _, f := range table2Fuzzers {
			cr := RunCampaign(f, d, b.DayStmts, b.Seed, 0)
			res.Affinities[d][f] = cr.GenAffinities
		}
	}
	return res
}

// Totals returns the per-fuzzer affinity totals.
func (t Table2Result) Totals() map[FuzzerName]int {
	tot := map[FuzzerName]int{}
	for _, perF := range t.Affinities {
		for f, n := range perF {
			tot[f] += n
		}
	}
	return tot
}

// Format renders the paper's Table II layout.
func (t Table2Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Table II: type-affinities contained in generated test cases\n")
	header := []string{"DBMS", "SQLancer", "SQUIRREL", "LEGO"}
	var rows [][]string
	for _, d := range sqlt.Dialects() {
		rows = append(rows, []string{
			d.String(),
			fmt.Sprintf("%d", t.Affinities[d][FuzzerSQLancer]),
			fmt.Sprintf("%d", t.Affinities[d][FuzzerSquirrel]),
			fmt.Sprintf("%d", t.Affinities[d][FuzzerLEGO]),
		})
	}
	tot := t.Totals()
	rows = append(rows, []string{"Total",
		fmt.Sprintf("%d", tot[FuzzerSQLancer]),
		fmt.Sprintf("%d", tot[FuzzerSquirrel]),
		fmt.Sprintf("%d", tot[FuzzerLEGO])})
	sb.WriteString(formatTable(header, rows))
	sb.WriteString("Paper totals: SQLancer 770, SQUIRREL 119, LEGO 3707.\n")
	return sb.String()
}

// Table3Result reproduces Table III: bugs triggered in the fixed-budget
// campaigns.
type Table3Result struct {
	Bugs map[sqlt.Dialect]map[FuzzerName]int
	IDs  map[sqlt.Dialect]map[FuzzerName][]string
}

var table3Fuzzers = []FuzzerName{FuzzerSQLancer, FuzzerSQLsmith, FuzzerSquirrel, FuzzerLEGO}

// Table3 runs the bug-count comparison.
func Table3(b Budgets) Table3Result {
	res := Table3Result{
		Bugs: map[sqlt.Dialect]map[FuzzerName]int{},
		IDs:  map[sqlt.Dialect]map[FuzzerName][]string{},
	}
	for _, d := range sqlt.Dialects() {
		res.Bugs[d] = map[FuzzerName]int{}
		res.IDs[d] = map[FuzzerName][]string{}
		for _, f := range table3Fuzzers {
			if f == FuzzerSQLsmith && d != sqlt.DialectPostgres {
				res.Bugs[d][f] = -1
				continue
			}
			cr := RunCampaign(f, d, b.DayStmts, b.Seed, 0)
			res.Bugs[d][f] = cr.Bugs()
			for _, c := range cr.Crashes {
				res.IDs[d][f] = append(res.IDs[d][f], c.Report.ID)
			}
		}
	}
	return res
}

// Totals returns per-fuzzer bug totals (SQLsmith's "-" entries count 0).
func (t Table3Result) Totals() map[FuzzerName]int {
	tot := map[FuzzerName]int{}
	for _, perF := range t.Bugs {
		for f, n := range perF {
			if n > 0 {
				tot[f] += n
			}
		}
	}
	return tot
}

// Format renders the paper's Table III layout.
func (t Table3Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Table III: bugs triggered in the fixed-budget comparison\n")
	header := []string{"DBMS", "SQLancer", "SQLsmith", "SQUIRREL", "LEGO"}
	var rows [][]string
	cell := func(v int) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	for _, d := range sqlt.Dialects() {
		rows = append(rows, []string{
			d.String(),
			cell(t.Bugs[d][FuzzerSQLancer]),
			cell(t.Bugs[d][FuzzerSQLsmith]),
			cell(t.Bugs[d][FuzzerSquirrel]),
			cell(t.Bugs[d][FuzzerLEGO]),
		})
	}
	tot := t.Totals()
	rows = append(rows, []string{"Total",
		cell(tot[FuzzerSQLancer]), cell(tot[FuzzerSQLsmith]),
		cell(tot[FuzzerSquirrel]), cell(tot[FuzzerLEGO])})
	sb.WriteString(formatTable(header, rows))
	sb.WriteString("Paper: SQLancer 0, SQLsmith 0, SQUIRREL 11 (3 MySQL + 8 MariaDB), LEGO 52.\n")
	return sb.String()
}

// Table4Result reproduces Table IV: the LEGO- ablation.
type Table4Result struct {
	Types    map[sqlt.Dialect]int
	AffMinus map[sqlt.Dialect]int
	AffLego  map[sqlt.Dialect]int
	BrMinus  map[sqlt.Dialect]int
	BrLego   map[sqlt.Dialect]int
}

// Table4 runs LEGO vs LEGO- on every dialect.
func Table4(b Budgets) Table4Result {
	res := Table4Result{
		Types:    map[sqlt.Dialect]int{},
		AffMinus: map[sqlt.Dialect]int{},
		AffLego:  map[sqlt.Dialect]int{},
		BrMinus:  map[sqlt.Dialect]int{},
		BrLego:   map[sqlt.Dialect]int{},
	}
	for _, d := range sqlt.Dialects() {
		res.Types[d] = d.NumStatementTypes()
		minus := RunCampaign(FuzzerLEGOMinus, d, b.DayStmts, b.Seed, 0)
		lego := RunCampaign(FuzzerLEGO, d, b.DayStmts, b.Seed, 0)
		res.AffMinus[d] = minus.GenAffinities
		res.AffLego[d] = lego.GenAffinities
		res.BrMinus[d] = minus.Branches
		res.BrLego[d] = lego.Branches
	}
	return res
}

// Format renders the paper's Table IV layout.
func (t Table4Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Table IV: LEGO- vs LEGO (ablation of the sequence-oriented algorithms)\n")
	header := []string{"DBMS", "Types", "Aff(LEGO-)", "Aff(LEGO)", "Incr", "Br(LEGO-)", "Br(LEGO)", "Improv"}
	var rows [][]string
	for _, d := range sqlt.Dialects() {
		rows = append(rows, []string{
			d.String(),
			fmt.Sprintf("%d", t.Types[d]),
			fmt.Sprintf("%d", t.AffMinus[d]),
			fmt.Sprintf("%d", t.AffLego[d]),
			fmt.Sprintf("%d", t.AffLego[d]-t.AffMinus[d]),
			fmt.Sprintf("%d", t.BrMinus[d]),
			fmt.Sprintf("%d", t.BrLego[d]),
			pct(t.BrLego[d], t.BrMinus[d]),
		})
	}
	sb.WriteString(formatTable(header, rows))
	sb.WriteString("Paper: improvements 20%/15%/25%/7% on PostgreSQL/MySQL/MariaDB/Comdb2;\n" +
		"more statement types correlate with larger affinity increments and coverage gains.\n")
	return sb.String()
}

// LengthStudyResult reproduces the §VI sequence-length discussion: bugs
// found on MariaDB with LEN in {3, 5, 8}. Bug counts are totalled over
// Repeats independent campaigns (single campaigns are too noisy to resolve
// the paper's 30/35/27 hump).
type LengthStudyResult struct {
	Lens    []int
	Repeats int
	// Bugs is the total unique-bug count across repeats per length.
	Bugs map[int]int
}

// LengthStudy sweeps the sequence-length cap.
func LengthStudy(b Budgets) LengthStudyResult {
	res := LengthStudyResult{Lens: []int{3, 5, 8}, Repeats: 3, Bugs: map[int]int{}}
	for _, l := range res.Lens {
		for rep := 0; rep < res.Repeats; rep++ {
			cr := RunCampaign(FuzzerLEGO, sqlt.DialectMariaDB, b.DayStmts,
				b.Seed+int64(100*rep+l), l)
			res.Bugs[l] += cr.Bugs()
		}
	}
	return res
}

// Format renders the length study.
func (t LengthStudyResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sequence-length study (MariaDB): bugs found per LEN (sum of %d campaigns)\n", t.Repeats)
	var rows [][]string
	for _, l := range t.Lens {
		rows = append(rows, []string{fmt.Sprintf("LEN=%d", l), fmt.Sprintf("%d", t.Bugs[l])})
	}
	sb.WriteString(formatTable([]string{"Length", "Bugs"}, rows))
	sb.WriteString("Paper: 30/35/27 bugs for LEN=3/5/8 — the middle length wins.\n")
	return sb.String()
}
