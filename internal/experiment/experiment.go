// Package experiment reproduces the paper's evaluation: it runs calibrated
// fuzzing campaigns and formats the results as the paper's tables and
// figures. Campaign budgets are execution counts rather than wall-clock
// hours (DESIGN.md §2); relative comparisons are what the reproduction
// checks.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"github.com/seqfuzz/lego/internal/baselines"
	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/shard"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Budgets map the paper's time scales onto statement-execution counts
// (statements, not test cases: statements are the unit proportional to
// wall-clock time, which matters for the §VI length study).
type Budgets struct {
	// DayStmts models the 24-hour comparison campaigns (Fig. 9, Tables
	// II-IV).
	DayStmts int
	// ContinuousStmts models the continuous-fuzzing campaign behind
	// Table I's 102 bugs.
	ContinuousStmts int
	// Seed is the base RNG seed; each campaign derives its own.
	Seed int64
}

// DefaultBudgets returns the standard reproduction scale (a few seconds per
// campaign on commodity hardware).
func DefaultBudgets() Budgets {
	return Budgets{DayStmts: 200000, ContinuousStmts: 1000000, Seed: 1}
}

// QuickBudgets returns a scaled-down variant for tests and `go test -bench`.
// 40k statements is just past the point where LEGO's coverage curve has
// separated from SQLsmith's on PostgreSQL (the curves cross early, as in
// the paper's Figure 9).
func QuickBudgets() Budgets {
	return Budgets{DayStmts: 40000, ContinuousStmts: 120000, Seed: 1}
}

// FuzzerName identifies a strategy.
type FuzzerName string

// The evaluated fuzzers, plus two design-choice ablations of LEGO itself.
const (
	FuzzerLEGO      FuzzerName = "LEGO"
	FuzzerLEGOMinus FuzzerName = "LEGO-"
	FuzzerSquirrel  FuzzerName = "SQUIRREL"
	FuzzerSQLancer  FuzzerName = "SQLancer"
	FuzzerSQLsmith  FuzzerName = "SQLsmith"
	// FuzzerLEGORandomSeq replaces affinity-gated synthesis with uniformly
	// random type sequences (the arbitrary-permutation strawman of
	// challenges C1/C2).
	FuzzerLEGORandomSeq FuzzerName = "LEGO-randseq"
	// FuzzerLEGONoCovGate extracts affinities from every mutant instead of
	// only coverage-novel ones (removes Algorithm 1's filter).
	FuzzerLEGONoCovGate FuzzerName = "LEGO-nocovgate"
	// FuzzerLEGOSplit enables the §VI future-work extension that splits
	// long retained seeds into overlapping short seeds.
	FuzzerLEGOSplit FuzzerName = "LEGO-split"
)

// CampaignResult is the outcome of one (fuzzer, dialect, budget) run.
type CampaignResult struct {
	Fuzzer  FuzzerName
	Dialect sqlt.Dialect
	Execs   int
	// Branches is the branch-coverage metric (distinct edges).
	Branches int
	// GenAffinities counts type-affinities contained in the generated test
	// cases (Table II / Table IV metric).
	GenAffinities int
	// DiscoveredAffinities counts affinities LEGO's analysis recorded
	// (zero for baselines and LEGO-).
	DiscoveredAffinities int
	// Crashes are the deduplicated bugs.
	Crashes []*oracle.Crash
	// Curve samples branch coverage over executions.
	Curve []harness.CurvePoint
}

// Bugs returns the number of unique bugs found.
func (c *CampaignResult) Bugs() int { return len(c.Crashes) }

// runnable abstracts the per-fuzzer Run entry point.
type runnable interface {
	Run(budgetStmts int) *harness.Runner
}

// campaignSeed derives a per-campaign RNG seed so fuzzers don't share
// random streams.
func campaignSeed(base int64, f FuzzerName, d sqlt.Dialect) int64 {
	h := int64(1469598103934665603)
	for _, b := range []byte(string(f) + "|" + d.String()) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return base ^ h
}

// RunCampaign executes one fuzzing campaign with hazards armed.
func RunCampaign(f FuzzerName, d sqlt.Dialect, execs int, seed int64, maxLen int) CampaignResult {
	s := campaignSeed(seed, f, d)
	var r runnable
	var lego *core.Fuzzer
	switch f {
	case FuzzerLEGO:
		lego = core.New(core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen})
		r = lego
	case FuzzerLEGOMinus:
		lego = core.New(core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen,
			DisableSequenceAlgorithms: true})
		r = lego
	case FuzzerLEGORandomSeq:
		lego = core.New(core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen,
			RandomSequences: true})
		r = lego
	case FuzzerLEGONoCovGate:
		lego = core.New(core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen,
			NoCoverageGate: true})
		r = lego
	case FuzzerLEGOSplit:
		lego = core.New(core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen,
			SplitLongSeeds: true})
		r = lego
	case FuzzerSquirrel:
		r = baselines.NewSquirrel(d, s, true)
	case FuzzerSQLancer:
		r = baselines.NewSQLancer(d, s, true)
	case FuzzerSQLsmith:
		r = baselines.NewSQLsmith(d, s, true)
	default:
		panic("unknown fuzzer " + string(f))
	}
	runner := r.Run(execs)
	res := CampaignResult{
		Fuzzer:        f,
		Dialect:       d,
		Execs:         runner.Execs,
		Branches:      runner.Branches(),
		GenAffinities: runner.GenAff.Count(),
		Crashes:       runner.Oracle.Crashes(),
		Curve:         runner.Curve,
	}
	if lego != nil {
		res.DiscoveredAffinities = lego.Affinities()
	}
	return res
}

// RunShardedCampaign executes one LEGO campaign as a deterministic sharded
// run (internal/shard): workers parallel fuzzers sharing the total statement
// budget, merged at epoch barriers, reported as the global view. The result
// depends only on the arguments, never on scheduling, so scaling studies
// (Figure 9 at N workers) are reproducible run to run. epochStmts <= 0 uses
// the executor's default.
func RunShardedCampaign(d sqlt.Dialect, stmts int, seed int64, maxLen, workers, epochStmts int) CampaignResult {
	s := campaignSeed(seed, FuzzerLEGO, d)
	e := shard.New(shard.Options{
		Core:       core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen},
		Workers:    workers,
		EpochStmts: epochStmts,
	})
	if _, err := e.Run(stmts, shard.RunOptions{}); err != nil {
		// Run can only fail through a Save hook, and none is installed.
		panic(err)
	}
	return CampaignResult{
		Fuzzer:               FuzzerLEGO,
		Dialect:              d,
		Execs:                e.Execs(),
		Branches:             e.Branches(),
		GenAffinities:        e.GenAffinities(),
		DiscoveredAffinities: e.Affinities(),
		Crashes:              e.Oracle().Crashes(),
		Curve:                e.Curve(),
	}
}

// ChaosStats summarizes how a supervised campaign's failure handling went:
// the statements it actually executed (a quarantined shard forfeits its
// residual budget), the incident journal size, and the degraded topology —
// plus the plan-cache counters, so throughput snapshots can report how much
// of the statement stream ran compiled.
type ChaosStats struct {
	Stmts       int
	Incidents   int
	Quarantined int
	PlanStats   minidb.PlanStats
}

// RunChaoticCampaign is RunShardedCampaign with the chaos plane armed:
// injected worker panics and epoch stalls exercise the supervisor's
// retry-from-barrier-snapshot path while the campaign runs. Like its
// fault-free sibling, the result — incident journal included — is a pure
// function of the arguments.
func RunChaoticCampaign(d sqlt.Dialect, stmts int, seed int64, maxLen, workers, epochStmts int, chaosRate float64, chaosSeed int64) (CampaignResult, ChaosStats) {
	s := campaignSeed(seed, FuzzerLEGO, d)
	e := shard.New(shard.Options{
		Core:       core.Options{Dialect: d, Seed: s, Hazards: true, MaxLen: maxLen},
		Workers:    workers,
		EpochStmts: epochStmts,
		ChaosRate:  chaosRate,
		ChaosSeed:  chaosSeed,
	})
	if _, err := e.Run(stmts, shard.RunOptions{}); err != nil {
		// Run can only fail through a Save hook, and none is installed.
		panic(err)
	}
	res := CampaignResult{
		Fuzzer:               FuzzerLEGO,
		Dialect:              d,
		Execs:                e.Execs(),
		Branches:             e.Branches(),
		GenAffinities:        e.GenAffinities(),
		DiscoveredAffinities: e.Affinities(),
		Crashes:              e.Oracle().Crashes(),
		Curve:                e.Curve(),
	}
	return res, ChaosStats{
		Stmts:       e.Stmts(),
		Incidents:   len(e.Incidents()),
		Quarantined: len(e.QuarantinedShards()),
		PlanStats:   e.PlanStats(),
	}
}

// --- formatting helpers ------------------------------------------------

func formatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func pct(newer, older int) string {
	if older == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+d%%", (newer-older)*100/older)
}

func sortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
