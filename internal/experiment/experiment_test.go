package experiment

import (
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// tinyBudgets keep unit tests fast; shape assertions use generous margins.
func tinyBudgets() Budgets { return Budgets{DayStmts: 12000, ContinuousStmts: 30000, Seed: 1} }

func TestRunCampaignAllFuzzers(t *testing.T) {
	for _, f := range []FuzzerName{FuzzerLEGO, FuzzerLEGOMinus, FuzzerSquirrel,
		FuzzerSQLancer, FuzzerSQLsmith, FuzzerLEGORandomSeq, FuzzerLEGONoCovGate} {
		d := sqlt.DialectPostgres
		cr := RunCampaign(f, d, 3000, 1, 0)
		if cr.Fuzzer != f || cr.Dialect != d {
			t.Fatalf("%s: identity fields wrong", f)
		}
		if cr.Branches == 0 {
			t.Fatalf("%s: zero coverage", f)
		}
		if cr.Execs == 0 {
			t.Fatalf("%s: zero executions", f)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	a := RunCampaign(FuzzerLEGO, sqlt.DialectMySQL, 5000, 7, 0)
	b := RunCampaign(FuzzerLEGO, sqlt.DialectMySQL, 5000, 7, 0)
	if a.Branches != b.Branches || a.Bugs() != b.Bugs() || a.GenAffinities != b.GenAffinities {
		t.Fatal("campaigns must be deterministic per seed")
	}
}

func TestCampaignSeedsDiffer(t *testing.T) {
	if campaignSeed(1, FuzzerLEGO, sqlt.DialectMySQL) == campaignSeed(1, FuzzerSquirrel, sqlt.DialectMySQL) {
		t.Fatal("fuzzers must not share RNG streams")
	}
	if campaignSeed(1, FuzzerLEGO, sqlt.DialectMySQL) == campaignSeed(1, FuzzerLEGO, sqlt.DialectMariaDB) {
		t.Fatal("dialects must not share RNG streams")
	}
}

// TestFigure9Shape asserts the paper's coverage ordering: LEGO beats every
// baseline on every dialect. It needs the quick budget — below ~20k
// statements the curves have not separated yet (they cross early in the
// paper's Figure 9 too).
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the quick budget")
	}
	res := Figure9(QuickBudgets())
	for _, d := range sqlt.Dialects() {
		lego := res.Branches[d][FuzzerLEGO]
		for _, base := range []FuzzerName{FuzzerSquirrel, FuzzerSQLancer, FuzzerSQLsmith} {
			bv := res.Branches[d][base]
			if bv < 0 {
				continue
			}
			if lego <= bv {
				t.Errorf("%s: LEGO (%d) must beat %s (%d)", d, lego, base, bv)
			}
		}
	}
	if res.Branches[sqlt.DialectMySQL][FuzzerSQLsmith] != -1 {
		t.Error("SQLsmith must be excluded outside PostgreSQL")
	}
	out := res.Format()
	if !strings.Contains(out, "LEGO vs") {
		t.Error("Format must include the improvement ratios")
	}
}

// TestTable2Shape asserts the affinity-abundance ordering: LEGO >> SQLancer
// > SQUIRREL in total (the paper's 3707 / 770 / 119).
func TestTable2Shape(t *testing.T) {
	res := Table2(tinyBudgets())
	tot := res.Totals()
	if !(tot[FuzzerLEGO] > tot[FuzzerSQLancer] && tot[FuzzerSQLancer] > tot[FuzzerSquirrel]) {
		t.Fatalf("affinity ordering broken: LEGO=%d SQLancer=%d SQUIRREL=%d",
			tot[FuzzerLEGO], tot[FuzzerSQLancer], tot[FuzzerSquirrel])
	}
	if !strings.Contains(res.Format(), "Table II") {
		t.Error("format header")
	}
}

// TestTable3Shape asserts the bug-count ordering: generation-based fuzzers
// find nothing, SQUIRREL finds a few (MySQL/MariaDB only), LEGO finds the
// most everywhere.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the quick budget")
	}
	res := Table3(QuickBudgets())
	tot := res.Totals()
	if tot[FuzzerSQLancer] != 0 {
		t.Errorf("SQLancer found %d bugs, want 0 (valid-only generation)", tot[FuzzerSQLancer])
	}
	if tot[FuzzerSQLsmith] != 0 {
		t.Errorf("SQLsmith found %d bugs, want 0", tot[FuzzerSQLsmith])
	}
	if tot[FuzzerLEGO] <= tot[FuzzerSquirrel] {
		t.Errorf("LEGO (%d) must beat SQUIRREL (%d)", tot[FuzzerLEGO], tot[FuzzerSquirrel])
	}
	if res.Bugs[sqlt.DialectPostgres][FuzzerSquirrel] != 0 ||
		res.Bugs[sqlt.DialectComdb2][FuzzerSquirrel] != 0 {
		t.Error("SQUIRREL's bugs are confined to MySQL/MariaDB, as in the paper")
	}
}

// TestTable4Shape asserts the ablation direction: LEGO strictly beats LEGO-
// on affinities and branches for every dialect, and Comdb2 (fewest types)
// gains least.
func TestTable4Shape(t *testing.T) {
	res := Table4(tinyBudgets())
	minImprove, maxImprove := 1<<30, -1
	var minDialect sqlt.Dialect
	for _, d := range sqlt.Dialects() {
		if res.AffLego[d] <= res.AffMinus[d] {
			t.Errorf("%s: affinity increment missing (%d vs %d)", d, res.AffLego[d], res.AffMinus[d])
		}
		if res.BrLego[d] <= res.BrMinus[d] {
			t.Errorf("%s: branch improvement missing (%d vs %d)", d, res.BrLego[d], res.BrMinus[d])
		}
		imp := (res.BrLego[d] - res.BrMinus[d]) * 100 / res.BrMinus[d]
		if imp < minImprove {
			minImprove, minDialect = imp, d
		}
		if imp > maxImprove {
			maxImprove = imp
		}
	}
	if minDialect != sqlt.DialectComdb2 {
		t.Logf("note: smallest improvement on %s, paper has Comdb2 (budget-dependent)", minDialect)
	}
	if res.Types[sqlt.DialectComdb2] != 24 {
		t.Error("Comdb2 type count must be 24")
	}
}

func TestTable1CountsAgainstSeededCorpus(t *testing.T) {
	res := Table1(tinyBudgets())
	if res.Total == 0 {
		t.Fatal("continuous fuzzing must find bugs")
	}
	for _, d := range sqlt.Dialects() {
		if res.PerDialect[d] > res.Seeded[d] {
			t.Errorf("%s: found %d > seeded %d", d, res.PerDialect[d], res.Seeded[d])
		}
	}
	if res.Seeded[sqlt.DialectPostgres] != 6 || res.Seeded[sqlt.DialectMySQL] != 21 ||
		res.Seeded[sqlt.DialectMariaDB] != 42 || res.Seeded[sqlt.DialectComdb2] != 33 {
		t.Error("seeded corpus must match Table I's 6/21/42/33")
	}
	if !strings.Contains(res.Format(), "Table I") {
		t.Error("format header")
	}
}

func TestLengthStudyRuns(t *testing.T) {
	b := tinyBudgets()
	b.DayStmts = 6000
	res := LengthStudy(b)
	if len(res.Lens) != 3 {
		t.Fatal("three lengths")
	}
	for _, l := range res.Lens {
		if res.Bugs[l] == 0 {
			t.Errorf("LEN=%d found no bugs at all", l)
		}
	}
	if !strings.Contains(res.Format(), "LEN=5") {
		t.Error("format rows")
	}
}

func TestFormattingHelpers(t *testing.T) {
	tbl := formatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(tbl, "---") {
		t.Error("separator missing")
	}
	if pct(120, 100) != "+20%" {
		t.Errorf("pct = %q", pct(120, 100))
	}
	if pct(80, 100) != "-20%" {
		t.Errorf("pct = %q", pct(80, 100))
	}
	if pct(1, 0) != "n/a" {
		t.Error("pct zero base")
	}
}
