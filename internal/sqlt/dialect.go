package sqlt

import "sort"

// Dialect identifies one target DBMS profile. Profiles gate which statement
// types the target accepts, mirroring the four DBMSs of the paper's
// evaluation. The type counts scale the paper's 188/158/160/24 down to the
// taxonomy in this package while preserving the ordering that drives the
// Table IV correlation (more types -> more affinity headroom).
type Dialect uint8

// The four evaluated targets.
const (
	DialectPostgres Dialect = iota
	DialectMySQL
	DialectMariaDB
	DialectComdb2
	numDialects
)

// Dialects returns all dialect profiles in evaluation order.
func Dialects() []Dialect {
	return []Dialect{DialectPostgres, DialectMySQL, DialectMariaDB, DialectComdb2}
}

// String returns the display name used in the paper's tables.
func (d Dialect) String() string {
	switch d {
	case DialectPostgres:
		return "PostgreSQL"
	case DialectMySQL:
		return "MySQL"
	case DialectMariaDB:
		return "MariaDB"
	case DialectComdb2:
		return "Comdb2"
	default:
		return "Dialect(?)"
	}
}

// postgres-only and mysql-family-only feature sets. Everything not excluded
// is shared.
var pgOnly = []Type{
	CreateMaterializedView, DropMaterializedView, RefreshMaterializedView,
	CreateRule, DropRule,
	CreateDomain, DropDomain,
	CreateType, DropType,
	CreateExtension, DropExtension,
	CopyTo, CopyFrom,
	Vacuum, Cluster, Checkpoint, Discard,
	Listen, Notify, Unlisten,
	Merge, Do, TableStmt, SelectInto,
	DeclareCursor, Fetch, CloseCursor,
	SetRole, CommentOn, Reindex,
}

var mysqlFamilyOnly = []Type{
	Replace, LoadData, RenameTable, Use, Describe,
	OptimizeTable, CheckTable, Flush,
}

// mariaDBExtra are the few types MariaDB supports beyond stock MySQL in this
// taxonomy (MariaDB kept features and added some of its own).
var mariaDBExtra = []Type{Do, Merge, Reindex, SelectInto}

// comdb2Types is the deliberately small Comdb2 profile: exactly 24 types,
// matching the paper's Table IV type count for Comdb2.
var comdb2Types = []Type{
	CreateTable, AlterTable, DropTable,
	CreateIndex, DropIndex,
	CreateView, DropView,
	CreateProcedure, DropProcedure,
	Insert, Update, Delete, Truncate,
	Select, WithSelect, ValuesStmt, Explain,
	Begin, Commit, Rollback,
	SetVar, Pragma, Analyze, Grant,
}

var dialectTypes = func() [numDialects][]Type {
	var out [numDialects][]Type

	excludeFromPG := toSet(mysqlFamilyOnly)
	// PostgreSQL additionally lacks PRAGMA.
	excludeFromPG[Pragma] = true

	excludeFromMySQL := toSet(pgOnly)
	excludeFromMySQL[Pragma] = true

	for _, t := range All() {
		if !excludeFromPG[t] {
			out[DialectPostgres] = append(out[DialectPostgres], t)
		}
		if !excludeFromMySQL[t] {
			out[DialectMySQL] = append(out[DialectMySQL], t)
		}
	}
	// MariaDB = MySQL profile + extras.
	out[DialectMariaDB] = append([]Type(nil), out[DialectMySQL]...)
	for _, t := range mariaDBExtra {
		if !contains(out[DialectMariaDB], t) {
			out[DialectMariaDB] = append(out[DialectMariaDB], t)
		}
	}
	sort.Slice(out[DialectMariaDB], func(i, j int) bool {
		return out[DialectMariaDB][i] < out[DialectMariaDB][j]
	})
	out[DialectComdb2] = append([]Type(nil), comdb2Types...)
	sort.Slice(out[DialectComdb2], func(i, j int) bool {
		return out[DialectComdb2][i] < out[DialectComdb2][j]
	})
	return out
}()

var dialectTypeSet = func() [numDialects]map[Type]bool {
	var out [numDialects]map[Type]bool
	for d := Dialect(0); d < numDialects; d++ {
		out[d] = toSet(dialectTypes[d])
	}
	return out
}()

func toSet(ts []Type) map[Type]bool {
	m := make(map[Type]bool, len(ts))
	for _, t := range ts {
		m[t] = true
	}
	return m
}

func contains(ts []Type, t Type) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// Types returns the statement types the dialect accepts, in stable order.
// The returned slice must not be mutated.
func (d Dialect) Types() []Type {
	if d >= numDialects {
		return nil
	}
	return dialectTypes[d]
}

// Supports reports whether the dialect accepts statement type t.
func (d Dialect) Supports(t Type) bool {
	if d >= numDialects {
		return false
	}
	return dialectTypeSet[d][t]
}

// NumStatementTypes is the size of the dialect's type profile (the "Types"
// column of Table IV).
func (d Dialect) NumStatementTypes() int { return len(d.Types()) }
