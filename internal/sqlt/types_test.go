package sqlt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllTypesHaveNamesAndCategories(t *testing.T) {
	seen := map[string]Type{}
	for _, ty := range All() {
		if !ty.Valid() {
			t.Errorf("All() returned invalid type %d", ty)
		}
		name := ty.String()
		if name == "" || name == "INVALID" {
			t.Errorf("type %d has no name", ty)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("duplicate name %q for %d and %d", name, prev, ty)
		}
		seen[name] = ty
		if ty.Category() == CatInvalid {
			t.Errorf("type %s has no category", name)
		}
	}
	if len(seen) != NumTypes {
		t.Fatalf("got %d named types, want %d", len(seen), NumTypes)
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, ty := range All() {
		if got := ByName(ty.String()); got != ty {
			t.Errorf("ByName(%q) = %v, want %v", ty.String(), got, ty)
		}
	}
	if ByName("NO SUCH STATEMENT") != Invalid {
		t.Error("unknown name should map to Invalid")
	}
}

func TestInvalidTypeBehaviour(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid must not be valid")
	}
	if Type(9999).Category() != CatInvalid {
		t.Error("out-of-range type must have CatInvalid")
	}
	if Type(9999).String() == "" {
		t.Error("out-of-range type must still render")
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		CatDDL: "DDL", CatDQL: "DQL", CatDML: "DML",
		CatDCL: "DCL", CatTCL: "TCL", CatSession: "Session",
		CatInvalid: "Invalid",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%v.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestCategoryMembership(t *testing.T) {
	cases := map[Type]Category{
		CreateTable: CatDDL,
		DropView:    CatDDL,
		Insert:      CatDML,
		CopyFrom:    CatDML,
		Select:      CatDQL,
		WithDML:     CatDQL,
		Grant:       CatDCL,
		Begin:       CatTCL,
		LockTable:   CatTCL,
		SetVar:      CatSession,
		Notify:      CatSession,
	}
	for ty, want := range cases {
		if got := ty.Category(); got != want {
			t.Errorf("%s category = %v, want %v", ty, got, want)
		}
	}
}

func TestDialectProfiles(t *testing.T) {
	// paper Table IV type-count ordering: PostgreSQL > MariaDB > MySQL >> Comdb2
	pg := DialectPostgres.NumStatementTypes()
	my := DialectMySQL.NumStatementTypes()
	ma := DialectMariaDB.NumStatementTypes()
	co := DialectComdb2.NumStatementTypes()
	if !(pg > ma && ma > my && my > co) {
		t.Fatalf("type-count ordering broken: pg=%d mariadb=%d mysql=%d comdb2=%d", pg, ma, my, co)
	}
	if co != 24 {
		t.Fatalf("Comdb2 must have exactly 24 types (paper Table IV), got %d", co)
	}
}

func TestDialectGatingExamples(t *testing.T) {
	cases := []struct {
		d    Dialect
		ty   Type
		want bool
	}{
		{DialectPostgres, Notify, true},
		{DialectPostgres, Replace, false},
		{DialectPostgres, Pragma, false},
		{DialectMySQL, Replace, true},
		{DialectMySQL, Notify, false},
		{DialectMySQL, CopyTo, false},
		{DialectMariaDB, Do, true},
		{DialectMariaDB, SelectInto, true},
		{DialectMySQL, SelectInto, false},
		{DialectComdb2, Pragma, true},
		{DialectComdb2, CreateTrigger, false},
		{DialectComdb2, Select, true},
	}
	for _, c := range cases {
		if got := c.d.Supports(c.ty); got != c.want {
			t.Errorf("%s.Supports(%s) = %v, want %v", c.d, c.ty, got, c.want)
		}
	}
}

func TestDialectTypesConsistent(t *testing.T) {
	for _, d := range Dialects() {
		seen := map[Type]bool{}
		for _, ty := range d.Types() {
			if !ty.Valid() {
				t.Errorf("%s profile contains invalid type", d)
			}
			if seen[ty] {
				t.Errorf("%s profile lists %s twice", d, ty)
			}
			seen[ty] = true
			if !d.Supports(ty) {
				t.Errorf("%s.Supports(%s) = false but listed in Types()", d, ty)
			}
		}
		if len(seen) != d.NumStatementTypes() {
			t.Errorf("%s: NumStatementTypes mismatch", d)
		}
	}
}

func TestSequenceString(t *testing.T) {
	s := Sequence{CreateTable, Insert, Select}
	want := "CREATE TABLE -> INSERT -> SELECT"
	if s.String() != want {
		t.Fatalf("got %q, want %q", s.String(), want)
	}
	if (Sequence{}).String() != "(empty)" {
		t.Fatal("empty sequence rendering")
	}
}

func TestSequenceOps(t *testing.T) {
	s := Sequence{CreateTable, Insert, Insert, Select}
	if !s.Equal(s.Clone()) {
		t.Fatal("clone must equal original")
	}
	c := s.Clone()
	c[0] = DropTable
	if s.Equal(c) {
		t.Fatal("clone must be independent")
	}
	if !s.Contains(Insert, Select) {
		t.Fatal("expected adjacent pair Insert->Select")
	}
	if s.Contains(Select, Insert) {
		t.Fatal("pair order must matter")
	}
	if s.Equal(Sequence{CreateTable}) {
		t.Fatal("length mismatch must not be equal")
	}
}

// Property: cloning never changes equality; Contains(a,b) implies the pair
// occurs adjacently.
func TestSequenceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Sequence {
		n := rng.Intn(8)
		s := make(Sequence, n)
		all := All()
		for i := range s {
			s[i] = all[rng.Intn(len(all))]
		}
		return s
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	f := func() bool {
		s := gen()
		if !s.Equal(s.Clone()) {
			return false
		}
		for i := 0; i+1 < len(s); i++ {
			if !s.Contains(s[i], s[i+1]) {
				return false
			}
		}
		return true
	}
	for i := 0; i < cfg.MaxCount; i++ {
		if !f() {
			t.Fatal("sequence property violated")
		}
	}
}
