// Package sqlt defines the SQL statement-type taxonomy at the heart of
// sequence-oriented fuzzing.
//
// A statement type is "one certain kind of specific operation on a certain
// type of object" (paper §II): CREATE TABLE and CREATE VIEW are distinct
// types. A SQL Type Sequence is the sequence of such types across the
// statements of a test case; type-affinities are chronological relations
// between adjacent types. This package enumerates the types, assigns each a
// category (DDL/DQL/DML/DCL/TCL/session), and defines the per-DBMS dialect
// profiles that gate which types a target accepts.
package sqlt

import "fmt"

// Type identifies one SQL statement type. The zero value is Invalid.
type Type uint16

// Category is the coarse classification of statement types (paper §II).
type Category uint8

// Statement categories.
const (
	CatInvalid Category = iota
	CatDDL              // data definition: CREATE/ALTER/DROP/...
	CatDQL              // data query: SELECT and friends
	CatDML              // data manipulation: INSERT/UPDATE/DELETE/...
	CatDCL              // data control: GRANT/REVOKE/...
	CatTCL              // transaction control: BEGIN/COMMIT/...
	CatSession          // session and utility statements: SET/SHOW/PRAGMA/...
)

// String returns the conventional name of the category.
func (c Category) String() string {
	switch c {
	case CatDDL:
		return "DDL"
	case CatDQL:
		return "DQL"
	case CatDML:
		return "DML"
	case CatDCL:
		return "DCL"
	case CatTCL:
		return "TCL"
	case CatSession:
		return "Session"
	default:
		return "Invalid"
	}
}

// The full statement-type taxonomy. Real DBMSs define more (PostgreSQL's
// manual lists 188); this set keeps the breadth that matters for
// sequence-oriented fuzzing — many distinct object×operation pairs whose
// execution depends on session and catalog state built by earlier statements.
const (
	Invalid Type = iota

	// DDL — create.
	CreateTable
	CreateView
	CreateMaterializedView
	CreateIndex
	CreateTrigger
	CreateSequence
	CreateSchema
	CreateFunction
	CreateProcedure
	CreateRule
	CreateDomain
	CreateType
	CreateExtension
	CreateRole
	CreateUser
	CreateDatabase

	// DDL — alter.
	AlterTable
	AlterView
	AlterIndex
	AlterSequence
	AlterRole
	AlterDatabase
	AlterSystem

	// DDL — drop.
	DropTable
	DropView
	DropMaterializedView
	DropIndex
	DropTrigger
	DropSequence
	DropSchema
	DropFunction
	DropProcedure
	DropRule
	DropDomain
	DropType
	DropExtension
	DropRole
	DropUser
	DropDatabase

	// DDL — other.
	RenameTable
	Truncate
	CommentOn
	Reindex
	RefreshMaterializedView

	// DML.
	Insert
	Replace
	Update
	Delete
	Merge
	CopyTo
	CopyFrom
	LoadData
	Call
	Do

	// DQL.
	Select
	SelectInto
	TableStmt
	ValuesStmt
	WithSelect
	WithDML
	Explain
	Show
	Describe

	// DCL.
	Grant
	Revoke
	SetRole

	// TCL.
	Begin
	Commit
	Rollback
	Savepoint
	ReleaseSavepoint
	RollbackToSavepoint
	SetTransaction
	LockTable

	// Session and utility.
	SetVar
	ResetVar
	Pragma
	Use
	Analyze
	Vacuum
	OptimizeTable
	CheckTable
	Flush
	Checkpoint
	Discard
	Prepare
	Execute
	Deallocate
	DeclareCursor
	Fetch
	CloseCursor
	Listen
	Notify
	Unlisten
	Cluster

	numTypes // sentinel; keep last
)

// NumTypes is the number of valid statement types (excluding Invalid).
const NumTypes = int(numTypes) - 1

// typeInfo carries the static metadata of one statement type.
type typeInfo struct {
	name string
	cat  Category
}

var infos = [numTypes]typeInfo{
	Invalid: {"INVALID", CatInvalid},

	CreateTable:            {"CREATE TABLE", CatDDL},
	CreateView:             {"CREATE VIEW", CatDDL},
	CreateMaterializedView: {"CREATE MATERIALIZED VIEW", CatDDL},
	CreateIndex:            {"CREATE INDEX", CatDDL},
	CreateTrigger:          {"CREATE TRIGGER", CatDDL},
	CreateSequence:         {"CREATE SEQUENCE", CatDDL},
	CreateSchema:           {"CREATE SCHEMA", CatDDL},
	CreateFunction:         {"CREATE FUNCTION", CatDDL},
	CreateProcedure:        {"CREATE PROCEDURE", CatDDL},
	CreateRule:             {"CREATE RULE", CatDDL},
	CreateDomain:           {"CREATE DOMAIN", CatDDL},
	CreateType:             {"CREATE TYPE", CatDDL},
	CreateExtension:        {"CREATE EXTENSION", CatDDL},
	CreateRole:             {"CREATE ROLE", CatDDL},
	CreateUser:             {"CREATE USER", CatDDL},
	CreateDatabase:         {"CREATE DATABASE", CatDDL},

	AlterTable:    {"ALTER TABLE", CatDDL},
	AlterView:     {"ALTER VIEW", CatDDL},
	AlterIndex:    {"ALTER INDEX", CatDDL},
	AlterSequence: {"ALTER SEQUENCE", CatDDL},
	AlterRole:     {"ALTER ROLE", CatDDL},
	AlterDatabase: {"ALTER DATABASE", CatDDL},
	AlterSystem:   {"ALTER SYSTEM", CatDDL},

	DropTable:            {"DROP TABLE", CatDDL},
	DropView:             {"DROP VIEW", CatDDL},
	DropMaterializedView: {"DROP MATERIALIZED VIEW", CatDDL},
	DropIndex:            {"DROP INDEX", CatDDL},
	DropTrigger:          {"DROP TRIGGER", CatDDL},
	DropSequence:         {"DROP SEQUENCE", CatDDL},
	DropSchema:           {"DROP SCHEMA", CatDDL},
	DropFunction:         {"DROP FUNCTION", CatDDL},
	DropProcedure:        {"DROP PROCEDURE", CatDDL},
	DropRule:             {"DROP RULE", CatDDL},
	DropDomain:           {"DROP DOMAIN", CatDDL},
	DropType:             {"DROP TYPE", CatDDL},
	DropExtension:        {"DROP EXTENSION", CatDDL},
	DropRole:             {"DROP ROLE", CatDDL},
	DropUser:             {"DROP USER", CatDDL},
	DropDatabase:         {"DROP DATABASE", CatDDL},

	RenameTable:             {"RENAME TABLE", CatDDL},
	Truncate:                {"TRUNCATE", CatDDL},
	CommentOn:               {"COMMENT ON", CatDDL},
	Reindex:                 {"REINDEX", CatDDL},
	RefreshMaterializedView: {"REFRESH MATERIALIZED VIEW", CatDDL},

	Insert:   {"INSERT", CatDML},
	Replace:  {"REPLACE", CatDML},
	Update:   {"UPDATE", CatDML},
	Delete:   {"DELETE", CatDML},
	Merge:    {"MERGE", CatDML},
	CopyTo:   {"COPY TO", CatDML},
	CopyFrom: {"COPY FROM", CatDML},
	LoadData: {"LOAD DATA", CatDML},
	Call:     {"CALL", CatDML},
	Do:       {"DO", CatDML},

	Select:     {"SELECT", CatDQL},
	SelectInto: {"SELECT INTO", CatDQL},
	TableStmt:  {"TABLE", CatDQL},
	ValuesStmt: {"VALUES", CatDQL},
	WithSelect: {"WITH", CatDQL},
	WithDML:    {"WITH DML", CatDQL},
	Explain:    {"EXPLAIN", CatDQL},
	Show:       {"SHOW", CatDQL},
	Describe:   {"DESCRIBE", CatDQL},

	Grant:   {"GRANT", CatDCL},
	Revoke:  {"REVOKE", CatDCL},
	SetRole: {"SET ROLE", CatDCL},

	Begin:               {"BEGIN", CatTCL},
	Commit:              {"COMMIT", CatTCL},
	Rollback:            {"ROLLBACK", CatTCL},
	Savepoint:           {"SAVEPOINT", CatTCL},
	ReleaseSavepoint:    {"RELEASE SAVEPOINT", CatTCL},
	RollbackToSavepoint: {"ROLLBACK TO SAVEPOINT", CatTCL},
	SetTransaction:      {"SET TRANSACTION", CatTCL},
	LockTable:           {"LOCK TABLE", CatTCL},

	SetVar:        {"SET", CatSession},
	ResetVar:      {"RESET", CatSession},
	Pragma:        {"PRAGMA", CatSession},
	Use:           {"USE", CatSession},
	Analyze:       {"ANALYZE", CatSession},
	Vacuum:        {"VACUUM", CatSession},
	OptimizeTable: {"OPTIMIZE TABLE", CatSession},
	CheckTable:    {"CHECK TABLE", CatSession},
	Flush:         {"FLUSH", CatSession},
	Checkpoint:    {"CHECKPOINT", CatSession},
	Discard:       {"DISCARD", CatSession},
	Prepare:       {"PREPARE", CatSession},
	Execute:       {"EXECUTE", CatSession},
	Deallocate:    {"DEALLOCATE", CatSession},
	DeclareCursor: {"DECLARE", CatSession},
	Fetch:         {"FETCH", CatSession},
	CloseCursor:   {"CLOSE", CatSession},
	Listen:        {"LISTEN", CatSession},
	Notify:        {"NOTIFY", CatSession},
	Unlisten:      {"UNLISTEN", CatSession},
	Cluster:       {"CLUSTER", CatSession},
}

// String returns the canonical upper-case name of the type, e.g.
// "CREATE TABLE".
func (t Type) String() string {
	if t >= numTypes {
		return fmt.Sprintf("Type(%d)", uint16(t))
	}
	return infos[t].name
}

// Category returns the coarse classification of t.
func (t Type) Category() Category {
	if t >= numTypes {
		return CatInvalid
	}
	return infos[t].cat
}

// Valid reports whether t names a real statement type.
func (t Type) Valid() bool { return t > Invalid && t < numTypes }

// All returns every valid statement type in declaration order. The returned
// slice is freshly allocated and safe to mutate.
func All() []Type {
	ts := make([]Type, 0, NumTypes)
	for t := Invalid + 1; t < numTypes; t++ {
		ts = append(ts, t)
	}
	return ts
}

// ByName resolves a canonical type name (as produced by Type.String) back to
// the type. It returns Invalid for unknown names.
func ByName(name string) Type {
	return byName[name]
}

var byName = func() map[string]Type {
	m := make(map[string]Type, NumTypes)
	for t := Invalid + 1; t < numTypes; t++ {
		m[infos[t].name] = t
	}
	return m
}()

// Sequence is a SQL Type Sequence: the statement types of a test case in
// execution order (paper §II definition).
type Sequence []Type

// String renders the sequence in the paper's arrow notation, e.g.
// "CREATE TABLE -> INSERT -> SELECT".
func (s Sequence) String() string {
	if len(s) == 0 {
		return "(empty)"
	}
	b := make([]byte, 0, len(s)*12)
	for i, t := range s {
		if i > 0 {
			b = append(b, " -> "...)
		}
		b = append(b, t.String()...)
	}
	return string(b)
}

// Equal reports whether two sequences are element-wise identical.
func (s Sequence) Equal(o Sequence) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// Contains reports whether the adjacent pair (t1, t2) occurs in s.
func (s Sequence) Contains(t1, t2 Type) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == t1 && s[i+1] == t2 {
			return true
		}
	}
	return false
}
