// Package profiling wires the standard pprof profiles into the CLI
// binaries. It exists so legofuzz and benchall share one implementation of
// the -cpuprofile/-memprofile contract: CPU profiling runs for the whole
// command, the heap profile is written at stop after a final GC.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two flag values; either may be
// empty. The returned stop function flushes and closes the profiles and
// must be called exactly once, on every exit path that should produce a
// usable profile (a deferred call in main is the usual shape).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
