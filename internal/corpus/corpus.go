// Package corpus maintains the seed pool of a coverage-guided fuzzing
// campaign: seeds that covered new branches are retained and scheduled for
// further mutation, weighted by how much novelty they contributed.
package corpus

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Seed is one retained test case.
type Seed struct {
	ID       int
	TC       sqlast.TestCase
	NewEdges int // edges this seed contributed when added
	Picked   int // times scheduled
}

// Types returns the seed's SQL Type Sequence.
func (s *Seed) Types() sqlt.Sequence { return s.TC.Types() }

// Pool is the seed pool. Selection is weighted toward seeds that brought
// more new edges and against seeds already scheduled many times, a
// lightweight version of AFL++'s favored-seed scheduling.
type Pool struct {
	rng   *rand.Rand
	seeds []*Seed
}

// NewPool returns an empty pool.
func NewPool(rng *rand.Rand) *Pool { return &Pool{rng: rng} }

// Add retains a test case, recording how many new edges it contributed.
func (p *Pool) Add(tc sqlast.TestCase, newEdges int) *Seed {
	s := &Seed{ID: len(p.seeds), TC: tc, NewEdges: newEdges}
	p.seeds = append(p.seeds, s)
	return s
}

// Len returns the pool size.
func (p *Pool) Len() int { return len(p.seeds) }

// Import replaces the pool's contents with restored seeds, reassigning IDs
// by position so restored pools schedule identically to the originals.
func (p *Pool) Import(seeds []*Seed) {
	p.seeds = make([]*Seed, len(seeds))
	for i, s := range seeds {
		s.ID = i
		p.seeds[i] = s
	}
}

// Select schedules one seed; it returns nil when the pool is empty.
func (p *Pool) Select() *Seed {
	if len(p.seeds) == 0 {
		return nil
	}
	// Tournament of 3: pick the candidate with the best score.
	best := p.seeds[p.rng.Intn(len(p.seeds))]
	for i := 0; i < 2; i++ {
		c := p.seeds[p.rng.Intn(len(p.seeds))]
		if c.score() > best.score() {
			best = c
		}
	}
	best.Picked++
	return best
}

func (s *Seed) score() int { return 1 + s.NewEdges - 2*s.Picked }

// All returns every retained seed in insertion order.
func (p *Pool) All() []*Seed { return p.seeds }

// Since returns the seeds added after the pool held mark entries — the
// per-epoch delta a sharded campaign donates to its sibling shards at a
// merge barrier.
func (p *Pool) Since(mark int) []*Seed {
	if mark >= len(p.seeds) {
		return nil
	}
	return p.seeds[mark:]
}

// Sequences returns the type sequences of all retained seeds.
func (p *Pool) Sequences() []sqlt.Sequence {
	out := make([]sqlt.Sequence, len(p.seeds))
	for i, s := range p.seeds {
		out[i] = s.Types()
	}
	return out
}
