package corpus

import (
	"math/rand"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestEmptyPool(t *testing.T) {
	p := NewPool(rand.New(rand.NewSource(1)))
	if p.Select() != nil {
		t.Fatal("empty pool selects nil")
	}
	if p.Len() != 0 {
		t.Fatal("empty pool length")
	}
}

func TestAddAndSelect(t *testing.T) {
	p := NewPool(rand.New(rand.NewSource(1)))
	tc := sqlparse.MustParseScript("SELECT 1;")
	s := p.Add(tc, 5)
	if s.ID != 0 || s.NewEdges != 5 {
		t.Fatalf("seed = %+v", s)
	}
	got := p.Select()
	if got != s {
		t.Fatal("single-seed pool selects it")
	}
	if got.Picked != 1 {
		t.Fatal("Picked must increment")
	}
}

func TestSelectionPrefersProductiveSeeds(t *testing.T) {
	p := NewPool(rand.New(rand.NewSource(2)))
	weak := p.Add(sqlparse.MustParseScript("SELECT 1;"), 0)
	strong := p.Add(sqlparse.MustParseScript("SELECT 2;"), 100)

	strongPicks := 0
	for i := 0; i < 200; i++ {
		if p.Select() == strong {
			strongPicks++
		}
	}
	if strongPicks < 120 {
		t.Fatalf("strong seed picked only %d/200 times", strongPicks)
	}
	_ = weak
}

func TestPickedPenaltyRotatesSchedule(t *testing.T) {
	p := NewPool(rand.New(rand.NewSource(3)))
	a := p.Add(sqlparse.MustParseScript("SELECT 1;"), 10)
	b := p.Add(sqlparse.MustParseScript("SELECT 2;"), 10)
	seen := map[int]int{}
	for i := 0; i < 100; i++ {
		seen[p.Select().ID]++
	}
	if seen[a.ID] == 0 || seen[b.ID] == 0 {
		t.Fatalf("schedule starved a seed: %v", seen)
	}
}

func TestSequences(t *testing.T) {
	p := NewPool(rand.New(rand.NewSource(4)))
	p.Add(sqlparse.MustParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1);"), 1)
	p.Add(sqlparse.MustParseScript("SELECT 1;"), 1)
	seqs := p.Sequences()
	if len(seqs) != 2 {
		t.Fatalf("sequences = %v", seqs)
	}
	if !seqs[0].Equal(sqlt.Sequence{sqlt.CreateTable, sqlt.Insert}) {
		t.Fatalf("seq0 = %v", seqs[0])
	}
	if len(p.All()) != 2 {
		t.Fatal("All must list both")
	}
}
