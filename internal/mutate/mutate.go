// Package mutate implements LEGO's mutation operators.
//
// Sequence-oriented mutation (paper Algorithm 1) changes the SQL Type
// Sequence of a seed — substituting, inserting, or deleting whole statements
// — and is the exploration engine of proactive affinity analysis.
// Conventional mutation preserves the sequence and perturbs structure and
// data inside individual statements, which is all that mutation-based
// baselines like SQUIRREL do.
package mutate

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Mutator produces mutated test cases. All operations clone the input; the
// seed is never modified.
type Mutator struct {
	Rng  *rand.Rand
	Inst *instantiate.Instantiator
	// Dialect gates which statement types substitution/insertion may pick.
	Dialect sqlt.Dialect
	// MaxStatements caps test-case length so mutants stay fast to execute
	// (the paper's challenge C3).
	MaxStatements int
}

// New returns a mutator.
func New(rng *rand.Rand, inst *instantiate.Instantiator, d sqlt.Dialect) *Mutator {
	return &Mutator{Rng: rng, Inst: inst, Dialect: d, MaxStatements: 12}
}

// randomOtherType picks a dialect type different from t.
func (m *Mutator) randomOtherType(t sqlt.Type) sqlt.Type {
	ts := m.Dialect.Types()
	for tries := 0; tries < 8; tries++ {
		cand := ts[m.Rng.Intn(len(ts))]
		if cand != t {
			return cand
		}
	}
	return ts[0]
}

// SubstituteType implements Algorithm 1's substitution: statement i is
// replaced by a statement of another type, then dependencies are refilled.
func (m *Mutator) SubstituteType(tc sqlast.TestCase, i int) sqlast.TestCase {
	if i < 0 || i >= len(tc) {
		return nil
	}
	out := sqlparse.CloneTestCase(tc)
	newType := m.randomOtherType(out[i].Type())
	out[i] = m.Inst.Statement(newType)
	m.Inst.Fixer.Fix(out)
	return out
}

// InsertAfter implements Algorithm 1's insertion: a statement of a random
// type is added after statement i.
func (m *Mutator) InsertAfter(tc sqlast.TestCase, i int) sqlast.TestCase {
	if i < 0 || i >= len(tc) || len(tc) >= m.MaxStatements {
		return nil
	}
	out := sqlparse.CloneTestCase(tc)
	stmt := m.Inst.Statement(m.randomOtherType(out[i].Type()))
	out = append(out[:i+1], append(sqlast.TestCase{stmt}, out[i+1:]...)...)
	m.Inst.Fixer.Fix(out)
	return out
}

// DeleteAt implements Algorithm 1's deletion: statement i is removed and the
// remaining test case is re-validated.
func (m *Mutator) DeleteAt(tc sqlast.TestCase, i int) sqlast.TestCase {
	if i < 0 || i >= len(tc) || len(tc) <= 1 {
		return nil
	}
	out := sqlparse.CloneTestCase(tc)
	out = append(out[:i], out[i+1:]...)
	m.Inst.Fixer.Fix(out)
	return out
}

// MutateValues is the conventional, sequence-preserving mutation: it clones
// the test case and perturbs literals and clause structure inside one random
// statement. The SQL Type Sequence of the result equals the input's.
func (m *Mutator) MutateValues(tc sqlast.TestCase) sqlast.TestCase {
	if len(tc) == 0 {
		return nil
	}
	out := sqlparse.CloneTestCase(tc)
	i := m.Rng.Intn(len(out))
	m.mutateStatement(out[i])
	sqlast.InvalidateSQL(out[i])
	if m.Rng.Intn(2) == 0 { // occasionally touch a second statement
		j := m.Rng.Intn(len(out))
		m.mutateStatement(out[j])
		sqlast.InvalidateSQL(out[j])
	}
	if m.Rng.Intn(3) != 0 { // semantics-guided refill, SQUIRREL-style
		m.Inst.Fixer.Fix(out)
	}
	return out
}

// mutateStatement perturbs one statement in place.
func (m *Mutator) mutateStatement(s sqlast.Statement) {
	switch st := s.(type) {
	case *sqlast.SelectStmt:
		m.mutateSelect(st)
	case *sqlast.InsertStmt:
		for j := range st.Rows {
			row := st.Rows[j]
			for k := range row {
				row[k] = m.mutateExpr(row[k])
			}
			// arity mutation: growing or shrinking a VALUES tuple is a
			// classic structural mutation and a reliable error-path driver
			switch m.Rng.Intn(6) {
			case 0:
				row = append(row, sqlast.NullLit())
			case 1:
				if len(row) > 1 {
					row = row[:len(row)-1]
				}
			}
			st.Rows[j] = row
		}
		if m.Rng.Intn(4) == 0 {
			st.Ignore = !st.Ignore
		}
	case *sqlast.UpdateStmt:
		for j := range st.Sets {
			st.Sets[j].Value = m.mutateExpr(st.Sets[j].Value)
		}
		st.Where = m.mutateWhere(st.Where)
	case *sqlast.DeleteStmt:
		st.Where = m.mutateWhere(st.Where)
	case *sqlast.CreateTableStmt:
		for j := range st.Cols {
			if m.Rng.Intn(3) == 0 {
				st.Cols[j].TypeName = pick(m.Rng, []string{"INT", "FLOAT", "TEXT", "BOOLEAN", "VARCHAR(100)"})
			}
			if m.Rng.Intn(6) == 0 {
				st.Cols[j].NotNull = !st.Cols[j].NotNull
			}
		}
	case *sqlast.CreateViewStmt:
		m.mutateSelect(st.Query)
	case *sqlast.ExplainStmt:
		m.mutateStatement(st.Stmt)
	case *sqlast.WithStmt:
		for j := range st.CTEs {
			m.mutateStatement(st.CTEs[j].Body)
		}
		m.mutateStatement(st.Body)
	case *sqlast.SetVarStmt:
		st.Value = m.mutateExpr(st.Value)
	case *sqlast.PragmaStmt:
		if st.Value != nil {
			st.Value = m.mutateExpr(st.Value)
		}
	}
}

func (m *Mutator) mutateSelect(q *sqlast.SelectStmt) {
	if q == nil {
		return
	}
	switch m.Rng.Intn(6) {
	case 0:
		q.Distinct = !q.Distinct
	case 1:
		q.Where = m.mutateWhere(q.Where)
	case 2:
		if q.Limit == nil {
			q.Limit = sqlast.IntLit(int64(m.Rng.Intn(20)))
		} else {
			q.Limit = m.mutateExpr(q.Limit)
		}
	case 3:
		if len(q.OrderBy) > 0 {
			j := m.Rng.Intn(len(q.OrderBy))
			q.OrderBy[j].Desc = !q.OrderBy[j].Desc
		} else if len(q.Items) > 0 {
			if _, isStar := q.Items[0].X.(*sqlast.Star); !isStar {
				q.OrderBy = []sqlast.OrderItem{{X: q.Items[0].X}}
			}
		}
	case 4:
		for j := range q.Items {
			if _, isStar := q.Items[j].X.(*sqlast.Star); !isStar {
				q.Items[j].X = m.mutateExpr(q.Items[j].X)
			}
		}
	default:
		q.Where = m.mutateWhere(q.Where)
	}
}

// mutateWhere toggles, replaces, or perturbs a predicate.
func (m *Mutator) mutateWhere(w sqlast.Expr) sqlast.Expr {
	switch {
	case w == nil:
		return &sqlast.Binary{Op: "=", L: &sqlast.ColRef{Name: "c0"}, R: sqlast.IntLit(int64(m.Rng.Intn(10)))}
	case m.Rng.Intn(5) == 0:
		return nil
	default:
		return m.mutateExpr(w)
	}
}

var cmpSwap = map[string]string{"=": "<>", "<>": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}

// mutateExpr perturbs literals and operators within an expression tree.
func (m *Mutator) mutateExpr(x sqlast.Expr) sqlast.Expr {
	if x == nil {
		return nil
	}
	return sqlast.RewriteExpr(x, func(n sqlast.Expr) sqlast.Expr {
		switch v := n.(type) {
		case *sqlast.Literal:
			if m.Rng.Intn(3) != 0 {
				return n
			}
			return m.mutateLiteral(v)
		case *sqlast.Binary:
			if sw, isCmp := cmpSwap[v.Op]; isCmp && m.Rng.Intn(6) == 0 {
				v.Op = sw
			}
			return v
		default:
			return n
		}
	})
}

// mutateLiteral produces boundary values and type confusions — the payload
// of memory-bug fuzzing. Mutated literals frequently make statements error,
// which exercises server error paths that rule-based generators rarely hit.
func (m *Mutator) mutateLiteral(l *sqlast.Literal) sqlast.Expr {
	switch m.Rng.Intn(10) {
	case 0:
		return sqlast.IntLit(0)
	case 1:
		return sqlast.IntLit(-1)
	case 2:
		return sqlast.IntLit(1<<63 - 1)
	case 3:
		return sqlast.IntLit(-(1 << 62))
	case 4:
		return sqlast.NullLit()
	case 5:
		return sqlast.StringLit("")
	case 6:
		return sqlast.StringLit("x' LIKE NULL")
	case 7:
		return sqlast.FloatLit(22471185.000000)
	case 8:
		if l.Kind == sqlast.LitInt {
			return sqlast.IntLit(l.Int + int64(m.Rng.Intn(7)) - 3)
		}
		return sqlast.IntLit(int64(m.Rng.Intn(1000)))
	default:
		return sqlast.BoolLit(m.Rng.Intn(2) == 0)
	}
}

func pick(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }
