package mutate

import (
	"math/rand"
	"testing"

	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func newMutator(seed int64, d sqlt.Dialect) *Mutator {
	rng := rand.New(rand.NewSource(seed))
	inst := instantiate.New(rng, instantiate.NewLibrary(), d)
	return New(rng, inst, d)
}

var seedCase = `
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
INSERT INTO t1 VALUES (2, 1);
UPDATE t1 SET v1 = 1;
SELECT v2 FROM t1 ORDER BY v1;
`

// TestSubstitutionChangesType mirrors Figure 5's substitution: the mutated
// statement has a different type, the rest keep theirs.
func TestSubstitutionChangesType(t *testing.T) {
	m := newMutator(1, sqlt.DialectPostgres)
	tc := sqlparse.MustParseScript(seedCase)
	orig := tc.Types()

	for trial := 0; trial < 20; trial++ {
		out := m.SubstituteType(tc, 3)
		if out == nil {
			t.Fatal("substitution returned nil")
		}
		got := out.Types()
		if len(got) != len(orig) {
			t.Fatalf("length changed: %v", got)
		}
		if got[3] == orig[3] {
			t.Fatalf("trial %d: type at 3 unchanged (%s)", trial, got[3])
		}
	}
	// the input is never modified
	if !tc.Types().Equal(orig) {
		t.Fatal("seed mutated in place")
	}
}

// TestInsertionAddsStatement mirrors Figure 5's insertion.
func TestInsertionAddsStatement(t *testing.T) {
	m := newMutator(2, sqlt.DialectPostgres)
	tc := sqlparse.MustParseScript(seedCase)
	orig := tc.Types()

	out := m.InsertAfter(tc, 3)
	if out == nil {
		t.Fatal("insertion returned nil")
	}
	got := out.Types()
	if len(got) != len(orig)+1 {
		t.Fatalf("length = %d, want %d", len(got), len(orig)+1)
	}
	// prefix [0..3] and the shifted suffix keep their types
	for i := 0; i <= 3; i++ {
		if got[i] != orig[i] {
			t.Fatalf("prefix changed at %d", i)
		}
	}
	for i := 4; i < len(orig); i++ {
		if got[i+1] != orig[i] {
			t.Fatalf("suffix changed at %d", i)
		}
	}
}

// TestDeletionRemovesStatement mirrors Figure 5's deletion, which creates
// the INSERT -> SELECT affinity from the original seed.
func TestDeletionRemovesStatement(t *testing.T) {
	m := newMutator(3, sqlt.DialectPostgres)
	tc := sqlparse.MustParseScript(seedCase)
	out := m.DeleteAt(tc, 3) // remove the UPDATE
	if out == nil {
		t.Fatal("deletion returned nil")
	}
	want := sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Insert, sqlt.Select}
	if !out.Types().Equal(want) {
		t.Fatalf("types = %v, want %v", out.Types(), want)
	}
}

func TestMutationBounds(t *testing.T) {
	m := newMutator(4, sqlt.DialectPostgres)
	tc := sqlparse.MustParseScript(seedCase)
	if m.SubstituteType(tc, -1) != nil || m.SubstituteType(tc, 99) != nil {
		t.Fatal("out-of-range substitution must return nil")
	}
	if m.InsertAfter(tc, 99) != nil {
		t.Fatal("out-of-range insertion must return nil")
	}
	single := sqlparse.MustParseScript("SELECT 1;")
	if m.DeleteAt(single, 0) != nil {
		t.Fatal("deleting the only statement must return nil")
	}
}

func TestInsertionRespectsMaxStatements(t *testing.T) {
	m := newMutator(5, sqlt.DialectPostgres)
	m.MaxStatements = 5
	tc := sqlparse.MustParseScript(seedCase) // exactly 5 statements
	if m.InsertAfter(tc, 0) != nil {
		t.Fatal("insertion past MaxStatements must return nil (challenge C3)")
	}
}

// TestConventionalMutationPreservesSequence is the defining property of
// SQUIRREL-style mutation the paper contrasts against: structure and data
// change, the SQL Type Sequence does not.
func TestConventionalMutationPreservesSequence(t *testing.T) {
	m := newMutator(6, sqlt.DialectMariaDB)
	tc := sqlparse.MustParseScript(seedCase)
	orig := tc.Types()
	changedText := false
	for trial := 0; trial < 50; trial++ {
		out := m.MutateValues(tc)
		if out == nil {
			t.Fatal("MutateValues returned nil")
		}
		if !out.Types().Equal(orig) {
			t.Fatalf("sequence changed: %v", out.Types())
		}
		if out.SQL() != tc.SQL() {
			changedText = true
		}
	}
	if !changedText {
		t.Fatal("50 mutants identical to the seed — mutation is a no-op")
	}
}

func TestSubstitutionRespectsDialect(t *testing.T) {
	m := newMutator(7, sqlt.DialectComdb2)
	tc := sqlparse.MustParseScript(seedCase)
	for trial := 0; trial < 50; trial++ {
		out := m.SubstituteType(tc, 2)
		if out == nil {
			continue
		}
		if !sqlt.DialectComdb2.Supports(out.Types()[2]) {
			t.Fatalf("substituted type %s not in Comdb2 profile", out.Types()[2])
		}
	}
}

func TestMutantsStayParseable(t *testing.T) {
	m := newMutator(8, sqlt.DialectPostgres)
	tc := sqlparse.MustParseScript(seedCase)
	for trial := 0; trial < 100; trial++ {
		var out = m.MutateValues(tc)
		switch trial % 3 {
		case 1:
			out = m.SubstituteType(tc, trial%len(tc))
		case 2:
			out = m.InsertAfter(tc, trial%len(tc))
		}
		if out == nil {
			continue
		}
		if _, err := sqlparse.ParseScript(out.SQL()); err != nil {
			t.Fatalf("mutant unparseable: %v\n%s", err, out.SQL())
		}
	}
}
