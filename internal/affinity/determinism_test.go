package affinity

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestPairsCanonicalOrder asserts that Pairs and Successors return the same
// slices no matter in which order the affinities were inserted — the output
// order must be a function of the set, not of map iteration or insertion
// history. This is the determinism invariant the legolint detrange analyzer
// guards statically.
func TestPairsCanonicalOrder(t *testing.T) {
	types := []sqlt.Type{
		sqlt.CreateTable, sqlt.Insert, sqlt.Select, sqlt.Update,
		sqlt.Delete, sqlt.CreateIndex, sqlt.Analyze, sqlt.DropTable,
	}
	var pairs []Pair
	for _, a := range types {
		for _, b := range types {
			if a != b {
				pairs = append(pairs, Pair{From: a, To: b})
			}
		}
	}

	build := func(order []Pair) *Map {
		m := NewMap()
		for _, p := range order {
			m.Add(p.From, p.To)
		}
		return m
	}

	base := build(pairs)
	want := base.Pairs()
	if len(want) != len(pairs) {
		t.Fatalf("Pairs() = %d entries, want %d", len(want), len(pairs))
	}
	if !sort.SliceIsSorted(want, func(i, j int) bool {
		if want[i].From != want[j].From {
			return want[i].From < want[j].From
		}
		return want[i].To < want[j].To
	}) {
		t.Fatalf("Pairs() not sorted: %v", want)
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Pair(nil), pairs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m := build(shuffled)
		if got := m.Pairs(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Pairs() differs under insertion order %v", trial, shuffled[:4])
		}
		for _, ty := range types {
			if got, wantS := m.Successors(ty), base.Successors(ty); !reflect.DeepEqual(got, wantS) {
				t.Fatalf("trial %d: Successors(%s) = %v, want %v", trial, ty, got, wantS)
			}
		}
	}
}

// TestSuccessorsCanonical asserts the follow-set comes back ascending and
// that the empty set stays nil.
func TestSuccessorsCanonical(t *testing.T) {
	m := NewMap()
	m.Add(sqlt.Select, sqlt.Update)
	m.Add(sqlt.Select, sqlt.Insert)
	m.Add(sqlt.Select, sqlt.Delete)
	succ := m.Successors(sqlt.Select)
	if !sort.SliceIsSorted(succ, func(i, j int) bool { return succ[i] < succ[j] }) {
		t.Fatalf("Successors not sorted: %v", succ)
	}
	if got := m.Successors(sqlt.DropView); got != nil {
		t.Fatalf("Successors of absent type = %v, want nil", got)
	}
}
