package affinity

import (
	"math/rand"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestAddBasics(t *testing.T) {
	m := NewMap()
	if !m.Add(sqlt.CreateTable, sqlt.Insert) {
		t.Fatal("first add must be new")
	}
	if m.Add(sqlt.CreateTable, sqlt.Insert) {
		t.Fatal("repeated add must not be new")
	}
	if !m.Has(sqlt.CreateTable, sqlt.Insert) {
		t.Fatal("Has must see the pair")
	}
	if m.Has(sqlt.Insert, sqlt.CreateTable) {
		t.Fatal("affinities are ordered")
	}
	if m.Count() != 1 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestSelfAffinityRejected(t *testing.T) {
	// Algorithm 2 lines 5-7: adjacent duplicates are skipped.
	m := NewMap()
	if m.Add(sqlt.Insert, sqlt.Insert) {
		t.Fatal("self-affinity must be rejected")
	}
	if m.Add(sqlt.Invalid, sqlt.Insert) || m.Add(sqlt.Insert, sqlt.Invalid) {
		t.Fatal("invalid types must be rejected")
	}
	if m.Count() != 0 {
		t.Fatal("nothing recorded")
	}
}

func TestAnalyzeAlgorithm2(t *testing.T) {
	// The paper's Figure 5 deletion example: CREATE TABLE, INSERT, INSERT,
	// SELECT yields CREATE TABLE->INSERT and INSERT->SELECT (the repeated
	// INSERT is skipped).
	m := NewMap()
	seq := sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Insert, sqlt.Select}
	fresh := m.Analyze(seq)
	if len(fresh) != 2 {
		t.Fatalf("fresh = %v", fresh)
	}
	if !m.Has(sqlt.CreateTable, sqlt.Insert) || !m.Has(sqlt.Insert, sqlt.Select) {
		t.Fatal("expected pairs missing")
	}
	if m.Has(sqlt.Insert, sqlt.Insert) {
		t.Fatal("self pair must be skipped")
	}
	// re-analysis discovers nothing new
	if got := m.Analyze(seq); len(got) != 0 {
		t.Fatalf("re-analysis returned %v", got)
	}
}

func TestAnalyzeSkipsThroughDuplicates(t *testing.T) {
	// A, A, B: lastType stays A through the duplicate, so A->B is learned.
	m := NewMap()
	m.Analyze(sqlt.Sequence{sqlt.Insert, sqlt.Insert, sqlt.Select})
	if !m.Has(sqlt.Insert, sqlt.Select) {
		t.Fatal("A,A,B must learn A->B")
	}
	if m.Count() != 1 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestSuccessorsSorted(t *testing.T) {
	m := NewMap()
	m.Add(sqlt.CreateTable, sqlt.Select)
	m.Add(sqlt.CreateTable, sqlt.Insert)
	m.Add(sqlt.CreateTable, sqlt.Update)
	succ := m.Successors(sqlt.CreateTable)
	if len(succ) != 3 {
		t.Fatalf("successors = %v", succ)
	}
	for i := 1; i < len(succ); i++ {
		if succ[i-1] >= succ[i] {
			t.Fatal("successors must be sorted")
		}
	}
	if m.Successors(sqlt.Delete) != nil {
		t.Fatal("unknown type has no successors")
	}
}

func TestPairsSorted(t *testing.T) {
	m := NewMap()
	m.Add(sqlt.Select, sqlt.Insert)
	m.Add(sqlt.CreateTable, sqlt.Insert)
	m.Add(sqlt.CreateTable, sqlt.Delete)
	pairs := m.Pairs()
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatal("pairs must be sorted")
		}
	}
}

func TestPairString(t *testing.T) {
	p := Pair{From: sqlt.Insert, To: sqlt.CreateTrigger}
	if p.String() != "INSERT -> CREATE TRIGGER" {
		t.Fatalf("got %q", p.String())
	}
}

func TestTally(t *testing.T) {
	seqs := []sqlt.Sequence{
		{sqlt.CreateTable, sqlt.Insert, sqlt.Select},
		{sqlt.CreateTable, sqlt.Insert, sqlt.Select}, // duplicate adds nothing
		{sqlt.CreateTable, sqlt.Select},
	}
	if got := Tally(seqs); got != 3 {
		t.Fatalf("Tally = %d, want 3 (CT->I, I->S, CT->S)", got)
	}
	if Tally(nil) != 0 {
		t.Fatal("empty tally")
	}
}

// Property: Count always equals len(Pairs) and Analyze never records a
// self-pair, for random sequences.
func TestAffinityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	all := sqlt.All()
	m := NewMap()
	for i := 0; i < 500; i++ {
		n := rng.Intn(10)
		seq := make(sqlt.Sequence, n)
		for j := range seq {
			seq[j] = all[rng.Intn(len(all))]
		}
		m.Analyze(seq)
		if m.Count() != len(m.Pairs()) {
			t.Fatalf("count %d != pairs %d", m.Count(), len(m.Pairs()))
		}
	}
	for _, p := range m.Pairs() {
		if p.From == p.To {
			t.Fatalf("self pair recorded: %v", p)
		}
	}
}
