// Package affinity implements type-affinity analysis (paper §III-A,
// Algorithm 2). A type-affinity is the partially ordered tuple
// (type1, type2): statements of type1 can meaningfully be followed by
// statements of type2. Affinities are harvested from the SQL Type Sequences
// of test cases that covered new branches, and drive progressive sequence
// synthesis (package seqsynth).
package affinity

import (
	"sort"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// Pair is one type-affinity (t1 could be followed by t2).
type Pair struct {
	From sqlt.Type
	To   sqlt.Type
}

// String renders the affinity in arrow notation.
func (p Pair) String() string { return p.From.String() + " -> " + p.To.String() }

// Map is the type-affinity map T of Algorithm 2: key statement type ->
// set of statement types that may follow it.
type Map struct {
	m     map[sqlt.Type]map[sqlt.Type]bool
	count int
}

// NewMap returns an empty affinity map.
func NewMap() *Map {
	return &Map{m: map[sqlt.Type]map[sqlt.Type]bool{}}
}

// Add records the affinity t1 -> t2, returning true when it is new.
// Self-affinities (t1 == t2) are rejected, as in Algorithm 2 lines 5-7:
// "composing only one type does not contribute much to the abundance".
func (m *Map) Add(t1, t2 sqlt.Type) bool {
	if t1 == t2 || !t1.Valid() || !t2.Valid() {
		return false
	}
	set, ok := m.m[t1]
	if !ok {
		set = map[sqlt.Type]bool{}
		m.m[t1] = set
	}
	if set[t2] {
		return false
	}
	set[t2] = true
	m.count++
	return true
}

// Has reports whether the affinity t1 -> t2 is recorded.
func (m *Map) Has(t1, t2 sqlt.Type) bool { return m.m[t1][t2] }

// Count returns the number of distinct affinities (the Table II metric).
func (m *Map) Count() int { return m.count }

// sortedKeys returns the map's keys in canonical (ascending) order, so
// every iteration over an affinity set walks it identically in every run —
// the invariant legolint's detrange analyzer enforces.
func sortedKeys[V any](m map[sqlt.Type]V) []sqlt.Type {
	out := make([]sqlt.Type, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Successors returns the recorded follow-set of t in sorted order.
func (m *Map) Successors(t sqlt.Type) []sqlt.Type {
	set := m.m[t]
	if len(set) == 0 {
		return nil
	}
	return sortedKeys(set)
}

// Pairs returns every recorded affinity in sorted order. The order is
// canonical by construction: both key walks iterate sorted keys, so no
// final sort is needed.
func (m *Map) Pairs() []Pair {
	var out []Pair
	for _, t1 := range sortedKeys(m.m) {
		for _, t2 := range sortedKeys(m.m[t1]) {
			out = append(out, Pair{From: t1, To: t2})
		}
	}
	return out
}

// Merge folds every affinity of other into m, returning the pairs that were
// new to m in canonical (sorted) order — the cross-pollination primitive of
// the sharded executor's epoch barrier. Merging is commutative in the final
// pair set; the returned fresh list is deterministic because Pairs walks
// sorted keys.
func (m *Map) Merge(other *Map) []Pair {
	var fresh []Pair
	for _, p := range other.Pairs() {
		if m.Add(p.From, p.To) {
			fresh = append(fresh, p)
		}
	}
	return fresh
}

// Analyze implements Algorithm 2: it parses the SQL Type Sequence of a test
// case and folds every adjacent-pair affinity into the map, returning the
// pairs that were new. Adjacent duplicates are skipped.
func (m *Map) Analyze(seq sqlt.Sequence) []Pair {
	var fresh []Pair
	last := sqlt.Invalid
	for _, cur := range seq {
		if last != sqlt.Invalid {
			if last == cur {
				last = cur
				continue
			}
			if m.Add(last, cur) {
				fresh = append(fresh, Pair{From: last, To: cur})
			}
		}
		last = cur
	}
	return fresh
}

// Tally counts the distinct affinities present in a sequence without
// mutating any map — used to score corpora for the Table II comparison.
func Tally(seqs []sqlt.Sequence) int {
	m := NewMap()
	for _, s := range seqs {
		m.Analyze(s)
	}
	return m.Count()
}
