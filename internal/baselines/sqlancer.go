package baselines

import (
	"math/rand"
	"strconv"

	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// SQLancer is the generation-based baseline. Following the real tool's
// pivoted-query-synthesis workflow, every generated test case sets up a
// small random schema, populates it, and issues several well-formed SELECT
// variants over one pivot row. The custom pattern rules keep statements
// valid but confine the SQL Type Sequences to a handful of shapes — the
// limitation the paper's §V-C discusses.
type SQLancer struct {
	rng    *rand.Rand
	runner *harness.Runner
}

// NewSQLancer builds the baseline.
func NewSQLancer(d sqlt.Dialect, seed int64, hazards bool) *SQLancer {
	return &SQLancer{
		rng:    rand.New(rand.NewSource(seed)),
		runner: harness.NewRunner(d, hazards),
	}
}

// Name implements harness.Fuzzer.
func (s *SQLancer) Name() string { return "SQLancer" }

// Runner implements harness.Fuzzer.
func (s *SQLancer) Runner() *harness.Runner { return s.runner }

// Step implements harness.Fuzzer: generate and execute one rule-based test
// case.
func (s *SQLancer) Step(exhausted func() bool) {
	if exhausted() {
		return
	}
	s.runner.Execute(s.generate())
}

// Run drives the baseline until the budget is consumed.
func (s *SQLancer) Run(budgetStmts int) *harness.Runner {
	exhausted := func() bool { return s.runner.Stmts >= budgetStmts }
	for !exhausted() {
		s.Step(exhausted)
	}
	return s.runner
}

func (s *SQLancer) generate() sqlast.TestCase {
	var tc sqlast.TestCase

	// schema setup: one or two tables with typed columns
	nTables := 1 + s.rng.Intn(2)
	type tinfo struct {
		name    string
		cols    []string
		indexed bool
	}
	var tables []tinfo
	for ti := 0; ti < nTables; ti++ {
		name := "t" + strconv.Itoa(ti)
		nCols := 2 + s.rng.Intn(2)
		var defs []sqlast.ColumnDef
		var cols []string
		for ci := 0; ci < nCols; ci++ {
			cn := "c" + strconv.Itoa(ci)
			cols = append(cols, cn)
			tn := []string{"INT", "FLOAT", "TEXT"}[s.rng.Intn(3)]
			defs = append(defs, sqlast.ColumnDef{Name: cn, TypeName: tn})
		}
		tc = append(tc, &sqlast.CreateTableStmt{Name: name, Cols: defs})
		tables = append(tables, tinfo{name: name, cols: cols})
	}

	randRow := func(cols []string) []sqlast.Expr {
		row := make([]sqlast.Expr, len(cols))
		for ci := range row {
			switch s.rng.Intn(3) {
			case 0:
				row[ci] = sqlast.IntLit(int64(s.rng.Intn(100)))
			case 1:
				row[ci] = sqlast.FloatLit(float64(s.rng.Intn(100)) / 4.0)
			default:
				row[ci] = sqlast.StringLit("s" + strconv.Itoa(s.rng.Intn(10)))
			}
		}
		return row
	}

	// Interleaved action phase: the real tool's generators for INSERT,
	// CREATE INDEX, UPDATE, DELETE and simple SELECT fire in random order,
	// all emitting valid SQL. This is why SQLancer's generated corpora
	// embed many type-affinities (paper Table II) while still exploring few
	// engine states.
	nActions := 4 + s.rng.Intn(8)
	for a := 0; a < nActions; a++ {
		ti := s.rng.Intn(len(tables))
		t := &tables[ti]
		switch s.rng.Intn(6) {
		case 0, 1: // insert is most common
			tc = append(tc, &sqlast.InsertStmt{Table: t.name, Rows: [][]sqlast.Expr{randRow(t.cols)}})
		case 2:
			if !t.indexed {
				t.indexed = true
				tc = append(tc, &sqlast.CreateIndexStmt{
					Name:  "idx" + strconv.Itoa(ti),
					Table: t.name,
					Cols:  []string{t.cols[s.rng.Intn(len(t.cols))]},
				})
			} else {
				tc = append(tc, &sqlast.InsertStmt{Table: t.name, Rows: [][]sqlast.Expr{randRow(t.cols)}})
			}
		case 3:
			tc = append(tc, &sqlast.UpdateStmt{
				Table: t.name,
				Sets: []sqlast.Assignment{{
					Col:   t.cols[s.rng.Intn(len(t.cols))],
					Value: sqlast.IntLit(int64(s.rng.Intn(50))),
				}},
				Where: &sqlast.Binary{Op: "<",
					L: &sqlast.ColRef{Name: t.cols[0]},
					R: sqlast.IntLit(int64(s.rng.Intn(50)))},
			})
		case 4:
			tc = append(tc, &sqlast.DeleteStmt{
				Table: t.name,
				Where: &sqlast.Binary{Op: ">",
					L: &sqlast.ColRef{Name: t.cols[0]},
					R: sqlast.IntLit(int64(90 + s.rng.Intn(20)))},
			})
		default:
			tc = append(tc, &sqlast.SelectStmt{
				Items: []sqlast.SelectItem{{X: &sqlast.Star{}}},
				From:  []sqlast.TableRef{&sqlast.BaseTable{Name: t.name}},
			})
		}
	}

	// pivoted query synthesis: p, NOT p, p IS NULL over a random predicate
	tbl := tables[s.rng.Intn(len(tables))]
	col := tbl.cols[s.rng.Intn(len(tbl.cols))]
	pred := &sqlast.Binary{
		Op: []string{"=", "<", ">", "<="}[s.rng.Intn(4)],
		L:  &sqlast.ColRef{Name: col},
		R:  sqlast.IntLit(int64(s.rng.Intn(100))),
	}
	nQueries := 2 + s.rng.Intn(3)
	for q := 0; q < nQueries; q++ {
		var where sqlast.Expr
		switch q % 3 {
		case 0:
			where = pred
		case 1:
			where = &sqlast.Unary{Op: "NOT", X: pred}
		default:
			where = &sqlast.IsNullExpr{X: pred}
		}
		sel := &sqlast.SelectStmt{
			Items: []sqlast.SelectItem{{X: &sqlast.Star{}}},
			From:  []sqlast.TableRef{&sqlast.BaseTable{Name: tbl.name}},
			Where: where,
		}
		switch s.rng.Intn(5) {
		case 0:
			sel.Items = []sqlast.SelectItem{{X: &sqlast.FuncCall{Name: "COUNT", Star: true}}}
		case 1:
			sel.Distinct = true
		case 2:
			sel.OrderBy = []sqlast.OrderItem{{X: &sqlast.ColRef{Name: tbl.cols[0]}, Desc: s.rng.Intn(2) == 0}}
		case 3:
			sel.Limit = sqlast.IntLit(int64(1 + s.rng.Intn(10)))
		}
		tc = append(tc, sel)
	}
	return tc
}
