package baselines

import (
	"testing"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestSquirrelSmoke(t *testing.T) {
	s := NewSquirrel(sqlt.DialectMariaDB, 1, false)
	r := s.Run(5000)
	if r.Stmts < 5000 {
		t.Fatalf("stmts = %d", r.Stmts)
	}
	if r.Branches() == 0 {
		t.Fatal("no coverage")
	}
	if s.Pool().Len() == 0 {
		t.Fatal("pool must retain seeds")
	}
	if s.Name() != "SQUIRREL" {
		t.Fatal("name")
	}
}

// TestSquirrelPreservesSequences is the paper's central observation about
// mutation-based baselines: every retained seed's SQL Type Sequence already
// existed in the initial corpus, because intra-statement mutation cannot
// change it.
func TestSquirrelPreservesSequences(t *testing.T) {
	s := NewSquirrel(sqlt.DialectMySQL, 2, false)
	s.Run(8000)

	initial := map[string]bool{}
	for _, tc := range harness.InitialSeeds(sqlt.DialectMySQL) {
		initial[tc.Types().String()] = true
	}
	for _, seed := range s.Pool().All() {
		if !initial[seed.Types().String()] {
			t.Fatalf("SQUIRREL invented a new sequence: %v", seed.Types())
		}
	}
}

func TestSQLancerSmoke(t *testing.T) {
	s := NewSQLancer(sqlt.DialectPostgres, 1, false)
	r := s.Run(5000)
	if r.Stmts < 5000 || r.Branches() == 0 {
		t.Fatalf("stmts=%d branches=%d", r.Stmts, r.Branches())
	}
	if s.Name() != "SQLancer" {
		t.Fatal("name")
	}
}

// TestSQLancerGeneratesValidSQL verifies the defining property of the
// rule-based baseline: its statements are semantically valid, so campaigns
// have (near-)zero error rates and never trip cErr-gated hazards.
func TestSQLancerGeneratesValidSQL(t *testing.T) {
	s := NewSQLancer(sqlt.DialectMariaDB, 3, false)
	errors, stmts := 0, 0
	for i := 0; i < 100; i++ {
		tc := s.generate()
		out := s.runner.Eng.RunTestCase(tc)
		errors += out.Errors
		stmts += out.Executed
	}
	if errors != 0 {
		t.Fatalf("%d/%d SQLancer statements errored — rule-based generation must be valid", errors, stmts)
	}
}

func TestSQLancerEmbedsManyAffinities(t *testing.T) {
	// Table II's inversion: SQLancer's corpora contain more distinct
	// affinities than SQUIRREL's (which are frozen to the seed corpus).
	lancer := NewSQLancer(sqlt.DialectMySQL, 4, false)
	lancer.Run(20000)
	squirrel := NewSquirrel(sqlt.DialectMySQL, 4, false)
	squirrel.Run(20000)
	if lancer.Runner().GenAff.Count() <= squirrel.Runner().GenAff.Count() {
		t.Fatalf("SQLancer affinities (%d) must exceed SQUIRREL's (%d)",
			lancer.Runner().GenAff.Count(), squirrel.Runner().GenAff.Count())
	}
}

func TestSQLsmithSmoke(t *testing.T) {
	s := NewSQLsmith(sqlt.DialectPostgres, 1, false)
	r := s.Run(5000)
	if r.Stmts < 5000 || r.Branches() == 0 {
		t.Fatalf("stmts=%d branches=%d", r.Stmts, r.Branches())
	}
	if s.Name() != "SQLsmith" {
		t.Fatal("name")
	}
}

// TestSQLsmithSequenceIsConstant: SQLsmith generates one statement per test
// case over a fixed schema, so its SQL Type Sequence never varies — the
// reason Table II excludes it.
func TestSQLsmithSequenceIsConstant(t *testing.T) {
	s := NewSQLsmith(sqlt.DialectPostgres, 5, false)
	aff := affinity.NewMap()
	base := -1
	for i := 0; i < 50; i++ {
		s.Step(func() bool { return false })
		aff = s.runner.GenAff
		if base == -1 {
			base = aff.Count()
		}
	}
	if aff.Count() != base {
		t.Fatalf("SQLsmith affinity count grew from %d to %d", base, aff.Count())
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	a := NewSQLancer(sqlt.DialectComdb2, 9, true).Run(4000)
	b := NewSQLancer(sqlt.DialectComdb2, 9, true).Run(4000)
	if a.Branches() != b.Branches() || a.Oracle.Count() != b.Oracle.Count() {
		t.Fatal("SQLancer must be deterministic per seed")
	}
	c := NewSquirrel(sqlt.DialectComdb2, 9, true).Run(4000)
	d := NewSquirrel(sqlt.DialectComdb2, 9, true).Run(4000)
	if c.Branches() != d.Branches() {
		t.Fatal("SQUIRREL must be deterministic per seed")
	}
}
