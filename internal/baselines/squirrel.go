// Package baselines re-implements the three comparison fuzzers of the
// paper's evaluation against the same engine, coverage map and bug oracle as
// LEGO, so that Figure 9 and Tables II/III compare strategies rather than
// harnesses:
//
//   - SQUIRREL: coverage-guided mutation that preserves each seed's SQL Type
//     Sequence, mutating structure and data within individual statements
//     with semantics-guided dependency refill.
//   - SQLancer: rule-based generation of valid test cases biased to
//     CREATE/INSERT/SELECT patterns (pivoted-query style), no feedback.
//   - SQLsmith: generation of one deep SELECT per test case over a prepared
//     schema (PostgreSQL only, as in the paper).
package baselines

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/corpus"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/mutate"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Squirrel is the mutation-based baseline. Its loop mirrors LEGO's with the
// sequence-oriented steps removed: select a seed, produce syntax-preserving
// intra-statement mutants, keep those that cover new branches.
type Squirrel struct {
	rng    *rand.Rand
	runner *harness.Runner
	pool   *corpus.Pool
	mut    *mutate.Mutator

	// MutantsPerSeed is how many mutants one iteration derives (default 24,
	// roughly LEGO's per-iteration execution count, for budget fairness).
	MutantsPerSeed int
}

// NewSquirrel builds the baseline and ingests the shared initial seeds.
func NewSquirrel(d sqlt.Dialect, seed int64, hazards bool) *Squirrel {
	rng := rand.New(rand.NewSource(seed))
	lib := instantiate.NewLibrary()
	inst := instantiate.New(rng, lib, d)
	s := &Squirrel{
		rng:            rng,
		runner:         harness.NewRunner(d, hazards),
		pool:           corpus.NewPool(rng),
		mut:            mutate.New(rng, inst, d),
		MutantsPerSeed: 24,
	}
	for _, tc := range harness.InitialSeeds(d) {
		_, newEdges, _ := s.runner.Execute(tc)
		s.pool.Add(tc, newEdges)
	}
	return s
}

// Name implements harness.Fuzzer.
func (s *Squirrel) Name() string { return "SQUIRREL" }

// Runner implements harness.Fuzzer.
func (s *Squirrel) Runner() *harness.Runner { return s.runner }

// Pool exposes the seed pool.
func (s *Squirrel) Pool() *corpus.Pool { return s.pool }

// Step implements harness.Fuzzer: one seed, many intra-statement mutants.
func (s *Squirrel) Step(exhausted func() bool) {
	seed := s.pool.Select()
	if seed == nil {
		return
	}
	for k := 0; k < s.MutantsPerSeed; k++ {
		if exhausted() {
			return
		}
		tc := s.mut.MutateValues(seed.TC)
		if tc == nil {
			continue
		}
		novel, newEdges, _ := s.runner.Execute(tc)
		if novel {
			s.pool.Add(tc, newEdges)
		}
	}
}

// Run drives the baseline until the budget is consumed.
func (s *Squirrel) Run(budgetStmts int) *harness.Runner {
	exhausted := func() bool { return s.runner.Stmts >= budgetStmts }
	for !exhausted() {
		s.Step(exhausted)
	}
	return s.runner
}
