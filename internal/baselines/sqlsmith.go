package baselines

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// SQLsmith is the single-statement generation baseline. The real tool
// connects to an existing database and emits one deep, syntactically
// elaborate SELECT at a time, deliberately leaving the database unchanged;
// it officially supports PostgreSQL only (§V-A). Here the pre-existing
// database is modelled by a fixed schema preamble prepended to every
// generated query — the generated part of each test case is exactly one
// statement, and the SQL Type Sequence never varies.
type SQLsmith struct {
	rng      *rand.Rand
	runner   *harness.Runner
	preamble sqlast.TestCase
}

// sqlsmithSchema is the prepared database the generator queries.
const sqlsmithSchema = `
CREATE TABLE p0 (c0 INT, c1 INT, c2 VARCHAR(100));
CREATE TABLE p1 (c0 INT, c3 FLOAT);
INSERT INTO p0 VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, 'c');
INSERT INTO p1 VALUES (1, 0.5), (2, 1.5);
CREATE VIEW w0 AS SELECT c0, c1 FROM p0;
`

// NewSQLsmith builds the baseline for the PostgreSQL profile.
func NewSQLsmith(d sqlt.Dialect, seed int64, hazards bool) *SQLsmith {
	return &SQLsmith{
		rng:      rand.New(rand.NewSource(seed)),
		runner:   harness.NewRunner(d, hazards),
		preamble: sqlparse.MustParseScript(sqlsmithSchema),
	}
}

// Name implements harness.Fuzzer.
func (s *SQLsmith) Name() string { return "SQLsmith" }

// Runner implements harness.Fuzzer.
func (s *SQLsmith) Runner() *harness.Runner { return s.runner }

// Step implements harness.Fuzzer: one generated SELECT over the prepared
// schema.
func (s *SQLsmith) Step(exhausted func() bool) {
	if exhausted() {
		return
	}
	tc := append(sqlparse.CloneTestCase(s.preamble), s.genSelect(3))
	s.runner.Execute(tc)
}

// Run drives the baseline until the budget is consumed.
func (s *SQLsmith) Run(budgetStmts int) *harness.Runner {
	exhausted := func() bool { return s.runner.Stmts >= budgetStmts }
	for !exhausted() {
		s.Step(exhausted)
	}
	return s.runner
}

var smithTables = []struct {
	name string
	cols []string
}{
	{"p0", []string{"c0", "c1", "c2"}},
	{"p1", []string{"c0", "c3"}},
	{"w0", []string{"c0", "c1"}},
}

func (s *SQLsmith) genSelect(depth int) *sqlast.SelectStmt {
	t := smithTables[s.rng.Intn(len(smithTables))]
	q := &sqlast.SelectStmt{
		From: []sqlast.TableRef{&sqlast.BaseTable{Name: t.name}},
	}
	// deep projection expressions are SQLsmith's specialty
	n := 1 + s.rng.Intn(3)
	for i := 0; i < n; i++ {
		q.Items = append(q.Items, sqlast.SelectItem{X: s.genExpr(t.cols, depth)})
	}
	if s.rng.Intn(2) == 0 {
		q.Where = s.genExpr(t.cols, depth-1)
	}
	if depth > 0 && s.rng.Intn(3) == 0 {
		t2 := smithTables[s.rng.Intn(len(smithTables))]
		q.From = []sqlast.TableRef{&sqlast.JoinRef{
			Kind: sqlast.JoinKind(s.rng.Intn(3)),
			L:    &sqlast.BaseTable{Name: t.name},
			R:    &sqlast.BaseTable{Name: t2.name, Alias: "r"},
			On: &sqlast.Binary{Op: "=",
				L: &sqlast.ColRef{Name: "c0"},
				R: &sqlast.ColRef{Table: "r", Name: "c0"}},
		}}
	}
	if depth > 1 && s.rng.Intn(4) == 0 {
		q.Op = sqlast.SetUnionAll
		q.Right = s.genSelect(depth - 2)
	}
	if s.rng.Intn(3) == 0 {
		q.OrderBy = []sqlast.OrderItem{{X: sqlast.IntLit(1), Desc: s.rng.Intn(2) == 0}}
	}
	if s.rng.Intn(3) == 0 {
		q.Limit = sqlast.IntLit(int64(1 + s.rng.Intn(50)))
	}
	return q
}

func (s *SQLsmith) genExpr(cols []string, depth int) sqlast.Expr {
	if depth <= 0 || s.rng.Intn(3) == 0 {
		if s.rng.Intn(2) == 0 {
			return &sqlast.ColRef{Name: cols[s.rng.Intn(len(cols))]}
		}
		switch s.rng.Intn(4) {
		case 0:
			return sqlast.IntLit(int64(s.rng.Intn(1000) - 500))
		case 1:
			return sqlast.FloatLit(float64(s.rng.Intn(100)) / 3.0)
		case 2:
			return sqlast.StringLit("q")
		default:
			return sqlast.NullLit()
		}
	}
	switch s.rng.Intn(7) {
	case 0:
		return &sqlast.Binary{
			Op: []string{"+", "-", "*", "=", "<", ">", "AND", "OR", "||"}[s.rng.Intn(9)],
			L:  s.genExpr(cols, depth-1), R: s.genExpr(cols, depth-1),
		}
	case 1:
		return &sqlast.FuncCall{
			Name: []string{"ABS", "LENGTH", "LOWER", "UPPER", "COALESCE"}[s.rng.Intn(5)],
			Args: []sqlast.Expr{s.genExpr(cols, depth-1)},
		}
	case 2:
		return &sqlast.CaseExpr{
			Whens: []sqlast.CaseWhen{{Cond: s.genExpr(cols, depth-1), Result: s.genExpr(cols, depth-1)}},
			Else:  s.genExpr(cols, depth-1),
		}
	case 3:
		return &sqlast.CastExpr{X: s.genExpr(cols, depth-1), TypeName: []string{"INT", "TEXT", "FLOAT"}[s.rng.Intn(3)]}
	case 4:
		return &sqlast.Subquery{Query: s.genSelect(0)}
	case 5:
		return &sqlast.IsNullExpr{X: s.genExpr(cols, depth-1)}
	default:
		return &sqlast.InExpr{X: s.genExpr(cols, depth-1),
			List: []sqlast.Expr{sqlast.IntLit(1), sqlast.IntLit(2)}}
	}
}
