package sqlparse

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// roundTripCases maps SQL inputs to the statement type the parser must
// assign. Every statement type in the taxonomy appears at least once; the
// print->parse->print round trip must be a fixed point after one iteration.
var roundTripCases = []struct {
	sql  string
	want sqlt.Type
}{
	{"CREATE TABLE t1 (v1 INT, v2 INT)", sqlt.CreateTable},
	{"CREATE TEMPORARY TABLE t1 (a INT PRIMARY KEY, b VARCHAR(100) NOT NULL)", sqlt.CreateTable},
	{"CREATE TABLE IF NOT EXISTS t2 (a INT UNIQUE, b TEXT DEFAULT 'x', CHECK (a > 0))", sqlt.CreateTable},
	{"CREATE TABLE t3 (a INT REFERENCES t1(v1), PRIMARY KEY (a), FOREIGN KEY (a) REFERENCES t1(v1))", sqlt.CreateTable},
	{"CREATE VIEW v0 AS SELECT v1 FROM t1", sqlt.CreateView},
	{"CREATE OR REPLACE VIEW v0 (c1) AS SELECT v1 FROM t1 WHERE v1 > 3", sqlt.CreateView},
	{"CREATE MATERIALIZED VIEW mv AS SELECT COUNT(*) FROM t1", sqlt.CreateMaterializedView},
	{"CREATE INDEX i1 ON t1 (v1, v2)", sqlt.CreateIndex},
	{"CREATE UNIQUE INDEX i2 ON t1 (v1)", sqlt.CreateIndex},
	{"CREATE TRIGGER tr1 AFTER UPDATE ON t1 FOR EACH ROW INSERT INTO t1 VALUES (1, 2)", sqlt.CreateTrigger},
	{"CREATE TRIGGER tr2 BEFORE DELETE ON t1 FOR EACH ROW UPDATE t1 SET v1 = 0", sqlt.CreateTrigger},
	{"CREATE SEQUENCE s1 START WITH 5 INCREMENT BY 2", sqlt.CreateSequence},
	{"CREATE SCHEMA sch", sqlt.CreateSchema},
	{"CREATE FUNCTION f1(x, y) RETURNS INT AS (x + y)", sqlt.CreateFunction},
	{"CREATE PROCEDURE p1() AS DELETE FROM t1", sqlt.CreateProcedure},
	{"CREATE RULE r1 AS ON INSERT TO t1 DO INSTEAD NOTIFY compression", sqlt.CreateRule},
	{"CREATE OR REPLACE RULE r2 AS ON UPDATE TO t1 DO NOTHING", sqlt.CreateRule},
	{"CREATE DOMAIN d1 AS INT CHECK (VALUE > 0)", sqlt.CreateDomain},
	{"CREATE TYPE mood AS ENUM ('sad', 'ok', 'happy')", sqlt.CreateType},
	{"CREATE EXTENSION pgcrypto", sqlt.CreateExtension},
	{"CREATE ROLE r1 WITH LOGIN", sqlt.CreateRole},
	{"CREATE USER u1", sqlt.CreateUser},
	{"CREATE DATABASE db1", sqlt.CreateDatabase},

	{"ALTER TABLE t1 ADD COLUMN c3 INT", sqlt.AlterTable},
	{"ALTER TABLE t1 DROP COLUMN v2", sqlt.AlterTable},
	{"ALTER TABLE t1 RENAME COLUMN v1 TO w1", sqlt.AlterTable},
	{"ALTER TABLE t1 RENAME TO t9", sqlt.AlterTable},
	{"ALTER TABLE t1 ALTER COLUMN v1 TYPE TEXT", sqlt.AlterTable},
	{"ALTER TABLE t1 ALTER COLUMN v1 SET DEFAULT 7", sqlt.AlterTable},
	{"ALTER VIEW v0 RENAME TO v9", sqlt.AlterView},
	{"ALTER INDEX i1 RENAME TO i9", sqlt.AlterIndex},
	{"ALTER SEQUENCE s1 RESTART WITH 10", sqlt.AlterSequence},
	{"ALTER ROLE r1 WITH NOLOGIN", sqlt.AlterRole},
	{"ALTER DATABASE db1 SET opt", sqlt.AlterDatabase},
	{"ALTER SYSTEM SET max_connections = 10", sqlt.AlterSystem},

	{"DROP TABLE t1", sqlt.DropTable},
	{"DROP TABLE IF EXISTS t1 CASCADE", sqlt.DropTable},
	{"DROP VIEW v0", sqlt.DropView},
	{"DROP MATERIALIZED VIEW mv", sqlt.DropMaterializedView},
	{"DROP INDEX i1", sqlt.DropIndex},
	{"DROP TRIGGER tr1 ON t1", sqlt.DropTrigger},
	{"DROP SEQUENCE s1", sqlt.DropSequence},
	{"DROP SCHEMA sch", sqlt.DropSchema},
	{"DROP FUNCTION f1", sqlt.DropFunction},
	{"DROP PROCEDURE p1", sqlt.DropProcedure},
	{"DROP RULE r1 ON t1", sqlt.DropRule},
	{"DROP DOMAIN d1", sqlt.DropDomain},
	{"DROP TYPE mood", sqlt.DropType},
	{"DROP EXTENSION pgcrypto", sqlt.DropExtension},
	{"DROP ROLE r1", sqlt.DropRole},
	{"DROP USER u1", sqlt.DropUser},
	{"DROP DATABASE db1", sqlt.DropDatabase},

	{"RENAME TABLE t1 TO t2", sqlt.RenameTable},
	{"TRUNCATE TABLE t1", sqlt.Truncate},
	{"COMMENT ON TABLE t1 IS 'users'", sqlt.CommentOn},
	{"REINDEX TABLE t1", sqlt.Reindex},
	{"REFRESH MATERIALIZED VIEW mv", sqlt.RefreshMaterializedView},

	{"INSERT INTO t1 VALUES (1, 'x')", sqlt.Insert},
	{"INSERT IGNORE INTO t1 (v1) VALUES (1), (2)", sqlt.Insert},
	{"INSERT INTO t1 SELECT * FROM t2", sqlt.Insert},
	{"INSERT INTO t1 VALUES (1) ON CONFLICT DO NOTHING", sqlt.Insert},
	{"INSERT INTO t1 VALUES (1) RETURNING v1", sqlt.Insert},
	{"REPLACE INTO t1 VALUES (1, 2)", sqlt.Replace},
	{"UPDATE t1 SET v1 = 1, v2 = v2 + 1 WHERE v1 = 2", sqlt.Update},
	{"UPDATE t1 SET v1 = 0 ORDER BY v2 LIMIT 3", sqlt.Update},
	{"DELETE FROM t1 WHERE v1 BETWEEN 1 AND 10", sqlt.Delete},
	{"DELETE FROM t1 RETURNING v1", sqlt.Delete},
	{"MERGE INTO t1 USING t2 ON t1.v1 = t2.v1 WHEN MATCHED THEN UPDATE SET v2 = 0 WHEN NOT MATCHED THEN INSERT VALUES (1, 2)", sqlt.Merge},
	{"MERGE INTO t1 USING t2 ON t1.v1 = t2.v1 WHEN MATCHED THEN DELETE", sqlt.Merge},
	{"COPY t1 TO STDOUT CSV", sqlt.CopyTo},
	{"COPY (SELECT 32 EXCEPT SELECT v1 + 16 FROM t1) TO STDOUT CSV", sqlt.CopyTo},
	{"COPY t1 FROM STDIN", sqlt.CopyFrom},
	{"LOAD DATA INFILE 'x.csv' INTO TABLE t1", sqlt.LoadData},
	{"CALL p1(1, 'a')", sqlt.Call},
	{"DO (1 + 2)", sqlt.Do},

	{"SELECT * FROM t1", sqlt.Select},
	{"SELECT DISTINCT v1 AS a, t1.v2 FROM t1 WHERE v1 = 1 OR v2 < 3", sqlt.Select},
	{"SELECT v1, COUNT(*) FROM t1 GROUP BY v1 HAVING COUNT(*) > 1 ORDER BY v1 DESC LIMIT 10 OFFSET 2", sqlt.Select},
	{"SELECT t1.v1 FROM t1 JOIN t2 ON t1.v1 = t2.v1 LEFT JOIN t3 ON t2.a = t3.a", sqlt.Select},
	{"SELECT a FROM (SELECT v1 AS a FROM t1) AS sub WHERE a IN (1, 2, 3)", sqlt.Select},
	{"SELECT v1 FROM t1 WHERE EXISTS (SELECT 1 FROM t2) UNION ALL SELECT v1 FROM t3", sqlt.Select},
	{"SELECT CASE WHEN v1 > 0 THEN 'p' ELSE 'n' END FROM t1", sqlt.Select},
	{"SELECT CAST(v1 AS TEXT) FROM t1", sqlt.Select},
	{"SELECT SUM(v1) OVER (PARTITION BY v2 ORDER BY v1) FROM t1", sqlt.Select},
	{"SELECT v1 FROM t1 WHERE v1 NOT IN (SELECT v2 FROM t2)", sqlt.Select},
	{"SELECT v1 FROM t1 WHERE v2 LIKE 'a%' AND v1 IS NOT NULL", sqlt.Select},
	{"SELECT v1 INTO t9 FROM t1", sqlt.SelectInto},
	{"TABLE t1", sqlt.TableStmt},
	{"VALUES (1, 'a'), (2, 'b')", sqlt.ValuesStmt},
	{"WITH c AS (SELECT v1 FROM t1) SELECT * FROM c", sqlt.WithSelect},
	{"WITH v2 AS (INSERT INTO t1 VALUES (0)) DELETE FROM t1 WHERE v1 = 48", sqlt.WithDML},
	{"EXPLAIN SELECT * FROM t1", sqlt.Explain},
	{"EXPLAIN ANALYZE DELETE FROM t1", sqlt.Explain},
	{"SHOW TABLES", sqlt.Show},
	{"DESCRIBE t1", sqlt.Describe},

	{"GRANT SELECT, INSERT ON t1 TO r1", sqlt.Grant},
	{"REVOKE ALL ON t1 FROM r1", sqlt.Revoke},
	{"SET ROLE r1", sqlt.SetRole},

	{"BEGIN", sqlt.Begin},
	{"START TRANSACTION", sqlt.Begin},
	{"COMMIT", sqlt.Commit},
	{"ROLLBACK", sqlt.Rollback},
	{"SAVEPOINT sp1", sqlt.Savepoint},
	{"RELEASE SAVEPOINT sp1", sqlt.ReleaseSavepoint},
	{"ROLLBACK TO SAVEPOINT sp1", sqlt.RollbackToSavepoint},
	{"SET TRANSACTION ISOLATION LEVEL READ COMMITTED", sqlt.SetTransaction},
	{"LOCK TABLE t1 IN EXCLUSIVE MODE", sqlt.LockTable},

	{"SET SESSION sql_mode = 'strict'", sqlt.SetVar},
	{"SET GLOBAL max_heap = 100", sqlt.SetVar},
	{"SET @@SESSION.explicit_for_timestamp = 0", sqlt.SetVar},
	{"RESET sql_mode", sqlt.ResetVar},
	{"PRAGMA foreign_keys = 1", sqlt.Pragma},
	{"PRAGMA cache_info", sqlt.Pragma},
	{"USE db1", sqlt.Use},
	{"ANALYZE t1", sqlt.Analyze},
	{"ANALYZE", sqlt.Analyze},
	{"VACUUM FULL t1", sqlt.Vacuum},
	{"VACUUM", sqlt.Vacuum},
	{"OPTIMIZE TABLE t1", sqlt.OptimizeTable},
	{"CHECK TABLE t1", sqlt.CheckTable},
	{"FLUSH TABLES", sqlt.Flush},
	{"CHECKPOINT", sqlt.Checkpoint},
	{"DISCARD ALL", sqlt.Discard},
	{"PREPARE q1 AS SELECT * FROM t1 WHERE v1 = 5", sqlt.Prepare},
	{"EXECUTE q1", sqlt.Execute},
	{"EXECUTE q1 (1, 2)", sqlt.Execute},
	{"DEALLOCATE q1", sqlt.Deallocate},
	{"DECLARE cur1 CURSOR FOR SELECT * FROM t1", sqlt.DeclareCursor},
	{"FETCH 5 FROM cur1", sqlt.Fetch},
	{"FETCH cur1", sqlt.Fetch},
	{"CLOSE cur1", sqlt.CloseCursor},
	{"LISTEN chan1", sqlt.Listen},
	{"NOTIFY chan1, 'payload'", sqlt.Notify},
	{"NOTIFY compression", sqlt.Notify},
	{"UNLISTEN chan1", sqlt.Unlisten},
	{"CLUSTER t1 USING i1", sqlt.Cluster},
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range roundTripCases {
		tc := tc
		t.Run(tc.sql, func(t *testing.T) {
			s1, err := Parse(tc.sql)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if got := s1.Type(); got != tc.want {
				t.Fatalf("type = %v, want %v", got, tc.want)
			}
			out1 := s1.SQL()
			s2, err := Parse(out1)
			if err != nil {
				t.Fatalf("reparse of %q: %v", out1, err)
			}
			out2 := s2.SQL()
			if out1 != out2 {
				t.Fatalf("round trip not stable:\n  first:  %q\n  second: %q", out1, out2)
			}
			if s2.Type() != tc.want {
				t.Fatalf("reparsed type = %v, want %v", s2.Type(), tc.want)
			}
		})
	}
}

func TestParseScript(t *testing.T) {
	script := `
-- leading comment
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (1, 1);
INSERT INTO t1 VALUES (2, 1);
SELECT v2 FROM t1 WHERE v1 = 1; /* inline */
`
	tc, err := ParseScript(script)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(tc) != 4 {
		t.Fatalf("got %d statements, want 4", len(tc))
	}
	want := sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Insert, sqlt.Select}
	if !tc.Types().Equal(want) {
		t.Fatalf("types = %v, want %v", tc.Types(), want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE t1",
		"CREATE TABLE",
		"CREATE TABLE t1",
		"SELECT FROM WHERE",
		"INSERT INTO",
		"INSERT INTO t1 FOO",
		"DROP",
		"DROP WIDGET w",
		"SELECT * FROM t1 WHERE",
		"CREATE TABLE t1 (a INT' )",
		"UPDATE t1",
		"WITH c AS SELECT 1 SELECT 2",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestTypeOf(t *testing.T) {
	if got := TypeOf("SELECT 1"); got != sqlt.Select {
		t.Fatalf("TypeOf = %v", got)
	}
	if got := TypeOf("not sql at all ("); got != sqlt.Invalid {
		t.Fatalf("TypeOf bad input = %v, want Invalid", got)
	}
}
