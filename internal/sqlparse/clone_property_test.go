// Property tests for the structural clone that replaced clone-by-reparse on
// the hot path. The contract: for every statement the fuzzer can produce,
// the structural clone renders byte-identical SQL, agrees with the old
// render+reparse oracle, shares no mutable memory with the original, and
// mutating a clone never changes the original.
package sqlparse_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/mutate"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestStructuralCloneMatchesReparse drives the structural clone with the
// fuzzer's own generator across every dialect and compares it against the
// render+reparse oracle.
func TestStructuralCloneMatchesReparse(t *testing.T) {
	for _, d := range sqlt.Dialects() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xBEEF))
			g := instantiate.NewGenerator(rng, d)
			for i := 0; i < 2000; i++ {
				s := g.Gen(g.RandomType())
				want := s.SQL()
				structural := s.Clone()
				oracle := sqlparse.CloneStatementByReparse(s)
				if got := structural.SQL(); got != want {
					t.Fatalf("structural clone differs from original:\n  orig:  %s\n  clone: %s", want, got)
				}
				if got := oracle.SQL(); got != want {
					t.Fatalf("reparse oracle differs from original:\n  orig:   %s\n  oracle: %s", want, got)
				}
			}
		})
	}
}

// TestStructuralCloneMatchesReparseOnSeeds runs the same comparison over
// every statement of the shipped seed corpus.
func TestStructuralCloneMatchesReparseOnSeeds(t *testing.T) {
	for _, d := range sqlt.Dialects() {
		for _, tc := range harness.InitialSeeds(d) {
			for _, s := range tc {
				want := s.SQL()
				if got := s.Clone().SQL(); got != want {
					t.Fatalf("structural clone differs on seed statement:\n  orig:  %s\n  clone: %s", want, got)
				}
				if got := sqlparse.CloneStatementByReparse(s).SQL(); got != want {
					t.Fatalf("reparse oracle differs on seed statement: %s", want)
				}
			}
		}
	}
}

// TestStructuralCloneAliasingFree checks, by reflection walk, that a clone
// shares no pointer, slice, or map with its original — the property that
// makes canonical library storage and in-place mutation of clones safe.
func TestStructuralCloneAliasingFree(t *testing.T) {
	rng := rand.New(rand.NewSource(0xA11A5))
	g := instantiate.NewGenerator(rng, sqlt.DialectPostgres)
	for i := 0; i < 500; i++ {
		s := g.Gen(g.RandomType())
		c := s.Clone()
		assertNoSharedMemory(t, s.SQL(), reflect.ValueOf(s), reflect.ValueOf(c))
	}
}

// assertNoSharedMemory fails if a and b reach any common mutable memory.
// Strings are exempt (immutable backing arrays may be shared).
func assertNoSharedMemory(t *testing.T, ctx string, a, b reflect.Value) {
	t.Helper()
	if !a.IsValid() || !b.IsValid() {
		return
	}
	switch a.Kind() {
	case reflect.Ptr:
		if a.IsNil() || b.IsNil() {
			return
		}
		// Zero-size objects (e.g. CheckpointStmt{}) all live at the runtime's
		// canonical address; identical pointers carry no shared state there.
		if a.Type().Elem().Size() == 0 {
			return
		}
		if a.Pointer() == b.Pointer() {
			t.Fatalf("clone shares %s pointer with original\nstatement: %s", a.Type(), ctx)
		}
		assertNoSharedMemory(t, ctx, a.Elem(), b.Elem())
	case reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return
		}
		assertNoSharedMemory(t, ctx, a.Elem(), b.Elem())
	case reflect.Slice:
		if a.IsNil() || b.IsNil() || a.Len() == 0 {
			return
		}
		if a.Pointer() == b.Pointer() {
			t.Fatalf("clone shares %s slice with original\nstatement: %s", a.Type(), ctx)
		}
		for i := 0; i < a.Len() && i < b.Len(); i++ {
			assertNoSharedMemory(t, ctx, a.Index(i), b.Index(i))
		}
	case reflect.Map:
		if a.IsNil() || b.IsNil() {
			return
		}
		if a.Pointer() == b.Pointer() {
			t.Fatalf("clone shares %s map with original\nstatement: %s", a.Type(), ctx)
		}
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			assertNoSharedMemory(t, ctx, a.Field(i), b.Field(i))
		}
	}
}

// TestMutatedCloneLeavesOriginalIntact applies every mutation operator to
// clones of generated test cases and verifies the originals render the same
// SQL before and after — in-place mutation must only ever touch the clone.
func TestMutatedCloneLeavesOriginalIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	inst := instantiate.New(rng, instantiate.NewLibrary(), sqlt.DialectMariaDB)
	m := &mutate.Mutator{Rng: rng, Inst: inst, MaxStatements: 8}
	for i := 0; i < 300; i++ {
		tc := inst.TestCase(sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Update, sqlt.Select})
		before := tc.SQL()
		switch i % 4 {
		case 0:
			m.MutateValues(tc)
		case 1:
			m.SubstituteType(tc, rng.Intn(len(tc)))
		case 2:
			m.InsertAfter(tc, rng.Intn(len(tc)))
		case 3:
			m.DeleteAt(tc, rng.Intn(len(tc)))
		}
		if after := tc.SQL(); after != before {
			t.Fatalf("mutation %d changed the original test case:\n  before: %s\n  after:  %s", i%4, before, after)
		}
	}
}

// TestMemoInvalidation exercises the render memo directly: a cached render
// must be dropped by InvalidateSQL and recomputed from the mutated AST.
func TestMemoInvalidation(t *testing.T) {
	s := sqlparse.MustParseScript(`SELECT a FROM t WHERE a = 1;`)[0].(*sqlast.SelectStmt)
	first := s.SQL() // primes the memo
	s.Items[0].X = &sqlast.ColRef{Name: "b"}
	if got := s.SQL(); got != first {
		t.Fatalf("memo should still serve the cached render before invalidation, got %q", got)
	}
	sqlast.InvalidateSQL(s)
	if got := s.SQL(); got == first {
		t.Fatalf("InvalidateSQL did not drop the cached render: %q", got)
	} else if !strings.Contains(got, "SELECT b") {
		t.Fatalf("unexpected re-render: %q", got)
	}

	// Nested statements: invalidating the outer must reach the subquery.
	w := sqlparse.MustParseScript(`SELECT a FROM t WHERE a IN (SELECT b FROM u);`)[0].(*sqlast.SelectStmt)
	_ = w.SQL()
	in := w.Where.(*sqlast.InExpr)
	in.Query.Items[0].X = &sqlast.ColRef{Name: "c"}
	sqlast.InvalidateSQL(w)
	if got := w.SQL(); !strings.Contains(got, "SELECT c FROM u") {
		t.Fatalf("nested memo not invalidated: %q", got)
	}

	// Clones start cold: mutating a clone immediately re-renders.
	v := sqlparse.MustParseScript(`SELECT a FROM t;`)[0]
	_ = v.SQL()
	cl := v.Clone().(*sqlast.SelectStmt)
	cl.Items[0].X = &sqlast.ColRef{Name: "z"}
	if got := cl.SQL(); got != "SELECT z FROM t" {
		t.Fatalf("clone memo not cold: %q", got)
	}
	if got := v.SQL(); got != "SELECT a FROM t" {
		t.Fatalf("original disturbed by clone mutation: %q", got)
	}
}
