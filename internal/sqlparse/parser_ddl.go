package sqlparse

import (
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqllex"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func (p *parser) createStmt() (sqlast.Statement, error) {
	p.i++ // CREATE
	orReplace := false
	if p.accept("OR") {
		if err := p.expect("REPLACE"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	temp := p.accept("TEMPORARY") || p.accept("TEMP")
	unique := p.accept("UNIQUE")

	switch {
	case p.accept("TABLE"):
		return p.createTable(temp)
	case p.accept("MATERIALIZED"):
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		return p.createView(orReplace, true)
	case p.accept("VIEW"):
		return p.createView(orReplace, false)
	case p.accept("INDEX"):
		return p.createIndex(unique)
	case p.accept("TRIGGER"):
		return p.createTrigger()
	case p.accept("SEQUENCE"):
		return p.createSequence()
	case p.accept("SCHEMA"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.CreateSchemaStmt{Name: name}, nil
	case p.accept("FUNCTION"):
		return p.createFunction()
	case p.accept("PROCEDURE"):
		return p.createProcedure()
	case p.accept("RULE"):
		return p.createRule(orReplace)
	case p.accept("DOMAIN"):
		return p.createDomain()
	case p.accept("TYPE"):
		return p.createType()
	case p.accept("EXTENSION"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.CreateExtensionStmt{Name: name}, nil
	case p.accept("ROLE"), p.accept("USER"):
		isUser := p.toks[p.i-1].Up == "USER"
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		opt := ""
		if p.accept("WITH") {
			o, err := p.ident()
			if err != nil {
				return nil, err
			}
			opt = strings.ToUpper(o)
		}
		return &sqlast.CreateRoleStmt{Name: name, IsUser: isUser, Option: opt}, nil
	case p.accept("DATABASE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.CreateDatabaseStmt{Name: name}, nil
	default:
		return nil, p.errf("unsupported CREATE object %q", p.peek().Text)
	}
}

func (p *parser) createTable(temp bool) (sqlast.Statement, error) {
	ifNot := false
	if p.accept("IF") {
		if err := p.expect("NOT"); err != nil {
			return nil, err
		}
		if err := p.expect("EXISTS"); err != nil {
			return nil, err
		}
		ifNot = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	st := &sqlast.CreateTableStmt{Name: name, Temp: temp, IfNotExists: ifNot}
	for {
		if p.isKw("PRIMARY") || p.isKw("UNIQUE") && p.peekAt(1).Text == "(" ||
			p.isKw("CHECK") || p.isKw("FOREIGN") {
			tc, err := p.tableConstraint()
			if err != nil {
				return nil, err
			}
			st.Constraints = append(st.Constraints, *tc)
		} else {
			cd, err := p.columnDef()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, *cd)
		}
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) tableConstraint() (*sqlast.TableConstraint, error) {
	switch {
	case p.accept("PRIMARY"):
		if err := p.expect("KEY"); err != nil {
			return nil, err
		}
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		return &sqlast.TableConstraint{Kind: "PRIMARY KEY", Columns: cols}, nil
	case p.accept("UNIQUE"):
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		return &sqlast.TableConstraint{Kind: "UNIQUE", Columns: cols}, nil
	case p.accept("CHECK"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.TableConstraint{Kind: "CHECK", Check: e}, nil
	case p.accept("FOREIGN"):
		if err := p.expect("KEY"); err != nil {
			return nil, err
		}
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		if err := p.expect("REFERENCES"); err != nil {
			return nil, err
		}
		tab, err := p.ident()
		if err != nil {
			return nil, err
		}
		var refCols []string
		if p.peek().Text == "(" {
			refCols, err = p.parenIdentList()
			if err != nil {
				return nil, err
			}
		}
		return &sqlast.TableConstraint{Kind: "FOREIGN KEY", Columns: cols, RefTab: tab, RefCols: refCols}, nil
	default:
		return nil, p.errf("bad table constraint near %q", p.peek().Text)
	}
}

// typeName parses a column type like INT, VARCHAR(100), DOUBLE PRECISION.
func (p *parser) typeName() (string, error) {
	base, err := p.ident()
	if err != nil {
		return "", err
	}
	name := strings.ToUpper(base)
	// two-word types
	if name == "DOUBLE" && p.accept("PRECISION") {
		name = "DOUBLE PRECISION"
	}
	if p.acceptOp("(") {
		n, err := p.intLit()
		if err != nil {
			return "", err
		}
		name += "(" + itoa(n) + ")"
		if p.acceptOp(",") {
			m, err := p.intLit()
			if err != nil {
				return "", err
			}
			name = name[:len(name)-1] + "," + itoa(m) + ")"
		}
		if err := p.expectOp(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	var b [24]byte
	i := len(b)
	u := n
	if neg {
		u = -u
	}
	for u > 0 {
		i--
		b[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func (p *parser) columnDef() (*sqlast.ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tn, err := p.typeName()
	if err != nil {
		return nil, err
	}
	cd := &sqlast.ColumnDef{Name: name, TypeName: tn}
	for {
		switch {
		case p.accept("PRIMARY"):
			if err := p.expect("KEY"); err != nil {
				return nil, err
			}
			cd.PrimaryKey = true
		case p.accept("UNIQUE"):
			cd.Unique = true
		case p.accept("NOT"):
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			cd.NotNull = true
		case p.accept("NULL"):
			// explicit nullable; no-op
		case p.accept("DEFAULT"):
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			cd.Default = e
		case p.accept("CHECK"):
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			cd.Check = e
		case p.accept("REFERENCES"):
			tab, err := p.ident()
			if err != nil {
				return nil, err
			}
			ref := &sqlast.FKRef{Table: tab}
			if p.acceptOp("(") {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				ref.Column = col
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			cd.References = ref
		default:
			return cd, nil
		}
	}
}

func (p *parser) createView(orReplace, materialized bool) (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.peek().Text == "(" {
		cols, err = p.parenIdentList()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateViewStmt{Name: name, OrReplace: orReplace, Materialized: materialized, Cols: cols, Query: q}, nil
}

func (p *parser) createIndex(unique bool) (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parenIdentList()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateIndexStmt{Name: name, Unique: unique, Table: tab, Cols: cols}, nil
}

func (p *parser) createTrigger() (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tt := sqlast.TriggerAfter
	if p.accept("BEFORE") {
		tt = sqlast.TriggerBefore
	} else if err := p.expect("AFTER"); err != nil {
		return nil, err
	}
	ev, err := p.triggerEvent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("FOR"); err != nil {
		return nil, err
	}
	if err := p.expect("EACH"); err != nil {
		return nil, err
	}
	if err := p.expect("ROW"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateTriggerStmt{Name: name, Time: tt, Event: ev, Table: tab, Body: body}, nil
}

func (p *parser) triggerEvent() (sqlast.TriggerEvent, error) {
	switch {
	case p.accept("INSERT"):
		return sqlast.TriggerInsert, nil
	case p.accept("UPDATE"):
		return sqlast.TriggerUpdate, nil
	case p.accept("DELETE"):
		return sqlast.TriggerDelete, nil
	default:
		return 0, p.errf("expected trigger event, got %q", p.peek().Text)
	}
}

func (p *parser) createSequence() (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &sqlast.CreateSequenceStmt{Name: name}
	for {
		switch {
		case p.accept("START"):
			p.accept("WITH")
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			st.Start = n
		case p.accept("INCREMENT"):
			p.accept("BY")
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			st.Inc = n
		default:
			return st, nil
		}
	}
}

func (p *parser) createFunction() (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	if p.peek().Text != ")" {
		params, err = p.identList()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expect("RETURNS"); err != nil {
		return nil, err
	}
	ret, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateFunctionStmt{Name: name, Params: params, Returns: ret, Body: body}, nil
}

func (p *parser) createProcedure() (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateProcedureStmt{Name: name, Body: body}, nil
}

func (p *parser) createRule(orReplace bool) (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	ev, err := p.triggerEvent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("TO"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("DO"); err != nil {
		return nil, err
	}
	instead := p.accept("INSTEAD")
	if p.accept("NOTHING") {
		return &sqlast.CreateRuleStmt{Name: name, OrReplace: orReplace, Event: ev, Table: tab, Instead: instead}, nil
	}
	action, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateRuleStmt{Name: name, OrReplace: orReplace, Event: ev, Table: tab, Instead: instead, Action: action}, nil
}

func (p *parser) createDomain() (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	base, err := p.typeName()
	if err != nil {
		return nil, err
	}
	st := &sqlast.CreateDomainStmt{Name: name, Base: base}
	if p.accept("CHECK") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Check = e
	}
	return st, nil
}

func (p *parser) createType() (sqlast.Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	if err := p.expect("ENUM"); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var vals []string
	for {
		t := p.peek()
		if t.Kind != sqllex.String {
			return nil, p.errf("expected enum string value, got %q", t.Text)
		}
		p.i++
		vals = append(vals, t.Text)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CreateTypeStmt{Name: name, Values: vals}, nil
}

func (p *parser) alterStmt() (sqlast.Statement, error) {
	p.i++ // ALTER
	switch {
	case p.accept("TABLE"):
		return p.alterTable()
	case p.accept("VIEW"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("RENAME"); err != nil {
			return nil, err
		}
		if err := p.expect("TO"); err != nil {
			return nil, err
		}
		nn, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.AlterSimpleStmt{What: sqlt.AlterView, Name: name, NewName: nn}, nil
	case p.accept("INDEX"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("RENAME"); err != nil {
			return nil, err
		}
		if err := p.expect("TO"); err != nil {
			return nil, err
		}
		nn, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.AlterSimpleStmt{What: sqlt.AlterIndex, Name: name, NewName: nn}, nil
	case p.accept("SEQUENCE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("RESTART"); err != nil {
			return nil, err
		}
		p.accept("WITH")
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		return &sqlast.AlterSimpleStmt{What: sqlt.AlterSequence, Name: name, Restart: n}, nil
	case p.accept("ROLE"), p.accept("USER"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("WITH"); err != nil {
			return nil, err
		}
		opt, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.AlterSimpleStmt{What: sqlt.AlterRole, Name: name, Option: strings.ToUpper(opt)}, nil
	case p.accept("DATABASE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("SET"); err != nil {
			return nil, err
		}
		opt, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.AlterSimpleStmt{What: sqlt.AlterDatabase, Name: name, Option: strings.ToUpper(opt)}, nil
	case p.accept("SYSTEM"):
		if err := p.expect("SET"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		v, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &sqlast.AlterSystemStmt{Setting: name, Value: v}, nil
	default:
		return nil, p.errf("unsupported ALTER object %q", p.peek().Text)
	}
}

func (p *parser) alterTable() (sqlast.Statement, error) {
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &sqlast.AlterTableStmt{Table: tab}
	switch {
	case p.accept("ADD"):
		p.accept("COLUMN")
		cd, err := p.columnDef()
		if err != nil {
			return nil, err
		}
		st.Action = sqlast.AlterAddColumn
		st.Col = *cd
	case p.accept("DROP"):
		p.accept("COLUMN")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Action = sqlast.AlterDropColumn
		st.OldName = name
	case p.accept("RENAME"):
		if p.accept("COLUMN") {
			old, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("TO"); err != nil {
				return nil, err
			}
			nn, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Action = sqlast.AlterRenameColumn
			st.OldName, st.NewName = old, nn
		} else {
			if err := p.expect("TO"); err != nil {
				return nil, err
			}
			nn, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Action = sqlast.AlterRenameTable
			st.NewName = nn
		}
	case p.accept("ALTER"):
		p.accept("COLUMN")
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch {
		case p.accept("TYPE"):
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			st.Action = sqlast.AlterColumnType
			st.Col = sqlast.ColumnDef{Name: col, TypeName: tn}
		case p.accept("SET"):
			if err := p.expect("DEFAULT"); err != nil {
				return nil, err
			}
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			st.Action = sqlast.AlterColumnDefault
			st.Col = sqlast.ColumnDef{Name: col, Default: e}
		case p.accept("DROP"):
			if err := p.expect("DEFAULT"); err != nil {
				return nil, err
			}
			st.Action = sqlast.AlterColumnDefault
			st.Col = sqlast.ColumnDef{Name: col}
		default:
			return nil, p.errf("unsupported ALTER COLUMN action %q", p.peek().Text)
		}
	default:
		return nil, p.errf("unsupported ALTER TABLE action %q", p.peek().Text)
	}
	return st, nil
}

var dropObjects = map[string]sqlt.Type{
	"TABLE":     sqlt.DropTable,
	"VIEW":      sqlt.DropView,
	"INDEX":     sqlt.DropIndex,
	"TRIGGER":   sqlt.DropTrigger,
	"SEQUENCE":  sqlt.DropSequence,
	"SCHEMA":    sqlt.DropSchema,
	"FUNCTION":  sqlt.DropFunction,
	"PROCEDURE": sqlt.DropProcedure,
	"RULE":      sqlt.DropRule,
	"DOMAIN":    sqlt.DropDomain,
	"TYPE":      sqlt.DropType,
	"EXTENSION": sqlt.DropExtension,
	"ROLE":      sqlt.DropRole,
	"USER":      sqlt.DropUser,
	"DATABASE":  sqlt.DropDatabase,
}

func (p *parser) dropStmt() (sqlast.Statement, error) {
	p.i++ // DROP
	var what sqlt.Type
	if p.accept("MATERIALIZED") {
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		what = sqlt.DropMaterializedView
	} else {
		t := p.peek()
		w, ok := dropObjects[t.Up]
		if !ok {
			return nil, p.errf("unsupported DROP object %q", t.Text)
		}
		p.i++
		what = w
	}
	st := &sqlast.DropStmt{What: what}
	if p.accept("IF") {
		if err := p.expect("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if what == sqlt.DropTrigger || what == sqlt.DropRule {
		if p.accept("ON") {
			tab, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.OnTable = tab
		}
	}
	if p.accept("CASCADE") {
		st.Cascade = true
	}
	return st, nil
}

func (p *parser) renameTableStmt() (sqlast.Statement, error) {
	p.i++ // RENAME
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	from, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("TO"); err != nil {
		return nil, err
	}
	to, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &sqlast.RenameTableStmt{From: from, To: to}, nil
}

func (p *parser) commentOnStmt() (sqlast.Statement, error) {
	p.i++ // COMMENT
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	kind, err := p.ident()
	if err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// COLUMN comments use table.column form.
	if p.acceptOp(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		name += "." + col
	}
	if err := p.expect("IS"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != sqllex.String {
		return nil, p.errf("expected comment string, got %q", t.Text)
	}
	p.i++
	return &sqlast.CommentOnStmt{ObjectKind: strings.ToUpper(kind), Name: name, Comment: t.Text}, nil
}

func (p *parser) grantStmt() (sqlast.Statement, error) {
	revoke := p.peek().Up == "REVOKE"
	p.i++
	var privs []string
	for {
		t := p.peek()
		if t.Kind != sqllex.Ident {
			return nil, p.errf("expected privilege name, got %q", t.Text)
		}
		p.i++
		privs = append(privs, t.Up)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	link := "TO"
	if revoke {
		link = "FROM"
	}
	if err := p.expect(link); err != nil {
		return nil, err
	}
	role, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &sqlast.GrantStmt{Revoke: revoke, Privs: privs, Table: tab, Role: role}, nil
}

func (p *parser) setStmt() (sqlast.Statement, error) {
	p.i++ // SET
	switch {
	case p.accept("ROLE"):
		role, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.SetRoleStmt{Role: role}, nil
	case p.accept("TRANSACTION"):
		if err := p.expect("ISOLATION"); err != nil {
			return nil, err
		}
		if err := p.expect("LEVEL"); err != nil {
			return nil, err
		}
		var words []string
		for p.peek().Kind == sqllex.Ident {
			w, _ := p.ident()
			words = append(words, strings.ToUpper(w))
		}
		if len(words) == 0 {
			return nil, p.errf("expected isolation level")
		}
		return &sqlast.SetTransactionStmt{Mode: strings.Join(words, " ")}, nil
	default:
		global := false
		switch {
		case p.accept("GLOBAL"):
			global = true
		case p.accept("SESSION"):
		case p.accept("LOCAL"):
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		// MySQL @@SESSION.varname form: the lexer folds @@SESSION into one
		// ident; strip the sigil and consume the dotted tail.
		if strings.HasPrefix(name, "@@") {
			scope := strings.ToUpper(strings.TrimPrefix(name, "@@"))
			if scope == "GLOBAL" {
				global = true
			}
			if p.acceptOp(".") {
				name, err = p.ident()
				if err != nil {
					return nil, err
				}
			} else {
				name = strings.TrimPrefix(name, "@@")
			}
		}
		var val sqlast.Expr
		if p.acceptOp("=") || p.accept("TO") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = v
		} else {
			return nil, p.errf("expected '=' in SET, got %q", p.peek().Text)
		}
		return &sqlast.SetVarStmt{Global: global, Name: name, Value: val}, nil
	}
}
