// Property tests driving the parser with the fuzzer's own statement
// generator: every generated statement must parse, and printing must be a
// fixed point after one round trip. This is the contract the structure
// library and the clone-by-reparse mechanism depend on.
package sqlparse_test

import (
	"math/rand"
	"testing"

	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestGeneratedStatementsRoundTrip(t *testing.T) {
	for _, d := range sqlt.Dialects() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE))
			g := instantiate.NewGenerator(rng, d)
			for i := 0; i < 2000; i++ {
				ty := g.RandomType()
				s := g.Gen(ty)
				sql1 := s.SQL()
				p1, err := sqlparse.Parse(sql1)
				if err != nil {
					t.Fatalf("generated %s does not parse: %v\n%s", ty, err, sql1)
				}
				sql2 := p1.SQL()
				if sql1 != sql2 {
					t.Fatalf("print/parse not a fixed point for %s:\n  1: %s\n  2: %s", ty, sql1, sql2)
				}
				if p1.Type() != ty {
					t.Fatalf("type drift: generated %s, parsed %s\n%s", ty, p1.Type(), sql1)
				}
			}
		})
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := instantiate.NewGenerator(rng, sqlt.DialectPostgres)
	for i := 0; i < 200; i++ {
		s := g.Gen(g.RandomType())
		c := sqlparse.CloneStatement(s)
		if c.SQL() != s.SQL() {
			t.Fatalf("clone differs:\n  orig:  %s\n  clone: %s", s.SQL(), c.SQL())
		}
	}
}

func TestCloneTestCase(t *testing.T) {
	tc := sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
`)
	c := sqlparse.CloneTestCase(tc)
	if c.SQL() != tc.SQL() {
		t.Fatal("test-case clone differs")
	}
	if &c[0] == &tc[0] {
		t.Fatal("clone must not share statement slots")
	}
}
