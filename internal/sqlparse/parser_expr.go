package sqlparse

import (
	"strconv"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqllex"
)

// expr parses a full expression: OR-level precedence and below.
func (p *parser) expr() (sqlast.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpr() (sqlast.Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) notExpr() (sqlast.Expr, error) {
	if p.accept("NOT") {
		// NOT EXISTS folds into the ExistsExpr node.
		if p.isKw("EXISTS") {
			e, err := p.cmpExpr()
			if err != nil {
				return nil, err
			}
			if ex, ok := e.(*sqlast.ExistsExpr); ok {
				ex.Not = !ex.Not
				return ex, nil
			}
			return &sqlast.Unary{Op: "NOT", X: e}, nil
		}
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) cmpExpr() (sqlast.Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.Kind == sqllex.Op && cmpOps[t.Text]:
			p.i++
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			left = &sqlast.Binary{Op: op, L: left, R: right}
		case p.isKw("IS"):
			p.i++
			not := p.accept("NOT")
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			left = &sqlast.IsNullExpr{X: left, Not: not}
		case p.isKw("LIKE"):
			p.i++
			pat, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			left = &sqlast.LikeExpr{X: left, Pattern: pat}
		case p.isKw("BETWEEN"):
			p.i++
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			left = &sqlast.BetweenExpr{X: left, Lo: lo, Hi: hi}
		case p.isKw("IN"):
			p.i++
			in := &sqlast.InExpr{X: left}
			if err := p.fillIn(in); err != nil {
				return nil, err
			}
			left = in
		case p.isKw("NOT"):
			// x NOT LIKE / NOT IN / NOT BETWEEN
			save := p.i
			p.i++
			switch {
			case p.accept("LIKE"):
				pat, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				left = &sqlast.LikeExpr{X: left, Not: true, Pattern: pat}
			case p.accept("BETWEEN"):
				lo, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect("AND"); err != nil {
					return nil, err
				}
				hi, err := p.addExpr()
				if err != nil {
					return nil, err
				}
				left = &sqlast.BetweenExpr{X: left, Not: true, Lo: lo, Hi: hi}
			case p.accept("IN"):
				in := &sqlast.InExpr{X: left, Not: true}
				if err := p.fillIn(in); err != nil {
					return nil, err
				}
				left = in
			default:
				p.i = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) fillIn(in *sqlast.InExpr) error {
	if err := p.expectOp("("); err != nil {
		return err
	}
	if p.isKw("SELECT") {
		q, err := p.selectStmt()
		if err != nil {
			return err
		}
		in.Query = q
	} else {
		list, err := p.exprList()
		if err != nil {
			return err
		}
		in.List = list
	}
	return p.expectOp(")")
}

func (p *parser) addExpr() (sqlast.Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != sqllex.Op || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return left, nil
		}
		p.i++
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: t.Text, L: left, R: right}
	}
}

func (p *parser) mulExpr() (sqlast.Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != sqllex.Op || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.i++
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: t.Text, L: left, R: right}
	}
}

// unaryExpr parses -x, +x, and primaries. Exported within the package for
// DEFAULT clauses, which only allow simple expressions.
func (p *parser) unaryExpr() (sqlast.Expr, error) {
	t := p.peek()
	if t.Kind == sqllex.Op && (t.Text == "-" || t.Text == "+") {
		p.i++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		// fold signed numeric literals
		if lit, ok := x.(*sqlast.Literal); ok && t.Text == "-" {
			switch lit.Kind {
			case sqlast.LitInt:
				lit.Int = -lit.Int
				return lit, nil
			case sqlast.LitFloat:
				lit.Float = -lit.Float
				return lit, nil
			}
		}
		if t.Text == "+" {
			return x, nil
		}
		return &sqlast.Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqllex.Number:
		p.i++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return sqlast.FloatLit(f), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return sqlast.FloatLit(f), nil
		}
		return sqlast.IntLit(n), nil

	case sqllex.String:
		p.i++
		return sqlast.StringLit(t.Text), nil

	case sqllex.Op:
		if t.Text == "(" {
			p.i++
			if p.isKw("SELECT") {
				q, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &sqlast.Subquery{Query: q}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			p.i++
			return &sqlast.Star{}, nil
		}
		return nil, p.errf("unexpected token %q in expression", t.Text)

	case sqllex.Ident:
		switch t.Up {
		case "NULL":
			p.i++
			return sqlast.NullLit(), nil
		case "TRUE":
			p.i++
			return sqlast.BoolLit(true), nil
		case "FALSE":
			p.i++
			return sqlast.BoolLit(false), nil
		case "CASE":
			return p.caseExpr()
		case "CAST":
			p.i++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			tn, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.CastExpr{X: x, TypeName: tn}, nil
		case "EXISTS":
			p.i++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			q, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.ExistsExpr{Query: q}, nil
		}
		// identifier: column ref, qualified ref, or function call
		p.i++
		name := t.Text
		if p.peek().Text == "(" && p.peek().Kind == sqllex.Op {
			return p.funcCall(name)
		}
		if p.acceptOp(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &sqlast.ColRef{Table: name, Name: col}, nil
		}
		return &sqlast.ColRef{Name: name}, nil

	default:
		return nil, p.errf("unexpected end of expression")
	}
}

func (p *parser) funcCall(name string) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &sqlast.FuncCall{Name: strings.ToUpper(name)}
	switch {
	case p.acceptOp("*"):
		fc.Star = true
	case p.peek().Text == ")":
		// no args
	default:
		fc.Distinct = p.accept("DISTINCT")
		args, err := p.exprList()
		if err != nil {
			return nil, err
		}
		fc.Args = args
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if p.accept("OVER") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		w := &sqlast.WindowSpec{}
		if p.accept("PARTITION") {
			if err := p.expect("BY"); err != nil {
				return nil, err
			}
			es, err := p.exprList()
			if err != nil {
				return nil, err
			}
			w.PartitionBy = es
		}
		if p.accept("ORDER") {
			if err := p.expect("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				it := sqlast.OrderItem{X: e}
				if p.accept("DESC") {
					it.Desc = true
				} else {
					p.accept("ASC")
				}
				w.OrderBy = append(w.OrderBy, it)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		fc.Over = w
	}
	return fc, nil
}

func (p *parser) caseExpr() (sqlast.Expr, error) {
	p.i++ // CASE
	ce := &sqlast.CaseExpr{}
	if !p.isKw("WHEN") {
		op, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.accept("WHEN") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		res, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, sqlast.CaseWhen{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.accept("ELSE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expect("END"); err != nil {
		return nil, err
	}
	return ce, nil
}
