package sqlparse

import (
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqllex"
)

func (p *parser) insertStmt() (sqlast.Statement, error) {
	isReplace := p.peek().Up == "REPLACE"
	p.i++
	st := &sqlast.InsertStmt{IsReplace: isReplace}
	if !isReplace {
		// INSERT [LOW_PRIORITY] [IGNORE]
		p.accept("LOW_PRIORITY")
		st.Ignore = p.accept("IGNORE")
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = tab
	if p.peek().Text == "(" && p.peekAt(1).Kind == sqllex.Ident && p.peekAt(2).Text != "(" && !isSelectStart(p.peekAt(1)) {
		cols, err := p.parenIdentList()
		if err != nil {
			return nil, err
		}
		st.Cols = cols
	}
	switch {
	case p.accept("VALUES"):
		p.i-- // valuesRows expects the VALUES keyword
		rows, err := p.valuesRows()
		if err != nil {
			return nil, err
		}
		st.Rows = rows
	case p.isKw("SELECT") || p.isKw("WITH") || p.isKw("TABLE"):
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Query = q
	case p.accept("DEFAULT"):
		if err := p.expect("VALUES"); err != nil {
			return nil, err
		}
		st.Rows = [][]sqlast.Expr{{}}
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT, got %q", p.peek().Text)
	}
	if p.accept("ON") {
		if err := p.expect("CONFLICT"); err != nil {
			return nil, err
		}
		if err := p.expect("DO"); err != nil {
			return nil, err
		}
		if err := p.expect("NOTHING"); err != nil {
			return nil, err
		}
		st.OnConflictDoNothing = true
	}
	if p.accept("RETURNING") {
		exprs, err := p.exprList()
		if err != nil {
			return nil, err
		}
		st.Returning = exprs
	}
	return st, nil
}

func isSelectStart(t sqllex.Token) bool {
	return t.Kind == sqllex.Ident && (t.Up == "SELECT" || t.Up == "WITH" || t.Up == "VALUES")
}

// valuesRows parses VALUES (expr,...),(expr,...).
func (p *parser) valuesRows() ([][]sqlast.Expr, error) {
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]sqlast.Expr
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		if p.peek().Text != ")" {
			exprs, err := p.exprList()
			if err != nil {
				return nil, err
			}
			row = exprs
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.acceptOp(",") {
			return rows, nil
		}
	}
}

func (p *parser) exprList() ([]sqlast.Expr, error) {
	var out []sqlast.Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptOp(",") {
			return out, nil
		}
	}
}

func (p *parser) updateStmt() (sqlast.Statement, error) {
	p.i++ // UPDATE
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	st := &sqlast.UpdateStmt{Table: tab}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, sqlast.Assignment{Col: col, Value: v})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.accept("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	ob, lim, _, err := p.orderLimit()
	if err != nil {
		return nil, err
	}
	st.OrderBy, st.Limit = ob, lim
	return st, nil
}

func (p *parser) deleteStmt() (sqlast.Statement, error) {
	p.i++ // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &sqlast.DeleteStmt{Table: tab}
	if p.accept("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	ob, lim, _, err := p.orderLimit()
	if err != nil {
		return nil, err
	}
	st.OrderBy, st.Limit = ob, lim
	if p.accept("RETURNING") {
		exprs, err := p.exprList()
		if err != nil {
			return nil, err
		}
		st.Returning = exprs
	}
	return st, nil
}

func (p *parser) mergeStmt() (sqlast.Statement, error) {
	p.i++ // MERGE
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	target, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("USING"); err != nil {
		return nil, err
	}
	source, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	on, err := p.expr()
	if err != nil {
		return nil, err
	}
	st := &sqlast.MergeStmt{Target: target, Source: source, On: on}
	sawArm := false
	for p.accept("WHEN") {
		sawArm = true
		if p.accept("MATCHED") {
			if err := p.expect("THEN"); err != nil {
				return nil, err
			}
			if p.accept("DELETE") {
				continue
			}
			if err := p.expect("UPDATE"); err != nil {
				return nil, err
			}
			if err := p.expect("SET"); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp("="); err != nil {
					return nil, err
				}
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				st.MatchedSet = append(st.MatchedSet, sqlast.Assignment{Col: col, Value: v})
				if !p.acceptOp(",") {
					break
				}
			}
		} else {
			if err := p.expect("NOT"); err != nil {
				return nil, err
			}
			if err := p.expect("MATCHED"); err != nil {
				return nil, err
			}
			if err := p.expect("THEN"); err != nil {
				return nil, err
			}
			if err := p.expect("INSERT"); err != nil {
				return nil, err
			}
			if err := p.expect("VALUES"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			vals, err := p.exprList()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			st.NotMatchedVals = vals
		}
	}
	if !sawArm {
		return nil, p.errf("MERGE requires at least one WHEN arm")
	}
	return st, nil
}

func (p *parser) copyStmt() (sqlast.Statement, error) {
	p.i++ // COPY
	st := &sqlast.CopyStmt{}
	if p.acceptOp("(") {
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Query = q
	} else {
		tab, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Table = tab
	}
	switch {
	case p.accept("TO"):
		if err := p.expect("STDOUT"); err != nil {
			return nil, err
		}
	case p.accept("FROM"):
		if err := p.expect("STDIN"); err != nil {
			return nil, err
		}
		st.From = true
	default:
		return nil, p.errf("expected TO or FROM in COPY, got %q", p.peek().Text)
	}
	if p.accept("CSV") {
		st.CSV = true
		p.accept("HEADER")
	}
	return st, nil
}

func (p *parser) loadDataStmt() (sqlast.Statement, error) {
	p.i++ // LOAD
	if err := p.expect("DATA"); err != nil {
		return nil, err
	}
	if err := p.expect("INFILE"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != sqllex.String {
		return nil, p.errf("expected file string, got %q", t.Text)
	}
	p.i++
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	tab, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &sqlast.LoadDataStmt{File: t.Text, Table: tab}, nil
}

func (p *parser) callStmt() (sqlast.Statement, error) {
	p.i++ // CALL
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var args []sqlast.Expr
	if p.peek().Text != ")" {
		args, err = p.exprList()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &sqlast.CallStmt{Name: name, Args: args}, nil
}

// --- SELECT ----------------------------------------------------------------

func (p *parser) selectStmt() (*sqlast.SelectStmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	st := &sqlast.SelectStmt{}
	if p.accept("DISTINCT") {
		st.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, *item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.accept("INTO") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Into = name
	}
	if p.accept("FROM") {
		for {
			ref, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, ref)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.accept("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Where = w
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		gs, err := p.exprList()
		if err != nil {
			return nil, err
		}
		st.GroupBy = gs
	}
	if p.accept("HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Having = h
	}
	// set operations bind before ORDER BY/LIMIT in this grammar
	switch {
	case p.accept("UNION"):
		if p.accept("ALL") {
			st.Op = sqlast.SetUnionAll
		} else {
			st.Op = sqlast.SetUnion
		}
	case p.accept("EXCEPT"):
		st.Op = sqlast.SetExcept
	case p.accept("INTERSECT"):
		st.Op = sqlast.SetIntersect
	}
	if st.Op != sqlast.SetNone {
		r, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Right = r
	}
	ob, lim, off, err := p.orderLimit()
	if err != nil {
		return nil, err
	}
	st.OrderBy, st.Limit, st.Offset = ob, lim, off
	return st, nil
}

func (p *parser) selectItem() (*sqlast.SelectItem, error) {
	// bare `*`
	if p.peek().Text == "*" && p.peek().Kind == sqllex.Op {
		p.i++
		return &sqlast.SelectItem{X: &sqlast.Star{}}, nil
	}
	// t.* — lookahead: ident '.' '*'
	if p.peek().Kind == sqllex.Ident && p.peekAt(1).Text == "." && p.peekAt(2).Text == "*" {
		tab, _ := p.ident()
		p.i += 2
		return &sqlast.SelectItem{X: &sqlast.Star{Table: tab}}, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	item := &sqlast.SelectItem{X: e}
	if p.accept("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		item.Alias = a
	} else if p.peek().Kind == sqllex.Ident && !reservedAfterItem[p.peek().Up] {
		a, _ := p.ident()
		item.Alias = a
	}
	return item, nil
}

// reservedAfterItem lists keywords that end the projection list; a bare
// identifier after an expression is otherwise an implicit alias.
var reservedAfterItem = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "OFFSET": true, "UNION": true, "EXCEPT": true,
	"INTERSECT": true, "INTO": true, "AS": true, "ON": true, "USING": true,
	"JOIN": true, "LEFT": true, "RIGHT": true, "INNER": true, "CROSS": true,
	"RETURNING": true, "DESC": true, "ASC": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "AND": true, "OR": true, "NOT": true,
	"CSV": true, "TO": true, "STDOUT": true, "VALUES": true, "SET": true,
	"FOR": true, "DO": true, "WITH": true,
}

func (p *parser) tableRef() (sqlast.TableRef, error) {
	left, err := p.simpleTableRef()
	if err != nil {
		return nil, err
	}
	for {
		var kind sqlast.JoinKind
		switch {
		case p.accept("JOIN"), p.accept("INNER"):
			if p.toks[p.i-1].Up == "INNER" {
				if err := p.expect("JOIN"); err != nil {
					return nil, err
				}
			}
			kind = sqlast.JoinInner
		case p.accept("LEFT"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinLeft
		case p.accept("RIGHT"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinRight
		case p.accept("CROSS"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinCross
		default:
			return left, nil
		}
		right, err := p.simpleTableRef()
		if err != nil {
			return nil, err
		}
		j := &sqlast.JoinRef{Kind: kind, L: left, R: right}
		if kind != sqlast.JoinCross {
			if err := p.expect("ON"); err != nil {
				return nil, err
			}
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) simpleTableRef() (sqlast.TableRef, error) {
	if p.acceptOp("(") {
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.accept("AS")
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.SubqueryRef{Query: q, Alias: alias}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ref := &sqlast.BaseTable{Name: name}
	if p.accept("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.peek().Kind == sqllex.Ident && !reservedAfterItem[p.peek().Up] {
		a, _ := p.ident()
		ref.Alias = a
	}
	return ref, nil
}

func (p *parser) orderLimit() ([]sqlast.OrderItem, sqlast.Expr, sqlast.Expr, error) {
	var order []sqlast.OrderItem
	var limit, offset sqlast.Expr
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, nil, nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, nil, nil, err
			}
			item := sqlast.OrderItem{X: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			order = append(order, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, nil, nil, err
		}
		limit = e
	}
	if p.accept("OFFSET") {
		e, err := p.expr()
		if err != nil {
			return nil, nil, nil, err
		}
		offset = e
	}
	return order, limit, offset, nil
}

func (p *parser) withStmt() (sqlast.Statement, error) {
	p.i++ // WITH
	var ctes []sqlast.CTE
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		var cols []string
		if p.peek().Text == "(" && p.peekAt(1).Kind == sqllex.Ident && !isSelectStart(p.peekAt(1)) &&
			!isDMLStart(p.peekAt(1)) {
			cols, err = p.parenIdentList()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect("AS"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ctes = append(ctes, sqlast.CTE{Name: name, Cols: cols, Body: body})
		if !p.acceptOp(",") {
			break
		}
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &sqlast.WithStmt{CTEs: ctes, Body: body}, nil
}

func isDMLStart(t sqllex.Token) bool {
	if t.Kind != sqllex.Ident {
		return false
	}
	switch t.Up {
	case "INSERT", "UPDATE", "DELETE", "MERGE", "REPLACE":
		return true
	}
	return false
}
