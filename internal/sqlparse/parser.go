// Package sqlparse implements a recursive-descent parser producing the
// sqlast representation. It plays the role of the Bison/Flex AST parsers in
// the paper's implementation (§IV): identifying statement types for
// type-affinity analysis (Algorithm 2, line 3) and extracting AST structures
// for the instantiation library.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqllex"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Error is a parse error with token-position context.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("parse error at %d: %s", e.Pos, e.Msg) }

type parser struct {
	toks []sqllex.Token
	i    int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(sql string) (sqlast.Statement, error) {
	toks, err := sqllex.Tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().Text)
	}
	return s, nil
}

// ParseScript parses a semicolon-separated script into a test case.
func ParseScript(sql string) (sqlast.TestCase, error) {
	toks, err := sqllex.Tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var tc sqlast.TestCase
	for !p.atEOF() {
		if p.acceptOp(";") {
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		tc = append(tc, s)
		if !p.acceptOp(";") && !p.atEOF() {
			return nil, p.errf("expected ';' between statements, got %q", p.peek().Text)
		}
	}
	return tc, nil
}

// TypeOf parses just far enough to classify the statement type of sql.
// It returns sqlt.Invalid when the text is not parseable.
func TypeOf(sql string) sqlt.Type {
	s, err := Parse(sql)
	if err != nil {
		return sqlt.Invalid
	}
	return s.Type()
}

// MustParse parses sql and panics on error; for tests and static seeds.
func MustParse(sql string) sqlast.Statement {
	s, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return s
}

// MustParseScript parses a script and panics on error; for tests and seeds.
func MustParseScript(sql string) sqlast.TestCase {
	tc, err := ParseScript(sql)
	if err != nil {
		panic(err)
	}
	return tc
}

// CloneStatement deep-copies a statement. It used to render the statement
// and reparse the text; cloning is the hottest operation of the fuzz loop
// (every mutation, library fetch, seed split, and cross-shard adoption
// clones whole test cases), so it now delegates to the structural
// sqlast.Clone methods. The old render+reparse path survives as
// CloneStatementByReparse, the oracle the clone property tests compare
// against.
func CloneStatement(s sqlast.Statement) sqlast.Statement {
	return s.Clone()
}

// CloneTestCase deep-copies a test case.
func CloneTestCase(tc sqlast.TestCase) sqlast.TestCase {
	return tc.Clone()
}

// CloneStatementByReparse deep-copies a statement by rendering and reparsing
// it. The printer/parser round trip is lossless (verified by property
// tests); it is kept solely as the oracle that the structural clone is
// checked against, and must not be used on the hot path.
func CloneStatementByReparse(s sqlast.Statement) sqlast.Statement {
	c, err := Parse(s.SQL())
	if err != nil {
		panic(fmt.Sprintf("sqlparse: clone round-trip failed for %q: %v", s.SQL(), err))
	}
	return c
}

// --- token helpers ---------------------------------------------------------

func (p *parser) atEOF() bool { return p.i >= len(p.toks) }

func (p *parser) peek() sqllex.Token {
	if p.atEOF() {
		return sqllex.Token{Kind: sqllex.EOF}
	}
	return p.toks[p.i]
}

func (p *parser) peekAt(n int) sqllex.Token {
	if p.i+n >= len(p.toks) {
		return sqllex.Token{Kind: sqllex.EOF}
	}
	return p.toks[p.i+n]
}

func (p *parser) next() sqllex.Token {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.peek().Pos, Msg: fmt.Sprintf(format, args...)}
}

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.Kind == sqllex.Ident && t.Up == kw
}

// accept consumes the keyword if present.
func (p *parser) accept(kw string) bool {
	if p.isKw(kw) {
		p.i++
		return true
	}
	return false
}

// expect consumes the keyword or fails.
func (p *parser) expect(kw string) error {
	if p.accept(kw) {
		return nil
	}
	return p.errf("expected %s, got %q", kw, p.peek().Text)
}

// acceptOp consumes the operator token if present.
func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Kind == sqllex.Op && t.Text == op {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if p.acceptOp(op) {
		return nil
	}
	return p.errf("expected %q, got %q", op, p.peek().Text)
}

// ident consumes an identifier token and returns its original spelling.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != sqllex.Ident {
		return "", p.errf("expected identifier, got %q", t.Text)
	}
	p.i++
	return t.Text, nil
}

// identList parses ident (, ident)*.
func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.acceptOp(",") {
			return out, nil
		}
	}
}

// parenIdentList parses ( ident, ident, ... ).
func (p *parser) parenIdentList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ids, err := p.identList()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ids, nil
}

func (p *parser) intLit() (int64, error) {
	neg := p.acceptOp("-")
	t := p.peek()
	if t.Kind != sqllex.Number {
		return 0, p.errf("expected integer, got %q", t.Text)
	}
	p.i++
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// --- statement dispatch ----------------------------------------------------

func (p *parser) statement() (sqlast.Statement, error) {
	t := p.peek()
	if t.Kind != sqllex.Ident {
		return nil, p.errf("expected statement keyword, got %q", t.Text)
	}
	switch t.Up {
	case "CREATE":
		return p.createStmt()
	case "ALTER":
		return p.alterStmt()
	case "DROP":
		return p.dropStmt()
	case "RENAME":
		return p.renameTableStmt()
	case "TRUNCATE":
		p.i++
		p.accept("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.TruncateStmt{Table: name}, nil
	case "COMMENT":
		return p.commentOnStmt()
	case "REINDEX":
		p.i++
		kind := ""
		if p.accept("TABLE") {
			kind = "TABLE"
		} else if p.accept("INDEX") {
			kind = "INDEX"
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.ReindexStmt{Kind: kind, Name: name}, nil
	case "REFRESH":
		p.i++
		if err := p.expect("MATERIALIZED"); err != nil {
			return nil, err
		}
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.RefreshMatViewStmt{Name: name}, nil
	case "INSERT", "REPLACE":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "MERGE":
		return p.mergeStmt()
	case "COPY":
		return p.copyStmt()
	case "LOAD":
		return p.loadDataStmt()
	case "CALL":
		return p.callStmt()
	case "DO":
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &sqlast.DoStmt{Body: e}, nil
	case "SELECT":
		return p.selectStmt()
	case "TABLE":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.TableStmtNode{Name: name}, nil
	case "VALUES":
		rows, err := p.valuesRows()
		if err != nil {
			return nil, err
		}
		return &sqlast.ValuesStmtNode{Rows: rows}, nil
	case "WITH":
		return p.withStmt()
	case "EXPLAIN":
		p.i++
		analyze := p.accept("ANALYZE")
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &sqlast.ExplainStmt{Analyze: analyze, Stmt: inner}, nil
	case "SHOW":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		// canonicalize the keyword forms; variable names keep their case
		switch strings.ToUpper(name) {
		case "TABLES", "DATABASES":
			name = strings.ToUpper(name)
		}
		return &sqlast.ShowStmt{Name: name}, nil
	case "DESCRIBE", "DESC":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.DescribeStmt{Table: name}, nil
	case "GRANT", "REVOKE":
		return p.grantStmt()
	case "SET":
		return p.setStmt()
	case "BEGIN":
		p.i++
		p.accept("TRANSACTION")
		p.accept("WORK")
		return &sqlast.TxnStmt{What: sqlt.Begin}, nil
	case "START":
		p.i++
		if err := p.expect("TRANSACTION"); err != nil {
			return nil, err
		}
		return &sqlast.TxnStmt{What: sqlt.Begin}, nil
	case "COMMIT":
		p.i++
		p.accept("WORK")
		return &sqlast.TxnStmt{What: sqlt.Commit}, nil
	case "ROLLBACK":
		p.i++
		p.accept("WORK")
		if p.accept("TO") {
			p.accept("SAVEPOINT")
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &sqlast.TxnStmt{What: sqlt.RollbackToSavepoint, Name: name}, nil
		}
		return &sqlast.TxnStmt{What: sqlt.Rollback}, nil
	case "SAVEPOINT":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.TxnStmt{What: sqlt.Savepoint, Name: name}, nil
	case "RELEASE":
		p.i++
		p.accept("SAVEPOINT")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.TxnStmt{What: sqlt.ReleaseSavepoint, Name: name}, nil
	case "LOCK":
		p.i++
		p.accept("TABLE")
		p.accept("TABLES")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		mode := ""
		if p.accept("IN") {
			m, err := p.ident()
			if err != nil {
				return nil, err
			}
			mode = strings.ToUpper(m)
			p.accept("MODE")
		}
		return &sqlast.LockTableStmt{Table: name, Mode: mode}, nil
	case "RESET":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.ResetVarStmt{Name: name}, nil
	case "PRAGMA":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		var val sqlast.Expr
		if p.acceptOp("=") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			val = v
		}
		return &sqlast.PragmaStmt{Name: name, Value: val}, nil
	case "USE":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.UseStmt{DB: name}, nil
	case "ANALYZE":
		p.i++
		name := ""
		if p.peek().Kind == sqllex.Ident {
			name, _ = p.ident()
		}
		return &sqlast.AnalyzeStmt{Table: name}, nil
	case "VACUUM":
		p.i++
		full := p.accept("FULL")
		name := ""
		if p.peek().Kind == sqllex.Ident {
			name, _ = p.ident()
		}
		return &sqlast.VacuumStmt{Full: full, Table: name}, nil
	case "OPTIMIZE":
		p.i++
		if err := p.expect("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.MaintenanceStmt{What: sqlt.OptimizeTable, Table: name}, nil
	case "CHECK":
		p.i++
		if err := p.expect("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.MaintenanceStmt{What: sqlt.CheckTable, Table: name}, nil
	case "FLUSH":
		p.i++
		what, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.FlushStmt{What: strings.ToUpper(what)}, nil
	case "CHECKPOINT":
		p.i++
		return &sqlast.CheckpointStmt{}, nil
	case "DISCARD":
		p.i++
		what, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.DiscardStmt{What: strings.ToUpper(what)}, nil
	case "PREPARE":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AS"); err != nil {
			return nil, err
		}
		inner, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &sqlast.PrepareStmt{Name: name, Stmt: inner}, nil
	case "EXECUTE":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		var args []sqlast.Expr
		if p.acceptOp("(") {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
		return &sqlast.ExecuteStmt{Name: name, Args: args}, nil
	case "DEALLOCATE":
		p.i++
		p.accept("PREPARE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.DeallocateStmt{Name: name}, nil
	case "DECLARE":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("CURSOR"); err != nil {
			return nil, err
		}
		if err := p.expect("FOR"); err != nil {
			return nil, err
		}
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &sqlast.DeclareCursorStmt{Name: name, Query: q}, nil
	case "FETCH":
		p.i++
		var count int64
		if p.peek().Kind == sqllex.Number {
			n, err := p.intLit()
			if err != nil {
				return nil, err
			}
			count = n
			if err := p.expect("FROM"); err != nil {
				return nil, err
			}
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.FetchStmt{Count: count, Cursor: name}, nil
	case "CLOSE":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.CloseCursorStmt{Name: name}, nil
	case "LISTEN":
		p.i++
		ch, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.ListenStmt{Channel: ch}, nil
	case "NOTIFY":
		p.i++
		ch, err := p.ident()
		if err != nil {
			return nil, err
		}
		payload := ""
		if p.acceptOp(",") {
			t := p.peek()
			if t.Kind != sqllex.String {
				return nil, p.errf("expected string payload after NOTIFY channel")
			}
			p.i++
			payload = t.Text
		}
		return &sqlast.NotifyStmt{Channel: ch, Payload: payload}, nil
	case "UNLISTEN":
		p.i++
		if p.acceptOp("*") {
			return &sqlast.UnlistenStmt{Channel: "*"}, nil
		}
		ch, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnlistenStmt{Channel: ch}, nil
	case "CLUSTER":
		p.i++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		idx := ""
		if p.accept("USING") {
			idx, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		return &sqlast.ClusterStmt{Table: name, Index: idx}, nil
	default:
		return nil, p.errf("unknown statement keyword %q", t.Text)
	}
}
