package oracle

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
)

func TestMergeKeepsShortestReproducer(t *testing.T) {
	long := sqlparse.MustParseScript("SELECT 1; SELECT 2; SELECT 3;")
	short := sqlparse.MustParseScript("SELECT 1;")

	a := New()
	a.Record(report("BUG-1", "Optimizer", "SEGV", "f", "g"), long, 10)
	b := New()
	b.Record(report("BUG-1", "Optimizer", "SEGV", "f", "g"), short, 40)
	b.Record(report("BUG-2", "Parser", "UAF", "p"), long, 50)

	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("count = %d, want 2", a.Count())
	}
	c := a.Crashes()[0]
	if len(c.Reproducer) != 1 {
		t.Fatalf("merged reproducer has %d statements, want the shortest (1)", len(c.Reproducer))
	}
	if c.Hits != 2 {
		t.Fatalf("hits = %d, want 2 (summed across oracles)", c.Hits)
	}
	if c.FoundAtExec != 10 {
		t.Fatalf("found-at = %d, want the earliest (10)", c.FoundAtExec)
	}

	// Merging the other way never lengthens a reproducer.
	b.Merge(a)
	if got := b.Crashes()[0]; len(got.Reproducer) != 1 {
		t.Fatalf("reverse merge lengthened reproducer to %d statements", len(got.Reproducer))
	}
}

func TestMergeCopiesEntries(t *testing.T) {
	tc := sqlparse.MustParseScript("SELECT 1; SELECT 2;")
	src := New()
	src.Record(report("BUG-1", "Optimizer", "SEGV", "f"), tc, 5)

	dst := New()
	dst.Merge(src)
	// Mutating the merged copy (as triage does) must not write into src.
	dst.Crashes()[0].Status = "STABLE"
	dst.Crashes()[0].Reproducer = sqlparse.MustParseScript("SELECT 1;")
	if src.Crashes()[0].Status != "" || len(src.Crashes()[0].Reproducer) != 2 {
		t.Fatal("merge shared the crash entry; mutations leaked into the source oracle")
	}
}

func TestMergePreservesTriageOfExisting(t *testing.T) {
	tc := sqlparse.MustParseScript("SELECT 1;")
	a := New()
	a.Record(report("BUG-1", "Optimizer", "SEGV", "f"), tc, 5)
	a.Crashes()[0].Status = "STABLE"
	a.Crashes()[0].Replays = 3

	b := New()
	b.Record(report("BUG-1", "Optimizer", "SEGV", "f"), tc, 9)
	a.Merge(b)
	if c := a.Crashes()[0]; c.Status != "STABLE" || c.Replays != 3 {
		t.Fatalf("merge clobbered triage results: %+v", c)
	}

	// And an untriaged entry adopts the incoming triage verdict.
	c := New()
	c.Record(report("BUG-1", "Optimizer", "SEGV", "f"), tc, 9)
	triaged := New()
	triaged.Record(report("BUG-1", "Optimizer", "SEGV", "f"), tc, 2)
	triaged.Crashes()[0].Status = "FLAKY"
	triaged.Crashes()[0].Replays = 1
	c.Merge(triaged)
	if got := c.Crashes()[0]; got.Status != "FLAKY" || got.Replays != 1 {
		t.Fatalf("untriaged entry must adopt incoming triage: %+v", got)
	}
}

func TestAdoptDeduplicatesWithoutCounting(t *testing.T) {
	long := sqlparse.MustParseScript("SELECT 1; SELECT 2;")
	short := sqlparse.MustParseScript("SELECT 1;")

	donor := New()
	donor.Record(report("BUG-1", "Optimizer", "SEGV", "f"), long, 10)

	o := New()
	if !o.Adopt(donor.Crashes()[0]) {
		t.Fatal("adopting an unknown stack must report it as new")
	}
	if got := o.Crashes()[0]; got.Hits != 0 {
		t.Fatalf("adopted hits = %d, want 0 (sighting counts in the donor)", got.Hits)
	}

	// A local sighting of the adopted stack is a duplicate, not a new bug.
	if o.Record(report("BUG-1", "Optimizer", "SEGV", "f"), long, 99) {
		t.Fatal("locally hitting an adopted stack must deduplicate")
	}
	if got := o.Crashes()[0]; got.Hits != 1 {
		t.Fatalf("hits after local sighting = %d, want 1", got.Hits)
	}

	// Re-adopting with a shorter reproducer shortens, nothing else.
	d2 := New()
	d2.Record(report("BUG-1", "Optimizer", "SEGV", "f"), short, 3)
	if o.Adopt(d2.Crashes()[0]) {
		t.Fatal("known stack must not be adopted as new")
	}
	got := o.Crashes()[0]
	if len(got.Reproducer) != 1 || got.Hits != 1 {
		t.Fatalf("re-adoption: reproducer %d stmts, hits %d; want 1, 1", len(got.Reproducer), got.Hits)
	}
}
