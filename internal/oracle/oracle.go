// Package oracle collects and deduplicates crashes. The paper distinguishes
// bugs "from unique crashes by comparing the call stack" (§V-A); the oracle
// applies the same rule to the synthetic stacks carried by BugReports.
package oracle

import (
	"sort"

	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlast"
)

// Crash is one deduplicated bug with the shortest known reproducer.
type Crash struct {
	Report *minidb.BugReport
	// Reproducer is the shortest test case known to trip this stack:
	// Record replaces it whenever the same stack recurs with a shorter
	// sequence, and triage may replace it with a ddmin-minimized one.
	Reproducer  sqlast.TestCase
	FoundAtExec int // execution count when first seen
	Hits        int // total times the same stack was observed

	// Triage results, filled by internal/triage at campaign end and
	// persisted in checkpoints (format v2). Zero values mean the crash has
	// not been triaged.
	Status       string // triage.Stable / Flaky / Lost, "" before triage
	OriginalLen  int    // statements in the reproducer before minimization
	MinimizedLen int    // statements after minimization
	Replays      int    // verification replays that reproduced the stack
}

// Oracle deduplicates crashes by stack key.
type Oracle struct {
	seen  map[string]*Crash
	order []string
}

// New returns an empty oracle.
func New() *Oracle {
	return &Oracle{seen: map[string]*Crash{}}
}

// Record registers a crash. It returns true when the call stack was not seen
// before (a new unique bug). When the same stack recurs with a strictly
// shorter test case, the stored reproducer is replaced — the oracle always
// holds the shortest known reproducer per stack — while FoundAtExec keeps
// the first sighting and Hits counts every one.
func (o *Oracle) Record(r *minidb.BugReport, tc sqlast.TestCase, execs int) bool {
	key := r.StackKey()
	if c, ok := o.seen[key]; ok {
		c.Hits++
		if len(tc) < len(c.Reproducer) {
			c.Reproducer = tc
		}
		return false
	}
	o.seen[key] = &Crash{Report: r, Reproducer: tc, FoundAtExec: execs, Hits: 1}
	o.order = append(o.order, key)
	return true
}

// Import replaces the oracle's contents with crashes restored from a
// checkpoint, preserving discovery order and hit counts. Crashes with a
// duplicate stack key are folded into the first occurrence under the same
// invariants Record maintains: hits accumulate, the earliest FoundAtExec
// wins, and the shortest reproducer is kept.
func (o *Oracle) Import(crashes []*Crash) {
	o.seen = map[string]*Crash{}
	o.order = nil
	for _, c := range crashes {
		key := c.Report.StackKey()
		if prev, ok := o.seen[key]; ok {
			prev.Hits += c.Hits
			if len(c.Reproducer) < len(prev.Reproducer) {
				prev.Reproducer = c.Reproducer
			}
			if c.FoundAtExec < prev.FoundAtExec {
				prev.FoundAtExec = c.FoundAtExec
			}
			continue
		}
		o.seen[key] = c
		o.order = append(o.order, key)
	}
}

// Merge folds every crash of other into o under Record's invariants, the
// epoch-barrier primitive that builds the sharded executor's global crash
// view. For a stack key o already holds: hits accumulate, the shortest
// reproducer wins, the earliest FoundAtExec wins, and triage results are
// adopted when o's entry has none. New keys are appended in other's
// discovery order as independent copies, so later mutation of o's entries
// (triage, shorter reproducers) never writes into other.
func (o *Oracle) Merge(other *Oracle) {
	for _, c := range other.Crashes() {
		key := c.Report.StackKey()
		prev, ok := o.seen[key]
		if !ok {
			cp := *c
			o.seen[key] = &cp
			o.order = append(o.order, key)
			continue
		}
		prev.Hits += c.Hits
		if len(c.Reproducer) < len(prev.Reproducer) {
			prev.Reproducer = c.Reproducer
		}
		if c.FoundAtExec < prev.FoundAtExec {
			prev.FoundAtExec = c.FoundAtExec
		}
		if prev.Status == "" && c.Status != "" {
			prev.Status = c.Status
			prev.OriginalLen = c.OriginalLen
			prev.MinimizedLen = c.MinimizedLen
			prev.Replays = c.Replays
		}
	}
}

// Adopt registers a crash discovered by a sibling campaign shard so this
// oracle can deduplicate future local sightings against it. The adopted copy
// keeps Hits at zero — the sighting already counts in the sibling's oracle,
// and a later global Merge sums hits across shards, so seeding them here
// would double-count. A known stack key only adopts a shorter reproducer.
// It returns whether the stack key was new to this oracle.
func (o *Oracle) Adopt(c *Crash) bool {
	key := c.Report.StackKey()
	if prev, ok := o.seen[key]; ok {
		if len(c.Reproducer) < len(prev.Reproducer) {
			prev.Reproducer = c.Reproducer
		}
		return false
	}
	cp := *c
	cp.Hits = 0
	o.seen[key] = &cp
	o.order = append(o.order, key)
	return true
}

// Count returns the number of unique bugs found.
func (o *Oracle) Count() int { return len(o.seen) }

// Crashes returns the unique crashes in discovery order.
func (o *Oracle) Crashes() []*Crash {
	out := make([]*Crash, 0, len(o.order))
	for _, k := range o.order {
		out = append(out, o.seen[k])
	}
	return out
}

// IDs returns the sorted bug identifiers found.
func (o *Oracle) IDs() []string {
	var ids []string
	for _, c := range o.Crashes() {
		ids = append(ids, c.Report.ID)
	}
	sort.Strings(ids)
	return ids
}

// ByComponent tallies unique bugs per engine component.
func (o *Oracle) ByComponent() map[string]int {
	m := map[string]int{}
	for _, c := range o.Crashes() {
		m[c.Report.Component]++
	}
	return m
}

// ByKind tallies unique bugs per memory-safety class.
func (o *Oracle) ByKind() map[string]int {
	m := map[string]int{}
	for _, c := range o.Crashes() {
		m[c.Report.Kind]++
	}
	return m
}
