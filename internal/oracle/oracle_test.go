package oracle

import (
	"testing"

	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func report(id, comp, kind string, stack ...string) *minidb.BugReport {
	return &minidb.BugReport{
		ID: id, Dialect: sqlt.DialectMySQL, Component: comp, Kind: kind, Stack: stack,
	}
}

func TestDedupByStack(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")

	if !o.Record(report("BUG-1", "Optimizer", "SEGV", "f", "g"), tc, 10) {
		t.Fatal("first crash is new")
	}
	if o.Record(report("BUG-1", "Optimizer", "SEGV", "f", "g"), tc, 20) {
		t.Fatal("same stack is a duplicate")
	}
	if !o.Record(report("BUG-2", "Optimizer", "SEGV", "f", "h"), tc, 30) {
		t.Fatal("different stack is a new bug")
	}
	if o.Count() != 2 {
		t.Fatalf("count = %d", o.Count())
	}
	crashes := o.Crashes()
	if crashes[0].Hits != 2 || crashes[1].Hits != 1 {
		t.Fatalf("hit counts = %d, %d", crashes[0].Hits, crashes[1].Hits)
	}
	if crashes[0].FoundAtExec != 10 {
		t.Fatal("first-seen exec must be preserved")
	}
}

func TestDialectSeparatesStacks(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")
	a := report("BUG-1", "Optimizer", "SEGV", "f")
	b := report("BUG-1", "Optimizer", "SEGV", "f")
	b.Dialect = sqlt.DialectMariaDB
	o.Record(a, tc, 1)
	if !o.Record(b, tc, 2) {
		t.Fatal("same stack in a different DBMS is a distinct bug")
	}
}

func TestIDsSorted(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")
	o.Record(report("Z", "C", "AF", "z"), tc, 1)
	o.Record(report("A", "C", "AF", "a"), tc, 2)
	ids := o.IDs()
	if len(ids) != 2 || ids[0] != "A" || ids[1] != "Z" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestTallies(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")
	o.Record(report("1", "Optimizer", "SEGV", "a"), tc, 1)
	o.Record(report("2", "Optimizer", "UAF", "b"), tc, 2)
	o.Record(report("3", "Parser", "SEGV", "c"), tc, 3)

	byComp := o.ByComponent()
	if byComp["Optimizer"] != 2 || byComp["Parser"] != 1 {
		t.Fatalf("byComponent = %v", byComp)
	}
	byKind := o.ByKind()
	if byKind["SEGV"] != 2 || byKind["UAF"] != 1 {
		t.Fatalf("byKind = %v", byKind)
	}
}

// TestRecordKeepsShortestReproducer: when the same stack recurs, the stored
// reproducer shrinks to the shortest sequence seen, while FoundAtExec stays
// first-seen and Hits counts every recurrence.
func TestRecordKeepsShortestReproducer(t *testing.T) {
	o := New()
	long := sqlparse.MustParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	short := sqlparse.MustParseScript("SELECT 1;")
	longer := sqlparse.MustParseScript("SELECT 1; SELECT 2;")

	o.Record(report("B", "C", "AF", "s"), long, 10)
	o.Record(report("B", "C", "AF", "s"), short, 20)
	o.Record(report("B", "C", "AF", "s"), longer, 30)

	c := o.Crashes()[0]
	if len(c.Reproducer) != 1 {
		t.Fatalf("reproducer has %d statements, want the shortest (1)", len(c.Reproducer))
	}
	if c.FoundAtExec != 10 {
		t.Fatalf("FoundAtExec = %d, first sighting must win", c.FoundAtExec)
	}
	if c.Hits != 3 {
		t.Fatalf("hits = %d", c.Hits)
	}
}

// TestImportPreservesShortestInvariant: folding duplicate keys on resume
// must keep the shortest reproducer, the earliest FoundAtExec, and the
// summed hit count — the same invariants Record maintains live.
func TestImportPreservesShortestInvariant(t *testing.T) {
	o := New()
	long := sqlparse.MustParseScript("SELECT 1; SELECT 2; SELECT 3;")
	short := sqlparse.MustParseScript("SELECT 1;")

	o.Import([]*Crash{
		{Report: report("B", "C", "AF", "s"), Reproducer: long, FoundAtExec: 40, Hits: 2, Status: "STABLE"},
		{Report: report("B", "C", "AF", "s"), Reproducer: short, FoundAtExec: 15, Hits: 3},
		{Report: report("D", "C", "AF", "d"), Reproducer: long, FoundAtExec: 50, Hits: 1},
	})
	if o.Count() != 2 {
		t.Fatalf("count = %d", o.Count())
	}
	c := o.Crashes()[0]
	if len(c.Reproducer) != 1 || c.FoundAtExec != 15 || c.Hits != 5 {
		t.Fatalf("folded crash = len %d, exec %d, hits %d", len(c.Reproducer), c.FoundAtExec, c.Hits)
	}
	if c.Status != "STABLE" {
		t.Fatal("first occurrence's triage fields must survive the fold")
	}
}

func TestReproducerPreserved(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("CREATE TABLE t (a INT); SELECT * FROM t;")
	o.Record(report("R", "C", "AF", "r"), tc, 5)
	got := o.Crashes()[0].Reproducer
	if len(got) != 2 {
		t.Fatalf("reproducer = %v", got)
	}
}
