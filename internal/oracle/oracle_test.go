package oracle

import (
	"testing"

	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func report(id, comp, kind string, stack ...string) *minidb.BugReport {
	return &minidb.BugReport{
		ID: id, Dialect: sqlt.DialectMySQL, Component: comp, Kind: kind, Stack: stack,
	}
}

func TestDedupByStack(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")

	if !o.Record(report("BUG-1", "Optimizer", "SEGV", "f", "g"), tc, 10) {
		t.Fatal("first crash is new")
	}
	if o.Record(report("BUG-1", "Optimizer", "SEGV", "f", "g"), tc, 20) {
		t.Fatal("same stack is a duplicate")
	}
	if !o.Record(report("BUG-2", "Optimizer", "SEGV", "f", "h"), tc, 30) {
		t.Fatal("different stack is a new bug")
	}
	if o.Count() != 2 {
		t.Fatalf("count = %d", o.Count())
	}
	crashes := o.Crashes()
	if crashes[0].Hits != 2 || crashes[1].Hits != 1 {
		t.Fatalf("hit counts = %d, %d", crashes[0].Hits, crashes[1].Hits)
	}
	if crashes[0].FoundAtExec != 10 {
		t.Fatal("first-seen exec must be preserved")
	}
}

func TestDialectSeparatesStacks(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")
	a := report("BUG-1", "Optimizer", "SEGV", "f")
	b := report("BUG-1", "Optimizer", "SEGV", "f")
	b.Dialect = sqlt.DialectMariaDB
	o.Record(a, tc, 1)
	if !o.Record(b, tc, 2) {
		t.Fatal("same stack in a different DBMS is a distinct bug")
	}
}

func TestIDsSorted(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")
	o.Record(report("Z", "C", "AF", "z"), tc, 1)
	o.Record(report("A", "C", "AF", "a"), tc, 2)
	ids := o.IDs()
	if len(ids) != 2 || ids[0] != "A" || ids[1] != "Z" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestTallies(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("SELECT 1;")
	o.Record(report("1", "Optimizer", "SEGV", "a"), tc, 1)
	o.Record(report("2", "Optimizer", "UAF", "b"), tc, 2)
	o.Record(report("3", "Parser", "SEGV", "c"), tc, 3)

	byComp := o.ByComponent()
	if byComp["Optimizer"] != 2 || byComp["Parser"] != 1 {
		t.Fatalf("byComponent = %v", byComp)
	}
	byKind := o.ByKind()
	if byKind["SEGV"] != 2 || byKind["UAF"] != 1 {
		t.Fatalf("byKind = %v", byKind)
	}
}

func TestReproducerPreserved(t *testing.T) {
	o := New()
	tc := sqlparse.MustParseScript("CREATE TABLE t (a INT); SELECT * FROM t;")
	o.Record(report("R", "C", "AF", "r"), tc, 5)
	got := o.Crashes()[0].Reproducer
	if len(got) != 2 {
		t.Fatalf("reproducer = %v", got)
	}
}
