// Package sqllex tokenizes SQL text for the recursive-descent parser in
// package sqlparse. It handles identifiers, quoted identifiers, numeric and
// string literals, operators, and both comment styles.
package sqllex

import (
	"fmt"
	"strings"
)

// Kind classifies tokens.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Number
	String
	Op // operator or punctuation
)

// Token is one lexical element.
type Token struct {
	Kind Kind
	Text string // raw text; for Ident the original spelling
	Up   string // upper-cased Text, used for keyword matching
	Pos  int    // byte offset in input
}

// Lexer scans SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Error is a lexical error with position context.
type Error struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("lex error at %d: %s", e.Pos, e.Msg) }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '@' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() (Token, error) {
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			return Token{Kind: EOF, Pos: l.pos}, nil
		}
		// comments
		if l.hasPrefix("--") {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		if l.hasPrefix("/*") {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return Token{}, &Error{Pos: l.pos, Msg: "unterminated block comment"}
			}
			l.pos += 2 + end + 2
			continue
		}
		break
	}

	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		// MySQL session variables: @@SESSION.name — fold the @@ prefix into
		// one identifier token.
		txt := l.src[start:l.pos]
		return Token{Kind: Ident, Text: txt, Up: strings.ToUpper(txt), Pos: start}, nil

	case c == '"' || c == '`':
		// quoted identifier
		quote := c
		l.pos++
		qstart := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return Token{}, &Error{Pos: start, Msg: "unterminated quoted identifier"}
		}
		txt := l.src[qstart:l.pos]
		l.pos++
		return Token{Kind: Ident, Text: txt, Up: strings.ToUpper(txt), Pos: start}, nil

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, &Error{Pos: start, Msg: "unterminated string literal"}
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: String, Text: sb.String(), Pos: start}, nil

	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		l.pos++
		seenDot := c == '.'
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && l.pos+1 < len(l.src) &&
				(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			}
			break
		}
		return Token{Kind: Number, Text: l.src[start:l.pos], Pos: start}, nil

	default:
		// multi-char operators first
		for _, op := range [...]string{"<>", "<=", ">=", "!=", "||", "::"} {
			if l.hasPrefix(op) {
				l.pos += 2
				return Token{Kind: Op, Text: op, Up: op, Pos: start}, nil
			}
		}
		l.pos++
		txt := l.src[start:l.pos]
		return Token{Kind: Op, Text: txt, Up: txt, Pos: start}, nil
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
}

func (l *Lexer) hasPrefix(s string) bool {
	return strings.HasPrefix(l.src[l.pos:], s)
}

// Tokenize scans the whole input, returning all tokens excluding the final
// EOF. It is a convenience for tests and for the parser's lookahead buffer.
func Tokenize(src string) ([]Token, error) {
	l := New(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == EOF {
			return out, nil
		}
		out = append(out, t)
	}
}
