package sqllex

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, err := Tokenize("SELECT v1, v2 FROM t1 WHERE v1 = 10;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "v1", ",", "v2", "FROM", "t1", "WHERE", "v1", "=", "10", ";"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestKeywordCaseFolding(t *testing.T) {
	toks, err := Tokenize("select SeLeCt SELECT")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Up != "SELECT" {
			t.Errorf("Up = %q, want SELECT", tok.Up)
		}
	}
	// original spelling is preserved
	if toks[0].Text != "select" || toks[1].Text != "SeLeCt" {
		t.Error("original spelling must be preserved in Text")
	}
}

func TestStringLiterals(t *testing.T) {
	cases := map[string]string{
		"'hello'":       "hello",
		"''":            "",
		"'it''s'":       "it's",
		"'a''b''c'":     "a'b'c",
		"'with spaces'": "with spaces",
	}
	for src, want := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != String || toks[0].Text != want {
			t.Errorf("%q -> %+v, want string %q", src, toks, want)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []string{"0", "42", "3.14", "0.5", ".5", "1e10", "2.5E-3", "22471185.000000"}
	for _, src := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != Number {
			t.Errorf("%q -> %+v, want one number", src, toks)
		}
	}
}

func TestNegativeNumberIsTwoTokens(t *testing.T) {
	toks, err := Tokenize("-5")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "-" || toks[1].Kind != Number {
		t.Fatalf("got %+v", toks)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	for _, src := range []string{`"table name"`, "`col`"} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != Ident {
			t.Errorf("%q -> %+v, want one ident", src, toks)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize(`
-- line comment
SELECT /* block
comment */ 1; -- trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	want := []string{"SELECT", "1", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMultiCharOperators(t *testing.T) {
	toks, err := Tokenize("a <> b <= c >= d != e || f :: g")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == Op {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<>", "<=", ">=", "!=", "||", "::"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestSessionVariableIdent(t *testing.T) {
	toks, err := Tokenize("@@SESSION.explicit_for_timestamp")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "@@SESSION" || toks[1].Text != "." {
		t.Fatalf("got %v", texts(toks))
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"'unterminated",
		"\"unterminated",
		"/* unterminated",
	}
	for _, src := range bad {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		} else if _, isLexErr := err.(*Error); !isLexErr {
			t.Errorf("Tokenize(%q) error is %T, want *Error", src, err)
		}
	}
}

func TestErrorMessage(t *testing.T) {
	_, err := Tokenize("'oops")
	if err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v", err)
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("SELECT  a")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 8 {
		t.Fatalf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}

// Property: lexing never panics on arbitrary ASCII input, and every token's
// Pos is within the input.
func TestLexerRobustness(t *testing.T) {
	f := func(s string) bool {
		toks, err := Tokenize(s)
		if err != nil {
			return true // errors are fine; panics are not
		}
		for _, tok := range toks {
			if tok.Pos < 0 || tok.Pos > len(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEOFIsStable(t *testing.T) {
	l := New("x")
	if tok, _ := l.Next(); tok.Kind != Ident {
		t.Fatal("want ident")
	}
	for i := 0; i < 3; i++ {
		tok, err := l.Next()
		if err != nil || tok.Kind != EOF {
			t.Fatalf("EOF not stable: %+v %v", tok, err)
		}
	}
}
