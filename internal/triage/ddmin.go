package triage

import "github.com/seqfuzz/lego/internal/sqlast"

// ddmin minimizes a reproducing statement sequence. The acceptance rule is
// strict: a candidate replaces the current sequence only when replaying it
// crashes with the same normalized stack key, so every intermediate (and the
// final result) is a sequence that has reproduced the bug at least once.
//
// Two phases, as in the classic delta-debugging reduction specialised to
// statement sequences:
//
//   - Phase 1 drops single statements greedily, front to back, repeating
//     until a full pass removes nothing. Hazards fire on type-sequence
//     suffixes, so the noise is usually leading statements and this phase
//     alone reaches 1-minimality for independent statements.
//   - Phase 2 binary-chops: the sequence is split into n chunks and each
//     chunk's removal is tried; on failure granularity doubles, on success
//     it relaxes. This removes statement *groups* that individually break a
//     dependency (e.g. a CREATE/INSERT pair feeding a row-count condition)
//     and therefore survive phase 1.
//
// Every candidate replay is charged against the per-crash Config.Budget;
// when the budget runs out the best sequence found so far is returned, so
// triage is bounded even on pathological reproducers.
func (t *Triager) ddmin(tc sqlast.TestCase, key string) sqlast.TestCase {
	budget := t.cfg.Budget
	try := func(cand sqlast.TestCase) bool {
		if budget <= 0 || len(cand) == 0 {
			return false
		}
		budget--
		return t.replay(cand, key)
	}

	cur := tc

	// Phase 1: single-statement elimination to a fixpoint.
	for again := true; again && budget > 0; {
		again = false
		for i := 0; i < len(cur) && len(cur) > 1; {
			if try(without(cur, i, i+1)) {
				cur = without(cur, i, i+1)
				again = true
			} else {
				i++
			}
		}
	}

	// Phase 2: chunk removal with binary-chopped granularity.
	for n := 2; len(cur) >= 2 && n <= len(cur) && budget > 0; {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			if end-start == len(cur) {
				continue // never propose the empty sequence
			}
			if try(without(cur, start, end)) {
				cur = without(cur, start, end)
				reduced = true
				break
			}
		}
		if reduced {
			// Coarsen again: the shorter sequence may now lose bigger chunks.
			if n > 2 {
				n--
			}
		} else {
			if chunk == 1 {
				break // finest granularity exhausted
			}
			n *= 2
		}
	}
	return cur
}

// without returns tc with the half-open statement range [i, j) removed. The
// result is a fresh slice sharing the (immutable-under-execution) statement
// nodes.
func without(tc sqlast.TestCase, i, j int) sqlast.TestCase {
	out := make(sqlast.TestCase, 0, len(tc)-(j-i))
	out = append(out, tc[:i]...)
	out = append(out, tc[j:]...)
	return out
}
