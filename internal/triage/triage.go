// Package triage turns raw oracle crashes into trustworthy bug reports.
// The campaign oracle deduplicates crashes by call stack (paper §V-A) but
// keeps whatever test case happened to trip each stack first — often a long,
// noise-laden sequence produced deep inside a mutation schedule. Real
// fuzzing stacks (AFL++'s afl-tmin, SQUIRREL's query reduction) treat triage
// as a first-class robustness layer: a report that cannot be replayed
// deterministically cannot be trusted, and a reproducer nobody can read is
// barely a reproducer at all.
//
// The pipeline runs at campaign end over every unique crash:
//
//  1. Re-verification — the recorded reproducer is replayed Config.Replays
//     times on a fresh quarantined engine built from the campaign
//     configuration. The crash is classified STABLE (every replay produced
//     the same normalized stack key), FLAKY (some did), or LOST (none did —
//     typically an injected organic fault whose schedule has moved on).
//  2. Minimization — ddmin over the statement sequence: first every single
//     statement is dropped greedily to a fixpoint, then chunks found by
//     binary chopping. A candidate is accepted only when its replay crashes
//     with the *same* stack key, so minimization can never wander to a
//     different bug. A hard per-crash step budget bounds the work.
//  3. Re-record — the crash entry is updated in place: the shortest known
//     reproducer, the classification, and the replay tally, all of which
//     round-trip through checkpoints (format v2).
//
// Replays execute through a private harness.Runner, so organic panics during
// triage are contained and quarantined exactly as during the campaign, and
// campaign counters (Execs, Stmts, EnginePanics) are untouched.
package triage

import (
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/sqlast"
)

// Status classifies a crash after re-verification.
type Status string

const (
	// Stable: every verification replay reproduced the same stack key.
	Stable Status = "STABLE"
	// Flaky: some, but not all, replays reproduced the stack key.
	Flaky Status = "FLAKY"
	// Lost: no replay reproduced the stack key on a fresh engine.
	Lost Status = "LOST"
)

// Config bounds the triage pass.
type Config struct {
	// Replays is the number of verification replays per crash (default 3).
	Replays int
	// Budget is the maximum number of ddmin candidate replays spent
	// minimizing one crash (default 256). Verification replays are not
	// charged against it: they are already bounded by Replays × crashes.
	Budget int
}

func (c *Config) fill() {
	if c.Replays <= 0 {
		c.Replays = 3
	}
	if c.Budget <= 0 {
		c.Budget = 256
	}
}

// Summary tallies one triage pass.
type Summary struct {
	// Triaged is the number of crashes processed.
	Triaged int
	// Stable, Flaky, Lost count the classifications.
	Stable, Flaky, Lost int
	// Shrunk counts crashes whose reproducer got strictly shorter.
	Shrunk int
	// Steps is the total number of replay executions performed.
	Steps int
}

// Triager replays and minimizes crashes on a private quarantined engine.
type Triager struct {
	cfg    Config
	runner *harness.Runner
}

// New builds a triager. engCfg must be the campaign's engine configuration
// (harness.Runner.Config()), so hazard arming, dialect, and the fault
// injector's seed match the engine the crashes were found on — triage is
// then a pure function of (engine config, crash list, Config) and two passes
// over the same campaign give identical results.
func New(engCfg minidb.Config, cfg Config) *Triager {
	cfg.fill()
	return &Triager{cfg: cfg, runner: harness.NewRunnerWithConfig(engCfg)}
}

// Steps returns the number of replay executions performed so far.
func (t *Triager) Steps() int { return t.runner.Execs }

// Run triages every crash in the oracle, in discovery order, updating each
// entry in place: Status, OriginalLen, MinimizedLen, Replays, and — when
// minimization found a shorter sequence with the same stack key — the
// Reproducer itself.
func (t *Triager) Run(o *oracle.Oracle) Summary {
	var s Summary
	for _, c := range o.Crashes() {
		t.triageOne(c)
		s.Triaged++
		switch Status(c.Status) {
		case Stable:
			s.Stable++
		case Flaky:
			s.Flaky++
		case Lost:
			s.Lost++
		}
		if c.MinimizedLen < c.OriginalLen {
			s.Shrunk++
		}
	}
	s.Steps = t.runner.Execs
	return s
}

// triageOne re-verifies and minimizes a single crash.
func (t *Triager) triageOne(c *oracle.Crash) {
	key := c.Report.StackKey()
	orig := c.Reproducer
	matches := 0
	for i := 0; i < t.cfg.Replays; i++ {
		if t.replay(orig, key) {
			matches++
		}
	}
	c.OriginalLen = len(orig)
	c.Replays = matches
	switch {
	case matches == t.cfg.Replays:
		c.Status = string(Stable)
	case matches > 0:
		c.Status = string(Flaky)
	default:
		// Nothing to minimize against: the stack is unreachable on a fresh
		// engine, so the recorded sequence is the only evidence we have.
		c.Status = string(Lost)
		c.MinimizedLen = len(orig)
		return
	}
	min := t.ddmin(orig, key)
	c.MinimizedLen = len(min)
	if len(min) < len(orig) {
		c.Reproducer = min
	}
}

// replay executes tc on the triage engine and reports whether it crashed
// with exactly the wanted stack key.
func (t *Triager) replay(tc sqlast.TestCase, wantKey string) bool {
	_, _, crash := t.runner.Execute(tc)
	return crash != nil && crash.StackKey() == wantKey
}
