package triage_test

import (
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
	"github.com/seqfuzz/lego/internal/triage"
)

// hazardCfg arms the MariaDB seeded bug corpus with no fault injection, so
// every crash is a deterministic function of its test case.
func hazardCfg() minidb.Config {
	return minidb.Config{Dialect: sqlt.DialectMariaDB, EnableHazards: true}
}

// recordCrash executes tc on a fresh hazard-armed runner and returns the
// recorded crash, failing the test if nothing fired.
func recordCrash(t *testing.T, cfg minidb.Config, sql string) (*oracle.Oracle, *oracle.Crash) {
	t.Helper()
	r := harness.NewRunnerWithConfig(cfg)
	tc := sqlparse.MustParseScript(sql)
	_, _, crash := r.Execute(tc)
	if crash == nil {
		t.Fatalf("test case did not crash:\n%s", sql)
	}
	crashes := r.Oracle.Crashes()
	return r.Oracle, crashes[len(crashes)-1]
}

// noisyMDEV26419 trips MDEV-26419 (BEGIN, SELECT, ROLLBACK, SELECT with no
// state condition) behind four statements of leading noise.
const noisyMDEV26419 = `CREATE TABLE noise (a INT);
INSERT INTO noise VALUES (1);
UPDATE noise SET a = 2;
SELECT * FROM noise;
BEGIN;
SELECT a FROM noise;
ROLLBACK;
SELECT a FROM noise;`

// TestStableClassificationAndMinimization: a deterministic seeded hazard
// must verify STABLE on every replay and minimize down to its 4-statement
// pattern, shedding all leading noise.
func TestStableClassificationAndMinimization(t *testing.T) {
	o, c := recordCrash(t, hazardCfg(), noisyMDEV26419)
	if c.Report.ID != "MDEV-26419" {
		t.Fatalf("unexpected bug %s", c.Report.ID)
	}

	sum := triage.New(hazardCfg(), triage.Config{Replays: 3}).Run(o)
	if sum.Triaged != 1 || sum.Stable != 1 || sum.Shrunk != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if c.Status != string(triage.Stable) || c.Replays != 3 {
		t.Fatalf("status = %s, replays = %d", c.Status, c.Replays)
	}
	if c.OriginalLen != 8 {
		t.Fatalf("original len = %d", c.OriginalLen)
	}
	if c.MinimizedLen != 4 || len(c.Reproducer) != 4 {
		t.Fatalf("minimized to %d statements, want the 4-statement pattern:\n%s",
			c.MinimizedLen, c.Reproducer.SQL())
	}
	want := sqlt.Sequence{sqlt.Begin, sqlt.Select, sqlt.Rollback, sqlt.Select}
	if got := c.Reproducer.Types(); got.String() != want.String() {
		t.Fatalf("minimized sequence = %s, want %s", got, want)
	}
}

// TestDdminNeverReturnsNonReproducing: after triage, every minimized
// reproducer must still crash a fresh engine with the same stack key — the
// acceptance rule guarantees it, and this test re-checks it from outside the
// triager, over all crashes of a real campaign.
func TestDdminNeverReturnsNonReproducing(t *testing.T) {
	f := core.New(core.Options{Dialect: sqlt.DialectMariaDB, Seed: 5, Hazards: true})
	runner := f.Run(30000)
	if runner.Oracle.Count() == 0 {
		t.Fatal("campaign found no bugs to triage")
	}

	triage.New(runner.Config(), triage.Config{Replays: 3}).Run(runner.Oracle)

	for _, c := range runner.Oracle.Crashes() {
		if c.Status != string(triage.Stable) {
			t.Fatalf("%s: hazard-only crashes must be STABLE, got %s", c.Report.ID, c.Status)
		}
		if c.MinimizedLen > c.OriginalLen || len(c.Reproducer) != c.MinimizedLen {
			t.Fatalf("%s: lengths inconsistent: min %d, orig %d, repro %d",
				c.Report.ID, c.MinimizedLen, c.OriginalLen, len(c.Reproducer))
		}
		fresh := harness.NewRunnerWithConfig(runner.Config())
		_, _, crash := fresh.Execute(c.Reproducer)
		if crash == nil || crash.StackKey() != c.Report.StackKey() {
			t.Fatalf("%s: minimized reproducer does not reproduce on a fresh engine:\n%s",
				c.Report.ID, c.Reproducer.SQL())
		}
	}
}

// TestTriageDeterminism: triage is a pure function of (engine config,
// crashes, triage config) — two identical campaigns triaged independently
// must agree on every status, replay tally, and minimized reproducer.
func TestTriageDeterminism(t *testing.T) {
	run := func() []*oracle.Crash {
		opts := core.Options{Dialect: sqlt.DialectMariaDB, Seed: 7, Hazards: true, FaultRate: 0.002}
		f := core.New(opts)
		runner := f.Run(25000)
		triage.New(runner.Config(), triage.Config{Replays: 4, Budget: 128}).Run(runner.Oracle)
		return runner.Oracle.Crashes()
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("crash counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Report.StackKey() != b[i].Report.StackKey() ||
			a[i].Status != b[i].Status ||
			a[i].Replays != b[i].Replays ||
			a[i].OriginalLen != b[i].OriginalLen ||
			a[i].MinimizedLen != b[i].MinimizedLen ||
			a[i].Reproducer.SQL() != b[i].Reproducer.SQL() {
			t.Fatalf("crash %d diverged:\nA: %s %s %d/%d %d->%d\nB: %s %s %d/%d %d->%d",
				i,
				a[i].Report.ID, a[i].Status, a[i].Replays, 4, a[i].OriginalLen, a[i].MinimizedLen,
				b[i].Report.ID, b[i].Status, b[i].Replays, 4, b[i].OriginalLen, b[i].MinimizedLen)
		}
	}
}

// TestFlakyClassification: an organic injected-fault crash replays against a
// fresh fault schedule, so only some replays reproduce its stack — the
// definition of FLAKY. The fault stream is a pure function of (rate, seed),
// so the classification itself is deterministic.
func TestFlakyClassification(t *testing.T) {
	cfg := minidb.Config{Dialect: sqlt.DialectMariaDB, FaultRate: 0.5, FaultSeed: 3}

	// Drive the runner until a fault fires organically.
	r := harness.NewRunnerWithConfig(cfg)
	tc := sqlparse.MustParseScript("SELECT 1;\nSELECT 2;\nSELECT 3;")
	for i := 0; i < 50 && r.Oracle.Count() == 0; i++ {
		r.Execute(tc)
	}
	crashes := r.Oracle.Crashes()
	if len(crashes) == 0 {
		t.Fatal("rate-0.5 injection produced no contained panic in 50 executions")
	}

	triage.New(cfg, triage.Config{Replays: 8}).Run(r.Oracle)

	flaky := 0
	for _, c := range crashes {
		if !strings.HasPrefix(c.Report.ID, "ORGANIC-") {
			continue
		}
		if c.Status == string(triage.Flaky) {
			flaky++
			if c.Replays == 0 || c.Replays == 8 {
				t.Fatalf("FLAKY with replay tally %d/8", c.Replays)
			}
		}
		// Whatever the class, the invariants hold.
		if c.MinimizedLen > c.OriginalLen {
			t.Fatalf("%s: minimized %d > original %d", c.Report.ID, c.MinimizedLen, c.OriginalLen)
		}
	}
	if flaky == 0 {
		for _, c := range crashes {
			t.Logf("%s: %s %d/8", c.Report.ID, c.Status, c.Replays)
		}
		t.Fatal("fault-injected crashes produced no FLAKY classification")
	}
}

// TestLostClassification: a stack key no replay can reproduce is LOST, and
// its reproducer is left untouched (it is the only evidence there is).
func TestLostClassification(t *testing.T) {
	o := oracle.New()
	tc := sqlparse.MustParseScript("SELECT 1;\nSELECT 2;")
	o.Record(&minidb.BugReport{
		ID: "GHOST", Dialect: sqlt.DialectMariaDB, Component: "Engine",
		Kind: "SEGV", Stack: []string{"engine::path_removed_last_tuesday"},
	}, tc, 1)

	sum := triage.New(hazardCfg(), triage.Config{Replays: 3}).Run(o)
	if sum.Lost != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	c := o.Crashes()[0]
	if c.Status != string(triage.Lost) || c.Replays != 0 {
		t.Fatalf("status = %s, replays = %d", c.Status, c.Replays)
	}
	if c.MinimizedLen != 2 || len(c.Reproducer) != 2 {
		t.Fatal("LOST crashes must keep their original reproducer")
	}
}

// TestBudgetBoundsMinimization: a one-replay budget cannot finish ddmin, but
// triage must still terminate and return a reproducing (if longer) sequence.
func TestBudgetBoundsMinimization(t *testing.T) {
	o, c := recordCrash(t, hazardCfg(), noisyMDEV26419)

	tr := triage.New(hazardCfg(), triage.Config{Replays: 2, Budget: 1})
	tr.Run(o)
	if c.Status != string(triage.Stable) {
		t.Fatalf("status = %s", c.Status)
	}
	if c.MinimizedLen > c.OriginalLen {
		t.Fatalf("budgeted minimization grew the reproducer: %d -> %d", c.OriginalLen, c.MinimizedLen)
	}
	// The (at most one) accepted candidate still reproduces.
	fresh := harness.NewRunnerWithConfig(hazardCfg())
	_, _, crash := fresh.Execute(c.Reproducer)
	if crash == nil || crash.StackKey() != c.Report.StackKey() {
		t.Fatal("budget-cut minimization returned a non-reproducing sequence")
	}
	// Steps: 2 verification replays + at most 1 ddmin candidate.
	if tr.Steps() > 3 {
		t.Fatalf("budget 1 spent %d replays", tr.Steps())
	}
}
