package panicdiscipline_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/panicdiscipline"
)

func TestPanicdiscipline(t *testing.T) {
	analysistest.Run(t, panicdiscipline.Analyzer, "minidb", "harness")
}
