// Package minidb is a panicdiscipline fixture mirroring the real engine's
// crash-signal contract: panic may carry a BugReport, re-raise a recovered
// value, or live in a //lego:injector helper.
package minidb

import "fmt"

// BugReport stands in for the engine's crash artefact.
type BugReport struct {
	ID string
}

func (b *BugReport) Error() string { return b.ID }

// raiseBug panics with a report: clean.
func raiseBug(id string) {
	panic(&BugReport{ID: id})
}

// raiseNamed panics with a report held in a variable: clean.
func raiseNamed(b *BugReport) {
	panic(b)
}

// badSprintf uses panic for error reporting: flagged.
func badSprintf(n int) {
	panic(fmt.Sprintf("bad plan state %d", n)) // want `panic in minidb must carry a \*BugReport`
}

// badBare panics with a bare string: flagged.
func badBare() {
	panic("unreachable") // want `panic in minidb must carry a \*BugReport`
}

// inject deliberately raises a non-BugReport organic fault; the directive
// approves it: clean.
//
//lego:injector
func inject(n int) {
	panic(fmt.Errorf("injected engine fault #%d", n))
}

// contain re-raises what it refused to swallow: clean.
func contain(run func()) (crash *BugReport) {
	defer func() {
		if r := recover(); r != nil {
			if br, ok := r.(*BugReport); ok {
				crash = br
				return
			}
			panic(r)
		}
	}()
	run()
	return nil
}

// suppressed demonstrates the //lego:allow directive: no finding reported.
func suppressed() {
	panic("legacy assertion") //lego:allow panicdiscipline — fixture demonstrating suppression
}
