// Package harness is a panicdiscipline fixture for the gating rule: the
// discipline applies only inside minidb, so panics elsewhere are clean.
package harness

func mustPositive(n int) {
	if n <= 0 {
		panic("n must be positive")
	}
}
