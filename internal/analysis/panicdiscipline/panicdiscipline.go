// Package panicdiscipline enforces the crash-signal contract inside
// internal/minidb.
//
// The harness's crash containment treats a panic as the engine's ASAN
// abort: a *BugReport panic is a seeded (or deliberately injected) crash,
// and anything else is normalized into an ORGANIC PANIC bug with a
// synthesized stack. A stray panic(fmt.Sprintf(...)) used for control flow
// therefore doesn't just crash — it fabricates a bug the oracle counts.
// Inside minidb, panic may only:
//
//   - carry a BugReport (the raiseBug path),
//   - re-raise a value obtained from recover() (containment pass-through),
//   - or sit inside a helper marked with a //lego:injector directive
//     (the deterministic fault injector, whose whole purpose is raising
//     non-BugReport panics).
//
// Everything else should be a SQL error return — or must justify itself
// with //lego:allow panicdiscipline — <reason>.
package panicdiscipline

import (
	"go/ast"
	"go/types"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Analyzer is the panicdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "panicdiscipline",
	Doc:  "restricts minidb panics to BugReports, recover re-raises, and //lego:injector helpers",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.PkgBase(pass.Pkg.Path()) != "minidb" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !analysis.IsBuiltin(pass.TypesInfo, call, "panic") || len(call.Args) != 1 {
				return true
			}
			if allowedPanic(pass, file, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"panic in minidb must carry a *BugReport, re-raise a recover()ed value, or live in a //lego:injector helper; anything else is misclassified as an ORGANIC PANIC by crash containment")
			return true
		})
	}
	return nil
}

func allowedPanic(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) bool {
	arg := ast.Unparen(call.Args[0])

	// panic(&BugReport{...}) or panic(report) where report is a *BugReport.
	if t := pass.TypesInfo.TypeOf(arg); t != nil && analysis.NamedType(t) == "BugReport" {
		return true
	}

	body, decl := analysis.EnclosingFuncBody(file, call.Pos())

	// //lego:injector on the enclosing function declaration approves
	// deliberate non-BugReport raises (the fault injector).
	if decl != nil && analysis.HasDirective(decl.Doc, "injector") {
		return true
	}

	// panic(r) where r := recover() in the same function: containment
	// re-raising what it refused to swallow.
	if id, ok := arg.(*ast.Ident); ok && body != nil {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && assignedFromRecover(pass.TypesInfo, body, obj) {
			return true
		}
	}
	return false
}

// assignedFromRecover reports whether the function body assigns obj from a
// bare recover() call (including if-statement init clauses).
func assignedFromRecover(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || found {
			return !found
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if info.Defs[id] != obj && info.Uses[id] != obj {
			return true
		}
		if rhs, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && analysis.IsBuiltin(info, rhs, "recover") {
			found = true
		}
		return !found
	})
	return found
}
