package hotalloc_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hot")
}
