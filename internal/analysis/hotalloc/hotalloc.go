// Package hotalloc keeps the PR 6 hot paths allocation-free.
//
// A function whose doc comment carries //lego:hotpath declares that it runs
// inside the per-statement scan/eval/render loop, where a single allocation
// multiplies by the campaign's statement count. Inside such functions the
// analyzer reports:
//
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Appendf anywhere (the
//     formatter allocates even for static strings; hot code uses pre-sized
//     strings.Builder or append)
//   - inside any loop: make, new, map/slice composite literals, &T{...}
//     (address-taken composites escape), string concatenation (+ / +=),
//     string<->[]byte/[]rune conversions, closure literals, and append —
//     unless the destination was made with an explicit capacity in the
//     same function (the pre-size idiom `buf := make([]T, 0, n)`)
//
// Plain struct *value* literals in loops are fine (they stay on the stack),
// as are allocations outside loops (one-time setup). A finding that is
// intentional — a cold error path, a once-per-query allocation in a
// statement loop — is suppressed the usual way:
//
//	//lego:allow hotalloc — error path, taken at most once per campaign
//
// The check is purely intra-function: annotate the loop bodies' helpers
// separately if they must also stay clean.
package hotalloc

import (
	"go/ast"
	"go/types"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //lego:hotpath must not allocate in their loops",
	Run:  run,
}

// fmtAllocators are the fmt helpers that always allocate their result.
var fmtAllocators = map[string]bool{
	"Sprintf":  true,
	"Sprint":   true,
	"Sprintln": true,
	"Errorf":   true,
	"Appendf":  true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			c := &checker{pass: pass, presized: presizedSlices(pass, fd.Body)}
			c.block(fd.Body, 0)
		}
	}
	return nil
}

// presizedSlices collects local slice variables made with an explicit
// capacity anywhere in the function: appends to them are amortized O(1)
// and allowed in loops.
func presizedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !analysis.IsBuiltin(pass.TypesInfo, call, "make") || len(call.Args) < 3 {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

type checker struct {
	pass     *analysis.Pass
	presized map[types.Object]bool
}

// block walks statements tracking loop depth without recursing through
// nested hotpath-irrelevant scopes twice.
func (c *checker) block(n ast.Node, depth int) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ForStmt:
			if x.Init != nil {
				c.block(x.Init, depth)
			}
			if x.Cond != nil {
				c.exprTree(x.Cond, depth)
			}
			if x.Post != nil {
				c.block(x.Post, depth+1)
			}
			c.block(x.Body, depth+1)
			return false
		case *ast.RangeStmt:
			c.exprTree(x.X, depth)
			c.block(x.Body, depth+1)
			return false
		case *ast.FuncLit:
			if depth > 0 {
				c.pass.Reportf(x.Pos(), "hotpath: closure literal in loop allocates per iteration")
			}
			c.block(x.Body, depth)
			return false
		default:
			if e, ok := x.(ast.Expr); ok {
				c.expr(e, depth)
			}
			if as, ok := x.(*ast.AssignStmt); ok {
				c.assign(as, depth)
			}
		}
		return true
	})
}

// exprTree checks a whole expression subtree at the given depth.
func (c *checker) exprTree(e ast.Expr, depth int) {
	ast.Inspect(e, func(x ast.Node) bool {
		if fl, ok := x.(*ast.FuncLit); ok {
			if depth > 0 {
				c.pass.Reportf(fl.Pos(), "hotpath: closure literal in loop allocates per iteration")
			}
			c.block(fl.Body, depth)
			return false
		}
		if ex, ok := x.(ast.Expr); ok {
			c.expr(ex, depth)
		}
		return true
	})
}

// expr checks one expression node (non-recursively; the caller's Inspect
// already walks children).
func (c *checker) expr(e ast.Expr, depth int) {
	info := c.pass.TypesInfo
	switch e := e.(type) {
	case *ast.CallExpr:
		if fn := analysis.FuncFor(info, e.Fun); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocators[fn.Name()] {
				c.pass.Reportf(e.Pos(), "hotpath: fmt.%s allocates; build strings with a pre-sized Builder or append", fn.Name())
				return
			}
		}
		if depth == 0 {
			return
		}
		switch {
		case analysis.IsBuiltin(info, e, "make"):
			c.pass.Reportf(e.Pos(), "hotpath: make in loop allocates per iteration; hoist and reuse")
		case analysis.IsBuiltin(info, e, "new"):
			c.pass.Reportf(e.Pos(), "hotpath: new in loop allocates per iteration; hoist and reuse")
		case analysis.IsBuiltin(info, e, "append"):
			if len(e.Args) > 0 {
				if id, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
					obj := info.Uses[id]
					if obj == nil {
						obj = info.Defs[id]
					}
					if obj != nil && c.presized[obj] {
						return
					}
				}
			}
			c.pass.Reportf(e.Pos(), "hotpath: append in loop without a capacity-presized destination may reallocate; pre-size with make(..., 0, n)")
		default:
			// String<->byte conversions: a call whose Fun is a type.
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
				to := tv.Type.Underlying()
				from := info.Types[e.Args[0]].Type
				if from == nil {
					return
				}
				fu := from.Underlying()
				if (isString(to) && isByteOrRuneSlice(fu)) || (isByteOrRuneSlice(to) && isString(fu)) {
					c.pass.Reportf(e.Pos(), "hotpath: string/[]byte conversion in loop copies per iteration")
				}
			}
		}
	case *ast.CompositeLit:
		if depth == 0 {
			return
		}
		t := info.Types[e].Type
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			c.pass.Reportf(e.Pos(), "hotpath: map literal in loop allocates per iteration")
		case *types.Slice:
			c.pass.Reportf(e.Pos(), "hotpath: slice literal in loop allocates per iteration")
		}
	case *ast.UnaryExpr:
		if depth > 0 && e.Op.String() == "&" {
			if _, ok := e.X.(*ast.CompositeLit); ok {
				c.pass.Reportf(e.Pos(), "hotpath: &composite literal in loop escapes to the heap per iteration")
			}
		}
	case *ast.BinaryExpr:
		if depth > 0 && e.Op.String() == "+" {
			if t := info.Types[e].Type; t != nil && isString(t.Underlying()) {
				c.pass.Reportf(e.Pos(), "hotpath: string concatenation in loop allocates; use a pre-sized Builder")
			}
		}
	}
}

// assign catches `s += t` string growth, which BinaryExpr misses.
func (c *checker) assign(as *ast.AssignStmt, depth int) {
	if depth == 0 || as.Tok.String() != "+=" || len(as.Lhs) != 1 {
		return
	}
	if t := c.pass.TypesInfo.Types[as.Lhs[0]].Type; t != nil && isString(t.Underlying()) {
		c.pass.Reportf(as.Pos(), "hotpath: string += in loop allocates; use a pre-sized Builder")
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32
}
