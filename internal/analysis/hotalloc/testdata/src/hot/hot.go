// Package hot exercises the hotalloc loop-allocation rules.
package hot

import (
	"fmt"
	"strings"
)

type point struct{ x, y int }

// Join is hot and allocation-dirty: every loop iteration pays.
//
//lego:hotpath
func Join(items []int) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprint(it) // want `hotpath: fmt\.Sprint allocates` `hotpath: string \+= in loop allocates`
	}
	return s
}

// Loops trips each in-loop allocation rule once.
//
//lego:hotpath
func Loops(n int) int {
	total := 0
	out := make([]int, 0, n) // pre-sized at depth 0: clean
	for i := 0; i < n; i++ {
		out = append(out, i)         // presized destination: clean
		m := make(map[string]int, 1) // want `hotpath: make in loop allocates per iteration`
		b := []byte("x")             // want `hotpath: string/\[\]byte conversion in loop copies`
		p := &point{i, i}            // want `hotpath: &composite literal in loop escapes`
		extra := []int{i}            // want `hotpath: slice literal in loop allocates`
		f := func() int { return i } // want `hotpath: closure literal in loop allocates`
		var unsized []int
		unsized = append(unsized, i) // want `hotpath: append in loop without a capacity-presized destination`
		total += len(m) + len(b) + p.x + len(extra) + f() + len(unsized)
	}
	return total + len(out)
}

// Errf pays the formatter even outside a loop.
//
//lego:hotpath
func Errf(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n) // want `hotpath: fmt\.Errorf allocates`
	}
	return nil
}

// Builder is hot and clean: pre-sized Builder, no loop allocation.
//
//lego:hotpath
func Builder(items []string) string {
	var sb strings.Builder
	sb.Grow(16 * len(items))
	for _, it := range items {
		sb.WriteString(it)
	}
	return sb.String()
}

// Cold has the same body as Join but no directive: clean.
func Cold(items []int) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprint(it)
	}
	return s
}

// Retry allocates on a bounded path and suppresses the finding; the runner
// drops Allowed diagnostics, so no want on the allow line.
//
//lego:hotpath
func Retry(n int) []string {
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, "retry") //lego:allow hotalloc — bounded by the retry budget, not the row count
	}
	return out
}

// stale demonstrates allow hygiene: the first directive suppresses nothing,
// the second is a directive-shaped typo.
func stale() int {
	x := 1 //lego:allow hotalloc — speculative suppression // want `unused //lego:allow hotalloc: no hotalloc diagnostic on this or the next line`
	//lego:allowx hotalloc — typo in the directive name // want `malformed //lego:allow`
	return x
}

var _ = stale
