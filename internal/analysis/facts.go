package analysis

// Cross-package facts.
//
// PR 6's throughput work rests on contracts that span compilation units: the
// set of AST node types (and which of them memoize their render) lives in
// sqlast, but the code that must respect those properties lives in mutate,
// instantiate, and minidb; the engine-owned Outcome buffers live in minidb,
// but the retention hazard lives in every caller. A single-package analyzer
// cannot see across that boundary, so the framework grows the same mechanism
// x/tools calls "facts": an analyzer running on a package may attach findings
// to that package's objects, and an analyzer running on a *downstream*
// package may query the facts of anything it imports.
//
// Facts flow in dependency order. In-process drivers (analysistest, the
// facts unit tests) analyze fixture dependencies before dependents and share
// one FactStore. Under the `go vet -vettool` protocol, facts are serialized
// into the .vetx file cmd/go asks each unit to write (see unitchecker),
// traveling alongside the gc export data exactly like the stock vet tool's
// facts do.
//
// Because a dependency is re-imported from export data in downstream units,
// object *identity* does not survive the package boundary. Facts are
// therefore keyed by a stable path — (package path, object path) — where the
// object path is one of:
//
//	"TypeName"            a package-level type, func, or var
//	"TypeName.Field"      a field of a package-level struct type
//	"TypeName.Method"     a method of a package-level type
//	""                    the package itself (package facts)
//
// This is a deliberately small subset of x/tools' objectpath, sufficient for
// every fact the legolint analyzers exchange.

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a typed datum attached to an object or package by one analyzer.
// Implementations must be pointers to JSON-serializable structs and must be
// listed in their analyzer's FactTypes so downstream units can decode them.
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// ObjectKey names one object (or package) across compilation units.
type ObjectKey struct {
	// Pkg is the import path of the package that owns the object.
	Pkg string
	// Object is the object path within the package; "" for package facts.
	Object string
}

// KeyedFact pairs a fact with the object it describes, for enumeration.
type KeyedFact struct {
	Key  ObjectKey
	Fact Fact
}

// factID keys the store: one fact per (analyzer, object, fact type).
type factID struct {
	analyzer string
	key      ObjectKey
	typeName string
}

// FactStore accumulates facts across the passes of one analysis run (all
// units in-process, or one unit plus everything decoded from its
// dependencies' vetx files).
type FactStore struct {
	facts map[factID]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factID]Fact{}}
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

func (s *FactStore) put(analyzer string, key ObjectKey, f Fact) {
	s.facts[factID{analyzer, key, factTypeName(f)}] = f
}

// get copies the stored fact (if any) into dst, which must be a pointer to
// the same concrete type the producer exported.
func (s *FactStore) get(analyzer string, key ObjectKey, dst Fact) bool {
	f, ok := s.facts[factID{analyzer, key, factTypeName(dst)}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	fv := reflect.ValueOf(f)
	if dv.Type() != fv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(fv.Elem())
	return true
}

// objectFacts returns every fact the analyzer attached to objects of the
// package, sorted by object path for deterministic iteration.
func (s *FactStore) objectFacts(analyzer, pkgPath string) []KeyedFact {
	var out []KeyedFact
	for id, f := range s.facts {
		if id.analyzer == analyzer && id.key.Pkg == pkgPath && id.key.Object != "" {
			out = append(out, KeyedFact{Key: id.key, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Object < out[j].Key.Object })
	return out
}

// ---------------------------------------------------------------------------
// Serialization (the .vetx wire format)

type wireFact struct {
	Analyzer string          `json:"analyzer"`
	Pkg      string          `json:"pkg"`
	Object   string          `json:"object,omitempty"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

type wireFacts struct {
	Version int        `json:"version"`
	Facts   []wireFact `json:"facts"`
}

// factsVersion stamps the wire format; a mismatch makes Decode fail loudly
// rather than silently dropping contract information.
const factsVersion = 1

// Encode serializes the whole store. The output is deterministic: facts are
// sorted by (analyzer, pkg, object, type). Every unit writes its complete
// store — imported facts included — so downstream units see transitive facts
// even when the driver only hands them direct dependencies' files.
func (s *FactStore) Encode() ([]byte, error) {
	wf := wireFacts{Version: factsVersion}
	for id, f := range s.facts {
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("encoding fact %s for %s.%s: %w", id.typeName, id.key.Pkg, id.key.Object, err)
		}
		wf.Facts = append(wf.Facts, wireFact{
			Analyzer: id.analyzer,
			Pkg:      id.key.Pkg,
			Object:   id.key.Object,
			Type:     id.typeName,
			Data:     data,
		})
	}
	sort.Slice(wf.Facts, func(i, j int) bool {
		a, b := wf.Facts[i], wf.Facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(wf)
}

// Decode merges serialized facts into the store. Fact types are resolved
// through the analyzers' FactTypes declarations; facts from analyzers or
// types not in this build are skipped (an older tool's facts must not crash
// a newer one). Empty input is a valid empty store: cmd/go materializes
// zero-byte vetx files for fact-free packages.
func (s *FactStore) Decode(data []byte, analyzers []*Analyzer) error {
	if len(data) == 0 {
		return nil
	}
	registry := map[string]map[string]reflect.Type{}
	for _, a := range analyzers {
		m := map[string]reflect.Type{}
		for _, f := range a.FactTypes {
			m[factTypeName(f)] = reflect.TypeOf(f)
		}
		registry[a.Name] = m
	}
	var wf wireFacts
	if err := json.Unmarshal(data, &wf); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	if wf.Version != factsVersion {
		return fmt.Errorf("facts version %d, tool supports %d", wf.Version, factsVersion)
	}
	for _, w := range wf.Facts {
		typ, ok := registry[w.Analyzer][w.Type]
		if !ok {
			continue
		}
		fv := reflect.New(typ.Elem())
		if err := json.Unmarshal(w.Data, fv.Interface()); err != nil {
			return fmt.Errorf("decoding %s fact %s for %s.%s: %w", w.Analyzer, w.Type, w.Pkg, w.Object, err)
		}
		f, ok := fv.Interface().(Fact)
		if !ok {
			continue
		}
		s.put(w.Analyzer, ObjectKey{Pkg: w.Pkg, Object: w.Object}, f)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Object paths

// ObjectKeyOf computes the cross-unit key of an object: a package-level
// type/func/var, a method, or a field of a package-level struct type. It
// reports false for objects outside that vocabulary (locals, unnamed types),
// which simply cannot carry facts.
func ObjectKeyOf(obj types.Object) (ObjectKey, bool) {
	pkg := obj.Pkg()
	if pkg == nil {
		return ObjectKey{}, false
	}
	// Methods: Recv.Name.
	if fn, ok := obj.(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			recv := NamedType(sig.Recv().Type())
			if recv == "" {
				return ObjectKey{}, false
			}
			return ObjectKey{Pkg: pkg.Path(), Object: recv + "." + fn.Name()}, true
		}
	}
	// Struct fields: Owner.Name, found by scanning package-level types.
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		if owner := fieldOwner(pkg, v); owner != "" {
			return ObjectKey{Pkg: pkg.Path(), Object: owner + "." + v.Name()}, true
		}
		return ObjectKey{}, false
	}
	if obj.Parent() == pkg.Scope() {
		return ObjectKey{Pkg: pkg.Path(), Object: obj.Name()}, true
	}
	return ObjectKey{}, false
}

// fieldOwner finds the package-level struct type declaring the field.
func fieldOwner(pkg *types.Package, field *types.Var) string {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return name
			}
		}
	}
	return ""
}
