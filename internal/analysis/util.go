package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// PathEnclosing returns the chain of AST nodes containing pos, innermost
// last. It is a simplified astutil.PathEnclosingInterval sufficient for
// finding enclosing function bodies and declarations.
func PathEnclosing(file *ast.File, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}

// EnclosingFuncBody returns the body of the innermost function declaration
// or literal containing pos, and the FuncDecl when that innermost function
// is a declaration (nil for a literal).
func EnclosingFuncBody(file *ast.File, pos token.Pos) (*ast.BlockStmt, *ast.FuncDecl) {
	path := PathEnclosing(file, pos)
	for i := len(path) - 1; i >= 0; i-- {
		switch fn := path[i].(type) {
		case *ast.FuncLit:
			return fn.Body, nil
		case *ast.FuncDecl:
			return fn.Body, fn
		}
	}
	return nil, nil
}

// FuncFor resolves a call or selector expression to the *types.Func it
// invokes, or nil when the callee is not a declared function or method.
func FuncFor(info *types.Info, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// IsBuiltin reports whether the call invokes the named universe builtin
// (panic, recover, append, ...), respecting shadowing.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// PkgNameOf reports the import path of the package a selector's base names,
// or "" when the base is not a package identifier ("sort" in sort.Slice).
func PkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// ExprString renders an expression compactly, for matching the slice
// appended inside a loop against the slice later passed to sort.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// NamedType unwraps pointers and aliases and returns the defined type's
// name, or "" for unnamed types.
func NamedType(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	if a, ok := t.(*types.Alias); ok {
		return a.Obj().Name()
	}
	return ""
}

// IsMapType reports whether the type is (an alias or defined type whose
// underlying type is) a map.
func IsMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
