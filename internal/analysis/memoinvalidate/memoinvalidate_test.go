package memoinvalidate_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/memoinvalidate"
)

func TestMemoInvalidate(t *testing.T) {
	analysistest.Run(t, memoinvalidate.Analyzer, "mutator")
}
