// Package memoinvalidate guards the render-memoization contract from PR 6:
// a write through a field of an sqlast node outside the AST-owning packages
// must be paired with a call to sqlast.InvalidateSQL (or InvalidateTestCase)
// on some call path that reaches the write, or the node — or a memoized
// ancestor holding it — keeps serving stale cached SQL.
//
// The sqlast package exports a MemoNodeFact for every node type (Memoized
// marks the ten types embedding sqlMemo; the rest matter because a mutation
// below a memoized ancestor stales the ancestor). Downstream packages are
// then checked:
//
//   - sqlast and sqlparse are exempt wholesale: constructors and parsers
//     assemble fresh nodes whose memo is cold by construction.
//   - A write whose root identifier is a local built from a composite
//     literal in its defining statement (x := &T{...}) is exempt for the
//     same reason.
//   - Every other node-field write must be *covered*: the containing
//     function's strongly connected component in the intra-package call
//     graph either calls an invalidator directly, or is reachable only
//     from covered components. References to a function as a value (e.g.
//     a RewriteExpr callback) count as calls, conservatively. A component
//     containing an exported function must invalidate directly — external
//     callers are invisible to the intra-package graph.
//
// This validates the shapes the repo actually uses: mutate.MutateValues and
// instantiate.Fixer.Fix invalidate at the loop head, covering the private
// mutation helpers below them.
package memoinvalidate

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/seqfuzz/lego/internal/analysis"
)

// MemoNodeFact marks one sqlast type as an AST node; Memoized marks the
// subset that caches its render.
type MemoNodeFact struct {
	Memoized bool `json:"memoized,omitempty"`
}

// AFact marks MemoNodeFact as a fact.
func (*MemoNodeFact) AFact() {}

// Analyzer is the memoinvalidate analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "memoinvalidate",
	Doc:       "in-place sqlast node mutations must have sqlast.InvalidateSQL on a call path",
	Run:       run,
	FactTypes: []analysis.Fact{(*MemoNodeFact)(nil)},
}

// exemptPkgs own node construction; their field writes are the constructors.
var exemptPkgs = map[string]bool{"sqlast": true, "sqlparse": true}

func run(pass *analysis.Pass) error {
	base := analysis.PkgBase(pass.Pkg.Path())
	if base == "sqlast" {
		exportNodeFacts(pass)
		return nil
	}
	if exemptPkgs[base] {
		return nil
	}

	// Find the imported sqlast package and its node inventory.
	var astPkg *types.Package
	for _, imp := range pass.Pkg.Imports() {
		if analysis.PkgBase(imp.Path()) == "sqlast" {
			astPkg = imp
			break
		}
	}
	if astPkg == nil {
		return nil // no sqlast in sight, nothing to mutate
	}
	nodes := map[string]bool{}
	for _, kf := range pass.PkgObjectFacts(astPkg.Path()) {
		if _, ok := kf.Fact.(*MemoNodeFact); ok {
			nodes[kf.Key.Object] = true
		}
	}
	if len(nodes) == 0 {
		return nil
	}

	g := buildGraph(pass, astPkg, nodes)
	covered := g.coverage()
	for _, fn := range g.order {
		fi := g.funcs[fn]
		if covered[fi.scc] {
			continue
		}
		for _, m := range fi.mutations {
			pass.Reportf(m.pos, "write to sqlast node field %s may serve stale memoized SQL: no sqlast.InvalidateSQL/InvalidateTestCase on any call path into %s", m.expr, fn.Name())
		}
	}
	return nil
}

// exportNodeFacts runs in sqlast itself: one MemoNodeFact per node type.
func exportNodeFacts(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	ifaces := make([]*types.Interface, 0, 3)
	for _, name := range []string{"Statement", "Expr", "TableRef"} {
		if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, iface)
			}
		}
	}
	var memoized *types.Interface
	if tn, ok := scope.Lookup("memoized").(*types.TypeName); ok {
		memoized, _ = tn.Type().Underlying().(*types.Interface)
	}
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
			continue
		}
		isNode := false
		for _, iface := range ifaces {
			if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
				isNode = true
				break
			}
		}
		if !isNode {
			continue
		}
		fact := &MemoNodeFact{}
		if memoized != nil && types.Implements(types.NewPointer(tn.Type()), memoized) {
			fact.Memoized = true
		}
		pass.ExportObjectFact(tn, fact)
	}
}

// mutation is one node-field write awaiting coverage.
type mutation struct {
	pos  token.Pos
	expr string
}

// funcInfo is one declared function in the call graph.
type funcInfo struct {
	decl      *ast.FuncDecl
	callees   []*types.Func // package-local functions called or referenced
	direct    bool          // calls an invalidator directly
	exported  bool
	mutations []mutation
	scc       int
}

type graph struct {
	pass   *analysis.Pass
	astPkg *types.Package
	nodes  map[string]bool
	funcs  map[*types.Func]*funcInfo
	order  []*types.Func // declaration order, for deterministic reports
}

func buildGraph(pass *analysis.Pass, astPkg *types.Package, nodes map[string]bool) *graph {
	g := &graph{pass: pass, astPkg: astPkg, nodes: nodes, funcs: map[*types.Func]*funcInfo{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{decl: fd, exported: fd.Name.IsExported()}
			g.funcs[fn] = fi
			g.order = append(g.order, fn)
		}
	}
	for fn, fi := range g.funcs {
		g.scan(fn, fi)
	}
	g.condense()
	return g
}

// scan walks one function body, recording local-package calls/references,
// direct invalidator calls, locally constructed roots, and node mutations.
func (g *graph) scan(fn *types.Func, fi *funcInfo) {
	info := g.pass.TypesInfo
	fresh := map[types.Object]bool{} // locals whose defining RHS is a composite literal
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if isCompositeConstruction(n.Rhs[i]) {
						if obj := info.Defs[id]; obj != nil {
							fresh[obj] = true
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				g.checkWrite(fi, lhs, fresh)
			}
		case *ast.IncDecStmt:
			g.checkWrite(fi, n.X, fresh)
		case *ast.Ident:
			if callee, ok := info.Uses[n].(*types.Func); ok {
				if _, local := g.funcs[callee]; local {
					fi.callees = append(fi.callees, callee)
				}
			}
		case *ast.SelectorExpr:
			if callee, ok := info.Uses[n.Sel].(*types.Func); ok {
				if _, local := g.funcs[callee]; local {
					fi.callees = append(fi.callees, callee)
				}
				if callee.Pkg() != nil && callee.Pkg().Path() == g.astPkg.Path() &&
					(callee.Name() == "InvalidateSQL" || callee.Name() == "InvalidateTestCase") {
					fi.direct = true
				}
			}
		}
		return true
	})
}

// isCompositeConstruction reports whether the expression builds a fresh
// value: T{...}, &T{...}, or a Clone() call (clones start memo-cold but
// mutating one still needs invalidation — a clone of a memoized node starts
// cold only until its first render, so Clone results are NOT fresh here;
// only literals are).
func isCompositeConstruction(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// checkWrite records a mutation when the LHS writes through a field whose
// base is an sqlast node type and the write can alias a node the caller
// holds. Two shapes are safe by construction and exempt:
//
//   - the root is a local freshly built from a composite literal in its
//     defining statement (memo cold, nothing else aliases it yet)
//   - every node-typed base in the selector chain is a plain struct value
//     and the root is a local: `plain := *fc; plain.Over = nil` mutates a
//     stack copy, not the shared AST
func (g *graph) checkWrite(fi *funcInfo, lhs ast.Expr, fresh map[types.Object]bool) {
	info := g.pass.TypesInfo
	throughNodePtr := false   // a node reached through a pointer: aliases the AST
	throughNodeValue := false // a node base held by value: a copy
	e := lhs
	var root *ast.Ident
walk:
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Only field selections can be assignment bases, so any
			// selector step off a node type here is a field write.
			if t := info.Types[x.X].Type; t != nil && g.isNodeType(t) {
				if _, ptr := t.(*types.Pointer); ptr {
					throughNodePtr = true
				} else {
					throughNodeValue = true
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			// Explicit deref: the target lives behind a pointer.
			if t := info.Types[x.X].Type; t != nil && g.isNodeType(t) {
				throughNodePtr = true
			}
			e = x.X
		case *ast.Ident:
			root = x
			break walk
		default:
			break walk
		}
	}
	if !throughNodePtr && !throughNodeValue {
		return
	}
	var rootObj types.Object
	if root != nil {
		rootObj = info.Uses[root]
		if rootObj == nil {
			rootObj = info.Defs[root]
		}
	}
	if rootObj != nil && fresh[rootObj] {
		return
	}
	if !throughNodePtr && rootObj != nil {
		if v, ok := rootObj.(*types.Var); ok && !v.IsField() && v.Parent() != g.pass.Pkg.Scope() {
			return // value-typed local copy
		}
	}
	fi.mutations = append(fi.mutations, mutation{pos: lhs.Pos(), expr: analysis.ExprString(g.pass.Fset, lhs)})
}

// isNodeType reports whether t (after pointer deref) is a named sqlast node.
func (g *graph) isNodeType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == g.astPkg.Path() && g.nodes[obj.Name()]
}

// condense assigns SCC ids (Tarjan) over the call graph.
func (g *graph) condense() {
	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	next, nscc := 0, 0
	var strongconnect func(fn *types.Func)
	strongconnect = func(fn *types.Func) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		for _, callee := range g.funcs[fn].callees {
			if _, seen := index[callee]; !seen {
				strongconnect(callee)
				if low[callee] < low[fn] {
					low[fn] = low[callee]
				}
			} else if onStack[callee] && index[callee] < low[fn] {
				low[fn] = index[callee]
			}
		}
		if low[fn] == index[fn] {
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				g.funcs[top].scc = nscc
				if top == fn {
					break
				}
			}
			nscc++
		}
	}
	for _, fn := range g.order {
		if _, seen := index[fn]; !seen {
			strongconnect(fn)
		}
	}
}

// coverage computes which SCCs are invalidation-covered: a component that
// invalidates directly, or one whose every caller component is covered (and
// that has at least one caller, and no exported entry point).
func (g *graph) coverage() map[int]bool {
	direct := map[int]bool{}
	exported := map[int]bool{}
	callers := map[int]map[int]bool{}
	sccs := map[int]bool{}
	for fn, fi := range g.funcs {
		sccs[fi.scc] = true
		if fi.direct {
			direct[fi.scc] = true
		}
		if fi.exported {
			exported[fi.scc] = true
		}
		for _, callee := range fi.callees {
			cs := g.funcs[callee].scc
			if cs == fi.scc {
				continue
			}
			if callers[cs] == nil {
				callers[cs] = map[int]bool{}
			}
			callers[cs][g.funcs[fn].scc] = true
		}
	}
	covered := map[int]bool{}
	for scc := range sccs {
		covered[scc] = direct[scc]
	}
	// Propagate down the condensation DAG to a fixpoint; the graph is tiny
	// (one package), so iterate until stable.
	for changed := true; changed; {
		changed = false
		for scc := range sccs {
			if covered[scc] || direct[scc] || exported[scc] {
				continue
			}
			cs := callers[scc]
			if len(cs) == 0 {
				continue
			}
			all := true
			for c := range cs {
				if !covered[c] {
					all = false
					break
				}
			}
			if all {
				covered[scc] = true
				changed = true
			}
		}
	}
	return covered
}
