// Package mutator exercises memoinvalidate's coverage analysis against the
// sqlast fixture's node facts.
package mutator

import "sqlast"

// Bump mutates with no invalidation on any path: flagged.
func Bump(q *sqlast.SelectStmt) {
	q.Limit++ // want `write to sqlast node field q\.Limit may serve stale memoized SQL: no sqlast\.InvalidateSQL/InvalidateTestCase on any call path into Bump`
}

// SetWhere mutates and invalidates directly: clean.
func SetWhere(q *sqlast.SelectStmt, w sqlast.Expr) {
	q.Where = w
	sqlast.InvalidateSQL(q)
}

// raiseLimit is private and only called under invalidating callers: clean.
func raiseLimit(q *sqlast.SelectStmt) {
	q.Limit += 10
}

// RaiseAll invalidates at the loop head, covering raiseLimit.
func RaiseAll(tc []sqlast.Statement) {
	sqlast.InvalidateTestCase(tc)
	for _, s := range tc {
		if q, ok := s.(*sqlast.SelectStmt); ok {
			raiseLimit(q)
		}
	}
}

// orphanClear mutates in a private function nobody calls: flagged (no
// covered caller exists to vouch for it).
func orphanClear(q *sqlast.SelectStmt) {
	q.Where = nil // want `write to sqlast node field q\.Where may serve stale memoized SQL`
}

// Fresh mutates a local built from a composite literal: the memo is cold by
// construction, clean.
func Fresh(limit int64) *sqlast.SelectStmt {
	q := &sqlast.SelectStmt{}
	q.Limit = limit
	return q
}

// Copy mutates a stack value copy, not the shared AST: clean.
func Copy(q *sqlast.SelectStmt) int64 {
	plain := *q
	plain.Limit = 0
	return plain.Limit
}

// Tweak mutates a constructor result; not statically fresh, so it must be
// suppressed explicitly — the runner drops the Allowed finding.
func Tweak() *sqlast.SelectStmt {
	q := sqlast.NewSelect(1)
	q.Limit = 2 //lego:allow memoinvalidate — NewSelect returns a never-rendered node whose memo is still cold
	return q
}
