// Package sqlast is a miniature memoizing AST for the memoinvalidate
// fixtures: one memoized statement, one plain expression, and the two
// invalidators. Field writes here are constructors and exempt.
package sqlast

// Statement is the statement node interface.
type Statement interface{ SQL() string }

// Expr is the expression node interface.
type Expr interface{ ExprSQL() string }

// sqlMemo caches a rendered statement; the zero value is cold.
type sqlMemo struct{ memoSQL string }

func (m *sqlMemo) clearMemo() { m.memoSQL = "" }

// memoized is satisfied by statements embedding sqlMemo.
type memoized interface{ clearMemo() }

// SelectStmt is a memoized node.
type SelectStmt struct {
	sqlMemo
	Where Expr
	Limit int64
}

// SQL implements Statement.
func (s *SelectStmt) SQL() string {
	if s.memoSQL == "" {
		s.memoSQL = "SELECT"
	}
	return s.memoSQL
}

// Literal is a plain (unmemoized) expression node.
type Literal struct{ Val int64 }

// ExprSQL implements Expr.
func (*Literal) ExprSQL() string { return "1" }

// NewSelect builds a statement; writes in the owner package are exempt.
func NewSelect(limit int64) *SelectStmt {
	s := &SelectStmt{}
	s.Limit = limit
	return s
}

// InvalidateSQL clears the cached render of s.
func InvalidateSQL(s Statement) {
	if m, ok := s.(memoized); ok {
		m.clearMemo()
	}
}

// InvalidateTestCase clears every statement in the sequence.
func InvalidateTestCase(tc []Statement) {
	for _, s := range tc {
		InvalidateSQL(s)
	}
}
