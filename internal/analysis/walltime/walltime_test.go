package walltime_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, "oracle", "report")
}
