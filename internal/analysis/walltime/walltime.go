// Package walltime forbids wall-clock reads in the determinism-critical
// packages.
//
// Anything the fuzzing loop, the oracle, or the checkpoint writer derives
// from time.Now differs between two otherwise-identical campaigns, breaking
// the byte-exact resume and double-run equivalence the triage pipeline
// depends on. Progress must be measured in logical units (statements,
// executions, iterations); CLI and reporting packages, which legitimately
// time operator-facing output, are outside the gated set.
package walltime

import (
	"go/ast"
	"go/types"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Analyzer is the walltime check.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc:  "forbids time.Now/time.Since wall-clock reads in determinism-critical packages",
	Run:  run,
}

// clockFns are the package-level time functions that observe the wall
// clock. Pure constructors (time.Duration, time.Date with fixed arguments)
// and formatting stay legal.
var clockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on time.Time values carry no new clock read
			}
			if clockFns[fn.Name()] {
				pass.Reportf(n.Pos(),
					"wall-clock read time.%s in determinism-critical package %s; measure progress in logical units (statements, executions) instead",
					fn.Name(), analysis.PkgBase(pass.Pkg.Path()))
			}
			return true
		})
	}
	return nil
}
