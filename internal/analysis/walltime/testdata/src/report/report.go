// Package report is a walltime fixture for the gating rule: reporting and
// CLI packages are outside the determinism-critical set, so operator-facing
// timing stays legal.
package report

import "time"

func took(t0 time.Time) time.Duration { return time.Since(t0) }
