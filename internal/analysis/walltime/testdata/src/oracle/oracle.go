// Package oracle is a walltime fixture: its name is in the
// determinism-critical set, so wall-clock reads are flagged.
package oracle

import "time"

// stamp reads the wall clock: flagged.
func stamp() time.Time {
	return time.Now() // want `wall-clock read time\.Now in determinism-critical package oracle`
}

// elapsed reads the wall clock through Since: flagged.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

// tick schedules on the wall clock: flagged.
func tick() <-chan time.Time {
	return time.After(time.Second) // want `wall-clock read time\.After`
}

// pureDuration does arithmetic on caller-provided times without a new clock
// read: clean.
func pureDuration(a, b time.Time) time.Duration {
	return b.Sub(a)
}

// suppressed demonstrates the //lego:allow directive: no finding reported.
func suppressed() time.Time {
	return time.Now() //lego:allow walltime — fixture demonstrating suppression
}
