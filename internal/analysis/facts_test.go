package analysis

import (
	"bytes"
	"testing"
)

// stubFact is a minimal serializable fact for store tests.
type stubFact struct {
	Tag string `json:"tag,omitempty"`
}

func (*stubFact) AFact() {}

// otherFact exercises the one-fact-per-type slot behavior.
type otherFact struct {
	N int `json:"n,omitempty"`
}

func (*otherFact) AFact() {}

var stubAnalyzer = &Analyzer{
	Name:      "stub",
	Doc:       "test analyzer",
	Run:       func(*Pass) error { return nil },
	FactTypes: []Fact{(*stubFact)(nil), (*otherFact)(nil)},
}

func TestFactStoreRoundTrip(t *testing.T) {
	src := NewFactStore()
	src.put("stub", ObjectKey{Pkg: "sqlast", Object: "SelectStmt"}, &stubFact{Tag: "memoized"})
	src.put("stub", ObjectKey{Pkg: "sqlast", Object: "Outcome.Results"}, &stubFact{Tag: "borrowed"})
	src.put("stub", ObjectKey{Pkg: "sqlast"}, &otherFact{N: 7})

	data, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}

	dst := NewFactStore()
	if err := dst.Decode(data, []*Analyzer{stubAnalyzer}); err != nil {
		t.Fatal(err)
	}

	var sf stubFact
	if !dst.get("stub", ObjectKey{Pkg: "sqlast", Object: "SelectStmt"}, &sf) || sf.Tag != "memoized" {
		t.Fatalf("object fact did not round-trip: %+v", sf)
	}
	if !dst.get("stub", ObjectKey{Pkg: "sqlast", Object: "Outcome.Results"}, &sf) || sf.Tag != "borrowed" {
		t.Fatalf("field fact did not round-trip: %+v", sf)
	}
	var of otherFact
	if !dst.get("stub", ObjectKey{Pkg: "sqlast"}, &of) || of.N != 7 {
		t.Fatalf("package fact did not round-trip: %+v", of)
	}

	// Enumeration skips the package fact and sorts by object path.
	kfs := dst.objectFacts("stub", "sqlast")
	if len(kfs) != 2 || kfs[0].Key.Object != "Outcome.Results" || kfs[1].Key.Object != "SelectStmt" {
		t.Fatalf("objectFacts = %+v", kfs)
	}
}

func TestFactStoreEncodeDeterministic(t *testing.T) {
	build := func() []byte {
		s := NewFactStore()
		s.put("stub", ObjectKey{Pkg: "b", Object: "Z"}, &stubFact{Tag: "z"})
		s.put("stub", ObjectKey{Pkg: "a", Object: "Y"}, &stubFact{Tag: "y"})
		s.put("stub", ObjectKey{Pkg: "a", Object: "X"}, &otherFact{N: 1})
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("Encode is not deterministic:\n%s\n%s", a, b)
	}
}

func TestFactStoreDecodeSkipsUnknown(t *testing.T) {
	src := NewFactStore()
	src.put("stub", ObjectKey{Pkg: "p", Object: "T"}, &stubFact{Tag: "keep"})
	src.put("ghost", ObjectKey{Pkg: "p", Object: "T"}, &stubFact{Tag: "drop"})
	data, err := src.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dst := NewFactStore()
	if err := dst.Decode(data, []*Analyzer{stubAnalyzer}); err != nil {
		t.Fatal(err)
	}
	var sf stubFact
	if !dst.get("stub", ObjectKey{Pkg: "p", Object: "T"}, &sf) || sf.Tag != "keep" {
		t.Fatal("known analyzer's fact lost")
	}
	if dst.get("ghost", ObjectKey{Pkg: "p", Object: "T"}, &sf) {
		t.Fatal("unknown analyzer's fact should be skipped")
	}
}

func TestFactStoreDecodeEmptyAndVersion(t *testing.T) {
	s := NewFactStore()
	if err := s.Decode(nil, []*Analyzer{stubAnalyzer}); err != nil {
		t.Fatalf("empty input must decode to an empty store: %v", err)
	}
	if err := s.Decode([]byte(`{"version":99,"facts":[]}`), []*Analyzer{stubAnalyzer}); err == nil {
		t.Fatal("version mismatch must fail loudly")
	}
}
