package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestPkgBase(t *testing.T) {
	cases := map[string]string{
		"github.com/seqfuzz/lego/internal/corpus": "corpus",
		"corpus":                       "corpus",
		"corpus.test":                  "corpus",
		"corpus_test":                  "corpus",
		"github.com/x/minidb [m.test]": "minidb",
		"cmd/legofuzz":                 "legofuzz",
	}
	for in, want := range cases {
		if got := PkgBase(in); got != want {
			t.Errorf("PkgBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDeterministicGate(t *testing.T) {
	for _, path := range []string{
		"github.com/seqfuzz/lego/internal/core",
		"github.com/seqfuzz/lego/internal/minidb",
		"github.com/seqfuzz/lego/internal/chaos",
		"oracle",
	} {
		if !Deterministic(path) {
			t.Errorf("Deterministic(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"github.com/seqfuzz/lego/cmd/legofuzz",
		"github.com/seqfuzz/lego/internal/experiment",
		"github.com/seqfuzz/lego/internal/harness",
	} {
		if Deterministic(path) {
			t.Errorf("Deterministic(%q) = true, want false", path)
		}
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		name    string
		reason  string
		ok      bool
	}{
		{"//lego:allow detrange — caller sorts downstream", "detrange", "caller sorts downstream", true},
		{"//lego:allow detrange - caller sorts downstream", "detrange", "caller sorts downstream", true},
		{"//lego:allow walltime operator-facing timestamp", "walltime", "operator-facing timestamp", true},
		{"//lego:allow detrange", "", "", false},   // no reason
		{"//lego:allow detrange —", "", "", false}, // dash but no reason
		{"//lego:allowdetrange reason", "", "", false},
		{"// lego:allow detrange reason", "", "", false}, // directives take no space
		{"//lego:injector", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := parseAllow(c.comment)
		if ok != c.ok || name != c.name || reason != c.reason {
			t.Errorf("parseAllow(%q) = (%q, %q, %v), want (%q, %q, %v)", c.comment, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}

func TestHasDirective(t *testing.T) {
	src := `package p

// inject raises a fault.
//
//lego:injector
func inject() {}

// plain has no directive.
func plain() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]bool{}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			docs[fd.Name.Name] = HasDirective(fd.Doc, "injector")
		}
	}
	if !docs["inject"] {
		t.Error("inject: directive not detected")
	}
	if docs["plain"] {
		t.Error("plain: spurious directive")
	}
}
