package unitchecker

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/analysis"
	"github.com/seqfuzz/lego/internal/analysis/detrange"
)

// writeUnit materializes a one-file package and its vet config, returning
// the cfg path and the vetx output path.
func writeUnit(t *testing.T, src string, vetxOnly bool) (string, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "corpus.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "corpus.vetx")
	cfg := Config{
		ID:          "corpus",
		Compiler:    "gc",
		ImportPath:  "corpus",
		GoVersion:   "go1.22",
		GoFiles:     []string{goFile},
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "corpus.cfg")
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgFile, vetx
}

const violatingSrc = `package corpus

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// TestRunUnitReportsFindings drives the cfg protocol end to end on a
// package with a detrange violation: the finding comes back and the facts
// file is written.
func TestRunUnitReportsFindings(t *testing.T) {
	cfgFile, vetx := writeUnit(t, violatingSrc, false)
	res, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(res.diags), res.diags)
	}
	if !strings.Contains(res.diags[0].Message, "order-dependent effect") {
		t.Fatalf("unexpected message: %s", res.diags[0].Message)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

// TestRunUnitVetxOnly asserts dependency-only units produce facts but no
// findings and skip analysis entirely.
func TestRunUnitVetxOnly(t *testing.T) {
	cfgFile, vetx := writeUnit(t, violatingSrc, true)
	res, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.diags) != 0 {
		t.Fatalf("VetxOnly unit reported findings: %+v", res.diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

// TestRunUnitSucceedOnTypecheckFailure mirrors cmd/go's contract: a broken
// package must exit quietly when the flag is set (the compile step owns the
// error), and loudly when it is not.
func TestRunUnitSucceedOnTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	goFile := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(goFile, []byte("package broken\n\nfunc f() int { return undeclared }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	for _, succeed := range []bool{true, false} {
		cfg := Config{
			ID: "broken", Compiler: "gc", ImportPath: "broken", GoVersion: "go1.22",
			GoFiles: []string{goFile}, ImportMap: map[string]string{}, PackageFile: map[string]string{},
			SucceedOnTypecheckFailure: succeed,
		}
		data, _ := json.Marshal(cfg)
		cfgFile := filepath.Join(dir, "broken.cfg")
		if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
			t.Fatal(err)
		}
		_, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
		if succeed && err != nil {
			t.Fatalf("SucceedOnTypecheckFailure: got error %v", err)
		}
		if !succeed && err == nil {
			t.Fatal("expected a type-check error without SucceedOnTypecheckFailure")
		}
	}
}
