package unitchecker

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/analysis"
	"github.com/seqfuzz/lego/internal/analysis/detrange"
	"github.com/seqfuzz/lego/internal/analysis/nodeexhaustive"
)

// writeUnit materializes a one-file package and its vet config, returning
// the cfg path and the vetx output path.
func writeUnit(t *testing.T, src string, vetxOnly bool) (string, string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "corpus.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "corpus.vetx")
	cfg := Config{
		ID:          "corpus",
		Compiler:    "gc",
		ImportPath:  "corpus",
		GoVersion:   "go1.22",
		GoFiles:     []string{goFile},
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "corpus.cfg")
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgFile, vetx
}

const violatingSrc = `package corpus

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// TestRunUnitReportsFindings drives the cfg protocol end to end on a
// package with a detrange violation: the finding comes back and the facts
// file is written.
func TestRunUnitReportsFindings(t *testing.T) {
	cfgFile, vetx := writeUnit(t, violatingSrc, false)
	res, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(res.diags), res.diags)
	}
	if !strings.Contains(res.diags[0].Message, "order-dependent effect") {
		t.Fatalf("unexpected message: %s", res.diags[0].Message)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

// TestRunUnitVetxOnly asserts dependency-only units produce a vetx file but
// no findings (fact-free analyzers let the unit skip analysis outright).
func TestRunUnitVetxOnly(t *testing.T) {
	cfgFile, vetx := writeUnit(t, violatingSrc, true)
	res, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.diags) != 0 {
		t.Fatalf("VetxOnly unit reported findings: %+v", res.diags)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

const factDepSrc = `package sqlast

type Statement interface{ SQL() string }

type SelectStmt struct{}

func (*SelectStmt) SQL() string { return "SELECT" }

type BeginStmt struct{}

func (*BeginStmt) SQL() string { return "BEGIN" }
`

const factConsumerSrc = `package consumer

import "sqlast"

func dispatch(s sqlast.Statement) {
	//lego:exhaustive Statement
	switch s.(type) {
	case *sqlast.SelectStmt:
	}
}

var _ = dispatch
`

// TestFactRoundTrip drives two units through the full vet protocol: the
// sqlast unit runs VetxOnly and serializes its node facts; the consumer unit
// type-checks sqlast from real gc export data, decodes the vetx file, and
// must flag its non-exhaustive switch — which it can only do if the facts
// survived the round-trip.
func TestFactRoundTrip(t *testing.T) {
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}
	dir := t.TempDir()
	depGo := filepath.Join(dir, "sqlast.go")
	if err := os.WriteFile(depGo, []byte(factDepSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	depA := filepath.Join(dir, "sqlast.a")
	cmd := exec.Command(gobin, "tool", "compile", "-p", "sqlast", "-o", depA, depGo)
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("compiling dep export data: %v\n%s", err, out)
	}

	depVetx := filepath.Join(dir, "sqlast.vetx")
	depCfg := Config{
		ID: "sqlast", Compiler: "gc", ImportPath: "sqlast", GoVersion: "go1.22",
		GoFiles:   []string{depGo},
		ImportMap: map[string]string{}, PackageFile: map[string]string{},
		VetxOnly: true, VetxOutput: depVetx,
	}
	writeCfg := func(name string, cfg Config) string {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return p
	}
	analyzers := []*analysis.Analyzer{nodeexhaustive.Analyzer}
	res, err := runUnit(writeCfg("sqlast.cfg", depCfg), analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.diags) != 0 {
		t.Fatalf("VetxOnly unit reported findings: %+v", res.diags)
	}
	vetxData, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vetxData) == 0 {
		t.Fatal("fact-exporting VetxOnly unit wrote an empty vetx")
	}
	check := analysis.NewFactStore()
	if err := check.Decode(vetxData, analyzers); err != nil {
		t.Fatalf("vetx does not decode: %v", err)
	}

	consGo := filepath.Join(dir, "consumer.go")
	if err := os.WriteFile(consGo, []byte(factConsumerSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	consCfg := Config{
		ID: "consumer", Compiler: "gc", ImportPath: "consumer", GoVersion: "go1.22",
		GoFiles:     []string{consGo},
		ImportMap:   map[string]string{"sqlast": "sqlast"},
		PackageFile: map[string]string{"sqlast": depA},
		PackageVetx: map[string]string{"sqlast": depVetx},
		VetxOutput:  filepath.Join(dir, "consumer.vetx"),
	}
	res, err = runUnit(writeCfg("consumer.cfg", consCfg), analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(res.diags), res.diags)
	}
	if !strings.Contains(res.diags[0].Message, "missing BeginStmt") {
		t.Fatalf("unexpected message: %s", res.diags[0].Message)
	}
}

const allowedSrc = `package corpus

func keys(m map[string]int) []string {
	var out []string
	for k := range m { //lego:allow detrange — fixture exercises the allow channel
		out = append(out, k)
	}
	return out
}

func keysAgain(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// TestJSONDiagnostics asserts -json mode's shape: every finding appears,
// allowed ones carry their state and reason, and order is deterministic.
func TestJSONDiagnostics(t *testing.T) {
	cfgFile, _ := writeUnit(t, allowedSrc, false)
	res, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	jds := jsonDiagnostics(res.fset, res.diags)
	if len(jds) != 2 {
		t.Fatalf("got %d JSON diagnostics, want 2: %+v", len(jds), jds)
	}
	if jds[0].AllowState != "allowed" || jds[0].Reason == "" {
		t.Fatalf("first diagnostic should be allowed with a reason: %+v", jds[0])
	}
	if jds[1].AllowState != "reported" || jds[1].Reason != "" {
		t.Fatalf("second diagnostic should be reported: %+v", jds[1])
	}
	if jds[0].Line >= jds[1].Line || jds[0].Analyzer != "detrange" {
		t.Fatalf("unexpected order or analyzer: %+v", jds)
	}
	data, err := json.Marshal(jds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"allow_state": "allowed"`) && !strings.Contains(string(data), `"allow_state":"allowed"`) {
		t.Fatalf("serialized output missing allow_state: %s", data)
	}
}

// TestRunUnitSucceedOnTypecheckFailure mirrors cmd/go's contract: a broken
// package must exit quietly when the flag is set (the compile step owns the
// error), and loudly when it is not.
func TestRunUnitSucceedOnTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	goFile := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(goFile, []byte("package broken\n\nfunc f() int { return undeclared }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	for _, succeed := range []bool{true, false} {
		cfg := Config{
			ID: "broken", Compiler: "gc", ImportPath: "broken", GoVersion: "go1.22",
			GoFiles: []string{goFile}, ImportMap: map[string]string{}, PackageFile: map[string]string{},
			SucceedOnTypecheckFailure: succeed,
		}
		data, _ := json.Marshal(cfg)
		cfgFile := filepath.Join(dir, "broken.cfg")
		if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
			t.Fatal(err)
		}
		_, err := runUnit(cfgFile, []*analysis.Analyzer{detrange.Analyzer})
		if succeed && err != nil {
			t.Fatalf("SucceedOnTypecheckFailure: got error %v", err)
		}
		if !succeed && err == nil {
			t.Fatal("expected a type-check error without SucceedOnTypecheckFailure")
		}
	}
}
