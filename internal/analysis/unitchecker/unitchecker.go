// Package unitchecker implements the `go vet -vettool` protocol on top of
// the standard library, mirroring golang.org/x/tools/go/analysis/unitchecker
// closely enough that cmd/go drives legolint exactly like the stock vet
// tool: once per package, with a JSON config describing the files, the
// import map, and the export-data location of every dependency.
//
// The protocol has three entry points:
//
//   - `legolint -V=full` prints a version line that cmd/go hashes into its
//     action cache key. The line embeds a digest of the legolint executable
//     itself, so rebuilding the tool with changed analyzers invalidates
//     cached vet results.
//   - `legolint -flags` prints a JSON description of the analyzer flags the
//     tool accepts (-json only), which cmd/go uses to validate its command
//     line; `go vet -json -vettool=…` forwards -json through this channel.
//   - `legolint [-json] <unit>.cfg` analyzes one compilation unit.
//
// Type information is rebuilt per unit with go/types, importing dependency
// packages through importer.ForCompiler("gc", lookup) where lookup opens the
// export-data files cmd/go names in the config — the same mechanism the real
// unitchecker uses, minus the x/tools dependency (this build must work
// offline, so x/tools cannot be fetched).
//
// # Facts
//
// Cross-package facts ride the same per-unit protocol: before analysis the
// unit decodes the .vetx file of every dependency cmd/go lists in
// PackageVetx, and after analysis it serializes its full fact store —
// imported facts included, so transitive facts reach units that only see
// direct dependencies — to VetxOutput. Dependency-only units (VetxOnly) run
// the fact-exporting analyzers for their facts but report no findings;
// standard-library units short-circuit with an empty store, since no repo
// contract attaches facts to std objects.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Config is the JSON unit description cmd/go writes for each vetted
// package. Field set and meaning follow x/tools' unitchecker.Config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vettool protocol over the given analyzers and exits.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "legolint"
	args := os.Args[1:]

	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// cmd/go requires fields[1] == "version"; the digest makes the vet
		// action cache sensitive to the tool's own build.
		fmt.Printf("%s version %s (%s)\n", progname, selfDigest(), runtime.Version())
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The one tool flag cmd/go may forward: `go vet -json` becomes
		// `legolint -json <unit>.cfg`.
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as a JSON array on stdout"}]`)
		os.Exit(0)
	}
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		usage(progname, analyzers)
		os.Exit(0)
	}
	jsonOut := false
	var cfgFile string
	for _, a := range args {
		switch {
		case a == "-json" || a == "--json" || a == "-json=true" || a == "--json=true":
			jsonOut = true
		case a == "-json=false" || a == "--json=false":
			jsonOut = false
		case strings.HasSuffix(a, ".cfg") && cfgFile == "":
			cfgFile = a
		default:
			usage(progname, analyzers)
			os.Exit(1)
		}
	}
	if cfgFile == "" {
		usage(progname, analyzers)
		os.Exit(1)
	}

	res, err := runUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if jsonOut {
		// JSON mode reports everything — allowed findings included, with
		// their suppression state — and always exits 0, mirroring
		// `go vet -json`: the consumer decides what fails the build.
		data, err := json.MarshalIndent(jsonDiagnostics(res.fset, res.diags), "", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		os.Exit(0)
	}
	failed := false
	for _, d := range res.diags {
		if d.Allowed {
			continue
		}
		failed = true
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", res.fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if failed {
		os.Exit(2)
	}
	os.Exit(0)
}

// JSONDiagnostic is one finding in `legolint -json` output. The array is
// sorted by (file, line, col, analyzer) — same order as the text output —
// so CI diffs and annotations are stable across runs.
type JSONDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	AllowState string `json:"allow_state"` // "reported" | "allowed"
	Reason     string `json:"reason,omitempty"`
}

func jsonDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		jd := JSONDiagnostic{
			File:       pos.Filename,
			Line:       pos.Line,
			Col:        pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			AllowState: "reported",
			Reason:     d.AllowReason,
		}
		if d.Allowed {
			jd.AllowState = "allowed"
		}
		out = append(out, jd)
	}
	return out
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: statically enforces the campaign-determinism invariants.\n\n", progname)
	fmt.Fprintf(os.Stderr, "Usage: go vet -vettool=$(which %s) ./...\n\nAnalyzers:\n", progname)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintf(os.Stderr, "\nSuppress one finding with `//lego:allow <analyzer> — <reason>`.\n")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

type unitResult struct {
	fset  *token.FileSet
	diags []analysis.Diagnostic
}

// runUnit analyzes the single compilation unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (unitResult, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return unitResult{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return unitResult{}, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// cmd/go expects the facts file regardless of outcome; write an empty
	// one up front so every early return leaves a valid (fact-free) vetx,
	// then overwrite it with the real store after a successful run.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return unitResult{}, err
		}
	}
	exportsFacts := false
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			exportsFacts = true
			break
		}
	}
	if cfg.VetxOnly && (!exportsFacts || cfg.Standard[cfg.ImportPath]) {
		// Dependency-only unit that cannot contribute facts: the repo's
		// contracts attach facts to repo objects, never to std ones, so
		// skip the typecheck entirely. (Non-std VetxOnly units still run
		// the analyzers below — their facts are the whole point.)
		return unitResult{}, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return unitResult{}, nil
			}
			return unitResult{}, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compile step will report the error with better context.
			return unitResult{}, nil
		}
		return unitResult{}, err
	}

	// Import every dependency's facts before running. Missing vetx files are
	// not an error: cmd/go omits entries for packages it knows are fact-free.
	store := analysis.NewFactStore()
	if exportsFacts {
		// Deterministic import order (map iteration feeds error paths only,
		// but keep it ordered on principle).
		paths := make([]string, 0, len(cfg.PackageVetx))
		for path := range cfg.PackageVetx {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			data, err := os.ReadFile(cfg.PackageVetx[path])
			if err != nil {
				if os.IsNotExist(err) {
					continue
				}
				return unitResult{}, fmt.Errorf("reading facts of %s: %w", path, err)
			}
			if err := store.Decode(data, analyzers); err != nil {
				return unitResult{}, fmt.Errorf("facts of %s: %w", path, err)
			}
		}
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers, store)
	if err != nil {
		return unitResult{}, err
	}

	if cfg.VetxOutput != "" && exportsFacts {
		data, err := store.Encode()
		if err != nil {
			return unitResult{}, err
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			return unitResult{}, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only unit: cmd/go wants facts, not findings.
		return unitResult{fset: fset}, nil
	}
	return unitResult{fset: fset, diags: diags}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// selfDigest hashes the running executable so cmd/go's vet cache is keyed
// on the analyzer build, not just the tool name.
func selfDigest() string {
	exe, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v0-%x", h.Sum(nil)[:12])
}
