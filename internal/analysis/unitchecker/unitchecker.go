// Package unitchecker implements the `go vet -vettool` protocol on top of
// the standard library, mirroring golang.org/x/tools/go/analysis/unitchecker
// closely enough that cmd/go drives legolint exactly like the stock vet
// tool: once per package, with a JSON config describing the files, the
// import map, and the export-data location of every dependency.
//
// The protocol has three entry points:
//
//   - `legolint -V=full` prints a version line that cmd/go hashes into its
//     action cache key. The line embeds a digest of the legolint executable
//     itself, so rebuilding the tool with changed analyzers invalidates
//     cached vet results.
//   - `legolint -flags` prints a JSON description of the analyzer flags the
//     tool accepts (none), which cmd/go uses to validate its command line.
//   - `legolint <unit>.cfg` analyzes one compilation unit.
//
// Type information is rebuilt per unit with go/types, importing dependency
// packages through importer.ForCompiler("gc", lookup) where lookup opens the
// export-data files cmd/go names in the config — the same mechanism the real
// unitchecker uses, minus the x/tools dependency (this build must work
// offline, so x/tools cannot be fetched).
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Config is the JSON unit description cmd/go writes for each vetted
// package. Field set and meaning follow x/tools' unitchecker.Config.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main runs the vettool protocol over the given analyzers and exits.
func Main(analyzers ...*analysis.Analyzer) {
	progname := "legolint"
	args := os.Args[1:]

	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// cmd/go requires fields[1] == "version"; the digest makes the vet
		// action cache sensitive to the tool's own build.
		fmt.Printf("%s version %s (%s)\n", progname, selfDigest(), runtime.Version())
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer flags: cmd/go rejects any -<analyzer> flag up front.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) == 1 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help") {
		usage(progname, analyzers)
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage(progname, analyzers)
		os.Exit(1)
	}

	diags, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags.diags) > 0 {
		for _, d := range diags.diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", diags.fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: statically enforces the campaign-determinism invariants.\n\n", progname)
	fmt.Fprintf(os.Stderr, "Usage: go vet -vettool=$(which %s) ./...\n\nAnalyzers:\n", progname)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintf(os.Stderr, "\nSuppress one finding with `//lego:allow <analyzer> — <reason>`.\n")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

type unitResult struct {
	fset  *token.FileSet
	diags []analysis.Diagnostic
}

// runUnit analyzes the single compilation unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (unitResult, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return unitResult{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return unitResult{}, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// cmd/go expects the facts file regardless of outcome; legolint's
	// analyzers exchange no facts, so an empty one is always correct.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return unitResult{}, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only unit: cmd/go wants facts, not findings.
		return unitResult{}, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return unitResult{}, nil
			}
			return unitResult{}, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The compile step will report the error with better context.
			return unitResult{}, nil
		}
		return unitResult{}, err
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return unitResult{}, err
	}
	return unitResult{fset: fset, diags: diags}, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// selfDigest hashes the running executable so cmd/go's vet cache is keyed
// on the analyzer build, not just the tool name.
func selfDigest() string {
	exe, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v0-%x", h.Sum(nil)[:12])
}
