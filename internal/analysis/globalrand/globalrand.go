// Package globalrand forbids the process-global math/rand state outside
// internal/xrand.
//
// Campaign determinism requires every random draw to flow from the seeded,
// checkpointable RNG that internal/xrand threads through the fuzzer. The
// package-level math/rand functions (rand.Intn, rand.Shuffle, …) consume a
// shared source whose consumption order depends on everything else in the
// process, and seeding a local source from the wall clock
// (rand.NewSource(time.Now().UnixNano())) makes runs unrepeatable by
// construction. Constructing a *rand.Rand from an explicitly threaded seed
// remains legal — that is the threading mechanism itself.
package globalrand

import (
	"go/ast"
	"go/types"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Analyzer is the globalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbids global math/rand state and wall-clock seeding outside internal/xrand",
	Run:  run,
}

// globalFns are the package-level math/rand functions that draw from (or
// mutate) the shared global source.
var globalFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings of the same global draws.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
	"N": true,
}

// constructors take a source/seed; they are flagged only when the argument
// derives from the wall clock.
var constructors = map[string]bool{"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analysis.Pass) error {
	if analysis.PkgBase(pass.Pkg.Path()) == "xrand" {
		return nil // xrand is the one place allowed to wrap math/rand
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, _ := info.Uses[n.Sel].(*types.Func)
				if fn == nil || fn.Pkg() == nil || !isRandPath(fn.Pkg().Path()) {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on a threaded *rand.Rand are the approved idiom
				}
				if globalFns[fn.Name()] {
					pass.Reportf(n.Pos(),
						"rand.%s draws from the process-global math/rand source; thread a seeded *rand.Rand (internal/xrand) instead",
						fn.Name())
				}
			case *ast.CallExpr:
				fn := analysis.FuncFor(info, n.Fun)
				if fn == nil || fn.Pkg() == nil || !isRandPath(fn.Pkg().Path()) {
					return true
				}
				if constructors[fn.Name()] && seedFromClock(info, n) {
					pass.Reportf(n.Pos(),
						"rand.%s seeded from the wall clock makes campaigns unrepeatable; derive the seed from the campaign seed",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// seedFromClock reports whether any constructor argument calls into package
// time (time.Now().UnixNano() and friends). Nested rand constructors are
// not descended into: they carry their own diagnostic, so
// rand.New(rand.NewSource(time.Now()…)) is reported once, at the NewSource.
func seedFromClock(info *types.Info, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if fn := analysis.FuncFor(info, inner.Fun); fn != nil && fn.Pkg() != nil &&
					isRandPath(fn.Pkg().Path()) && constructors[fn.Name()] {
					return false
				}
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, _ := info.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
				found = true
			}
			return !found
		})
	}
	return found
}
