// Package xrand is a globalrand fixture for the exemption: internal/xrand
// is the one package allowed to touch math/rand's global surface while
// wrapping it.
package xrand

import "math/rand"

func wrap() int { return rand.Intn(10) }
