// Package mutate is a globalrand fixture: globalrand applies repo-wide
// (except internal/xrand), and "mutate" is also a determinism-critical
// package name.
package mutate

import (
	"math/rand"
	"time"
)

// globalDraw consumes the process-global source: flagged.
func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global math/rand source`
}

// globalShuffle mutates shared state: flagged.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global`
}

// globalValue even referencing the global function as a value is flagged.
var globalValue = rand.Float64 // want `rand\.Float64 draws from the process-global`

// clockSeed seeds from the wall clock: flagged.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

// threadedSeed constructs a local RNG from an explicit seed — the approved
// threading mechanism: clean.
func threadedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// threadedDraw draws from a threaded *rand.Rand: clean.
func threadedDraw(r *rand.Rand) int {
	return r.Intn(4)
}

// suppressed demonstrates the //lego:allow directive: no finding reported.
func suppressed() int {
	return rand.Int() //lego:allow globalrand — fixture demonstrating suppression
}
