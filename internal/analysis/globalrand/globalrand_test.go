package globalrand_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "mutate", "xrand")
}
