// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built for the legolint vettool.
//
// The repo's load-bearing invariant — two campaigns with the same seed
// produce byte-identical reports and checkpoints — is enforced at runtime by
// the resume/interrupt equivalence tests, but nothing stops a refactor from
// reintroducing the three Go footguns that silently break it: unsorted map
// iteration with order-dependent effects, global math/rand state, and
// wall-clock reads. The analyzers under internal/analysis/... make those
// footguns a build failure.
//
// This package mirrors the x/tools shapes (Analyzer, Pass, Diagnostic) so
// the analyzers could be ported to the real framework verbatim, but it is
// implemented purely on the standard library's go/ast, go/types and
// go/importer: the build must work offline, and x/tools is not vendored.
//
// # Suppression
//
// Every analyzer honors the directive
//
//	//lego:allow <analyzer> — <reason>
//
// placed on the flagged line or the line directly above it. The analyzer
// name must match exactly and the reason must be non-empty; a bare
// //lego:allow with no reason does not suppress anything. An ASCII hyphen
// may be used in place of the em dash.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lego:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by legolint's usage.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// deterministicPkgs are the packages whose behavior must be a pure function
// of the campaign seed: everything that feeds the fuzzing schedule, the
// oracle's bookkeeping, or the checkpoint byte stream. The detrange and
// walltime analyzers apply only here; CLI, reporting, and benchmark
// packages may read the clock and iterate maps freely.
var deterministicPkgs = map[string]bool{
	"core":        true,
	"mutate":      true,
	"corpus":      true,
	"affinity":    true,
	"seqsynth":    true,
	"instantiate": true,
	"oracle":      true,
	"triage":      true,
	"checkpoint":  true,
	"minidb":      true,
	"shard":       true,
	"chaos":       true,
}

// PkgBase returns the last element of an import path, with the synthetic
// test-variant suffixes produced by go vet ("p [p.test]", "p_test")
// stripped, so gating works identically in unitchecker mode, analysistest
// fixtures, and test variants.
func PkgBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i] // "pkg [pkg.test]" → "pkg"
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// Deterministic reports whether the import path names one of the
// determinism-critical packages.
func Deterministic(path string) bool {
	return deterministicPkgs[PkgBase(path)]
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics, sorted by position: findings in _test.go files are dropped
// (tests may time, shuffle, and iterate freely — they do not feed the
// campaign byte stream), and findings answered by a well-formed
// //lego:allow directive are suppressed.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	sup := collectSuppressions(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if sup.allows(d.Analyzer, pos.Filename, pos.Line) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	sortDiagnostics(fset, diags)
	return diags, nil
}

// suppressionKey locates one //lego:allow directive.
type suppressionKey struct {
	analyzer string
	file     string
	line     int
}

type suppressionSet map[suppressionKey]bool

// allows reports whether a directive for the analyzer sits on the given
// line or the line directly above it.
func (s suppressionSet) allows(analyzer, file string, line int) bool {
	return s[suppressionKey{analyzer, file, line}] ||
		s[suppressionKey{analyzer, file, line - 1}]
}

// collectSuppressions indexes every well-formed //lego:allow directive in
// the files by (analyzer, file, line).
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionSet {
	set := suppressionSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				set[suppressionKey{name, pos.Filename, pos.Line}] = true
			}
		}
	}
	return set
}

// parseAllow parses "//lego:allow <analyzer> — <reason>", returning the
// analyzer name. Directives without a reason are rejected: the reason is the
// audit trail the suppression exists to preserve.
func parseAllow(comment string) (analyzer string, ok bool) {
	text, ok := strings.CutPrefix(comment, "//lego:allow")
	if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return "", false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return "", false
	}
	reason := fields[1:]
	for len(reason) > 0 && (reason[0] == "—" || reason[0] == "-" || reason[0] == "--") {
		reason = reason[1:]
	}
	if len(reason) == 0 {
		return "", false
	}
	return fields[0], true
}

// HasDirective reports whether the comment group contains the given
// //lego:<name> directive on a line of its own (e.g. //lego:injector on an
// approved fault-injection helper).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//lego:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(fset, diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
