// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary, built for the legolint vettool.
//
// The repo's load-bearing invariant — two campaigns with the same seed
// produce byte-identical reports and checkpoints — is enforced at runtime by
// the resume/interrupt equivalence tests, but nothing stops a refactor from
// reintroducing the three Go footguns that silently break it: unsorted map
// iteration with order-dependent effects, global math/rand state, and
// wall-clock reads. The analyzers under internal/analysis/... make those
// footguns a build failure.
//
// This package mirrors the x/tools shapes (Analyzer, Pass, Diagnostic) so
// the analyzers could be ported to the real framework verbatim, but it is
// implemented purely on the standard library's go/ast, go/types and
// go/importer: the build must work offline, and x/tools is not vendored.
//
// # Suppression
//
// Every analyzer honors the directive
//
//	//lego:allow <analyzer> — <reason>
//
// placed on the flagged line or the line directly above it. The analyzer
// name must match exactly and the reason must be non-empty; a bare
// //lego:allow with no reason does not suppress anything. An ASCII hyphen
// may be used in place of the em dash.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lego:allow
	// directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by legolint's usage.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists prototype pointers for every Fact type the analyzer
	// exports or imports; facts of undeclared types cannot be decoded from
	// dependencies' vetx files.
	FactTypes []Fact
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Allowed marks a finding answered by a well-formed //lego:allow
	// directive. Allowed findings never fail the build; they survive in the
	// result so -json output can report the suppression state.
	Allowed bool
	// AllowReason is the directive's audit-trail reason when Allowed.
	AllowReason string
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	store *FactStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ExportObjectFact attaches a fact to a package-level object of the analyzed
// package so downstream packages can query it. The object must be keyable
// (package-level type/func/var, method, or field of a package-level struct);
// exporting on anything else is an analyzer bug and panics.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	key, ok := ObjectKeyOf(obj)
	if !ok {
		panic(fmt.Sprintf("%s: cannot export fact on non-package-level object %v", p.Analyzer.Name, obj))
	}
	p.store.put(p.Analyzer.Name, key, f)
}

// ObjectFact copies the analyzer's fact for obj into dst, reporting whether
// one was found. The object may belong to the analyzed package or to any
// (transitive) import whose facts reached this unit.
func (p *Pass) ObjectFact(obj types.Object, dst Fact) bool {
	key, ok := ObjectKeyOf(obj)
	if !ok {
		return false
	}
	return p.store.get(p.Analyzer.Name, key, dst)
}

// ExportPkgFact attaches a fact to the analyzed package itself.
func (p *Pass) ExportPkgFact(f Fact) {
	p.store.put(p.Analyzer.Name, ObjectKey{Pkg: p.Pkg.Path()}, f)
}

// PkgFact copies the analyzer's package fact for pkgPath into dst.
func (p *Pass) PkgFact(pkgPath string, dst Fact) bool {
	return p.store.get(p.Analyzer.Name, ObjectKey{Pkg: pkgPath}, dst)
}

// PkgObjectFacts enumerates every object fact this analyzer attached to the
// given package, sorted by object path.
func (p *Pass) PkgObjectFacts(pkgPath string) []KeyedFact {
	return p.store.objectFacts(p.Analyzer.Name, pkgPath)
}

// deterministicPkgs are the packages whose behavior must be a pure function
// of the campaign seed: everything that feeds the fuzzing schedule, the
// oracle's bookkeeping, or the checkpoint byte stream. The detrange and
// walltime analyzers apply only here; CLI, reporting, and benchmark
// packages may read the clock and iterate maps freely.
var deterministicPkgs = map[string]bool{
	"core":        true,
	"mutate":      true,
	"corpus":      true,
	"affinity":    true,
	"seqsynth":    true,
	"instantiate": true,
	"oracle":      true,
	"triage":      true,
	"checkpoint":  true,
	"minidb":      true,
	"shard":       true,
	"chaos":       true,
}

// PkgBase returns the last element of an import path, with the synthetic
// test-variant suffixes produced by go vet ("p [p.test]", "p_test")
// stripped, so gating works identically in unitchecker mode, analysistest
// fixtures, and test variants.
func PkgBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i] // "pkg [pkg.test]" → "pkg"
	}
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}

// Deterministic reports whether the import path names one of the
// determinism-critical packages.
func Deterministic(path string) bool {
	return deterministicPkgs[PkgBase(path)]
}

// AllowLintName is the analyzer name stamped on the framework's own
// directive-hygiene findings: malformed //lego:allow comments and allows
// that suppress nothing. These findings are not themselves suppressible —
// silencing the suppression auditor would defeat it.
const AllowLintName = "allowlint"

// Run applies every analyzer to the package and returns its diagnostics,
// sorted by position. Findings in _test.go files are dropped (tests may
// time, shuffle, and iterate freely — they do not feed the campaign byte
// stream). Findings answered by a well-formed //lego:allow directive are
// kept but marked Allowed, so drivers can report suppression state without
// failing the build on them. The framework appends its own allowlint
// findings for malformed directives and for directives that suppressed
// nothing.
//
// store carries cross-package facts; pass nil for a fresh, isolated store.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, store *FactStore) ([]Diagnostic, error) {
	if store == nil {
		store = NewFactStore()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			diags:     &diags,
			store:     store,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	allows, malformed := collectAllows(fset, files)
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if dir := allows.match(d.Analyzer, pos.Filename, pos.Line); dir != nil {
			dir.used = true
			d.Allowed = true
			d.AllowReason = dir.reason
		}
		kept = append(kept, d)
	}
	diags = kept

	// Directive hygiene. Malformed allows are always reported; unused allows
	// only when their analyzer actually ran (running a subset, as the fixture
	// tests do, must not condemn another analyzer's suppressions).
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = append(diags, malformed...)
	for _, dir := range allows.ordered {
		if dir.used || !ran[dir.analyzer] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      dir.pos,
			Message:  fmt.Sprintf("unused //lego:allow %s: no %s diagnostic on this or the next line", dir.analyzer, dir.analyzer),
			Analyzer: AllowLintName,
		})
	}

	sortDiagnostics(fset, diags)
	return diags, nil
}

// allowDirective is one parsed //lego:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// allowKey locates a directive by suppression site.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

type allowIndex struct {
	byKey   map[allowKey]*allowDirective
	ordered []*allowDirective
}

// match returns the directive for the analyzer sitting on the given line or
// the line directly above it, if any.
func (ai *allowIndex) match(analyzer, file string, line int) *allowDirective {
	if d := ai.byKey[allowKey{analyzer, file, line}]; d != nil {
		return d
	}
	return ai.byKey[allowKey{analyzer, file, line - 1}]
}

// collectAllows indexes every //lego:allow directive in the files. Comments
// that start the directive but fail to parse come back as allowlint
// diagnostics; directives in _test.go files are ignored entirely, matching
// the finding filter.
func collectAllows(fset *token.FileSet, files []*ast.File) (*allowIndex, []Diagnostic) {
	ai := &allowIndex{byKey: map[allowKey]*allowDirective{}}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lego:allow") {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				name, reason, ok := parseAllow(c.Text)
				if !ok {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed //lego:allow: want \"//lego:allow <analyzer> — <reason>\" with a non-empty reason",
						Analyzer: AllowLintName,
					})
					continue
				}
				dir := &allowDirective{analyzer: name, reason: reason, pos: c.Pos()}
				ai.byKey[allowKey{name, pos.Filename, pos.Line}] = dir
				ai.ordered = append(ai.ordered, dir)
			}
		}
	}
	return ai, malformed
}

// parseAllow parses "//lego:allow <analyzer> — <reason>", returning the
// analyzer name and the reason text. Directives without a reason are
// rejected: the reason is the audit trail the suppression exists to
// preserve.
func parseAllow(comment string) (analyzer, reason string, ok bool) {
	text, ok := strings.CutPrefix(comment, "//lego:allow")
	if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
		return "", "", false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return "", "", false
	}
	rest := fields[1:]
	for len(rest) > 0 && (rest[0] == "—" || rest[0] == "-" || rest[0] == "--") {
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return "", "", false
	}
	return fields[0], strings.Join(rest, " "), true
}

// HasDirective reports whether the comment group contains the given
// //lego:<name> directive on a line of its own (e.g. //lego:injector on an
// approved fault-injection helper).
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//lego:" + name
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && less(fset, diags[j], diags[j-1]); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
