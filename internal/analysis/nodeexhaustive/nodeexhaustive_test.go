package nodeexhaustive_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/nodeexhaustive"
)

func TestNodeExhaustive(t *testing.T) {
	analysistest.Run(t, nodeexhaustive.Analyzer, "sqlast", "consumer")
}
