// Package sqlast is a miniature node inventory for the nodeexhaustive
// fixtures: three node interfaces, a handful of implementors with varied
// reachability, and annotated switches in every mode.
package sqlast

// Statement is the statement node interface.
type Statement interface{ SQL() string }

// Expr is the expression node interface.
type Expr interface{ ExprSQL() string }

// TableRef is the table-reference node interface.
type TableRef interface{ RefSQL() string }

// SelectStmt reaches Exprs, TableRefs, and (via Right) a Statement.
type SelectStmt struct {
	Items []Expr
	From  []TableRef
	Right *SelectStmt
}

// SQL implements Statement.
func (*SelectStmt) SQL() string { return "SELECT" }

// InsertStmt reaches Exprs only.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

// SQL implements Statement.
func (*InsertStmt) SQL() string { return "INSERT" }

// ExplainStmt directly carries a nested Statement.
type ExplainStmt struct{ Stmt Statement }

// SQL implements Statement.
func (*ExplainStmt) SQL() string { return "EXPLAIN" }

// BeginStmt is a leaf: no children at all.
type BeginStmt struct{}

// SQL implements Statement.
func (*BeginStmt) SQL() string { return "BEGIN" }

// Literal is a leaf expression.
type Literal struct{ Val int64 }

// ExprSQL implements Expr.
func (*Literal) ExprSQL() string { return "1" }

// Subquery carries a Statement node behind an Expr.
type Subquery struct{ Query *SelectStmt }

// ExprSQL implements Expr.
func (*Subquery) ExprSQL() string { return "(SELECT)" }

// BaseTable is a leaf table reference.
type BaseTable struct{ Name string }

// RefSQL implements TableRef.
func (*BaseTable) RefSQL() string { return "t" }

// JoinRef reaches further TableRefs and an Expr.
type JoinRef struct {
	L, R TableRef
	On   Expr
}

// RefSQL implements TableRef.
func (*JoinRef) RefSQL() string { return "join" }

// walkAll must cover every Statement but misses the leaf.
func walkAll(s Statement) {
	//lego:exhaustive Statement
	switch s.(type) { // want `type switch is not exhaustive over sqlast\.Statement \(all mode\): missing BeginStmt`
	case *SelectStmt, *InsertStmt, *ExplainStmt:
	}
}

// walkChildren needs only the statements with something to descend into;
// omitting the leaf BeginStmt is fine here.
func walkChildren(s Statement) {
	//lego:exhaustive Statement children
	switch s.(type) {
	case *SelectStmt, *InsertStmt, *ExplainStmt:
	}
}

// walkStatements must re-enter the walker for every statement-carrying node
// but misses ExplainStmt.
func walkStatements(s Statement) {
	//lego:exhaustive Statement statements
	switch s.(type) { // want `type switch is not exhaustive over sqlast\.Statement \(statements mode\): missing ExplainStmt`
	case *SelectStmt:
	}
}

// walkExprs is a complete Expr switch: clean.
func walkExprs(e Expr) {
	//lego:exhaustive Expr
	switch e.(type) {
	case *Literal, *Subquery:
	}
}

// walkRefs misses JoinRef even in children mode.
func walkRefs(r TableRef) {
	//lego:exhaustive TableRef children
	switch r.(type) { // want `type switch is not exhaustive over sqlast\.TableRef \(children mode\): missing JoinRef`
	case *BaseTable:
	}
}

// badDirective exercises the malformed-directive diagnostic ("Node" is not
// one of the three node interfaces; the trailing want marker also pushes the
// field count past the limit, either alone suffices).
func badDirective(s Statement) {
	//lego:exhaustive Node // want `malformed //lego:exhaustive`
	switch s.(type) {
	case *SelectStmt:
	}
}
