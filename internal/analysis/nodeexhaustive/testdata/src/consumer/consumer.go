// Package consumer exercises nodeexhaustive across a package boundary: the
// node inventory arrives as facts exported by the sqlast fixture, and types
// implementing node interfaces here are foreign implementors.
package consumer

import "sqlast"

// Rogue implements sqlast.Statement outside sqlast: flagged at the type.
type Rogue struct{} // want `type Rogue implements sqlast\.Statement outside package sqlast`

// SQL makes Rogue a Statement.
func (*Rogue) SQL() string { return "ROGUE" }

// dispatch covers every Statement: clean, driven entirely by imported facts.
func dispatch(s sqlast.Statement) string {
	//lego:exhaustive Statement
	switch s.(type) {
	case *sqlast.SelectStmt:
		return "select"
	case *sqlast.InsertStmt:
		return "insert"
	case *sqlast.ExplainStmt:
		return "explain"
	case *sqlast.BeginStmt:
		return "begin"
	}
	return ""
}

// partialDispatch misses two statements.
func partialDispatch(s sqlast.Statement) {
	//lego:exhaustive Statement
	switch s.(type) { // want `type switch is not exhaustive over sqlast\.Statement \(all mode\): missing BeginStmt, ExplainStmt`
	case *sqlast.SelectStmt, *sqlast.InsertStmt:
	}
}

// allowedDispatch misses a statement but suppresses the finding; the
// fixture runner drops Allowed diagnostics, so no want here.
func allowedDispatch(s sqlast.Statement) {
	//lego:exhaustive Statement
	switch s.(type) { //lego:allow nodeexhaustive — leaves are handled by the default arm
	case *sqlast.SelectStmt, *sqlast.InsertStmt, *sqlast.ExplainStmt:
	}
}
