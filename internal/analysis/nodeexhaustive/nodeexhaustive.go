// Package nodeexhaustive enforces that the hand-maintained type switches
// over sqlast node interfaces stay exhaustive as the grammar grows.
//
// PR 6 replaced render+reparse cloning with hand-written structural walkers
// (Clone, InvalidateSQL, StatementTables, RewriteExpr, the minidb dispatch).
// Clone and SQL are interface methods, so a new node type without them fails
// to compile — but the type *switches* fail silently: a statement kind the
// invalidation walker doesn't descend serves stale memoized SQL, and a kind
// the table extractor skips breaks dependency fixing. This analyzer turns a
// missing case into a vet-time diagnostic.
//
// Usage: the comment directly above a type switch declares the contract:
//
//	//lego:exhaustive Statement children
//	switch v := s.(type) {
//
// The interface is one of Statement, Expr, or TableRef; the optional mode
// narrows the required case set:
//
//   - (none)     every implementor must be handled
//   - children   implementors whose struct reaches another node through its
//     fields (there is something to descend into)
//   - statements implementors that directly carry a nested statement without
//     an intervening Expr/TableRef boundary (the set a WalkExpr
//     callback must re-enter the statement walker for)
//
// The implementor sets are computed in the package whose base name is
// "sqlast" and exported as facts, so switches in downstream packages (the
// minidb dispatch) are checked against the same inventory. As a corollary,
// declaring a type that implements one of the node interfaces outside
// sqlast is itself a diagnostic: the inventory must have a single home.
package nodeexhaustive

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/seqfuzz/lego/internal/analysis"
)

// NodeFact records, for one concrete type in sqlast, which node interfaces
// it implements and whether its fields reach further nodes.
type NodeFact struct {
	Statement  bool `json:"statement,omitempty"`
	Expr       bool `json:"expr,omitempty"`
	TableRef   bool `json:"tableref,omitempty"`
	Children   bool `json:"children,omitempty"`
	Statements bool `json:"statements,omitempty"`
}

// AFact marks NodeFact as a fact.
func (*NodeFact) AFact() {}

// nodeIfaces are the sqlast interfaces whose implementor sets are tracked.
var nodeIfaces = []string{"Statement", "Expr", "TableRef"}

// Analyzer is the nodeexhaustive analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "nodeexhaustive",
	Doc:       "type switches annotated //lego:exhaustive must cover every sqlast node implementor",
	Run:       run,
	FactTypes: []analysis.Fact{(*NodeFact)(nil)},
}

func run(pass *analysis.Pass) error {
	isSQLAst := analysis.PkgBase(pass.Pkg.Path()) == "sqlast"

	// Locate the sqlast package: the analyzed package itself, or a direct
	// import of it.
	var astPkg *types.Package
	if isSQLAst {
		astPkg = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if analysis.PkgBase(imp.Path()) == "sqlast" {
				astPkg = imp
				break
			}
		}
	}

	var nodes map[string]*NodeFact
	if isSQLAst {
		nodes = computeNodeFacts(astPkg)
		names := make([]string, 0, len(nodes))
		for name := range nodes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			obj := astPkg.Scope().Lookup(name)
			if obj != nil {
				pass.ExportObjectFact(obj, nodes[name])
			}
		}
	} else if astPkg != nil {
		nodes = map[string]*NodeFact{}
		for _, kf := range pass.PkgObjectFacts(astPkg.Path()) {
			if nf, ok := kf.Fact.(*NodeFact); ok {
				nodes[kf.Key.Object] = nf
			}
		}
		checkForeignImplementors(pass, astPkg)
	}

	for _, file := range pass.Files {
		checkFile(pass, file, astPkg, nodes)
	}
	return nil
}

// checkForeignImplementors reports package-level types that implement an
// sqlast node interface outside sqlast: the exhaustiveness inventory (and
// the Clone/memo machinery) assume all nodes live in one package.
func checkForeignImplementors(pass *analysis.Pass, astPkg *types.Package) {
	ifaces := lookupIfaces(astPkg)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if _, ok := tn.Type().(*types.Named); !ok {
			continue
		}
		if types.IsInterface(tn.Type()) {
			continue
		}
		for _, ifname := range nodeIfaces {
			iface := ifaces[ifname]
			if iface == nil {
				continue
			}
			if implementsNode(tn.Type(), iface) {
				pass.Reportf(tn.Pos(), "type %s implements sqlast.%s outside package sqlast; node types must live in sqlast so Clone/InvalidateSQL/exhaustiveness stay complete", name, ifname)
				break
			}
		}
	}
}

func lookupIfaces(astPkg *types.Package) map[string]*types.Interface {
	out := map[string]*types.Interface{}
	if astPkg == nil {
		return out
	}
	for _, name := range nodeIfaces {
		tn, ok := astPkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
			out[name] = iface
		}
	}
	return out
}

func implementsNode(t types.Type, iface *types.Interface) bool {
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// computeNodeFacts inventories the sqlast package: every package-level
// concrete type implementing a node interface, with its reachability flags.
func computeNodeFacts(astPkg *types.Package) map[string]*NodeFact {
	ifaces := lookupIfaces(astPkg)
	nodes := map[string]*NodeFact{}
	scope := astPkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || types.IsInterface(tn.Type()) {
			continue
		}
		nf := &NodeFact{}
		if i := ifaces["Statement"]; i != nil && implementsNode(tn.Type(), i) {
			nf.Statement = true
		}
		if i := ifaces["Expr"]; i != nil && implementsNode(tn.Type(), i) {
			nf.Expr = true
		}
		if i := ifaces["TableRef"]; i != nil && implementsNode(tn.Type(), i) {
			nf.TableRef = true
		}
		if nf.Statement || nf.Expr || nf.TableRef {
			nodes[name] = nf
		}
	}
	// Reachability: walk each node's fields. Interface-typed fields count as
	// child boundaries; only a *direct* path to a Statement (not through an
	// Expr/TableRef interface, which a walker recurses through generically)
	// sets Statements.
	for name, nf := range nodes {
		tn := scope.Lookup(name).(*types.TypeName)
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		r := reach{ifaces: ifaces, nodes: nodes, seen: map[types.Type]bool{}}
		for i := 0; i < st.NumFields(); i++ {
			r.walk(st.Field(i).Type())
		}
		nf.Children = r.children
		nf.Statements = r.statements
	}
	return nodes
}

// reach accumulates node reachability over a field-type walk.
type reach struct {
	ifaces     map[string]*types.Interface
	nodes      map[string]*NodeFact
	seen       map[types.Type]bool
	children   bool
	statements bool
}

func (r *reach) walk(t types.Type) {
	if r.seen[t] {
		return
	}
	r.seen[t] = true
	switch u := t.(type) {
	case *types.Pointer:
		r.walk(u.Elem())
	case *types.Slice:
		r.walk(u.Elem())
	case *types.Array:
		r.walk(u.Elem())
	case *types.Named, *types.Alias:
		if types.IsInterface(t) {
			if i := r.ifaces["Statement"]; i != nil && types.Identical(t.Underlying(), i) {
				r.children, r.statements = true, true
			}
			if i := r.ifaces["Expr"]; i != nil && types.Identical(t.Underlying(), i) {
				r.children = true
			}
			if i := r.ifaces["TableRef"]; i != nil && types.Identical(t.Underlying(), i) {
				r.children = true
			}
			return
		}
		name := analysis.NamedType(t)
		if nf, ok := r.nodes[name]; ok {
			r.children = true
			if nf.Statement {
				r.statements = true
			}
			return // the walker recurses into the node itself
		}
		// Non-node helper struct (ColumnDef, CTE, OrderItem, ...): its
		// fields are part of the enclosing node.
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				r.walk(st.Field(i).Type())
			}
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			r.walk(u.Field(i).Type())
		}
	}
}

// directive is one parsed //lego:exhaustive comment.
type directive struct {
	iface string
	mode  string // "", "children", "statements"
	pos   token.Pos
}

// collectDirectives maps file line -> directive for every
// //lego:exhaustive comment in the file.
func collectDirectives(pass *analysis.Pass, file *ast.File) map[int]*directive {
	out := map[int]*directive{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lego:exhaustive")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			d := &directive{pos: c.Pos()}
			bad := len(fields) < 1 || len(fields) > 2
			if !bad {
				d.iface = fields[0]
				if len(fields) == 2 {
					d.mode = fields[1]
				}
				switch d.iface {
				case "Statement", "Expr", "TableRef":
				default:
					bad = true
				}
				switch d.mode {
				case "", "children", "statements":
				default:
					bad = true
				}
			}
			if bad {
				pass.Reportf(c.Pos(), "malformed //lego:exhaustive: want \"//lego:exhaustive <Statement|Expr|TableRef> [children|statements]\"")
				continue
			}
			out[pass.Fset.Position(c.Pos()).Line] = d
		}
	}
	return out
}

func checkFile(pass *analysis.Pass, file *ast.File, astPkg *types.Package, nodes map[string]*NodeFact) {
	dirs := collectDirectives(pass, file)
	if len(dirs) == 0 {
		return
	}
	claimed := map[*directive]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		line := pass.Fset.Position(sw.Pos()).Line
		d := dirs[line-1]
		if d == nil {
			d = dirs[line]
		}
		if d == nil {
			return true
		}
		claimed[d] = true
		checkSwitch(pass, sw, d, astPkg, nodes)
		return true
	})
	for _, d := range dirs {
		if !claimed[d] {
			pass.Reportf(d.pos, "//lego:exhaustive directive is not attached to a type switch on this or the next line")
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.TypeSwitchStmt, d *directive, astPkg *types.Package, nodes map[string]*NodeFact) {
	if astPkg == nil || len(nodes) == 0 {
		pass.Reportf(d.pos, "//lego:exhaustive needs the sqlast node inventory, but this package does not import sqlast (or its facts are missing)")
		return
	}
	required := map[string]bool{}
	for name, nf := range nodes {
		var impl bool
		switch d.iface {
		case "Statement":
			impl = nf.Statement
		case "Expr":
			impl = nf.Expr
		case "TableRef":
			impl = nf.TableRef
		}
		if !impl {
			continue
		}
		switch d.mode {
		case "children":
			impl = nf.Children
		case "statements":
			impl = nf.Statements
		}
		if impl {
			required[name] = true
		}
	}

	handled := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Type == nil {
				continue
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			n, ok := t.(*types.Named)
			if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != astPkg.Path() {
				continue
			}
			handled[n.Obj().Name()] = true
		}
	}

	var missing []string
	for name := range required {
		if !handled[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	mode := d.mode
	if mode == "" {
		mode = "all"
	}
	pass.Reportf(sw.Pos(), "type switch is not exhaustive over sqlast.%s (%s mode): missing %s", d.iface, mode, strings.Join(missing, ", "))
}
