// Package engine is the buffer owner for the bufretain fixtures: it hands
// out an Outcome whose slices are re-sliced on the next Run.
package engine

// Result is one statement's result.
type Result struct{ N int }

// Outcome is one run's outcome; its slices alias engine-owned buffers.
type Outcome struct {
	// Results holds per-statement results.
	//
	//lego:borrowed valid until the next Run on the same engine
	Results []*Result
	// Errs holds per-statement errors.
	//
	//lego:borrowed valid until the next Run on the same engine
	Errs []error
	// Executed counts executed statements; plain value, freely copyable.
	Executed int
}

var pool Outcome

// Run executes and returns the pooled outcome; the owner may manage its own
// buffers without diagnostics.
func Run() *Outcome {
	pool.Results = pool.Results[:0]
	pool.Errs = pool.Errs[:0]
	pool.Executed = 0
	return &pool
}

// local demonstrates the keyability requirement: fields of function-local
// struct types cannot carry facts.
func local() {
	type scratch struct {
		//lego:borrowed local scratch
		buf []byte // want `//lego:borrowed requires a field of a package-level struct type`
	}
	_ = scratch{}
}

var _ = local
