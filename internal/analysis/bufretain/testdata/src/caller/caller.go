// Package caller exercises the bufretain retention rules against the engine
// fixture's borrowed facts.
package caller

import "engine"

type keeper struct {
	res  []*engine.Result
	outs []*engine.Outcome
}

var global []error

// Retain stores borrowed buffers where they outlive the statement.
func Retain(k *keeper) {
	out := engine.Run()
	k.res = out.Results // want `borrowed buffer Outcome\.Results stored to a field or package-level variable`
	global = out.Errs   // want `borrowed buffer Outcome\.Errs stored to a field or package-level variable`
}

// Reslice shares the backing array; just as retained.
func Reslice(k *keeper) {
	out := engine.Run()
	k.res = out.Results[1:] // want `borrowed buffer Outcome\.Results stored to a field or package-level variable`
}

// RetainWhole stores the struct (pointer) carrying the borrowed fields.
func RetainWhole(k *keeper) {
	out := engine.Run()
	k.outs = append(k.outs, out) // want `value carrying borrowed field Outcome\.Results appended to another slice`
}

// Aggregate builds retained aggregates from borrowed values.
func Aggregate() [][]*engine.Result {
	out := engine.Run()
	var acc [][]*engine.Result
	acc = append(acc, out.Results)         // want `borrowed buffer Outcome\.Results appended to another slice`
	bad := [][]*engine.Result{out.Results} // want `borrowed buffer Outcome\.Results stored in a composite literal`
	return append(acc, bad...)
}

// ReadOnly does everything the contract permits: clean.
func ReadOnly(k *keeper) int {
	out := engine.Run()
	n := out.Executed                     // plain value field
	first := out.Results[0]               // element reads are fresh per statement
	local := out.Results                  // locals die with the statement scope
	k.res = append(k.res, out.Results...) // spread copies the elements
	saved := make([]*engine.Result, len(out.Results))
	copy(saved, out.Results) // the sanctioned copy-out
	return n + first.N + len(local) + len(saved)
}

// Allowed retains deliberately and says why; the runner drops the Allowed
// finding.
func Allowed(k *keeper) {
	out := engine.Run()
	k.res = out.Results //lego:allow bufretain — single-shot CLI: the engine never runs again before exit
}
