// Package bufretain enforces the borrowed-buffer lifetime contract from
// PR 6: the minidb engine hands out result/error slices that it re-slices
// on the next RunTestCase, so callers may read them, copy them, or index
// them — but must not store the slice (or a struct carrying it) into a
// field or package-level variable, where it would silently mutate when the
// engine runs again.
//
// The owning package annotates the field:
//
//	// Results holds per-statement results.
//	//
//	//lego:borrowed valid until the next RunTestCase on the same engine
//	Results []*Result
//
// and the analyzer exports a BorrowedFact on it. In every *other* package
// (the owner is free to manage its own buffers) the analyzer reports:
//
//   - assignments whose right side reads a borrowed field — including a
//     re-slice x.F[a:b], which shares the backing array — when the left
//     side outlives the statement (a field, an element of a field, or a
//     package-level variable); indexing x.F[i] is fine, the elements are
//     freshly allocated per statement
//   - assignments storing a whole struct value whose type directly carries
//     a borrowed field into such a location
//   - borrowed values placed into composite literals or appended (without
//     ...) onto another slice, both of which are how retained aggregates
//     are built; append(dst, x.F...) copies the elements and is allowed
//
// Copy-out is the sanctioned pattern:
//
//	saved := make([]*minidb.Result, len(out.Results))
//	copy(saved, out.Results)
package bufretain

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/seqfuzz/lego/internal/analysis"
)

// BorrowedFact marks a struct field as engine-owned, valid only until the
// owner's next cycle.
type BorrowedFact struct {
	Note string `json:"note,omitempty"`
}

// AFact marks BorrowedFact as a fact.
func (*BorrowedFact) AFact() {}

// Analyzer is the bufretain analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "bufretain",
	Doc:       "fields annotated //lego:borrowed must not be stored to fields or globals by other packages",
	Run:       run,
	FactTypes: []analysis.Fact{(*BorrowedFact)(nil)},
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	c.exportFacts()
	for _, file := range pass.Files {
		c.checkFile(file)
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// exportFacts scans struct declarations for //lego:borrowed field comments.
func (c *checker) exportFacts() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				note, ok := borrowedNote(f.Doc)
				if !ok {
					note, ok = borrowedNote(f.Comment)
				}
				if !ok {
					continue
				}
				for _, name := range f.Names {
					obj := c.pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if _, keyable := analysis.ObjectKeyOf(obj); !keyable {
						c.pass.Reportf(name.Pos(), "//lego:borrowed requires a field of a package-level struct type")
						continue
					}
					c.pass.ExportObjectFact(obj, &BorrowedFact{Note: note})
				}
			}
			return true
		})
	}
}

// borrowedNote extracts the note from a //lego:borrowed directive in the
// comment group, if present.
func borrowedNote(cg *ast.CommentGroup) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, cm := range cg.List {
		rest, ok := strings.CutPrefix(cm.Text, "//lego:borrowed")
		if !ok {
			continue
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

func (c *checker) checkFile(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkAssign(n)
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if f, whole := c.borrowedIn(v); f != "" {
					c.report(v.Pos(), f, whole, "stored in a composite literal")
				}
			}
		case *ast.CallExpr:
			if analysis.IsBuiltin(c.pass.TypesInfo, n, "append") {
				spread := n.Ellipsis.IsValid()
				for i, arg := range n.Args {
					if i == 0 {
						continue // the destination is read, not retained
					}
					if spread && i == len(n.Args)-1 {
						continue // append(dst, x.F...) copies the elements
					}
					if f, whole := c.borrowedIn(arg); f != "" {
						c.report(arg.Pos(), f, whole, "appended to another slice")
					}
				}
			}
		}
		return true
	})
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	escaping := false
	for _, lhs := range as.Lhs {
		if c.escapes(lhs) {
			escaping = true
			break
		}
	}
	if !escaping {
		return
	}
	for _, rhs := range as.Rhs {
		if f, whole := c.borrowedIn(rhs); f != "" {
			c.report(rhs.Pos(), f, whole, "stored to a field or package-level variable")
		}
	}
}

// escapes reports whether writing through lhs outlives the statement scope:
// a field of anything, an element of such, or a package-level variable.
func (c *checker) escapes(lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return c.escapes(e.X)
	case *ast.StarExpr:
		return true // writing through a pointer: destination unknown, be safe
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

// borrowedIn reports whether evaluating e yields a borrowed value: the name
// of the borrowed field ("Outcome.Results"), and whether it was reached as
// a whole-struct value rather than a direct field read. Indexing a borrowed
// slice is not a borrow (the elements are fresh per statement); re-slicing
// shares the backing array and is. Whole-struct borrowing is checked only
// at the top level: a plain `out.Executed` int read must not trip on the
// `out` sub-expression.
func (c *checker) borrowedIn(e ast.Expr) (field string, whole bool) {
	top := ast.Unparen(e)
	if f := c.wholeStructBorrow(top); f != "" {
		return f, true
	}
	return c.borrowedFieldIn(top), false
}

// borrowedFieldIn finds a direct borrowed-field read inside e. Unlike
// borrowedIn it never applies the whole-struct check: sub-expressions like
// the `out` in `out.Results[0]` are navigation, not retention.
func (c *checker) borrowedFieldIn(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// append has its own rules (spread copies, the destination is
			// read); the checkFile CallExpr pass owns it.
			if analysis.IsBuiltin(c.pass.TypesInfo, n, "append") {
				return false
			}
		case *ast.IndexExpr:
			// x.F[i]: the selector below is an element read, not a borrow;
			// only the selector's own base and the index can still borrow.
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && c.borrowedField(sel) != "" {
				if f := c.borrowedFieldIn(sel.X); f != "" {
					found = f
				} else if f := c.borrowedFieldIn(n.Index); f != "" {
					found = f
				}
				return false
			}
		case *ast.SelectorExpr:
			if f := c.borrowedField(n); f != "" {
				found = f
				return false
			}
		}
		return true
	})
	return found
}

// borrowedField resolves a selector to a borrowed field fact, returning its
// qualified name or "". Selections inside the owning package are exempt:
// the engine manages its own buffers.
func (c *checker) borrowedField(sel *ast.SelectorExpr) string {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	obj := s.Obj()
	if obj.Pkg() != nil && obj.Pkg().Path() == c.pass.Pkg.Path() {
		return ""
	}
	var fact BorrowedFact
	if !c.pass.ObjectFact(obj, &fact) {
		return ""
	}
	key, _ := analysis.ObjectKeyOf(obj)
	return key.Object
}

// wholeStructBorrow reports whether e's type is a named struct (from
// another package) that directly carries a borrowed field.
func (c *checker) wholeStructBorrow(e ast.Expr) string {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.IsType() {
		return ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() == c.pass.Pkg.Path() {
		return ""
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		var fact BorrowedFact
		if c.pass.ObjectFact(st.Field(i), &fact) {
			key, _ := analysis.ObjectKeyOf(st.Field(i))
			return key.Object
		}
	}
	return ""
}

func (c *checker) report(pos token.Pos, field string, whole bool, how string) {
	if whole {
		c.pass.Reportf(pos, "value carrying borrowed field %s %s; it aliases an engine-owned buffer valid only until the owner's next cycle — copy the slices out instead", field, how)
		return
	}
	c.pass.Reportf(pos, "borrowed buffer %s %s; it is valid only until the owner's next cycle — copy it out with make+copy instead", field, how)
}
