package bufretain_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/bufretain"
)

func TestBufRetain(t *testing.T) {
	analysistest.Run(t, bufretain.Analyzer, "engine", "caller")
}
