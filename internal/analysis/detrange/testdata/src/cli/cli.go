// Package cli is a detrange fixture for the gating rule: it is not in the
// determinism-critical set, so even an order-dependent map walk is clean.
package cli

func report(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
