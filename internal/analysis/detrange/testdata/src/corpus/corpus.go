// Package corpus is a detrange fixture: its name puts it in the
// determinism-critical set, so map iteration with order-dependent effects
// must be flagged.
package corpus

import (
	"math/rand"
	"sort"
	"strings"
)

// keysUnsorted appends map keys without sorting: flagged.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m has an order-dependent effect \(append to out\)`
		out = append(out, k)
	}
	return out
}

// keysSorted is the blessed collect-and-sort idiom: clean.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keysSliceSorted collects then sorts with sort.Slice: clean.
func keysSliceSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// draw consumes RNG state per element in map order: flagged.
func draw(m map[string]int, rng *rand.Rand) int {
	n := 0
	for range m { // want `order-dependent effect \(RNG draw Intn\)`
		n += rng.Intn(3)
	}
	return n
}

// emit serializes elements in map order: flagged.
func emit(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `order-dependent effect \(emit/record call WriteString\)`
		sb.WriteString(k)
	}
}

// concat accumulates a string in map order: flagged.
func concat(m map[string]int) string {
	s := ""
	for k := range m { // want `order-dependent effect \(order-sensitive \+= on string\)`
		s += k
	}
	return s
}

// firstKey leaks iteration order through an early return: flagged.
func firstKey(m map[string]int) string {
	for k := range m { // want `order-dependent effect \(early return of a map element\)`
		return k
	}
	return ""
}

// sum is integer accumulation, which commutes: clean.
func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes into another map, whose final state is order-independent:
// clean.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

// deepCopy appends only into per-iteration locals: clean.
func deepCopy(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, vs := range m {
		cp := make([]int, 0, len(vs))
		cp = append(cp, vs...)
		out[k] = cp
	}
	return out
}

// contains returns a constant, not an element: clean.
func contains(m map[string]int, want int) bool {
	for _, v := range m {
		if v == want {
			return true
		}
	}
	return false
}

// suppressed demonstrates the //lego:allow directive: no finding reported.
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m { //lego:allow detrange — fixture demonstrating suppression; caller normalizes order
		out = append(out, k)
	}
	return out
}
