// Package detrange flags `for … range` over a map whose loop body has
// order-dependent effects, inside the determinism-critical packages.
//
// Go randomizes map iteration order per run, so any map walk whose body
// appends to a slice, draws from an RNG, emits/records output, or
// concatenates into a string threads that randomness straight into the
// campaign byte stream — breaking checkpoint/resume equivalence and the
// oracle's shortest-reproducer bookkeeping.
//
// The one blessed idiom is collect-and-sort: a loop whose only effect is
// appending the keys (or values) to a slice that the same function then
// sorts. Everything else must iterate sorted keys explicitly or carry a
// //lego:allow detrange directive.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration with order-dependent effects in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !analysis.IsMapType(pass.TypesInfo.TypeOf(rs.X)) {
				return true
			}
			checkMapRange(pass, file, rs)
			return true
		})
	}
	return nil
}

// effect is one order-dependent operation found in a loop body.
type effect struct {
	pos  token.Pos
	desc string
	// appendTarget is the appended-to slice when the effect is a plain
	// `x = append(x, …)`; nil for every other effect kind. Only loops whose
	// effects are all appends qualify for the collect-and-sort exception.
	appendTarget ast.Expr
}

func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	effects := findEffects(pass, rs)
	if len(effects) == 0 {
		return
	}
	if collectAndSorted(pass, file, rs, effects) {
		return
	}
	e := effects[0]
	pass.Reportf(rs.For,
		"iteration over map %s has an order-dependent effect (%s); iterate sorted keys, or collect into a slice and sort it in this function",
		analysis.ExprString(pass.Fset, rs.X), e.desc)
}

// findEffects walks the loop body for operations whose outcome depends on
// iteration order. Order-independent operations — integer accumulation,
// writes into another map, deletes, constant returns — are deliberately not
// effects.
func findEffects(pass *analysis.Pass, rs *ast.RangeStmt) []effect {
	info := pass.TypesInfo
	var effects []effect
	add := func(pos token.Pos, desc string, target ast.Expr) {
		effects = append(effects, effect{pos: pos, desc: desc, appendTarget: target})
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if target, ok := plainAppend(info, n); ok {
				// Appending into a slice declared inside the loop body (the
				// per-element deep-copy idiom, later stored into another
				// map) accumulates nothing across iterations and is
				// order-independent.
				if !declaredInside(info, target, rs.Body) {
					add(n.Pos(), "append to "+analysis.ExprString(pass.Fset, target), target)
				}
				// Still descend for nested effects (an RNG draw inside the
				// append argument).
				return true
			}
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if t := info.TypeOf(n.Lhs[0]); t != nil && !commutative(t) {
					add(n.Pos(), "order-sensitive += on "+t.String(), nil)
				}
			}
		case *ast.CallExpr:
			if desc, ok := callEffect(info, n); ok {
				add(n.Pos(), desc, nil)
			}
		case *ast.ReturnStmt:
			if referencesRangeVars(info, n, rs) {
				add(n.Pos(), "early return of a map element", nil)
			}
		}
		return true
	})
	return effects
}

// plainAppend matches `x = append(x, …)` / `x = append(y, …)` and returns
// the assigned slice.
func plainAppend(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !analysis.IsBuiltin(info, call, "append") {
		return nil, false
	}
	return as.Lhs[0], true
}

// declaredInside reports whether the base identifier of an append target is
// declared within the loop body, making the append per-iteration state.
func declaredInside(info *types.Info, target ast.Expr, body *ast.BlockStmt) bool {
	e := ast.Unparen(target)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			id, ok := e.(*ast.Ident)
			if !ok {
				return false
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			return obj != nil && body.Pos() <= obj.Pos() && obj.Pos() < body.End()
		}
	}
}

// commutative reports whether += on the type is order-independent: integer
// addition commutes, while float addition rounds differently per order and
// string += concatenates in order.
func commutative(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsInteger != 0
}

// emitNames are method/function names treated as emit/record sinks: calls
// that serialize, log, or accumulate in order.
var emitNames = map[string]bool{
	"Record": true, "Emit": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

// rngNames are *rand.Rand (and xrand) draw methods.
var rngNames = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true,
}

// callEffect classifies a call inside the loop body.
func callEffect(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncFor(info, call.Fun)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && rngNames[name] {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			path := ""
			if named.Obj().Pkg() != nil {
				path = named.Obj().Pkg().Path()
			}
			if path == "math/rand" || path == "math/rand/v2" || analysis.PkgBase(path) == "xrand" {
				return "RNG draw " + name, true
			}
		}
	}
	if emitNames[name] {
		return "emit/record call " + name, true
	}
	return "", false
}

// referencesRangeVars reports whether the node mentions the loop's key or
// value variable (returning one of them leaks iteration order).
func referencesRangeVars(info *types.Info, n ast.Node, rs *ast.RangeStmt) bool {
	objs := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Defs[id]; obj != nil {
			objs[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			objs[obj] = true
		}
	}
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// sortNames maps package path → function names whose first argument is the
// slice being sorted.
var sortNames = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Strings": true,
		"Ints": true, "Float64s": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// collectAndSorted reports whether every effect is a plain append whose
// target the enclosing function sorts after the loop — the blessed
// collect-then-sort idiom.
func collectAndSorted(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, effects []effect) bool {
	body, _ := analysis.EnclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	for _, e := range effects {
		if e.appendTarget == nil {
			return false
		}
		if !sortedAfter(pass, body, rs.End(), e.appendTarget) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether the function body contains, after the loop,
// a sort call whose first argument is (textually) the given slice.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, after token.Pos, target ast.Expr) bool {
	want := analysis.ExprString(pass.Fset, target)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := analysis.PkgNameOf(pass.TypesInfo, sel)
		names, ok := sortNames[pkg]
		if !ok || !names[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		if analysis.ExprString(pass.Fset, call.Args[0]) == want {
			found = true
		}
		return !found
	})
	return found
}
