package detrange_test

import (
	"testing"

	"github.com/seqfuzz/lego/internal/analysis/analysistest"
	"github.com/seqfuzz/lego/internal/analysis/detrange"
)

func TestDetrange(t *testing.T) {
	analysistest.Run(t, detrange.Analyzer, "corpus", "cli")
}
