// Package analysistest runs an analyzer over fixture packages under
// testdata/src, checking its diagnostics against `// want "regexp"`
// expectations — the same contract as x/tools' analysistest, implemented on
// the standard library's source importer so fixtures may import std
// packages (math/rand, time, sort, …) without network access or vendoring.
//
// A fixture line may carry at most one expectation:
//
//	for k := range m { // want `iteration over map`
//
// Lines carrying a //lego:allow directive demonstrate suppression: the
// framework drops the diagnostic, so the line must NOT carry a want.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Run analyzes each fixture package (a directory name under testdata/src,
// resolved relative to the calling test) and asserts the analyzer's
// diagnostics match the // want expectations exactly.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runDir(t, a, filepath.Join("testdata", "src", pkg), pkg)
		})
	}
}

func runDir(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	src := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return src.Import(path)
		}),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	matched := map[*want]bool{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		w := findWant(wants, pos.Filename, pos.Line)
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		if matched[w] {
			t.Errorf("%s: multiple diagnostics matched one want: %s", pos, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", pos, d.Message, w.re)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches want expectations in either quoting style:
// `// want "re"` or "// want `re`".
var wantRE = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				expr := m[1]
				if expr == "" {
					expr = m[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", expr, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

func findWant(wants []*want, file string, line int) *want {
	for _, w := range wants {
		if w.file == file && w.line == line {
			return w
		}
	}
	return nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
