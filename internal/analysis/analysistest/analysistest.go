// Package analysistest runs an analyzer over fixture packages under
// testdata/src, checking its diagnostics against `// want "regexp"`
// expectations — the same contract as x/tools' analysistest, implemented on
// the standard library's source importer so fixtures may import std
// packages (math/rand, time, sort, …) without network access or vendoring.
//
// A fixture line may carry several expectations:
//
//	for k := range m { // want `iteration over map` `second finding`
//
// Lines carrying a //lego:allow directive demonstrate suppression: the
// framework marks the diagnostic Allowed, the runner drops it, and the line
// must NOT carry a want.
//
// Fixture packages may import sibling fixture packages (any import path that
// resolves to a directory under the same testdata/src). Dependencies are
// analyzed first, depth-first, against a FactStore shared with the package
// under test, so fixtures can exercise cross-package facts exactly as the
// unitchecker does — only the serialization step is elided. Diagnostics are
// asserted only for the named package, not its dependencies.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/analysis"
)

// Run analyzes each fixture package (a directory name under testdata/src,
// resolved relative to the calling test) and asserts the analyzer's
// diagnostics match the // want expectations exactly.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			ld := newLoader(t, filepath.Join("testdata", "src"), a)
			lp := ld.load(pkg)
			checkWants(t, ld.fset, lp.files, lp.diags)
		})
	}
}

// loadedPkg is one analyzed fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	diags []analysis.Diagnostic
}

// loader parses, type-checks, and analyzes fixture packages in dependency
// order, sharing one FileSet, one FactStore, and one type-checked package
// cache so objects keep their identity across the fixture import graph.
type loader struct {
	t        *testing.T
	root     string
	analyzer *analysis.Analyzer
	fset     *token.FileSet
	store    *analysis.FactStore
	std      types.Importer
	pkgs     map[string]*loadedPkg
	loading  map[string]bool
}

func newLoader(t *testing.T, root string, a *analysis.Analyzer) *loader {
	fset := token.NewFileSet()
	return &loader{
		t:        t,
		root:     root,
		analyzer: a,
		fset:     fset,
		store:    analysis.NewFactStore(),
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*loadedPkg{},
		loading:  map[string]bool{},
	}
}

// isFixture reports whether the import path names a sibling fixture package.
func (ld *loader) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

func (ld *loader) load(importPath string) *loadedPkg {
	ld.t.Helper()
	if lp, ok := ld.pkgs[importPath]; ok {
		return lp
	}
	if ld.loading[importPath] {
		ld.t.Fatalf("fixture import cycle through %q", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	dir := filepath.Join(ld.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		ld.t.Fatalf("no fixture files in %s", dir)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			ld.t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	// Analyze fixture dependencies first so their facts are in the store
	// before the importer hands their package object to the type-checker.
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if ld.isFixture(path) {
				ld.load(path)
			}
		}
	}

	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if lp, ok := ld.pkgs[path]; ok {
				return lp.pkg, nil
			}
			if ld.isFixture(path) {
				return nil, fmt.Errorf("fixture package %q not yet analyzed", path)
			}
			return ld.std.Import(path)
		}),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("type-checking fixture %s: %v", importPath, err)
	}

	diags, err := analysis.Run(ld.fset, files, pkg, info, []*analysis.Analyzer{ld.analyzer}, ld.store)
	if err != nil {
		ld.t.Fatalf("running %s on %s: %v", ld.analyzer.Name, importPath, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, diags: diags}
	ld.pkgs[importPath] = lp
	return lp
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
	matched := map[*want]bool{}
	for _, d := range diags {
		if d.Allowed {
			continue // suppression demonstrated; the fixture carries no want
		}
		pos := fset.Position(d.Pos)
		w := findWant(wants, matched, pos.Filename, pos.Line, d.Message)
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		matched[w] = true
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches want expectations in either quoting style:
// `// want "re"` or "// want `re`". A single comment may chain several
// quoted patterns after one want keyword.
var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")

var wantPatternRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pm := range wantPatternRE.FindAllStringSubmatch(m[1], -1) {
					expr := pm[1]
					if expr == "" {
						expr = pm[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// findWant returns the first unmatched expectation on the line whose pattern
// matches the message, or nil; a diagnostic whose message matches no free
// expectation is reported verbatim as unexpected, which shows the mismatch.
func findWant(wants []*want, matched map[*want]bool, file string, line int, msg string) *want {
	for _, w := range wants {
		if w.file == file && w.line == line && !matched[w] && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
