package shard

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/chaos"
	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/harness"
)

// chaosOptions arms the chaos plane on top of the standard test campaign.
func chaosOptions(workers int, rate float64) Options {
	o := testOptions(workers)
	o.ChaosRate = rate
	o.ChaosSeed = 7
	return o
}

// TestChaosDoubleRunDeterminism is the supervision tentpole's acceptance
// test: two campaigns under the same (ChaosRate, ChaosSeed) see the same
// injected failures, make the same retry/quarantine decisions, and produce
// byte-identical checkpoints — incident journal included.
func TestChaosDoubleRunDeterminism(t *testing.T) {
	const budget = 8000
	a, b := New(chaosOptions(4, 0.08)), New(chaosOptions(4, 0.08))
	if _, err := a.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(a.Incidents()) == 0 {
		t.Fatal("chaotic campaign saw no incidents; raise the rate so supervision is exercised")
	}
	sa, sb := snapshotJSON(t, a), snapshotJSON(t, b)
	if string(sa) != string(sb) {
		t.Fatalf("identical chaotic campaigns diverged\nrun A: %.400s\nrun B: %.400s", sa, sb)
	}
}

// TestChaosStopResumeEquivalence: interrupting a chaotic campaign at a
// barrier and resuming it must replay exactly the faults the uninterrupted
// campaign would have seen from there — the payoff of keying every chaos
// decision by its campaign coordinates instead of a sequential stream.
func TestChaosStopResumeEquivalence(t *testing.T) {
	const budget = 8000
	opts := chaosOptions(2, 0.08)

	ref := New(opts)
	if _, err := ref.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(ref.Incidents()) == 0 {
		t.Fatal("reference chaotic campaign saw no incidents; the equivalence below would be vacuous")
	}

	interrupted := New(opts)
	stop := make(chan struct{})
	closed := false
	wasStopped, err := interrupted.Run(budget, RunOptions{
		EveryExecs: 1,
		Save: func(st *checkpoint.State) error {
			if !closed && interrupted.Epoch() >= 2 {
				closed = true
				close(stop)
			}
			return nil
		},
		Stop: stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wasStopped {
		t.Fatal("campaign ran to completion before the stop request landed")
	}

	path := filepath.Join(t.TempDir(), "chaotic.ckpt")
	if err := checkpoint.Save(path, interrupted.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(opts, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	a, b := snapshotJSON(t, ref), snapshotJSON(t, resumed)
	if string(a) != string(b) {
		t.Fatalf("resumed chaotic campaign diverged from uninterrupted run\nref:     %.400s\nresumed: %.400s", a, b)
	}
}

// TestQuarantineDegradesGracefully: under a rate-1 schedule every attempt
// fails, so every shard burns its retry budget and quarantines — and the
// campaign must still complete normally, reporting the degraded topology
// and a journal whose last word on each shard is QUARANTINED.
func TestQuarantineDegradesGracefully(t *testing.T) {
	o := chaosOptions(3, 1.0)
	o.MaxEpochRetries = 2
	e := New(o)
	interrupted, err := e.Run(6000, RunOptions{})
	if err != nil {
		t.Fatalf("degraded campaign must complete without error, got %v", err)
	}
	if interrupted {
		t.Fatal("nothing requested a stop")
	}
	if e.ActiveWorkers() != 0 || len(e.QuarantinedShards()) != 3 {
		t.Fatalf("want all 3 shards quarantined, got active=%d quarantined=%v",
			e.ActiveWorkers(), e.QuarantinedShards())
	}
	// Each shard: MaxEpochRetries retried incidents, then one quarantine.
	perShard := map[int][]string{}
	for _, in := range e.Incidents() {
		perShard[in.Shard] = append(perShard[in.Shard], in.Outcome)
	}
	for i := 0; i < 3; i++ {
		got := perShard[i]
		want := []string{harness.IncidentRetried, harness.IncidentRetried, harness.IncidentQuarantined}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("shard %d outcomes = %v, want %v", i, got, want)
		}
	}
	// The campaign holds the shards' last-good (initial-barrier) states and
	// its checkpoint still round-trips.
	st := e.Snapshot()
	for i, ss := range st.Shards {
		if !ss.Quarantined || ss.Retries != 2 {
			t.Fatalf("shard %d checkpoint entry: quarantined=%v retries=%d", i, ss.Quarantined, ss.Retries)
		}
	}
	path := filepath.Join(t.TempDir(), "degraded.ckpt")
	if err := checkpoint.Save(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != checkpoint.Version {
		t.Fatalf("supervised checkpoint stamped v%d, want v%d", loaded.Version, checkpoint.Version)
	}
	resumed, err := Resume(o, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ActiveWorkers() != 0 || len(resumed.Incidents()) != len(e.Incidents()) {
		t.Fatalf("resumed degraded campaign lost supervision state: active=%d incidents=%d",
			resumed.ActiveWorkers(), len(resumed.Incidents()))
	}
	// Resuming a fully quarantined campaign completes immediately.
	if _, err := resumed.Run(6000, RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestOrganicPanicRetriedAndJournaled: a real panic escaping a worker — no
// chaos involved — is contained by the supervisor's recover, journaled with
// a normalized stack, and retried from the barrier snapshot; after the
// clean retry the campaign's fuzzing output is identical to a run that
// never panicked.
func TestOrganicPanicRetriedAndJournaled(t *testing.T) {
	const budget = 6000
	clean := New(testOptions(2))
	if _, err := clean.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	faulty := New(testOptions(2))
	fired := false
	faulty.testFault = func(epoch, shard, attempt int) {
		if epoch == 1 && shard == 1 && attempt == 0 {
			fired = true
			panic("synthetic harness bug: wiring test")
		}
	}
	if _, err := faulty.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("test fault never fired; coordinates drifted")
	}
	incidents := faulty.Incidents()
	if len(incidents) != 1 {
		t.Fatalf("want exactly one incident, got %v", incidents)
	}
	in := incidents[0]
	if in.Kind != harness.IncidentOrganicPanic || in.Outcome != harness.IncidentRetried ||
		in.Epoch != 1 || in.Shard != 1 || in.Retries != 1 {
		t.Fatalf("organic incident misrecorded: %+v", in)
	}
	if !strings.Contains(in.Detail, "shard.") {
		t.Fatalf("incident detail should carry the normalized panic stack, got %q", in.Detail)
	}
	if faulty.ActiveWorkers() != 2 {
		t.Fatalf("one contained panic must not degrade the topology: active=%d", faulty.ActiveWorkers())
	}

	// Modulo the supervision bookkeeping, the retried campaign computed
	// exactly what the clean one did: the retry replayed the epoch from the
	// barrier snapshot bit-for-bit.
	got, want := faulty.Snapshot(), clean.Snapshot()
	got.Incidents = nil
	got.MaxEpochRetries = 0
	for _, ss := range got.Shards {
		ss.Retries = 0
	}
	a, b := mustJSON(t, got), mustJSON(t, want)
	if a != b {
		t.Fatalf("retried campaign diverged from clean run\nretried: %.400s\nclean:   %.400s", a, b)
	}
}

// TestChaosOffIsByteIdenticalToUnsupervised: with the chaos plane disarmed
// and no failures, the supervision machinery must leave no trace — the
// checkpoint is a clean v3 state, exactly what pre-supervision builds wrote.
func TestChaosOffIsByteIdenticalToUnsupervised(t *testing.T) {
	e := New(testOptions(2))
	if _, err := e.Run(4000, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()
	if len(st.Incidents) != 0 || st.ChaosRate != 0 || st.ChaosSeed != 0 || st.MaxEpochRetries != 0 {
		t.Fatalf("unsupervised snapshot carries supervision fields: %+v", st)
	}
	path := filepath.Join(t.TempDir(), "plain.ckpt")
	if err := checkpoint.Save(path, st); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Version != 3 {
		t.Fatalf("unsupervised campaign stamped v%d, want the pre-supervision v3", loaded.Version)
	}
}

// TestResumeRejectsMismatchedChaos: the chaos identity is campaign identity;
// resuming a chaotic checkpoint under a different (or absent) schedule must
// fail loudly, like a wrong seed or topology does.
func TestResumeRejectsMismatchedChaos(t *testing.T) {
	opts := chaosOptions(2, 0.08)
	e := New(opts)
	if _, err := e.Run(3000, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()

	if _, err := Resume(testOptions(2), st); err == nil || !strings.Contains(err.Error(), "chaos rate") {
		t.Fatalf("resume without chaos: got %v, want chaos rate mismatch", err)
	}
	wrongSeed := opts
	wrongSeed.ChaosSeed = 8
	if _, err := Resume(wrongSeed, st); err == nil || !strings.Contains(err.Error(), "chaos seed") {
		t.Fatalf("resume with wrong chaos seed: got %v, want chaos seed mismatch", err)
	}
	wrongBudget := opts
	wrongBudget.MaxEpochRetries = 9
	if _, err := Resume(wrongBudget, st); err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("resume with wrong retry budget: got %v, want retry budget mismatch", err)
	}
}

// TestInjectedSaveFaultsDoNotChangeTheCampaign: routing checkpoint saves
// through a rate-1 chaotic filesystem eats every save, yet the campaign's
// computed state is byte-identical to one that never saved at all — a
// chaotic filesystem changes what lands on disk, never what the campaign
// computes.
func TestInjectedSaveFaultsDoNotChangeTheCampaign(t *testing.T) {
	const budget = 4000
	ref := New(testOptions(2))
	if _, err := ref.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	e := New(testOptions(2))
	cfs := chaos.NewFS(chaos.New(1.0, 9), checkpoint.OS)
	path := filepath.Join(t.TempDir(), "eaten.ckpt")
	if _, err := e.Run(budget, RunOptions{
		EveryExecs: 1,
		Save: func(st *checkpoint.State) error {
			return checkpoint.SaveFS(cfs, path, st)
		},
	}); err != nil {
		t.Fatalf("injected save faults must not abort the campaign: %v", err)
	}
	if e.SaveFaults() == 0 {
		t.Fatal("rate-1 chaotic filesystem ate no saves")
	}
	a, b := snapshotJSON(t, ref), snapshotJSON(t, e)
	if string(a) != string(b) {
		t.Fatalf("save faults changed the campaign\nref:    %.400s\nfaulty: %.400s", a, b)
	}
}

func mustJSON(t *testing.T, st *checkpoint.State) string {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
