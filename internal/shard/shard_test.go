package shard

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// testOptions is a small but bug-bearing campaign: hazards armed so crashes
// cross-pollinate, fault injection armed so the per-shard injector streams
// are exercised, and an epoch short enough that a few-thousand-statement
// budget crosses several barriers.
func testOptions(workers int) Options {
	return Options{
		Core: core.Options{
			Dialect:   sqlt.DialectMariaDB,
			Seed:      21,
			Hazards:   true,
			FaultRate: 0.002,
		},
		Workers:    workers,
		EpochStmts: 500,
	}
}

func snapshotJSON(t *testing.T, e *Executor) []byte {
	t.Helper()
	b, err := json.Marshal(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedDoubleRunDeterminism is the tentpole acceptance test: two
// sharded campaigns with identical options must produce byte-identical
// checkpoints — coverage, pools, RNG positions, crashes, curve — no matter
// how the per-epoch goroutines were scheduled. Run it under -race to also
// certify that shards share no mutable state between barriers.
func TestShardedDoubleRunDeterminism(t *testing.T) {
	const budget = 8000
	a := New(testOptions(4))
	b := New(testOptions(4))
	if _, err := a.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	if a.Execs() == 0 || a.Branches() == 0 {
		t.Fatalf("campaign did no work: execs=%d branches=%d", a.Execs(), a.Branches())
	}
	if a.Epoch() < 3 {
		t.Fatalf("budget crossed only %d barriers; the test needs several to be meaningful", a.Epoch())
	}
	sa, sb := snapshotJSON(t, a), snapshotJSON(t, b)
	if string(sa) != string(sb) {
		t.Fatalf("identical sharded campaigns diverged\nrun A: %.400s\nrun B: %.400s", sa, sb)
	}
}

// TestBarrierInvariants: after a barrier every shard holds the global
// OR-fold of coverage, the same seed set, the same affinity union, and the
// same deduplicated crash keys — the post-barrier symmetry the executor's
// determinism argument rests on.
func TestBarrierInvariants(t *testing.T) {
	e := New(testOptions(3))
	if _, err := e.Run(6000, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, sh := range e.Shards() {
		if got := sh.Runner().Branches(); got != e.Branches() {
			t.Errorf("shard %d coverage %d edges != global %d", i, got, e.Branches())
		}
		if got := sh.Pool().Len(); got != e.Shards()[0].Pool().Len() {
			t.Errorf("shard %d pool size %d != shard 0's %d", i, got, e.Shards()[0].Pool().Len())
		}
		if got := sh.Affinities(); got != e.Affinities() {
			t.Errorf("shard %d affinities %d != global %d", i, got, e.Affinities())
		}
		if got := sh.Runner().Oracle.Count(); got != e.Oracle().Count() {
			t.Errorf("shard %d distinct crashes %d != global %d", i, got, e.Oracle().Count())
		}
	}
	if e.Oracle().Count() == 0 {
		t.Fatal("hazard campaign found no crashes; pollination untested")
	}
	// Adopted crashes carry zero hits, so the global per-crash hit tally
	// equals the sum of real observations — no double counting.
	var shardHits, globalHits int
	for _, sh := range e.Shards() {
		for _, c := range sh.Runner().Oracle.Crashes() {
			shardHits += c.Hits
		}
	}
	for _, c := range e.Oracle().Crashes() {
		globalHits += c.Hits
	}
	if shardHits != globalHits {
		t.Errorf("global hit tally %d != sum of shard observations %d", globalHits, shardHits)
	}
}

// TestShardedStopResumeEquivalence: a campaign stopped at an epoch barrier
// and resumed from its checkpoint (through a real file round trip) must
// finish in exactly the state of the campaign that was never interrupted,
// because barriers are states uninterrupted campaigns also pass through.
func TestShardedStopResumeEquivalence(t *testing.T) {
	const budget = 8000
	ref := New(testOptions(2))
	if _, err := ref.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	interrupted := New(testOptions(2))
	stop := make(chan struct{})
	closed := false
	wasStopped, err := interrupted.Run(budget, RunOptions{
		EveryExecs: 1, // checkpoint at every barrier
		Save: func(st *checkpoint.State) error {
			if !closed && interrupted.Epoch() >= 2 {
				closed = true
				close(stop)
			}
			return nil
		},
		Stop: stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wasStopped {
		t.Fatal("campaign ran to completion before the stop request landed")
	}

	path := t.TempDir() + "/sharded.ckpt"
	if err := checkpoint.Save(path, interrupted.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(testOptions(2), loaded)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Execs() != interrupted.Execs() || resumed.Epoch() != interrupted.Epoch() {
		t.Fatalf("restored campaign at execs=%d epoch=%d, want execs=%d epoch=%d",
			resumed.Execs(), resumed.Epoch(), interrupted.Execs(), interrupted.Epoch())
	}
	if _, err := resumed.Run(budget, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	a, b := snapshotJSON(t, ref), snapshotJSON(t, resumed)
	if string(a) != string(b) {
		t.Fatalf("resumed sharded campaign diverged from uninterrupted run\nref:     %.400s\nresumed: %.400s", a, b)
	}
}

// TestResumeRejectsMismatchedTopology: Workers and EpochStmts identify the
// campaign the way Seed does — resuming under a different topology would
// silently move every barrier, so it must fail loudly instead.
func TestResumeRejectsMismatchedTopology(t *testing.T) {
	e := New(testOptions(2))
	if _, err := e.Run(2000, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	st := e.Snapshot()

	wrongWorkers := testOptions(3)
	if _, err := Resume(wrongWorkers, st); err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("resume with wrong worker count: got %v, want workers mismatch error", err)
	}
	wrongEpoch := testOptions(2)
	wrongEpoch.EpochStmts = 999
	if _, err := Resume(wrongEpoch, st); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("resume with wrong epoch budget: got %v, want epoch mismatch error", err)
	}
}

// TestSingleShardCheckpointResumes: a checkpoint written by the plain
// single-threaded path (no topology fields — the v2 layout) resumes as a
// one-worker sharded campaign, and refuses to fan out into more workers.
func TestSingleShardCheckpointResumes(t *testing.T) {
	opts := testOptions(1)
	f := core.New(opts.Core)
	f.Run(3000)
	st := f.Snapshot()

	e, err := Resume(opts, st)
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 1 || e.Execs() != f.Runner().Execs {
		t.Fatalf("single-shard resume: workers=%d execs=%d, want 1 worker at execs=%d",
			e.Workers(), e.Execs(), f.Runner().Execs)
	}
	// The epoch counter fast-forwards past the executed statements so the
	// next epoch is not a ladder of empty barriers.
	if want := f.Runner().Stmts / opts.EpochStmts; e.Epoch() != want {
		t.Fatalf("fast-forwarded epoch = %d, want %d", e.Epoch(), want)
	}
	if _, err := Resume(testOptions(4), st); err == nil {
		t.Fatal("resuming a single-shard checkpoint as 4 workers must fail")
	}
}

// TestCurveIsBarrierSampled: the global curve carries one point per
// progressing barrier, with strictly increasing exec counts and a final
// point matching the campaign totals.
func TestCurveIsBarrierSampled(t *testing.T) {
	e := New(testOptions(2))
	if _, err := e.Run(4000, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	curve := e.Curve()
	if len(curve) < 2 {
		t.Fatalf("curve has %d points, want at least the initial and a barrier sample", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Execs <= curve[i-1].Execs {
			t.Fatalf("curve execs not strictly increasing at %d: %+v", i, curve)
		}
	}
	last := curve[len(curve)-1]
	if last.Execs != e.Execs() || last.Edges != e.Branches() {
		t.Fatalf("final curve point %+v, want execs=%d edges=%d", last, e.Execs(), e.Branches())
	}
}
