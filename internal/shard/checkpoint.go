package shard

import (
	"fmt"

	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/oracle"
)

// Snapshot captures the whole sharded campaign as a checkpoint v3 state:
// one complete per-worker state per shard (in shard-index order) plus the
// merged global view at the top level. Snapshots are only taken at epoch
// barriers, so the nested shard states are exactly the states an
// uninterrupted campaign passes through.
func (e *Executor) Snapshot() *checkpoint.State {
	shards := make([]*checkpoint.State, len(e.shards))
	for i, sh := range e.shards {
		shards[i] = sh.Snapshot()
	}
	return &checkpoint.State{
		// Campaign identity comes from shard 0 (all shards agree on
		// everything but the RNG stream, which each nested state carries).
		Dialect: shards[0].Dialect,
		Seed:    shards[0].Seed,
		MaxLen:  shards[0].MaxLen,

		// Global aggregates: counters are totals, the curve is the
		// barrier-sampled global curve, and the crashes are the merged
		// oracle — the only copy that carries triage results.
		Execs:        e.Execs(),
		Stmts:        e.Stmts(),
		EnginePanics: e.EnginePanics(),
		Curve:        core.ExportCurve(e.curve),
		Crashes:      core.ExportCrashes(e.oracle),

		Workers:    len(e.shards),
		EpochStmts: e.opts.EpochStmts,
		Epoch:      e.epoch,
		Shards:     shards,
	}
}

// Resume rebuilds a sharded campaign from a checkpoint. The topology
// (Workers, EpochStmts) is part of the campaign's identity — resuming under
// a different one would move every epoch barrier — so mismatches fail
// loudly, like core.Resume does for seed and dialect.
//
// A v2 (or otherwise single-shard) checkpoint resumes as a one-worker
// campaign: the top-level state is the worker.
func Resume(opts Options, st *checkpoint.State) (*Executor, error) {
	opts.fill()
	stWorkers := st.Workers
	if stWorkers == 0 {
		stWorkers = 1 // pre-v3 and single-shard checkpoints omit the field
	}
	if stWorkers != opts.Workers {
		return nil, fmt.Errorf("shard: resume: checkpoint has %d workers, options request %d", stWorkers, opts.Workers)
	}
	if st.Workers != 0 && st.EpochStmts != opts.EpochStmts {
		return nil, fmt.Errorf("shard: resume: checkpoint epoch budget is %d statements, options request %d", st.EpochStmts, opts.EpochStmts)
	}

	e := &Executor{
		opts:   opts,
		global: coverage.NewMap(),
		oracle: oracle.New(),
		epoch:  st.Epoch,
	}
	if len(st.Shards) == 0 {
		// Single-shard: the worker state lives at the top level. Fast-forward
		// the epoch counter past the statements already executed so the
		// first new epoch is not a ladder of empty barriers.
		f, err := core.Resume(opts.Core, st)
		if err != nil {
			return nil, err
		}
		e.shards = []*core.Fuzzer{f}
		if st.Workers == 0 {
			e.epoch = st.Stmts / opts.EpochStmts
		}
	} else {
		for i, ss := range st.Shards {
			co := opts.Core
			co.Seed += int64(i)
			f, err := core.Resume(co, ss)
			if err != nil {
				return nil, fmt.Errorf("shard: resume shard %d: %w", i, err)
			}
			e.shards = append(e.shards, f)
		}
	}

	// Snapshots are taken post-barrier, so every shard's pool deltas have
	// already been donated and every shard's coverage equals the global
	// OR-fold; rebuilding the global map by merging the shards is exact.
	e.poolMark = make([]int, len(e.shards))
	for i, sh := range e.shards {
		e.poolMark[i] = sh.Pool().Len()
		e.global.Merge(sh.Runner().Cov)
	}

	// The top-level crash list is the merged global oracle and the only
	// copy carrying triage results; prefer it over re-merging the shards,
	// which would resurrect pre-triage fields.
	if len(st.Crashes) > 0 {
		crashes, err := core.ImportCrashes(opts.Core.Dialect, st.Crashes)
		if err != nil {
			return nil, fmt.Errorf("shard: resume: %w", err)
		}
		e.oracle.Import(crashes)
	} else {
		for _, sh := range e.shards {
			e.oracle.Merge(sh.Runner().Oracle)
		}
	}
	e.curve = core.ImportCurve(st.Curve)
	return e, nil
}
