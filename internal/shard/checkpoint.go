package shard

import (
	"fmt"

	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/core"
)

// Snapshot captures the whole sharded campaign as a checkpoint state: one
// complete per-worker state per shard (in shard-index order) plus the
// merged global view at the top level. Snapshots are only taken at epoch
// barriers, so the nested shard states are exactly the states an
// uninterrupted campaign passes through.
//
// The supervision fields are written only when used — chaos identity only
// when the chaos plane is armed, the retry budget only when it matters for
// resume identity — so an unsupervised campaign's snapshot stays a clean v3
// state, byte-identical to pre-supervision builds (checkpoint.Save stamps
// the matching version).
func (e *Executor) Snapshot() *checkpoint.State {
	shards := make([]*checkpoint.State, len(e.shards))
	for i, sh := range e.shards {
		ss := sh.Snapshot()
		ss.Quarantined = e.quarantined[i]
		ss.Retries = e.retries[i]
		shards[i] = ss
	}
	st := &checkpoint.State{
		// Campaign identity comes from shard 0 (all shards agree on
		// everything but the RNG stream, which each nested state carries).
		Dialect: shards[0].Dialect,
		Seed:    shards[0].Seed,
		MaxLen:  shards[0].MaxLen,

		// Global aggregates: counters are totals, the curve is the
		// barrier-sampled global curve, and the crashes are the merged
		// oracle — the only copy that carries triage results.
		Execs:        e.Execs(),
		Stmts:        e.Stmts(),
		EnginePanics: e.EnginePanics(),
		Curve:        core.ExportCurve(e.curve),
		Crashes:      core.ExportCrashes(e.oracle),

		Workers:    len(e.shards),
		EpochStmts: e.opts.EpochStmts,
		Epoch:      e.epoch,
		Shards:     shards,

		Incidents: core.ExportIncidents(e.incidents),
	}
	if e.opts.ChaosRate != 0 {
		st.ChaosRate = e.opts.ChaosRate
		st.ChaosSeed = e.opts.ChaosSeed
	}
	if e.opts.ChaosRate != 0 || len(e.incidents) > 0 {
		// The retry budget shapes the schedule only once failures exist (or
		// can exist); record it exactly then, so Resume can insist on it.
		st.MaxEpochRetries = e.opts.MaxEpochRetries
	}
	return st
}

// Resume rebuilds a sharded campaign from a checkpoint. The topology
// (Workers, EpochStmts) is part of the campaign's identity — resuming under
// a different one would move every epoch barrier — so mismatches fail
// loudly, like core.Resume does for seed and dialect.
//
// A v2 (or otherwise single-shard) checkpoint resumes as a one-worker
// campaign: the top-level state is the worker.
func Resume(opts Options, st *checkpoint.State) (*Executor, error) {
	opts.fill()
	stWorkers := st.Workers
	if stWorkers == 0 {
		stWorkers = 1 // pre-v3 and single-shard checkpoints omit the field
	}
	if stWorkers != opts.Workers {
		return nil, fmt.Errorf("shard: resume: checkpoint has %d workers, options request %d", stWorkers, opts.Workers)
	}
	if st.Workers != 0 && st.EpochStmts != opts.EpochStmts {
		return nil, fmt.Errorf("shard: resume: checkpoint epoch budget is %d statements, options request %d", st.EpochStmts, opts.EpochStmts)
	}
	// The chaos identity is campaign identity: the fault schedule shapes the
	// incident journal and, through retries, every shard's RNG consumption,
	// so resuming under a different schedule would silently diverge.
	if st.ChaosRate != opts.ChaosRate {
		return nil, fmt.Errorf("shard: resume: checkpoint chaos rate is %v, options request %v", st.ChaosRate, opts.ChaosRate)
	}
	if st.ChaosRate != 0 && st.ChaosSeed != opts.ChaosSeed {
		return nil, fmt.Errorf("shard: resume: checkpoint chaos seed is %d, options request %d", st.ChaosSeed, opts.ChaosSeed)
	}
	if st.MaxEpochRetries != 0 && st.MaxEpochRetries != opts.MaxEpochRetries {
		return nil, fmt.Errorf("shard: resume: checkpoint retry budget is %d epochs, options request %d", st.MaxEpochRetries, opts.MaxEpochRetries)
	}

	e := newExecutor(opts)
	e.epoch = st.Epoch
	e.retries = make([]int, opts.Workers)
	e.quarantined = make([]bool, opts.Workers)
	e.incidents = core.ImportIncidents(st.Incidents)
	if len(st.Shards) == 0 {
		// Single-shard: the worker state lives at the top level. Fast-forward
		// the epoch counter past the statements already executed so the
		// first new epoch is not a ladder of empty barriers.
		f, err := core.Resume(opts.Core, st)
		if err != nil {
			return nil, err
		}
		e.shards = []*core.Fuzzer{f}
		if st.Workers == 0 {
			e.epoch = st.Stmts / opts.EpochStmts
		}
		e.quarantined[0] = st.Quarantined
		e.retries[0] = st.Retries
	} else {
		for i, ss := range st.Shards {
			f, err := core.Resume(e.coreOpts(i), ss)
			if err != nil {
				return nil, fmt.Errorf("shard: resume shard %d: %w", i, err)
			}
			e.shards = append(e.shards, f)
			e.quarantined[i] = ss.Quarantined
			e.retries[i] = ss.Retries
		}
	}

	// Snapshots are taken post-barrier, so every shard's pool deltas have
	// already been donated and every shard's coverage equals the global
	// OR-fold; rebuilding the global map by merging the shards is exact.
	e.poolMark = make([]int, len(e.shards))
	for i, sh := range e.shards {
		e.poolMark[i] = sh.Pool().Len()
		e.global.Merge(sh.Runner().Cov)
	}

	// The top-level crash list is the merged global oracle and the only
	// copy carrying triage results; prefer it over re-merging the shards,
	// which would resurrect pre-triage fields.
	if len(st.Crashes) > 0 {
		crashes, err := core.ImportCrashes(opts.Core.Dialect, st.Crashes)
		if err != nil {
			return nil, fmt.Errorf("shard: resume: %w", err)
		}
		e.oracle.Import(crashes)
	} else {
		for _, sh := range e.shards {
			e.oracle.Merge(sh.Runner().Oracle)
		}
	}
	e.curve = core.ImportCurve(st.Curve)
	// The restored states are barrier states; if supervision is armed, the
	// first runEpoch re-snapshots them lazily before any worker runs.
	return e, nil
}
