package shard

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/seqfuzz/lego/internal/chaos"
	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/harness"
)

// This file is the executor's supervision plane: workers run under recover,
// and a worker that fails mid-epoch — an injected chaos fault, or a real
// panic escaping the harness — never takes the campaign down. The epoch is
// the unit of recovery: every merge barrier snapshots every shard (plain
// checkpoint states, the same machinery that serializes campaigns to disk),
// so a failed shard discards its partial epoch, restores the snapshot, and
// re-runs the epoch deterministically. Re-runs draw against a cumulative
// per-shard retry budget; exhausting it quarantines the shard — it keeps its
// last-good state, already merged at a prior barrier, and the campaign
// degrades to fewer workers instead of dying.
//
// Determinism survives supervision because every moving part is keyed, not
// raced: chaos decisions are pure functions of (epoch, shard, attempt),
// failures are collected in per-shard slots behind the WaitGroup barrier and
// processed in shard-index order, and restores rebuild a shard from a
// barrier snapshot bit-for-bit. Same options, same failures, same retries,
// same incident journal.

// plan is the chaos schedule for one (epoch, shard, attempt): whether and
// where the worker panics or stalls. It is computed on the coordinator
// before the worker goroutine spawns, so workers never share the injector.
type plan struct {
	attempt   int
	panicFire bool
	panicFrac float64
	stallFire bool
	stallFrac float64
}

// supervised reports whether anything can make a worker fail mid-epoch:
// the chaos plane is armed, or a test installed a fault hook. Only then
// are barrier snapshots needed for restore.
func (e *Executor) supervised() bool {
	return e.chaos != nil || e.testFault != nil
}

func (e *Executor) plan(epoch, shard, attempt int) plan {
	p := plan{attempt: attempt}
	if e.chaos == nil {
		return p
	}
	p.panicFire, p.panicFrac = e.chaos.WorkerPanic(epoch, shard, attempt)
	p.stallFire, p.stallFrac = e.chaos.EpochStall(epoch, shard, attempt)
	return p
}

// workerFailure is what a worker goroutine reports back instead of crashing
// the process: the incident kind and its deterministic detail.
type workerFailure struct {
	kind   string
	detail string
}

// runEpoch drives every unfinished shard to the next epoch boundary under
// supervision, retrying failed shards from their barrier snapshots until
// each one has either finished the epoch or been quarantined. This is the
// only place the executor spawns goroutines; the WaitGroup barrier in each
// round is the campaign's entire synchronization surface.
func (e *Executor) runEpoch(targets []int) {
	// Barrier snapshots exist to re-run failed epochs, and epochs can only
	// fail under supervision (the chaos plane or the test fault hook). Take
	// them lazily here — the shards are exactly in their post-barrier states
	// — so an unsupervised campaign skips the Snapshot cost entirely.
	if e.supervised() && e.snapEpoch != e.epoch {
		e.refreshSnaps()
		e.snapEpoch = e.epoch
	}
	end := (e.epoch + 1) * e.opts.EpochStmts
	attempts := make([]int, len(e.shards))
	for {
		// Collect this round's runnable shards: not quarantined, epoch
		// budget unfinished. A shard that failed last round was restored to
		// its barrier snapshot, so its statement count is back below the
		// boundary and it re-enters here with a bumped attempt.
		type job struct {
			shard, budget int
			p             plan
		}
		var jobs []job
		for i, sh := range e.shards {
			if e.quarantined[i] {
				continue
			}
			budget := targets[i]
			if end < budget {
				budget = end
			}
			if sh.Runner().Stmts >= budget {
				continue
			}
			jobs = append(jobs, job{i, budget, e.plan(e.epoch, i, attempts[i])})
		}
		if len(jobs) == 0 {
			return
		}

		// failures[i] is written only by shard i's goroutine and read only
		// after the barrier: per-slot ownership plus the WaitGroup is the
		// whole synchronization story.
		failures := make([]*workerFailure, len(e.shards))
		var wg sync.WaitGroup
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				failures[j.shard] = e.runWorker(j.shard, j.budget, j.p)
			}(j)
		}
		wg.Wait()

		// Resolve failures in shard-index order on the coordinator, so the
		// incident journal and the retry bookkeeping are schedule-independent.
		for i := range e.shards {
			f := failures[i]
			if f == nil {
				continue
			}
			e.restore(i)
			in := harness.Incident{Epoch: e.epoch, Shard: i, Kind: f.kind, Detail: f.detail}
			if e.retries[i] < e.opts.MaxEpochRetries {
				e.retries[i]++
				attempts[i]++
				in.Retries = e.retries[i]
				in.Outcome = harness.IncidentRetried
			} else {
				e.quarantined[i] = true
				in.Retries = e.retries[i]
				in.Outcome = harness.IncidentQuarantined
			}
			e.incidents = append(e.incidents, in)
		}
	}
}

// runWorker runs shard i to its epoch budget on the worker goroutine,
// executing the chaos plan and containing every panic — injected or organic
// — as a structured failure instead of a dead process.
//
// Injected failures are deterministic prefixes: a scheduled panic runs the
// worker to panicFrac of its remaining epoch budget and then panics with
// the fault's coordinates; a scheduled stall likewise parks the worker at
// stallFrac, modeling a worker that stops making progress, and reports the
// stall the supervisor's step watchdog would raise at the barrier. Both
// leave the shard mid-epoch — exactly the partial state a restore discards.
func (e *Executor) runWorker(i, budget int, p plan) (fail *workerFailure) {
	sh := e.shards[i]
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if ip, ok := rec.(chaos.InjectedPanic); ok {
			fail = &workerFailure{kind: harness.IncidentWorkerPanic, detail: ip.Error()}
			return
		}
		// An organic panic: a real bug in the harness or fuzzer, not the
		// engine (the runner contains those). Normalize its stack so the
		// incident is a deterministic, deduplicable record.
		buf := make([]byte, 64<<10)
		buf = buf[:runtime.Stack(buf, false)]
		detail := strings.Join(harness.NormalizeStack(buf), " < ")
		if detail == "" {
			detail = fmt.Sprintf("panic: %v", rec)
		}
		fail = &workerFailure{kind: harness.IncidentOrganicPanic, detail: detail}
	}()

	if e.testFault != nil {
		e.testFault(e.epoch, i, p.attempt)
	}

	start := sh.Runner().Stmts
	span := budget - start
	switch {
	case p.panicFire:
		at := start + int(p.panicFrac*float64(span))
		_, _, _ = sh.RunWithOptions(at, core.RunOptions{})
		panic(chaos.InjectedPanic{Epoch: e.epoch, Shard: i, Attempt: p.attempt})
	case p.stallFire:
		at := start + int(p.stallFrac*float64(span))
		_, _, _ = sh.RunWithOptions(at, core.RunOptions{})
		return &workerFailure{
			kind: harness.IncidentEpochStall,
			detail: fmt.Sprintf("chaos: injected epoch stall (epoch %d, shard %d, attempt %d)",
				e.epoch, i, p.attempt),
		}
	default:
		// No save, no stop: checkpointing and shutdown are barrier-level
		// concerns. RunWithOptions can only fail through Save.
		_, _, _ = sh.RunWithOptions(budget, core.RunOptions{})
	}
	return nil
}

// restore discards shard i's partial epoch and rebuilds it from its state
// at the last merge barrier. The snapshot came from this executor's own
// Snapshot machinery under the same options, so a restore failure is a
// programming error, not an operational condition.
func (e *Executor) restore(i int) {
	if e.snaps == nil || e.snaps[i] == nil {
		panic(fmt.Sprintf("shard: restore shard %d: no barrier snapshot (supervision not armed at epoch start?)", i))
	}
	f, err := core.Resume(e.coreOpts(i), e.snaps[i])
	if err != nil {
		panic(fmt.Sprintf("shard: restore shard %d from barrier snapshot: %v", i, err))
	}
	e.shards[i] = f
	e.poolMark[i] = f.Pool().Len()
}

// refreshSnaps re-snapshots every active shard. Quarantined shards keep
// their last-good snapshot: their live state was restored from it and has
// not moved since.
func (e *Executor) refreshSnaps() {
	if e.snaps == nil {
		e.snaps = make([]*checkpoint.State, len(e.shards))
	}
	for i, sh := range e.shards {
		if !e.quarantined[i] || e.snaps[i] == nil {
			e.snaps[i] = sh.Snapshot()
		}
	}
}
