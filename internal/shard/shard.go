// Package shard runs a LEGO campaign as N parallel workers with
// deterministic epoch-barrier merges — the reproduction's answer to the
// paper's parallel AFL++ instances per target (§IV), made bit-for-bit
// replayable by the determinism substrate (exportable RNG state, byte-exact
// checkpoints, legolint's static gates).
//
// # Model
//
// Each worker ("shard") is a complete, private core.Fuzzer: its own engine,
// tracer, coverage map, seed pool, affinity map, synthesizer, and a seeded
// RNG stream derived as Seed + shardID. Shards run concurrently, but only
// between barriers, and they share no mutable state while running — the
// goroutine scheduler can interleave them arbitrarily without affecting any
// shard's schedule.
//
// Every EpochStmts statements of per-shard budget, all shards stop at an
// epoch barrier and the coordinator merges them in fixed shard-index order:
//
//   - coverage maps OR-fold into a global virgin map, which then folds back
//     into every shard, so no worker re-explores territory a sibling owns;
//   - seeds retained during the epoch cross-pollinate into every peer's
//     pool (as independent clones, analyzed for affinities new to the peer);
//   - affinity maps union, and pairs new to a shard are queued for its
//     progressive synthesis;
//   - crashes are adopted by peers for deduplication, and the global crash
//     view is rebuilt under the oracle's shortest-reproducer invariant;
//   - one global coverage-curve point is sampled.
//
// Because shards are deterministic between barriers and every merge walks
// shards in index order on the coordinator goroutine, the merged report and
// checkpoint depend only on (core.Options, Workers, EpochStmts) — never on
// goroutine scheduling or GOMAXPROCS. Synchronization is confined to the
// barrier (a WaitGroup); sync/atomic must not appear between barriers,
// where workers are required to be plain sequential code.
package shard

import (
	"errors"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/chaos"
	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/core"
	"github.com/seqfuzz/lego/internal/corpus"
	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/triage"
)

// DefaultEpochStmts is the per-shard statement budget between merge
// barriers when Options.EpochStmts is zero. Small enough that discoveries
// propagate while they still matter, large enough that barrier cost
// (O(map size + deltas) per shard) stays far below epoch cost.
const DefaultEpochStmts = 2000

// DefaultMaxEpochRetries is the per-shard cumulative retry budget when
// Options.MaxEpochRetries is zero: how many epoch re-runs a shard is granted
// across the whole campaign before a further failure quarantines it.
const DefaultMaxEpochRetries = 3

// Options configures a sharded campaign.
type Options struct {
	// Core is the per-shard fuzzer configuration. Core.Seed is the base
	// seed: shard i runs the stream Core.Seed + i.
	Core core.Options
	// Workers is the number of parallel shards (minimum 1).
	Workers int
	// EpochStmts is the per-shard statement budget between merge barriers
	// (default DefaultEpochStmts). Together with Workers it is part of the
	// campaign's identity: changing it moves every barrier.
	EpochStmts int

	// ChaosRate arms the deterministic chaos plane: each supervised-failure
	// decision — worker panic, epoch stall, checkpoint I/O fault — fires
	// with this probability (see internal/chaos). Zero disables injection
	// entirely, leaving the campaign byte-identical to an unsupervised one.
	ChaosRate float64
	// ChaosSeed selects the fault schedule; it defaults to Core.Seed so a
	// reseeded campaign reseeds its chaos too. Like Core.Seed it is campaign
	// identity: resuming under a different schedule would diverge.
	ChaosSeed int64
	// MaxEpochRetries is the cumulative per-shard retry budget, counted in
	// epoch re-runs (default DefaultMaxEpochRetries; negative means zero,
	// quarantining a shard on its first failure).
	MaxEpochRetries int
}

func (o *Options) fill() {
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.EpochStmts <= 0 {
		o.EpochStmts = DefaultEpochStmts
	}
	// xrand maps seed 0 to 1, which would collide with shard 1's stream;
	// normalize before deriving per-shard seeds.
	if o.Core.Seed == 0 {
		o.Core.Seed = 1
	}
	if o.ChaosSeed == 0 {
		o.ChaosSeed = o.Core.Seed
	}
	if o.MaxEpochRetries == 0 {
		o.MaxEpochRetries = DefaultMaxEpochRetries
	}
	if o.MaxEpochRetries < 0 {
		o.MaxEpochRetries = 0
	}
}

// Executor drives N fuzzer shards through epoch-barrier rounds.
type Executor struct {
	opts   Options
	shards []*core.Fuzzer

	// global is the merged virgin coverage map; oracle is the merged crash
	// view; curve samples (total execs, global edges) once per barrier.
	global *coverage.Map
	oracle *oracle.Oracle
	curve  []harness.CurvePoint

	// epoch counts the barriers passed; shard i's next barrier sits at
	// min(target_i, (epoch+1)*EpochStmts) statements.
	epoch int
	// poolMark[i] is shard i's pool size at the last barrier; everything
	// after it is the delta donated to peers at the next one.
	poolMark []int

	// Supervision plane (see supervise.go). snaps[i] is shard i's state at
	// the last merge barrier — the point a failed epoch re-runs from.
	// Snapshots are taken lazily at epoch start and only while supervision
	// is armed (chaos plane or test fault hook): an unsupervised campaign
	// never pays the per-barrier Snapshot cost. snapEpoch is the epoch the
	// current snapshots were taken for (-1: none taken yet).
	// retries[i] counts epoch re-runs spent against MaxEpochRetries, and
	// quarantined[i] marks a shard whose budget is exhausted: it holds its
	// last-good state (already merged at a prior barrier) and no longer runs
	// epochs. incidents is the campaign's failure journal, and chaos/fs the
	// injected-fault schedule and the (possibly fault-injecting) filesystem
	// checkpoint saves should route through.
	snaps       []*checkpoint.State
	snapEpoch   int
	retries     []int
	quarantined []bool
	incidents   []harness.Incident
	chaos       *chaos.Injector
	fs          checkpoint.FS
	saveFaults  int
	// testFault, when set, runs on the worker goroutine at the start of each
	// (epoch, shard, attempt) — a test hook for raising organic panics at a
	// chosen coordinate.
	testFault func(epoch, shard, attempt int)
}

// New builds a sharded campaign executor. Every shard ingests the initial
// seed corpus independently (they are identical streams until the first
// divergent RNG draw), and an initial barrier folds that shared baseline
// into the global coverage map.
func New(opts Options) *Executor {
	opts.fill()
	e := newExecutor(opts)
	for i := 0; i < opts.Workers; i++ {
		e.shards = append(e.shards, core.New(e.coreOpts(i)))
	}
	e.poolMark = make([]int, opts.Workers)
	for i, sh := range e.shards {
		e.poolMark[i] = sh.Pool().Len()
	}
	e.retries = make([]int, opts.Workers)
	e.quarantined = make([]bool, opts.Workers)
	e.mergeBarrier()
	return e
}

// newExecutor wires the shard-independent parts shared by New and Resume.
// opts must already be filled.
func newExecutor(opts Options) *Executor {
	e := &Executor{
		opts:      opts,
		global:    coverage.NewMap(),
		oracle:    oracle.New(),
		fs:        checkpoint.OS,
		snapEpoch: -1,
	}
	if opts.ChaosRate != 0 {
		e.chaos = chaos.New(opts.ChaosRate, opts.ChaosSeed)
		e.fs = chaos.NewFS(e.chaos, checkpoint.OS)
	}
	return e
}

// coreOpts derives shard i's fuzzer configuration: the shared core options
// on the Seed+i RNG stream.
func (e *Executor) coreOpts(i int) core.Options {
	co := e.opts.Core
	co.Seed += int64(i)
	return co
}

// RunOptions configures one Run leg, mirroring core.RunOptions at epoch
// granularity.
type RunOptions struct {
	// EveryExecs is the checkpoint cadence in total (cross-shard) test-case
	// executions; Save also runs once when the leg ends. Checkpoints are
	// only taken at epoch barriers, the states a resumed campaign can
	// deterministically continue from.
	EveryExecs int
	// Save persists a snapshot; a non-nil error aborts the leg.
	Save func(*checkpoint.State) error
	// Stop requests graceful shutdown. It is polled only at epoch barriers:
	// a barrier is a state every uninterrupted campaign also passes
	// through, so resuming a stopped campaign and finishing the budget
	// reproduces the uninterrupted campaign exactly. Mid-epoch stops would
	// park shards at statement counts no uninterrupted campaign pauses at.
	// A nil channel never stops.
	Stop <-chan struct{}
}

// Run drives all shards until every one has consumed its slice of
// budgetStmts (total statements, split as evenly as the worker count
// allows) or Stop is closed at a barrier. interrupted reports the latter.
func (e *Executor) Run(budgetStmts int, opts RunOptions) (interrupted bool, err error) {
	targets := e.targets(budgetStmts)
	stopped := func() bool {
		if opts.Stop == nil {
			return false
		}
		select {
		case <-opts.Stop:
			return true
		default:
			return false
		}
	}
	lastSaved := e.Execs()
	for !e.done(targets) && !stopped() {
		e.runEpoch(targets)
		e.epoch++
		e.mergeBarrier()
		if opts.Save != nil && opts.EveryExecs > 0 && e.Execs()-lastSaved >= opts.EveryExecs {
			if err := e.save(opts.Save); err != nil {
				return false, err
			}
			lastSaved = e.Execs()
		}
	}
	interrupted = !e.done(targets) && stopped()
	if opts.Save != nil {
		if err := e.save(opts.Save); err != nil {
			return interrupted, err
		}
	}
	return interrupted, nil
}

// save runs one checkpoint save, absorbing chaos-injected I/O faults: a
// scheduled fault means the disk ate this generation (the previous one is
// still on disk for LoadWithFallback), not that the campaign is broken, so
// the campaign continues and only the fault tally grows. A chaotic
// filesystem changes what lands on disk, never what the campaign computes.
// Real save errors still abort the leg.
func (e *Executor) save(save func(*checkpoint.State) error) error {
	if err := save(e.Snapshot()); err != nil {
		if errors.Is(err, chaos.ErrInjected) {
			e.saveFaults++
			return nil
		}
		return err
	}
	return nil
}

// targets splits the total statement budget into per-shard absolute
// targets: base share plus one spare statement for the first budget%N
// shards, so the split itself is part of the deterministic contract.
func (e *Executor) targets(budgetStmts int) []int {
	n := len(e.shards)
	base, rem := budgetStmts/n, budgetStmts%n
	out := make([]int, n)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// done reports whether every shard that can still run has consumed its
// budget slice. Quarantined shards are excluded — they can never reach
// their target — so a degraded campaign still completes; with every shard
// quarantined the campaign ends immediately with whatever it has.
func (e *Executor) done(targets []int) bool {
	for i, sh := range e.shards {
		if e.quarantined[i] {
			continue
		}
		if sh.Runner().Stmts < targets[i] {
			return false
		}
	}
	return true
}

// mergeBarrier merges all shards in fixed shard-index order. It runs on the
// coordinator goroutine while every shard is parked, so the merged state —
// and through cross-pollination, every shard's next-epoch schedule — is a
// pure function of the shards' states, independent of how the epoch's
// goroutines were scheduled.
//
// Quarantined shards participate read-only: their last-good coverage and
// crashes stay folded into the global view (they were earned), but they
// neither donate new material — they have none, their state is frozen at a
// barrier whose deltas were already distributed — nor receive any, so their
// frozen state stays exactly the snapshot a resumed campaign restores.
func (e *Executor) mergeBarrier() {
	n := len(e.shards)
	active := func(i int) bool { return !e.quarantined[i] }

	// Coverage: fold every shard into the global virgin map, then the
	// global map back into every active shard, leaving all running workers
	// with identical coverage state — the OR-fold of everything any worker
	// has seen.
	for _, sh := range e.shards {
		e.global.Merge(sh.Runner().Cov)
	}
	for i, sh := range e.shards {
		if active(i) {
			sh.Runner().Cov.Merge(e.global)
		}
	}

	// Seeds: capture every shard's epoch delta before any adoption, so a
	// donated seed is not re-donated by its receiver within the same
	// barrier. Clones keep shards from sharing mutable ASTs.
	deltas := make([][]*corpus.Seed, n)
	for i, sh := range e.shards {
		deltas[i] = sh.Pool().Since(e.poolMark[i])
	}
	for recv := 0; recv < n; recv++ {
		if !active(recv) {
			continue
		}
		for donor := 0; donor < n; donor++ {
			if donor == recv {
				continue
			}
			for _, s := range deltas[donor] {
				e.shards[recv].AdoptSeed(sqlparse.CloneTestCase(s.TC), s.NewEdges)
			}
		}
	}
	for i, sh := range e.shards {
		e.poolMark[i] = sh.Pool().Len()
	}

	// Affinities: union every donor map into every receiver; pairs new to
	// a receiver enter its synthesis queue. Transitive adoption within one
	// barrier is harmless — the union converges and Add deduplicates.
	for recv := 0; recv < n; recv++ {
		if !active(recv) {
			continue
		}
		for donor := 0; donor < n; donor++ {
			if donor != recv {
				e.shards[recv].AdoptAffinities(e.shards[donor].AffinityMap())
			}
		}
	}

	// Crashes: peers adopt each other's crashes (hits stay with the
	// observer, so the global sum below counts every sighting once), then
	// the global view is rebuilt under the shortest-reproducer invariant.
	crashes := make([][]*oracle.Crash, n)
	for i, sh := range e.shards {
		crashes[i] = sh.Runner().Oracle.Crashes()
	}
	for recv := 0; recv < n; recv++ {
		if !active(recv) {
			continue
		}
		for donor := 0; donor < n; donor++ {
			if donor == recv {
				continue
			}
			for _, c := range crashes[donor] {
				e.shards[recv].Runner().Oracle.Adopt(c)
			}
		}
	}
	g := oracle.New()
	for _, sh := range e.shards {
		g.Merge(sh.Runner().Oracle)
	}
	e.oracle = g

	// One global curve point per barrier that made progress.
	if ex := e.Execs(); len(e.curve) == 0 || e.curve[len(e.curve)-1].Execs != ex {
		e.curve = append(e.curve, harness.CurvePoint{Execs: ex, Edges: e.global.EdgeCount()})
	}

	// The post-merge states are what a failed next epoch re-runs from, but
	// they are snapshotted lazily (runEpoch, when supervision is armed)
	// rather than here: an unsupervised campaign never needs them, and
	// Snapshot dominated barrier cost when taken unconditionally.
}

// Triage runs the crash triage pipeline over the merged global oracle on a
// fresh quarantined engine built from shard 0's configuration (all shards
// share it up to the RNG seed, which triage reseeds per crash anyway).
func (e *Executor) Triage(cfg triage.Config) triage.Summary {
	return triage.New(e.shards[0].Runner().Config(), cfg).Run(e.oracle)
}

// Workers returns the shard count.
func (e *Executor) Workers() int { return len(e.shards) }

// Epoch returns the number of merge barriers passed.
func (e *Executor) Epoch() int { return e.epoch }

// Shards exposes the per-shard fuzzers (read-only use: tests and metric
// collection between Run legs).
func (e *Executor) Shards() []*core.Fuzzer { return e.shards }

// Execs returns total test-case executions across shards.
func (e *Executor) Execs() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.Runner().Execs
	}
	return total
}

// Stmts returns total statements executed across shards.
func (e *Executor) Stmts() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.Runner().Stmts
	}
	return total
}

// EnginePanics returns total contained organic panics across shards.
func (e *Executor) EnginePanics() int {
	total := 0
	for _, sh := range e.shards {
		total += sh.Runner().EnginePanics
	}
	return total
}

// PlanStats returns the plan-cache counters summed across shards,
// including engines retired by quarantine within each shard.
func (e *Executor) PlanStats() minidb.PlanStats {
	var s minidb.PlanStats
	for _, sh := range e.shards {
		s.Add(sh.Runner().PlanStats())
	}
	return s
}

// Branches returns the global branch-coverage metric.
func (e *Executor) Branches() int { return e.global.EdgeCount() }

// Oracle returns the merged global crash view (rebuilt at every barrier).
func (e *Executor) Oracle() *oracle.Oracle { return e.oracle }

// Curve returns the global coverage curve, one sample per barrier.
func (e *Executor) Curve() []harness.CurvePoint { return e.curve }

// Affinities returns the number of distinct type-affinities discovered by
// any shard. After a barrier all shards hold the union, but merging keeps
// the answer right mid-leg too.
func (e *Executor) Affinities() int {
	m := affinity.NewMap()
	for _, sh := range e.shards {
		m.Merge(sh.AffinityMap())
	}
	return m.Count()
}

// GenAffinities returns the distinct type-affinities contained in the test
// cases generated by any shard (the Table II metric, cross-shard union).
func (e *Executor) GenAffinities() int {
	m := affinity.NewMap()
	for _, sh := range e.shards {
		m.Merge(sh.Runner().GenAff)
	}
	return m.Count()
}

// PoolLen returns the merged seed-pool size. Post-barrier every active
// shard's pool holds the same seed set (its own plus every peer's), so the
// first active shard speaks for the campaign; a quarantined shard's pool is
// frozen at its last-good barrier and may lag.
func (e *Executor) PoolLen() int {
	for i, sh := range e.shards {
		if !e.quarantined[i] {
			return sh.Pool().Len()
		}
	}
	return e.shards[0].Pool().Len()
}

// Incidents returns the campaign's failure journal in occurrence order.
func (e *Executor) Incidents() []harness.Incident { return e.incidents }

// QuarantinedShards returns the indices of quarantined shards in order.
func (e *Executor) QuarantinedShards() []int {
	var out []int
	for i, q := range e.quarantined {
		if q {
			out = append(out, i)
		}
	}
	return out
}

// ActiveWorkers returns how many shards are still running epochs — the
// campaign's degraded topology after quarantines.
func (e *Executor) ActiveWorkers() int {
	n := 0
	for _, q := range e.quarantined {
		if !q {
			n++
		}
	}
	return n
}

// SaveFaults returns how many checkpoint saves were eaten by injected I/O
// faults (and skipped) during Run legs.
func (e *Executor) SaveFaults() int { return e.saveFaults }

// FS returns the filesystem checkpoint saves should be routed through: the
// chaos fault-injecting layer when the chaos plane is armed, the real
// filesystem otherwise.
func (e *Executor) FS() checkpoint.FS { return e.fs }
