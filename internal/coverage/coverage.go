// Package coverage provides the branch-coverage feedback substrate that
// stands in for AFL++'s compile-time instrumentation (paper §IV).
//
// Engine code declares probe sites with NewSite; executing code reports them
// to a Tracer. Like AFL, feedback is edge coverage: each (previous site,
// current site) pair hashes to a slot in a 64 KiB map, and hit counts are
// bucketed so that "same edge, many more hits" also counts as novelty. A Map
// accumulates the global virgin state; Accumulate implements the
// hitNewBranch predicate of Algorithm 1.
package coverage

import (
	"fmt"
	"sync"
)

// MapSize is the number of edge slots, matching AFL's default 2^16.
const MapSize = 1 << 16

// Site is a registered instrumentation point. Sites are created once at
// package init time via NewSite and are immutable afterwards.
type Site struct {
	id   uint16
	name string
}

// Name returns the site's registration name (for debugging and reports).
func (s Site) Name() string { return s.name }

var (
	registryMu sync.Mutex
	registry   []string
	nextSeq    uint32
)

// NewSite registers a probe point and returns its site handle. Names should
// be unique ("minidb/exec.insert.empty"); duplicates are allowed but make
// reports ambiguous. Safe for concurrent use, though typical use is package
// init.
func NewSite(name string) Site {
	registryMu.Lock()
	defer registryMu.Unlock()
	seq := nextSeq
	nextSeq++
	registry = append(registry, name)
	// Spread sequential ids over the 16-bit space (Knuth multiplicative
	// hash) so edge hashes decorrelate, as AFL does with random block ids.
	id := uint16((seq * 2654435761) >> 16)
	return Site{id: id, name: name}
}

// NumSites returns how many probe sites have been registered process-wide.
func NumSites() int {
	registryMu.Lock()
	defer registryMu.Unlock()
	return len(registry)
}

// Tracer records the edges of one execution. It is not safe for concurrent
// use; each fuzzing worker owns one.
type Tracer struct {
	prev    uint16
	counts  []uint16
	touched []uint32
}

// touchedCap is the initial capacity of a tracer's touched-edge list. A
// typical statement touches a few hundred edges; pre-sizing keeps the first
// executions of every campaign (and of every shard worker) from growing the
// slice through the whole doubling ladder.
const touchedCap = 1 << 12

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{
		counts:  make([]uint16, MapSize),
		touched: make([]uint32, 0, touchedCap),
	}
}

// Hit reports that execution reached site s.
func (t *Tracer) Hit(s Site) {
	idx := uint32(t.prev ^ s.id)
	if t.counts[idx] == 0 {
		t.touched = append(t.touched, idx)
	}
	if t.counts[idx] < ^uint16(0) {
		t.counts[idx]++
	}
	t.prev = s.id >> 1
}

// Batch is a reusable buffer of probe sites hit during one statement.
// Engine code appends sites locally (no tracer pointer chasing per probe)
// and replays them into a Tracer at statement end with Flush; because the
// tracer's edge hash depends only on the site sequence, a flushed batch
// produces byte-identical coverage to calling Hit site by site.
type Batch struct {
	// Sites is the pending hit list in execution order. The slice is owned
	// by the batch and recycled across statements.
	//
	//lego:borrowed valid until the next Flush or Reset on the same batch
	Sites []Site
}

// NewBatch returns a batch pre-sized to hold n sites before its first grow.
func NewBatch(n int) *Batch {
	return &Batch{Sites: make([]Site, 0, n)}
}

// Add appends one site hit to the batch.
//
//lego:hotpath
func (b *Batch) Add(s Site) { b.Sites = append(b.Sites, s) }

// Len returns the number of pending hits.
func (b *Batch) Len() int { return len(b.Sites) }

// Reset discards pending hits without replaying them.
func (b *Batch) Reset() { b.Sites = b.Sites[:0] }

// HitBatch replays every site in b against the tracer, in order, exactly as
// if Hit had been called per site.
//
//lego:hotpath
func (t *Tracer) HitBatch(b *Batch) {
	prev := t.prev
	counts := t.counts
	for _, s := range b.Sites {
		idx := uint32(prev ^ s.id)
		if counts[idx] == 0 {
			t.touched = append(t.touched, idx) //lego:allow hotalloc — touched is pre-sized to touchedCap at construction and recycled by Reset
		}
		if counts[idx] < ^uint16(0) {
			counts[idx]++
		}
		prev = s.id >> 1
	}
	t.prev = prev
}

// Flush replays b into the tracer and truncates it for reuse.
//
//lego:hotpath
func (t *Tracer) Flush(b *Batch) {
	t.HitBatch(b)
	b.Sites = b.Sites[:0]
}

// Reset clears the tracer for the next execution in O(edges touched).
func (t *Tracer) Reset() {
	for _, idx := range t.touched {
		t.counts[idx] = 0
	}
	t.touched = t.touched[:0]
	t.prev = 0
}

// Edges returns the number of distinct edges in the current execution.
func (t *Tracer) Edges() int { return len(t.touched) }

// bucket classifies a hit count the way AFL buckets trace counts.
func bucket(n uint16) uint8 {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1 << 0
	case n == 2:
		return 1 << 1
	case n == 3:
		return 1 << 2
	case n <= 7:
		return 1 << 3
	case n <= 15:
		return 1 << 4
	case n <= 31:
		return 1 << 5
	case n <= 127:
		return 1 << 6
	default:
		return 1 << 7
	}
}

// Map is the accumulated (virgin) coverage state of one fuzzing campaign.
type Map struct {
	virgin []uint8 // bitmask of seen buckets per edge
	edges  int     // number of edges with any bucket seen
}

// NewMap returns an empty coverage map.
func NewMap() *Map {
	return &Map{virgin: make([]uint8, MapSize)}
}

// Accumulate folds one execution into the map. It returns whether the
// execution contributed novelty — a brand-new edge, or a new hit-count
// bucket on a known edge — and the number of brand-new edges.
func (m *Map) Accumulate(t *Tracer) (novel bool, newEdges int) {
	for _, idx := range t.touched {
		b := bucket(t.counts[idx])
		if m.virgin[idx]&b == 0 {
			if m.virgin[idx] == 0 {
				newEdges++
				m.edges++
			}
			m.virgin[idx] |= b
			novel = true
		}
	}
	return novel, newEdges
}

// WouldBeNovel reports whether folding t would contribute novelty, without
// mutating the map.
func (m *Map) WouldBeNovel(t *Tracer) bool {
	for _, idx := range t.touched {
		if m.virgin[idx]&bucket(t.counts[idx]) == 0 {
			return true
		}
	}
	return false
}

// EdgeCount returns the number of distinct edges accumulated so far — the
// "branches covered" metric of Figure 9 and Table IV.
func (m *Map) EdgeCount() int { return m.edges }

// EdgeState is one accumulated edge (slot index + seen-bucket mask), the
// serializable unit of campaign coverage state.
type EdgeState struct {
	Idx  uint32 `json:"i"`
	Mask uint8  `json:"m"`
}

// Export returns the map's non-virgin edges in ascending slot order, for
// checkpointing.
func (m *Map) Export() []EdgeState {
	out := make([]EdgeState, 0, m.edges)
	for idx, mask := range m.virgin {
		if mask != 0 {
			out = append(out, EdgeState{Idx: uint32(idx), Mask: mask})
		}
	}
	return out
}

// Import replaces the map's state with previously exported edges.
func (m *Map) Import(edges []EdgeState) {
	for i := range m.virgin {
		m.virgin[i] = 0
	}
	m.edges = 0
	for _, e := range edges {
		if int(e.Idx) >= len(m.virgin) || e.Mask == 0 {
			continue
		}
		if m.virgin[e.Idx] == 0 {
			m.edges++
		}
		m.virgin[e.Idx] |= e.Mask
	}
}

// Merge OR-folds other's virgin buckets into m, the epoch-barrier merge of
// the sharded executor: after merging every shard into a global map and the
// global map back into every shard, all workers share one virgin state.
// Merge is commutative and idempotent in its effect on the final mask set.
func (m *Map) Merge(other *Map) {
	for idx, mask := range other.virgin {
		if mask == 0 {
			continue
		}
		if m.virgin[idx] == 0 {
			m.edges++
		}
		m.virgin[idx] |= mask
	}
}

// Diff returns the edge buckets present in m but absent from other — what m
// would contribute if merged into other. Each EdgeState's Mask holds only
// the missing buckets.
func (m *Map) Diff(other *Map) []EdgeState {
	var out []EdgeState
	for idx, mask := range m.virgin {
		if d := mask &^ other.virgin[idx]; d != 0 {
			out = append(out, EdgeState{Idx: uint32(idx), Mask: d})
		}
	}
	return out
}

// Clone returns an independent copy of the map.
func (m *Map) Clone() *Map {
	c := &Map{virgin: make([]uint8, MapSize), edges: m.edges}
	copy(c.virgin, m.virgin)
	return c
}

// String summarizes the map for logs.
func (m *Map) String() string {
	return fmt.Sprintf("coverage.Map{edges: %d}", m.edges)
}
