package coverage

import (
	"testing"
	"testing/quick"
)

func TestSiteRegistration(t *testing.T) {
	before := NumSites()
	s := NewSite("test.site.a")
	if s.Name() != "test.site.a" {
		t.Fatalf("name = %q", s.Name())
	}
	if NumSites() != before+1 {
		t.Fatal("registration must grow the registry")
	}
}

func TestEdgeNovelty(t *testing.T) {
	a := NewSite("cov.a")
	b := NewSite("cov.b")
	c := NewSite("cov.c")

	m := NewMap()
	tr := NewTracer()

	tr.Hit(a)
	tr.Hit(b)
	novel, newEdges := m.Accumulate(tr)
	if !novel || newEdges == 0 {
		t.Fatal("first execution must be novel")
	}
	first := m.EdgeCount()

	// identical re-execution: no novelty
	tr.Reset()
	tr.Hit(a)
	tr.Hit(b)
	if novel, _ := m.Accumulate(tr); novel {
		t.Fatal("identical execution must not be novel")
	}
	if m.EdgeCount() != first {
		t.Fatal("edge count must not grow")
	}

	// a new path is novel
	tr.Reset()
	tr.Hit(a)
	tr.Hit(c)
	if novel, _ := m.Accumulate(tr); !novel {
		t.Fatal("new edge must be novel")
	}
	if m.EdgeCount() <= first {
		t.Fatal("edge count must grow")
	}
}

func TestOrderSensitivity(t *testing.T) {
	// The whole point of edge coverage: A->B differs from B->A.
	a := NewSite("cov.order.a")
	b := NewSite("cov.order.b")
	m := NewMap()

	tr := NewTracer()
	tr.Hit(a)
	tr.Hit(b)
	m.Accumulate(tr)
	n1 := m.EdgeCount()

	tr.Reset()
	tr.Hit(b)
	tr.Hit(a)
	novel, _ := m.Accumulate(tr)
	if !novel || m.EdgeCount() <= n1 {
		t.Fatal("reversed order must produce new edges")
	}
}

func TestHitCountBucketing(t *testing.T) {
	a := NewSite("cov.bucket.a")
	b := NewSite("cov.bucket.b")
	m := NewMap()

	run := func(n int) bool {
		tr := NewTracer()
		for i := 0; i < n; i++ {
			tr.Hit(a)
			tr.Hit(b)
		}
		novel, _ := m.Accumulate(tr)
		return novel
	}
	if !run(1) {
		t.Fatal("count 1 is a new bucket")
	}
	if run(1) {
		t.Fatal("count 1 again is not novel")
	}
	if !run(2) {
		t.Fatal("count 2 is a new bucket")
	}
	if !run(5) {
		t.Fatal("count 5 (bucket 4-7) is a new bucket")
	}
	if run(6) {
		t.Fatal("count 6 shares the 4-7 bucket")
	}
}

func TestWouldBeNovelDoesNotMutate(t *testing.T) {
	a := NewSite("cov.wbn.a")
	b := NewSite("cov.wbn.b")
	m := NewMap()
	tr := NewTracer()
	tr.Hit(a)
	tr.Hit(b)
	if !m.WouldBeNovel(tr) {
		t.Fatal("unseen edges must be novel")
	}
	if m.EdgeCount() != 0 {
		t.Fatal("WouldBeNovel must not mutate")
	}
	m.Accumulate(tr)
	if m.WouldBeNovel(tr) {
		t.Fatal("after accumulation the same trace is stale")
	}
}

func TestTracerReset(t *testing.T) {
	a := NewSite("cov.reset.a")
	tr := NewTracer()
	tr.Hit(a)
	tr.Hit(a)
	if tr.Edges() == 0 {
		t.Fatal("edges recorded")
	}
	tr.Reset()
	if tr.Edges() != 0 {
		t.Fatal("reset must clear edges")
	}
	// after reset, the same hits yield the same edges (prev cleared)
	tr.Hit(a)
	e1 := tr.Edges()
	tr.Reset()
	tr.Hit(a)
	if tr.Edges() != e1 {
		t.Fatal("reset must restore initial prev state")
	}
}

func TestMapClone(t *testing.T) {
	a := NewSite("cov.clone.a")
	b := NewSite("cov.clone.b")
	m := NewMap()
	tr := NewTracer()
	tr.Hit(a)
	tr.Hit(b)
	m.Accumulate(tr)

	c := m.Clone()
	if c.EdgeCount() != m.EdgeCount() {
		t.Fatal("clone must preserve count")
	}
	tr.Reset()
	tr.Hit(b)
	tr.Hit(a)
	c.Accumulate(tr)
	if c.EdgeCount() == m.EdgeCount() {
		t.Fatal("clone must be independent")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSite("cov.det.a")
	b := NewSite("cov.det.b")
	run := func() int {
		m := NewMap()
		tr := NewTracer()
		for i := 0; i < 10; i++ {
			tr.Hit(a)
			tr.Hit(b)
		}
		m.Accumulate(tr)
		return m.EdgeCount()
	}
	if run() != run() {
		t.Fatal("coverage must be deterministic")
	}
}

// Property: accumulating the same tracer twice is idempotent.
func TestAccumulateIdempotent(t *testing.T) {
	sites := []Site{NewSite("cov.q.1"), NewSite("cov.q.2"), NewSite("cov.q.3"), NewSite("cov.q.4")}
	f := func(path []uint8) bool {
		tr := NewTracer()
		for _, p := range path {
			tr.Hit(sites[int(p)%len(sites)])
		}
		m := NewMap()
		m.Accumulate(tr)
		n := m.EdgeCount()
		novel, _ := m.Accumulate(tr)
		return !novel && m.EdgeCount() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMapString(t *testing.T) {
	m := NewMap()
	if m.String() != "coverage.Map{edges: 0}" {
		t.Fatalf("got %q", m.String())
	}
}
