package coverage

import (
	"reflect"
	"testing"
)

// mapFrom builds a map holding exactly the given edge states.
func mapFrom(edges []EdgeState) *Map {
	m := NewMap()
	m.Import(edges)
	return m
}

// unionExports computes the set union of two exports by mask-OR per index.
func unionExports(a, b []EdgeState) []EdgeState {
	masks := map[uint32]uint8{}
	for _, e := range a {
		masks[e.Idx] |= e.Mask
	}
	for _, e := range b {
		masks[e.Idx] |= e.Mask
	}
	u := NewMap()
	var flat []EdgeState
	for idx, mask := range masks {
		flat = append(flat, EdgeState{Idx: idx, Mask: mask})
	}
	u.Import(flat) // Import + Export canonicalizes the order
	return u.Export()
}

func TestMergeIsUnionOfExports(t *testing.T) {
	a := []EdgeState{{Idx: 3, Mask: 0b0001}, {Idx: 10, Mask: 0b0110}, {Idx: 500, Mask: 0b1000}}
	b := []EdgeState{{Idx: 3, Mask: 0b0100}, {Idx: 99, Mask: 0b0001}}

	ab := mapFrom(a)
	ab.Merge(mapFrom(b))
	ba := mapFrom(b)
	ba.Merge(mapFrom(a))

	want := unionExports(a, b)
	if got := ab.Export(); !reflect.DeepEqual(got, want) {
		t.Fatalf("merge(A,B).Export() = %v, want union %v", got, want)
	}
	// Commutativity: merge(A,B) == merge(B,A).
	if !reflect.DeepEqual(ab.Export(), ba.Export()) {
		t.Fatalf("merge not commutative:\nA·B %v\nB·A %v", ab.Export(), ba.Export())
	}
	if ab.EdgeCount() != ba.EdgeCount() {
		t.Fatalf("edge counts diverge: %d vs %d", ab.EdgeCount(), ba.EdgeCount())
	}
	// Distinct indices: 3, 10, 99, 500.
	if ab.EdgeCount() != 4 {
		t.Fatalf("edge count = %d, want 4", ab.EdgeCount())
	}
}

func TestMergeIdempotent(t *testing.T) {
	a := []EdgeState{{Idx: 1, Mask: 2}, {Idx: 7, Mask: 5}}
	m := mapFrom(a)
	m.Merge(mapFrom(a))
	m.Merge(m.Clone())
	if got := m.Export(); !reflect.DeepEqual(got, mapFrom(a).Export()) {
		t.Fatalf("self-merge changed state: %v", got)
	}
	if m.EdgeCount() != 2 {
		t.Fatalf("edge count = %d, want 2", m.EdgeCount())
	}
}

func TestDiffRoundTrip(t *testing.T) {
	a := mapFrom([]EdgeState{{Idx: 3, Mask: 0b0011}, {Idx: 10, Mask: 0b0100}, {Idx: 20, Mask: 0b1000}})
	b := mapFrom([]EdgeState{{Idx: 3, Mask: 0b0001}, {Idx: 10, Mask: 0b0100}})

	// Diff holds exactly the buckets b is missing.
	want := []EdgeState{{Idx: 3, Mask: 0b0010}, {Idx: 20, Mask: 0b1000}}
	if got := a.Diff(b); !reflect.DeepEqual(got, want) {
		t.Fatalf("a.Diff(b) = %v, want %v", got, want)
	}

	// Importing the diff on top of b reconstructs merge(b, a).
	patched := b.Clone()
	for _, e := range a.Diff(b) {
		// Import replaces state, so fold manually via a one-edge map merge.
		patched.Merge(mapFrom([]EdgeState{e}))
	}
	merged := b.Clone()
	merged.Merge(a)
	if !reflect.DeepEqual(patched.Export(), merged.Export()) {
		t.Fatalf("b + a.Diff(b) != merge(b, a):\n%v\n%v", patched.Export(), merged.Export())
	}

	// A map never differs from itself or from a superset.
	if d := a.Diff(a); len(d) != 0 {
		t.Fatalf("a.Diff(a) = %v, want empty", d)
	}
	if d := b.Diff(a); len(d) != 0 {
		t.Fatalf("subset.Diff(superset) = %v, want empty", d)
	}
}

// TestBatchEquivalentToSequentialHits proves the batched reporting path is
// observationally identical to per-site Hit calls: same touched edges, same
// counts, same buckets after accumulation, same exported state.
func TestBatchEquivalentToSequentialHits(t *testing.T) {
	sites := []Site{
		NewSite("batch/a"), NewSite("batch/b"), NewSite("batch/c"), NewSite("batch/d"),
	}
	// A sequence with repeats so saturation and bucketing both engage, split
	// across several flushes to prove prev-state carries between batches.
	seq := []int{0, 1, 0, 1, 2, 2, 2, 3, 0, 3, 1, 1, 0, 2, 3, 3}

	direct := NewTracer()
	for _, i := range seq {
		direct.Hit(sites[i])
	}

	batched := NewTracer()
	b := NewBatch(4)
	for n, i := range seq {
		b.Add(sites[i])
		if n%5 == 4 { // flush mid-stream at odd boundaries
			batched.Flush(b)
		}
	}
	batched.Flush(b)
	if b.Len() != 0 {
		t.Fatalf("batch not truncated after flush: len=%d", b.Len())
	}

	if direct.Edges() != batched.Edges() {
		t.Fatalf("edge counts diverge: direct %d, batched %d", direct.Edges(), batched.Edges())
	}
	if direct.prev != batched.prev {
		t.Fatalf("prev state diverges: direct %d, batched %d", direct.prev, batched.prev)
	}
	if !reflect.DeepEqual(direct.touched, batched.touched) {
		t.Fatalf("touched order diverges:\ndirect  %v\nbatched %v", direct.touched, batched.touched)
	}
	for _, idx := range direct.touched {
		if direct.counts[idx] != batched.counts[idx] {
			t.Fatalf("count at %d diverges: direct %d, batched %d", idx, direct.counts[idx], batched.counts[idx])
		}
	}

	// The accumulated + exported state (what checkpoints and merges see)
	// must round-trip byte-identically.
	md, mb := NewMap(), NewMap()
	md.Accumulate(direct)
	mb.Accumulate(batched)
	if !reflect.DeepEqual(md.Export(), mb.Export()) {
		t.Fatalf("accumulated exports diverge:\ndirect  %v\nbatched %v", md.Export(), mb.Export())
	}

	// Merge round-trip stays byte-identical with a batched-origin map.
	other := mapFrom([]EdgeState{{Idx: 7, Mask: 0b0101}})
	m1 := md.Clone()
	m1.Merge(other)
	m2 := mb.Clone()
	m2.Merge(other)
	if !reflect.DeepEqual(m1.Export(), m2.Export()) {
		t.Fatalf("merge after batch diverges:\n%v\n%v", m1.Export(), m2.Export())
	}
}

// TestBatchResetDiscards checks Reset drops pending hits without replay.
func TestBatchResetDiscards(t *testing.T) {
	s := NewSite("batch/reset")
	tr := NewTracer()
	b := NewBatch(2)
	b.Add(s)
	b.Add(s)
	b.Reset()
	tr.Flush(b)
	if tr.Edges() != 0 {
		t.Fatalf("reset batch still replayed %d edges", tr.Edges())
	}
}

func TestExportPreSized(t *testing.T) {
	m := mapFrom([]EdgeState{{Idx: 1, Mask: 1}, {Idx: 2, Mask: 1}, {Idx: 3, Mask: 1}})
	out := m.Export()
	if len(out) != 3 || cap(out) != 3 {
		t.Fatalf("export len/cap = %d/%d, want 3/3 (pre-sized to edge count)", len(out), cap(out))
	}
}
