package core

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestAffinityPipeline verifies the Figure 4 data flow end to end: mutation
// discovers affinities, synthesis consumes them, instantiations land in the
// pool and the library.
func TestAffinityPipeline(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectPostgres, Seed: 3})
	// Initial seeds alone already teach basic affinities (Algorithm 2 runs
	// on every ingested case).
	if !f.AffinityMap().Has(sqlt.CreateTable, sqlt.Insert) {
		t.Fatal("seed corpus must teach CREATE TABLE -> INSERT")
	}
	if !f.AffinityMap().Has(sqlt.Insert, sqlt.Select) {
		t.Fatal("seed corpus must teach INSERT -> SELECT")
	}
	before := f.Affinities()
	f.Run(30000)
	if f.Affinities() <= before {
		t.Fatal("fuzzing must discover new affinities")
	}
	if f.Library().TypesCovered() < 10 {
		t.Fatalf("library covers only %d types", f.Library().TypesCovered())
	}
	// pool sequences must include ones absent from the initial corpus
	grown := false
	for _, s := range f.Pool().Sequences() {
		if len(s) > 0 && s[0] != sqlt.CreateTable && s[0] != sqlt.SetVar {
			grown = true
			break
		}
	}
	if !grown {
		t.Fatal("pool never left the initial sequence shapes")
	}
}

// TestLegoFindsSequenceBugsThatMinusCannot: the headline claim. The
// Fig. 3-style bug (CREATE TABLE -> INSERT -> CREATE TRIGGER -> SELECT with
// a trigger present) is structurally unreachable for LEGO-, whose mutants
// keep the seed corpus's type sequences.
func TestLegoFindsSequenceBugsThatMinusCannot(t *testing.T) {
	budget := 150000
	minus := New(Options{Dialect: sqlt.DialectMySQL, Seed: 5, Hazards: true,
		DisableSequenceAlgorithms: true})
	rMinus := minus.Run(budget)
	for _, c := range rMinus.Oracle.Crashes() {
		if c.Report.ID == "CVE-2021-35643" {
			t.Fatal("LEGO- found the trigger-sequence bug: it should be unreachable")
		}
	}

	found := false
	for seed := int64(5); seed < 9 && !found; seed++ {
		full := New(Options{Dialect: sqlt.DialectMySQL, Seed: seed, Hazards: true})
		r := full.Run(budget)
		for _, c := range r.Oracle.Crashes() {
			if c.Report.ID == "CVE-2021-35643" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("LEGO failed to find CVE-2021-35643 across 4 seeds")
	}
}

func TestRandomSequenceAblationStillRuns(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectComdb2, Seed: 2, RandomSequences: true})
	r := f.Run(10000)
	if r.Branches() == 0 {
		t.Fatal("random-sequence ablation must still cover branches")
	}
}

func TestNoCoverageGateGathersMoreAffinities(t *testing.T) {
	// The budget must be large enough for the ungated run's extra analysis
	// to dominate schedule noise: below ~40k statements the comparison
	// flips depending on the RNG stream, at 60k it holds for every seed.
	gated := New(Options{Dialect: sqlt.DialectMySQL, Seed: 6})
	gated.Run(60000)
	open := New(Options{Dialect: sqlt.DialectMySQL, Seed: 6, NoCoverageGate: true})
	open.Run(60000)
	if open.Affinities() < gated.Affinities() {
		t.Fatalf("ungated analysis (%d) must find at least as many affinities as gated (%d)",
			open.Affinities(), gated.Affinities())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.fill()
	if o.MaxLen != 5 || o.InstPerSeq != 2 || o.MaxSeqPerAffinity == 0 || o.ConventionalPerSeed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestStepHonoursBudgetCallback(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectPostgres, Seed: 1})
	execsBefore := f.Runner().Execs
	f.Step(func() bool { return true }) // immediately exhausted
	// At most the pool selection happened; no executions.
	if f.Runner().Execs != execsBefore {
		t.Fatalf("exhausted step still executed %d cases", f.Runner().Execs-execsBefore)
	}
}

func TestNameAndAccessors(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectMariaDB, Seed: 1})
	if f.Name() != "LEGO" {
		t.Fatal("name")
	}
	if f.Runner() == nil || f.Pool() == nil || f.Library() == nil || f.AffinityMap() == nil {
		t.Fatal("accessors")
	}
}

// TestSplitLongSeeds covers the paper's §VI future-work extension: long
// retained seeds are split into overlapping short halves that enter the
// pool as independent seeds.
func TestSplitLongSeeds(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectMariaDB, Seed: 4, SplitLongSeeds: true, MaxLen: 3})
	f.Run(30000)
	// With MaxLen 3, any retained seed longer than 6 statements must have
	// produced shorter companions; verify the pool contains seeds that are
	// strict prefixes/suffixes in type-sequence terms.
	longSeeds, shortSeeds := 0, 0
	for _, s := range f.Pool().All() {
		if len(s.TC) > 6 {
			longSeeds++
		} else {
			shortSeeds++
		}
	}
	if shortSeeds == 0 {
		t.Fatal("splitting produced no short seeds")
	}
	t.Logf("pool: %d long, %d short", longSeeds, shortSeeds)

	// splitSeed itself: halves overlap and re-validate
	seed := f.Pool().All()[0].TC
	for len(seed) <= 7 {
		seed = append(seed, seed...)
	}
	halves := f.splitSeed(seed)
	if len(halves) != 2 {
		t.Fatalf("halves = %d", len(halves))
	}
	if len(halves[0]) >= len(seed) || len(halves[1]) >= len(seed) {
		t.Fatal("halves must be shorter than the original")
	}
	if len(halves[0])+len(halves[1]) < len(seed) {
		t.Fatal("halves must cover the original (with overlap)")
	}
}
