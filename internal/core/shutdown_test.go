package core

import (
	"encoding/json"
	"testing"

	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/sqlt"
	"github.com/seqfuzz/lego/internal/triage"
)

// TestStopChannelGracefulShutdown drives the run loop's stop channel
// directly, the way the CLI's signal handler does: the campaign must stop at
// an iteration boundary with interrupted=true, flush a final checkpoint, and
// a campaign resumed from that checkpoint must reach the identical final
// state as one that was never interrupted.
func TestStopChannelGracefulShutdown(t *testing.T) {
	opts := Options{Dialect: sqlt.DialectMariaDB, Seed: 13, Hazards: true}
	const budget = 20000

	// Reference: uninterrupted campaign.
	ref := New(opts)
	ref.Run(budget)

	// Interrupted campaign: close the stop channel from the second periodic
	// save — deterministic, no timing involved — and keep the *last* save,
	// which is the final flush taken after the loop wound down.
	stop := make(chan struct{})
	saves := 0
	var last *checkpoint.State
	f := New(opts)
	runner, interrupted, err := f.RunWithOptions(budget, RunOptions{
		EveryExecs: 200,
		Save: func(st *checkpoint.State) error {
			saves++
			if saves == 2 {
				close(stop)
			}
			last = st
			return nil
		},
		Stop: stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("closed stop channel must report an interrupted leg")
	}
	if runner.Stmts >= budget {
		t.Fatalf("interrupted leg ran the full budget (%d statements)", runner.Stmts)
	}
	if saves < 3 {
		t.Fatalf("expected 2 periodic saves plus the final flush, got %d", saves)
	}
	if last.Stmts != runner.Stmts {
		t.Fatalf("final flush captured %d statements, runner has %d", last.Stmts, runner.Stmts)
	}

	// Resume from the flushed checkpoint (through a real file) and finish.
	path := t.TempDir() + "/interrupted.ckpt"
	if err := checkpoint.Save(path, last); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(opts, loaded)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Run(budget)

	a, _ := json.Marshal(ref.Snapshot())
	b, _ := json.Marshal(resumed.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("interrupted+resumed campaign diverged from uninterrupted:\nref:     %.300s\nresumed: %.300s", a, b)
	}
}

// TestStopBeforeStart: a stop channel that is already closed stops the leg
// before any work, still flushing a (consistent) snapshot.
func TestStopBeforeStart(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	f := New(Options{Dialect: sqlt.DialectPostgres, Seed: 1})
	before := f.runner.Stmts
	saved := false
	_, interrupted, err := f.RunWithOptions(1<<30, RunOptions{
		Save: func(*checkpoint.State) error { saved = true; return nil },
		Stop: stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !interrupted {
		t.Fatal("pre-closed stop must interrupt")
	}
	if f.runner.Stmts != before {
		t.Fatal("no fuzzing may happen after stop")
	}
	if !saved {
		t.Fatal("the final flush must still run")
	}
}

// TestTriageStateRoundTrips: triage results written into the oracle must
// survive a checkpoint round trip — the bug table of a resumed campaign
// still shows verified, minimized reproducers (format v2).
func TestTriageStateRoundTrips(t *testing.T) {
	opts := Options{Dialect: sqlt.DialectMariaDB, Seed: 3, Hazards: true}
	f := New(opts)
	f.Run(25000)
	if f.runner.Oracle.Count() == 0 {
		t.Fatal("campaign found no bugs")
	}
	sum := f.Triage(triage.Config{Replays: 3})
	if sum.Stable != sum.Triaged {
		t.Fatalf("hazard-only campaign must verify STABLE across the board: %+v", sum)
	}

	path := t.TempDir() + "/triaged.ckpt"
	if err := checkpoint.Save(path, f.Snapshot()); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(opts, loaded)
	if err != nil {
		t.Fatal(err)
	}

	want := f.runner.Oracle.Crashes()
	got := resumed.runner.Oracle.Crashes()
	if len(got) != len(want) {
		t.Fatalf("crash count changed: %d -> %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Status != w.Status || g.OriginalLen != w.OriginalLen ||
			g.MinimizedLen != w.MinimizedLen || g.Replays != w.Replays {
			t.Fatalf("crash %d triage fields lost: want %s %d->%d %d, got %s %d->%d %d",
				i, w.Status, w.OriginalLen, w.MinimizedLen, w.Replays,
				g.Status, g.OriginalLen, g.MinimizedLen, g.Replays)
		}
		if g.Reproducer.SQL() != w.Reproducer.SQL() {
			t.Fatalf("crash %d minimized reproducer changed across resume", i)
		}
	}
}
