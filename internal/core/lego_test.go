package core

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestLegoSmoke(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectMySQL, Seed: 1, Hazards: true})
	r := f.Run(12000)
	if r.Stmts < 12000 {
		t.Fatalf("stmts = %d", r.Stmts)
	}
	if r.Branches() == 0 {
		t.Fatal("no branches covered")
	}
	if f.Affinities() == 0 {
		t.Fatal("no affinities discovered")
	}
	if f.Pool().Len() < 7 {
		t.Fatalf("pool did not grow: %d", f.Pool().Len())
	}
	t.Logf("execs=%d branches=%d affinities=%d pool=%d bugs=%d lib=%d",
		r.Execs, r.Branches(), f.Affinities(), f.Pool().Len(), r.Oracle.Count(), f.Library().Size())
}

func TestLegoMinusDisablesSequenceWork(t *testing.T) {
	minus := New(Options{Dialect: sqlt.DialectMySQL, Seed: 1, DisableSequenceAlgorithms: true})
	r := minus.Run(500)
	if minus.Name() != "LEGO-" {
		t.Fatalf("name = %s", minus.Name())
	}
	if minus.Affinities() != 0 {
		t.Fatalf("LEGO- must not analyze affinities, got %d", minus.Affinities())
	}
	if r.Branches() == 0 {
		t.Fatal("LEGO- should still cover branches")
	}
}

func TestLegoDeterministic(t *testing.T) {
	a := New(Options{Dialect: sqlt.DialectComdb2, Seed: 42, Hazards: true}).Run(800)
	b := New(Options{Dialect: sqlt.DialectComdb2, Seed: 42, Hazards: true}).Run(800)
	if a.Branches() != b.Branches() || a.Oracle.Count() != b.Oracle.Count() {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)",
			a.Branches(), a.Oracle.Count(), b.Branches(), b.Oracle.Count())
	}
}
