package core

import (
	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/sqlast"
)

// This file is the narrow surface the sharded campaign executor
// (internal/shard) uses to cross-pollinate discoveries between workers at
// epoch barriers. Both entry points are deterministic: they draw from the
// fuzzer's own seeded RNG stream (seed splitting may consult the fixer) and
// mutate only this fuzzer's state, so calling them in a fixed shard order
// keeps the whole campaign schedule-independent.

// AdoptSeed ingests a test case that covered new branches in a sibling
// shard: it joins this shard's pool, library, and synthesis starts exactly
// like a locally discovered seed, and its type sequence is analyzed for
// affinities new to this shard. Unlike ingest it never splits long seeds —
// the donor already split them, and those halves arrive as their own pool
// deltas. The caller passes an independent clone so shards never share
// mutable ASTs.
func (f *Fuzzer) AdoptSeed(tc sqlast.TestCase, newEdges int) {
	if len(tc) == 0 {
		return
	}
	f.pool.Add(tc, newEdges)
	f.lib.Harvest(tc)
	if !f.opts.DisableSequenceAlgorithms {
		f.synth.AddStart(tc[0].Type())
		f.pending = append(f.pending, f.aff.Analyze(tc.Types())...)
	}
}

// AdoptAffinities folds a sibling shard's affinity map into this shard's.
// Pairs new to this shard are queued for progressive synthesis, as if
// Algorithm 2 had discovered them locally; under the LEGO- ablation the
// call is a no-op, since the ablation never synthesizes.
func (f *Fuzzer) AdoptAffinities(other *affinity.Map) {
	if f.opts.DisableSequenceAlgorithms {
		return
	}
	f.pending = append(f.pending, f.aff.Merge(other)...)
}
