// Package core implements LEGO, the sequence-oriented DBMS fuzzer of the
// paper. Each fuzzing iteration runs two steps (Figure 4):
//
//  1. Proactive affinity analysis — a seed is taken from the pool and each
//     of its statements is mutated by substitution, insertion and deletion
//     (Algorithm 1). Mutants that hit new branches are kept and their SQL
//     Type Sequences analyzed for new type-affinities (Algorithm 2).
//  2. Progressive sequence synthesis — every affinity discovered in step 1
//     triggers enumeration of exactly the new SQL Type Sequences containing
//     it (Algorithm 3), each of which is instantiated into executable test
//     cases several times and executed.
//
// Conventional syntax-preserving mutations run on top, as in the paper's
// AFL++ custom-mutator integration (§IV). Setting
// Options.DisableSequenceAlgorithms yields LEGO-, the ablation of §V-D —
// affinity analysis and sequence synthesis are "tightly-coupled", so the
// flag disables them together.
package core

import (
	"math/rand"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/corpus"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/instantiate"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/mutate"
	"github.com/seqfuzz/lego/internal/seqsynth"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
	"github.com/seqfuzz/lego/internal/xrand"
)

// Options configures a LEGO fuzzer.
type Options struct {
	// Dialect selects the target DBMS profile.
	Dialect sqlt.Dialect
	// Seed seeds the deterministic RNG.
	Seed int64
	// MaxLen is the sequence-length cap LEN of Algorithm 3 (default 5; the
	// paper's §VI length study sweeps 3/5/8).
	MaxLen int
	// InstPerSeq is how many times each synthesized sequence is
	// instantiated (default 2; "one SQL Type Sequence will be instantiated
	// multiple times").
	InstPerSeq int
	// MaxSeqPerAffinity caps synthesis output per discovered affinity.
	MaxSeqPerAffinity int
	// ConventionalPerSeed is how many sequence-preserving mutants each
	// iteration generates (default 8).
	ConventionalPerSeed int
	// DisableSequenceAlgorithms turns LEGO into LEGO- (§V-D).
	DisableSequenceAlgorithms bool
	// Hazards arms the seeded bug corpus on the target engine.
	Hazards bool
	// FaultRate arms the engine's deterministic fault injector: organic
	// (non-BugReport) panics are raised at this per-statement probability
	// and must be contained by the harness instead of killing the
	// campaign. Zero disables injection.
	FaultRate float64
	// DisablePlanCache turns off the engine's compiled-plan execution
	// layer, running every expression through the tree-walking interpreter.
	// Campaigns are byte-identical either way (the compiled path is
	// coverage-equivalent by contract); this exists for baseline
	// comparison.
	DisablePlanCache bool

	// RandomSequences is an ablation: instead of affinity-gated synthesis
	// (Algorithm 3), step 2 instantiates uniformly random type sequences of
	// length <= MaxLen — the "arbitrarily permuting" strawman of challenge
	// C1/C2.
	RandomSequences bool
	// NoCoverageGate is an ablation: affinities are extracted from every
	// mutant, not only those that hit new branches — removing Algorithm 1's
	// meaningfulness filter.
	NoCoverageGate bool

	// SplitLongSeeds enables the paper's §VI future-work idea: "to detect
	// bugs triggered by long sequences, we plan to split long sequences
	// into several equivalent short sequences." Retained seeds longer than
	// 2×MaxLen are additionally split into overlapping halves, which enter
	// the pool as independent (fast) seeds.
	SplitLongSeeds bool
}

func (o *Options) fill() {
	if o.MaxLen == 0 {
		o.MaxLen = 5
	}
	// Sequences shorter than 2 carry no affinity, and randomSequences draws
	// from [2, MaxLen]; clamp instead of letting MaxLen=1 panic downstream.
	if o.MaxLen < 2 {
		o.MaxLen = 2
	}
	if o.InstPerSeq == 0 {
		o.InstPerSeq = 2
	}
	if o.MaxSeqPerAffinity == 0 {
		o.MaxSeqPerAffinity = 48
	}
	if o.ConventionalPerSeed == 0 {
		o.ConventionalPerSeed = 8
	}
}

// Fuzzer is the LEGO fuzzing engine.
type Fuzzer struct {
	opts   Options
	src    *xrand.Source // exportable RNG state behind rng
	rng    *rand.Rand
	runner *harness.Runner
	pool   *corpus.Pool
	lib    *instantiate.Library
	inst   *instantiate.Instantiator
	mut    *mutate.Mutator

	// sequence-oriented state
	aff   *affinity.Map
	synth *seqsynth.Synthesizer

	// pairs discovered in the current iteration, awaiting synthesis
	pending []affinity.Pair
}

// newFuzzer wires up an empty fuzzer; the caller either ingests the initial
// seed corpus (New) or restores a checkpoint (Resume).
func newFuzzer(opts Options) *Fuzzer {
	opts.fill()
	src := xrand.New(opts.Seed)
	rng := rand.New(src)
	lib := instantiate.NewLibrary()
	inst := instantiate.New(rng, lib, opts.Dialect)
	aff := affinity.NewMap()
	f := &Fuzzer{
		opts: opts,
		src:  src,
		rng:  rng,
		runner: harness.NewRunnerWithConfig(minidb.Config{
			Dialect:          opts.Dialect,
			EnableHazards:    opts.Hazards,
			FaultRate:        opts.FaultRate,
			FaultSeed:        opts.Seed,
			DisablePlanCache: opts.DisablePlanCache,
		}),
		pool:  corpus.NewPool(rng),
		lib:   lib,
		inst:  inst,
		mut:   mutate.New(rng, inst, opts.Dialect),
		aff:   aff,
		synth: seqsynth.New(aff, opts.MaxLen),
	}
	f.synth.MaxPerAffinity = opts.MaxSeqPerAffinity
	return f
}

// New builds a LEGO fuzzer and ingests the initial seed corpus.
func New(opts Options) *Fuzzer {
	f := newFuzzer(opts)
	for _, tc := range harness.InitialSeeds(f.opts.Dialect) {
		_, newEdges, _ := f.runner.Execute(tc)
		f.ingest(tc, newEdges)
	}
	return f
}

// Name implements harness.Fuzzer.
func (f *Fuzzer) Name() string {
	if f.opts.DisableSequenceAlgorithms {
		return "LEGO-"
	}
	return "LEGO"
}

// Runner implements harness.Fuzzer.
func (f *Fuzzer) Runner() *harness.Runner { return f.runner }

// Affinities returns the number of type-affinities discovered so far.
func (f *Fuzzer) Affinities() int { return f.aff.Count() }

// AffinityMap exposes the analyzer's map (read-only use).
func (f *Fuzzer) AffinityMap() *affinity.Map { return f.aff }

// Pool exposes the seed pool.
func (f *Fuzzer) Pool() *corpus.Pool { return f.pool }

// Library exposes the AST structure library.
func (f *Fuzzer) Library() *instantiate.Library { return f.lib }

// ingest retains a test case that contributed coverage: it joins the seed
// pool, its AST structures enter the library, its first statement's type
// becomes a synthesis start, and its type sequence is analyzed for new
// affinities (Algorithm 2), which are queued for synthesis.
func (f *Fuzzer) ingest(tc sqlast.TestCase, newEdges int) {
	f.pool.Add(tc, newEdges)
	f.lib.Harvest(tc)
	if f.opts.SplitLongSeeds && len(tc) > 2*f.opts.MaxLen {
		for _, half := range f.splitSeed(tc) {
			// A degenerate MaxLen/2 overlap can produce an empty half; an
			// empty seed would be selected, mutated into nothing, and skipped
			// by tryExec forever — dead weight in the schedule.
			if len(half) == 0 {
				continue
			}
			f.pool.Add(half, newEdges/2)
		}
	}
	if !f.opts.DisableSequenceAlgorithms {
		if len(tc) > 0 {
			f.synth.AddStart(tc[0].Type())
		}
		fresh := f.aff.Analyze(tc.Types())
		f.pending = append(f.pending, fresh...)
	}
}

// splitSeed cuts a long test case into two overlapping halves and
// re-validates each, so later mutation works on short, fast seeds that
// still carry the long seed's local orderings.
func (f *Fuzzer) splitSeed(tc sqlast.TestCase) []sqlast.TestCase {
	mid := len(tc) / 2
	overlap := f.opts.MaxLen / 2
	lo := mid - overlap
	if lo < 1 {
		lo = 1
	}
	first := sqlparse.CloneTestCase(tc[:mid+overlap])
	second := sqlparse.CloneTestCase(tc[lo:])
	f.inst.Fixer.Fix(first)
	f.inst.Fixer.Fix(second)
	return []sqlast.TestCase{first, second}
}

// tryExec executes a candidate test case, ingesting it when it covers new
// branches (or unconditionally under the NoCoverageGate ablation).
func (f *Fuzzer) tryExec(tc sqlast.TestCase) {
	if len(tc) == 0 {
		return
	}
	novel, newEdges, _ := f.runner.Execute(tc)
	if novel {
		f.ingest(tc, newEdges)
	} else if f.opts.NoCoverageGate && !f.opts.DisableSequenceAlgorithms {
		// ablation: extract affinities from non-novel mutants too, but do
		// not pollute the seed pool
		fresh := f.aff.Analyze(tc.Types())
		f.pending = append(f.pending, fresh...)
	}
}

// Step performs one fuzzing iteration (Figure 4). The exhausted callback
// lets campaign budgets cut an iteration short.
func (f *Fuzzer) Step(exhausted func() bool) {
	seed := f.pool.Select()
	if seed == nil {
		return
	}

	if !f.opts.DisableSequenceAlgorithms {
		// Step 1: proactive sequence-oriented mutation (Algorithm 1).
		for i := range seed.TC {
			if exhausted() {
				return
			}
			f.tryExec(f.mut.SubstituteType(seed.TC, i))
			f.tryExec(f.mut.InsertAfter(seed.TC, i))
			f.tryExec(f.mut.DeleteAt(seed.TC, i))
		}

		// Step 2: progressive sequence synthesis (Algorithm 3) for every
		// affinity discovered above. Under the RandomSequences ablation the
		// same execution budget goes to uniformly random sequences instead.
		pending := f.pending
		f.pending = nil
		for _, pair := range pending {
			if exhausted() {
				return
			}
			var seqs []sqlt.Sequence
			if f.opts.RandomSequences {
				seqs = f.randomSequences(f.opts.MaxSeqPerAffinity / 4)
			} else {
				seqs = f.synth.OnNewAffinity(pair.From, pair.To)
			}
			for _, seq := range seqs {
				for k := 0; k < f.opts.InstPerSeq; k++ {
					if exhausted() {
						return
					}
					f.tryExec(f.inst.TestCase(seq))
				}
			}
		}
	}

	// Conventional syntax-preserving mutation on top.
	for k := 0; k < f.opts.ConventionalPerSeed; k++ {
		if exhausted() {
			return
		}
		f.tryExec(f.mut.MutateValues(seed.TC))
	}
}

// randomSequences draws n uniformly random type sequences of length 2 to
// MaxLen from the dialect's types (the RandomSequences ablation).
func (f *Fuzzer) randomSequences(n int) []sqlt.Sequence {
	ts := f.opts.Dialect.Types()
	var out []sqlt.Sequence
	for i := 0; i < n; i++ {
		l := 2 + f.rng.Intn(f.opts.MaxLen-1)
		seq := make(sqlt.Sequence, l)
		for j := range seq {
			seq[j] = ts[f.rng.Intn(len(ts))]
		}
		out = append(out, seq)
	}
	return out
}

// Run drives the fuzzer until the statement budget is consumed and returns
// the campaign's runner for metric collection.
func (f *Fuzzer) Run(budgetStmts int) *harness.Runner {
	runner, _, _ := f.RunWithOptions(budgetStmts, RunOptions{})
	return runner
}
