package core

import (
	"fmt"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/corpus"
	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/harness"
	"github.com/seqfuzz/lego/internal/minidb"
	"github.com/seqfuzz/lego/internal/oracle"
	"github.com/seqfuzz/lego/internal/seqsynth"
	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
	"github.com/seqfuzz/lego/internal/triage"
)

// This file converts live campaign state to and from checkpoint.State.
// Snapshot must be taken at a Step boundary (Run and RunWithCheckpoint only
// checkpoint between iterations): everything the fuzzing loop reads — pool,
// library, affinities, synthesizer, coverage, oracle, counters, and the RNG
// stream position — is captured, so a Resume'd campaign replays the exact
// schedule the uninterrupted campaign would have run.

// Snapshot serializes the fuzzer's complete campaign state.
func (f *Fuzzer) Snapshot() *checkpoint.State {
	st := &checkpoint.State{
		Dialect:      uint8(f.opts.Dialect),
		Seed:         f.opts.Seed,
		MaxLen:       f.opts.MaxLen,
		Execs:        f.runner.Execs,
		Stmts:        f.runner.Stmts,
		EnginePanics: f.runner.EnginePanics,
		RNG:          f.src.State(),
		FaultState:   f.runner.Eng.FaultState(),
	}

	for _, s := range f.pool.All() {
		st.Pool = append(st.Pool, checkpoint.PoolSeed{
			SQL: s.TC.SQL(), NewEdges: s.NewEdges, Picked: s.Picked,
		})
	}
	st.Affinity = exportPairs(f.aff)
	st.GenAffinity = exportPairs(f.runner.GenAff)
	for _, e := range f.runner.Cov.Export() {
		st.Coverage = append(st.Coverage, checkpoint.Edge{Idx: e.Idx, Mask: e.Mask})
	}
	st.Crashes = ExportCrashes(f.runner.Oracle)
	st.Curve = ExportCurve(f.runner.Curve)

	st.Library = map[uint16][]string{}
	for t, sqls := range f.lib.Export() {
		st.Library[uint16(t)] = sqls
	}

	synth := f.synth.Export()
	for _, seq := range synth.Seqs {
		st.SynthSeqs = append(st.SynthSeqs, exportSeq(seq))
	}
	for _, t := range synth.Starts {
		st.SynthStarts = append(st.SynthStarts, uint16(t))
	}
	st.SynthRot = synth.Rot
	for _, p := range f.pending {
		st.Pending = append(st.Pending, [2]uint16{uint16(p.From), uint16(p.To)})
	}
	return st
}

// Resume rebuilds a fuzzer from a checkpoint. opts must describe the same
// campaign the checkpoint was taken from (dialect, seed, MaxLen); a
// mismatch is an error, since the restored schedule would silently diverge
// from the original.
func Resume(opts Options, st *checkpoint.State) (*Fuzzer, error) {
	opts.fill()
	if sqlt.Dialect(st.Dialect) != opts.Dialect {
		return nil, fmt.Errorf("resume: checkpoint is for dialect %s, options say %s",
			sqlt.Dialect(st.Dialect), opts.Dialect)
	}
	if st.Seed != opts.Seed || st.MaxLen != opts.MaxLen {
		return nil, fmt.Errorf("resume: checkpoint campaign (seed %d, len %d) does not match options (seed %d, len %d)",
			st.Seed, st.MaxLen, opts.Seed, opts.MaxLen)
	}

	f := newFuzzer(opts)
	f.src.SetState(st.RNG)
	f.runner.Eng.SetFaultState(st.FaultState)
	f.runner.Execs = st.Execs
	f.runner.Stmts = st.Stmts
	f.runner.EnginePanics = st.EnginePanics

	var seeds []*corpus.Seed
	for i, ps := range st.Pool {
		tc, err := sqlparse.ParseScript(ps.SQL)
		if err != nil {
			return nil, fmt.Errorf("resume: pool seed %d: %w", i, err)
		}
		seeds = append(seeds, &corpus.Seed{TC: tc, NewEdges: ps.NewEdges, Picked: ps.Picked})
	}
	f.pool.Import(seeds)

	importPairs(f.aff, st.Affinity)
	importPairs(f.runner.GenAff, st.GenAffinity)

	var edges []coverage.EdgeState
	for _, e := range st.Coverage {
		edges = append(edges, coverage.EdgeState{Idx: e.Idx, Mask: e.Mask})
	}
	f.runner.Cov.Import(edges)

	crashes, err := ImportCrashes(opts.Dialect, st.Crashes)
	if err != nil {
		return nil, fmt.Errorf("resume: %w", err)
	}
	f.runner.Oracle.Import(crashes)

	f.runner.Curve = ImportCurve(st.Curve)

	lib := map[sqlt.Type][]string{}
	for t, sqls := range st.Library {
		lib[sqlt.Type(t)] = sqls
	}
	if err := f.lib.Import(lib); err != nil {
		return nil, fmt.Errorf("resume: library: %w", err)
	}

	var synth seqsynth.State
	for _, seq := range st.SynthSeqs {
		synth.Seqs = append(synth.Seqs, importSeq(seq))
	}
	for _, t := range st.SynthStarts {
		synth.Starts = append(synth.Starts, sqlt.Type(t))
	}
	synth.Rot = st.SynthRot
	f.synth.Import(synth)

	for _, p := range st.Pending {
		f.pending = append(f.pending, affinity.Pair{From: sqlt.Type(p[0]), To: sqlt.Type(p[1])})
	}
	return f, nil
}

// RunOptions configures one RunWithOptions campaign leg.
type RunOptions struct {
	// EveryExecs is the checkpoint cadence in test-case executions; Save is
	// additionally called once when the leg ends. Zero (with a nil Save)
	// disables checkpointing.
	EveryExecs int
	// Save persists a snapshot; a non-nil error aborts the leg.
	Save func(*checkpoint.State) error
	// Stop requests a graceful shutdown: once the channel is closed, the
	// leg finishes the fuzzing iteration in flight, stops at the iteration
	// boundary, takes its final snapshot, and returns with interrupted =
	// true. The boundary matters: mid-iteration state (a partially drained
	// synthesis queue, RNG draws already spent on an unfinished mutation
	// round) is a state an uninterrupted campaign never pauses in, so
	// stopping there would make the resumed schedule diverge from the
	// uninterrupted one. Iteration boundaries are exactly the states an
	// uninterrupted campaign also passes through. A nil channel never
	// stops.
	Stop <-chan struct{}
}

// RunWithCheckpoint drives the fuzzer like Run, additionally saving a
// snapshot via save every everyExecs executions (and once at the end).
// Snapshots are taken only at iteration boundaries, where campaign state is
// fully consistent.
func (f *Fuzzer) RunWithCheckpoint(budgetStmts, everyExecs int, save func(*checkpoint.State) error) (*harness.Runner, error) {
	runner, _, err := f.RunWithOptions(budgetStmts, RunOptions{EveryExecs: everyExecs, Save: save})
	return runner, err
}

// RunWithOptions is the full-featured campaign loop behind Run and
// RunWithCheckpoint: it drives the fuzzer until the statement budget is
// consumed or opts.Stop is closed, checkpointing on the configured cadence
// and once at the end. interrupted reports that the leg ended on the stop
// channel with budget left — the caller can tell a completed campaign from
// a gracefully shut-down one.
func (f *Fuzzer) RunWithOptions(budgetStmts int, opts RunOptions) (runner *harness.Runner, interrupted bool, err error) {
	stopped := func() bool {
		if opts.Stop == nil {
			return false
		}
		select {
		case <-opts.Stop:
			return true
		default:
			return false
		}
	}
	// Step receives only the budget predicate: the budget may run out
	// mid-iteration (that is where the campaign ends, so any state is
	// final), but the stop channel is polled strictly between iterations —
	// see RunOptions.Stop for why.
	exhausted := func() bool { return f.runner.Stmts >= budgetStmts }
	lastSaved := f.runner.Execs
	for !exhausted() && !stopped() {
		f.Step(exhausted)
		if opts.Save != nil && opts.EveryExecs > 0 && f.runner.Execs-lastSaved >= opts.EveryExecs {
			if err := opts.Save(f.Snapshot()); err != nil {
				return f.runner, false, err
			}
			lastSaved = f.runner.Execs
		}
	}
	interrupted = f.runner.Stmts < budgetStmts && stopped()
	if opts.Save != nil {
		if err := opts.Save(f.Snapshot()); err != nil {
			return f.runner, interrupted, err
		}
	}
	return f.runner, interrupted, nil
}

// Triage runs the crash triage pipeline over the campaign oracle: every
// unique crash is re-verified and minimized on a fresh quarantined engine
// built from the campaign's own configuration (see internal/triage). Crash
// entries are updated in place, so a Snapshot taken afterwards persists the
// triage results.
func (f *Fuzzer) Triage(cfg triage.Config) triage.Summary {
	return triage.New(f.runner.Config(), cfg).Run(f.runner.Oracle)
}

// ExportCrashes converts an oracle's deduplicated crashes to checkpoint
// form, in discovery order. Shared by single-shard snapshots and the sharded
// executor's global-oracle export.
func ExportCrashes(o *oracle.Oracle) []checkpoint.Crash {
	var out []checkpoint.Crash
	for _, c := range o.Crashes() {
		out = append(out, checkpoint.Crash{
			ID:          c.Report.ID,
			Component:   c.Report.Component,
			Kind:        c.Report.Kind,
			Stack:       append([]string(nil), c.Report.Stack...),
			Window:      exportSeq(c.Report.Window),
			Reproducer:  c.Reproducer.SQL(),
			FoundAtExec: c.FoundAtExec,
			Hits:        c.Hits,

			Status:       c.Status,
			OriginalLen:  c.OriginalLen,
			MinimizedLen: c.MinimizedLen,
			Replays:      c.Replays,
		})
	}
	return out
}

// ImportCrashes is ExportCrashes's inverse: it re-parses the reproducers and
// rebuilds oracle entries in checkpoint order.
func ImportCrashes(d sqlt.Dialect, crashes []checkpoint.Crash) ([]*oracle.Crash, error) {
	var out []*oracle.Crash
	for i, c := range crashes {
		tc, err := sqlparse.ParseScript(c.Reproducer)
		if err != nil {
			return nil, fmt.Errorf("crash %d reproducer: %w", i, err)
		}
		out = append(out, &oracle.Crash{
			Report: &minidb.BugReport{
				ID:        c.ID,
				Dialect:   d,
				Component: c.Component,
				Kind:      c.Kind,
				Stack:     append([]string(nil), c.Stack...),
				Window:    importSeq(c.Window),
			},
			Reproducer:  tc,
			FoundAtExec: c.FoundAtExec,
			Hits:        c.Hits,

			Status:       c.Status,
			OriginalLen:  c.OriginalLen,
			MinimizedLen: c.MinimizedLen,
			Replays:      c.Replays,
		})
	}
	return out, nil
}

// ExportIncidents and ImportIncidents convert a supervised campaign's
// incident journal between its live and checkpoint forms.
func ExportIncidents(incidents []harness.Incident) []checkpoint.Incident {
	var out []checkpoint.Incident
	for _, in := range incidents {
		out = append(out, checkpoint.Incident{
			Epoch:   in.Epoch,
			Shard:   in.Shard,
			Kind:    in.Kind,
			Retries: in.Retries,
			Outcome: in.Outcome,
			Detail:  in.Detail,
		})
	}
	return out
}

// ImportIncidents is ExportIncidents's inverse.
func ImportIncidents(incidents []checkpoint.Incident) []harness.Incident {
	var out []harness.Incident
	for _, in := range incidents {
		out = append(out, harness.Incident{
			Epoch:   in.Epoch,
			Shard:   in.Shard,
			Kind:    in.Kind,
			Retries: in.Retries,
			Outcome: in.Outcome,
			Detail:  in.Detail,
		})
	}
	return out
}

// ExportCurve and ImportCurve convert the coverage-over-time curve between
// its live and checkpoint forms.
func ExportCurve(curve []harness.CurvePoint) []checkpoint.CurvePoint {
	var out []checkpoint.CurvePoint
	for _, p := range curve {
		out = append(out, checkpoint.CurvePoint{Execs: p.Execs, Edges: p.Edges})
	}
	return out
}

// ImportCurve is ExportCurve's inverse.
func ImportCurve(curve []checkpoint.CurvePoint) []harness.CurvePoint {
	var out []harness.CurvePoint
	for _, p := range curve {
		out = append(out, harness.CurvePoint{Execs: p.Execs, Edges: p.Edges})
	}
	return out
}

func exportPairs(m *affinity.Map) [][2]uint16 {
	var out [][2]uint16
	for _, p := range m.Pairs() {
		out = append(out, [2]uint16{uint16(p.From), uint16(p.To)})
	}
	return out
}

func importPairs(m *affinity.Map, pairs [][2]uint16) {
	for _, p := range pairs {
		m.Add(sqlt.Type(p[0]), sqlt.Type(p[1]))
	}
}

func exportSeq(seq sqlt.Sequence) []uint16 {
	var out []uint16
	for _, t := range seq {
		out = append(out, uint16(t))
	}
	return out
}

func importSeq(raw []uint16) sqlt.Sequence {
	var out sqlt.Sequence
	for _, t := range raw {
		out = append(out, sqlt.Type(t))
	}
	return out
}
