package core

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/checkpoint"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// snapshotJSON renders a campaign snapshot for byte-exact comparison.
func snapshotJSON(t *testing.T, f *Fuzzer) []byte {
	t.Helper()
	b, err := json.Marshal(f.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterministicResume is the acceptance test for checkpoint/resume:
// a campaign checkpointed mid-flight and resumed in a brand-new fuzzer must
// reach the *identical* final state — schedule, coverage, affinities, bugs,
// RNG position — as the campaign that kept running. Fault injection is armed
// so the injector stream is part of what must survive the round trip.
func TestDeterministicResume(t *testing.T) {
	opts := Options{Dialect: sqlt.DialectMariaDB, Seed: 11, Hazards: true, FaultRate: 0.002}

	// Reference campaign: run to 8k statements, snapshot, keep running.
	ref := New(opts)
	ref.Run(8000)
	mid := ref.Snapshot()
	ref.Run(20000)

	// Interrupted campaign: restore the mid-flight snapshot into a fresh
	// fuzzer (via a real file round trip) and run the same second leg.
	path := t.TempDir() + "/camp.ckpt"
	if err := checkpoint.Save(path, mid); err != nil {
		t.Fatal(err)
	}
	loaded, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(opts, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.runner.Execs != mid.Execs || resumed.runner.Stmts != mid.Stmts {
		t.Fatalf("restored counters %d/%d != snapshot %d/%d",
			resumed.runner.Execs, resumed.runner.Stmts, mid.Execs, mid.Stmts)
	}
	resumed.Run(20000)

	if ref.runner.Execs != resumed.runner.Execs ||
		ref.runner.Stmts != resumed.runner.Stmts ||
		ref.runner.Branches() != resumed.runner.Branches() ||
		ref.Affinities() != resumed.Affinities() ||
		ref.runner.Oracle.Count() != resumed.runner.Oracle.Count() ||
		ref.pool.Len() != resumed.pool.Len() {
		t.Fatalf("resumed campaign diverged:\nref:     execs=%d stmts=%d branches=%d aff=%d bugs=%d pool=%d\nresumed: execs=%d stmts=%d branches=%d aff=%d bugs=%d pool=%d",
			ref.runner.Execs, ref.runner.Stmts, ref.runner.Branches(), ref.Affinities(), ref.runner.Oracle.Count(), ref.pool.Len(),
			resumed.runner.Execs, resumed.runner.Stmts, resumed.runner.Branches(), resumed.Affinities(), resumed.runner.Oracle.Count(), resumed.pool.Len())
	}

	// The strong form: the complete serialized states must be byte-equal.
	a, b := snapshotJSON(t, ref), snapshotJSON(t, resumed)
	if string(a) != string(b) {
		t.Fatalf("final snapshots differ\nref:     %.400s\nresumed: %.400s", a, b)
	}
}

// TestResumeRejectsMismatchedCampaign: resuming under different options
// would silently produce a diverged schedule; it must fail instead.
func TestResumeRejectsMismatchedCampaign(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectPostgres, Seed: 2})
	f.Run(2000)
	st := f.Snapshot()

	cases := []Options{
		{Dialect: sqlt.DialectMySQL, Seed: 2},               // wrong dialect
		{Dialect: sqlt.DialectPostgres, Seed: 3},            // wrong seed
		{Dialect: sqlt.DialectPostgres, Seed: 2, MaxLen: 8}, // wrong length cap
	}
	for i, o := range cases {
		if _, err := Resume(o, st); err == nil {
			t.Fatalf("case %d: mismatched resume must fail", i)
		}
	}
}

// TestRunWithCheckpointSavesPeriodically verifies the save cadence and that
// the file left behind is always loadable.
func TestRunWithCheckpointSavesPeriodically(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectPostgres, Seed: 4})
	saves := 0
	_, err := f.RunWithCheckpoint(6000, 100, func(st *checkpoint.State) error {
		saves++
		if st.Execs == 0 {
			t.Fatal("snapshot with zero execs")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if saves < 2 {
		t.Fatalf("expected periodic saves plus a final one, got %d", saves)
	}
}

// TestFaultInjectedCampaignSurvives is the acceptance test for containment:
// a full-budget campaign against an engine that keeps panicking organically
// must complete (no fuzzer death), count its contained panics, and surface
// them as deduplicated PANIC bugs with reproducers.
func TestFaultInjectedCampaignSurvives(t *testing.T) {
	f := New(Options{Dialect: sqlt.DialectMySQL, Seed: 9, Hazards: true, FaultRate: 0.001})
	runner := f.Run(30000) // would panic the test process if containment leaked

	if runner.Stmts < 30000 {
		t.Fatalf("campaign died early: %d statements", runner.Stmts)
	}
	if runner.EnginePanics == 0 {
		t.Fatal("rate-0.001 over 30k statements must inject faults")
	}

	organic := 0
	hits := 0
	for _, c := range runner.Oracle.Crashes() {
		if !strings.HasPrefix(c.Report.ID, "ORGANIC-") {
			continue
		}
		organic++
		hits += c.Hits
		if c.Report.Kind != "PANIC" {
			t.Fatalf("organic bug kind = %q", c.Report.Kind)
		}
		if len(c.Report.Stack) == 0 {
			t.Fatal("organic bug lacks a stack")
		}
		if c.Reproducer.SQL() == "" {
			t.Fatal("organic bug lacks a reproducer")
		}
	}
	// Two injection sites -> at most two unique organic bugs, however many
	// times they fired: that is the dedup working.
	if organic < 1 || organic > 2 {
		t.Fatalf("organic unique bugs = %d (want 1..2): %v", organic, runner.Oracle.IDs())
	}
	if hits != runner.EnginePanics {
		t.Fatalf("organic hits %d != contained panics %d", hits, runner.EnginePanics)
	}
	t.Logf("contained %d panics into %d unique organic bugs", runner.EnginePanics, organic)
}

// TestMaxLenClampPreventsPanic: MaxLen 1 used to panic randomSequences
// (Intn(0)); Options.fill clamps it to the smallest affinity-carrying
// length.
func TestMaxLenClampPreventsPanic(t *testing.T) {
	o := Options{MaxLen: 1}
	o.fill()
	if o.MaxLen != 2 {
		t.Fatalf("MaxLen clamped to %d, want 2", o.MaxLen)
	}
	// End to end: the RandomSequences ablation exercises the Intn that
	// panicked before the clamp.
	f := New(Options{Dialect: sqlt.DialectPostgres, Seed: 1, MaxLen: 1, RandomSequences: true})
	f.Run(3000)
	if f.opts.MaxLen != 2 {
		t.Fatalf("fuzzer MaxLen = %d", f.opts.MaxLen)
	}
}
