// Package xrand provides a math/rand-compatible Source64 whose full state
// is a single exportable uint64. The standard library's rand.NewSource hides
// its 607-word state, which makes deterministic checkpoint/resume of a
// fuzzing campaign impossible; this source (splitmix64, Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014) trades a
// little statistical depth — irrelevant for fuzzing schedules — for a state
// that serializes to one JSON number.
package xrand

// Source is an exportable-state rand.Source64.
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source. A zero seed is mapped to 1 so the stream never
// degenerates.
func (s *Source) Seed(seed int64) {
	if seed == 0 {
		seed = 1
	}
	s.state = uint64(seed)
}

// Uint64 advances the stream (splitmix64 finalizer over a Weyl sequence).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// State exports the complete generator state.
func (s *Source) State() uint64 { return s.state }

// SetState restores a state previously returned by State.
func (s *Source) SetState(st uint64) { s.state = st }
