package xrand

import (
	"math/rand"
	"testing"
)

func TestDeterministicPerSeed(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if New(7).Uint64() == New(8).Uint64() {
		t.Fatal("different seeds must differ on the first draw")
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	// seed 0 maps to 1, so the stream is never the degenerate all-zero one
	a, b := New(0), New(1)
	if a.Uint64() != b.Uint64() {
		t.Fatal("seed 0 must alias seed 1")
	}
}

func TestStateRoundTrip(t *testing.T) {
	src := New(99)
	for i := 0; i < 17; i++ {
		src.Uint64()
	}
	st := src.State()

	clone := New(0)
	clone.SetState(st)
	for i := 0; i < 100; i++ {
		if src.Uint64() != clone.Uint64() {
			t.Fatalf("restored stream diverged at draw %d", i)
		}
	}
}

func TestResumedRandRandIsIdentical(t *testing.T) {
	// The fuzzer wraps Source in math/rand.Rand; restoring the source state
	// must reproduce the identical downstream Intn/Float64 schedule.
	src := New(5)
	r := rand.New(src)
	for i := 0; i < 23; i++ {
		r.Intn(100)
	}
	st := src.State()
	var want []int
	for i := 0; i < 50; i++ {
		want = append(want, r.Intn(1000))
	}

	src2 := New(5)
	src2.SetState(st)
	r2 := rand.New(src2)
	for i, w := range want {
		if g := r2.Intn(1000); g != w {
			t.Fatalf("draw %d: got %d want %d", i, g, w)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	src := New(3)
	for i := 0; i < 1000; i++ {
		if v := src.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestSeedResetsStream(t *testing.T) {
	src := New(11)
	first := src.Uint64()
	src.Uint64()
	src.Seed(11)
	if src.Uint64() != first {
		t.Fatal("Seed must restart the stream")
	}
}
