// Package seqsynth implements progressive sequence synthesis (paper §III-B,
// Algorithm 3). When a new type-affinity t1 -> t2 is discovered, exactly the
// new SQL Type Sequences containing that affinity — no longer than LEN — are
// enumerated, using the Prefix Sequence index: a map from (ending type,
// length) to the indexes of already-generated sequences.
package seqsynth

import (
	"sort"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// psKey is the (τ, λ) key of the Prefix Sequence map.
type psKey struct {
	end sqlt.Type
	len int
}

// Synthesizer incrementally enumerates SQL Type Sequences from a growing
// affinity map.
type Synthesizer struct {
	// LEN is the maximum sequence length (the paper evaluates 3/5/8 in §VI;
	// 5 is the default).
	LEN int
	// MaxPerAffinity caps how many new sequences one affinity may yield,
	// bounding the state explosion of challenge C1.
	MaxPerAffinity int

	aff    *affinity.Map
	s      []sqlt.Sequence // vector S of all generated sequences
	ps     map[psKey][]int // Prefix Sequence index
	starts map[sqlt.Type]bool
	// rot rotates the successor enumeration start point so successive
	// affinities explore different regions of the sequence tree instead of
	// always descending into the lexicographically first subtree.
	rot int
}

// New returns a synthesizer over the given affinity map.
func New(aff *affinity.Map, maxLen int) *Synthesizer {
	if maxLen < 2 {
		maxLen = 2
	}
	return &Synthesizer{
		LEN:            maxLen,
		MaxPerAffinity: 256,
		aff:            aff,
		ps:             map[psKey][]int{},
		starts:         map[sqlt.Type]bool{},
	}
}

// AddStart registers a starting statement type (paper: "beginning from
// specific starting statement types (e.g., CREATE TABLE)"). Each start type
// seeds a length-1 prefix sequence.
func (sy *Synthesizer) AddStart(t sqlt.Type) {
	if !t.Valid() || sy.starts[t] {
		return
	}
	sy.starts[t] = true
	sy.record(sqlt.Sequence{t})
}

// NumSequences returns how many sequences have been generated in total.
func (sy *Synthesizer) NumSequences() int { return len(sy.s) }

// State is the synthesizer's serializable state. The Prefix Sequence index
// is derived from Seqs, so only the sequence vector, the start-type set,
// and the rotation counter need to travel.
type State struct {
	Seqs   []sqlt.Sequence
	Starts []sqlt.Type
	Rot    int
}

// Export snapshots the synthesizer for checkpointing. Starts are sorted so
// identical campaigns produce byte-identical snapshots (the set's order
// never influences synthesis, only its serialization).
func (sy *Synthesizer) Export() State {
	st := State{Rot: sy.rot}
	for _, s := range sy.s {
		st.Seqs = append(st.Seqs, s.Clone())
	}
	for t := range sy.starts {
		st.Starts = append(st.Starts, t)
	}
	sort.Slice(st.Starts, func(i, j int) bool { return st.Starts[i] < st.Starts[j] })
	return st
}

// Import replaces the synthesizer's state with a previously exported
// snapshot, rebuilding the Prefix Sequence index by replaying the sequence
// vector in order.
func (sy *Synthesizer) Import(st State) {
	sy.s = nil
	sy.ps = map[psKey][]int{}
	sy.starts = map[sqlt.Type]bool{}
	sy.rot = st.Rot
	for _, t := range st.Starts {
		sy.starts[t] = true
	}
	for _, seq := range st.Seqs {
		if len(seq) > 0 {
			sy.record(seq)
		}
	}
}

// record appends a sequence to S and indexes it in PS.
func (sy *Synthesizer) record(seq sqlt.Sequence) int {
	idx := len(sy.s)
	sy.s = append(sy.s, seq.Clone())
	k := psKey{end: seq[len(seq)-1], len: len(seq)}
	sy.ps[k] = append(sy.ps[k], idx)
	return idx
}

// OnNewAffinity implements Algorithm 3. Given the newly discovered affinity
// t1 -> t2, it synthesizes every new sequence of length <= LEN containing
// the affinity and returns them. Because t1 -> t2 is new, all sequences
// generated through it are new.
func (sy *Synthesizer) OnNewAffinity(t1, t2 sqlt.Type) []sqlt.Sequence {
	var out []sqlt.Sequence
	emit := func(seq sqlt.Sequence) bool {
		if len(out) >= sy.MaxPerAffinity {
			return false
		}
		out = append(out, seq.Clone())
		return true
	}

	for level := 1; level <= sy.LEN-1; level++ {
		prefixSeqIndex := sy.ps[psKey{end: t1, len: level}]
		if len(prefixSeqIndex) == 0 {
			continue
		}
		// iterate over a snapshot: record() grows the index as we go
		snapshot := append([]int(nil), prefixSeqIndex...)
		for _, seqIndex := range snapshot {
			seq := append(sy.s[seqIndex].Clone(), t2)
			sy.record(seq)
			if !emit(seq) {
				return out
			}
			if !sy.listSeq(level+1, t2, seq, emit) {
				return out
			}
		}
	}
	return out
}

// listSeq recursively extends seq (currently ending at nodeType with the
// given level) by every known affinity successor, recording and emitting
// each extension (Algorithm 3, lines 14-25).
func (sy *Synthesizer) listSeq(level int, nodeType sqlt.Type, seq sqlt.Sequence, emit func(sqlt.Sequence) bool) bool {
	if level >= sy.LEN {
		return true
	}
	succ := sy.aff.Successors(nodeType)
	sy.rot++
	for i := range succ {
		nextType := succ[(i+sy.rot)%len(succ)]
		ext := append(seq.Clone(), nextType)
		if !sy.listSeq(level+1, nextType, ext, emit) {
			return false
		}
		sy.record(ext)
		if !emit(ext) {
			return false
		}
	}
	return true
}
