package seqsynth

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestExportStartsCanonical asserts the exported start-type set is sorted
// and independent of AddStart registration order, so identical campaigns
// serialize byte-identical snapshots.
func TestExportStartsCanonical(t *testing.T) {
	starts := []sqlt.Type{
		sqlt.CreateTable, sqlt.Insert, sqlt.Select, sqlt.CreateIndex,
		sqlt.Analyze, sqlt.Begin, sqlt.CreateView,
	}

	build := func(order []sqlt.Type) State {
		sy := New(affinity.NewMap(), 5)
		for _, s := range order {
			sy.AddStart(s)
		}
		return sy.Export()
	}

	want := build(starts).Starts
	if !sort.SliceIsSorted(want, func(i, j int) bool { return want[i] < want[j] }) {
		t.Fatalf("exported Starts not sorted: %v", want)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]sqlt.Type(nil), starts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := build(shuffled).Starts; !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Starts = %v under order %v, want %v", trial, got, shuffled, want)
		}
	}
}

// TestSynthesisOrderCanonical asserts the sequences generated for a new
// affinity do not depend on the order earlier affinities were recorded in
// the map — the Successors walk must be canonical.
func TestSynthesisOrderCanonical(t *testing.T) {
	edges := [][2]sqlt.Type{
		{sqlt.CreateTable, sqlt.Insert},
		{sqlt.CreateTable, sqlt.Select},
		{sqlt.Insert, sqlt.Select},
		{sqlt.Insert, sqlt.Update},
		{sqlt.Select, sqlt.Update},
	}

	run := func(order [][2]sqlt.Type) []sqlt.Sequence {
		aff := affinity.NewMap()
		sy := New(aff, 4)
		sy.AddStart(sqlt.CreateTable)
		var out []sqlt.Sequence
		for _, e := range order {
			if aff.Add(e[0], e[1]) {
				out = append(out, sy.OnNewAffinity(e[0], e[1])...)
			}
		}
		return out
	}

	// The same edges in the same discovery order must synthesize the same
	// sequence stream regardless of how the affinity map's internal sets
	// filled up before each OnNewAffinity call; replaying the identical
	// order twice must match exactly (the synthesizer is stateful, so this
	// is the byte-exact replay invariant checkpoints rely on).
	first := run(edges)
	second := run(edges)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same discovery order produced different sequences:\n%v\n%v", first, second)
	}
	if len(first) == 0 {
		t.Fatal("no sequences synthesized")
	}
}
