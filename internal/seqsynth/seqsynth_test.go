package seqsynth

import (
	"testing"

	"github.com/seqfuzz/lego/internal/affinity"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestOnNewAffinityBasic(t *testing.T) {
	// With starts {CREATE TABLE} and affinity CT->INSERT, the new sequences
	// are exactly those containing CT->INSERT up to LEN.
	aff := affinity.NewMap()
	sy := New(aff, 3)
	sy.AddStart(sqlt.CreateTable)

	aff.Add(sqlt.CreateTable, sqlt.Insert)
	seqs := sy.OnNewAffinity(sqlt.CreateTable, sqlt.Insert)
	if len(seqs) == 0 {
		t.Fatal("no sequences synthesized")
	}
	for _, s := range seqs {
		if !s.Contains(sqlt.CreateTable, sqlt.Insert) {
			t.Fatalf("sequence %v lacks the new affinity", s)
		}
		if len(s) > 3 {
			t.Fatalf("sequence %v exceeds LEN", s)
		}
	}
}

func TestProgressiveSynthesisMatchesPaperExample(t *testing.T) {
	// Paper §III-B example: target length 2, current sequence "CREATE
	// TABLE", affinity CREATE TABLE -> [INSERT, SELECT] gives exactly
	// "CREATE TABLE, INSERT" and "CREATE TABLE, SELECT".
	aff := affinity.NewMap()
	sy := New(aff, 2)
	sy.AddStart(sqlt.CreateTable)

	aff.Add(sqlt.CreateTable, sqlt.Insert)
	s1 := sy.OnNewAffinity(sqlt.CreateTable, sqlt.Insert)
	aff.Add(sqlt.CreateTable, sqlt.Select)
	s2 := sy.OnNewAffinity(sqlt.CreateTable, sqlt.Select)

	if len(s1) != 1 || !s1[0].Equal(sqlt.Sequence{sqlt.CreateTable, sqlt.Insert}) {
		t.Fatalf("s1 = %v", s1)
	}
	if len(s2) != 1 || !s2[0].Equal(sqlt.Sequence{sqlt.CreateTable, sqlt.Select}) {
		t.Fatalf("s2 = %v", s2)
	}
}

func TestOnlyNewSequencesAreGenerated(t *testing.T) {
	// Figure 6: when affinity 4->6 arrives, only sequences containing 4->6
	// are produced — the earlier tree is not regenerated.
	aff := affinity.NewMap()
	sy := New(aff, 4)
	sy.AddStart(sqlt.CreateTable)

	aff.Add(sqlt.CreateTable, sqlt.Insert)
	sy.OnNewAffinity(sqlt.CreateTable, sqlt.Insert)
	aff.Add(sqlt.Insert, sqlt.Select)
	fresh := sy.OnNewAffinity(sqlt.Insert, sqlt.Select)
	for _, s := range fresh {
		if !s.Contains(sqlt.Insert, sqlt.Select) {
			t.Fatalf("sequence %v does not contain the new affinity", s)
		}
	}
}

func TestSynthesisUsesKnownAffinitiesForExtension(t *testing.T) {
	// With CT->I known and then I->S discovered, extensions continue via
	// known affinities: CT,I,S and CT,I,S,? if any successor of S is known.
	aff := affinity.NewMap()
	sy := New(aff, 4)
	sy.AddStart(sqlt.CreateTable)

	aff.Add(sqlt.CreateTable, sqlt.Insert)
	sy.OnNewAffinity(sqlt.CreateTable, sqlt.Insert)
	aff.Add(sqlt.Insert, sqlt.Select)
	seqs := sy.OnNewAffinity(sqlt.Insert, sqlt.Select)

	found := false
	for _, s := range seqs {
		if s.Equal(sqlt.Sequence{sqlt.CreateTable, sqlt.Insert, sqlt.Select}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected CT,I,S among %v", seqs)
	}
}

func TestPrefixSequenceIndexGrows(t *testing.T) {
	aff := affinity.NewMap()
	sy := New(aff, 5)
	sy.AddStart(sqlt.CreateTable)
	if sy.NumSequences() != 1 {
		t.Fatalf("start seeds one sequence, got %d", sy.NumSequences())
	}
	aff.Add(sqlt.CreateTable, sqlt.Insert)
	sy.OnNewAffinity(sqlt.CreateTable, sqlt.Insert)
	n1 := sy.NumSequences()
	if n1 < 2 {
		t.Fatalf("sequences after first affinity = %d", n1)
	}
	aff.Add(sqlt.Insert, sqlt.Delete)
	sy.OnNewAffinity(sqlt.Insert, sqlt.Delete)
	if sy.NumSequences() <= n1 {
		t.Fatal("index must grow with each affinity")
	}
}

func TestMaxPerAffinityCap(t *testing.T) {
	aff := affinity.NewMap()
	sy := New(aff, 6)
	sy.MaxPerAffinity = 10
	sy.AddStart(sqlt.CreateTable)
	// dense affinity graph
	types := []sqlt.Type{sqlt.CreateTable, sqlt.Insert, sqlt.Select, sqlt.Update, sqlt.Delete}
	for _, a := range types {
		for _, b := range types {
			aff.Add(a, b)
		}
	}
	seqs := sy.OnNewAffinity(sqlt.CreateTable, sqlt.Insert)
	if len(seqs) > 10 {
		t.Fatalf("cap violated: %d sequences", len(seqs))
	}
}

func TestNoPrefixNoOutput(t *testing.T) {
	// an affinity whose source type has no prefix sequence yields nothing
	aff := affinity.NewMap()
	sy := New(aff, 3)
	sy.AddStart(sqlt.CreateTable)
	aff.Add(sqlt.Vacuum, sqlt.Select)
	if seqs := sy.OnNewAffinity(sqlt.Vacuum, sqlt.Select); len(seqs) != 0 {
		t.Fatalf("got %v, want none (no prefix ends with VACUUM)", seqs)
	}
}

func TestAddStartIdempotent(t *testing.T) {
	aff := affinity.NewMap()
	sy := New(aff, 3)
	sy.AddStart(sqlt.CreateTable)
	sy.AddStart(sqlt.CreateTable)
	if sy.NumSequences() != 1 {
		t.Fatalf("duplicate start must not re-seed: %d", sy.NumSequences())
	}
	sy.AddStart(sqlt.Invalid)
	if sy.NumSequences() != 1 {
		t.Fatal("invalid start must be ignored")
	}
}

func TestMinimumLen(t *testing.T) {
	sy := New(affinity.NewMap(), 0)
	if sy.LEN != 2 {
		t.Fatalf("LEN clamped to 2, got %d", sy.LEN)
	}
}

func TestAllSequencesRespectLenAndAffinities(t *testing.T) {
	aff := affinity.NewMap()
	sy := New(aff, 4)
	sy.AddStart(sqlt.CreateTable)
	sy.AddStart(sqlt.SetVar)

	pairs := []affinity.Pair{
		{From: sqlt.CreateTable, To: sqlt.Insert},
		{From: sqlt.Insert, To: sqlt.Select},
		{From: sqlt.Select, To: sqlt.Delete},
		{From: sqlt.SetVar, To: sqlt.CreateTable},
	}
	var all []sqlt.Sequence
	for _, p := range pairs {
		aff.Add(p.From, p.To)
		all = append(all, sy.OnNewAffinity(p.From, p.To)...)
	}
	for _, s := range all {
		if len(s) < 2 || len(s) > 4 {
			t.Fatalf("bad length: %v", s)
		}
		// every adjacent pair must be a recorded affinity
		for i := 0; i+1 < len(s); i++ {
			if !aff.Has(s[i], s[i+1]) {
				t.Fatalf("sequence %v uses unrecorded affinity %s->%s", s, s[i], s[i+1])
			}
		}
	}
}
