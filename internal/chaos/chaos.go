// Package chaos is the deterministic fault plane for supervised campaigns:
// a schedule of harness-level failures — worker panics mid-epoch, epoch
// stalls, checkpoint I/O faults — that is a pure function of (Rate, Seed).
// Where internal/minidb's faultInjector proves the harness survives its
// *target*, this package proves the campaign survives its *harness*: the
// sharded executor's supervision (retry from the last barrier snapshot,
// quarantine on budget exhaustion, graceful degradation) is only credible
// if the failures driving it can be replayed bit-for-bit.
//
// # Determinism
//
// minidb's faultInjector draws from one sequential stream whose position
// must travel in checkpoints. The chaos plane instead keys every decision
// by its campaign coordinates — (kind, epoch, shard, attempt) for worker
// faults, (kind, save ordinal) for I/O faults — each mixed into a private
// splitmix64 stream seeded by Seed. A keyed schedule has no cursor to
// persist or replay: a campaign resumed at epoch E re-derives exactly the
// faults the uninterrupted campaign would have seen from E on, which is
// what makes interrupt+resume under chaos byte-equivalent to the
// uninterrupted chaotic run. Keying by attempt also lets a retried epoch
// re-roll: attempt 0 may panic where attempt 1 runs clean, without any
// state recording that history.
package chaos

import (
	"errors"
	"fmt"
)

// Decision kinds, mixed into the key stream so the same coordinates draw
// independent schedules per failure mode.
const (
	kindWorkerPanic uint64 = iota + 1
	kindEpochStall
	kindSaveFault
)

// golden is the splitmix64 increment, reused as the key-absorption stride.
const golden = 0x9e3779b97f4a7c15

// Injector generates the fault schedule. The zero Injector injects nothing.
type Injector struct {
	// Rate is the per-decision fault probability, shared by every kind.
	Rate float64
	// Seed selects the schedule; campaigns with equal (Rate, Seed) see
	// identical faults.
	Seed int64
}

// New builds an injector. A zero seed is normalized to 1, mirroring the
// campaign-seed normalization, so "unset" and "explicitly 1" agree.
func New(rate float64, seed int64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{Rate: rate, Seed: seed}
}

// mix is the splitmix64 output function.
func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stream derives the private splitmix64 stream for one keyed decision by
// absorbing the kind and coordinates into the seed.
type stream struct{ state uint64 }

func (in *Injector) stream(kind uint64, keys ...int) *stream {
	st := mix(uint64(in.Seed) + golden*kind)
	for _, k := range keys {
		st = mix(st + golden*uint64(int64(k)+1))
	}
	return &stream{state: st}
}

// next draws a uniform float in [0, 1).
func (s *stream) next() float64 {
	s.state += golden
	return float64(mix(s.state)>>11) / (1 << 53)
}

// WorkerPanic reports whether the worker running (epoch, shard, attempt)
// panics mid-epoch, and at which fraction of its epoch budget the panic
// strikes.
func (in *Injector) WorkerPanic(epoch, shard, attempt int) (fire bool, frac float64) {
	s := in.stream(kindWorkerPanic, epoch, shard, attempt)
	return s.next() < in.Rate, s.next()
}

// EpochStall reports whether the worker running (epoch, shard, attempt)
// stalls — stops making progress at the given fraction of its epoch budget
// and never reaches the barrier, for the supervisor's watchdog to abort.
func (in *Injector) EpochStall(epoch, shard, attempt int) (fire bool, frac float64) {
	s := in.stream(kindEpochStall, epoch, shard, attempt)
	return s.next() < in.Rate, s.next()
}

// FSFault names one injected checkpoint I/O failure mode.
type FSFault int

// The checkpoint write path's three failure modes: the disk filling up, a
// write torn partway through, and the final rename failing.
const (
	FaultNone FSFault = iota
	FaultENOSPC
	FaultTornWrite
	FaultRename
)

func (f FSFault) String() string {
	switch f {
	case FaultENOSPC:
		return "ENOSPC"
	case FaultTornWrite:
		return "torn write"
	case FaultRename:
		return "rename failure"
	default:
		return "none"
	}
}

// SaveFault draws the fault (if any) afflicting the save-th checkpoint
// write of this process.
func (in *Injector) SaveFault(save int) FSFault {
	s := in.stream(kindSaveFault, save)
	if s.next() >= in.Rate {
		return FaultNone
	}
	return FSFault(1 + int(s.next()*3))
}

// InjectedPanic is the value a chaos-scheduled worker panic carries, so the
// supervisor's recover can tell an injected failure from an organic one.
type InjectedPanic struct {
	Epoch, Shard, Attempt int
}

func (p InjectedPanic) Error() string {
	return fmt.Sprintf("chaos: injected worker panic (epoch %d, shard %d, attempt %d)", p.Epoch, p.Shard, p.Attempt)
}

// ErrInjected is the sentinel every injected I/O fault wraps; callers use
// errors.Is(err, chaos.ErrInjected) to tell a scheduled fault (skip the
// save, keep the campaign) from a real disk failure (abort).
var ErrInjected = errors.New("chaos: injected I/O fault")
