package chaos

import (
	"fmt"
	"io/fs"
	"strings"
	"syscall"

	"github.com/seqfuzz/lego/internal/checkpoint"
)

// FS wraps a checkpoint.FS and injects the schedule's I/O faults into the
// checkpoint write protocol: the n-th Save of the process draws
// Injector.SaveFault(n), and the drawn fault surfaces at the matching step
// — ENOSPC and torn writes at File.Write, rename failures at the final
// rename (the rotation rename is left alone, so a faulted save never eats
// the last-good generation). Every injected error wraps ErrInjected.
//
// The save ordinal is process-local state, not campaign state: faults
// change what lands on disk, never what the campaign computes, so the
// ordinal needs no checkpointing. FS is not safe for concurrent use; saves
// happen on the campaign's coordinator goroutine.
type FS struct {
	inj   *Injector
	inner checkpoint.FS

	saves   int     // CreateTemp calls seen — one per checkpoint.Save
	pending FSFault // fault drawn for the save in flight
	faults  int     // injected faults raised so far
}

// NewFS builds the fault-injecting filesystem layer. A nil injector (or a
// zero rate) passes everything through untouched.
func NewFS(inj *Injector, inner checkpoint.FS) *FS {
	return &FS{inj: inj, inner: inner}
}

// Faults returns how many I/O faults were injected so far.
func (c *FS) Faults() int { return c.faults }

// fsError is an injected fault: errors.Is finds both ErrInjected and the
// modeled errno through it.
type fsError struct {
	op   string
	fail FSFault
	err  error
}

func (e *fsError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault on %s: %v", e.fail, e.op, e.err)
}

func (e *fsError) Unwrap() []error { return []error{ErrInjected, e.err} }

func (c *FS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	c.pending = c.inj.SaveFault(c.saves)
	c.saves++
	f, err := c.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, fs: c}, nil
}

func (c *FS) Stat(name string) (fs.FileInfo, error) { return c.inner.Stat(name) }

func (c *FS) Rename(oldpath, newpath string) error {
	// Only the temp-to-final rename is faultable; the best-effort rotation
	// rename (path -> path.bak) passes through so the backup generation is
	// governed by real disk behavior alone.
	if c.pending == FaultRename && strings.Contains(oldpath, ".tmp-") {
		c.pending = FaultNone
		c.faults++
		return &fsError{op: "rename", fail: FaultRename, err: syscall.EACCES}
	}
	return c.inner.Rename(oldpath, newpath)
}

func (c *FS) Remove(name string) error { return c.inner.Remove(name) }

func (c *FS) SyncDir(dir string) error { return c.inner.SyncDir(dir) }

// faultFile applies the pending write fault to the temp file.
type faultFile struct {
	inner checkpoint.File
	fs    *FS
}

func (f *faultFile) Write(p []byte) (int, error) {
	switch f.fs.pending {
	case FaultENOSPC:
		f.fs.pending = FaultNone
		f.fs.faults++
		return 0, &fsError{op: "write", fail: FaultENOSPC, err: syscall.ENOSPC}
	case FaultTornWrite:
		// Half the payload lands before the failure, modeling a write torn
		// by a crashing disk; Save's cleanup removes the torn temp file, and
		// even if it survived, Load's checksum would reject it.
		f.fs.pending = FaultNone
		f.fs.faults++
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &fsError{op: "write", fail: FaultTornWrite, err: syscall.EIO}
	default:
		return f.inner.Write(p)
	}
}

func (f *faultFile) Sync() error { return f.inner.Sync() }

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Name() string { return f.inner.Name() }
