package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/seqfuzz/lego/internal/checkpoint"
)

// TestScheduleIsPureFunctionOfRateAndSeed: two injectors with equal
// (Rate, Seed) draw identical decisions at every coordinate; changing the
// seed moves the schedule.
func TestScheduleIsPureFunctionOfRateAndSeed(t *testing.T) {
	a, b := New(0.3, 7), New(0.3, 7)
	other := New(0.3, 8)
	diverged := false
	for epoch := 0; epoch < 20; epoch++ {
		for shard := 0; shard < 4; shard++ {
			for attempt := 0; attempt < 3; attempt++ {
				af, afr := a.WorkerPanic(epoch, shard, attempt)
				bf, bfr := b.WorkerPanic(epoch, shard, attempt)
				if af != bf || afr != bfr {
					t.Fatalf("equal injectors diverged at (%d,%d,%d)", epoch, shard, attempt)
				}
				as, _ := a.EpochStall(epoch, shard, attempt)
				bs, _ := b.EpochStall(epoch, shard, attempt)
				if as != bs {
					t.Fatalf("equal injectors' stall schedules diverged at (%d,%d,%d)", epoch, shard, attempt)
				}
				of, ofr := other.WorkerPanic(epoch, shard, attempt)
				if of != af || ofr != afr {
					diverged = true
				}
			}
		}
	}
	if !diverged {
		t.Fatal("seed 7 and seed 8 drew identical schedules across 240 coordinates")
	}
}

// TestRateExtremes: rate 0 never fires, rate 1 always fires, and fractions
// stay in [0, 1).
func TestRateExtremes(t *testing.T) {
	never, always := New(0, 1), New(1, 1)
	for i := 0; i < 50; i++ {
		if fire, _ := never.WorkerPanic(i, 0, 0); fire {
			t.Fatal("rate-0 injector fired")
		}
		fire, frac := always.WorkerPanic(i, 0, 0)
		if !fire {
			t.Fatal("rate-1 injector did not fire")
		}
		if frac < 0 || frac >= 1 {
			t.Fatalf("fraction %v outside [0,1)", frac)
		}
		if always.SaveFault(i) == FaultNone {
			t.Fatal("rate-1 injector drew no save fault")
		}
		if never.SaveFault(i) != FaultNone {
			t.Fatal("rate-0 injector drew a save fault")
		}
	}
}

// TestKindsDrawIndependentSchedules: the panic and stall schedules at the
// same coordinates must not be copies of each other.
func TestKindsDrawIndependentSchedules(t *testing.T) {
	in := New(0.5, 3)
	same := true
	for i := 0; i < 64; i++ {
		p, _ := in.WorkerPanic(i, 1, 0)
		s, _ := in.EpochStall(i, 1, 0)
		if p != s {
			same = false
		}
	}
	if same {
		t.Fatal("panic and stall schedules agreed on all 64 coordinates")
	}
}

func testState() *checkpoint.State {
	return &checkpoint.State{Dialect: 2, Seed: 1, MaxLen: 5, Execs: 10, RNG: 42}
}

// TestFSInjectsEachFaultKind: driving checkpoint.SaveFS through an
// always-faulting FS surfaces every failure mode, each wrapping ErrInjected
// and its modeled errno — and an ENOSPC/torn-write fault leaves a
// previously saved primary checkpoint untouched.
func TestFSInjectsEachFaultKind(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.ckpt")
	if err := checkpoint.Save(path, testState()); err != nil {
		t.Fatal(err)
	}

	cfs := NewFS(New(1, 5), checkpoint.OS)
	seen := map[FSFault]bool{}
	for i := 0; i < 32 && len(seen) < 3; i++ {
		err := checkpoint.SaveFS(cfs, path, testState())
		if err == nil {
			t.Fatal("always-faulting FS let a save succeed")
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("injected fault does not wrap ErrInjected: %v", err)
		}
		switch {
		case errors.Is(err, syscall.ENOSPC):
			seen[FaultENOSPC] = true
		case errors.Is(err, syscall.EIO):
			seen[FaultTornWrite] = true
		case errors.Is(err, syscall.EACCES):
			seen[FaultRename] = true
		default:
			t.Fatalf("injected fault models no known errno: %v", err)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("32 faulted saves exercised only %d of 3 fault kinds", len(seen))
	}
	if cfs.Faults() == 0 {
		t.Fatal("FS counted no faults")
	}

	// Whatever the fault mix, a loadable generation must survive: the
	// primary (write faults fail before rotation) or the rotated backup
	// (rename faults strike after rotation).
	if _, _, err := checkpoint.LoadWithFallback(path); err != nil {
		t.Fatalf("no generation survived the faulted saves: %v", err)
	}

	// No temp litter: every faulted save cleaned up after itself.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if name := e.Name(); name != "c.ckpt" && name != "c.ckpt"+checkpoint.BackupSuffix {
			t.Fatalf("faulted saves left %s behind", name)
		}
	}
}

// TestFSPassesThroughWhenQuiet: a zero-rate chaos FS is transparent — saves
// succeed and round-trip.
func TestFSPassesThroughWhenQuiet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	cfs := NewFS(New(0, 5), checkpoint.OS)
	if err := checkpoint.SaveFS(cfs, path, testState()); err != nil {
		t.Fatal(err)
	}
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Execs != 10 || st.RNG != 42 {
		t.Fatalf("round trip corrupted state: %+v", st)
	}
	if cfs.Faults() != 0 {
		t.Fatalf("quiet FS injected %d faults", cfs.Faults())
	}
}
