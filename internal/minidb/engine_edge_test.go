package minidb

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestTxnErrorPaths(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
COMMIT;
ROLLBACK;
BEGIN;
BEGIN;
SAVEPOINT sp;
ROLLBACK TO SAVEPOINT missing;
RELEASE SAVEPOINT missing;
COMMIT;
SAVEPOINT orphan;
`))
	wantErr := []int{0, 1, 3, 5, 6, 8}
	for _, i := range wantErr {
		if out.Errs[i] == nil {
			t.Errorf("stmt %d should error", i)
		}
	}
	if out.Errs[2] != nil || out.Errs[4] != nil || out.Errs[7] != nil {
		t.Errorf("valid txn statements errored: %v", out.Errs)
	}
}

func TestSavepointStackDiscipline(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
BEGIN;
INSERT INTO t VALUES (1);
SAVEPOINT s1;
INSERT INTO t VALUES (2);
SAVEPOINT s2;
INSERT INTO t VALUES (3);
ROLLBACK TO SAVEPOINT s1;
COMMIT;
SELECT COUNT(*) FROM t;
`)
	if got := lastResult(t, out).Rows[0][0].I; got != 1 {
		t.Fatalf("rows after nested savepoint rollback = %d, want 1", got)
	}
}

func TestReleaseSavepointDropsLater(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
BEGIN;
SAVEPOINT s1;
SAVEPOINT s2;
RELEASE SAVEPOINT s1;
ROLLBACK TO SAVEPOINT s2;
`))
	if out.Errs[4] == nil {
		t.Fatal("releasing s1 must discard s2 as well")
	}
}

func TestDDLRollsBackInTxn(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
BEGIN;
CREATE TABLE tmp (a INT);
ROLLBACK;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if _, exists := e.cat.Tables["tmp"]; exists {
		t.Fatal("transactional DDL must roll back")
	}
}

func TestLockClusterReindex(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (3, 1), (1, 2), (2, 3);
CREATE INDEX ix ON t (a);
LOCK TABLE t IN SHARE MODE;
CLUSTER t USING ix;
SELECT a FROM t;
ALTER TABLE t RENAME COLUMN b TO c;
REINDEX TABLE t;
SELECT a FROM t WHERE a = 1;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	rows := out.Results[5].Rows
	if rows[0][0].I != 1 || rows[2][0].I != 3 {
		t.Fatalf("cluster must physically sort: %v", rows)
	}
}

func TestStaleIndexAfterAlter(t *testing.T) {
	e := newPG(t)
	run(t, e, `
CREATE TABLE t (a INT, b INT);
CREATE INDEX ix ON t (a);
ALTER TABLE t DROP COLUMN b;
`)
	if !e.cat.Indexes["ix"].stale {
		t.Fatal("ALTER must invalidate indexes")
	}
	run2 := sqlparse.MustParseScript("REINDEX INDEX ix;")
	e.RunTestCase(run2)
	// engine state resets per test case; reindex within one case instead
	e2 := newPG(t)
	out := run(t, e2, `
CREATE TABLE t (a INT, b INT);
CREATE INDEX ix ON t (a);
ALTER TABLE t DROP COLUMN b;
REINDEX INDEX ix;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if e2.cat.Indexes["ix"].stale {
		t.Fatal("REINDEX must clear staleness")
	}
}

func TestDiscardVariants(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TEMPORARY TABLE tt (a INT);
CREATE TABLE keep (a INT);
SET SESSION x = 1;
PREPARE q AS SELECT 1;
DISCARD ALL;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if _, exists := e.cat.Tables["tt"]; exists {
		t.Fatal("DISCARD ALL must drop temp tables")
	}
	if _, exists := e.cat.Tables["keep"]; !exists {
		t.Fatal("DISCARD ALL must keep regular tables")
	}
	if len(e.sess.prepared) != 0 || len(e.sess.vars) != 0 {
		t.Fatal("DISCARD ALL must clear session state")
	}
}

func TestCommentOnValidation(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
COMMENT ON TABLE t IS 'fine';
COMMENT ON TABLE missing IS 'nope';
COMMENT ON COLUMN t.a IS 'col';
COMMENT ON COLUMN t.zz IS 'nope';
`))
	if out.Errs[1] != nil || out.Errs[3] != nil {
		t.Fatalf("valid comments failed: %v", out.Errs)
	}
	if out.Errs[2] == nil || out.Errs[4] == nil {
		t.Fatal("invalid comment targets must error")
	}
	if e.cat.Comments["TABLE:t"] != "fine" {
		t.Fatal("comment must be stored")
	}
}

func TestVacuumAnalyzeCheckpointFlush(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
ANALYZE t;
VACUUM t;
VACUUM FULL;
CHECKPOINT;
DISCARD PLANS;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if !e.cat.Tables["t"].analyzed {
		t.Fatal("ANALYZE must mark the table")
	}
}

func TestAnalyzedFlagClearedByWrites(t *testing.T) {
	e := newPG(t)
	run(t, e, `
CREATE TABLE t (a INT);
ANALYZE t;
INSERT INTO t VALUES (1);
`)
	if e.cat.Tables["t"].analyzed {
		t.Fatal("writes must invalidate statistics")
	}
}

func TestUpdateDeleteOrderLimit(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1), (2), (3);
UPDATE t SET a = 0 ORDER BY a DESC LIMIT 1;
SELECT COUNT(*) FROM t WHERE a = 0;
DELETE FROM t ORDER BY a LIMIT 2;
SELECT COUNT(*) FROM t;
`))
	for i, err := range out.Errs {
		if err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	if out.Results[3].Rows[0][0].I != 1 {
		t.Fatal("ORDER BY ... LIMIT must update exactly the top row")
	}
	if out.Results[5].Rows[0][0].I != 1 {
		t.Fatal("DELETE LIMIT must remove exactly two rows")
	}
}

func TestInsertConflictHandling(t *testing.T) {
	pg := newPG(t)
	out := run(t, pg, `
CREATE TABLE t (a INT PRIMARY KEY);
INSERT INTO t VALUES (1);
INSERT INTO t VALUES (1) ON CONFLICT DO NOTHING;
SELECT COUNT(*) FROM t;
`)
	if lastResult(t, out).Rows[0][0].I != 1 {
		t.Fatal("ON CONFLICT DO NOTHING must skip the duplicate")
	}

	my := New(Config{Dialect: sqlt.DialectMySQL})
	out2 := my.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT PRIMARY KEY, b INT);
INSERT INTO t VALUES (1, 10);
INSERT IGNORE INTO t VALUES (1, 20);
REPLACE INTO t VALUES (1, 30);
SELECT b FROM t;
`))
	for i, err := range out2.Errs {
		if err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	rows := out2.Results[4].Rows
	if len(rows) != 1 || rows[0][0].I != 30 {
		t.Fatalf("REPLACE must overwrite: %v", rows)
	}
}

func TestInsertReturningAndDeleteReturning(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT, b INT);
INSERT INTO t VALUES (1, 2) RETURNING a + b;
DELETE FROM t WHERE a = 1 RETURNING b;
`)
	if out.Results[1].Rows[0][0].I != 3 {
		t.Fatalf("insert returning = %v", out.Results[1].Rows)
	}
	if out.Results[2].Rows[0][0].I != 2 {
		t.Fatalf("delete returning = %v", out.Results[2].Rows)
	}
}

func TestSelectIntoCreatesTable(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE src (a INT);
INSERT INTO src VALUES (1), (2);
SELECT a INTO dst FROM src WHERE a > 1;
SELECT COUNT(*) FROM dst;
`)
	if lastResult(t, out).Rows[0][0].I != 1 {
		t.Fatal("SELECT INTO must materialize the filtered rows")
	}
}

func TestCallAndDo(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMariaDB})
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
CREATE PROCEDURE fill() AS INSERT INTO t VALUES (7);
CALL fill();
CALL fill();
DO (1 + 2);
SELECT COUNT(*) FROM t;
`))
	for i, err := range out.Errs {
		if err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	if out.Results[5].Rows[0][0].I != 2 {
		t.Fatal("CALL must execute the procedure body")
	}
}

func TestShowDatabasesAndUse(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE DATABASE other;
SHOW DATABASES;
USE other;
USE nonexistent;
`))
	if len(out.Results[1].Rows) != 2 {
		t.Fatalf("databases = %v", out.Results[1].Rows)
	}
	if out.Errs[2] != nil {
		t.Fatal("USE of created database must pass")
	}
	if out.Errs[3] == nil {
		t.Fatal("USE of missing database must fail")
	}
}

func TestDropDatabaseGuards(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	out := e.RunTestCase(sqlparse.MustParseScript(`
DROP DATABASE main;
CREATE DATABASE d2;
DROP DATABASE d2;
`))
	if out.Errs[0] == nil {
		t.Fatal("dropping the current database must fail")
	}
	if out.Errs[2] != nil {
		t.Fatalf("dropping another database must pass: %v", out.Errs[2])
	}
}

func TestDropCascadeRemovesDependentViews(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
CREATE VIEW v AS SELECT a FROM t;
DROP TABLE t CASCADE;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if _, exists := e.cat.Views["v"]; exists {
		t.Fatal("CASCADE must drop dependent views")
	}
}

func TestTriggerBeforeAndAfterOrdering(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
CREATE TABLE log (tag TEXT);
CREATE TRIGGER b1 BEFORE DELETE ON t FOR EACH ROW INSERT INTO log VALUES ('before');
CREATE TRIGGER a1 AFTER DELETE ON t FOR EACH ROW INSERT INTO log VALUES ('after');
INSERT INTO t VALUES (1);
DELETE FROM t;
SELECT tag FROM log;
`)
	rows := lastResult(t, out).Rows
	if len(rows) != 2 || rows[0][0].S != "before" || rows[1][0].S != "after" {
		t.Fatalf("trigger order = %v", rows)
	}
}

func TestTypeWindowTracking(t *testing.T) {
	e := newPG(t)
	e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
SELECT * FROM t;
`))
	w := e.TypeWindow()
	if len(w) != 3 || w[0] != sqlt.CreateTable || w[2] != sqlt.Select {
		t.Fatalf("window = %v", w)
	}
	// window includes errored statements too
	e.RunTestCase(sqlparse.MustParseScript("SELECT * FROM missing;"))
	if len(e.TypeWindow()) != 1 {
		t.Fatal("window must reset per test case and record errors")
	}
}
