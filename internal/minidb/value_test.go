package minidb

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomValue generates arbitrary Values for property tests.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(rng.Int63n(2001) - 1000)
	case 2:
		return Float(float64(rng.Intn(4000)-2000) / 8)
	case 3:
		letters := []string{"", "a", "ab", "name1", "Z", "0", "-3"}
		return Text(letters[rng.Intn(len(letters))])
	default:
		return Bool(rng.Intn(2) == 0)
	}
}

// valueGen adapts randomValue to testing/quick.
type valueGen Value

func (valueGen) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen(randomValue(rng)))
}

func TestCompareTotalOrderProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}

	// reflexivity: Compare(a, a) == 0
	if err := quick.Check(func(a valueGen) bool {
		return Compare(Value(a), Value(a)) == 0
	}, cfg); err != nil {
		t.Error(err)
	}

	// antisymmetry: Compare(a,b) == -Compare(b,a)
	if err := quick.Check(func(a, b valueGen) bool {
		return Compare(Value(a), Value(b)) == -Compare(Value(b), Value(a))
	}, cfg); err != nil {
		t.Error(err)
	}

	// transitivity: a<=b && b<=c => a<=c
	if err := quick.Check(func(a, b, c valueGen) bool {
		av, bv, cv := Value(a), Value(b), Value(c)
		if Compare(av, bv) <= 0 && Compare(bv, cv) <= 0 {
			return Compare(av, cv) <= 0
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestEqualConsistentWithKey(t *testing.T) {
	// Equal values must have equal keys (the GROUP BY/DISTINCT invariant).
	if err := quick.Check(func(a, b valueGen) bool {
		av, bv := Value(a), Value(b)
		if Equal(av, bv) {
			return av.Key() == bv.Key()
		}
		return true
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCoerceIdempotent(t *testing.T) {
	types := []string{"INT", "FLOAT", "TEXT", "BOOLEAN", "VARCHAR(100)"}
	if err := quick.Check(func(a valueGen, ti uint8) bool {
		tn := types[int(ti)%len(types)]
		once := CoerceToColumn(tn, Value(a))
		twice := CoerceToColumn(tn, once)
		return once.K == twice.K && (once.IsNull() || Equal(once, twice))
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCoerceExamples(t *testing.T) {
	cases := []struct {
		tn   string
		in   Value
		want Value
	}{
		{"INT", Text("42"), Int(42)},
		{"INT", Float(3.0), Int(3)},
		{"INT", Float(3.5), Float(3.5)}, // non-integral floats stay
		{"INT", Bool(true), Int(1)},
		{"INT", Text("abc"), Text("abc")}, // unconvertible stays
		{"FLOAT", Int(2), Float(2)},
		{"TEXT", Int(7), Text("7")},
		{"BOOLEAN", Int(0), Bool(false)},
		{"VARCHAR(100)", Int(1), Text("1")},
		{"INT", Null(), Null()},
	}
	for _, c := range cases {
		got := CoerceToColumn(c.tn, c.in)
		if got.K != c.want.K || (!got.IsNull() && !Equal(got, c.want)) {
			t.Errorf("Coerce(%s, %v) = %v, want %v", c.tn, c.in, got, c.want)
		}
	}
}

func TestAffinityMapping(t *testing.T) {
	cases := map[string]Kind{
		"INT": KInt, "BIGINT": KInt, "SMALLINT": KInt, "YEAR": KInt, "SERIAL": KInt,
		"FLOAT": KFloat, "DOUBLE PRECISION": KFloat, "REAL": KFloat, "DECIMAL(10,2)": KFloat,
		"BOOLEAN": KBool,
		"TEXT":    KText, "VARCHAR(100)": KText, "CHAR(1)": KText, "BLOB": KText,
	}
	for tn, want := range cases {
		if got := affinity(tn); got != want {
			t.Errorf("affinity(%q) = %v, want %v", tn, got, want)
		}
	}
}

func TestValueStringAndTruthy(t *testing.T) {
	cases := []struct {
		v      Value
		str    string
		truthy bool
	}{
		{Null(), "NULL", false},
		{Int(0), "0", false},
		{Int(-3), "-3", true},
		{Float(2.5), "2.5", true},
		{Text(""), "", false},
		{Text("x"), "x", true},
		{Bool(true), "true", true},
		{Bool(false), "false", false},
	}
	for _, c := range cases {
		if c.v.String() != c.str {
			t.Errorf("String(%v) = %q, want %q", c.v, c.v.String(), c.str)
		}
		if c.v.Truthy() != c.truthy {
			t.Errorf("Truthy(%v) = %v, want %v", c.v, c.v.Truthy(), c.truthy)
		}
	}
}

func TestCrossKindComparison(t *testing.T) {
	// numbers compare numerically regardless of representation
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("2 == 2.0")
	}
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	// text compares after numbers
	if Compare(Int(999), Text("a")) != -1 {
		t.Error("numbers sort before text")
	}
	// NULL sorts first
	if Compare(Null(), Int(-1000)) != -1 {
		t.Error("NULL sorts lowest")
	}
	// numeric strings coerce for numeric comparison with numbers
	if Compare(Text("10"), Int(10)) != 1 {
		// text vs int: text ranks higher by kind, by design
		t.Error("kind ranking for text vs int")
	}
}

func TestRowKeyDisambiguates(t *testing.T) {
	a := RowKey([]Value{Text("a"), Text("b")})
	b := RowKey([]Value{Text("ab"), Text("")})
	if a == b {
		t.Fatal("row keys must not collide across column boundaries")
	}
	if RowKey([]Value{Int(1)}) == RowKey([]Value{Text("1")}) {
		t.Fatal("kind must be part of the key")
	}
	if RowKey([]Value{Int(1)}) != RowKey([]Value{Float(1.0)}) {
		t.Fatal("1 and 1.0 are SQL-equal and must share a key")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"abc", "abc", true},
		{"abc", "ABC", true}, // case-insensitive
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"%b%", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%", "", true},
		{"_", "", false},
		{"", "", true},
		{"", "x", false},
		{"%%x%%", "zzxzz", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}
