package minidb

import (
	"sort"
	"strconv"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// relation is an intermediate row set with named columns.
type relation struct {
	cols []string // output names
	qual []string // qualifier per column ("" if none)
	rows [][]Value

	// qkeys caches the "qualifier.column" binding keys; rebuilding them per
	// row dominates scan cost otherwise.
	qkeys []string
}

// keyCache returns the qualified column keys, built once per relation.
//
//lego:hotpath
func (r *relation) keyCache() []string {
	if r.qkeys == nil {
		r.qkeys = make([]string, len(r.cols))
		for c := range r.cols {
			if r.qual[c] != "" {
				r.qkeys[c] = r.qual[c] + "." + r.cols[c] //lego:allow hotalloc — builds the memoized r.qkeys exactly once per relation
			}
		}
	}
	return r.qkeys
}

func (r *relation) scopeRow(i int, parent *scope) *scope {
	qk := r.keyCache()
	m := make(map[string]Value, 2*len(r.cols))
	for c := len(r.cols) - 1; c >= 0; c-- {
		// iterate right-to-left so the leftmost duplicate wins
		m[r.cols[c]] = r.rows[i][c]
		if qk[c] != "" {
			m[qk[c]] = r.rows[i][c]
		}
	}
	return &scope{row: m, parent: parent}
}

// scopeRowInto binds row i into the caller-owned scratch scope, reusing its
// map across calls so a per-row loop allocates one map per query instead of
// one per row. Every row of a relation binds exactly the same key set, so
// overwriting without clearing is correct. Only loops that do NOT retain
// the scope (or its row map) past the enclosing eval call may use this;
// retaining sites (group buckets, window partitions' group rows) must stay
// on scopeRow.
//
//lego:hotpath
func (r *relation) scopeRowInto(i int, parent *scope, sc *scope) *scope {
	qk := r.keyCache()
	if sc.row == nil {
		sc.row = make(map[string]Value, 2*len(r.cols))
	}
	for c := len(r.cols) - 1; c >= 0; c-- {
		// iterate right-to-left so the leftmost duplicate wins
		sc.row[r.cols[c]] = r.rows[i][c]
		if qk[c] != "" {
			sc.row[qk[c]] = r.rows[i][c]
		}
	}
	sc.parent = parent
	return sc
}

// execSelectTop handles SELECT as a top-level statement.
func (e *Engine) execSelectTop(q *sqlast.SelectStmt) (*Result, error) {
	e.hit(pExecSelect)
	rows, cols, err := e.execSelect(q, nil, 0)
	if err != nil {
		return nil, err
	}
	if q.Into != "" {
		e.hit(pExecSelectInto)
		return e.materializeInto(q.Into, cols, rows)
	}
	if len(rows) == 0 {
		e.hit(pExecEmptyRes)
	} else {
		e.hit(pExecRowsRes)
	}
	return &Result{Cols: cols, Rows: rows}, nil
}

// materializeInto creates a new table from a result set (SELECT INTO).
func (e *Engine) materializeInto(name string, cols []string, rows [][]Value) (*Result, error) {
	if _, exists := e.cat.Tables[name]; exists {
		return nil, errValue("relation %q already exists", name)
	}
	t := &Table{Name: name}
	for i, c := range cols {
		cn := c
		if cn == "" || cn == "*" {
			cn = "column" + itoaSmall(i+1)
		}
		t.Cols = append(t.Cols, Column{Name: cn, TypeName: "TEXT"})
	}
	t.Rows = rows
	e.cat.Tables[name] = t
	// SELECT INTO is DQL-category but creates a table, so the schema
	// fingerprint goes stale here rather than in dispatch.
	e.fpValid = false
	return &Result{Affected: len(rows), Msg: "SELECT INTO"}, nil
}

func itoaSmall(n int) string { return strconv.Itoa(n) }

// execSelect runs a query and returns its rows and column names. outer is
// the enclosing scope for correlated subqueries.
func (e *Engine) execSelect(q *sqlast.SelectStmt, outer *scope, depth int) ([][]Value, []string, error) {
	if depth > e.limits.MaxRewriteDepth+maxEvalDepth {
		return nil, nil, errValue("query nesting too deep")
	}

	// FROM
	var rel *relation
	if len(q.From) == 0 {
		e.hit(pPlanEmptyJointree)
		rel = e.replaceEmptyJointree()
	} else {
		r, err := e.fromRelation(q.From[0], outer, depth)
		if err != nil {
			return nil, nil, err
		}
		rel = r
		for _, f := range q.From[1:] {
			r2, err := e.fromRelation(f, outer, depth)
			if err != nil {
				return nil, nil, err
			}
			e.hit(pPlanJoinCross)
			rel = crossProduct(rel, r2, e.limits.MaxResultRows)
		}
	}

	// WHERE (with a token index-path decision for the planner component)
	if q.Where != nil {
		e.planFilterPath(q, rel)
		var filtered [][]Value
		if e.cfg.DisablePlanCache {
			var rsc scope
			for i := range rel.rows {
				if err := e.chargeStep(); err != nil {
					return nil, nil, err
				}
				sc := rel.scopeRowInto(i, outer, &rsc)
				v, err := e.eval(q.Where, sc, depth+1)
				if err != nil {
					return nil, nil, err
				}
				if v.Truthy() {
					filtered = append(filtered, rel.rows[i])
				}
			}
		} else {
			p, m := e.preparedEval(q.Where, relLayout(rel), outer)
			for i := range rel.rows {
				if err := e.chargeStep(); err != nil {
					return nil, nil, err
				}
				m.bindRow(rel.rows[i])
				v, err := p.code(m, depth+1)
				if err != nil {
					return nil, nil, err
				}
				if v.Truthy() {
					filtered = append(filtered, rel.rows[i])
				}
			}
		}
		rel = &relation{cols: rel.cols, qual: rel.qual, rows: filtered}
	}

	// Grouping / aggregation
	grouped := len(q.GroupBy) > 0
	if !grouped {
		for _, it := range q.Items {
			if exprHasAggregate(it.X) {
				grouped = true
				break
			}
		}
		if q.Having != nil {
			grouped = true
		}
	}

	var outRows [][]Value
	var outCols []string

	if grouped {
		e.hit(pPlanGroup)
		rows, cols, err := e.execGrouped(q, rel, outer, depth)
		if err != nil {
			return nil, nil, err
		}
		outRows, outCols = rows, cols
	} else {
		rows, cols, err := e.execProjection(q, rel, outer, depth)
		if err != nil {
			return nil, nil, err
		}
		outRows, outCols = rows, cols
	}

	if q.Distinct {
		e.hit(pPlanDistinct)
		outRows = dedupRows(outRows)
	}

	// Set operation
	if q.Op != sqlast.SetNone && q.Right != nil {
		e.hit(pPlanSetOp)
		rRows, _, err := e.execSelect(q.Right, outer, depth+1)
		if err != nil {
			return nil, nil, err
		}
		outRows = applySetOp(q.Op, outRows, rRows)
	}

	// ORDER BY over the output rows. When output rows still correspond 1:1
	// to source rows (no grouping, DISTINCT, or set operation), order
	// expressions may also reference source columns that were projected
	// away — `SELECT v2 FROM t1 ORDER BY v1` (the paper's Figure 1 seed).
	if len(q.OrderBy) > 0 {
		e.hit(pPlanOrder)
		srcRel := rel
		if grouped || q.Distinct || q.Op != sqlast.SetNone || len(outRows) != len(rel.rows) {
			srcRel = nil
		}
		if err := e.sortRows(q, outRows, outCols, srcRel, outer, depth); err != nil {
			return nil, nil, err
		}
	}

	// LIMIT / OFFSET
	if q.Offset != nil {
		e.hit(pPlanOffset)
		n, err := e.evalInt(q.Offset, outer, depth)
		if err != nil {
			return nil, nil, err
		}
		if n < 0 {
			n = 0
		}
		if int(n) >= len(outRows) {
			outRows = nil
		} else {
			outRows = outRows[n:]
		}
	}
	if q.Limit != nil {
		e.hit(pPlanLimit)
		n, err := e.evalInt(q.Limit, outer, depth)
		if err != nil {
			return nil, nil, err
		}
		if n < 0 {
			n = 0
		}
		if int(n) < len(outRows) {
			outRows = outRows[:n]
		}
	}
	if len(outRows) > e.limits.MaxResultRows {
		outRows = outRows[:e.limits.MaxResultRows]
	}
	return outRows, outCols, nil
}

// planFilterPath records the planner's access-path decision (index vs scan)
// as coverage. An equality predicate on an indexed column takes the index
// path; ANALYZE'd tables take a statistics branch.
func (e *Engine) planFilterPath(q *sqlast.SelectStmt, rel *relation) {
	bt, ok := baseTableOf(q)
	if !ok {
		e.hit(pPlanScan)
		return
	}
	t, exists := e.cat.Tables[bt]
	if !exists {
		e.hit(pPlanScan)
		return
	}
	if t.analyzed {
		e.hit(pPlanStats)
	} else {
		e.hit(pPlanNoStats)
	}
	if len(t.Rows) == 0 {
		e.hit(pPlanEmptyTable)
	}
	col, isEq := eqPredicateColumn(q.Where)
	if !isEq {
		e.hit(pPlanScan)
		return
	}
	for _, ix := range e.cat.indexesFor(bt) {
		for _, c := range ix.Cols {
			if c == col {
				if ix.stale {
					e.hit(pPlanIndexStale)
				} else {
					e.hit(pPlanIndex)
				}
				return
			}
		}
	}
	e.hit(pPlanScan)
}

func baseTableOf(q *sqlast.SelectStmt) (string, bool) {
	if len(q.From) != 1 {
		return "", false
	}
	bt, ok := q.From[0].(*sqlast.BaseTable)
	if !ok {
		return "", false
	}
	return bt.Name, true
}

func eqPredicateColumn(w sqlast.Expr) (string, bool) {
	b, ok := w.(*sqlast.Binary)
	if !ok || b.Op != "=" {
		return "", false
	}
	if c, ok := b.L.(*sqlast.ColRef); ok {
		if _, isLit := b.R.(*sqlast.Literal); isLit {
			return c.Name, true
		}
	}
	if c, ok := b.R.(*sqlast.ColRef); ok {
		if _, isLit := b.L.(*sqlast.Literal); isLit {
			return c.Name, true
		}
	}
	return "", false
}

// execProjection projects the items over each row, handling stars and
// window functions.
func (e *Engine) execProjection(q *sqlast.SelectStmt, rel *relation, outer *scope, depth int) ([][]Value, []string, error) {
	cols := e.outputColumns(q.Items, rel)

	// Pre-compute window values if any item needs them.
	var winVals []map[*sqlast.FuncCall]Value
	hasWin := false
	for _, it := range q.Items {
		if exprHasWindow(it.X) {
			hasWin = true
			break
		}
	}
	if hasWin {
		e.hit(pPlanWindow)
		wv, err := e.computeWindows(q.Items, rel, outer, depth)
		if err != nil {
			return nil, nil, err
		}
		winVals = wv
	}

	out := make([][]Value, 0, len(rel.rows))
	if e.cfg.DisablePlanCache {
		var rsc scope
		for i := range rel.rows {
			if err := e.chargeStep(); err != nil {
				return nil, nil, err
			}
			sc := rel.scopeRowInto(i, outer, &rsc)
			if winVals != nil {
				sc.winVals = winVals[i]
			}
			row, err := e.projectRow(q.Items, rel, i, sc, depth)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, row)
			if len(out) > e.limits.MaxResultRows {
				break
			}
		}
	} else if len(rel.rows) > 0 {
		// One program + machine per item: items bind independent literal and
		// fallback slots. Star items stay exec-side (projectRow copies them
		// without evaluating, so there is nothing to compile).
		lay := relLayout(rel)
		progs := make([]*program, len(q.Items))
		machs := make([]*machine, len(q.Items))
		for k, it := range q.Items {
			if _, ok := it.X.(*sqlast.Star); ok {
				continue
			}
			progs[k], machs[k] = e.preparedEval(it.X, lay, outer)
		}
		for i := range rel.rows {
			if err := e.chargeStep(); err != nil {
				return nil, nil, err
			}
			row := make([]Value, 0, len(q.Items))
			for k, it := range q.Items {
				if st, ok := it.X.(*sqlast.Star); ok {
					for c := range rel.cols {
						if st.Table != "" && rel.qual[c] != st.Table {
							continue
						}
						row = append(row, rel.rows[i][c])
					}
					continue
				}
				mk := machs[k]
				mk.bindRow(rel.rows[i])
				if winVals != nil {
					mk.winVals = winVals[i]
				}
				v, err := progs[k].code(mk, depth+1)
				if err != nil {
					return nil, nil, err
				}
				row = append(row, v)
			}
			out = append(out, row)
			if len(out) > e.limits.MaxResultRows {
				break
			}
		}
	}
	// SELECT with no FROM still yields one row.
	if len(rel.rows) == 0 && len(q.From) == 0 {
		sc := &scope{row: map[string]Value{}, parent: outer}
		row, err := e.projectRow(q.Items, rel, -1, sc, depth)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, row)
	}
	return out, cols, nil
}

// projectRow evaluates the SELECT items for one row.
//
//lego:hotpath
func (e *Engine) projectRow(items []sqlast.SelectItem, rel *relation, rowIdx int, sc *scope, depth int) ([]Value, error) {
	row := make([]Value, 0, len(items))
	for _, it := range items {
		if st, ok := it.X.(*sqlast.Star); ok {
			for c := range rel.cols {
				if st.Table != "" && rel.qual[c] != st.Table {
					continue
				}
				if rowIdx >= 0 {
					row = append(row, rel.rows[rowIdx][c])
				}
			}
			continue
		}
		v, err := e.eval(it.X, sc, depth+1)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// outputColumns derives result column names.
func (e *Engine) outputColumns(items []sqlast.SelectItem, rel *relation) []string {
	var cols []string
	for i, it := range items {
		if st, ok := it.X.(*sqlast.Star); ok {
			for c := range rel.cols {
				if st.Table != "" && rel.qual[c] != st.Table {
					continue
				}
				cols = append(cols, rel.cols[c])
			}
			continue
		}
		switch {
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.X.(*sqlast.ColRef); ok {
				cols = append(cols, cr.Name)
			} else if fc, ok := it.X.(*sqlast.FuncCall); ok {
				cols = append(cols, strings.ToLower(fc.Name))
			} else {
				cols = append(cols, "column"+itoaSmall(i+1))
			}
		}
	}
	return cols
}

// execGrouped evaluates a grouped/aggregated query.
func (e *Engine) execGrouped(q *sqlast.SelectStmt, rel *relation, outer *scope, depth int) ([][]Value, []string, error) {
	cols := e.outputColumns(q.Items, rel)

	type groupBucket struct {
		firstRow map[string]Value
		rows     []map[string]Value
	}
	var order []string
	buckets := map[string]*groupBucket{}

	for i := range rel.rows {
		sc := rel.scopeRow(i, outer)
		key := ""
		if len(q.GroupBy) > 0 {
			var keys []Value
			for _, g := range q.GroupBy {
				// GROUP BY <ordinal> refers to a select item
				gx := g
				if lit, ok := g.(*sqlast.Literal); ok && lit.Kind == sqlast.LitInt &&
					lit.Int >= 1 && int(lit.Int) <= len(q.Items) {
					gx = q.Items[lit.Int-1].X
				}
				v, err := e.eval(gx, sc, depth+1)
				if err != nil {
					return nil, nil, err
				}
				keys = append(keys, v)
			}
			key = RowKey(keys)
		}
		b, ok := buckets[key]
		if !ok {
			b = &groupBucket{firstRow: sc.row}
			buckets[key] = b
			order = append(order, key)
		}
		b.rows = append(b.rows, sc.row)
	}
	// An aggregate over zero rows with no GROUP BY still yields one row;
	// rows must be non-nil so aggregates see an empty group rather than
	// the absence of a grouping context.
	if len(buckets) == 0 && len(q.GroupBy) == 0 {
		buckets[""] = &groupBucket{firstRow: map[string]Value{}, rows: []map[string]Value{}}
		order = append(order, "")
	}

	var out [][]Value
	for _, key := range order {
		b := buckets[key]
		gsc := &scope{row: b.firstRow, group: b.rows, parent: outer}
		if q.Having != nil {
			e.hit(pPlanHaving)
			hv, err := e.eval(q.Having, gsc, depth+1)
			if err != nil {
				return nil, nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		var row []Value
		for _, it := range q.Items {
			if _, ok := it.X.(*sqlast.Star); ok {
				return nil, nil, errValue("* is not valid with GROUP BY")
			}
			v, err := e.eval(it.X, gsc, depth+1)
			if err != nil {
				return nil, nil, err
			}
			row = append(row, v)
		}
		out = append(out, row)
	}
	return out, cols, nil
}

// computeWindows evaluates every windowed function call per input row.
func (e *Engine) computeWindows(items []sqlast.SelectItem, rel *relation, outer *scope, depth int) ([]map[*sqlast.FuncCall]Value, error) {
	out := make([]map[*sqlast.FuncCall]Value, len(rel.rows))
	for i := range out {
		out[i] = map[*sqlast.FuncCall]Value{}
	}
	var calls []*sqlast.FuncCall
	for _, it := range items {
		sqlast.WalkExpr(it.X, func(n sqlast.Expr) {
			if fc, ok := n.(*sqlast.FuncCall); ok && fc.Over != nil {
				calls = append(calls, fc)
			}
		})
	}
	for _, fc := range calls {
		if err := e.computeOneWindow(fc, rel, out, outer, depth); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Engine) computeOneWindow(fc *sqlast.FuncCall, rel *relation, out []map[*sqlast.FuncCall]Value, outer *scope, depth int) error {
	compiled := !e.cfg.DisablePlanCache
	// Partition- and order-key expressions run once per row (order keys
	// twice: the post-sort recompute reuses the same programs).
	var partProgs, obProgs []*program
	var partMachs, obMachs []*machine
	if compiled {
		lay := relLayout(rel)
		if n := len(fc.Over.PartitionBy); n > 0 {
			partProgs = make([]*program, n)
			partMachs = make([]*machine, n)
			for k, pe := range fc.Over.PartitionBy {
				partProgs[k], partMachs[k] = e.preparedEval(pe, lay, outer)
			}
		}
		if n := len(fc.Over.OrderBy); n > 0 {
			obProgs = make([]*program, n)
			obMachs = make([]*machine, n)
			for k, ob := range fc.Over.OrderBy {
				obProgs[k], obMachs[k] = e.preparedEval(ob.X, lay, outer)
			}
		}
	}

	// Partition rows.
	parts := map[string][]int{}
	var partOrder []string
	var rsc scope
	for i := range rel.rows {
		var sc *scope
		if compiled {
			// Replicate scopeRowInto's full-width access pattern.
			if n := len(rel.cols); n > 0 {
				_ = rel.rows[i][n-1]
			}
		} else {
			sc = rel.scopeRowInto(i, outer, &rsc)
		}
		key := ""
		if len(fc.Over.PartitionBy) > 0 {
			var keys []Value
			if compiled {
				for k := range partProgs {
					partMachs[k].bindRow(rel.rows[i])
					v, err := partProgs[k].code(partMachs[k], depth+1)
					if err != nil {
						return err
					}
					keys = append(keys, v)
				}
			} else {
				for _, pe := range fc.Over.PartitionBy {
					v, err := e.eval(pe, sc, depth+1)
					if err != nil {
						return err
					}
					keys = append(keys, v)
				}
			}
			key = RowKey(keys)
		}
		if _, ok := parts[key]; !ok {
			partOrder = append(partOrder, key)
		}
		parts[key] = append(parts[key], i)
	}

	// orderKeysFor fills keys[n] for row i, on whichever path is active.
	orderKeysFor := func(dst []Value, i int) ([]Value, error) {
		if compiled {
			if n := len(rel.cols); n > 0 {
				_ = rel.rows[i][n-1]
			}
			for k := range obProgs {
				obMachs[k].bindRow(rel.rows[i])
				v, err := obProgs[k].code(obMachs[k], depth+1)
				if err != nil {
					return dst, err
				}
				dst = append(dst, v)
			}
			return dst, nil
		}
		sc := rel.scopeRowInto(i, outer, &rsc)
		for _, ob := range fc.Over.OrderBy {
			v, err := e.eval(ob.X, sc, depth+1)
			if err != nil {
				return dst, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	}

	name := strings.ToUpper(fc.Name)
	for _, key := range partOrder {
		idxs := parts[key]
		// Order within the partition.
		if len(fc.Over.OrderBy) > 0 {
			keys := make([][]Value, len(idxs))
			for n, i := range idxs {
				ks, err := orderKeysFor(keys[n], i)
				if err != nil {
					return err
				}
				keys[n] = ks
			}
			sort.SliceStable(idxs, func(a, b int) bool {
				for k, ob := range fc.Over.OrderBy {
					c := Compare(keys[a][k], keys[b][k])
					if c != 0 {
						if ob.Desc {
							return c > 0
						}
						return c < 0
					}
				}
				return false
			})
			// keys moved with idxs only when we re-fetch; recompute keys
			// after the sort for rank ties.
			for n, i := range idxs {
				ks, err := orderKeysFor(keys[n][:0], i)
				if err != nil {
					return err
				}
				keys[n] = ks
			}
			switch name {
			case "RANK", "DENSE_RANK":
				rank, dense := 1, 1
				for n, i := range idxs {
					if n > 0 {
						same := true
						for k := range keys[n] {
							if Compare(keys[n][k], keys[n-1][k]) != 0 {
								same = false
								break
							}
						}
						if !same {
							rank = n + 1
							dense++
						}
					}
					if name == "RANK" {
						out[i][fc] = Int(int64(rank))
					} else {
						out[i][fc] = Int(int64(dense))
					}
				}
				continue
			}
		}

		switch name {
		case "ROW_NUMBER":
			for n, i := range idxs {
				out[i][fc] = Int(int64(n + 1))
			}
		case "RANK", "DENSE_RANK":
			// without ORDER BY every row ties at rank 1
			for _, i := range idxs {
				out[i][fc] = Int(1)
			}
		case "LEAD", "LAG":
			if len(fc.Args) < 1 {
				return errValue("%s expects an argument", name)
			}
			off := 1
			for n, i := range idxs {
				src := n + off
				if name == "LAG" {
					src = n - off
				}
				if src < 0 || src >= len(idxs) {
					out[i][fc] = Null()
					continue
				}
				sc := rel.scopeRowInto(idxs[src], outer, &rsc)
				v, err := e.eval(fc.Args[0], sc, depth+1)
				if err != nil {
					return err
				}
				out[i][fc] = v
			}
		case "NTILE":
			n := len(idxs)
			buckets := 4
			if len(fc.Args) == 1 {
				sc := rel.scopeRow(idxs[0], outer)
				bv, err := e.eval(fc.Args[0], sc, depth+1)
				if err != nil {
					return err
				}
				if f, ok := bv.numeric(); ok && f >= 1 {
					buckets = int(f)
				}
			}
			for pos, i := range idxs {
				out[i][fc] = Int(int64(pos*buckets/n) + 1)
			}
		default:
			// aggregate OVER partition: whole-partition value
			if !IsAggregate(name) {
				return errValue("unsupported window function %s", name)
			}
			var group []map[string]Value
			for _, i := range idxs {
				group = append(group, rel.scopeRow(i, outer).row)
			}
			gsc := &scope{row: map[string]Value{}, group: group, parent: outer}
			plain := *fc
			plain.Over = nil
			v, err := e.evalAggregate(&plain, gsc, depth+1)
			if err != nil {
				return err
			}
			for _, i := range idxs {
				out[i][fc] = v
			}
		}
	}
	return nil
}

// sortRows orders the result set in place. Order expressions may name
// output columns, ordinals, or — when srcRel is non-nil (output rows map
// 1:1 to source rows) — source columns that were projected away.
func (e *Engine) sortRows(q *sqlast.SelectStmt, rows [][]Value, cols []string, srcRel *relation, outer *scope, depth int) error {
	keys := make([][]Value, len(rows))
	if e.cfg.DisablePlanCache {
		// One output-column map and one source scope serve the whole loop:
		// rows of one result set share a length and column set, so
		// overwriting is safe; a length change (set-op arity mismatch) forces
		// a fresh map so no stale key from a longer row survives.
		var m map[string]Value
		var psc, ssc scope
		lastLen := -1
		for i, row := range rows {
			if m == nil || len(row) != lastLen {
				m = make(map[string]Value, len(cols))
				lastLen = len(row)
			}
			for c, name := range cols {
				if c < len(row) {
					m[name] = row[c]
				}
			}
			parent := outer
			if srcRel != nil {
				parent = srcRel.scopeRowInto(i, outer, &psc)
			}
			ssc.row = m
			ssc.parent = parent
			sc := &ssc
			for _, ob := range q.OrderBy {
				ox := ob.X
				if lit, ok := ox.(*sqlast.Literal); ok && lit.Kind == sqlast.LitInt &&
					lit.Int >= 1 && int(lit.Int) <= len(row) {
					keys[i] = append(keys[i], row[lit.Int-1])
					continue
				}
				v, err := e.eval(ox, sc, depth+1)
				if err != nil {
					// fall back to NULL key: ORDER BY on a source column that
					// was projected away sorts as NULL, a common lenient
					// behaviour
					v = Null()
				}
				keys[i] = append(keys[i], v)
			}
		}
	} else if len(rows) > 0 {
		// Compiled path: frame 0 is the output row (names bound forward, so
		// last duplicate wins, matching the map above), frame 1 the source
		// relation when order expressions may reach projected-away columns.
		lay := layout{frames: []frame{{keys: cols, lastWins: true}}}
		if srcRel != nil {
			lay.frames = append(lay.frames, frame{keys: srcRel.cols, qkeys: srcRel.keyCache()})
		}
		progs := make([]*program, len(q.OrderBy))
		machs := make([]*machine, len(q.OrderBy))
		for k, ob := range q.OrderBy {
			progs[k], machs[k] = e.preparedEval(ob.X, lay, outer)
		}
		// Rows shorter than the column list (set-op arity mismatch) bind
		// fewer names than the layout promises, so they take the interpreter
		// map path per row — observationally identical, since the map never
		// carries stale keys across rows of one length.
		var m map[string]Value
		var psc, ssc scope
		lastLen := -1
		for i, row := range rows {
			short := len(row) < len(cols)
			var sc *scope
			if short {
				if m == nil || len(row) != lastLen {
					m = make(map[string]Value, len(cols))
					lastLen = len(row)
				}
				for c, name := range cols {
					if c < len(row) {
						m[name] = row[c]
					}
				}
				parent := outer
				if srcRel != nil {
					parent = srcRel.scopeRowInto(i, outer, &psc)
				}
				ssc.row = m
				ssc.parent = parent
				sc = &ssc
			} else if srcRel != nil {
				// Replicate scopeRowInto's full-width access on the source
				// row before any key evaluation.
				if n := len(srcRel.cols); n > 0 {
					_ = srcRel.rows[i][n-1]
				}
			}
			for k, ob := range q.OrderBy {
				ox := ob.X
				if lit, ok := ox.(*sqlast.Literal); ok && lit.Kind == sqlast.LitInt &&
					lit.Int >= 1 && int(lit.Int) <= len(row) {
					keys[i] = append(keys[i], row[lit.Int-1])
					continue
				}
				var v Value
				var err error
				if short {
					v, err = e.eval(ox, sc, depth+1)
				} else {
					mk := machs[k]
					mk.bindRow(row)
					if srcRel != nil {
						mk.rowB = srcRel.rows[i]
					}
					v, err = progs[k].code(mk, depth+1)
				}
				if err != nil {
					// fall back to NULL key, as above
					v = Null()
				}
				keys[i] = append(keys[i], v)
			}
		}
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, ob := range q.OrderBy {
			c := Compare(keys[idx[a]][k], keys[idx[b]][k])
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	sorted := make([][]Value, len(rows))
	for n, i := range idx {
		sorted[n] = rows[i]
	}
	copy(rows, sorted)
	return nil
}

func (e *Engine) evalInt(x sqlast.Expr, outer *scope, depth int) (int64, error) {
	v, err := e.eval(x, &scope{row: map[string]Value{}, parent: outer}, depth+1)
	if err != nil {
		return 0, err
	}
	f, ok := v.numeric()
	if !ok {
		return 0, errValue("expected integer expression")
	}
	return int64(f), nil
}

func dedupRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	var out [][]Value
	for _, r := range rows {
		k := RowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func applySetOp(op sqlast.SetOp, left, right [][]Value) [][]Value {
	switch op {
	case sqlast.SetUnionAll:
		return append(left, right...)
	case sqlast.SetUnion:
		return dedupRows(append(left, right...))
	case sqlast.SetExcept:
		rset := map[string]bool{}
		for _, r := range right {
			rset[RowKey(r)] = true
		}
		var out [][]Value
		for _, l := range dedupRows(left) {
			if !rset[RowKey(l)] {
				out = append(out, l)
			}
		}
		return out
	case sqlast.SetIntersect:
		rset := map[string]bool{}
		for _, r := range right {
			rset[RowKey(r)] = true
		}
		var out [][]Value
		for _, l := range dedupRows(left) {
			if rset[RowKey(l)] {
				out = append(out, l)
			}
		}
		return out
	default:
		return left
	}
}

func crossProduct(a, b *relation, maxRows int) *relation {
	out := &relation{
		cols: append(append([]string{}, a.cols...), b.cols...),
		qual: append(append([]string{}, a.qual...), b.qual...),
	}
	if n := len(a.rows) * len(b.rows); n > 0 {
		if n > maxRows {
			n = maxRows
		}
		out.rows = make([][]Value, 0, n)
	}
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			row := append(append([]Value{}, ra...), rb...)
			out.rows = append(out.rows, row)
			if len(out.rows) >= maxRows {
				return out
			}
		}
	}
	return out
}

// fromRelation materializes one FROM-clause source.
func (e *Engine) fromRelation(ref sqlast.TableRef, outer *scope, depth int) (*relation, error) {
	switch r := ref.(type) {
	case *sqlast.BaseTable:
		rel, err := e.resolveNamedRelation(r.Name, outer, depth)
		if err != nil {
			return nil, err
		}
		q := r.Name
		if r.Alias != "" {
			q = r.Alias
		}
		qual := make([]string, len(rel.cols))
		for i := range qual {
			qual[i] = q
		}
		return &relation{cols: rel.cols, qual: qual, rows: rel.rows}, nil

	case *sqlast.SubqueryRef:
		e.hit(pPlanSubquery)
		rows, cols, err := e.execSelect(r.Query, outer, depth+1)
		if err != nil {
			return nil, err
		}
		qual := make([]string, len(cols))
		for i := range qual {
			qual[i] = r.Alias
		}
		return &relation{cols: cols, qual: qual, rows: rows}, nil

	case *sqlast.JoinRef:
		left, err := e.fromRelation(r.L, outer, depth)
		if err != nil {
			return nil, err
		}
		right, err := e.fromRelation(r.R, outer, depth)
		if err != nil {
			return nil, err
		}
		return e.joinRelations(r, left, right, outer, depth)

	default:
		return nil, errValue("unsupported FROM element %T", ref)
	}
}

// resolveNamedRelation resolves a name against CTEs, views, then tables.
func (e *Engine) resolveNamedRelation(name string, outer *scope, depth int) (*relation, error) {
	// CTE scope (innermost wins)
	for i := len(e.cteFrames) - 1; i >= 0; i-- {
		if rel, ok := e.cteFrames[i][name]; ok {
			e.hit(pRewriteCTE)
			return rel, nil
		}
	}
	if v, ok := e.cat.Views[name]; ok {
		if v.Materialized {
			e.hit(pPlanMatView)
			cols := v.MatCols
			if len(v.Cols) > 0 {
				cols = v.Cols
			}
			return &relation{cols: cols, qual: make([]string, len(cols)), rows: v.MatRows}, nil
		}
		e.hit(pPlanView)
		if depth > e.limits.MaxRewriteDepth {
			return nil, errValue("view nesting too deep")
		}
		rows, cols, err := e.execSelect(v.Query, outer, depth+1)
		if err != nil {
			return nil, err
		}
		if len(v.Cols) > 0 {
			for i := range cols {
				if i < len(v.Cols) {
					cols[i] = v.Cols[i]
				}
			}
		}
		return &relation{cols: cols, qual: make([]string, len(cols)), rows: rows}, nil
	}
	t, err := e.lookTable(name)
	if err != nil {
		return nil, err
	}
	if err := e.checkPriv(name, "SELECT"); err != nil {
		return nil, err
	}
	cols := make([]string, len(t.Cols))
	for i := range t.Cols {
		cols[i] = t.Cols[i].Name
	}
	return &relation{cols: cols, qual: make([]string, len(cols)), rows: t.Rows}, nil
}

func (e *Engine) joinRelations(j *sqlast.JoinRef, left, right *relation, outer *scope, depth int) (*relation, error) {
	out := &relation{
		cols: append(append([]string{}, left.cols...), right.cols...),
		qual: append(append([]string{}, left.qual...), right.qual...),
	}
	switch j.Kind {
	case sqlast.JoinCross:
		e.hit(pPlanJoinCross)
		return crossProduct(left, right, e.limits.MaxResultRows), nil
	case sqlast.JoinLeft:
		e.hit(pPlanJoinLeft)
	case sqlast.JoinRight:
		e.hit(pPlanJoinRight)
	default:
		e.hit(pPlanJoinNested)
	}

	// pairBudget bounds nested-loop work so a single pathological join
	// cannot stall fuzzing (paper challenge C3). Real servers spend the
	// time; a fuzzing harness must not.
	pairBudget := 20000
	// The pair row, probe relation, and scope map are allocated once and
	// rebound per pair: only matched pairs materialize a fresh row into
	// out.rows, so the ON evaluation runs allocation-free across the up to
	// 20000 probed pairs.
	pairRow := make([]Value, 0, len(out.cols))
	probe := &relation{cols: out.cols, qual: out.qual, rows: [][]Value{nil}}
	var onProg *program
	var onMach *machine
	if !e.cfg.DisablePlanCache {
		onProg, onMach = e.preparedEval(j.On, relLayout(probe), outer)
	}
	var psc scope
	matchRow := func(lrow, rrow []Value) (bool, error) {
		pairBudget--
		pairRow = append(append(pairRow[:0], lrow...), rrow...)
		probe.rows[0] = pairRow
		var v Value
		var err error
		if onProg != nil {
			onMach.bindRow(pairRow)
			v, err = onProg.code(onMach, depth+1)
		} else {
			sc := probe.scopeRowInto(0, outer, &psc)
			v, err = e.eval(j.On, sc, depth+1)
		}
		if err != nil {
			return false, err
		}
		return v.Truthy(), nil
	}

	nullsFor := func(n int) []Value {
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = Null()
		}
		return vs
	}

	switch j.Kind {
	case sqlast.JoinRight:
		for _, rrow := range right.rows {
			matched := false
			for _, lrow := range left.rows {
				ok, err := matchRow(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					out.rows = append(out.rows, append(append([]Value{}, lrow...), rrow...))
				}
				if len(out.rows) >= e.limits.MaxResultRows || pairBudget <= 0 {
					return out, nil
				}
			}
			if !matched {
				out.rows = append(out.rows, append(nullsFor(len(left.cols)), rrow...))
			}
		}
	default:
		for _, lrow := range left.rows {
			matched := false
			for _, rrow := range right.rows {
				ok, err := matchRow(lrow, rrow)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					out.rows = append(out.rows, append(append([]Value{}, lrow...), rrow...))
				}
				if len(out.rows) >= e.limits.MaxResultRows || pairBudget <= 0 {
					return out, nil
				}
			}
			if !matched && j.Kind == sqlast.JoinLeft {
				out.rows = append(out.rows, append(append([]Value{}, lrow...), nullsFor(len(right.cols))...))
			}
		}
	}
	return out, nil
}
