package minidb

import "github.com/seqfuzz/lego/internal/sqlt"

// This file defines the seeded bug corpus: 102 hazards distributed over the
// four dialects with the per-component, per-class breakdown of the paper's
// Table I (PostgreSQL 6, MySQL 21, MariaDB 42, Comdb2 33). Each hazard
// fires only when a specific SQL Type Sequence suffix has executed and an
// engine-state predicate holds — the defining property the paper exploits:
// "many of the [bugs] were related to the unexpected SQL Type Sequence."
//
// A small subset is deliberately reachable by intra-statement mutation over
// the common seed sequences (patterns that appear in initial seeds, gated on
// the statement *erroring*, which mutation produces constantly and rule-
// based generation produces rarely). These model the 3 MySQL + 8 MariaDB
// bugs SQUIRREL found in the paper's Table III.

func bug(id, comp, kind string, cond condFn, pat ...sqlt.Type) *Bug {
	return &Bug{
		ID:        id,
		Component: comp,
		Kind:      kind,
		Pattern:   pat,
		Cond:      cond,
		Stack: []string{
			comp + "::entry",
			comp + "::" + kind + "_path",
			"crash::" + id,
		},
	}
}

// bugPGJointree is the paper's case-study bug (§V-B): a DO INSTEAD NOTIFY
// rule rewriting the INSERT inside a WITH clause leaves the CTE query with a
// nil jointree; the planner later dereferences it in replace_empty_jointree.
// It is raised manually from the rewrite component (rewrite.go), not by
// window matching.
var bugPGJointree = &Bug{
	ID:        "BUG #17152",
	Component: "Optimizer",
	Kind:      "SEGV",
	Pattern:   nil,
	Stack: []string{
		"Optimizer::standard_planner",
		"Optimizer::replace_empty_jointree",
		"crash::BUG #17152",
	},
}

var postgresBugs = []*Bug{
	bug("BUG #17097", "Optimizer", "BOF", cRows(1),
		sqlt.CreateIndex, sqlt.Analyze, sqlt.Select),
	bug("BUG #110303", "Optimizer", "AF", cAlways,
		sqlt.RefreshMaterializedView, sqlt.Select),
	bugPGJointree, // Optimizer SEGV, raised from rewrite.go
	bug("BUG #17151", "Optimizer", "SEGV", cErr,
		sqlt.DeclareCursor, sqlt.Fetch, sqlt.CloseCursor, sqlt.Fetch),
	bug("BUG #17094", "Parser", "AF", cPrepared,
		sqlt.Prepare, sqlt.Execute, sqlt.Prepare),
	bug("BUG #17067", "DML", "AF", cAlways,
		sqlt.CopyFrom, sqlt.Truncate, sqlt.CopyTo),
}

var mysqlBugs = []*Bug{
	// Optimizer: BOF(3), SBOF(1), NPD(4), HBOF(1), UAF(1), AF(2)
	bug("CVE-2021-2357", "Optimizer", "BOF", cView,
		sqlt.CreateView, sqlt.AlterTable, sqlt.Select),
	bug("CVE-2021-2055", "Optimizer", "BOF", cAnd(cIndex, cErr),
		sqlt.CreateIndex, sqlt.Update, sqlt.Select),
	bug("CVE-2021-2230", "Optimizer", "BOF", cErr,
		sqlt.Insert, sqlt.Select), // SQUIRREL-reachable: seed adjacency + erroring mutant
	bug("CVE-2021-2169", "Optimizer", "SBOF", cFunc,
		sqlt.CreateFunction, sqlt.Select),
	bug("CVE-2021-2444", "Optimizer", "NPD", cErr,
		sqlt.CreateView, sqlt.DropTable, sqlt.Select),
	bug("MYSQL-OPT-104211", "Optimizer", "NPD", cEmptyTable,
		sqlt.Describe, sqlt.Select),
	bug("MYSQL-OPT-104377", "Optimizer", "NPD", cAlways,
		sqlt.AlterTable, sqlt.Explain),
	bug("MYSQL-OPT-104490", "Optimizer", "NPD", cSeq,
		sqlt.CreateSequence, sqlt.Select),
	bug("MYSQL-OPT-104502", "Optimizer", "HBOF", cAnd(cRows(2), cErr),
		sqlt.Update, sqlt.Update, sqlt.Select),
	bug("MYSQL-OPT-104633", "Optimizer", "UAF", cRows(1),
		sqlt.DropIndex, sqlt.Select),
	bug("MYSQL-OPT-104718", "Optimizer", "AF", cInTxn,
		sqlt.LockTable, sqlt.Select),
	bug("MYSQL-OPT-104799", "Optimizer", "AF", cAlways,
		sqlt.Analyze, sqlt.Explain),
	// DML: SBOF(1), SEGV(2)
	bug("CVE-2021-35645", "DML", "SBOF", cAlways,
		sqlt.LoadData, sqlt.Update),
	bug("MYSQL-DML-104822", "DML", "SEGV", cErr,
		sqlt.Insert, sqlt.Insert), // SQUIRREL-reachable
	bug("MYSQL-DML-104903", "DML", "SEGV", cErr,
		sqlt.Update, sqlt.Delete), // SQUIRREL-reachable
	// Auth: SBOF(1), SEGV(2)
	bug("CVE-2021-35643", "Auth", "SBOF", cTrigger,
		sqlt.CreateTable, sqlt.Insert, sqlt.CreateTrigger, sqlt.Select), // Fig. 3 sequence
	bug("MYSQL-AUTH-105011", "Auth", "SEGV", cAlways,
		sqlt.Grant, sqlt.Revoke, sqlt.Select),
	bug("MYSQL-AUTH-105104", "Auth", "SEGV", cAlways,
		sqlt.CreateUser, sqlt.Grant, sqlt.Grant),
	// Storage: SEGV(1), AF(2)
	bug("CVE-2021-35641", "Storage", "SEGV", cAlways,
		sqlt.Flush, sqlt.Insert),
	bug("MYSQL-STG-105233", "Storage", "AF", cRows(1),
		sqlt.OptimizeTable, sqlt.Update),
	bug("MYSQL-STG-105307", "Storage", "AF", cAlways,
		sqlt.CheckTable, sqlt.AlterTable),
}

var mariadbBugs = []*Bug{
	// Optimizer: NPD(2), BOF(1), UAP(3), SEGV(2), AF(1)
	bug("CVE-2022-27376", "Optimizer", "NPD", cTables(2),
		sqlt.CreateView, sqlt.CreateView, sqlt.Select),
	bug("CVE-2022-27379", "Optimizer", "NPD", cAlways,
		sqlt.SelectInto, sqlt.Select, sqlt.Update, sqlt.Select),
	bug("CVE-2022-27380", "Optimizer", "BOF", cRows(2),
		sqlt.CreateIndex, sqlt.Reindex, sqlt.Select),
	bug("MDEV-26403", "Optimizer", "UAP", cErr,
		sqlt.DropView, sqlt.Select),
	bug("MDEV-26432", "Optimizer", "UAP", cAlways,
		sqlt.Merge, sqlt.Select, sqlt.Merge, sqlt.Select),
	bug("MDEV-26418", "Optimizer", "UAP", cAnd(cRows(2), cTables(2)),
		sqlt.AlterTable, sqlt.Select, sqlt.Select),
	bug("MDEV-26416", "Optimizer", "SEGV", cErr,
		sqlt.CreateFunction, sqlt.DropFunction, sqlt.Select),
	bug("MDEV-26419", "Optimizer", "SEGV", cAlways,
		sqlt.Begin, sqlt.Select, sqlt.Rollback, sqlt.Select),
	bug("MDEV-26430", "Optimizer", "AF", cRows(2),
		sqlt.Analyze, sqlt.Update, sqlt.Explain),
	// DML: BOF(1), UAP(1), AF(1), SEGV(1)
	bug("CVE-2022-27377", "DML", "BOF", cErr,
		sqlt.Insert, sqlt.Update), // SQUIRREL-reachable
	bug("CVE-2022-27378", "DML", "UAP", cErr,
		sqlt.Delete, sqlt.Insert), // SQUIRREL-reachable
	bug("MDEV-26120", "DML", "AF", cErr,
		sqlt.Update, sqlt.Update), // SQUIRREL-reachable
	bug("MDEV-25994", "DML", "SEGV", cErr,
		sqlt.Insert, sqlt.Delete), // SQUIRREL-reachable
	// Parser: BOF(1), UAF(2), SEGV(1)
	bug("CVE-2022-27383", "Parser", "BOF", cRows(1),
		sqlt.Prepare, sqlt.Execute, sqlt.Execute),
	bug("MDEV-26355", "Parser", "UAF", cErr,
		sqlt.Prepare, sqlt.Deallocate, sqlt.Execute),
	bug("MDEV-26313", "Parser", "UAF", cErr,
		sqlt.CreateProcedure, sqlt.DropProcedure, sqlt.Call),
	bug("MDEV-26410", "Parser", "SEGV", cErr,
		sqlt.Explain, sqlt.Explain),
	// Storage: SEGV(7), UAP(2), UAF(2), BOF(2)
	bug("CVE-2022-27385", "Storage", "SEGV", cTables(2),
		sqlt.Truncate, sqlt.Insert),
	bug("CVE-2022-27386", "Storage", "SEGV", cErr,
		sqlt.RenameTable, sqlt.Insert),
	bug("MDEV-26404", "Storage", "SEGV", cRows(2),
		sqlt.AlterTable, sqlt.Insert),
	bug("MDEV-26408", "Storage", "SEGV", cAnd(cRows(2), cTables(2)),
		sqlt.Flush, sqlt.Select),
	bug("MDEV-26412", "Storage", "SEGV", cAlways,
		sqlt.OptimizeTable, sqlt.Insert, sqlt.OptimizeTable, sqlt.Select),
	bug("MDEV-26421", "Storage", "SEGV", cRows(3),
		sqlt.CheckTable, sqlt.Update),
	bug("MDEV-26434", "Storage", "SEGV", cAlways,
		sqlt.LoadData, sqlt.Select, sqlt.LoadData, sqlt.Select),
	bug("MDEV-26436", "Storage", "UAP", cRows(2),
		sqlt.DropIndex, sqlt.Insert),
	bug("MDEV-26420", "Storage", "UAP", cEmptyTable,
		sqlt.Truncate, sqlt.Select),
	bug("MDEV-26422", "Storage", "UAF", cErr,
		sqlt.DropTable, sqlt.Insert),
	bug("MDEV-26431", "Storage", "UAF", cTables(2),
		sqlt.CreateTable, sqlt.DropTable, sqlt.CreateTable),
	bug("MDEV-26433", "Storage", "BOF", cAnd(cRows(2), cErr),
		sqlt.Insert, sqlt.Insert, sqlt.Insert), // SQUIRREL-reachable
	bug("MDEV-26439", "Storage", "BOF", cErr,
		sqlt.CreateIndex, sqlt.Insert), // SQUIRREL-reachable
	// Item: AF(4), SEGV(3), UAP(2), UAF(1)
	bug("MDEV-26405", "Item", "AF", cErr,
		sqlt.Select, sqlt.Select), // SQUIRREL-reachable
	bug("MDEV-26407", "Item", "AF", cAlways,
		sqlt.CreateFunction, sqlt.Do),
	bug("MDEV-26411", "Item", "AF", cErr,
		sqlt.SetVar, sqlt.Select), // SQUIRREL-reachable
	bug("MDEV-26414", "Item", "AF", cAlways,
		sqlt.ValuesStmt, sqlt.Select, sqlt.ValuesStmt, sqlt.Select),
	bug("MDEV-26438", "Item", "SEGV", cErr,
		sqlt.Update, sqlt.Select), // SQUIRREL-reachable
	bug("MDEV-26428", "Item", "SEGV", cAlways,
		sqlt.Show, sqlt.Select, sqlt.Show, sqlt.Select),
	bug("MDEV-26417", "Item", "SEGV", cAlways,
		sqlt.Describe, sqlt.Insert, sqlt.Describe, sqlt.Insert),
	bug("MDEV-26435", "Item", "UAP", cErr,
		sqlt.CreateSequence, sqlt.DropSequence, sqlt.Select),
	bug("MDEV-26437", "Item", "UAP", cAlways,
		sqlt.Do, sqlt.Select, sqlt.Do, sqlt.Select),
	bug("MDEV-26427", "Item", "UAF", cErr,
		sqlt.CreateView, sqlt.AlterTable, sqlt.Select),
	// Lock: SEGV(2)
	bug("MDEV-26425", "Lock", "SEGV", cInTxn,
		sqlt.LockTable, sqlt.Update),
	bug("MDEV-26424", "Lock", "SEGV", cNoTxn, // the COMMIT must really close the txn
		sqlt.Begin, sqlt.LockTable, sqlt.Commit, sqlt.Select),
}

var comdb2Bugs = []*Bug{
	// Bdb: UB(6)
	bug("CVE-2020-26746-a", "Bdb", "UB", cAlways,
		sqlt.Begin, sqlt.Insert, sqlt.Rollback, sqlt.Insert),
	bug("CVE-2020-26746-b", "Bdb", "UB", cRows(1),
		sqlt.Begin, sqlt.Delete, sqlt.Commit),
	bug("CVE-2020-26746-c", "Bdb", "UB", cErr,
		sqlt.Begin, sqlt.Begin),
	bug("CVE-2020-26746-d", "Bdb", "UB", cErr,
		sqlt.Rollback, sqlt.Rollback),
	bug("CVE-2020-26746-e", "Bdb", "UB", cAlways,
		sqlt.Begin, sqlt.Truncate, sqlt.Rollback),
	bug("CVE-2020-26746-f", "Bdb", "UB", cAlways,
		sqlt.Begin, sqlt.AlterTable, sqlt.Commit),
	// Berkdb: BOF(1), UB(7)
	bug("CVE-2020-26745-a", "Berkdb", "BOF", cErr,
		sqlt.CreateIndex, sqlt.Insert, sqlt.Insert),
	bug("CVE-2020-26745-b", "Berkdb", "UB", cAlways,
		sqlt.CreateIndex, sqlt.DropIndex, sqlt.Insert),
	bug("CVE-2020-26745-c", "Berkdb", "UB", cRows(1),
		sqlt.Analyze, sqlt.Delete, sqlt.Select),
	bug("CVE-2020-26745-d", "Berkdb", "UB", cAlways,
		sqlt.Pragma, sqlt.Insert, sqlt.Pragma),
	bug("CVE-2020-26745-e", "Berkdb", "UB", cAlways,
		sqlt.SetVar, sqlt.Analyze, sqlt.Update),
	bug("CVE-2020-26745-f", "Berkdb", "UB", cAlways,
		sqlt.Insert, sqlt.Truncate, sqlt.Analyze),
	bug("CVE-2020-26745-g", "Berkdb", "UB", cErr,
		sqlt.DropIndex, sqlt.Select),
	bug("CVE-2020-26745-h", "Berkdb", "UB", cAnd(cIndex, cErr),
		sqlt.CreateIndex, sqlt.Update),
	// Csc2: BOF(1)
	bug("CVE-2020-26744", "Csc2", "BOF", cErr,
		sqlt.AlterTable, sqlt.AlterTable),
	// Db: UB(4), UAF(1), SEGV(3)
	bug("CVE-2020-26743-a", "Db", "UB", cView,
		sqlt.CreateView, sqlt.Select, sqlt.DropView),
	bug("CVE-2020-26743-b", "Db", "UB", cAlways,
		sqlt.WithSelect, sqlt.Delete, sqlt.WithSelect),
	bug("CVE-2020-26743-c", "Db", "UB", cErr,
		sqlt.ValuesStmt, sqlt.Insert),
	bug("CVE-2020-26743-d", "Db", "UB", cAlways,
		sqlt.Explain, sqlt.Update, sqlt.Explain),
	bug("CVE-2020-26743-e", "Db", "UAF", cErr,
		sqlt.DropTable, sqlt.Select),
	bug("CVE-2020-26743-f", "Db", "SEGV", cAlways,
		sqlt.CreateProcedure, sqlt.DropProcedure, sqlt.Select),
	bug("CVE-2020-26743-g", "Db", "SEGV", cErr,
		sqlt.Grant, sqlt.Select),
	bug("CVE-2020-26743-h", "Db", "SEGV", cRows(1),
		sqlt.Update, sqlt.Truncate, sqlt.Insert),
	// Mem: BOF(1), HBOF(1), SEGV(1)
	bug("CVE-2020-26741", "Mem", "BOF", cAnd(cRows(4), cErr),
		sqlt.Insert, sqlt.Insert, sqlt.Insert, sqlt.Insert),
	bug("CVE-2020-26742", "Mem", "HBOF", cErr,
		sqlt.Insert, sqlt.Update, sqlt.Insert),
	bug("COMDB2-MEM-SEGV", "Mem", "SEGV", cErr,
		sqlt.Delete, sqlt.Delete),
	// Sqlite: UB(5), SEGV(2)
	bug("COMDB2-SQLITE-UB-1", "Sqlite", "UB", cErr,
		sqlt.WithSelect, sqlt.Select),
	bug("COMDB2-SQLITE-UB-2", "Sqlite", "UB", cRows(2),
		sqlt.Select, sqlt.WithSelect),
	bug("COMDB2-SQLITE-UB-3", "Sqlite", "UB", cAlways,
		sqlt.WithSelect, sqlt.WithSelect),
	bug("COMDB2-SQLITE-UB-4", "Sqlite", "UB", cAlways,
		sqlt.ValuesStmt, sqlt.Select, sqlt.ValuesStmt),
	bug("COMDB2-SQLITE-UB-5", "Sqlite", "UB", cEmptyTable,
		sqlt.Explain, sqlt.Select, sqlt.Explain),
	bug("COMDB2-SQLITE-SEGV-1", "Sqlite", "SEGV", cAnd(cView, cRows(1)),
		sqlt.CreateView, sqlt.WithSelect),
	bug("COMDB2-SQLITE-SEGV-2", "Sqlite", "SEGV", cAlways,
		sqlt.Analyze, sqlt.WithSelect, sqlt.Analyze),
}

// bugsFor returns the seeded bugs for one dialect.
func bugsFor(d sqlt.Dialect) []*Bug {
	switch d {
	case sqlt.DialectPostgres:
		return postgresBugs
	case sqlt.DialectMySQL:
		return mysqlBugs
	case sqlt.DialectMariaDB:
		return mariadbBugs
	case sqlt.DialectComdb2:
		return comdb2Bugs
	default:
		return nil
	}
}

// AllBugs returns the full corpus keyed by dialect, for the Table I
// benchmark and tests.
func AllBugs() map[sqlt.Dialect][]*Bug {
	return map[sqlt.Dialect][]*Bug{
		sqlt.DialectPostgres: postgresBugs,
		sqlt.DialectMySQL:    mysqlBugs,
		sqlt.DialectMariaDB:  mariadbBugs,
		sqlt.DialectComdb2:   comdb2Bugs,
	}
}
