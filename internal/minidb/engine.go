package minidb

import (
	"github.com/seqfuzz/lego/internal/coverage"
	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// Limits bound resource usage so fuzzing stays fast (the paper's C3:
// pathological seeds must not stall the fuzzer).
type Limits struct {
	MaxRowsPerTable int
	MaxResultRows   int
	MaxTriggerDepth int
	MaxRewriteDepth int
	// MaxTriggerFires caps total trigger invocations per top-level
	// statement: cascades are depth-capped AND breadth-capped, so an
	// UPDATE over many rows with self-updating triggers cannot stall the
	// fuzzer (challenge C3).
	MaxTriggerFires int
	// MaxStepsPerStmt is the deterministic watchdog: every top-level
	// statement may charge at most this many evaluation steps (expression
	// evaluations and row visits) before aborting with a SQL error.
	// Counting steps instead of wall-clock time keeps campaigns
	// reproducible — the same statement trips the watchdog at the same
	// point on any machine (extends challenge C3).
	MaxStepsPerStmt int
}

// DefaultLimits are tuned for fuzzing throughput.
func DefaultLimits() Limits {
	return Limits{
		MaxRowsPerTable: 128,
		MaxResultRows:   512,
		MaxTriggerDepth: 4,
		MaxRewriteDepth: 8,
		MaxTriggerFires: 64,
		MaxStepsPerStmt: 1 << 20,
	}
}

// Config configures an Engine.
type Config struct {
	Dialect sqlt.Dialect
	Limits  Limits
	// EnableHazards arms the seeded bug corpus (bugs.go). Disarmed engines
	// are used by tests that exercise pure SQL semantics.
	EnableHazards bool
	// FaultRate arms the deterministic fault injector: each top-level
	// statement panics with a non-BugReport value with this probability
	// (fault.go). It models *organic* engine defects — the panics the
	// harness must contain without dying — and exists to prove crash
	// containment, not to find bugs. Zero disables injection.
	FaultRate float64
	// FaultSeed seeds the injector's private RNG (default 1), keeping
	// fault schedules reproducible per campaign.
	FaultSeed int64
	// DisablePlanCache turns off the compiled-plan execution layer: every
	// expression position runs the tree-walking interpreter directly, with
	// no compilation at all. The compiled path is coverage- and
	// result-equivalent by contract (compile.go), so this exists for
	// baseline comparison and as an escape hatch, not for correctness.
	DisablePlanCache bool
}

// session holds connection-scoped state.
type session struct {
	vars      map[string]Value
	globals   map[string]Value
	role      string
	listening map[string]bool
	notices   []string
	cursors   map[string]*cursor
	prepared  map[string]sqlast.Statement
	isolation string
	curDB     string
}

type cursor struct {
	name string
	rows [][]Value
	pos  int
}

func newSession() *session {
	return &session{
		vars:      map[string]Value{},
		globals:   map[string]Value{},
		listening: map[string]bool{},
		cursors:   map[string]*cursor{},
		prepared:  map[string]sqlast.Statement{},
		isolation: "READ COMMITTED",
		curDB:     "main",
	}
}

// Engine executes SQL test cases against a fresh in-memory database.
// An Engine is not safe for concurrent use; each fuzzing worker owns one.
type Engine struct {
	cfg     Config
	cat     *Catalog
	sess    *session
	tracer  *coverage.Tracer
	limits  Limits
	hazards []*Bug
	faults  *faultInjector

	// txnStack holds catalog snapshots: index 0 is the BEGIN snapshot,
	// later entries are savepoints (name in spNames).
	txnStack []*Catalog
	spNames  []string

	// execution bookkeeping
	typeWindow   []sqlt.Type // recent executed statement types (hazard matching)
	triggerDepth int
	triggerFires int // invocations within the current top-level statement
	rewriteDepth int
	stepsUsed    int // watchdog charge within the current top-level statement
	stmtIndex    int
	cteFrames    []map[string]*relation

	// rewrite-component flags for the case-study bug path
	inWCTERewrite     bool
	wcteNotifyRewrite bool

	// state flags observed by hazard conditions
	rowsInserted  int
	lastInsertTab string

	// outcome scratch buffers, reused across RunTestCase calls: the
	// returned Outcome slices into these, so they are valid only until
	// the next RunTestCase on the same engine (see Outcome docs).
	resBuf []*Result
	errBuf []error

	// compiled-plan state (plan_cache.go). The cache survives reset():
	// fuzzing replays near-identical statements across test cases, and
	// cross-case reuse is the point. schemaFP/fpValid memoize the catalog
	// structure fingerprint; any dispatch that can change structure marks
	// it dirty.
	plans    *planCache
	schemaFP uint64
	fpValid  bool

	// covBatch accumulates probe hits per statement and flushes them to
	// the tracer at statement end (or when full), replacing per-probe
	// tracer calls on the hot path.
	covBatch *coverage.Batch
}

// New creates an engine for the given configuration.
func New(cfg Config) *Engine {
	if cfg.Limits == (Limits{}) {
		cfg.Limits = DefaultLimits()
	}
	e := &Engine{
		cfg:      cfg,
		limits:   cfg.Limits,
		tracer:   coverage.NewTracer(),
		covBatch: coverage.NewBatch(covBatchCap), //lego:allow bufretain — the engine owns this batch for its lifetime; only Flush borrows its Sites
	}
	if cfg.EnableHazards {
		e.hazards = bugsFor(cfg.Dialect)
	}
	if cfg.FaultRate > 0 {
		e.faults = newFaultInjector(cfg.FaultRate, cfg.FaultSeed)
	}
	e.reset()
	return e
}

// Dialect returns the engine's dialect profile.
func (e *Engine) Dialect() sqlt.Dialect { return e.cfg.Dialect }

// Tracer exposes the engine's coverage tracer for feedback harvesting.
func (e *Engine) Tracer() *coverage.Tracer { return e.tracer }

// reset re-creates all database state for the next test case.
func (e *Engine) reset() {
	e.cat = NewCatalog()
	e.sess = newSession()
	e.txnStack = nil
	e.spNames = nil
	e.typeWindow = e.typeWindow[:0]
	e.triggerDepth = 0
	e.rewriteDepth = 0
	e.stmtIndex = 0
	e.cteFrames = nil
	e.inWCTERewrite = false
	e.wcteNotifyRewrite = false
	e.rowsInserted = 0
	e.lastInsertTab = ""
	e.fpValid = false
}

// covBatchCap sizes the per-engine hit batch; a batch that reaches it is
// flushed early so the buffer never grows past its pre-sizing.
const covBatchCap = 4096

// hit reports a probe site into the statement-local batch.
//
//lego:hotpath
func (e *Engine) hit(s coverage.Site) {
	e.covBatch.Add(s)
	if e.covBatch.Len() >= covBatchCap {
		e.tracer.Flush(e.covBatch)
	}
}

// flushCov drains pending probe hits into the tracer. ExecStmt defers it so
// the tracer is complete at statement end even when a hazard or injected
// fault panics mid-statement.
func (e *Engine) flushCov() {
	if e.covBatch.Len() > 0 {
		e.tracer.Flush(e.covBatch)
	}
}

// Result is the output of one statement.
type Result struct {
	Cols     []string
	Rows     [][]Value
	Affected int
	Msg      string
}

// Outcome summarizes one test-case execution.
type Outcome struct {
	// Crash is non-nil when a seeded hazard (or organic engine bug) fired.
	Crash *BugReport
	// Executed is the number of statements attempted.
	Executed int
	// Errors is the number of statements that returned a SQL error.
	Errors int
	// Results holds per-statement results (nil entry on error/crash).
	// The slice aliases an engine-owned scratch buffer: it is valid only
	// until the next RunTestCase call on the same engine. Callers that
	// need results across runs must copy the slice first.
	//
	//lego:borrowed valid until the next RunTestCase on the same engine
	Results []*Result
	// Errs holds per-statement errors (nil entry on success). Same
	// lifetime as Results: valid until the next RunTestCase call.
	//
	//lego:borrowed valid until the next RunTestCase on the same engine
	Errs []error
}

// RunTestCase executes the test case against a fresh database, recording
// coverage into the engine's tracer (which the caller is expected to have
// Reset). Seeded-bug panics are captured into the outcome; any other panic
// is re-raised, since it would be a genuine engine defect.
func (e *Engine) RunTestCase(tc sqlast.TestCase) (out Outcome) {
	e.reset()
	if cap(e.resBuf) < len(tc) {
		e.resBuf = make([]*Result, len(tc))
		e.errBuf = make([]error, len(tc))
	}
	out.Results = e.resBuf[:len(tc)]
	out.Errs = e.errBuf[:len(tc)]
	for i := range out.Results {
		out.Results[i] = nil
		out.Errs[i] = nil
	}
	defer func() {
		if r := recover(); r != nil {
			if br, ok := r.(*BugReport); ok {
				out.Crash = br
				return
			}
			panic(r)
		}
	}()
	for i, s := range tc {
		e.stmtIndex = i
		out.Executed++
		res, err := e.ExecStmt(s)
		if err != nil {
			out.Errors++
			out.Errs[i] = err
			continue
		}
		out.Results[i] = res
	}
	return out
}

// ExecStmt executes one statement against the current database state.
// Statement-level SQL errors are returned; seeded-bug crashes panic with a
// *BugReport (RunTestCase catches them).
func (e *Engine) ExecStmt(s sqlast.Statement) (*Result, error) {
	defer e.flushCov()
	e.hit(pDispatch)
	t := s.Type()
	if !e.cfg.Dialect.Supports(t) {
		e.hit(pDialectReject)
		return nil, errValue("%s: unsupported statement type %s", e.cfg.Dialect, t)
	}
	switch t.Category() {
	case sqlt.CatDDL:
		e.hit(pParseDDL)
	case sqlt.CatDML:
		e.hit(pParseDML)
	case sqlt.CatDQL:
		e.hit(pParseDQL)
	case sqlt.CatDCL:
		e.hit(pParseDCL)
	case sqlt.CatTCL:
		e.hit(pParseTCL)
	default:
		e.hit(pParseSession)
	}

	e.triggerFires = 0
	e.stepsUsed = 0
	if e.faults != nil {
		e.faults.beforeDispatch()
	}
	res, err := e.dispatch(s)
	if e.faults != nil {
		e.faults.afterDispatch()
	}

	// The type window records *attempted* statements: real DBMS crashes
	// often fire on error paths too.
	e.typeWindow = append(e.typeWindow, t)
	if len(e.typeWindow) > 8 {
		e.typeWindow = e.typeWindow[len(e.typeWindow)-8:]
	}
	if err != nil {
		e.hit(pStmtError)
	} else {
		e.hit(pStmtOK)
	}
	e.checkHazards(t, err)
	return res, err
}

func (e *Engine) dispatch(s sqlast.Statement) (*Result, error) {
	// Any DDL or TCL dispatch — including trigger- and procedure-nested ones,
	// which re-enter here — may change catalog structure, so the schema
	// fingerprint goes stale before execution. Marking by category is
	// deliberately coarse: recomputation is lazy and content-based, so a
	// no-op COMMIT costs one fingerprint walk, not a cache clear.
	switch s.Type().Category() {
	case sqlt.CatDDL, sqlt.CatTCL:
		e.fpValid = false
	}
	//lego:exhaustive Statement
	switch st := s.(type) {
	// DDL
	case *sqlast.CreateTableStmt:
		return e.execCreateTable(st)
	case *sqlast.CreateViewStmt:
		return e.execCreateView(st)
	case *sqlast.CreateIndexStmt:
		return e.execCreateIndex(st)
	case *sqlast.CreateTriggerStmt:
		return e.execCreateTrigger(st)
	case *sqlast.CreateSequenceStmt:
		return e.execCreateSequence(st)
	case *sqlast.CreateSchemaStmt:
		return e.execCreateSchema(st)
	case *sqlast.CreateFunctionStmt:
		return e.execCreateFunction(st)
	case *sqlast.CreateProcedureStmt:
		return e.execCreateProcedure(st)
	case *sqlast.CreateRuleStmt:
		return e.execCreateRule(st)
	case *sqlast.CreateDomainStmt:
		return e.execCreateDomain(st)
	case *sqlast.CreateTypeStmt:
		return e.execCreateType(st)
	case *sqlast.CreateExtensionStmt:
		return e.execCreateExtension(st)
	case *sqlast.CreateRoleStmt:
		return e.execCreateRole(st)
	case *sqlast.CreateDatabaseStmt:
		return e.execCreateDatabase(st)
	case *sqlast.AlterTableStmt:
		return e.execAlterTable(st)
	case *sqlast.AlterSimpleStmt:
		return e.execAlterSimple(st)
	case *sqlast.AlterSystemStmt:
		return e.execAlterSystem(st)
	case *sqlast.DropStmt:
		return e.execDrop(st)
	case *sqlast.RenameTableStmt:
		return e.execRenameTable(st)
	case *sqlast.TruncateStmt:
		return e.execTruncate(st)
	case *sqlast.CommentOnStmt:
		return e.execCommentOn(st)
	case *sqlast.ReindexStmt:
		return e.execReindex(st)
	case *sqlast.RefreshMatViewStmt:
		return e.execRefreshMatView(st)

	// DML
	case *sqlast.InsertStmt:
		return e.execInsert(st)
	case *sqlast.UpdateStmt:
		return e.execUpdate(st)
	case *sqlast.DeleteStmt:
		return e.execDelete(st)
	case *sqlast.MergeStmt:
		return e.execMerge(st)
	case *sqlast.CopyStmt:
		return e.execCopy(st)
	case *sqlast.LoadDataStmt:
		return e.execLoadData(st)
	case *sqlast.CallStmt:
		return e.execCall(st)
	case *sqlast.DoStmt:
		return e.execDo(st)

	// DQL
	case *sqlast.SelectStmt:
		return e.execSelectTop(st)
	case *sqlast.TableStmtNode:
		return e.execTableStmt(st)
	case *sqlast.ValuesStmtNode:
		return e.execValuesStmt(st)
	case *sqlast.WithStmt:
		return e.execWith(st)
	case *sqlast.ExplainStmt:
		return e.execExplain(st)
	case *sqlast.ShowStmt:
		return e.execShow(st)
	case *sqlast.DescribeStmt:
		return e.execDescribe(st)

	// DCL
	case *sqlast.GrantStmt:
		return e.execGrant(st)
	case *sqlast.SetRoleStmt:
		return e.execSetRole(st)

	// TCL
	case *sqlast.TxnStmt:
		return e.execTxn(st)
	case *sqlast.SetTransactionStmt:
		return e.execSetTransaction(st)
	case *sqlast.LockTableStmt:
		return e.execLockTable(st)

	// session
	case *sqlast.SetVarStmt:
		return e.execSetVar(st)
	case *sqlast.ResetVarStmt:
		return e.execResetVar(st)
	case *sqlast.PragmaStmt:
		return e.execPragma(st)
	case *sqlast.UseStmt:
		return e.execUse(st)
	case *sqlast.AnalyzeStmt:
		return e.execAnalyze(st)
	case *sqlast.VacuumStmt:
		return e.execVacuum(st)
	case *sqlast.MaintenanceStmt:
		return e.execMaintenance(st)
	case *sqlast.FlushStmt:
		return e.execFlush(st)
	case *sqlast.CheckpointStmt:
		return e.execCheckpoint(st)
	case *sqlast.DiscardStmt:
		return e.execDiscard(st)
	case *sqlast.PrepareStmt:
		return e.execPrepare(st)
	case *sqlast.ExecuteStmt:
		return e.execExecute(st)
	case *sqlast.DeallocateStmt:
		return e.execDeallocate(st)
	case *sqlast.DeclareCursorStmt:
		return e.execDeclareCursor(st)
	case *sqlast.FetchStmt:
		return e.execFetch(st)
	case *sqlast.CloseCursorStmt:
		return e.execCloseCursor(st)
	case *sqlast.ListenStmt:
		return e.execListen(st)
	case *sqlast.NotifyStmt:
		return e.execNotify(st)
	case *sqlast.UnlistenStmt:
		return e.execUnlisten(st)
	case *sqlast.ClusterStmt:
		return e.execCluster(st)

	default:
		return nil, errValue("unimplemented statement %T", s)
	}
}

// chargeStep charges one unit of evaluation work against the watchdog
// budget. Expression evaluation and per-row processing call it on their hot
// paths; once the per-statement budget is exhausted every further charge
// returns a SQL error, which unwinds the statement like any other execution
// error. A MaxStepsPerStmt <= 0 disables the watchdog.
func (e *Engine) chargeStep() error {
	if e.limits.MaxStepsPerStmt <= 0 {
		return nil
	}
	e.stepsUsed++
	if e.stepsUsed > e.limits.MaxStepsPerStmt {
		e.hit(pWatchdogTrip)
		return errValue("statement exceeded %d evaluation steps (watchdog)", e.limits.MaxStepsPerStmt)
	}
	return nil
}

// StmtProgress reports how many statements of the current (or last) test
// case have been entered, including one that panicked mid-execution. The
// harness uses it to account statements faithfully when containing an
// organic engine panic.
func (e *Engine) StmtProgress() int { return e.stmtIndex + 1 }

// FaultState exports the fault injector's RNG state (zero when injection is
// disabled) so containment rebuilds and checkpoints preserve the fault
// schedule instead of replaying it from the seed.
func (e *Engine) FaultState() uint64 {
	if e.faults == nil {
		return 0
	}
	return e.faults.state
}

// SetFaultState restores injector state exported by FaultState. It is a
// no-op when injection is disabled or state is zero.
func (e *Engine) SetFaultState(s uint64) {
	if e.faults != nil && s != 0 {
		e.faults.state = s
	}
}

// lookTable resolves a table name, returning a SQL error when missing.
func (e *Engine) lookTable(name string) (*Table, error) {
	if t, ok := e.cat.Tables[name]; ok {
		return t, nil
	}
	return nil, errValue("relation %q does not exist", name)
}

// checkPriv verifies the current role may perform priv on table. The default
// superuser (empty role) may do anything.
func (e *Engine) checkPriv(table, priv string) error {
	if e.sess.role == "" {
		return nil
	}
	e.hit(pAuthCheck)
	r, ok := e.cat.Roles[e.sess.role]
	if !ok {
		e.hit(pAuthDenied)
		return errValue("role %q does not exist", e.sess.role)
	}
	if r.Privs[table]["ALL"] || r.Privs[table][priv] {
		return nil
	}
	e.hit(pAuthDenied)
	return errValue("permission denied for %q on %q", priv, table)
}

// inTxn reports whether an explicit transaction is open.
func (e *Engine) inTxn() bool { return len(e.txnStack) > 0 }

// TypeWindow exposes the recent statement-type window (used by tests and by
// the hazard engine).
func (e *Engine) TypeWindow() []sqlt.Type { return e.typeWindow }
