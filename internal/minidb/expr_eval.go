package minidb

import (
	"math"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// scope is the name-resolution scope for expression evaluation. Scopes chain
// through parent for correlated subqueries.
type scope struct {
	row     map[string]Value
	group   []map[string]Value // rows of the current group for aggregates
	winVals map[*sqlast.FuncCall]Value
	fnArgs  map[string]Value // user-function parameters
	parent  *scope
}

// emptyScope is the shared binding-free scope for evaluating expressions
// that have no row context (INSERT values, column defaults, SET values).
// It is read-only by contract: eval never writes a scope, and every site
// that binds values constructs its own scope. Sharing one instance keeps
// those call sites allocation-free.
var emptyScope = &scope{row: map[string]Value{}}

func (s *scope) lookup(name string) (Value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.fnArgs != nil {
			if v, ok := sc.fnArgs[name]; ok {
				return v, true
			}
		}
		if sc.row != nil {
			if v, ok := sc.row[name]; ok {
				return v, true
			}
		}
	}
	return Value{}, false
}

const maxEvalDepth = 24

// eval evaluates e in scope sc.
func (e *Engine) eval(x sqlast.Expr, sc *scope, depth int) (Value, error) {
	if depth > maxEvalDepth {
		return Null(), errValue("expression nesting too deep")
	}
	if err := e.chargeStep(); err != nil {
		return Null(), err
	}
	switch v := x.(type) {
	case *sqlast.Literal:
		switch v.Kind {
		case sqlast.LitNull:
			return Null(), nil
		case sqlast.LitInt:
			return Int(v.Int), nil
		case sqlast.LitFloat:
			return Float(v.Float), nil
		case sqlast.LitString:
			return Text(v.Str), nil
		default:
			return Bool(v.Bool), nil
		}

	case *sqlast.ColRef:
		e.hit(pEvalColRef)
		key := v.Name
		if v.Table != "" {
			key = v.Table + "." + v.Name
		}
		if val, ok := sc.lookup(key); ok {
			return val, nil
		}
		// domain CHECK uses the pseudo-column VALUE
		if strings.EqualFold(v.Name, "VALUE") {
			if val, ok := sc.lookup("VALUE"); ok {
				return val, nil
			}
		}
		return Null(), errValue("column %q does not exist", key)

	case *sqlast.Star:
		return Null(), errValue("* is not valid in this context")

	case *sqlast.Unary:
		val, err := e.eval(v.X, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		switch v.Op {
		case "-":
			switch val.K {
			case KInt:
				return Int(-val.I), nil
			case KFloat:
				return Float(-val.F), nil
			case KNull:
				return Null(), nil
			default:
				if f, ok := val.numeric(); ok {
					return Float(-f), nil
				}
				return Null(), errValue("cannot negate %s", val.String())
			}
		case "NOT":
			if val.IsNull() {
				return Null(), nil
			}
			return Bool(!val.Truthy()), nil
		default:
			return val, nil
		}

	case *sqlast.Binary:
		return e.evalBinary(v, sc, depth)

	case *sqlast.IsNullExpr:
		e.hit(pEvalIsNull)
		val, err := e.eval(v.X, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		if v.Not {
			return Bool(!val.IsNull()), nil
		}
		return Bool(val.IsNull()), nil

	case *sqlast.LikeExpr:
		e.hit(pEvalLike)
		val, err := e.eval(v.X, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		pat, err := e.eval(v.Pattern, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		if val.IsNull() || pat.IsNull() {
			return Null(), nil
		}
		m := likeMatch(pat.String(), val.String())
		if v.Not {
			m = !m
		}
		return Bool(m), nil

	case *sqlast.BetweenExpr:
		e.hit(pEvalBetween)
		val, err := e.eval(v.X, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		lo, err := e.eval(v.Lo, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		hi, err := e.eval(v.Hi, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		if val.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		in := Compare(val, lo) >= 0 && Compare(val, hi) <= 0
		if v.Not {
			in = !in
		}
		return Bool(in), nil

	case *sqlast.InExpr:
		return e.evalIn(v, sc, depth)

	case *sqlast.CaseExpr:
		e.hit(pEvalCase)
		if v.Operand != nil {
			op, err := e.eval(v.Operand, sc, depth+1)
			if err != nil {
				return Null(), err
			}
			for _, w := range v.Whens {
				cv, err := e.eval(w.Cond, sc, depth+1)
				if err != nil {
					return Null(), err
				}
				if !cv.IsNull() && !op.IsNull() && Equal(op, cv) {
					return e.eval(w.Result, sc, depth+1)
				}
			}
		} else {
			for _, w := range v.Whens {
				cv, err := e.eval(w.Cond, sc, depth+1)
				if err != nil {
					return Null(), err
				}
				if cv.Truthy() {
					return e.eval(w.Result, sc, depth+1)
				}
			}
		}
		if v.Else != nil {
			e.hit(pEvalCaseElse)
			return e.eval(v.Else, sc, depth+1)
		}
		return Null(), nil

	case *sqlast.CastExpr:
		e.hit(pEvalCast)
		val, err := e.eval(v.X, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		return CoerceToColumn(v.TypeName, val), nil

	case *sqlast.Subquery:
		e.hit(pEvalSubquery)
		rows, _, err := e.execSelect(v.Query, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		if len(rows) == 0 {
			return Null(), nil
		}
		if len(rows[0]) == 0 {
			return Null(), nil
		}
		return rows[0][0], nil

	case *sqlast.ExistsExpr:
		e.hit(pEvalExists)
		rows, _, err := e.execSelect(v.Query, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		got := len(rows) > 0
		if v.Not {
			got = !got
		}
		return Bool(got), nil

	case *sqlast.FuncCall:
		return e.evalFunc(v, sc, depth)

	default:
		return Null(), errValue("unsupported expression %T", x)
	}
}

func (e *Engine) evalBinary(v *sqlast.Binary, sc *scope, depth int) (Value, error) {
	// Short-circuit three-valued logic.
	if v.Op == "AND" || v.Op == "OR" {
		e.hit(pEvalLogic)
		l, err := e.eval(v.L, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		if v.Op == "AND" {
			if !l.IsNull() && !l.Truthy() {
				return Bool(false), nil
			}
			r, err := e.eval(v.R, sc, depth+1)
			if err != nil {
				return Null(), err
			}
			if !r.IsNull() && !r.Truthy() {
				return Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return Null(), nil
			}
			return Bool(true), nil
		}
		if !l.IsNull() && l.Truthy() {
			return Bool(true), nil
		}
		r, err := e.eval(v.R, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		if !r.IsNull() && r.Truthy() {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Bool(false), nil
	}

	l, err := e.eval(v.L, sc, depth+1)
	if err != nil {
		return Null(), err
	}
	r, err := e.eval(v.R, sc, depth+1)
	if err != nil {
		return Null(), err
	}

	switch v.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		e.hit(pEvalCompare)
		if l.IsNull() || r.IsNull() {
			e.hit(pEvalCompareNull)
			return Null(), nil
		}
		c := Compare(l, r)
		switch v.Op {
		case "=":
			return Bool(c == 0), nil
		case "<>":
			return Bool(c != 0), nil
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}

	case "||":
		e.hit(pEvalConcat)
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		return Text(l.String() + r.String()), nil

	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			e.hit(pEvalArithNull)
			return Null(), nil
		}
		// integer fast path
		if l.K == KInt && r.K == KInt {
			e.hit(pEvalArithInt)
			switch v.Op {
			case "+":
				return Int(l.I + r.I), nil
			case "-":
				return Int(l.I - r.I), nil
			case "*":
				return Int(l.I * r.I), nil
			case "/":
				if r.I == 0 {
					e.hit(pEvalDivZero)
					return Null(), errValue("division by zero")
				}
				return Int(l.I / r.I), nil
			default:
				if r.I == 0 {
					e.hit(pEvalDivZero)
					return Null(), errValue("division by zero")
				}
				return Int(l.I % r.I), nil
			}
		}
		e.hit(pEvalArithFloat)
		fl, okL := l.numeric()
		fr, okR := r.numeric()
		if !okL || !okR {
			return Null(), errValue("non-numeric operand for %s", v.Op)
		}
		switch v.Op {
		case "+":
			return Float(fl + fr), nil
		case "-":
			return Float(fl - fr), nil
		case "*":
			return Float(fl * fr), nil
		case "/":
			if fr == 0 {
				e.hit(pEvalDivZero)
				return Null(), errValue("division by zero")
			}
			return Float(fl / fr), nil
		default:
			if fr == 0 {
				e.hit(pEvalDivZero)
				return Null(), errValue("division by zero")
			}
			return Float(math.Mod(fl, fr)), nil
		}
	default:
		return Null(), errValue("unknown operator %q", v.Op)
	}
}

func (e *Engine) evalIn(v *sqlast.InExpr, sc *scope, depth int) (Value, error) {
	e.hit(pEvalIn)
	val, err := e.eval(v.X, sc, depth+1)
	if err != nil {
		return Null(), err
	}
	var candidates []Value
	if v.Query != nil {
		e.hit(pEvalInSubq)
		rows, _, err := e.execSelect(v.Query, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		for _, r := range rows {
			if len(r) > 0 {
				candidates = append(candidates, r[0])
			}
		}
	} else {
		for _, le := range v.List {
			cv, err := e.eval(le, sc, depth+1)
			if err != nil {
				return Null(), err
			}
			candidates = append(candidates, cv)
		}
	}
	if val.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if Equal(val, c) {
			if v.Not {
				return Bool(false), nil
			}
			return Bool(true), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(v.Not), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for {
		if p == "" {
			return s == ""
		}
		switch p[0] {
		case '%':
			for p != "" && p[0] == '%' {
				p = p[1:]
			}
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if s == "" || !equalFoldByte(p[0], s[0]) {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
}

func equalFoldByte(a, b byte) bool {
	if a >= 'A' && a <= 'Z' {
		a += 'a' - 'A'
	}
	if b >= 'A' && b <= 'Z' {
		b += 'a' - 'A'
	}
	return a == b
}
