package minidb

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func TestAlterSystemAndRoles(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
ALTER SYSTEM SET max_connections = 10;
CREATE ROLE r1 WITH LOGIN;
ALTER ROLE r1 WITH NOLOGIN;
CREATE DATABASE d1;
ALTER DATABASE d1 SET opt;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if e.sess.globals["max_connections"].I != 10 {
		t.Fatal("ALTER SYSTEM must set the global")
	}
	if e.cat.Roles["r1"].Option != "NOLOGIN" {
		t.Fatal("ALTER ROLE must update the option")
	}
}

func TestSchemasExtensionsTypes(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE SCHEMA app;
CREATE SCHEMA app;
DROP SCHEMA app;
CREATE EXTENSION pgcrypto;
CREATE EXTENSION pgcrypto;
DROP EXTENSION pgcrypto;
CREATE TYPE mood AS ENUM ('a', 'b');
DROP TYPE mood;
DROP TYPE mood;
`))
	for _, i := range []int{1, 4, 8} {
		if out.Errs[i] == nil {
			t.Errorf("stmt %d (duplicate/missing) should error", i)
		}
	}
	for _, i := range []int{0, 2, 3, 5, 6, 7} {
		if out.Errs[i] != nil {
			t.Errorf("stmt %d failed: %v", i, out.Errs[i])
		}
	}
}

func TestAlterViewIndexSequence(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
CREATE VIEW v AS SELECT a FROM t;
ALTER VIEW v RENAME TO v2;
CREATE INDEX i ON t (a);
ALTER INDEX i RENAME TO i2;
CREATE SEQUENCE s START WITH 1;
ALTER SEQUENCE s RESTART WITH 100;
SELECT NEXTVAL('s');
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if _, exists := e.cat.Views["v2"]; !exists {
		t.Fatal("view rename lost")
	}
	if _, exists := e.cat.Indexes["i2"]; !exists {
		t.Fatal("index rename lost")
	}
	if got := lastResult(t, out).Rows[0][0].I; got != 101 {
		t.Fatalf("restarted sequence nextval = %d, want 101", got)
	}
}

func TestRenameTableMySQLForm(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE log (n INT);
CREATE TABLE old (a INT);
CREATE TRIGGER tg AFTER INSERT ON old FOR EACH ROW INSERT INTO log VALUES (1);
RENAME TABLE old TO new;
INSERT INTO new VALUES (5);
`))
	for i, err := range out.Errs {
		if err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	if e.cat.Triggers["tg"].Table != "new" {
		t.Fatal("rename must retarget triggers")
	}
}

func TestSetTransactionModes(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
SET TRANSACTION ISOLATION LEVEL SERIALIZABLE;
SET TRANSACTION ISOLATION LEVEL NOT A LEVEL;
`))
	if out.Errs[0] != nil {
		t.Fatalf("valid isolation failed: %v", out.Errs[0])
	}
	if out.Errs[1] == nil {
		t.Fatal("bogus isolation must fail")
	}
	if e.sess.isolation != "SERIALIZABLE" {
		t.Fatal("isolation not recorded")
	}
}

func TestExplainDMLPlans(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
EXPLAIN INSERT INTO t VALUES (1);
EXPLAIN UPDATE t SET a = 2;
EXPLAIN DELETE FROM t;
EXPLAIN ANALYZE INSERT INTO t VALUES (9);
SELECT COUNT(*) FROM t;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if out.Results[1].Rows[0][0].S != "Insert on t" {
		t.Fatalf("insert plan = %v", out.Results[1].Rows)
	}
	// EXPLAIN ANALYZE executes; plain EXPLAIN does not.
	if got := lastResult(t, out).Rows[0][0].I; got != 1 {
		t.Fatalf("row count = %d: only EXPLAIN ANALYZE should execute", got)
	}
}

func TestGrantOnViewAndRevoke(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
CREATE VIEW v AS SELECT a FROM t;
CREATE ROLE r;
GRANT SELECT ON v TO r;
GRANT ALL ON t TO r;
REVOKE ALL ON t FROM r;
SET ROLE r;
INSERT INTO t VALUES (1);
`))
	if out.Errs[3] != nil || out.Errs[4] != nil || out.Errs[5] != nil {
		t.Fatalf("grant plumbing failed: %v", out.Errs)
	}
	if out.Errs[7] == nil {
		t.Fatal("revoked insert must fail")
	}
}

func TestUnlistenStar(t *testing.T) {
	e := newPG(t)
	run(t, e, `
LISTEN a;
LISTEN b;
UNLISTEN *;
NOTIFY a;
NOTIFY b;
`)
	if len(e.sess.notices) != 0 {
		t.Fatalf("UNLISTEN * must clear all channels: %v", e.sess.notices)
	}
}

func TestNTileWindow(t *testing.T) {
	rows := query(t, `
CREATE TABLE w (v INT);
INSERT INTO w VALUES (1), (2), (3), (4);
`, "SELECT NTILE(2) OVER (ORDER BY v) FROM w ORDER BY 1")
	if len(rows) != 4 || rows[0][0].I != 1 || rows[3][0].I != 2 {
		t.Fatalf("ntile rows = %v", rows)
	}
}

func TestTableStmtOnView(t *testing.T) {
	rows := query(t, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1), (2);
CREATE VIEW v AS SELECT a FROM t WHERE a > 1;
`, "TABLE v")
	if len(rows) != 1 {
		t.Fatalf("TABLE over view = %v", rows)
	}
}

func TestCheckTableDetectsCorruption(t *testing.T) {
	// CHECK TABLE is a pure read; force "corruption" by bypassing
	// constraint checks through direct state manipulation.
	e := New(Config{Dialect: sqlt.DialectMySQL})
	run(t, e, "CREATE TABLE t (a INT UNIQUE);")
	tbl := e.cat.Tables["t"]
	tbl.Rows = append(tbl.Rows, []Value{Int(1)}, []Value{Int(1)})
	res, err := e.ExecStmt(sqlparse.MustParse("CHECK TABLE t"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Msg != "CHECK: corrupt" {
		t.Fatalf("msg = %q", res.Msg)
	}
}

func TestTempTableFlagAndDiscardTemp(t *testing.T) {
	e := newPG(t)
	run(t, e, `
CREATE TEMPORARY TABLE tt (a INT);
DISCARD TEMP;
`)
	if _, exists := e.cat.Tables["tt"]; exists {
		t.Fatal("DISCARD TEMP must drop temporary tables")
	}
}

func TestMaintenanceSetsAnalyzed(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL})
	run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
OPTIMIZE TABLE t;
`)
	if !e.cat.Tables["t"].analyzed {
		t.Fatal("OPTIMIZE must refresh statistics")
	}
}

func TestCreateTriggerOnMissingTable(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(
		"CREATE TRIGGER tg AFTER INSERT ON missing FOR EACH ROW DELETE FROM missing;"))
	if out.Errors != 1 {
		t.Fatal("trigger on missing table must fail")
	}
}

func TestCreateViewValidatesQuery(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(
		"CREATE VIEW v AS SELECT nope FROM missing;"))
	if out.Errors != 1 {
		t.Fatal("view over missing table must fail at creation")
	}
}

func TestGroupConcatMultiple(t *testing.T) {
	rows := query(t, `
CREATE TABLE g (v TEXT);
INSERT INTO g VALUES ('a'), ('b'), ('c');
`, "SELECT GROUP_CONCAT(v) FROM g")
	if rows[0][0].S != "a,b,c" {
		t.Fatalf("group_concat = %q", rows[0][0].S)
	}
}

func TestCorrelatedSubquery(t *testing.T) {
	rows := query(t, `
CREATE TABLE o (id INT, g INT);
INSERT INTO o VALUES (1, 1), (2, 1), (3, 2);
`, "SELECT id FROM o WHERE id = (SELECT MAX(id) FROM o AS i WHERE i.g = o.g) ORDER BY id")
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Fatalf("correlated rows = %v", rows)
	}
}
