package minidb

import (
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// query runs a setup script followed by one query and returns its rows.
func query(t *testing.T, setup, q string) [][]Value {
	t.Helper()
	e := newPG(t)
	script := setup + "\n" + q + ";"
	tc := sqlparse.MustParseScript(script)
	out := e.RunTestCase(tc)
	if out.Crash != nil {
		t.Fatalf("crash: %v", out.Crash)
	}
	for i, err := range out.Errs {
		if err != nil {
			t.Fatalf("stmt %d (%s): %v", i, tc[i].SQL(), err)
		}
	}
	return out.Results[len(out.Results)-1].Rows
}

const abSetup = `
CREATE TABLE t (a INT, b TEXT);
INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x'), (NULL, 'z');
`

func TestWhereSemantics(t *testing.T) {
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT a FROM t WHERE a > 1", 2},
		{"SELECT a FROM t WHERE a >= 1", 3},
		{"SELECT a FROM t WHERE a = 2", 1},
		{"SELECT a FROM t WHERE a <> 2", 2}, // NULL row drops out
		{"SELECT a FROM t WHERE b = 'x'", 2},
		{"SELECT a FROM t WHERE a IS NULL", 1},
		{"SELECT a FROM t WHERE a IS NOT NULL", 3},
		{"SELECT a FROM t WHERE a BETWEEN 1 AND 2", 2},
		{"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 2", 1},
		{"SELECT a FROM t WHERE a IN (1, 3)", 2},
		{"SELECT a FROM t WHERE a NOT IN (1, 3)", 1},
		{"SELECT a FROM t WHERE b LIKE 'x'", 2},
		{"SELECT a FROM t WHERE b LIKE '%'", 4},
		{"SELECT a FROM t WHERE b NOT LIKE 'x'", 2},
		{"SELECT a FROM t WHERE a = 1 OR b = 'y'", 2},
		{"SELECT a FROM t WHERE a = 1 AND b = 'x'", 1},
		{"SELECT a FROM t WHERE NOT (a = 1)", 2},
	}
	for _, c := range cases {
		rows := query(t, abSetup, c.q)
		if len(rows) != c.want {
			t.Errorf("%s: %d rows, want %d", c.q, len(rows), c.want)
		}
	}
}

func TestNullThreeValuedLogic(t *testing.T) {
	// NULL = NULL is NULL, not true.
	rows := query(t, abSetup, "SELECT a FROM t WHERE a = NULL")
	if len(rows) != 0 {
		t.Fatalf("a = NULL matched %d rows", len(rows))
	}
	// x IN (..., NULL) with no match is NULL, not false -> NOT IN excludes.
	rows = query(t, abSetup, "SELECT a FROM t WHERE a NOT IN (99, NULL)")
	if len(rows) != 0 {
		t.Fatalf("NOT IN with NULL matched %d rows", len(rows))
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"1 + 2", Int(3)},
		{"7 - 10", Int(-3)},
		{"6 * 7", Int(42)},
		{"7 / 2", Int(3)},
		{"7 % 3", Int(1)},
		{"7.0 / 2", Float(3.5)},
		{"1 + 2.5", Float(3.5)},
		{"'a' || 'b'", Text("ab")},
		{"1 || 2", Text("12")},
		{"- 5 + 2", Int(-3)},
		{"NULL + 1", Null()},
		{"2 < 3", Bool(true)},
		{"2 >= 3", Bool(false)},
		{"'abc' = 'abc'", Bool(true)},
	}
	for _, c := range cases {
		rows := query(t, "", "SELECT "+c.expr)
		if len(rows) != 1 || len(rows[0]) != 1 {
			t.Fatalf("%s: rows = %v", c.expr, rows)
		}
		got := rows[0][0]
		if got.K != c.want.K || !((got.IsNull() && c.want.IsNull()) || Equal(got, c.want)) {
			t.Errorf("%s = %v (%d), want %v (%d)", c.expr, got, got.K, c.want, c.want.K)
		}
	}
}

func TestDivisionByZeroIsError(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript("SELECT 1 / 0;"))
	if out.Errors != 1 {
		t.Fatal("division by zero must be a SQL error")
	}
	out = e.RunTestCase(sqlparse.MustParseScript("SELECT 1 % 0;"))
	if out.Errors != 1 {
		t.Fatal("modulo by zero must be a SQL error")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	cases := []struct {
		expr, want string
	}{
		{"ABS(-4)", "4"},
		{"LENGTH('hello')", "5"},
		{"UPPER('aBc')", "ABC"},
		{"LOWER('aBc')", "abc"},
		{"TRIM('  x  ')", "x"},
		{"SUBSTR('hello', 2, 3)", "ell"},
		{"REPLACE('aaa', 'a', 'b')", "bbb"},
		{"COALESCE(NULL, NULL, 7)", "7"},
		{"NULLIF(3, 3)", "NULL"},
		{"NULLIF(3, 4)", "3"},
		{"ROUND(2.567, 1)", "2.6"},
		{"FLOOR(2.9)", "2"},
		{"CEIL(2.1)", "3"},
		{"MOD(7, 3)", "1"},
		{"TYPEOF(1)", "integer"},
		{"TYPEOF('x')", "text"},
		{"TYPEOF(NULL)", "null"},
		{"GREATEST(1, 9, 4)", "9"},
		{"LEAST(5, 2, 8)", "2"},
		{"CAST('12' AS INT)", "12"},
		{"CAST(3.7 AS TEXT)", "3.7"},
	}
	for _, c := range cases {
		rows := query(t, "", "SELECT "+c.expr)
		if got := rows[0][0].String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestAggregates(t *testing.T) {
	cases := []struct {
		q, want string
	}{
		{"SELECT COUNT(*) FROM t", "4"},
		{"SELECT COUNT(a) FROM t", "3"}, // NULLs excluded
		{"SELECT COUNT(DISTINCT b) FROM t", "3"},
		{"SELECT SUM(a) FROM t", "6"},
		{"SELECT AVG(a) FROM t", "2"},
		{"SELECT MIN(a) FROM t", "1"},
		{"SELECT MAX(a) FROM t", "3"},
		{"SELECT GROUP_CONCAT(b) FROM t WHERE a = 1", "x"},
		{"SELECT COUNT(*) FROM t WHERE a > 100", "0"},
		{"SELECT SUM(a) FROM t WHERE a > 100", "NULL"},
		{"SELECT TOTAL(a) FROM t WHERE a > 100", "0"},
	}
	for _, c := range cases {
		rows := query(t, abSetup, c.q)
		if len(rows) != 1 {
			t.Fatalf("%s: %d rows", c.q, len(rows))
		}
		if got := rows[0][0].String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.q, got, c.want)
		}
	}
}

func TestGroupByHaving(t *testing.T) {
	rows := query(t, abSetup, "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 1 ORDER BY b")
	if len(rows) != 1 || rows[0][0].S != "x" || rows[0][1].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// GROUP BY ordinal
	rows = query(t, abSetup, "SELECT b, COUNT(*) FROM t GROUP BY 1 ORDER BY 1")
	if len(rows) != 3 {
		t.Fatalf("group-by-ordinal rows = %v", rows)
	}
}

func TestOrderLimitOffset(t *testing.T) {
	rows := query(t, abSetup, "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a DESC")
	if rows[0][0].I != 3 || rows[2][0].I != 1 {
		t.Fatalf("rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a LIMIT 2")
	if len(rows) != 2 || rows[1][0].I != 2 {
		t.Fatalf("rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a LIMIT 2 OFFSET 2")
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Fatalf("rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT a FROM t ORDER BY 1 LIMIT 10 OFFSET 99")
	if len(rows) != 0 {
		t.Fatalf("offset past end = %v", rows)
	}
}

func TestOrderByProjectedAwayColumn(t *testing.T) {
	// The paper's Figure 1 seed: SELECT v2 FROM t1 ORDER BY v1 — the order
	// column is not in the projection.
	rows := query(t, `
CREATE TABLE t1 (v1 INT, v2 INT);
INSERT INTO t1 VALUES (3, 100), (1, 300), (2, 200);
`, "SELECT v2 FROM t1 ORDER BY v1")
	if len(rows) != 3 || rows[0][0].I != 300 || rows[1][0].I != 200 || rows[2][0].I != 100 {
		t.Fatalf("rows = %v", rows)
	}
	// output alias shadows the source column of the same name
	rows = query(t, `
CREATE TABLE s (a INT, b INT);
INSERT INTO s VALUES (1, 9), (2, 8);
`, "SELECT b AS a FROM s ORDER BY a")
	if rows[0][0].I != 8 || rows[1][0].I != 9 {
		t.Fatalf("alias shadow rows = %v", rows)
	}
}

func TestDistinctAndSetOps(t *testing.T) {
	rows := query(t, abSetup, "SELECT DISTINCT b FROM t")
	if len(rows) != 3 {
		t.Fatalf("distinct rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT b FROM t UNION SELECT b FROM t")
	if len(rows) != 3 {
		t.Fatalf("union rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT b FROM t UNION ALL SELECT b FROM t")
	if len(rows) != 8 {
		t.Fatalf("union all rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT b FROM t EXCEPT SELECT 'x'")
	if len(rows) != 2 {
		t.Fatalf("except rows = %v", rows)
	}
	rows = query(t, abSetup, "SELECT b FROM t INTERSECT SELECT 'x'")
	if len(rows) != 1 {
		t.Fatalf("intersect rows = %v", rows)
	}
}

func TestSubqueries(t *testing.T) {
	rows := query(t, abSetup, "SELECT (SELECT MAX(a) FROM t)")
	if rows[0][0].I != 3 {
		t.Fatalf("scalar subquery = %v", rows)
	}
	rows = query(t, abSetup, "SELECT a FROM t WHERE a = (SELECT MIN(a) FROM t)")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("subquery predicate = %v", rows)
	}
	rows = query(t, abSetup, "SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE b = 'x')")
	if len(rows) != 2 {
		t.Fatalf("IN subquery = %v", rows)
	}
	rows = query(t, abSetup, "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM t WHERE b = 'zzz')")
	if len(rows) != 0 {
		t.Fatalf("EXISTS false = %v", rows)
	}
	rows = query(t, abSetup, "SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) AS sub ORDER BY x")
	if len(rows) != 2 || rows[0][0].I != 2 {
		t.Fatalf("derived table = %v", rows)
	}
}

func TestWindowFunctions(t *testing.T) {
	setup := `
CREATE TABLE w (g INT, v INT);
INSERT INTO w VALUES (1, 10), (1, 20), (2, 30);
`
	rows := query(t, setup, "SELECT ROW_NUMBER() OVER (PARTITION BY g ORDER BY v) FROM w")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	rows = query(t, setup, "SELECT v, RANK() OVER (ORDER BY v DESC) FROM w ORDER BY v")
	if rows[0][1].I != 3 || rows[2][1].I != 1 {
		t.Fatalf("rank rows = %v", rows)
	}
	rows = query(t, setup, "SELECT SUM(v) OVER (PARTITION BY g) FROM w ORDER BY 1")
	if rows[0][0].I != 30 || rows[2][0].I != 30 {
		t.Fatalf("sum-over rows = %v", rows)
	}
	rows = query(t, setup, "SELECT LEAD(v) OVER (ORDER BY v) FROM w ORDER BY 1 DESC")
	if !rows[2][0].IsNull() {
		t.Fatalf("lead rows = %v", rows)
	}
}

func TestDefaultsAndCoercion(t *testing.T) {
	setup := `
CREATE TABLE d (a INT DEFAULT 7, b TEXT DEFAULT 'dd', c FLOAT);
INSERT INTO d (c) VALUES (1.5);
INSERT INTO d DEFAULT VALUES;
`
	rows := query(t, setup, "SELECT a, b, c FROM d ORDER BY c")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// NULL sorts lowest, so the all-defaults row comes first
	if rows[0][0].I != 7 || rows[0][1].S != "dd" || !rows[0][2].IsNull() {
		t.Fatalf("defaults row = %v", rows[0])
	}
	// affinity coercion: text into INT column
	rows = query(t, "CREATE TABLE c1 (a INT);\nINSERT INTO c1 VALUES ('12');", "SELECT a FROM c1")
	if rows[0][0].K != KInt || rows[0][0].I != 12 {
		t.Fatalf("coerced value = %+v", rows[0][0])
	}
}

func TestViewsExpandLive(t *testing.T) {
	setup := `
CREATE TABLE base (a INT);
INSERT INTO base VALUES (1);
CREATE VIEW v AS SELECT a FROM base WHERE a > 0;
INSERT INTO base VALUES (2);
`
	rows := query(t, setup, "SELECT COUNT(*) FROM v")
	if rows[0][0].I != 2 {
		t.Fatalf("live view must see later inserts: %v", rows)
	}
}

func TestMaterializedViewFreshness(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE base (a INT);
INSERT INTO base VALUES (1);
CREATE MATERIALIZED VIEW mv AS SELECT a FROM base;
INSERT INTO base VALUES (2);
SELECT COUNT(*) FROM mv;
REFRESH MATERIALIZED VIEW mv;
SELECT COUNT(*) FROM mv;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if out.Results[4].Rows[0][0].I != 1 {
		t.Fatal("matview must be stale before refresh")
	}
	if out.Results[6].Rows[0][0].I != 2 {
		t.Fatal("matview must be fresh after refresh")
	}
}

func TestRulesRewriteDML(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE audit (n INT);
CREATE TABLE prot (a INT);
CREATE RULE guard AS ON INSERT TO prot DO INSTEAD INSERT INTO audit VALUES (1);
INSERT INTO prot VALUES (42);
SELECT COUNT(*) FROM prot;
SELECT COUNT(*) FROM audit;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if out.Results[4].Rows[0][0].I != 0 {
		t.Fatal("INSTEAD rule must suppress the base insert")
	}
	if out.Results[5].Rows[0][0].I != 1 {
		t.Fatal("rule action must run")
	}
}

func TestRuleDoNothing(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE p (a INT);
CREATE RULE r AS ON DELETE TO p DO INSTEAD NOTHING;
INSERT INTO p VALUES (1);
DELETE FROM p;
SELECT COUNT(*) FROM p;
`)
	if got := lastResult(t, out).Rows[0][0].I; got != 1 {
		t.Fatalf("DO INSTEAD NOTHING must keep the row, got count %d", got)
	}
}

func TestSequencesAndFunctions(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE SEQUENCE s START WITH 10 INCREMENT BY 5;
SELECT NEXTVAL('s');
SELECT NEXTVAL('s');
SELECT CURRVAL('s');
CREATE FUNCTION add3(x) RETURNS INT AS (x + 3);
SELECT add3(4);
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if out.Results[1].Rows[0][0].I != 15 || out.Results[2].Rows[0][0].I != 20 {
		t.Fatal("sequence values wrong")
	}
	if out.Results[3].Rows[0][0].I != 20 {
		t.Fatal("currval wrong")
	}
	if out.Results[5].Rows[0][0].I != 7 {
		t.Fatal("user function wrong")
	}
}

func TestPreparedAndCursors(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1), (2), (3);
PREPARE q AS SELECT a FROM t ORDER BY a;
EXECUTE q;
DECLARE c CURSOR FOR SELECT a FROM t ORDER BY a;
FETCH 2 FROM c;
FETCH 2 FROM c;
CLOSE c;
DEALLOCATE q;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if len(out.Results[3].Rows) != 3 {
		t.Fatal("execute must run the prepared query")
	}
	if len(out.Results[5].Rows) != 2 || len(out.Results[6].Rows) != 1 {
		t.Fatal("cursor pagination wrong")
	}
}

func TestPrivileges(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE sec (a INT);
INSERT INTO sec VALUES (1);
CREATE ROLE alice;
SET ROLE alice;
SELECT * FROM sec;
SET ROLE NONE;
GRANT SELECT ON sec TO alice;
SET ROLE alice;
SELECT * FROM sec;
INSERT INTO sec VALUES (2);
`))
	if out.Crash != nil {
		t.Fatalf("crash: %v", out.Crash)
	}
	if out.Errs[4] == nil {
		t.Fatal("unprivileged select must fail")
	}
	if out.Errs[8] != nil {
		t.Fatalf("granted select must pass: %v", out.Errs[8])
	}
	if out.Errs[9] == nil {
		t.Fatal("ungranted insert must fail")
	}
}

func TestAlterTableLifecycle(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
ALTER TABLE t ADD COLUMN b TEXT DEFAULT 'n';
SELECT b FROM t;
ALTER TABLE t RENAME COLUMN b TO c;
SELECT c FROM t;
ALTER TABLE t ALTER COLUMN a TYPE TEXT;
ALTER TABLE t DROP COLUMN c;
ALTER TABLE t RENAME TO u;
SELECT a FROM u;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if out.Results[3].Rows[0][0].S != "n" {
		t.Fatal("added column must be backfilled with its default")
	}
	if out.Results[9].Rows[0][0].K != KText {
		t.Fatal("column type change must rewrite stored values")
	}
}

func TestCopyToAndFrom(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT, b TEXT);
INSERT INTO t VALUES (1, 'x');
COPY t TO STDOUT CSV;
COPY (SELECT a FROM t) TO STDOUT;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if len(out.Results[2].Rows) != 1 {
		t.Fatal("COPY TO must dump the table")
	}
}

func TestDialectSpecificStatements(t *testing.T) {
	my := New(Config{Dialect: sqlt.DialectMySQL})
	out := my.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
REPLACE INTO t VALUES (2);
OPTIMIZE TABLE t;
CHECK TABLE t;
FLUSH TABLES;
DESCRIBE t;
SHOW TABLES;
USE main;
LOAD DATA INFILE 'f.csv' INTO TABLE t;
SELECT COUNT(*) FROM t;
`))
	if out.Crash != nil {
		t.Fatalf("crash: %v", out.Crash)
	}
	for i, err := range out.Errs {
		if err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	// 1 insert + 1 replace + 3 load-data rows
	if got := out.Results[10].Rows[0][0].I; got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestNotifyListen(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
LISTEN ch;
NOTIFY ch, 'hello';
UNLISTEN ch;
NOTIFY ch, 'dropped';
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if len(e.sess.notices) != 1 || e.sess.notices[0] != "ch:hello" {
		t.Fatalf("notices = %v", e.sess.notices)
	}
}

func TestExplainTakesPlannerPaths(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
CREATE INDEX i ON t (a);
INSERT INTO t VALUES (1);
EXPLAIN SELECT * FROM t WHERE a = 1;
EXPLAIN SELECT * FROM t WHERE a > 0;
EXPLAIN ANALYZE SELECT COUNT(*) FROM t;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	idx := out.Results[3].Rows
	if len(idx) == 0 || idx[0][0].S != "Index Scan using i on t" {
		t.Fatalf("plan = %v", idx)
	}
	scan := out.Results[4].Rows
	if scan[0][0].S != "Seq Scan on t" {
		t.Fatalf("plan = %v", scan)
	}
}

func TestMergeStatement(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMariaDB})
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE tgt (id INT, v INT);
CREATE TABLE src (id INT, v INT);
INSERT INTO tgt VALUES (1, 10);
INSERT INTO src VALUES (1, 99), (2, 20);
MERGE INTO tgt USING src ON tgt.id = src.id WHEN MATCHED THEN UPDATE SET v = 0 WHEN NOT MATCHED THEN INSERT VALUES (2, 20);
SELECT v FROM tgt ORDER BY id;
`))
	for i, err := range out.Errs {
		if err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	rows := out.Results[5].Rows
	if len(rows) != 2 || rows[0][0].I != 0 || rows[1][0].I != 20 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWritableCTE(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
WITH ins AS (INSERT INTO t VALUES (1)) SELECT COUNT(*) FROM t;
SELECT COUNT(*) FROM t;
`)
	if out.Errors != 0 {
		t.Fatalf("errors: %v", out.Errs)
	}
	if got := out.Results[2].Rows[0][0].I; got != 1 {
		t.Fatalf("writable CTE insert lost: count = %d", got)
	}
}

func TestTableAndValuesStatements(t *testing.T) {
	rows := query(t, abSetup, "TABLE t")
	if len(rows) != 4 {
		t.Fatalf("TABLE stmt rows = %v", rows)
	}
	e := newPG(t)
	out := run(t, e, "VALUES (1, 'a'), (2, 'b');")
	if len(out.Results[0].Rows) != 2 {
		t.Fatal("VALUES statement rows")
	}
}

func TestTruncateResetsAndCountsRows(t *testing.T) {
	e := newPG(t)
	out := run(t, e, `
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1), (2);
TRUNCATE TABLE t;
SELECT COUNT(*) FROM t;
`)
	if out.Results[2].Affected != 2 {
		t.Fatal("truncate must report removed rows")
	}
	if out.Results[3].Rows[0][0].I != 0 {
		t.Fatal("table must be empty")
	}
}

func TestUniqueIndexEnforcement(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE t (a INT);
INSERT INTO t VALUES (1);
CREATE UNIQUE INDEX u ON t (a);
INSERT INTO t VALUES (1);
INSERT INTO t VALUES (2);
CREATE TABLE d (a INT);
INSERT INTO d VALUES (3), (3);
CREATE UNIQUE INDEX du ON d (a);
`))
	if out.Errs[3] == nil {
		t.Fatal("duplicate insert against unique index must fail")
	}
	if out.Errs[4] != nil {
		t.Fatal("distinct insert must pass")
	}
	if out.Errs[7] == nil {
		t.Fatal("creating a unique index over duplicates must fail")
	}
}

func TestForeignKeyEnforcement(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE TABLE parent (id INT PRIMARY KEY);
CREATE TABLE child (pid INT REFERENCES parent(id));
INSERT INTO parent VALUES (1);
INSERT INTO child VALUES (1);
INSERT INTO child VALUES (99);
INSERT INTO child VALUES (NULL);
`))
	if out.Errs[3] != nil {
		t.Fatalf("valid FK insert failed: %v", out.Errs[3])
	}
	if out.Errs[4] == nil {
		t.Fatal("dangling FK insert must fail")
	}
	if out.Errs[5] != nil {
		t.Fatal("NULL FK insert must pass")
	}
}

func TestDomainsAndEnums(t *testing.T) {
	e := newPG(t)
	out := e.RunTestCase(sqlparse.MustParseScript(`
CREATE DOMAIN pos AS INT CHECK (VALUE > 0);
CREATE TYPE mood AS ENUM ('sad', 'happy');
CREATE TABLE t (a pos, m mood);
INSERT INTO t VALUES (5, 'happy');
INSERT INTO t VALUES (-1, 'sad');
`))
	if out.Errs[3] != nil {
		t.Fatalf("valid domain insert failed: %v", out.Errs[3])
	}
	if out.Errs[4] == nil {
		t.Fatal("domain check violation must fail")
	}
}

func TestSessionVarsAndPragma(t *testing.T) {
	my := New(Config{Dialect: sqlt.DialectMySQL})
	out := my.RunTestCase(sqlparse.MustParseScript(`
SET SESSION sql_mode = 'x';
SHOW sql_mode;
RESET sql_mode;
SHOW sql_mode;
`))
	if out.Results[1].Rows[0][0].S != "x" {
		t.Fatal("session var must round trip")
	}
	if !out.Results[3].Rows[0][0].IsNull() {
		t.Fatal("reset must clear the var")
	}

	co := New(Config{Dialect: sqlt.DialectComdb2})
	out = co.RunTestCase(sqlparse.MustParseScript(`
PRAGMA foreign_keys = 1;
PRAGMA foreign_keys;
`))
	if out.Results[1].Rows[0][0].I != 1 {
		t.Fatal("pragma must round trip")
	}
}
