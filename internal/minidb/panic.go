package minidb

import (
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// This file converts *organic* panics — any panic that is not a seeded
// *BugReport — into synthetic BugReports so they flow through the same
// oracle/dedup pipeline as seeded crashes. With AFL++ an organic DBMS defect
// produces an ASAN report with a call stack; here the Go panic's stack,
// normalized to bare frame names, plays that role.

// maxOrganicFrames bounds the normalized stack so dedup keys stay stable
// even when the panic site sits under deep recursion.
const maxOrganicFrames = 8

// modulePrefix is stripped from frame names: frames render as
// "minidb.(*Engine).dispatch" rather than full import paths.
const modulePrefix = "github.com/seqfuzz/lego/internal/"

// OrganicReport builds a BugReport for a recovered non-BugReport panic.
// rec is the recovered value, rawStack the runtime.Stack() capture taken
// inside the recovering deferred function, and window the engine's type
// window at crash time. The report's stack is normalized to frame names
// (no addresses, offsets, or line numbers) so the oracle deduplicates
// repeated organic crashes from the same code path into one bug.
func OrganicReport(rec any, d sqlt.Dialect, window sqlt.Sequence, rawStack []byte) *BugReport {
	frames := NormalizeStack(rawStack)
	if len(frames) == 0 {
		frames = []string{fmt.Sprintf("unknown::%T", rec)}
	}
	h := fnv.New32a()
	for _, f := range frames {
		h.Write([]byte(f))
		h.Write([]byte{'|'})
	}
	return &BugReport{
		ID:        fmt.Sprintf("ORGANIC-%08x", h.Sum32()),
		Dialect:   d,
		Component: organicComponent(frames),
		Kind:      "PANIC",
		Stack:     frames,
		Window:    append(sqlt.Sequence(nil), window...),
	}
}

// NormalizeStack reduces a runtime.Stack() capture to the frame names of the
// original panic site. The raw capture (taken in a deferred function during
// panicking) looks like
//
//	goroutine 1 [running]:
//	<recovering frames>
//	runtime.gopanic(...)
//	[re-panic frames and another runtime.gopanic when the engine re-raised]
//	<panic-site frames>   <- what we want
//	<driver frames: RunTestCase, harness, testing, ...>
//
// so it takes the frames after the *last* runtime.gopanic, drops remaining
// runtime frames, strips argument lists and module prefixes, and stops at
// the first frame outside the engine's own code.
func NormalizeStack(rawStack []byte) []string {
	var names []string
	for _, line := range strings.Split(string(rawStack), "\n") {
		if line == "" || strings.HasPrefix(line, "\t") || strings.HasPrefix(line, "goroutine ") {
			continue // file:line lines and the header
		}
		if i := strings.LastIndexByte(line, '('); i > 0 {
			line = line[:i]
		}
		names = append(names, line)
	}

	start := 0
	for i, n := range names {
		if n == "runtime.gopanic" || n == "panic" {
			start = i + 1
		}
	}

	var out []string
	for _, n := range names[start:] {
		if strings.HasPrefix(n, "runtime.") {
			continue
		}
		trimmed := strings.TrimPrefix(n, modulePrefix)
		if trimmed == n || strings.HasSuffix(trimmed, "RunTestCase") {
			break // left the engine: containment/driver frames carry no signal
		}
		out = append(out, trimmed)
		if len(out) == maxOrganicFrames {
			break
		}
	}
	return out
}

// organicComponent guesses the engine component from the innermost frame so
// organic bugs slot into the same per-component tallies as seeded ones.
func organicComponent(frames []string) string {
	if len(frames) == 0 {
		return "Engine"
	}
	f := frames[0]
	switch {
	case strings.Contains(f, "eval"):
		return "Item"
	case strings.Contains(f, "Select") || strings.Contains(f, "select"):
		return "Optimizer"
	case strings.Contains(f, "rewrite") || strings.Contains(f, "Rewrite"):
		return "Rewriter"
	case strings.Contains(f, "faultInjector"):
		return "Injected"
	default:
		return "Engine"
	}
}
