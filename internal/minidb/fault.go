package minidb

import "fmt"

// faultInjector deterministically raises non-BugReport panics at statement
// dispatch, simulating the organic engine defects (nil derefs, slice
// overruns, logic bombs) a real in-process substrate accumulates over time.
// AFL++ survives those because the DBMS runs in a forked child; our harness
// must survive them via crash containment (harness.Runner), and the injector
// exists so tests can prove that containment under load.
//
// The injector owns a private splitmix64 stream so fault schedules are a
// pure function of (FaultRate, FaultSeed) — independent of the fuzzer's RNG
// and reproducible across runs.
type faultInjector struct {
	rate  float64
	state uint64
	n     int // faults raised so far
}

func newFaultInjector(rate float64, seed int64) *faultInjector {
	if seed == 0 {
		seed = 1
	}
	return &faultInjector{rate: rate, state: uint64(seed)}
}

// next draws a uniform float in [0, 1) from the private stream.
func (f *faultInjector) next() float64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// beforeDispatch and afterDispatch are two distinct injection sites: the
// panic's call stack differs between them, so a campaign under fault
// injection accumulates (at least) two unique organic crash signatures —
// enough to exercise oracle deduplication of contained panics.

// beforeDispatch raises a pre-dispatch organic fault.
//
//lego:injector
func (f *faultInjector) beforeDispatch() {
	if f.next() < f.rate {
		f.n++
		panic(fmt.Errorf("injected engine fault #%d (pre-dispatch)", f.n))
	}
}

// afterDispatch raises a post-dispatch organic fault.
//
//lego:injector
func (f *faultInjector) afterDispatch() {
	if f.next() < f.rate {
		f.n++
		panic(fmt.Errorf("injected engine fault #%d (post-dispatch)", f.n))
	}
}
