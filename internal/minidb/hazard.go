package minidb

import (
	"fmt"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlt"
)

// BugReport is the crash artefact raised when a seeded hazard fires. It
// plays the role of an ASAN report from the instrumented DBMS: it carries a
// stable identifier, the component the bug lives in, a memory-safety bug
// class, and a synthetic call stack that the oracle uses for deduplication
// (the paper dedups "unique crashes by comparing the call stack").
type BugReport struct {
	ID        string
	Dialect   sqlt.Dialect
	Component string
	Kind      string // UAF, BOF, SBOF, HBOF, AF, SEGV, UAP, NPD, UB
	Stack     []string
	Window    sqlt.Sequence // the type window at crash time
}

// Error implements error so reports flow through error-handling paths too.
func (b *BugReport) Error() string {
	return fmt.Sprintf("%s: %s in %s/%s [%s]", b.Kind, b.ID, b.Dialect, b.Component,
		strings.Join(b.Stack, " <- "))
}

// StackKey is the deduplication key (the call-stack comparison).
func (b *BugReport) StackKey() string {
	return b.Dialect.String() + "|" + strings.Join(b.Stack, "|")
}

// condFn is a predicate over engine state evaluated when a bug's type
// pattern matches. lastErr is the SQL error of the statement that completed
// the pattern (nil on success).
type condFn func(e *Engine, lastErr error) bool

// Bug is one seeded hazard: it fires when the most recent executed statement
// types end with Pattern and Cond holds. A nil Pattern marks bugs raised
// manually from engine code paths (e.g. the rewrite-component case study).
type Bug struct {
	ID        string
	Component string
	Kind      string
	Pattern   []sqlt.Type
	Cond      condFn
	Stack     []string
}

// hazardsArmed reports whether the seeded bug corpus is active.
func (e *Engine) hazardsArmed() bool { return e.hazards != nil }

// raiseBug panics with the bug's report, simulating the process-killing
// crash an ASAN abort produces.
func (e *Engine) raiseBug(b *Bug) {
	panic(&BugReport{
		ID:        b.ID,
		Dialect:   e.cfg.Dialect,
		Component: b.Component,
		Kind:      b.Kind,
		Stack:     b.Stack,
		Window:    append(sqlt.Sequence(nil), e.typeWindow...),
	})
}

// checkHazards evaluates the bug matrix after each statement.
func (e *Engine) checkHazards(_ sqlt.Type, lastErr error) {
	if e.hazards == nil {
		return
	}
	for _, b := range e.hazards {
		if b.Pattern == nil {
			continue // manually raised
		}
		if !e.windowEndsWith(b.Pattern) {
			continue
		}
		if b.Cond != nil && !b.Cond(e, lastErr) {
			continue
		}
		e.raiseBug(b)
	}
}

// windowEndsWith reports whether the executed-type window ends with pat.
func (e *Engine) windowEndsWith(pat []sqlt.Type) bool {
	if len(e.typeWindow) < len(pat) {
		return false
	}
	off := len(e.typeWindow) - len(pat)
	for i, t := range pat {
		if e.typeWindow[off+i] != t {
			return false
		}
	}
	return true
}

// --- condition library -----------------------------------------------------

func cAlways(*Engine, error) bool { return true }

// cErr holds when the pattern-completing statement returned a SQL error —
// reachable by mutation fuzzers whose mutated statements often fail, but
// rarely by rule-based generators that emit only valid SQL.
func cErr(_ *Engine, lastErr error) bool { return lastErr != nil }

// cOK holds when the statement succeeded.
func cOK(_ *Engine, lastErr error) bool { return lastErr == nil }

// cTables holds when at least n tables exist.
func cTables(n int) condFn {
	return func(e *Engine, _ error) bool { return len(e.cat.Tables) >= n }
}

// cRows holds when total stored rows reach n.
func cRows(n int) condFn {
	return func(e *Engine, _ error) bool {
		total := 0
		for _, t := range e.cat.Tables {
			total += len(t.Rows)
		}
		return total >= n
	}
}

// cEmptyTable holds when some table exists with zero rows.
func cEmptyTable(e *Engine, _ error) bool {
	for _, t := range e.cat.Tables {
		if len(t.Rows) == 0 {
			return true
		}
	}
	return false
}

func cTrigger(e *Engine, _ error) bool { return len(e.cat.Triggers) > 0 }
func cIndex(e *Engine, _ error) bool   { return len(e.cat.Indexes) > 0 }
func cView(e *Engine, _ error) bool    { return len(e.cat.Views) > 0 }
func cRule(e *Engine, _ error) bool    { return len(e.cat.Rules) > 0 }
func cInTxn(e *Engine, _ error) bool   { return e.inTxn() }
func cNoTxn(e *Engine, _ error) bool   { return !e.inTxn() }
func cPrepared(e *Engine, _ error) bool {
	return len(e.sess.prepared) > 0
}
func cCursor(e *Engine, _ error) bool {
	return len(e.sess.cursors) > 0
}
func cListening(e *Engine, _ error) bool {
	return len(e.sess.listening) > 0
}
func cRole(e *Engine, _ error) bool { return e.sess.role != "" }
func cSeq(e *Engine, _ error) bool  { return len(e.cat.Sequences) > 0 }
func cFunc(e *Engine, _ error) bool { return len(e.cat.Functions) > 0 }

// cAnd combines conditions conjunctively.
func cAnd(cs ...condFn) condFn {
	return func(e *Engine, lastErr error) bool {
		for _, c := range cs {
			if !c(e, lastErr) {
				return false
			}
		}
		return true
	}
}
