package minidb

import (
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
	"github.com/seqfuzz/lego/internal/sqlt"
)

func ok(msg string) (*Result, error) { return &Result{Msg: msg}, nil }

func (e *Engine) execCreateTable(st *sqlast.CreateTableStmt) (*Result, error) {
	e.hit(pCreateTable)
	if _, exists := e.cat.Tables[st.Name]; exists {
		if st.IfNotExists {
			e.hit(pCreateTableIfNot)
			return ok("CREATE TABLE (exists)")
		}
		return nil, errValue("relation %q already exists", st.Name)
	}
	if _, exists := e.cat.Views[st.Name]; exists {
		return nil, errValue("%q is a view", st.Name)
	}
	if len(st.Cols) == 0 {
		return nil, errValue("table must have at least one column")
	}
	if st.Temp {
		e.hit(pCreateTableTemp)
	}
	t := &Table{Name: st.Name, Temp: st.Temp}
	seen := map[string]bool{}
	for _, cd := range st.Cols {
		if seen[cd.Name] {
			return nil, errValue("duplicate column %q", cd.Name)
		}
		seen[cd.Name] = true
		col := Column{
			Name:       cd.Name,
			TypeName:   cd.TypeName,
			NotNull:    cd.NotNull || cd.PrimaryKey,
			PrimaryKey: cd.PrimaryKey,
			Unique:     cd.Unique || cd.PrimaryKey,
			Default:    cd.Default,
			Check:      cd.Check,
		}
		if cd.PrimaryKey {
			e.hit(pCreateTablePK)
		}
		if cd.Check != nil {
			e.hit(pCreateTableCheck)
		}
		if cd.Default != nil {
			e.hit(pCreateTableDefault)
		}
		if cd.References != nil {
			e.hit(pCreateTableFK)
			if _, ok := e.cat.Tables[cd.References.Table]; !ok && cd.References.Table != st.Name {
				return nil, errValue("referenced table %q does not exist", cd.References.Table)
			}
			col.RefTable = cd.References.Table
		}
		// Domain and enum column types resolve through the catalog. The
		// parser canonicalizes type names to upper case while object names
		// keep their spelling, so the lookup is case-insensitive.
		if d := e.lookupDomain(cd.TypeName); d != nil {
			e.hit(pCreateTableDomain)
			col.TypeName = d.Base
			if col.Check == nil {
				col.Check = d.Check
			}
		} else if e.lookupEnum(cd.TypeName) != nil {
			e.hit(pCreateTableEnum)
			col.TypeName = "TEXT"
		}
		t.Cols = append(t.Cols, col)
	}
	for _, tc := range st.Constraints {
		switch tc.Kind {
		case "PRIMARY KEY", "UNIQUE":
			for _, cn := range tc.Columns {
				i := -1
				for ci := range t.Cols {
					if t.Cols[ci].Name == cn {
						i = ci
						break
					}
				}
				if i < 0 {
					return nil, errValue("constraint column %q not found", cn)
				}
				if len(tc.Columns) == 1 {
					t.Cols[i].Unique = true
					if tc.Kind == "PRIMARY KEY" {
						t.Cols[i].PrimaryKey = true
						t.Cols[i].NotNull = true
					}
				}
			}
			e.hit(pCreateTablePK)
		case "FOREIGN KEY":
			e.hit(pCreateTableFK)
			if _, ok := e.cat.Tables[tc.RefTab]; !ok && tc.RefTab != st.Name {
				return nil, errValue("referenced table %q does not exist", tc.RefTab)
			}
		case "CHECK":
			e.hit(pCreateTableCheck)
		}
		t.Constraints = append(t.Constraints, tc)
	}
	e.cat.Tables[st.Name] = t
	return ok("CREATE TABLE")
}

// lookupDomain finds a domain by case-insensitive name. When several stored
// names fold-match, the lexicographically smallest wins, so the result never
// depends on map iteration order.
func (e *Engine) lookupDomain(name string) *Domain {
	if d, ok := e.cat.Domains[name]; ok {
		return d
	}
	best := ""
	for n := range e.cat.Domains {
		if strings.EqualFold(n, name) && (best == "" || n < best) {
			best = n
		}
	}
	if best == "" {
		return nil
	}
	return e.cat.Domains[best]
}

// lookupEnum finds an enum type by case-insensitive name, resolving
// fold-ambiguity like lookupDomain.
func (e *Engine) lookupEnum(name string) *EnumType {
	if en, ok := e.cat.Enums[name]; ok {
		return en
	}
	best := ""
	for n := range e.cat.Enums {
		if strings.EqualFold(n, name) && (best == "" || n < best) {
			best = n
		}
	}
	if best == "" {
		return nil
	}
	return e.cat.Enums[best]
}

func (e *Engine) execCreateView(st *sqlast.CreateViewStmt) (*Result, error) {
	if st.Materialized {
		e.hit(pCreateMatView)
	} else {
		e.hit(pCreateView)
	}
	if _, exists := e.cat.Views[st.Name]; exists && !st.OrReplace {
		return nil, errValue("view %q already exists", st.Name)
	}
	if st.OrReplace {
		e.hit(pCreateViewReplace)
	}
	if _, exists := e.cat.Tables[st.Name]; exists {
		return nil, errValue("%q is a table", st.Name)
	}
	// validate the query against current schema
	rows, cols, err := e.execSelect(st.Query, nil, 0)
	if err != nil {
		return nil, err
	}
	v := &View{Name: st.Name, Cols: st.Cols, Query: st.Query, Materialized: st.Materialized}
	if st.Materialized {
		v.MatCols = cols
		v.MatRows = rows
		v.refreshed = true
	}
	e.cat.Views[st.Name] = v
	return ok("CREATE VIEW")
}

func (e *Engine) execCreateIndex(st *sqlast.CreateIndexStmt) (*Result, error) {
	e.hit(pCreateIndex)
	if _, exists := e.cat.Indexes[st.Name]; exists {
		return nil, errValue("index %q already exists", st.Name)
	}
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	for _, c := range st.Cols {
		if t.colIndex(c) < 0 {
			return nil, errValue("column %q does not exist in %q", c, st.Table)
		}
	}
	if st.Unique {
		e.hit(pCreateIndexUnique)
		// building a unique index scans for duplicates
		e.hit(pCreateIndexDupScan)
		seen := map[string]bool{}
		for _, row := range t.Rows {
			var key []Value
			for _, c := range st.Cols {
				key = append(key, row[t.colIndex(c)])
			}
			k := RowKey(key)
			if seen[k] {
				return nil, errValue("cannot create unique index: duplicate key")
			}
			seen[k] = true
		}
	}
	e.cat.Indexes[st.Name] = &Index{Name: st.Name, Table: st.Table, Cols: st.Cols, Unique: st.Unique}
	return ok("CREATE INDEX")
}

func (e *Engine) execCreateTrigger(st *sqlast.CreateTriggerStmt) (*Result, error) {
	e.hit(pCreateTrigger)
	if st.Time == sqlast.TriggerBefore {
		e.hit(pCreateTriggerBefore)
	}
	if _, exists := e.cat.Triggers[st.Name]; exists {
		return nil, errValue("trigger %q already exists", st.Name)
	}
	if _, err := e.lookTable(st.Table); err != nil {
		return nil, err
	}
	e.cat.Triggers[st.Name] = &Trigger{
		Name: st.Name, Table: st.Table, Time: st.Time, Event: st.Event, Body: st.Body,
	}
	return ok("CREATE TRIGGER")
}

func (e *Engine) execCreateSequence(st *sqlast.CreateSequenceStmt) (*Result, error) {
	e.hit(pCreateSequence)
	if _, exists := e.cat.Sequences[st.Name]; exists {
		return nil, errValue("sequence %q already exists", st.Name)
	}
	inc := st.Inc
	if inc == 0 {
		inc = 1
	}
	e.cat.Sequences[st.Name] = &Sequence{Name: st.Name, Val: st.Start, Inc: inc}
	return ok("CREATE SEQUENCE")
}

func (e *Engine) execCreateSchema(st *sqlast.CreateSchemaStmt) (*Result, error) {
	e.hit(pCreateSchema)
	if e.cat.Schemas[st.Name] {
		return nil, errValue("schema %q already exists", st.Name)
	}
	e.cat.Schemas[st.Name] = true
	return ok("CREATE SCHEMA")
}

func (e *Engine) execCreateFunction(st *sqlast.CreateFunctionStmt) (*Result, error) {
	e.hit(pCreateFunction)
	if _, exists := e.cat.Functions[st.Name]; exists {
		return nil, errValue("function %q already exists", st.Name)
	}
	e.cat.Functions[st.Name] = &Function{
		Name: st.Name, Params: st.Params, Returns: st.Returns, Body: st.Body,
	}
	return ok("CREATE FUNCTION")
}

func (e *Engine) execCreateProcedure(st *sqlast.CreateProcedureStmt) (*Result, error) {
	e.hit(pCreateProcedure)
	if _, exists := e.cat.Procedures[st.Name]; exists {
		return nil, errValue("procedure %q already exists", st.Name)
	}
	e.cat.Procedures[st.Name] = &Procedure{Name: st.Name, Body: st.Body}
	return ok("CREATE PROCEDURE")
}

func (e *Engine) execCreateRule(st *sqlast.CreateRuleStmt) (*Result, error) {
	e.hit(pCreateRule)
	if _, exists := e.cat.Rules[st.Name]; exists && !st.OrReplace {
		return nil, errValue("rule %q already exists", st.Name)
	}
	if _, err := e.lookTable(st.Table); err != nil {
		return nil, err
	}
	if st.Instead {
		e.hit(pCreateRuleInstead)
	}
	e.cat.Rules[st.Name] = &Rule{
		Name: st.Name, Table: st.Table, Event: st.Event, Instead: st.Instead, Action: st.Action,
	}
	return ok("CREATE RULE")
}

func (e *Engine) execCreateDomain(st *sqlast.CreateDomainStmt) (*Result, error) {
	e.hit(pCreateDomain)
	if _, exists := e.cat.Domains[st.Name]; exists {
		return nil, errValue("domain %q already exists", st.Name)
	}
	e.cat.Domains[st.Name] = &Domain{Name: st.Name, Base: st.Base, Check: st.Check}
	return ok("CREATE DOMAIN")
}

func (e *Engine) execCreateType(st *sqlast.CreateTypeStmt) (*Result, error) {
	e.hit(pCreateType)
	if _, exists := e.cat.Enums[st.Name]; exists {
		return nil, errValue("type %q already exists", st.Name)
	}
	e.cat.Enums[st.Name] = &EnumType{Name: st.Name, Values: st.Values}
	return ok("CREATE TYPE")
}

func (e *Engine) execCreateExtension(st *sqlast.CreateExtensionStmt) (*Result, error) {
	e.hit(pCreateExtension)
	if e.cat.Extensions[st.Name] {
		return nil, errValue("extension %q already installed", st.Name)
	}
	e.cat.Extensions[st.Name] = true
	return ok("CREATE EXTENSION")
}

func (e *Engine) execCreateRole(st *sqlast.CreateRoleStmt) (*Result, error) {
	e.hit(pCreateRole)
	if _, exists := e.cat.Roles[st.Name]; exists {
		return nil, errValue("role %q already exists", st.Name)
	}
	e.cat.Roles[st.Name] = &Role{
		Name: st.Name, IsUser: st.IsUser, Option: st.Option,
		Privs: map[string]map[string]bool{},
	}
	return ok("CREATE ROLE")
}

func (e *Engine) execCreateDatabase(st *sqlast.CreateDatabaseStmt) (*Result, error) {
	e.hit(pCreateDatabase)
	if e.cat.Databases[st.Name] {
		return nil, errValue("database %q already exists", st.Name)
	}
	e.cat.Databases[st.Name] = true
	return ok("CREATE DATABASE")
}

func (e *Engine) execAlterTable(st *sqlast.AlterTableStmt) (*Result, error) {
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	switch st.Action {
	case sqlast.AlterAddColumn:
		e.hit(pAlterTableAdd)
		if t.colIndex(st.Col.Name) >= 0 {
			return nil, errValue("column %q already exists", st.Col.Name)
		}
		col := Column{
			Name: st.Col.Name, TypeName: st.Col.TypeName,
			NotNull: st.Col.NotNull, Unique: st.Col.Unique, Default: st.Col.Default,
			Check: st.Col.Check,
		}
		t.Cols = append(t.Cols, col)
		// backfill: default or NULL
		for i := range t.Rows {
			var v Value
			if st.Col.Default != nil {
				dv, err := e.eval(st.Col.Default, emptyScope, 0)
				if err != nil {
					return nil, err
				}
				v = CoerceToColumn(col.TypeName, dv)
			} else {
				if col.NotNull {
					return nil, errValue("cannot add NOT NULL column without default to non-empty table")
				}
				v = Null()
			}
			t.Rows[i] = append(t.Rows[i], v)
		}
	case sqlast.AlterDropColumn:
		e.hit(pAlterTableDrop)
		i := t.colIndex(st.OldName)
		if i < 0 {
			return nil, errValue("column %q does not exist", st.OldName)
		}
		if len(t.Cols) == 1 {
			return nil, errValue("cannot drop the last column")
		}
		t.Cols = append(t.Cols[:i], t.Cols[i+1:]...)
		for r := range t.Rows {
			t.Rows[r] = append(t.Rows[r][:i], t.Rows[r][i+1:]...)
		}
		e.invalidateIndexes(st.Table)
	case sqlast.AlterRenameColumn:
		e.hit(pAlterTableRenameCol)
		i := t.colIndex(st.OldName)
		if i < 0 {
			return nil, errValue("column %q does not exist", st.OldName)
		}
		if t.colIndex(st.NewName) >= 0 {
			return nil, errValue("column %q already exists", st.NewName)
		}
		t.Cols[i].Name = st.NewName
		e.invalidateIndexes(st.Table)
	case sqlast.AlterRenameTable:
		e.hit(pAlterTableRename)
		return e.renameTable(st.Table, st.NewName)
	case sqlast.AlterColumnType:
		e.hit(pAlterTableType)
		i := t.colIndex(st.Col.Name)
		if i < 0 {
			return nil, errValue("column %q does not exist", st.Col.Name)
		}
		t.Cols[i].TypeName = st.Col.TypeName
		if len(t.Rows) > 0 {
			e.hit(pAlterTableTypeRewrite)
			for r := range t.Rows {
				t.Rows[r][i] = CoerceToColumn(st.Col.TypeName, t.Rows[r][i])
			}
		}
	case sqlast.AlterColumnDefault:
		e.hit(pAlterTableDefault)
		i := t.colIndex(st.Col.Name)
		if i < 0 {
			return nil, errValue("column %q does not exist", st.Col.Name)
		}
		t.Cols[i].Default = st.Col.Default
	}
	t.analyzed = false
	return ok("ALTER TABLE")
}

// invalidateIndexes marks indexes on a table stale until REINDEX.
func (e *Engine) invalidateIndexes(table string) {
	for _, ix := range e.cat.indexesFor(table) {
		ix.stale = true
	}
}

func (e *Engine) renameTable(from, to string) (*Result, error) {
	t, err := e.lookTable(from)
	if err != nil {
		return nil, err
	}
	if _, exists := e.cat.Tables[to]; exists {
		return nil, errValue("relation %q already exists", to)
	}
	delete(e.cat.Tables, from)
	t.Name = to
	e.cat.Tables[to] = t
	for _, ix := range e.cat.indexesFor(from) {
		ix.Table = to
	}
	for _, tr := range e.cat.Triggers {
		if tr.Table == from {
			tr.Table = to
		}
	}
	for _, r := range e.cat.Rules {
		if r.Table == from {
			r.Table = to
		}
	}
	return ok("RENAME")
}

func (e *Engine) execAlterSimple(st *sqlast.AlterSimpleStmt) (*Result, error) {
	e.hit(pAlterSimple)
	switch st.What {
	case sqlt.AlterView:
		v, ok2 := e.cat.Views[st.Name]
		if !ok2 {
			return nil, errValue("view %q does not exist", st.Name)
		}
		if _, exists := e.cat.Views[st.NewName]; exists {
			return nil, errValue("view %q already exists", st.NewName)
		}
		delete(e.cat.Views, st.Name)
		v.Name = st.NewName
		e.cat.Views[st.NewName] = v
	case sqlt.AlterIndex:
		ix, ok2 := e.cat.Indexes[st.Name]
		if !ok2 {
			return nil, errValue("index %q does not exist", st.Name)
		}
		if _, exists := e.cat.Indexes[st.NewName]; exists {
			return nil, errValue("index %q already exists", st.NewName)
		}
		delete(e.cat.Indexes, st.Name)
		ix.Name = st.NewName
		e.cat.Indexes[st.NewName] = ix
	case sqlt.AlterSequence:
		sq, ok2 := e.cat.Sequences[st.Name]
		if !ok2 {
			return nil, errValue("sequence %q does not exist", st.Name)
		}
		sq.Val = st.Restart
	case sqlt.AlterRole:
		r, ok2 := e.cat.Roles[st.Name]
		if !ok2 {
			return nil, errValue("role %q does not exist", st.Name)
		}
		r.Option = st.Option
	case sqlt.AlterDatabase:
		if !e.cat.Databases[st.Name] {
			return nil, errValue("database %q does not exist", st.Name)
		}
	}
	return ok("ALTER")
}

func (e *Engine) execAlterSystem(st *sqlast.AlterSystemStmt) (*Result, error) {
	e.hit(pAlterSystem)
	v, err := e.eval(st.Value, emptyScope, 0)
	if err != nil {
		return nil, err
	}
	e.sess.globals[st.Setting] = v
	return ok("ALTER SYSTEM")
}

func (e *Engine) execDrop(st *sqlast.DropStmt) (*Result, error) {
	e.hit(pDropObject)
	if st.Cascade {
		e.hit(pDropCascade)
	}
	miss := func() (*Result, error) {
		if st.IfExists {
			e.hit(pDropIfExistsMiss)
			return ok("DROP (skipped)")
		}
		return nil, errValue("object %q does not exist", st.Name)
	}
	switch st.What {
	case sqlt.DropTable:
		if _, exists := e.cat.Tables[st.Name]; !exists {
			return miss()
		}
		// drop dependents
		delete(e.cat.Tables, st.Name)
		for _, ix := range e.cat.indexesFor(st.Name) {
			delete(e.cat.Indexes, ix.Name)
		}
		for n, tr := range e.cat.Triggers {
			if tr.Table == st.Name {
				delete(e.cat.Triggers, n)
			}
		}
		for n, r := range e.cat.Rules {
			if r.Table == st.Name {
				delete(e.cat.Rules, n)
			}
		}
		if st.Cascade {
			e.hit(pDropDependentViews)
			for n, v := range e.cat.Views {
				for _, dep := range sqlast.StatementTables(v.Query) {
					if dep == st.Name {
						delete(e.cat.Views, n)
						break
					}
				}
			}
		}
	case sqlt.DropView, sqlt.DropMaterializedView:
		v, exists := e.cat.Views[st.Name]
		if !exists {
			return miss()
		}
		if (st.What == sqlt.DropMaterializedView) != v.Materialized {
			return nil, errValue("%q is not the right kind of view", st.Name)
		}
		delete(e.cat.Views, st.Name)
	case sqlt.DropIndex:
		if _, exists := e.cat.Indexes[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Indexes, st.Name)
	case sqlt.DropTrigger:
		if _, exists := e.cat.Triggers[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Triggers, st.Name)
	case sqlt.DropSequence:
		if _, exists := e.cat.Sequences[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Sequences, st.Name)
	case sqlt.DropSchema:
		if !e.cat.Schemas[st.Name] {
			return miss()
		}
		delete(e.cat.Schemas, st.Name)
	case sqlt.DropFunction:
		if _, exists := e.cat.Functions[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Functions, st.Name)
	case sqlt.DropProcedure:
		if _, exists := e.cat.Procedures[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Procedures, st.Name)
	case sqlt.DropRule:
		if _, exists := e.cat.Rules[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Rules, st.Name)
	case sqlt.DropDomain:
		if _, exists := e.cat.Domains[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Domains, st.Name)
	case sqlt.DropType:
		if _, exists := e.cat.Enums[st.Name]; !exists {
			return miss()
		}
		delete(e.cat.Enums, st.Name)
	case sqlt.DropExtension:
		if !e.cat.Extensions[st.Name] {
			return miss()
		}
		delete(e.cat.Extensions, st.Name)
	case sqlt.DropRole, sqlt.DropUser:
		if _, exists := e.cat.Roles[st.Name]; !exists {
			return miss()
		}
		if e.sess.role == st.Name {
			return nil, errValue("cannot drop the current role")
		}
		delete(e.cat.Roles, st.Name)
	case sqlt.DropDatabase:
		if !e.cat.Databases[st.Name] {
			return miss()
		}
		if st.Name == e.sess.curDB {
			return nil, errValue("cannot drop the current database")
		}
		delete(e.cat.Databases, st.Name)
	}
	return ok("DROP")
}

func (e *Engine) execRenameTable(st *sqlast.RenameTableStmt) (*Result, error) {
	e.hit(pRenameTable)
	return e.renameTable(st.From, st.To)
}

func (e *Engine) execTruncate(st *sqlast.TruncateStmt) (*Result, error) {
	e.hit(pTruncate)
	t, err := e.lookTable(st.Table)
	if err != nil {
		return nil, err
	}
	if err := e.checkPriv(st.Table, "DELETE"); err != nil {
		return nil, err
	}
	if len(t.Rows) > 0 {
		e.hit(pTruncateNonEmpty)
	}
	n := len(t.Rows)
	t.Rows = nil
	t.analyzed = false
	return &Result{Affected: n, Msg: "TRUNCATE"}, nil
}

func (e *Engine) execCommentOn(st *sqlast.CommentOnStmt) (*Result, error) {
	e.hit(pCommentOn)
	key := st.ObjectKind + ":" + st.Name
	switch st.ObjectKind {
	case "TABLE":
		if _, err := e.lookTable(st.Name); err != nil {
			return nil, err
		}
	case "VIEW":
		if _, exists := e.cat.Views[st.Name]; !exists {
			return nil, errValue("view %q does not exist", st.Name)
		}
	case "COLUMN":
		parts := strings.SplitN(st.Name, ".", 2)
		if len(parts) != 2 {
			return nil, errValue("COMMENT ON COLUMN needs table.column")
		}
		t, err := e.lookTable(parts[0])
		if err != nil {
			return nil, err
		}
		if t.colIndex(parts[1]) < 0 {
			return nil, errValue("column %q does not exist", parts[1])
		}
	case "INDEX":
		if _, exists := e.cat.Indexes[st.Name]; !exists {
			return nil, errValue("index %q does not exist", st.Name)
		}
	}
	e.cat.Comments[key] = st.Comment
	return ok("COMMENT")
}

func (e *Engine) execReindex(st *sqlast.ReindexStmt) (*Result, error) {
	e.hit(pReindex)
	switch st.Kind {
	case "INDEX":
		ix, exists := e.cat.Indexes[st.Name]
		if !exists {
			return nil, errValue("index %q does not exist", st.Name)
		}
		if ix.stale {
			e.hit(pReindexStale)
			ix.stale = false
		}
	default:
		if _, err := e.lookTable(st.Name); err != nil {
			return nil, err
		}
		for _, ix := range e.cat.indexesFor(st.Name) {
			if ix.stale {
				e.hit(pReindexStale)
				ix.stale = false
			}
		}
	}
	return ok("REINDEX")
}

func (e *Engine) execRefreshMatView(st *sqlast.RefreshMatViewStmt) (*Result, error) {
	e.hit(pRefreshMatView)
	v, exists := e.cat.Views[st.Name]
	if !exists || !v.Materialized {
		return nil, errValue("materialized view %q does not exist", st.Name)
	}
	rows, cols, err := e.execSelect(v.Query, nil, 0)
	if err != nil {
		return nil, err
	}
	v.MatCols = cols
	v.MatRows = rows
	v.refreshed = true
	return &Result{Affected: len(rows), Msg: "REFRESH"}, nil
}
