package minidb

import (
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// TestConditionLibrary exercises every hazard condition helper against
// engine states built with plain SQL. Conditions are the extension surface
// for defining new seeded bugs, so each one is pinned here.
func TestConditionLibrary(t *testing.T) {
	e := newPG(t)
	run(t, e, `
CREATE TABLE filled (a INT UNIQUE);
INSERT INTO filled VALUES (1), (2), (3);
CREATE TABLE empty (a INT);
CREATE INDEX ix ON filled (a);
CREATE VIEW v AS SELECT a FROM filled;
CREATE TRIGGER tg AFTER INSERT ON filled FOR EACH ROW DELETE FROM empty;
CREATE RULE r AS ON DELETE TO filled DO INSTEAD NOTHING;
CREATE SEQUENCE sq;
CREATE FUNCTION f(x) RETURNS INT AS (x);
CREATE ROLE who;
PREPARE q AS SELECT 1;
DECLARE cur CURSOR FOR SELECT a FROM filled;
LISTEN ch;
SET ROLE who;
`)

	cases := []struct {
		name string
		cond condFn
		want bool
	}{
		{"cAlways", cAlways, true},
		{"cErr/nil", cErr, false},
		{"cOK/nil", cOK, true},
		{"cTables(2)", cTables(2), true},
		{"cTables(9)", cTables(9), false},
		{"cRows(3)", cRows(3), true},
		{"cRows(4)", cRows(4), false},
		{"cEmptyTable", cEmptyTable, true},
		{"cTrigger", cTrigger, true},
		{"cIndex", cIndex, true},
		{"cView", cView, true},
		{"cRule", cRule, true},
		{"cSeq", cSeq, true},
		{"cFunc", cFunc, true},
		{"cPrepared", cPrepared, true},
		{"cCursor", cCursor, true},
		{"cListening", cListening, true},
		{"cRole", cRole, true},
		{"cInTxn", cInTxn, false},
		{"cNoTxn", cNoTxn, true},
		{"cAnd(true,true)", cAnd(cAlways, cNoTxn), true},
		{"cAnd(true,false)", cAnd(cAlways, cInTxn), false},
	}
	for _, c := range cases {
		if got := c.cond(e, nil); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}

	// cErr with a real error; cInTxn inside a transaction.
	if !cErr(e, errValue("boom")) {
		t.Error("cErr with error")
	}
	if cOK(e, errValue("boom")) {
		t.Error("cOK with error")
	}
	if _, err := e.ExecStmt(sqlparse.MustParse("BEGIN")); err != nil {
		t.Fatal(err)
	}
	if !cInTxn(e, nil) || cNoTxn(e, nil) {
		t.Error("cInTxn inside a transaction")
	}

	// empty catalog: everything false
	fresh := newPG(t)
	fresh.RunTestCase(sqlparse.MustParseScript("SELECT 1;"))
	for _, c := range []struct {
		name string
		cond condFn
	}{
		{"cTrigger", cTrigger}, {"cIndex", cIndex}, {"cView", cView},
		{"cRule", cRule}, {"cSeq", cSeq}, {"cFunc", cFunc},
		{"cPrepared", cPrepared}, {"cCursor", cCursor},
		{"cListening", cListening}, {"cRole", cRole}, {"cEmptyTable", cEmptyTable},
	} {
		if c.cond(fresh, nil) {
			t.Errorf("%s true on empty catalog", c.name)
		}
	}
}

func TestBugReportRendering(t *testing.T) {
	br := &BugReport{
		ID: "CVE-X", Dialect: sqlt.DialectMySQL, Component: "Optimizer",
		Kind: "SEGV", Stack: []string{"a", "b"},
		Window: sqlt.Sequence{sqlt.Insert, sqlt.Select},
	}
	msg := br.Error()
	for _, want := range []string{"SEGV", "CVE-X", "MySQL", "Optimizer", "a <- b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
	if br.StackKey() != "MySQL|a|b" {
		t.Fatalf("StackKey = %q", br.StackKey())
	}
}

func TestWindowEndsWith(t *testing.T) {
	e := newPG(t)
	e.typeWindow = []sqlt.Type{sqlt.CreateTable, sqlt.Insert, sqlt.Select}
	if !e.windowEndsWith([]sqlt.Type{sqlt.Insert, sqlt.Select}) {
		t.Error("suffix must match")
	}
	if e.windowEndsWith([]sqlt.Type{sqlt.CreateTable, sqlt.Insert}) {
		t.Error("non-suffix must not match")
	}
	if e.windowEndsWith([]sqlt.Type{sqlt.Select, sqlt.Select, sqlt.Select, sqlt.Select}) {
		t.Error("over-long pattern must not match")
	}
}

func TestCommaJoinCrossProduct(t *testing.T) {
	rows := query(t, `
CREATE TABLE a (x INT);
CREATE TABLE b (y INT);
INSERT INTO a VALUES (1), (2);
INSERT INTO b VALUES (10), (20), (30);
`, "SELECT x, y FROM a, b ORDER BY x, y")
	if len(rows) != 6 {
		t.Fatalf("comma join rows = %d, want 6", len(rows))
	}
	if rows[0][0].I != 1 || rows[0][1].I != 10 || rows[5][0].I != 2 || rows[5][1].I != 30 {
		t.Fatalf("cross product = %v", rows)
	}
	// with a join predicate in WHERE
	rows = query(t, `
CREATE TABLE a (x INT);
CREATE TABLE b (y INT);
INSERT INTO a VALUES (1), (2);
INSERT INTO b VALUES (1), (3);
`, "SELECT x FROM a, b WHERE x = y")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Fatalf("filtered cross product = %v", rows)
	}
}
