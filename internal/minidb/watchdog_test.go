package minidb

import (
	"runtime"
	"strings"
	"testing"

	"github.com/seqfuzz/lego/internal/sqlparse"
	"github.com/seqfuzz/lego/internal/sqlt"
)

// buildWideTable returns an engine with a populated table so scans charge
// plenty of watchdog steps.
func buildWideTable(t *testing.T, limits Limits) *Engine {
	t.Helper()
	e := New(Config{Dialect: sqlt.DialectPostgres, Limits: limits})
	e.reset()
	stmts := []string{"CREATE TABLE w (a INT, b INT);"}
	for i := 0; i < 32; i++ {
		stmts = append(stmts, "INSERT INTO w VALUES (1, 2), (3, 4), (5, 6), (7, 8);")
	}
	for _, sql := range stmts {
		if _, err := e.ExecStmt(sqlparse.MustParse(sql)); err != nil {
			t.Fatalf("setup %q: %v", sql, err)
		}
	}
	return e
}

func TestWatchdogTripsOnAdversarialQuery(t *testing.T) {
	limits := DefaultLimits()
	limits.MaxStepsPerStmt = 64 // far below what a 128-row scan charges
	e := buildWideTable(t, limits)

	_, err := e.ExecStmt(sqlparse.MustParse(
		"SELECT a + b FROM w WHERE a + 1 > 0 AND b * 2 > 0;"))
	if err == nil {
		t.Fatal("adversarial query must trip the watchdog")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("error must identify the watchdog, got: %v", err)
	}
}

func TestWatchdogChargeResetsPerStatement(t *testing.T) {
	limits := DefaultLimits()
	// Generous enough for any single statement below, but smaller than the
	// whole script's total charge: without the per-statement reset the later
	// statements would trip.
	limits.MaxStepsPerStmt = 600
	e := buildWideTable(t, limits)

	for i := 0; i < 5; i++ {
		if _, err := e.ExecStmt(sqlparse.MustParse("SELECT a FROM w WHERE a = 1;")); err != nil {
			t.Fatalf("statement %d tripped a fresh watchdog budget: %v", i, err)
		}
	}
}

func TestWatchdogDisabledWhenZero(t *testing.T) {
	// Tests that build engines with partial Limits literals get
	// MaxStepsPerStmt == 0; that must mean "no watchdog", not "trip on the
	// first step".
	e := buildWideTable(t, Limits{
		MaxRowsPerTable: 128,
		MaxResultRows:   512,
		MaxTriggerDepth: 4,
		MaxRewriteDepth: 8,
		MaxTriggerFires: 64,
		// MaxStepsPerStmt deliberately omitted
	})
	if _, err := e.ExecStmt(sqlparse.MustParse("SELECT a + b FROM w;")); err != nil {
		t.Fatalf("zero step budget must disable the watchdog: %v", err)
	}
}

func TestWatchdogDefaultNeverTripsOnSeeds(t *testing.T) {
	// The default budget must be far above anything a legitimate statement
	// charges, or the fuzzer would drown in spurious watchdog errors.
	e := buildWideTable(t, DefaultLimits())
	if _, err := e.ExecStmt(sqlparse.MustParse(
		"SELECT a + b FROM w WHERE a * 2 + b > 0 ORDER BY a;")); err != nil {
		t.Fatalf("default limits tripped on an ordinary query: %v", err)
	}
}

func TestFaultInjectorDeterministicSchedule(t *testing.T) {
	run := func() []int {
		e := New(Config{Dialect: sqlt.DialectPostgres, FaultRate: 0.3, FaultSeed: 42})
		tc := sqlparse.MustParseScript(
			"CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
		var panicsAt []int
		for i := 0; i < 50; i++ {
			out := func() (out Outcome) {
				defer func() { recover() }()
				return e.RunTestCase(tc)
			}()
			if out.Executed == 0 { // zeroed Outcome: the run panicked
				panicsAt = append(panicsAt, i)
			}
		}
		return panicsAt
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 150 statements must inject at least one fault")
	}
	if len(a) != len(b) {
		t.Fatalf("schedules differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestFaultStateExportRestore(t *testing.T) {
	e1 := New(Config{Dialect: sqlt.DialectPostgres, FaultRate: 0.5, FaultSeed: 7})
	// advance the stream
	for i := 0; i < 10; i++ {
		e1.faults.next()
	}
	st := e1.FaultState()
	if st == 0 {
		t.Fatal("armed injector must export non-zero state")
	}

	e2 := New(Config{Dialect: sqlt.DialectPostgres, FaultRate: 0.5, FaultSeed: 7})
	e2.SetFaultState(st)
	for i := 0; i < 20; i++ {
		if a, b := e1.faults.next(), e2.faults.next(); a != b {
			t.Fatalf("restored stream diverges at draw %d: %v vs %v", i, a, b)
		}
	}

	// Disarmed engines export zero and ignore restores.
	d := New(Config{Dialect: sqlt.DialectPostgres})
	if d.FaultState() != 0 {
		t.Fatal("disarmed engine must export zero fault state")
	}
	d.SetFaultState(123) // must not panic
}

func TestOrganicReportNormalizesAndDeduplicates(t *testing.T) {
	e := New(Config{Dialect: sqlt.DialectMySQL, FaultRate: 1, FaultSeed: 1})
	tc := sqlparse.MustParseScript("CREATE TABLE t (a INT);")

	capture := func() *BugReport {
		var rep *BugReport
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					buf := make([]byte, 64<<10)
					buf = buf[:runtime.Stack(buf, false)]
					rep = OrganicReport(rec, e.Dialect(), e.TypeWindow(), buf)
				}
			}()
			e.RunTestCase(tc)
		}()
		return rep
	}

	r1, r2 := capture(), capture()
	if r1 == nil || r2 == nil {
		t.Fatal("rate-1 injector must panic every statement")
	}
	if r1.Kind != "PANIC" {
		t.Fatalf("organic kind = %q", r1.Kind)
	}
	if !strings.HasPrefix(r1.ID, "ORGANIC-") {
		t.Fatalf("organic ID = %q", r1.ID)
	}
	if len(r1.Stack) == 0 {
		t.Fatal("organic report must carry a normalized stack")
	}
	for _, f := range r1.Stack {
		// Receivers like (*Engine) survive; argument lists and addresses
		// must not — they vary per run and would break dedup.
		if strings.Contains(f, "0x") || strings.HasSuffix(f, ")") {
			t.Fatalf("frame %q not normalized", f)
		}
		if strings.HasPrefix(f, modulePrefix) {
			t.Fatalf("frame %q keeps the module prefix", f)
		}
	}
	// Same code path twice -> same dedup key.
	if r1.StackKey() != r2.StackKey() {
		t.Fatalf("same panic site produced different keys:\n%v\n%v", r1.Stack, r2.Stack)
	}
}
