package minidb

import (
	"math"
	"strings"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// aggregateNames lists the supported aggregate functions.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"GROUP_CONCAT": true, "TOTAL": true,
}

// windowNames lists functions valid only with OVER.
var windowNames = map[string]bool{
	"ROW_NUMBER": true, "RANK": true, "DENSE_RANK": true,
	"LEAD": true, "LAG": true, "NTILE": true,
}

// IsAggregate reports whether name is an aggregate function.
func IsAggregate(name string) bool { return aggregateNames[strings.ToUpper(name)] }

// exprHasAggregate reports whether x contains a non-windowed aggregate call.
func exprHasAggregate(x sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(x, func(n sqlast.Expr) {
		if fc, ok := n.(*sqlast.FuncCall); ok && fc.Over == nil && IsAggregate(fc.Name) {
			found = true
		}
	})
	return found
}

// exprHasWindow reports whether x contains a windowed function call.
func exprHasWindow(x sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(x, func(n sqlast.Expr) {
		if fc, ok := n.(*sqlast.FuncCall); ok && fc.Over != nil {
			found = true
		}
	})
	return found
}

func (e *Engine) evalFunc(fc *sqlast.FuncCall, sc *scope, depth int) (Value, error) {
	name := strings.ToUpper(fc.Name)

	// Windowed calls are pre-computed by the select executor and stashed in
	// the scope; a windowed call in any other context is a SQL error.
	if fc.Over != nil {
		if sc.winVals != nil {
			if v, ok := sc.winVals[fc]; ok {
				e.hit(pEvalWindowFunc)
				return v, nil
			}
		}
		return Null(), errValue("window function %s requires a query context", name)
	}

	if IsAggregate(name) {
		return e.evalAggregate(fc, sc, depth)
	}
	if windowNames[name] {
		return Null(), errValue("window function %s requires OVER", name)
	}

	e.hit(pEvalFunc)
	args := make([]Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := e.eval(a, sc, depth+1)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}

	need := func(n int) error {
		if len(args) != n {
			return errValue("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}

	switch name {
	case "ABS":
		if err := need(1); err != nil {
			return Null(), err
		}
		v := args[0]
		switch v.K {
		case KInt:
			if v.I < 0 {
				return Int(-v.I), nil
			}
			return v, nil
		case KFloat:
			return Float(math.Abs(v.F)), nil
		case KNull:
			return Null(), nil
		}
		if f, ok := v.numeric(); ok {
			return Float(math.Abs(f)), nil
		}
		return Null(), errValue("ABS of non-numeric value")
	case "LENGTH", "CHAR_LENGTH":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].String()))), nil
	case "UPPER":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(args[0].String())), nil
	case "TRIM":
		if err := need(1); err != nil {
			return Null(), err
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.TrimSpace(args[0].String())), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return Null(), errValue("SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		s := args[0].String()
		start, _ := args[1].numeric()
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		out := s[i:]
		if len(args) == 3 && !args[2].IsNull() {
			n, _ := args[2].numeric()
			if int(n) < len(out) && n >= 0 {
				out = out[:int(n)]
			}
		}
		return Text(out), nil
	case "REPLACE":
		if err := need(3); err != nil {
			return Null(), err
		}
		for _, a := range args {
			if a.IsNull() {
				return Null(), nil
			}
		}
		return Text(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "NULLIF":
		if err := need(2); err != nil {
			return Null(), err
		}
		if !args[0].IsNull() && !args[1].IsNull() && Equal(args[0], args[1]) {
			return Null(), nil
		}
		return args[0], nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return Null(), errValue("ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		f, ok := args[0].numeric()
		if !ok {
			return Null(), errValue("ROUND of non-numeric value")
		}
		digits := 0.0
		if len(args) == 2 {
			digits, _ = args[1].numeric()
		}
		scale := math.Pow(10, digits)
		return Float(math.Round(f*scale) / scale), nil
	case "FLOOR":
		if err := need(1); err != nil {
			return Null(), err
		}
		if f, ok := args[0].numeric(); ok {
			return Int(int64(math.Floor(f))), nil
		}
		return Null(), nil
	case "CEIL", "CEILING":
		if err := need(1); err != nil {
			return Null(), err
		}
		if f, ok := args[0].numeric(); ok {
			return Int(int64(math.Ceil(f))), nil
		}
		return Null(), nil
	case "MOD":
		if err := need(2); err != nil {
			return Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null(), nil
		}
		a, _ := args[0].numeric()
		b, _ := args[1].numeric()
		if b == 0 {
			e.hit(pEvalDivZero)
			return Null(), errValue("division by zero")
		}
		return Float(math.Mod(a, b)), nil
	case "TYPEOF":
		if err := need(1); err != nil {
			return Null(), err
		}
		switch args[0].K {
		case KNull:
			return Text("null"), nil
		case KInt:
			return Text("integer"), nil
		case KFloat:
			return Text("real"), nil
		case KBool:
			return Text("boolean"), nil
		default:
			return Text("text"), nil
		}
	case "NEXTVAL":
		if err := need(1); err != nil {
			return Null(), err
		}
		e.hit(pEvalSeqNext)
		sq, ok := e.cat.Sequences[args[0].String()]
		if !ok {
			return Null(), errValue("sequence %q does not exist", args[0].String())
		}
		sq.Val += sq.Inc
		return Int(sq.Val), nil
	case "CURRVAL":
		if err := need(1); err != nil {
			return Null(), err
		}
		sq, ok := e.cat.Sequences[args[0].String()]
		if !ok {
			return Null(), errValue("sequence %q does not exist", args[0].String())
		}
		return Int(sq.Val), nil
	case "GREATEST":
		return foldCompare(args, func(c int) bool { return c > 0 })
	case "LEAST":
		return foldCompare(args, func(c int) bool { return c < 0 })
	}

	// user-defined scalar function
	if fn, ok := e.cat.Functions[fc.Name]; ok {
		e.hit(pEvalFuncUser)
		if len(args) != len(fn.Params) {
			return Null(), errValue("function %s expects %d argument(s)", fn.Name, len(fn.Params))
		}
		fsc := &scope{fnArgs: map[string]Value{}, parent: sc}
		for i, p := range fn.Params {
			fsc.fnArgs[p] = args[i]
		}
		v, err := e.eval(fn.Body, fsc, depth+1)
		if err != nil {
			return Null(), err
		}
		return CoerceToColumn(fn.Returns, v), nil
	}
	if fn, ok := e.cat.Functions[strings.ToLower(fc.Name)]; ok {
		e.hit(pEvalFuncUser)
		if len(args) != len(fn.Params) {
			return Null(), errValue("function %s expects %d argument(s)", fn.Name, len(fn.Params))
		}
		fsc := &scope{fnArgs: map[string]Value{}, parent: sc}
		for i, p := range fn.Params {
			fsc.fnArgs[p] = args[i]
		}
		v, err := e.eval(fn.Body, fsc, depth+1)
		if err != nil {
			return Null(), err
		}
		return CoerceToColumn(fn.Returns, v), nil
	}
	return Null(), errValue("unknown function %s", name)
}

func foldCompare(args []Value, take func(int) bool) (Value, error) {
	if len(args) == 0 {
		return Null(), errValue("GREATEST/LEAST need at least one argument")
	}
	best := args[0]
	for _, a := range args[1:] {
		if a.IsNull() || best.IsNull() {
			return Null(), nil
		}
		if take(Compare(a, best)) {
			best = a
		}
	}
	return best, nil
}

// evalAggregate evaluates an aggregate call over the scope's group rows.
func (e *Engine) evalAggregate(fc *sqlast.FuncCall, sc *scope, depth int) (Value, error) {
	name := strings.ToUpper(fc.Name)
	group := sc.group
	if group == nil {
		return Null(), errValue("aggregate %s used outside grouping context", name)
	}
	e.hit(pExecAggregate)
	if len(group) == 0 {
		e.hit(pExecAggEmpty)
	}

	// COUNT(*)
	if fc.Star {
		if name != "COUNT" {
			return Null(), errValue("%s(*) is not valid", name)
		}
		return Int(int64(len(group))), nil
	}
	if len(fc.Args) != 1 {
		return Null(), errValue("aggregate %s expects one argument", name)
	}

	var vals []Value
	seen := map[string]bool{}
	for _, row := range group {
		rsc := &scope{row: row, parent: sc.parent}
		v, err := e.eval(fc.Args[0], rsc, depth+1)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			continue
		}
		if fc.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "TOTAL":
		if len(vals) == 0 {
			if name == "TOTAL" {
				return Float(0), nil
			}
			return Null(), nil
		}
		allInt := true
		var fs float64
		var is int64
		for _, v := range vals {
			f, ok := v.numeric()
			if !ok {
				return Null(), errValue("SUM of non-numeric value")
			}
			fs += f
			if v.K == KInt {
				is += v.I
			} else {
				allInt = false
			}
		}
		if allInt && name == "SUM" {
			return Int(is), nil
		}
		return Float(fs), nil
	case "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		var fs float64
		for _, v := range vals {
			f, ok := v.numeric()
			if !ok {
				return Null(), errValue("AVG of non-numeric value")
			}
			fs += f
		}
		return Float(fs / float64(len(vals))), nil
	case "MIN":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if Compare(v, best) < 0 {
				best = v
			}
		}
		return best, nil
	case "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if Compare(v, best) > 0 {
				best = v
			}
		}
		return best, nil
	case "GROUP_CONCAT":
		if len(vals) == 0 {
			return Null(), nil
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.String()
		}
		return Text(strings.Join(parts, ",")), nil
	default:
		return Null(), errValue("unknown aggregate %s", name)
	}
}
