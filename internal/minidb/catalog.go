package minidb

import (
	"sort"

	"github.com/seqfuzz/lego/internal/sqlast"
)

// Column is the stored column metadata.
type Column struct {
	Name       string
	TypeName   string
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Default    sqlast.Expr
	Check      sqlast.Expr
	RefTable   string // foreign key target ("" if none)
	Comment    string
}

// Index is a secondary index over a table. Lookups are linear with a
// uniqueness map; the structure exists to give the planner an index-path
// branch and the catalog an object whose lifetime statements can race.
type Index struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
	// stale marks indexes invalidated by ALTER TABLE until REINDEX runs.
	stale bool
}

// Table is the stored base relation.
type Table struct {
	Name        string
	Cols        []Column
	Rows        [][]Value
	Temp        bool
	Comment     string
	Constraints []sqlast.TableConstraint
	analyzed    bool // set by ANALYZE, cleared by writes; gates planner stats paths
	locked      string
	clusteredBy string
}

// colIndex returns the position of the named column, or -1.
func (t *Table) colIndex(name string) int {
	for i := range t.Cols {
		if t.Cols[i].Name == name {
			return i
		}
	}
	return -1
}

// clone deep-copies the table (rows share Value structs, which are
// immutable by convention).
func (t *Table) clone() *Table {
	c := *t
	c.Cols = append([]Column(nil), t.Cols...)
	c.Rows = make([][]Value, len(t.Rows))
	for i, r := range t.Rows {
		c.Rows[i] = append([]Value(nil), r...)
	}
	c.Constraints = append([]sqlast.TableConstraint(nil), t.Constraints...)
	return &c
}

// View is a stored (possibly materialized) view.
type View struct {
	Name         string
	Cols         []string
	Query        *sqlast.SelectStmt
	Materialized bool
	MatCols      []string
	MatRows      [][]Value
	refreshed    bool
}

// Trigger fires a body statement around DML on a table.
type Trigger struct {
	Name  string
	Table string
	Time  sqlast.TriggerTime
	Event sqlast.TriggerEvent
	Body  sqlast.Statement
}

// Rule is a PostgreSQL-style rewrite rule: ON event TO table DO [INSTEAD]
// action. Rules participate in query rewrite (rewrite.go), which is where
// the paper's case-study bug lives.
type Rule struct {
	Name    string
	Table   string
	Event   sqlast.TriggerEvent
	Instead bool
	Action  sqlast.Statement // nil = DO INSTEAD NOTHING
}

// Sequence is a named counter.
type Sequence struct {
	Name string
	Val  int64
	Inc  int64
}

// Function is a scalar SQL function.
type Function struct {
	Name    string
	Params  []string
	Returns string
	Body    sqlast.Expr
}

// Procedure wraps one statement invocable via CALL.
type Procedure struct {
	Name string
	Body sqlast.Statement
}

// Domain is a constrained base type.
type Domain struct {
	Name  string
	Base  string
	Check sqlast.Expr
}

// EnumType is a user-defined enumeration.
type EnumType struct {
	Name   string
	Values []string
}

// Role is a principal with per-table privileges.
type Role struct {
	Name   string
	IsUser bool
	Option string
	Privs  map[string]map[string]bool // table -> privilege -> granted
}

// Catalog is the schema state of one database.
type Catalog struct {
	Tables     map[string]*Table
	Views      map[string]*View
	Indexes    map[string]*Index
	Triggers   map[string]*Trigger
	Rules      map[string]*Rule
	Sequences  map[string]*Sequence
	Functions  map[string]*Function
	Procedures map[string]*Procedure
	Domains    map[string]*Domain
	Enums      map[string]*EnumType
	Roles      map[string]*Role
	Schemas    map[string]bool
	Extensions map[string]bool
	Databases  map[string]bool
	Comments   map[string]string
}

// NewCatalog returns an empty catalog with the default database and schema.
func NewCatalog() *Catalog {
	return &Catalog{
		Tables:     map[string]*Table{},
		Views:      map[string]*View{},
		Indexes:    map[string]*Index{},
		Triggers:   map[string]*Trigger{},
		Rules:      map[string]*Rule{},
		Sequences:  map[string]*Sequence{},
		Functions:  map[string]*Function{},
		Procedures: map[string]*Procedure{},
		Domains:    map[string]*Domain{},
		Enums:      map[string]*EnumType{},
		Roles:      map[string]*Role{},
		Schemas:    map[string]bool{"public": true},
		Extensions: map[string]bool{},
		Databases:  map[string]bool{"main": true},
		Comments:   map[string]string{},
	}
}

// tableNames returns table names in sorted order for deterministic
// iteration.
func (c *Catalog) tableNames() []string {
	names := make([]string, 0, len(c.Tables))
	for n := range c.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// triggersFor returns the triggers on a table for a given time and event,
// name-sorted for determinism.
func (c *Catalog) triggersFor(table string, tm sqlast.TriggerTime, ev sqlast.TriggerEvent) []*Trigger {
	var out []*Trigger
	for _, tr := range c.Triggers {
		if tr.Table == table && tr.Time == tm && tr.Event == ev {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// rulesFor returns rewrite rules on a table for an event, name-sorted.
func (c *Catalog) rulesFor(table string, ev sqlast.TriggerEvent) []*Rule {
	var out []*Rule
	for _, r := range c.Rules {
		if r.Table == table && r.Event == ev {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// indexesFor returns indexes on a table, name-sorted.
func (c *Catalog) indexesFor(table string) []*Index {
	var out []*Index
	for _, ix := range c.Indexes {
		if ix.Table == table {
			out = append(out, ix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// snapshot deep-copies the catalog for transaction rollback.
func (c *Catalog) snapshot() *Catalog {
	s := NewCatalog()
	for n, t := range c.Tables {
		s.Tables[n] = t.clone()
	}
	for n, v := range c.Views {
		vc := *v
		vc.MatRows = append([][]Value(nil), v.MatRows...)
		s.Views[n] = &vc
	}
	for n, ix := range c.Indexes {
		ic := *ix
		ic.Cols = append([]string(nil), ix.Cols...)
		s.Indexes[n] = &ic
	}
	for n, tr := range c.Triggers {
		tc := *tr
		s.Triggers[n] = &tc
	}
	for n, r := range c.Rules {
		rc := *r
		s.Rules[n] = &rc
	}
	for n, sq := range c.Sequences {
		sc := *sq
		s.Sequences[n] = &sc
	}
	for n, f := range c.Functions {
		fc := *f
		s.Functions[n] = &fc
	}
	for n, p := range c.Procedures {
		pc := *p
		s.Procedures[n] = &pc
	}
	for n, d := range c.Domains {
		dc := *d
		s.Domains[n] = &dc
	}
	for n, e := range c.Enums {
		ec := *e
		ec.Values = append([]string(nil), e.Values...)
		s.Enums[n] = &ec
	}
	for n, r := range c.Roles {
		rc := *r
		rc.Privs = map[string]map[string]bool{}
		for t, ps := range r.Privs {
			m := map[string]bool{}
			for k, v := range ps {
				m[k] = v
			}
			rc.Privs[t] = m
		}
		s.Roles[n] = &rc
	}
	for n := range c.Schemas {
		s.Schemas[n] = true
	}
	for n := range c.Extensions {
		s.Extensions[n] = true
	}
	for n := range c.Databases {
		s.Databases[n] = true
	}
	for k, v := range c.Comments {
		s.Comments[k] = v
	}
	return s
}
